// Package tapas is the public API of the TAPAS reproduction: a thermal- and
// power-aware scheduling framework for LLM inference clusters, after
// "TAPAS: Thermal- and Power-Aware Scheduling for LLM Inference in Cloud
// Platforms" (ASPLOS 2025).
//
// The package wraps the internal substrates (datacenter layout and thermal/
// power physics, LLM serving models, trace generation, and the discrete-time
// simulator) behind a small surface:
//
//	sc := tapas.RealClusterScenario()
//	base, _ := tapas.Run(sc, tapas.NewBaseline())
//	full, _ := tapas.Run(sc, tapas.NewTAPAS())
//	fmt.Printf("peak power −%.0f%%\n", (1-full.PeakPower()/base.PeakPower())*100)
//
// Every experiment from the paper's evaluation is runnable through
// Experiments / RunExperiment (also exposed by cmd/tapas-bench).
package tapas

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/experiments"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/scenario"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// Core simulation types, re-exported from the simulation engine.
type (
	// Scenario fully describes one simulation run: layout, workload,
	// duration, oversubscription and failure schedule.
	Scenario = sim.Scenario
	// Result carries the metrics of a completed run.
	Result = sim.Result
	// Policy is the scheduling interface (placement, routing,
	// configuration, capping) implemented by TAPAS and the baselines.
	Policy = sim.Policy
	// FailureEvent schedules a cooling or power emergency.
	FailureEvent = sim.FailureEvent
	// FailureKind distinguishes cooling from power failures.
	FailureKind = sim.FailureKind
	// LayoutConfig parameterizes datacenter generation.
	LayoutConfig = layout.Config
	// WorkloadConfig parameterizes trace generation.
	WorkloadConfig = trace.WorkloadConfig
	// Workload is a materialized cluster workload — the VM arrival trace
	// plus the SaaS endpoint set — and the unit of record/replay: export one
	// with ExportTrace, pin it in a repository, and replay it via
	// Scenario.Trace or the workload.trace spec field.
	Workload = trace.Workload
	// Region is a deployment climate preset.
	Region = trace.Region
)

// Failure kinds (§5.4): a cooling failure limits aisle airflow to 90% of
// provisioned; a power failure limits row power to 75%.
const (
	CoolingFailure = sim.CoolingFailure
	PowerFailure   = sim.PowerFailure
)

// Climate presets for the outside-temperature generator.
var (
	RegionHot       = trace.RegionHot
	RegionTemperate = trace.RegionTemperate
	RegionCool      = trace.RegionCool
)

// NewTAPAS returns the full TAPAS policy: thermal/power-aware placement,
// request routing, and instance configuration (§4).
func NewTAPAS() Policy { return core.NewFull() }

// NewBaseline returns the thermal- and power-oblivious baseline (§5.1):
// packing placement, least-queue routing, no reconfiguration, uniform caps.
func NewBaseline() Policy { return core.NewBaseline() }

// NewVariant returns an ablation variant with the selected TAPAS levers
// (Fig. 20); all false degenerates to the Baseline, all true is TAPAS.
func NewVariant(place, route, config bool) Policy {
	return core.New(core.Options{Place: place, Route: route, Config: config})
}

// CompiledScenario holds a scenario's run-invariant artifacts (layout,
// workload, weather, profiles, thermal tables, seeded history), built once by
// Compile and shared read-only by any number of concurrent Runs.
type CompiledScenario = sim.CompiledScenario

// Compile builds a scenario's run-invariant artifacts once. Evaluating
// several policies (or failure schedules, via Variant) over the same
// scenario through the compiled object skips the per-run regeneration that
// Run performs, with byte-identical results.
func Compile(sc Scenario) (*CompiledScenario, error) { return sim.Compile(sc) }

// Run executes a scenario under a policy, compiling it first; use Compile
// plus CompiledScenario.Run to amortize compilation over many runs.
func Run(sc Scenario, pol Policy) (*Result, error) { return sim.Run(sc, pol) }

// LargeScenario returns the paper's large-scale setup: ~1000 A100 servers,
// 50/50 IaaS/SaaS, one week at one-minute ticks.
func LargeScenario() Scenario { return sim.DefaultScenario() }

// RealClusterScenario returns the paper's real-cluster setup: 80 servers in
// two rows for one hour at the diurnal peak.
func RealClusterScenario() Scenario { return sim.SmallScenario() }

// QuickScenario returns a fast small scenario for demos and smoke tests.
func QuickScenario() Scenario {
	sc := sim.SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	return sc
}

// GenerateWorkload materializes the workload a scenario would simulate —
// the replayed trace when Scenario.Trace is set, otherwise the synthetic
// generator's output for the scenario's fleet (layout plus oversubscribed
// racks), exactly as Compile builds it. Record it with ExportTrace and the
// same scenario replays it byte-identically.
func GenerateWorkload(sc Scenario) (*Workload, error) { return sim.GenerateWorkload(sc) }

// ExportTrace writes a workload as a versioned record/replay CSV (see
// cmd/tapas-trace and the trace CSV schema in the README). LoadTrace
// inverts it losslessly.
func ExportTrace(w io.Writer, wl *Workload) error { return trace.WriteWorkloadCSV(w, wl) }

// LoadTrace reads a workload trace CSV recorded by ExportTrace or
// tapas-trace -export; set the result as Scenario.Trace to replay it.
func LoadTrace(path string) (*Workload, error) { return trace.LoadWorkloadCSV(path) }

// TransformChain is a composable replay-time transform pipeline over a
// recorded Workload: time_warp, demand_scale, endpoint_filter, jitter, and
// splice steps, each a pure deterministic Workload -> Workload function with
// a canonical JSON encoding. Set it as Scenario.TraceTransforms (applied
// inside Compile), the workload.transforms spec field, or apply it directly
// with ApplyTransforms; all three produce byte-identical replays.
type TransformChain = transform.Chain

// ParseTransforms decodes and validates a transform chain from its canonical
// JSON form (a `[{"op": ...}, ...]` array). Unknown ops and fields are
// rejected. Chains containing splice steps additionally need
// TransformChain.Load to resolve the overlay trace before use.
func ParseTransforms(data []byte) (TransformChain, error) { return transform.Parse(data) }

// ApplyTransforms runs a transform chain over a recorded workload and
// returns the transformed copy; the input workload is never mutated.
func ApplyTransforms(c TransformChain, wl *Workload) (*Workload, error) { return c.Apply(wl) }

// AzureImportConfig parameterizes ImportAzureLLMCSV's demand reconstruction.
type AzureImportConfig = trace.AzureImportConfig

// ImportAzureLLMCSV ingests an Azure-LLM-inference-style request log
// (timestamp,endpoint,prompt_tokens,output_tokens rows) and reconstructs a
// replayable Workload via binned demand reconstruction — the ingestion path
// for the production trace formats the paper evaluates against. See
// cmd/tapas-trace -import-azure.
func ImportAzureLLMCSV(r io.Reader, cfg AzureImportConfig) (*Workload, error) {
	return trace.ReadAzureLLMCSV(r, cfg)
}

// ScenarioSpec is a declarative JSON scenario specification: one simulation
// setup (layout scale and A100/H100 mix, workload mix, weather,
// oversubscription, emergency schedule, policy set) plus optional sweep axes
// that expand it into a campaign grid. See examples/scenarios/ and
// cmd/tapas-campaign.
type ScenarioSpec = scenario.Spec

// CampaignParams configures a campaign execution.
type CampaignParams struct {
	// Scale overrides the spec's scale when positive (1.0 = paper scale).
	Scale float64
	// Parallel bounds the worker pool (≤ 0 selects GOMAXPROCS); reports are
	// byte-identical across worker counts.
	Parallel int
}

// LoadScenarioSpec reads and validates a scenario spec file.
func LoadScenarioSpec(path string) (*ScenarioSpec, error) { return scenario.Load(path) }

// ParseScenarioSpec decodes and validates a scenario spec. Unknown fields
// are rejected so typos fail loudly.
func ParseScenarioSpec(data []byte) (*ScenarioSpec, error) { return scenario.Parse(data) }

// RunCampaign expands a scenario spec into its sweep grid, compiles each
// unique scenario once, fans every (scenario, policy) run out across the
// worker pool, and writes the spec's report (text grid, CSV, or JSON) to w.
func RunCampaign(spec *ScenarioSpec, p CampaignParams, w io.Writer) error {
	c, err := spec.Campaign(p.Scale)
	if err != nil {
		return err
	}
	res, err := c.Run(scenario.RunOptions{Parallel: p.Parallel})
	if err != nil {
		return err
	}
	_, err = res.WriteTo(w)
	return err
}

// ExperimentIDs lists every reproducible table/figure in paper order.
func ExperimentIDs() []string {
	out := make([]string, len(experiments.All))
	for i, s := range experiments.All {
		out[i] = s.ID
	}
	return out
}

// ExperimentTitle returns the human-readable title of an experiment.
func ExperimentTitle(id string) (string, bool) {
	s, ok := experiments.Lookup(id)
	return s.Title, ok
}

// ExperimentParams configures experiment regeneration.
type ExperimentParams struct {
	// Scale multiplies cluster size and duration (1.0 = paper scale; 0
	// defaults to 1.0).
	Scale float64
	// Seed drives all deterministic generators.
	Seed uint64
	// Parallel bounds the worker pool used by multi-run experiments and by
	// RunExperiments' cross-experiment fan-out. ≤ 0 selects GOMAXPROCS; 1
	// forces fully sequential execution. Reports are byte-identical across
	// worker counts.
	Parallel int
	// Shards sets each simulation's tick-kernel shard count (see
	// Scenario.Shards; 0/1 serial, negative selects GOMAXPROCS). Reports
	// are byte-identical at any value.
	Shards int
}

// RunExperiment regenerates one of the paper's tables/figures and writes the
// report to w. scale 1.0 is paper scale; smaller values shrink cluster size
// and duration proportionally (0.12 is used by the benchmarks).
// Multi-run experiments fan their independent simulations out across
// GOMAXPROCS workers; use RunExperimentWith to bound the pool.
func RunExperiment(id string, scale float64, seed uint64, w io.Writer) error {
	return RunExperimentWith(id, ExperimentParams{Scale: scale, Seed: seed}, w)
}

// RunExperimentWith is RunExperiment with explicit parallelism control.
func RunExperimentWith(id string, p ExperimentParams, w io.Writer) error {
	spec, ok := experiments.Lookup(id)
	if !ok {
		return fmt.Errorf("tapas: unknown experiment %q (known: %v)", id, ExperimentIDs())
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	rep, err := spec.Run(experiments.Params{Scale: p.Scale, Seed: p.Seed, Parallel: p.Parallel, Shards: p.Shards})
	if err != nil {
		return fmt.Errorf("tapas: experiment %s: %w", id, err)
	}
	_, err = rep.WriteTo(w)
	return err
}

// RunExperiments regenerates several experiments, fanning them out across
// the worker pool, and writes the reports to w in the order of ids — the
// output is byte-identical to running them one by one. Each report is
// buffered in full before anything is written, so a failure in any
// experiment leaves w untouched.
//
// Parallel bounds the total number of concurrent simulations: with several
// ids the fan-out happens across experiments and each experiment runs its
// own jobs sequentially, so the pool is never multiplied. (A single id
// passes Parallel through to the experiment's internal fan-out instead.)
func RunExperiments(ids []string, p ExperimentParams, w io.Writer) error {
	child := p
	if len(ids) > 1 {
		child.Parallel = 1
	}
	bufs, err := experiments.RunParallel(len(ids), p.Parallel, func(_, job int) (*bytes.Buffer, error) {
		var b bytes.Buffer
		if err := RunExperimentWith(ids[job], child, &b); err != nil {
			return nil, err
		}
		return &b, nil
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
