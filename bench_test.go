// Benchmarks: one per paper table/figure (regenerating the experiment at
// reduced scale under testing.B), plus micro-benchmarks of the hot paths
// (placement, routing, instance stepping, regression fitting) and ablation
// benches for the design choices called out in DESIGN.md §6.
package tapas_test

import (
	"io"
	"math/rand/v2"
	"strconv"
	"testing"
	"time"

	tapas "github.com/tapas-sim/tapas"
	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/regress"
	"github.com/tapas-sim/tapas/internal/scenario"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
)

// benchScale keeps per-iteration cost low; cmd/tapas-bench runs paper scale.
const benchScale = 0.1

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := tapas.RunExperiment(id, benchScale, 42, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one bench per table/figure -------------------------------------------

func BenchmarkTable1ConfigImpact(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkFig1LayoutHeatmap(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig2InletTimeline(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3InletRegression(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4SpatialDistribution(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5LoadRegression(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6GPUTimeline(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7GPUTempRegression(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8GPUHeterogeneity(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9TempCDF(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10RowPower(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFig11RandomPlacements(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12TraceCDFs(b *testing.B)          { benchExperiment(b, "fig12") }
func BenchmarkFig13DiurnalPatterns(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14PredictionError(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15PhaseProfiles(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16ParetoFrontier(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig18RealCluster(b *testing.B)        { benchExperiment(b, "fig18") }
func BenchmarkFig19WeekSimulation(b *testing.B)     { benchExperiment(b, "fig19") }
func BenchmarkFig20Ablation(b *testing.B)           { benchExperiment(b, "fig20") }
func BenchmarkFig21Oversubscription(b *testing.B)   { benchExperiment(b, "fig21") }
func BenchmarkTable2Emergencies(b *testing.B)       { benchExperiment(b, "table2") }

// --- micro-benchmarks of hot paths ----------------------------------------

func benchState(b *testing.B) *cluster.State {
	b.Helper()
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	w, err := trace.Generate(trace.WorkloadConfig{
		Servers: len(dc.Servers), SaaSFraction: 0.5,
		Duration: time.Hour, Endpoints: 3, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cluster.NewState(dc, w)
}

func BenchmarkTAPASPlacement(b *testing.B) {
	st := benchState(b)
	pol := core.NewFull()
	if err := pol.Init(st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := st.VMs[i%len(st.VMs)]
		if _, ok := pol.Place(st, vm); !ok {
			b.Fatal("placement failed on an empty cluster")
		}
	}
}

func BenchmarkTAPASRouting(b *testing.B) {
	st := benchState(b)
	pol := core.NewFull()
	if err := pol.Init(st); err != nil {
		b.Fatal(err)
	}
	placed := 0
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == 0 && placed < 20 {
			if err := st.Place(i, placed); err != nil {
				b.Fatal(err)
			}
			placed++
		}
	}
	st.Tick = time.Minute
	ep := st.Work.Endpoints[0]
	b.ReportAllocs() // steady-state routing must stay at 0 allocs/op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Route(st, ep, 1e6, 2.5e5)
	}
}

func BenchmarkInstanceStep(b *testing.B) {
	spec := layout.Spec(layout.A100)
	w := llm.DefaultWorkload()
	in := llm.NewInstance(spec, llm.DefaultConfig(), w, llm.ComputeSLOs(spec, llm.DefaultConfig(), w))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.EnqueueBulk(1024, 256)
		in.Step(time.Minute)
	}
}

// BenchmarkCompileScenario measures building the run-invariant artifacts
// (layout, workload trace, weather, LLM profile, thermal coefficient tables,
// seeded history) that experiment grids share across runs.
func BenchmarkCompileScenario(b *testing.B) {
	sc := sim.SmallScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Compile(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledScenarioRun measures a full run from an existing
// compilation — the marginal cost of each additional policy evaluated over a
// shared scenario (contrast with Run, which compiles per call).
func BenchmarkCompiledScenarioRun(b *testing.B) {
	sc := sim.SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	cs, err := sim.Compile(sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Run(core.NewFull()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTick(b *testing.B) {
	// Cost of one simulated minute across 80 servers under full TAPAS.
	sc := sim.SmallScenario()
	ticks := b.N
	sc.Duration = time.Duration(ticks) * time.Minute
	sc.Workload.Duration = sc.Duration
	b.ReportAllocs() // per-tick steady state is allocation-free (setup amortizes)
	b.ResetTimer()
	if _, err := sim.Run(sc, core.NewFull()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPowerGovTick measures the same per-tick cost under the
// closed-loop power governor: full TAPAS plus a per-endpoint monitor →
// recommender → tuner pass, with a budget tight enough that the controller
// actually tunes frequency caps instead of idling at scale 1.
func BenchmarkPowerGovTick(b *testing.B) {
	sc := sim.SmallScenario()
	ticks := b.N
	sc.Duration = time.Duration(ticks) * time.Minute
	sc.Workload.Duration = sc.Duration
	sc.PowerGov = sim.PowerGov{BudgetFrac: 0.55}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := sim.Run(sc, core.NewPowerGov(false)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOfflineProfiling(b *testing.B) {
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildProfiles(dc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPiecewiseSurfaceFit(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 40
		ys[i] = rng.Float64()
		zs[i] = 18 + 0.5*xs[i] + 2*ys[i] + rng.NormFloat64()*0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.FitSurface(xs, ys, zs, []float64{15, 25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSimHour(b *testing.B) {
	spec := layout.Spec(layout.A100)
	w := llm.DefaultWorkload()
	slos := llm.ComputeSLOs(spec, llm.DefaultConfig(), w)
	rng := rand.New(rand.NewPCG(3, 4))
	reqs := make([]llm.Request, 500)
	at := time.Duration(0)
	for i := range reqs {
		reqs[i] = llm.Request{
			ID: int64(i), Customer: rng.IntN(100),
			PromptTokens: 512 + rng.IntN(1024), OutputTokens: 64 + rng.IntN(256),
			Arrival: at,
		}
		at += time.Duration(rng.Float64() * float64(time.Second))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := llm.NewEngineSim(spec, llm.DefaultConfig())
		e.Run(reqs, time.Hour, slos)
	}
}

// --- compile cache ---------------------------------------------------------

// BenchmarkCompileCacheMiss prices the cache's cold path: a fresh cache per
// iteration, so every Compile pays keying plus the full artifact build.
// Contrast with BenchmarkCompileScenario (no cache) for the keying overhead
// and with BenchmarkCompileCacheHit for the warm speedup.
func BenchmarkCompileCacheMiss(b *testing.B) {
	sc := sim.SmallScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.NewCompileCache(0).Compile(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCacheHit prices the warm path: one cache, one cold fill,
// then every Compile is a level-1 hit returning a runtime variant.
func BenchmarkCompileCacheHit(b *testing.B) {
	sc := sim.SmallScenario()
	cache := sim.NewCompileCache(0)
	if _, err := cache.Compile(sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Compile(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCampaign is a climate sweep whose compile work dominates its runs:
// three regions over the small fleet, one short run each — the shape the
// compile cache targets.
func benchCampaign(b *testing.B) *scenario.Campaign {
	b.Helper()
	spec, err := scenario.Parse([]byte(`{
	  "name": "bench-climate",
	  "layout": {"preset": "small"},
	  "duration": "10m",
	  "policies": ["baseline"],
	  "axes": [{"param": "region", "values": ["hot", "temperate", "cool"]}]
	}`))
	if err != nil {
		b.Fatal(err)
	}
	c, err := spec.Campaign(0)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkCampaignColdCache reruns the campaign against a fresh cache each
// iteration: every grid point compiles (level 2 still shares the layout and
// workload across the climate axis within one run).
func BenchmarkCampaignColdCache(b *testing.B) {
	c := benchCampaign(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(scenario.RunOptions{Cache: sim.NewCompileCache(0)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignWarmCache reruns the same campaign through one shared
// cache: after the warm-up fill, every rerun serves all compilations from
// cache — the daemon's repeated-what-if steady state. The cold/warm ratio is
// the cache's campaign-level speedup on compile work.
func BenchmarkCampaignWarmCache(b *testing.B) {
	c := benchCampaign(b)
	cache := sim.NewCompileCache(0)
	if _, err := c.Run(scenario.RunOptions{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(scenario.RunOptions{Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- hyperscale scale axis -------------------------------------------------

// hyperscaleScenario provisions the paper's fleet at 10x aisles (~10k
// servers) and runs one simulated day. Dirty-set skipping makes steady-state
// ticks cheap, so this mostly prices initial placement plus a day of VM
// churn at scale; the bytes/op recorded in the bench baseline is the memory
// budget for a 10x fleet-day. scripts/bench.sh always runs the Hyperscale
// benches at one iteration regardless of BENCHTIME.
func hyperscaleScenario(b *testing.B) sim.Scenario {
	b.Helper()
	sc := sim.DefaultScenario()
	sc.Layout.FleetScale = 10
	sc.Duration = 24 * time.Hour
	sc.Workload.Duration = sc.Duration
	dc, err := layout.New(sc.Layout)
	if err != nil {
		b.Fatal(err)
	}
	sc.Workload.Servers = len(dc.Servers)
	// Warm the memoized offline profiles for the 10x layout so neither
	// variant's bytes/op carries the one-time profile fit — whichever
	// Hyperscale bench ran first would otherwise report ~50x the bytes of
	// the second, making the recorded budget depend on bench ordering.
	if _, err := core.ProfilesFor(dc); err != nil {
		b.Fatal(err)
	}
	return sc
}

func benchHyperscale(b *testing.B, shards int) {
	sc := hyperscaleScenario(b)
	sc.Shards = shards
	cs, err := sim.Compile(sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Run(core.NewFull()); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial pins the scale axis itself; Sharded runs the same fleet-day on a
// GOMAXPROCS worker pool (byte-identical results — see internal/sim's shard
// tests — so the delta is pure tick-kernel parallelism).
func BenchmarkHyperscaleDaySerial(b *testing.B)  { benchHyperscale(b, 1) }
func BenchmarkHyperscaleDaySharded(b *testing.B) { benchHyperscale(b, -1) }

// --- ablation benches for DESIGN.md §6 design choices ----------------------

// BenchmarkAblationRouterRiskFilter compares TAPAS with and without the
// Route lever (the risk filter + headroom spreading) on the same scenario,
// reporting the peak-power delta as a custom metric.
func BenchmarkAblationRouterRiskFilter(b *testing.B) {
	sc := sim.SmallScenario()
	for i := 0; i < b.N; i++ {
		withRoute, err := sim.Run(sc, core.New(core.Options{Place: true, Route: true, Config: true}))
		if err != nil {
			b.Fatal(err)
		}
		without, err := sim.Run(sc, core.New(core.Options{Place: true, Config: true}))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((1-withRoute.PeakPower()/without.PeakPower())*100, "peak%saved")
	}
}

// BenchmarkAblationTemplatePercentile measures prediction conservatism of
// P50 vs P99 templates (underprediction rate, Fig. 14 design choice).
func BenchmarkAblationTemplatePercentile(b *testing.B) {
	w, err := trace.Generate(trace.WorkloadConfig{
		Servers: 100, SaaSFraction: 0, Duration: 14 * 24 * time.Hour, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	var vm trace.VMSpec
	for _, v := range w.VMs {
		if v.Kind == trace.IaaS {
			vm = v
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 14 * 24 * 6
		series := make([]float64, total)
		for k := range series {
			series[k] = 1000 + 4000*vm.Load.At(time.Duration(k)*10*time.Minute)
		}
		week := total / 2
		for _, pct := range []float64{50, 99} {
			tpl, err := power.BuildTemplate(series[:week], 6, pct)
			if err != nil {
				b.Fatal(err)
			}
			errs := tpl.PredictionErrors(series[week:], 6)
			under := 0
			for _, e := range errs {
				if e < 0 {
					under++
				}
			}
			b.ReportMetric(float64(under)/float64(len(errs))*100, "P"+strconv.Itoa(int(pct))+"-under%")
		}
	}
}
