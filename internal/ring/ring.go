// Package ring provides a fixed-capacity float64 ring buffer for rolling
// telemetry histories. Unlike an append-and-copy bounded slice, a Ring never
// reallocates or shifts after construction: Push is O(1) and the ordered
// contents are reachable either element-wise via At or as a snapshot copied
// into a caller-owned buffer. The simulator records one sample per history
// interval per row/server, so the per-tick hot path must not allocate here.
package ring

// Ring is a bounded rolling window of float64 samples. Once Len reaches the
// capacity, each Push evicts the oldest sample. The zero value is unusable;
// construct with New.
//
// The backing buffer grows geometrically up to the capacity instead of being
// allocated in full at construction: the simulator creates one ring per
// server per run sized for four weeks, while short runs push only a handful
// of samples. Before the ring wraps, head is always 0 and the buffer is
// dense, so growth is a plain copy.
type Ring struct {
	buf      []float64
	head     int // index of the oldest sample
	count    int
	capacity int
}

// New returns an empty ring holding at most capacity samples.
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{capacity: capacity}
}

// Push appends a sample, evicting the oldest once the ring is full.
func (r *Ring) Push(v float64) {
	if r.count < r.capacity {
		if r.count == len(r.buf) {
			newLen := 2 * len(r.buf)
			if newLen == 0 {
				newLen = 64
			}
			if newLen > r.capacity {
				newLen = r.capacity
			}
			grown := make([]float64, newLen)
			copy(grown, r.buf)
			r.buf = grown
		}
		r.buf[r.count] = v
		r.count++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// Len returns the number of stored samples (≤ Cap).
func (r *Ring) Len() int { return r.count }

// Cap returns the fixed capacity.
func (r *Ring) Cap() int { return r.capacity }

// At returns the i-th stored sample in insertion order: At(0) is the oldest,
// At(Len()-1) the newest. It panics when i is out of range, matching slice
// semantics.
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.count {
		panic("ring: index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Last returns the newest sample and whether one exists.
func (r *Ring) Last() (float64, bool) {
	if r.count == 0 {
		return 0, false
	}
	return r.At(r.count - 1), true
}

// Snapshot copies the samples oldest-to-newest into dst (grown as needed)
// and returns it. Passing a previously returned slice makes repeated
// snapshots allocation-free once dst has reached the ring's length.
func (r *Ring) Snapshot(dst []float64) []float64 {
	if cap(dst) < r.count {
		dst = make([]float64, r.count)
	}
	dst = dst[:r.count]
	n := copy(dst, r.buf[r.head:minInt(r.head+r.count, len(r.buf))])
	copy(dst[n:], r.buf[:r.count-n])
	return dst
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
