package ring

import (
	"testing"
)

func TestPushAndOrderBeforeWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 3; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 3 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 3/4", r.Len(), r.Cap())
	}
	for i := 0; i < 3; i++ {
		if got := r.At(i); got != float64(i) {
			t.Errorf("At(%d) = %v, want %d", i, got, i)
		}
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want bounded at 3", r.Len())
	}
	want := []float64{7, 8, 9}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
	if last, ok := r.Last(); !ok || last != 9 {
		t.Errorf("Last = %v,%v, want 9,true", last, ok)
	}
}

func TestSnapshotOrderingAcrossWrap(t *testing.T) {
	r := New(5)
	for i := 0; i < 8; i++ { // head lands mid-buffer
		r.Push(float64(i * 10))
	}
	snap := r.Snapshot(nil)
	want := []float64{30, 40, 50, 60, 70}
	if len(snap) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(snap), len(want))
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("snapshot[%d] = %v, want %v", i, snap[i], want[i])
		}
	}
	// Reusing the returned buffer must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		snap = r.Snapshot(snap)
	})
	if allocs != 0 {
		t.Errorf("Snapshot with reused buffer allocates %.1f times", allocs)
	}
}

func TestPushAllocFree(t *testing.T) {
	r := New(16)
	allocs := testing.AllocsPerRun(1000, func() { r.Push(1.5) })
	if allocs != 0 {
		t.Errorf("Push allocates %.1f times per call", allocs)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	r := New(0) // clamped to capacity 1
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", r.Cap())
	}
	if _, ok := r.Last(); ok {
		t.Error("Last on empty ring must report false")
	}
	if got := r.Snapshot(nil); len(got) != 0 {
		t.Errorf("empty snapshot len = %d, want 0", len(got))
	}
	r.Push(1)
	r.Push(2)
	if r.Len() != 1 || r.buf[0] != 2 {
		t.Errorf("capacity-1 ring must keep only the newest sample")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range must panic")
		}
	}()
	New(2).At(0)
}
