package cluster

import (
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/trace"
)

func newTestState(t *testing.T) *State {
	t.Helper()
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.Generate(trace.WorkloadConfig{
		Servers: len(dc.Servers), SaaSFraction: 0.5,
		Duration: 24 * time.Hour, Endpoints: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewState(dc, w)
}

func TestNewStateInitialization(t *testing.T) {
	st := newTestState(t)
	if len(st.ServerVM) != len(st.DC.Servers) {
		t.Fatal("ServerVM size mismatch")
	}
	for _, vm := range st.ServerVM {
		if vm != -1 {
			t.Fatal("servers must start empty")
		}
	}
	for _, cap := range st.ServerFreqCap {
		if cap != 1 {
			t.Fatal("servers must start uncapped")
		}
	}
	if len(st.FreeServers()) != len(st.DC.Servers) {
		t.Fatal("all servers must start free")
	}
	if st.AirflowLimitFrac != 1 {
		t.Fatal("airflow limit must start at 1")
	}
}

func TestPlaceAndRemove(t *testing.T) {
	st := newTestState(t)
	// Find one IaaS and one SaaS VM.
	iaasID, saasID := -1, -1
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.IaaS && iaasID == -1 {
			iaasID = i
		}
		if vm.Spec.Kind == trace.SaaS && saasID == -1 {
			saasID = i
		}
	}
	if err := st.Place(iaasID, 0); err != nil {
		t.Fatal(err)
	}
	if st.VMs[iaasID].Instance != nil {
		t.Error("IaaS VM must not get an instance")
	}
	if err := st.Place(saasID, 1); err != nil {
		t.Fatal(err)
	}
	if st.VMs[saasID].Instance == nil {
		t.Error("SaaS VM must get a serving instance")
	}
	// Double placement fails.
	if err := st.Place(iaasID, 2); err == nil {
		t.Error("placing an already-placed VM must fail")
	}
	if err := st.Place(saasID+1, 0); err == nil {
		t.Error("placing onto an occupied server must fail")
	}
	// Out-of-range checks.
	if err := st.Place(-1, 0); err == nil {
		t.Error("negative VM must fail")
	}
	if err := st.Place(0, 99999); err == nil {
		t.Error("out-of-range server must fail")
	}
	st.Remove(iaasID)
	if st.ServerVM[0] != -1 || st.VMs[iaasID].Server != -1 {
		t.Error("Remove must unbind")
	}
}

func TestRowMix(t *testing.T) {
	st := newTestState(t)
	row0 := st.DC.Rows[0].Servers
	placed := 0
	for _, vm := range st.VMs {
		if placed >= 4 {
			break
		}
		if vm.Server == -1 {
			vmID := vm.Spec.ID
			if err := st.Place(vmID, row0[placed].ID); err != nil {
				t.Fatal(err)
			}
			placed++
		}
	}
	iaas, saas := st.RowMix(0)
	if iaas+saas != 4 {
		t.Errorf("row mix total = %d, want 4", iaas+saas)
	}
}

func TestEndpointInstances(t *testing.T) {
	st := newTestState(t)
	count := 0
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == 0 && count < 3 {
			if err := st.Place(i, count); err != nil {
				t.Fatal(err)
			}
			count++
		}
	}
	got := st.EndpointInstances(0)
	if len(got) != count {
		t.Errorf("endpoint instances = %d, want %d", len(got), count)
	}
}

func TestRecordHistoryDownsamples(t *testing.T) {
	st := newTestState(t)
	tick := time.Minute
	for i := 0; i < 25; i++ {
		st.RowPowerW[0] = float64(i)
		st.RecordHistory(tick)
	}
	// 25 minutes at 10-minute resolution ⇒ 2 samples.
	if st.RowPowerHist[0].Len() != 2 {
		t.Errorf("history samples = %d, want 2", st.RowPowerHist[0].Len())
	}
	// The newest recorded sample is the row power at the last flush.
	if last, ok := st.RowPowerHist[0].Last(); !ok || last != 19 {
		t.Errorf("last history sample = %v,%v, want 19,true", last, ok)
	}
}

func TestHistoryBounded(t *testing.T) {
	st := newTestState(t)
	for i := 0; i < 5000; i++ {
		st.RecordHistory(HistoryRes)
	}
	if n := st.RowPowerHist[0].Len(); n > HistoryMaxSamples {
		t.Errorf("history grew to %d, want bounded", n)
	}
}

// TestIndexesTrackPlaceRemove verifies the incremental endpoint and
// free-server indexes stay consistent with a full scan through churn.
func TestIndexesTrackPlaceRemove(t *testing.T) {
	st := newTestState(t)
	var placed []int
	srv := 0
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == 0 && len(placed) < 6 {
			if err := st.Place(i, srv); err != nil {
				t.Fatal(err)
			}
			placed = append(placed, i)
			srv++
		}
	}
	check := func() {
		t.Helper()
		var want []*VM
		for _, vm := range st.VMs {
			if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == 0 && vm.Server >= 0 && vm.Instance != nil {
				want = append(want, vm)
			}
		}
		got := st.EndpointInstances(0)
		if len(got) != len(want) {
			t.Fatalf("index has %d instances, scan finds %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("index order diverges from scan at %d", i)
			}
		}
		free := st.FreeServers()
		if len(free) != st.NumFree() {
			t.Fatalf("free list len %d != NumFree %d", len(free), st.NumFree())
		}
		n := 0
		for id, vm := range st.ServerVM {
			if vm == -1 {
				if free[n] != id {
					t.Fatalf("free list out of order at %d", n)
				}
				n++
			}
		}
	}
	check()
	// Remove from the middle, then re-place on a different server
	// (migration-shaped churn).
	mid := placed[len(placed)/2]
	st.Remove(mid)
	check()
	if err := st.Place(mid, len(st.ServerVM)-1); err != nil {
		t.Fatal(err)
	}
	check()
	for _, id := range placed {
		st.Remove(id)
	}
	check()
	if st.NumFree() != len(st.ServerVM) {
		t.Errorf("NumFree = %d after removing all, want %d", st.NumFree(), len(st.ServerVM))
	}
}

// TestEndpointInstancesAllocFree locks in the O(1) zero-allocation lookup
// the routing hot loop depends on.
func TestEndpointInstancesAllocFree(t *testing.T) {
	st := newTestState(t)
	count := 0
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == 0 && count < 5 {
			if err := st.Place(i, count); err != nil {
				t.Fatal(err)
			}
			count++
		}
	}
	var got []*VM
	allocs := testing.AllocsPerRun(200, func() {
		got = st.EndpointInstances(0)
	})
	if allocs != 0 {
		t.Errorf("EndpointInstances allocates %.1f times per call, want 0", allocs)
	}
	if len(got) != count {
		t.Errorf("lookup returned %d instances, want %d", len(got), count)
	}
	// Steady-state FreeServers (no churn between calls) is also alloc-free.
	st.FreeServers()
	allocs = testing.AllocsPerRun(200, func() { st.FreeServers() })
	if allocs != 0 {
		t.Errorf("FreeServers allocates %.1f times per call steady-state, want 0", allocs)
	}
}

func TestEstimateVMPeakLoad(t *testing.T) {
	st := newTestState(t)
	// Unknown customer ⇒ assume peak (§4.1).
	unknown := trace.VMSpec{Kind: trace.IaaS, Customer: 999}
	if got := st.EstimateVMPeakLoad(unknown); got != 1 {
		t.Errorf("unknown customer estimate = %v, want 1", got)
	}
	st.ObserveCustomerLoad(7, 0.6)
	st.ObserveCustomerLoad(7, 0.4) // peaks keep the max
	known := trace.VMSpec{Kind: trace.IaaS, Customer: 7}
	if got := st.EstimateVMPeakLoad(known); got != 0.6 {
		t.Errorf("known customer estimate = %v, want 0.6", got)
	}
	// SaaS with no history ⇒ peak.
	saas := trace.VMSpec{Kind: trace.SaaS, Endpoint: 0}
	if got := st.EstimateVMPeakLoad(saas); got != 1 {
		t.Errorf("unknown endpoint estimate = %v, want 1", got)
	}
	st.ObserveEndpointDemand(0, 100) // tiny demand vs capacity
	if got := st.EstimateVMPeakLoad(saas); got >= 1 {
		t.Errorf("known endpoint estimate = %v, want < 1", got)
	}
}

func TestAisleLimitUnderEmergency(t *testing.T) {
	st := newTestState(t)
	normal := st.AisleLimitCFM(0)
	st.AirflowLimitFrac = 0.9
	if got := st.AisleLimitCFM(0); got != normal*0.9 {
		t.Errorf("emergency aisle limit = %v, want %v", got, normal*0.9)
	}
}
