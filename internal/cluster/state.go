// Package cluster holds the mutable state of a simulated GPU cluster: which
// VM occupies which server, the SaaS instances running on those VMs, and the
// live telemetry (temperatures, power, airflow) that the simulator refreshes
// every tick and that scheduling policies consume.
//
// Policies must only read the telemetry and learned models reachable from
// State — never the layout heterogeneity ground truth.
package cluster

import (
	"fmt"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/ring"
	"github.com/tapas-sim/tapas/internal/trace"
)

// VM is a placed (or pending) GPU VM.
type VM struct {
	Spec     trace.VMSpec
	Server   int           // -1 while unplaced
	Instance *llm.Instance // non-nil for placed SaaS VMs
}

// HistoryRes is the sensor aggregation interval (the paper's 10-minute
// reporting granularity).
const HistoryRes = 10 * time.Minute

// HistoryMaxSamples bounds the rolling histories to four weeks at HistoryRes.
const HistoryMaxSamples = 4 * 7 * 24 * 6

// State is the live cluster.
type State struct {
	DC *layout.Datacenter
	// Spec is the base hardware generation (Config.GPU). Heterogeneous
	// fleets carry per-server specs; use ServerGPUSpec/ProfileFor for
	// anything that differs across generations (TDP, idle power, serving
	// profile). The thermal throttle threshold is uniform across supported
	// generations, so policies may read Spec.ThrottleTempC directly.
	Spec    layout.GPUSpec
	Work    *trace.Workload
	Profile *llm.Profile
	SLOs    llm.SLOs
	Budget  *power.Budget

	// modelProfiles maps a GPU generation to its serving profile; uniform
	// fleets point every present generation at Profile. srvModel is the
	// per-server generation index behind ServerGPUSpec/ProfileFor.
	modelProfiles [layout.GPUModelCount]*llm.Profile
	srvModel      []uint8

	VMs      []*VM
	ServerVM []int // server → VM index, or -1

	// Telemetry, refreshed by the simulator each tick. Now is the
	// simulation clock (governs VM arrivals/lifetimes); Wall additionally
	// includes the scenario's time-of-day offset and drives load patterns.
	Now              time.Duration
	Wall             time.Duration
	Tick             time.Duration
	OutsideC         float64
	DCLoadFrac       float64
	ServerInletC     []float64
	ServerPowerW     []float64
	ServerLoadFrac   []float64
	ServerAirflowCFM []float64
	ServerFreqCap    []float64 // 1 = uncapped; lowered by capping
	// GPUPowerFrac and GPUTempC are flat per-GPU telemetry indexed
	// server*GPUsPerServer + gpu; use GPUFracs/GPUTemps for the per-server
	// view. The flat layout keeps the simulator's fleet sweeps on contiguous
	// memory instead of a slice-of-slices pointer chase.
	GPUPowerFrac []float64
	GPUTempC     []float64
	// ServerHotGPUTempC is each server's hottest GPU temperature, maintained
	// by the tick kernel alongside GPUTempC so per-server consumers (the
	// router's risk gate) read one slot instead of rescanning the GPU block.
	ServerHotGPUTempC []float64
	GPUsPerServer     int
	RowPowerW         []float64
	AisleDemandCFM    []float64
	AisleRecircC      []float64
	// AirflowLimitFrac scales provisioned aisle airflow (0.9 during a
	// cooling emergency).
	AirflowLimitFrac float64

	// RowOccEpoch counts placements and removals per row. The simulator's
	// dirty-set tick compares epochs across ticks to prove a row's occupancy
	// inputs are unchanged and skip re-evaluating it; anything that binds or
	// unbinds VMs goes through Place/Remove, so the counter is exact.
	RowOccEpoch []uint64

	// Rolling history at HistoryRes for templates and placement prediction,
	// bounded to HistoryMaxSamples without per-append copying.
	RowPowerHist []*ring.Ring
	// ServerInletHist is nil unless EnableServerInletHistory was called:
	// per-server rings cost O(servers × HistoryMaxSamples) memory and no
	// policy consumes them, so hyperscale runs keep memory O(active series)
	// by default.
	ServerInletHist []*ring.Ring
	// CustomerPeakLoad tracks the observed peak GPU load fraction per IaaS
	// customer; EndpointPeakPerVM tracks peak per-VM token demand per
	// endpoint. Placement uses these as the "same user / same endpoint"
	// estimates of §4.1.
	CustomerPeakLoad  map[int]float64
	EndpointPeakPerVM map[int]float64
	// customerPeak mirrors CustomerPeakLoad densely for the customer IDs
	// present in the workload: ObserveCustomerLoad runs per IaaS server per
	// tick and the map lookup dominated it. The map stays the source
	// external readers see; the mirror only short-circuits the no-new-peak
	// common case.
	customerPeak []float64

	histAccum time.Duration

	// Incremental indexes maintained by Place/Remove so the per-tick
	// queries below are lookups rather than full-VM scans.
	epInstances [][]*VM // endpoint → placed serving VMs, ascending VM ID
	rowIaaS     []int   // row → placed IaaS VM count
	rowSaaS     []int   // row → placed SaaS VM count
	freeCount   int
	freeIDs     []int // cached ascending free-server IDs; valid when !freeDirty
	freeDirty   bool
}

// NewState initializes cluster state for a datacenter and workload, building
// a fresh LLM profile. Prefer NewStateFrom when running the same scenario
// repeatedly: the profile depends only on the hardware generation and can be
// shared read-only across runs.
func NewState(dc *layout.Datacenter, w *trace.Workload) *State {
	return NewStateFrom(dc, w, llm.BuildProfile(layout.Spec(dc.Config.GPU), llm.DefaultWorkload()))
}

// NewStateFrom initializes cluster state around a pre-built (immutable) LLM
// profile.
func NewStateFrom(dc *layout.Datacenter, w *trace.Workload, profile *llm.Profile) *State {
	spec := layout.Spec(dc.Config.GPU)
	n := len(dc.Servers)
	st := &State{
		DC:      dc,
		Spec:    spec,
		Work:    w,
		Profile: profile,
		SLOs:    profile.SLOs,
		Budget:  power.NewBudget(dc),

		ServerVM:          make([]int, n),
		ServerInletC:      make([]float64, n),
		ServerPowerW:      make([]float64, n),
		ServerLoadFrac:    make([]float64, n),
		ServerAirflowCFM:  make([]float64, n),
		ServerFreqCap:     make([]float64, n),
		GPUPowerFrac:      make([]float64, n*spec.GPUsPerServer),
		GPUTempC:          make([]float64, n*spec.GPUsPerServer),
		ServerHotGPUTempC: make([]float64, n),
		GPUsPerServer:     spec.GPUsPerServer,
		RowPowerW:         make([]float64, len(dc.Rows)),
		AisleDemandCFM:    make([]float64, len(dc.Aisles)),
		AisleRecircC:      make([]float64, len(dc.Aisles)),
		AirflowLimitFrac:  1,

		RowOccEpoch:       make([]uint64, len(dc.Rows)),
		RowPowerHist:      make([]*ring.Ring, len(dc.Rows)),
		CustomerPeakLoad:  make(map[int]float64),
		EndpointPeakPerVM: make(map[int]float64),

		rowIaaS:   make([]int, len(dc.Rows)),
		rowSaaS:   make([]int, len(dc.Rows)),
		freeCount: n,
		freeDirty: true,
	}
	for i := range st.ServerVM {
		st.ServerVM[i] = -1
		st.ServerFreqCap[i] = 1
	}
	st.srvModel = make([]uint8, n)
	for i, srv := range dc.Servers {
		st.srvModel[i] = uint8(srv.GPU.Model)
	}
	st.modelProfiles[spec.Model] = profile
	for r := range st.RowPowerHist {
		st.RowPowerHist[r] = ring.New(HistoryMaxSamples)
	}
	if w != nil {
		st.VMs = make([]*VM, len(w.VMs))
		maxCustomer := -1
		for i := range w.VMs {
			st.VMs[i] = &VM{Spec: w.VMs[i], Server: -1}
			if c := w.VMs[i].Customer; c > maxCustomer {
				maxCustomer = c
			}
		}
		st.epInstances = make([][]*VM, len(w.Endpoints))
		st.customerPeak = make([]float64, maxCustomer+1)
	}
	return st
}

// Place binds a VM to a free server; SaaS VMs get a serving instance at the
// default configuration.
func (st *State) Place(vmID, serverID int) error {
	if vmID < 0 || vmID >= len(st.VMs) {
		return fmt.Errorf("cluster: VM %d out of range", vmID)
	}
	if serverID < 0 || serverID >= len(st.ServerVM) {
		return fmt.Errorf("cluster: server %d out of range", serverID)
	}
	if st.ServerVM[serverID] != -1 {
		return fmt.Errorf("cluster: server %d already hosts VM %d", serverID, st.ServerVM[serverID])
	}
	vm := st.VMs[vmID]
	if vm.Server != -1 {
		return fmt.Errorf("cluster: VM %d already placed on server %d", vmID, vm.Server)
	}
	vm.Server = serverID
	st.ServerVM[serverID] = vmID
	st.freeCount--
	st.freeDirty = true
	row := st.DC.Servers[serverID].Row
	st.RowOccEpoch[row]++
	if vm.Spec.Kind == trace.SaaS {
		st.rowSaaS[row]++
		ep := st.Work.Endpoints[vm.Spec.Endpoint]
		vm.Instance = llm.NewInstance(st.DC.Servers[serverID].GPU, llm.DefaultConfig(), ep.Work, st.SLOs)
		st.indexEndpointVM(vm)
	} else {
		st.rowIaaS[row]++
	}
	return nil
}

// Remove unbinds a VM from its server (VM departure).
func (st *State) Remove(vmID int) {
	vm := st.VMs[vmID]
	if vm.Server >= 0 {
		row := st.DC.Servers[vm.Server].Row
		st.RowOccEpoch[row]++
		if vm.Spec.Kind == trace.SaaS {
			st.rowSaaS[row]--
			st.unindexEndpointVM(vm)
		} else {
			st.rowIaaS[row]--
		}
		st.ServerVM[vm.Server] = -1
		st.ServerFreqCap[vm.Server] = 1
		st.freeCount++
		st.freeDirty = true
		vm.Server = -1
	}
	vm.Instance = nil
}

// indexEndpointVM inserts a freshly placed SaaS VM into its endpoint's
// instance list, keeping ascending-VM-ID order so consumers iterate in the
// same order the previous full scan produced.
func (st *State) indexEndpointVM(vm *VM) {
	insts := st.epInstances[vm.Spec.Endpoint]
	pos := len(insts)
	for pos > 0 && insts[pos-1].Spec.ID > vm.Spec.ID {
		pos--
	}
	insts = append(insts, nil)
	copy(insts[pos+1:], insts[pos:])
	insts[pos] = vm
	st.epInstances[vm.Spec.Endpoint] = insts
}

func (st *State) unindexEndpointVM(vm *VM) {
	insts := st.epInstances[vm.Spec.Endpoint]
	for i, v := range insts {
		if v == vm {
			copy(insts[i:], insts[i+1:])
			st.epInstances[vm.Spec.Endpoint] = insts[:len(insts)-1]
			return
		}
	}
}

// FreeServers returns the IDs of unoccupied servers in ascending order. The
// returned slice is owned by the State and valid until the next Place or
// Remove; callers must not mutate or retain it.
func (st *State) FreeServers() []int {
	if st.freeDirty {
		if cap(st.freeIDs) < st.freeCount {
			st.freeIDs = make([]int, 0, len(st.ServerVM))
		}
		st.freeIDs = st.freeIDs[:0]
		for id, vm := range st.ServerVM {
			if vm == -1 {
				st.freeIDs = append(st.freeIDs, id)
			}
		}
		st.freeDirty = false
	}
	return st.freeIDs
}

// NumFree returns the number of unoccupied servers.
func (st *State) NumFree() int { return st.freeCount }

// RowMix counts placed IaaS and SaaS VMs in a row.
func (st *State) RowMix(row int) (iaas, saas int) {
	return st.rowIaaS[row], st.rowSaaS[row]
}

// EndpointInstances returns the placed, serving VMs of an endpoint in
// ascending VM-ID order. The returned slice is owned by the State and valid
// until the next Place or Remove; callers must not mutate or retain it.
func (st *State) EndpointInstances(endpoint int) []*VM {
	if endpoint < 0 || endpoint >= len(st.epInstances) {
		return nil
	}
	return st.epInstances[endpoint]
}

// SetModelProfile installs the serving profile of a non-base GPU generation
// (heterogeneous fleets). Must be called before the run starts.
func (st *State) SetModelProfile(m layout.GPUModel, p *llm.Profile) {
	st.modelProfiles[m] = p
}

// ProfileFor returns the serving profile matching a server's GPU generation;
// uniform fleets always return Profile.
func (st *State) ProfileFor(server int) *llm.Profile {
	if p := st.modelProfiles[st.srvModel[server]]; p != nil {
		return p
	}
	return st.Profile
}

// ServerGPUSpec returns a server's published hardware specification (TDP,
// idle power, clock range) by generation. Published specs are fair game for
// policies — unlike the per-server thermal heterogeneity, which stays hidden
// behind profiled sensor data.
func (st *State) ServerGPUSpec(server int) *layout.GPUSpec {
	return &st.DC.Servers[server].GPU
}

// GPUFracs returns the per-GPU power fractions of one server as a subslice
// of the flat telemetry array.
func (st *State) GPUFracs(server int) []float64 {
	i := server * st.GPUsPerServer
	return st.GPUPowerFrac[i : i+st.GPUsPerServer]
}

// GPUTemps returns the per-GPU temperatures of one server as a subslice of
// the flat telemetry array.
func (st *State) GPUTemps(server int) []float64 {
	i := server * st.GPUsPerServer
	return st.GPUTempC[i : i+st.GPUsPerServer]
}

// SeedHistory installs precomputed "previous week" demand estimates (§3.1):
// per-customer peak IaaS load and per-endpoint peak per-VM token demand. The
// maps are copied, so a compiled scenario can hand the same seeds to many
// concurrent runs.
func (st *State) SeedHistory(customerPeak, endpointPeak map[int]float64) {
	for c, v := range customerPeak {
		st.CustomerPeakLoad[c] = v
		if c >= 0 && c < len(st.customerPeak) && v > st.customerPeak[c] {
			st.customerPeak[c] = v
		}
	}
	for e, v := range endpointPeak {
		st.EndpointPeakPerVM[e] = v
	}
}

// AisleLimitCFM returns the effective provisioned airflow of an aisle under
// the current cooling-emergency factor.
func (st *State) AisleLimitCFM(aisle int) float64 {
	return st.DC.Aisles[aisle].ProvAirflowCFM * st.AirflowLimitFrac
}

// EnableServerInletHistory allocates the per-server inlet-temperature rings.
// They are off by default — O(servers × HistoryMaxSamples) memory that no
// built-in policy reads — so only analyses that sample per-server inlet
// history opt in, before the run starts.
func (st *State) EnableServerInletHistory() {
	if st.ServerInletHist != nil {
		return
	}
	st.ServerInletHist = make([]*ring.Ring, len(st.ServerVM))
	for s := range st.ServerInletHist {
		st.ServerInletHist[s] = ring.New(HistoryMaxSamples)
	}
}

// RecordHistory appends the current telemetry to the rolling history when a
// full HistoryRes interval has elapsed. Histories are bounded to four weeks.
func (st *State) RecordHistory(dt time.Duration) {
	st.histAccum += dt
	if st.histAccum < HistoryRes {
		return
	}
	st.histAccum = 0
	for r := range st.RowPowerHist {
		st.RowPowerHist[r].Push(st.RowPowerW[r])
	}
	for s := range st.ServerInletHist {
		st.ServerInletHist[s].Push(st.ServerInletC[s])
	}
}

// ObserveCustomerLoad updates the per-customer peak IaaS load estimate.
func (st *State) ObserveCustomerLoad(customer int, loadFrac float64) {
	if customer >= 0 && customer < len(st.customerPeak) {
		// Dense fast path: an absent map entry compares as 0, which is
		// exactly what an untouched mirror slot holds, so the no-new-peak
		// common case never reaches the map.
		if loadFrac <= st.customerPeak[customer] {
			return
		}
		st.customerPeak[customer] = loadFrac
	}
	if loadFrac > st.CustomerPeakLoad[customer] {
		st.CustomerPeakLoad[customer] = loadFrac
	}
}

// ObserveEndpointDemand updates the per-endpoint peak per-VM token demand.
func (st *State) ObserveEndpointDemand(endpoint int, perVMTokens float64) {
	if perVMTokens > st.EndpointPeakPerVM[endpoint] {
		st.EndpointPeakPerVM[endpoint] = perVMTokens
	}
}

// EstimateVMPeakLoad predicts the peak GPU load fraction a new VM will
// impose, using same-customer / same-endpoint history and assuming peak
// when history is insufficient (§4.1).
func (st *State) EstimateVMPeakLoad(spec trace.VMSpec) float64 {
	if spec.Kind == trace.IaaS {
		if peak, ok := st.CustomerPeakLoad[spec.Customer]; ok {
			return peak
		}
		return 1
	}
	ep := st.Work.Endpoints[spec.Endpoint]
	if peak, ok := st.EndpointPeakPerVM[spec.Endpoint]; ok {
		cap := capacityTokensPerSec(st, ep)
		if cap > 0 {
			f := peak / cap
			if f > 1 {
				f = 1
			}
			return f
		}
	}
	return 1
}

func capacityTokensPerSec(st *State, ep trace.EndpointSpec) float64 {
	e, ok := st.Profile.Entry(llm.DefaultConfig())
	if !ok {
		return 0
	}
	return e.Goodput
}
