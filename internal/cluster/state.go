// Package cluster holds the mutable state of a simulated GPU cluster: which
// VM occupies which server, the SaaS instances running on those VMs, and the
// live telemetry (temperatures, power, airflow) that the simulator refreshes
// every tick and that scheduling policies consume.
//
// Policies must only read the telemetry and learned models reachable from
// State — never the layout heterogeneity ground truth.
package cluster

import (
	"fmt"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/trace"
)

// VM is a placed (or pending) GPU VM.
type VM struct {
	Spec     trace.VMSpec
	Server   int           // -1 while unplaced
	Instance *llm.Instance // non-nil for placed SaaS VMs
}

// HistoryRes is the sensor aggregation interval (the paper's 10-minute
// reporting granularity).
const HistoryRes = 10 * time.Minute

// State is the live cluster.
type State struct {
	DC      *layout.Datacenter
	Spec    layout.GPUSpec
	Work    *trace.Workload
	Profile *llm.Profile
	SLOs    llm.SLOs
	Budget  *power.Budget

	VMs      []*VM
	ServerVM []int // server → VM index, or -1

	// Telemetry, refreshed by the simulator each tick. Now is the
	// simulation clock (governs VM arrivals/lifetimes); Wall additionally
	// includes the scenario's time-of-day offset and drives load patterns.
	Now              time.Duration
	Wall             time.Duration
	Tick             time.Duration
	OutsideC         float64
	DCLoadFrac       float64
	ServerInletC     []float64
	ServerPowerW     []float64
	ServerLoadFrac   []float64
	ServerAirflowCFM []float64
	ServerFreqCap    []float64   // 1 = uncapped; lowered by capping
	GPUPowerFrac     [][]float64 // per server, per GPU
	GPUTempC         [][]float64
	RowPowerW        []float64
	AisleDemandCFM   []float64
	AisleRecircC     []float64
	// AirflowLimitFrac scales provisioned aisle airflow (0.9 during a
	// cooling emergency).
	AirflowLimitFrac float64

	// Rolling history at HistoryRes for templates and placement prediction.
	RowPowerHist    [][]float64
	ServerInletHist [][]float64
	// CustomerPeakLoad tracks the observed peak GPU load fraction per IaaS
	// customer; EndpointPeakPerVM tracks peak per-VM token demand per
	// endpoint. Placement uses these as the "same user / same endpoint"
	// estimates of §4.1.
	CustomerPeakLoad  map[int]float64
	EndpointPeakPerVM map[int]float64

	histAccum time.Duration
}

// NewState initializes cluster state for a datacenter and workload.
func NewState(dc *layout.Datacenter, w *trace.Workload) *State {
	spec := layout.Spec(dc.Config.GPU)
	profile := llm.BuildProfile(spec, llm.DefaultWorkload())
	n := len(dc.Servers)
	st := &State{
		DC:      dc,
		Spec:    spec,
		Work:    w,
		Profile: profile,
		SLOs:    profile.SLOs,
		Budget:  power.NewBudget(dc),

		ServerVM:         make([]int, n),
		ServerInletC:     make([]float64, n),
		ServerPowerW:     make([]float64, n),
		ServerLoadFrac:   make([]float64, n),
		ServerAirflowCFM: make([]float64, n),
		ServerFreqCap:    make([]float64, n),
		GPUPowerFrac:     make([][]float64, n),
		GPUTempC:         make([][]float64, n),
		RowPowerW:        make([]float64, len(dc.Rows)),
		AisleDemandCFM:   make([]float64, len(dc.Aisles)),
		AisleRecircC:     make([]float64, len(dc.Aisles)),
		AirflowLimitFrac: 1,

		RowPowerHist:      make([][]float64, len(dc.Rows)),
		ServerInletHist:   make([][]float64, n),
		CustomerPeakLoad:  make(map[int]float64),
		EndpointPeakPerVM: make(map[int]float64),
	}
	for i := range st.ServerVM {
		st.ServerVM[i] = -1
		st.ServerFreqCap[i] = 1
		st.GPUPowerFrac[i] = make([]float64, spec.GPUsPerServer)
		st.GPUTempC[i] = make([]float64, spec.GPUsPerServer)
	}
	if w != nil {
		st.VMs = make([]*VM, len(w.VMs))
		for i := range w.VMs {
			st.VMs[i] = &VM{Spec: w.VMs[i], Server: -1}
		}
	}
	return st
}

// Place binds a VM to a free server; SaaS VMs get a serving instance at the
// default configuration.
func (st *State) Place(vmID, serverID int) error {
	if vmID < 0 || vmID >= len(st.VMs) {
		return fmt.Errorf("cluster: VM %d out of range", vmID)
	}
	if serverID < 0 || serverID >= len(st.ServerVM) {
		return fmt.Errorf("cluster: server %d out of range", serverID)
	}
	if st.ServerVM[serverID] != -1 {
		return fmt.Errorf("cluster: server %d already hosts VM %d", serverID, st.ServerVM[serverID])
	}
	vm := st.VMs[vmID]
	if vm.Server != -1 {
		return fmt.Errorf("cluster: VM %d already placed on server %d", vmID, vm.Server)
	}
	vm.Server = serverID
	st.ServerVM[serverID] = vmID
	if vm.Spec.Kind == trace.SaaS {
		ep := st.Work.Endpoints[vm.Spec.Endpoint]
		vm.Instance = llm.NewInstance(st.Spec, llm.DefaultConfig(), ep.Work, st.SLOs)
	}
	return nil
}

// Remove unbinds a VM from its server (VM departure).
func (st *State) Remove(vmID int) {
	vm := st.VMs[vmID]
	if vm.Server >= 0 {
		st.ServerVM[vm.Server] = -1
		st.ServerFreqCap[vm.Server] = 1
		vm.Server = -1
	}
	vm.Instance = nil
}

// FreeServers returns the IDs of unoccupied servers.
func (st *State) FreeServers() []int {
	var out []int
	for id, vm := range st.ServerVM {
		if vm == -1 {
			out = append(out, id)
		}
	}
	return out
}

// RowMix counts placed IaaS and SaaS VMs in a row.
func (st *State) RowMix(row int) (iaas, saas int) {
	for _, srv := range st.DC.Rows[row].Servers {
		vmID := st.ServerVM[srv.ID]
		if vmID == -1 {
			continue
		}
		if st.VMs[vmID].Spec.Kind == trace.IaaS {
			iaas++
		} else {
			saas++
		}
	}
	return iaas, saas
}

// EndpointInstances returns the placed, serving VMs of an endpoint.
func (st *State) EndpointInstances(endpoint int) []*VM {
	var out []*VM
	for _, vm := range st.VMs {
		if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == endpoint && vm.Server >= 0 && vm.Instance != nil {
			out = append(out, vm)
		}
	}
	return out
}

// AisleLimitCFM returns the effective provisioned airflow of an aisle under
// the current cooling-emergency factor.
func (st *State) AisleLimitCFM(aisle int) float64 {
	return st.DC.Aisles[aisle].ProvAirflowCFM * st.AirflowLimitFrac
}

// RecordHistory appends the current telemetry to the rolling history when a
// full HistoryRes interval has elapsed. Histories are bounded to four weeks.
func (st *State) RecordHistory(dt time.Duration) {
	st.histAccum += dt
	if st.histAccum < HistoryRes {
		return
	}
	st.histAccum = 0
	const maxLen = 4 * 7 * 24 * 6 // four weeks at 10-minute resolution
	for r := range st.RowPowerHist {
		st.RowPowerHist[r] = appendBounded(st.RowPowerHist[r], st.RowPowerW[r], maxLen)
	}
	for s := range st.ServerInletHist {
		st.ServerInletHist[s] = appendBounded(st.ServerInletHist[s], st.ServerInletC[s], maxLen)
	}
}

func appendBounded(xs []float64, v float64, maxLen int) []float64 {
	xs = append(xs, v)
	if len(xs) > maxLen {
		copy(xs, xs[len(xs)-maxLen:])
		xs = xs[:maxLen]
	}
	return xs
}

// ObserveCustomerLoad updates the per-customer peak IaaS load estimate.
func (st *State) ObserveCustomerLoad(customer int, loadFrac float64) {
	if loadFrac > st.CustomerPeakLoad[customer] {
		st.CustomerPeakLoad[customer] = loadFrac
	}
}

// ObserveEndpointDemand updates the per-endpoint peak per-VM token demand.
func (st *State) ObserveEndpointDemand(endpoint int, perVMTokens float64) {
	if perVMTokens > st.EndpointPeakPerVM[endpoint] {
		st.EndpointPeakPerVM[endpoint] = perVMTokens
	}
}

// EstimateVMPeakLoad predicts the peak GPU load fraction a new VM will
// impose, using same-customer / same-endpoint history and assuming peak
// when history is insufficient (§4.1).
func (st *State) EstimateVMPeakLoad(spec trace.VMSpec) float64 {
	if spec.Kind == trace.IaaS {
		if peak, ok := st.CustomerPeakLoad[spec.Customer]; ok {
			return peak
		}
		return 1
	}
	ep := st.Work.Endpoints[spec.Endpoint]
	if peak, ok := st.EndpointPeakPerVM[spec.Endpoint]; ok {
		cap := capacityTokensPerSec(st, ep)
		if cap > 0 {
			f := peak / cap
			if f > 1 {
				f = 1
			}
			return f
		}
	}
	return 1
}

func capacityTokensPerSec(st *State, ep trace.EndpointSpec) float64 {
	e, ok := st.Profile.Entry(llm.DefaultConfig())
	if !ok {
		return 0
	}
	return e.Goodput
}
