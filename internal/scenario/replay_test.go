package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// syntheticQuickSpec is the generated-workload side of the record/replay
// golden: a single-point quick campaign whose CSV report carries
// full-precision metric values, so equality below is byte-exact.
const syntheticQuickSpec = `{
  "name": "gen",
  "layout": {"preset": "small"},
  "duration": "20m",
  "policies": ["baseline", "tapas"],
  "report": {
    "format": "csv",
    "metrics": ["max_temp_c", "peak_power_kw", "energy_mwh", "throttle_pct",
                "power_cap_pct", "slo_violation_pct", "quality", "service_rate",
                "iaas_perf_loss_pct", "placement_rejects"]
  }
}`

// TestReplayCampaignReproducesSyntheticReport is the end-to-end golden of
// the record/replay pipeline: run a synthetic campaign, export its workload
// with the CSV writer, replay the exported trace through the workload.trace
// spec field, and require the campaign report to be byte-identical — at any
// worker count.
func TestReplayCampaignReproducesSyntheticReport(t *testing.T) {
	synth, err := Parse([]byte(syntheticQuickSpec))
	if err != nil {
		t.Fatal(err)
	}
	want := runCampaign(t, synth, 0)

	// Record: materialize the exact workload the synthetic campaign
	// simulated and archive it next to a replay spec in a temp dir.
	c, err := synth.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := sim.GenerateWorkload(c.Points[0].Scenario)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := trace.SaveWorkloadCSV(filepath.Join(dir, "recorded.csv"), wl); err != nil {
		t.Fatal(err)
	}
	replayJSON := strings.Replace(syntheticQuickSpec, `"layout": {"preset": "small"},`,
		`"layout": {"preset": "small"},
  "workload": {"trace": "recorded.csv"},`, 1)
	specPath := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(specPath, []byte(replayJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	// Replay through the file loader, so relative-path resolution against
	// the spec directory is on the tested path.
	replay, err := Load(specPath)
	if err != nil {
		t.Fatal(err)
	}
	seq := runCampaign(t, replay, 1)
	par := runCampaign(t, replay, 8)
	if seq != want {
		t.Errorf("replay report differs from synthetic report:\n--- replay ---\n%s--- synthetic ---\n%s", seq, want)
	}
	if par != seq {
		t.Errorf("replay report differs between -parallel 1 and 8:\n--- seq ---\n%s--- par ---\n%s", seq, par)
	}
}

// TestWorkloadTraceSpecValidation pins the mutual-exclusion contract of
// workload.trace.
func TestWorkloadTraceSpecValidation(t *testing.T) {
	cases := map[string]struct {
		json    string
		wantSub string
	}{
		"trace with synthetic field": {
			`{"name": "x", "workload": {"trace": "t.csv", "saas_fraction": 0.5}}`,
			"synthetic field workload.saas_fraction",
		},
		"trace with seed override": {
			`{"name": "x", "workload": {"trace": "t.csv", "seed": 7}}`,
			"synthetic field workload.seed",
		},
		"trace with workload axis": {
			`{"name": "x", "workload": {"trace": "t.csv"},
			  "axes": [{"param": "workload.saas_fraction", "values": [0.2, 0.8]}]}`,
			`axis "workload.saas_fraction" cannot be swept`,
		},
		"trace with seed axis": {
			`{"name": "x", "workload": {"trace": "t.csv"},
			  "axes": [{"param": "seed", "values": [1, 2]}]}`,
			`axis "seed" cannot be swept`,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}

	// Climate / failure / policy sweeps stay legal over a pinned trace.
	ok := `{"name": "x", "workload": {"trace": "t.csv"},
	        "axes": [{"param": "region", "values": ["hot", "cool"]}]}`
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("region sweep over a trace must validate: %v", err)
	}
}

// TestWorkloadTransformsSpecValidation pins the transforms field's
// contracts: requires a trace, rejects malformed chains, and the transform.*
// axes need exactly one matching step (and at most one axis per step).
func TestWorkloadTransformsSpecValidation(t *testing.T) {
	cases := map[string]struct {
		json    string
		wantSub string
	}{
		"transforms without trace": {
			`{"name": "x", "workload": {"transforms": [{"op": "demand_scale", "factor": 2}]}}`,
			"workload.transforms requires workload.trace",
		},
		"malformed chain": {
			`{"name": "x", "workload": {"trace": "t.csv", "transforms": [{"op": "resample"}]}}`,
			`unknown op "resample"`,
		},
		"invalid step params": {
			`{"name": "x", "workload": {"trace": "t.csv", "transforms": [{"op": "time_warp", "factor": -1}]}}`,
			"out of",
		},
		"axis without step": {
			`{"name": "x", "workload": {"trace": "t.csv"},
			  "axes": [{"param": "transform.demand_scale", "values": [1, 2]}]}`,
			"needs exactly one demand_scale step",
		},
		"axis with two steps": {
			`{"name": "x", "workload": {"trace": "t.csv",
			  "transforms": [{"op": "demand_scale", "factor": 1}, {"op": "demand_scale", "factor": 2}]},
			  "axes": [{"param": "transform.demand_scale", "values": [1, 2]}]}`,
			"(found 2)",
		},
		"two axes one step": {
			`{"name": "x", "workload": {"trace": "t.csv",
			  "transforms": [{"op": "demand_scale", "factor": 1}]},
			  "axes": [{"param": "transform.demand_scale", "values": [1, 2]},
			           {"param": "transform.demand_scale.saas", "values": [1, 2]}]}`,
			"both sweep the demand_scale step",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}

	// A well-formed transform sweep over a pinned trace validates.
	ok := `{"name": "x", "workload": {"trace": "t.csv",
	        "transforms": [{"op": "demand_scale", "factor": 1}, {"op": "jitter", "sigma": "90s"}]},
	        "axes": [{"param": "transform.demand_scale", "values": [0.5, 1, 2]}]}`
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("transform sweep must validate: %v", err)
	}
}

// TestTransformSweepClonesChain: grid points must not alias the base
// scenario's chain — each point carries its own cloned step values.
func TestTransformSweepClonesChain(t *testing.T) {
	spec, err := Parse([]byte(`{"name": "x", "layout": {"preset": "small"}, "duration": "20m",
	  "workload": {"trace": "t.csv", "transforms": [{"op": "demand_scale", "factor": 1, "seed": 3}]},
	  "axes": [{"param": "transform.demand_scale", "values": [0.5, 1, 2]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	// Point the trace at a real recorded workload.
	dir := t.TempDir()
	sc := sim.SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	wl, err := sim.GenerateWorkload(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.SaveWorkloadCSV(filepath.Join(dir, "t.csv"), wl); err != nil {
		t.Fatal(err)
	}
	spec.dir = dir
	c, err := spec.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 3 {
		t.Fatalf("grid has %d points, want 3", len(c.Points))
	}
	var factors []float64
	for _, p := range c.Points {
		ds := p.Scenario.TraceTransforms[0].(*transform.DemandScale)
		factors = append(factors, ds.Factor)
	}
	if factors[0] != 0.5 || factors[1] != 1 || factors[2] != 2 {
		t.Errorf("per-point factors %v, want [0.5 1 2]", factors)
	}

	// A swept 0 must fail loudly — DemandScale treats 0 as "unset = 1", so
	// letting it through would run an unscaled point under a "0" label.
	for _, param := range []string{"transform.demand_scale", "transform.demand_scale.saas", "transform.demand_scale.iaas"} {
		zero := *spec
		zero.Axes = []AxisSpec{{Param: param, Values: []AxisValue{{Num: 0, IsNum: true}}}}
		if _, err := zero.Campaign(0); err == nil || !strings.Contains(err.Error(), "must be positive") {
			t.Errorf("%s swept at 0: got %v, want positive-value rejection", param, err)
		}
	}
	// All points share the same loaded trace pointer (read-only), not the
	// same chain.
	if c.Points[0].Scenario.Trace != c.Points[1].Scenario.Trace {
		t.Error("grid points must share the loaded trace")
	}
	if &c.Points[0].Scenario.TraceTransforms[0] == &c.Points[1].Scenario.TraceTransforms[0] {
		t.Error("grid points alias the same chain slice")
	}
}

// TestWorkloadTraceMissingFile requires a clear campaign-time error when the
// recorded trace cannot be loaded.
func TestWorkloadTraceMissingFile(t *testing.T) {
	s, err := Parse([]byte(`{"name": "x", "layout": {"preset": "small"}, "workload": {"trace": "missing.csv"}}`))
	if err != nil {
		t.Fatal(err)
	}
	s.dir = t.TempDir()
	if _, err := s.Campaign(0); err == nil || !strings.Contains(err.Error(), "loading workload.trace") {
		t.Errorf("got %v, want loading error", err)
	}
}
