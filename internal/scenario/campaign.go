package scenario

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/experiments"
	"github.com/tapas-sim/tapas/internal/sim"
)

// Policy pairs a display name with a constructor; every run gets a fresh
// policy instance (policies carry per-run mutable state).
type Policy struct {
	Name string
	New  func() sim.Policy
}

// ParsePolicy maps a spec policy string to a constructor: "baseline",
// "tapas", "slo" (deadline-aware admission on top of full TAPAS), "slo-edf"
// (admission plus earliest-deadline-first queues), "powergov" (closed-loop
// per-endpoint power governing on top of full TAPAS), "powergov-energy"
// (governing plus generation-efficiency-weighted request routing), or a
// comma list of TAPAS levers ("place", "route", "config").
func ParsePolicy(s string) (Policy, error) {
	var opts core.Options
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "baseline":
	case "tapas":
		opts = core.Options{Place: true, Route: true, Config: true}
	case "slo":
		return Policy{Name: core.NewSLO(false).Name(), New: func() sim.Policy { return core.NewSLO(false) }}, nil
	case "slo-edf":
		return Policy{Name: core.NewSLO(true).Name(), New: func() sim.Policy { return core.NewSLO(true) }}, nil
	case "powergov":
		return Policy{Name: core.NewPowerGov(false).Name(), New: func() sim.Policy { return core.NewPowerGov(false) }}, nil
	case "powergov-energy":
		return Policy{Name: core.NewPowerGov(true).Name(), New: func() sim.Policy { return core.NewPowerGov(true) }}, nil
	default:
		for _, part := range strings.Split(s, ",") {
			switch strings.ToLower(strings.TrimSpace(part)) {
			case "place":
				opts.Place = true
			case "route":
				opts.Route = true
			case "config":
				opts.Config = true
			default:
				return Policy{}, fmt.Errorf("unknown policy %q (want baseline, tapas, slo, slo-edf, powergov, powergov-energy, or a comma list of place/route/config)", s)
			}
		}
	}
	o := opts
	return Policy{Name: core.New(o).Name(), New: func() sim.Policy { return core.New(o) }}, nil
}

// Campaign is an expanded spec: the grid of scenarios times the policy set.
type Campaign struct {
	Spec     *Spec
	Points   []Point
	Policies []Policy
}

// Runs returns the total number of simulations the campaign executes.
func (c *Campaign) Runs() int { return len(c.Points) * len(c.Policies) }

// RunOptions bounds a campaign execution.
type RunOptions struct {
	// Parallel bounds the worker pool (≤ 0 selects GOMAXPROCS). Reports are
	// byte-identical across worker counts.
	Parallel int
	// Shards overrides every run's tick-kernel shard count when non-zero
	// (see sim.Scenario.Shards; negative selects GOMAXPROCS). Reports are
	// byte-identical at any shard count, so this only trades intra-run
	// latency against the cross-run parallelism of Parallel.
	Shards int
	// Cache, when non-nil, serves compilations from (and fills) a
	// content-addressed compile cache, so identical scenarios across
	// back-to-back or concurrent campaigns compile once. Reports from cache
	// hits are byte-identical to cold compiles.
	Cache *sim.CompileCache
	// Context cancels the campaign cooperatively at run granularity: once
	// done, queued compiles and runs are skipped and Run returns the
	// context's error (in-flight simulations finish first). Nil means
	// context.Background().
	Context context.Context
	// OnProgress, when non-nil, is invoked after every completed simulation
	// with the number of finished runs and the campaign total. It is called
	// from worker goroutines and must be safe for concurrent use.
	OnProgress func(done, total int)
}

// Campaign expands the spec into its grid. scale overrides the spec's Scale
// when positive (0 keeps the spec's, which itself defaults to paper scale).
func (s *Spec) Campaign(scale float64) (*Campaign, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = s.Scale
	}
	base, err := s.baseScenario(scale)
	if err != nil {
		return nil, fmt.Errorf("scenario: spec %q: %w", s.Name, err)
	}
	points, err := s.expand(base)
	if err != nil {
		return nil, err
	}
	var pols []Policy
	for _, name := range s.policyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			return nil, fmt.Errorf("scenario: spec %q: %w", s.Name, err)
		}
		pols = append(pols, p)
	}
	return &Campaign{Spec: s, Points: points, Policies: pols}, nil
}

// Prov is one grid point's provisioned envelope: the largest provisioned
// row power of its layout and the GPU throttle threshold — the normalization
// constants behind norm_peak_power / norm_max_temp.
type Prov struct {
	PowerW float64
	TempC  float64
}

// Result is a completed campaign: one sim.Result per (policy, point), plus
// the provisioned envelopes reports normalize against.
type Result struct {
	Campaign *Campaign
	// Runs is indexed [policy][point], both in campaign order.
	Runs [][]*sim.Result
	// Prov holds each grid point's own envelopes; axes that change the
	// layout (GPU generation, mix fraction, oversubscription) change them
	// point to point, so norm_* metrics always divide by the envelopes of
	// the layout they ran against.
	Prov []Prov
	// Compiles is the number of unique scenario compilations the grid
	// required after content-key deduplication — axes that collapse to
	// identical compile-relevant scenarios share one compilation, so this
	// can be smaller than len(Campaign.Points). With RunOptions.Cache some
	// of these may additionally have been served from the cache without any
	// compile work (see sim.CompileCache.Stats).
	Compiles int
}

// Run executes the campaign: grid points are deduplicated by content key
// (sim.ScenarioKey) so identical compile-relevant scenarios compile once,
// each unique scenario compiles once (through RunOptions.Cache when set,
// sim.Compile otherwise), and all policies share the compiled artifacts
// read-only across the worker pool, exactly like the hard-coded experiment
// grids. The result is deterministic and independent of the worker count,
// the cache state, and the deduplication.
func (c *Campaign) Run(opt RunOptions) (*Result, error) {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	nPts := len(c.Points)
	// Deduplicate identical grid points before the compile fan-out: axes
	// whose values collapse to the same compile-relevant scenario (or that
	// only vary runtime fields) hash to one key and compile once. Keying
	// can only fail on un-serializable replay traces; compiling surfaces
	// the real error, so a key failure just disables deduplication.
	group := make([]int, nPts) // point -> index into uniq
	var uniq []int             // unique index -> representative point
	byKey := make(map[sim.CacheKey]int, nPts)
	for pi := range c.Points {
		key, err := c.pointKey(opt, pi)
		if err != nil {
			uniq = uniq[:0]
			for i := range group {
				group[i] = i
				uniq = append(uniq, i)
			}
			break
		}
		ui, ok := byKey[key]
		if !ok {
			ui = len(uniq)
			byKey[key] = ui
			uniq = append(uniq, pi)
		}
		group[pi] = ui
	}
	compiledUniq, err := experiments.RunParallelCtx(ctx, len(uniq), opt.Parallel, func(_, ui int) (*sim.CompiledScenario, error) {
		pi := uniq[ui]
		scn := c.Points[pi].Scenario
		if opt.Shards != 0 {
			scn.Shards = opt.Shards // runtime-only: never changes the report
		}
		var cs *sim.CompiledScenario
		var err error
		if opt.Cache != nil {
			cs, err = opt.Cache.Compile(scn)
		} else {
			cs, err = sim.Compile(scn)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: spec %q: compiling point %d: %w", c.Spec.Name, pi, err)
		}
		return cs, nil
	})
	if err != nil {
		return nil, err
	}
	// Each point adopts the shared compilation with its own runtime-only
	// fields, so deduplicated points that differ in Tick or Failures still
	// run their own schedule.
	compiled := make([]*sim.CompiledScenario, nPts)
	for pi := range c.Points {
		scn := c.Points[pi].Scenario
		if opt.Shards != 0 {
			scn.Shards = opt.Shards
		}
		compiled[pi] = compiledUniq[group[pi]].ForScenario(scn)
	}
	total := len(c.Policies) * nPts
	var done atomic.Int64
	runs, err := experiments.RunParallelCtx(ctx, total, opt.Parallel, func(_, job int) (*sim.Result, error) {
		pol := c.Policies[job/nPts]
		res, err := compiled[job%nPts].Run(pol.New())
		if err != nil {
			return nil, fmt.Errorf("scenario: spec %q: running %s on point %d: %w", c.Spec.Name, pol.Name, job%nPts, err)
		}
		if opt.OnProgress != nil {
			opt.OnProgress(int(done.Add(1)), total)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Campaign: c,
		Runs:     make([][]*sim.Result, len(c.Policies)),
		Prov:     make([]Prov, nPts),
		Compiles: len(uniq),
	}
	for pi, cs := range compiled {
		p := Prov{}
		for _, row := range cs.DC.Rows {
			if row.ProvPowerW > p.PowerW {
				p.PowerW = row.ProvPowerW
			}
		}
		for _, srv := range cs.DC.Servers {
			if srv.GPU.ThrottleTempC > p.TempC {
				p.TempC = srv.GPU.ThrottleTempC
			}
		}
		out.Prov[pi] = p
	}
	for pi := range c.Policies {
		out.Runs[pi] = runs[pi*nPts : (pi+1)*nPts]
	}
	return out, nil
}

// pointKey computes a grid point's content key, through the cache's
// trace-fingerprint memo when one is configured.
func (c *Campaign) pointKey(opt RunOptions, pi int) (sim.CacheKey, error) {
	if opt.Cache != nil {
		return opt.Cache.Key(c.Points[pi].Scenario)
	}
	return sim.ScenarioKey(c.Points[pi].Scenario)
}
