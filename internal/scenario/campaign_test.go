package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden campaign report files")

func loadExample(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := Load(filepath.Join("..", "..", "examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runCampaign(t *testing.T, s *Spec, parallel int) string {
	t.Helper()
	c, err := s.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunOptions{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := res.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestFig20SpecMatchesExperimentGolden is the compatibility contract of the
// spec pipeline: the committed fig20-ablation example, run through the
// generic campaign runner, must reproduce the hard-coded Fig. 20 runner's
// golden rows byte-for-byte — same scenario construction, same compile-once
// grid, same normalization, same formatting.
func TestFig20SpecMatchesExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("40-run campaign skipped in -short")
	}
	got := runCampaign(t, loadExample(t, "fig20-ablation.json"), 0)
	want, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden", "fig20.txt"))
	if err != nil {
		t.Fatal(err)
	}
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	// The golden report is "== header ==", the two grid header lines, eight
	// policy rows, and a trailing paper note; the campaign reproduces the
	// grid (headers + rows) byte-identically.
	wantGrid := wantLines[1 : len(wantLines)-1]
	if len(gotLines) < 1+len(wantGrid) {
		t.Fatalf("campaign report has %d lines, need %d:\n%s", len(gotLines), 1+len(wantGrid), got)
	}
	gotGrid := gotLines[1 : 1+len(wantGrid)]
	for i := range wantGrid {
		if gotGrid[i] != wantGrid[i] {
			t.Errorf("row %d deviates from fig20 golden:\ngot:  %q\nwant: %q", i, gotGrid[i], wantGrid[i])
		}
	}
}

// TestCampaignGoldenReports pins the committed example campaigns (the ones
// the hard-coded runners cannot express) byte-for-byte, so spec files and
// report rendering cannot rot silently.
func TestCampaignGoldenReports(t *testing.T) {
	for _, name := range []string{"hetero-fleet", "heatwave-sweep", "rolling-emergencies", "replay-pinned", "replay-scaled", "slo-replay", "slo-policies", "power-loop"} {
		name := name
		t.Run(name, func(t *testing.T) {
			got := runCampaign(t, loadExample(t, name+".json"), 0)
			path := filepath.Join("testdata", "golden", name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s deviates from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestCampaignDeterministicAcrossWorkers proves reports are byte-identical
// from sequential to saturated pools.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	// replay-pinned covers the replay pipeline: recorded workloads shared
	// read-only across the pool must stay byte-deterministic too.
	// replay-scaled additionally pushes every grid point through the
	// replay-time transform chain (same chain + seed ⇒ byte-identical
	// output at any worker count).
	// slo-policies adds admission shedding and EDF queues on top; shedding
	// decisions must be deterministic across the pool too.
	// power-loop adds closed-loop per-endpoint capping, energy integration,
	// and energy-aware routing on a heterogeneous fleet.
	for _, name := range []string{"heatwave-sweep", "replay-pinned", "replay-scaled", "slo-replay", "slo-policies", "power-loop"} {
		s := loadExample(t, name+".json")
		seq := runCampaign(t, s, 1)
		par := runCampaign(t, s, 8)
		if seq != par {
			t.Errorf("%s: report differs between -parallel 1 and 8:\n--- seq ---\n%s--- par ---\n%s", name, seq, par)
		}
	}
}

// TestSLOReplayReportShardInvariant pins the request-level SLO report across
// the throughput knobs: any intra-run shard count, stacked on any worker-pool
// size, must reproduce the serial single-worker report byte for byte —
// per-request TTFT/TBT percentiles, attainment and shed columns included.
// slo-policies additionally covers admission shedding and EDF queue order
// under sharding.
func TestSLOReplayReportShardInvariant(t *testing.T) {
	for _, name := range []string{"slo-replay", "slo-policies", "power-loop"} {
		base := runCampaign(t, loadExample(t, name+".json"), 1)
		for _, shards := range []int{2, 7, -1} {
			shards := shards
			s := loadExample(t, name+".json")
			s.Shards = &shards
			if got := runCampaign(t, s, 8); got != base {
				t.Errorf("%s shards=%d: report differs from the serial run:\n--- got ---\n%s--- want ---\n%s", name, shards, got, base)
			}
		}
	}
}

// TestCampaignCSVAndJSON smoke-checks the machine-readable formats.
func TestCampaignCSVAndJSON(t *testing.T) {
	s := loadExample(t, "rolling-emergencies.json")
	s.Report.Format = "csv"
	csvOut := runCampaign(t, s, 0)
	lines := strings.Split(strings.TrimRight(csvOut, "\n"), "\n")
	if want := 1 + 3; len(lines) != want { // header + 3 policies × 1 point
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), want, csvOut)
	}
	if !strings.HasPrefix(lines[0], "spec,policy,") {
		t.Errorf("CSV header = %q", lines[0])
	}

	s.Report.Format = "json"
	var rep struct {
		Name     string   `json:"name"`
		Policies []string `json:"policies"`
		Runs     []struct {
			Policy  string             `json:"policy"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(runCampaign(t, s, 0)), &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if rep.Name != "rolling-emergencies" || len(rep.Runs) != 3 {
		t.Errorf("JSON report name=%q runs=%d", rep.Name, len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if _, ok := run.Metrics["service_rate"]; !ok {
			t.Errorf("run %s missing service_rate metric", run.Policy)
		}
	}
}

// TestHeteroCampaignOrdersGenerations checks the flagship configuration no
// hard-coded runner can express: under the oblivious Baseline, peak power
// rises monotonically with the H100 share of the fleet.
func TestHeteroCampaignOrdersGenerations(t *testing.T) {
	s := loadExample(t, "hetero-fleet.json")
	c, err := s.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := res.Runs[0] // baseline policy row
	// The all-H100 fleet draws well above the all-A100 one; the mixed point
	// sits in between or at the A100 peak (the peak row can remain an A100
	// row when H100 SaaS instances serve the same demand less busily).
	if base[2].PeakPower() <= base[0].PeakPower() {
		t.Errorf("all-H100 peak %.0f W not above all-A100 peak %.0f W",
			base[2].PeakPower(), base[0].PeakPower())
	}
	if base[1].PeakPower() < base[0].PeakPower() || base[1].PeakPower() > base[2].PeakPower() {
		t.Errorf("mixed-fleet peak %.0f W outside [%.0f, %.0f] W",
			base[1].PeakPower(), base[0].PeakPower(), base[2].PeakPower())
	}
}
