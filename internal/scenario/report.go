package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/tapas-sim/tapas/internal/sim"
)

// Metric is one report column derived from a run's result.
type Metric struct {
	ID   string
	Desc string
	// Fmt renders the value in text reports (grid cells and table columns).
	Fmt string
	// Eval derives the value from one run, with the grid point's own
	// provisioned envelopes for the normalized metrics.
	Eval func(r *sim.Result, prov Prov) float64
}

// metrics is the ordered registry of report columns.
var metrics = []Metric{
	{"norm_max_temp", "normalized max temperature", "%4.2f",
		func(r *sim.Result, prov Prov) float64 { return r.MaxTemp() / prov.TempC }},
	{"norm_peak_power", "normalized peak power", "%4.2f",
		func(r *sim.Result, prov Prov) float64 { return r.PeakPower() / prov.PowerW }},
	{"max_temp_c", "max GPU temperature (°C)", "%.1f",
		func(r *sim.Result, _ Prov) float64 { return r.MaxTemp() }},
	{"p99_temp_c", "P99 max GPU temperature (°C)", "%.1f",
		func(r *sim.Result, _ Prov) float64 { return r.PercentileMaxTemp(99) }},
	{"peak_power_kw", "peak row power (kW)", "%.1f",
		func(r *sim.Result, _ Prov) float64 { return r.PeakPower() / 1000 }},
	{"p99_peak_power_kw", "P99 peak row power (kW)", "%.1f",
		func(r *sim.Result, _ Prov) float64 { return r.PercentilePeakPower(99) / 1000 }},
	{"energy_mwh", "fleet energy (MWh)", "%.2f",
		func(r *sim.Result, _ Prov) float64 {
			sum := 0.0
			for _, w := range r.TotalPowerW {
				sum += w
			}
			return sum * r.Tick.Seconds() / 3.6e9
		}},
	{"throttle_pct", "thermal capping (% of server-time)", "%.2f",
		func(r *sim.Result, _ Prov) float64 { return r.ThrottleFrac() * 100 }},
	{"power_cap_pct", "power capping (% of server-time)", "%.2f",
		func(r *sim.Result, _ Prov) float64 { return r.PowerCapFrac() * 100 }},
	{"slo_violation_pct", "SaaS SLO violations (%)", "%.2f",
		func(r *sim.Result, _ Prov) float64 { return r.SLOViolationRate() * 100 }},
	{"quality", "SaaS response quality", "%.3f",
		func(r *sim.Result, _ Prov) float64 { return r.AvgQuality() }},
	{"service_rate", "SaaS service rate", "%.3f",
		func(r *sim.Result, _ Prov) float64 { return r.ServiceRate() }},
	{"iaas_perf_loss_pct", "IaaS performance loss (%)", "%.1f",
		func(r *sim.Result, _ Prov) float64 { return r.IaaSPerfLoss() * 100 }},
	{"placement_rejects", "placement rejections", "%.0f",
		func(r *sim.Result, _ Prov) float64 { return float64(r.PlacementRejects) }},
	{"cap_events", "server-ticks under an applied frequency cap", "%.0f",
		func(r *sim.Result, _ Prov) float64 { return float64(r.CapEvents()) }},
}

// sloMetric is one per-endpoint column. The latency/attainment metrics are
// populated only when the scenario carries a request log (workload.requests);
// in binned mode every completion count is zero and they evaluate to 0.
// energy_per_token_j is populated in both modes. Each is addressable in
// aggregate form ("ttft_p99_ms", over every endpoint) or per endpoint with
// an "@ep<N>" suffix ("ttft_p99_ms@ep0").
type sloMetric struct {
	ID   string
	Desc string
	Fmt  string
	Eval func(r *sim.Result, ep int) float64
}

// sloMetrics is the ordered registry of request-level SLO columns. Latencies
// are reported in milliseconds; percentiles interpolate linearly on rank
// p/100·(n−1) over the sorted per-request samples (regress.Percentile).
var sloMetrics = []sloMetric{
	{"ttft_p50_ms", "p50 time-to-first-token (ms)", "%.1f",
		func(r *sim.Result, ep int) float64 { return r.TTFTPercentile(ep, 50) * 1000 }},
	{"ttft_p99_ms", "p99 time-to-first-token (ms)", "%.1f",
		func(r *sim.Result, ep int) float64 { return r.TTFTPercentile(ep, 99) * 1000 }},
	{"tbt_p50_ms", "p50 max time-between-tokens (ms)", "%.1f",
		func(r *sim.Result, ep int) float64 { return r.TBTPercentile(ep, 50) * 1000 }},
	{"tbt_p99_ms", "p99 max time-between-tokens (ms)", "%.1f",
		func(r *sim.Result, ep int) float64 { return r.TBTPercentile(ep, 99) * 1000 }},
	{"queue_p99_ms", "p99 queueing delay (ms)", "%.1f",
		func(r *sim.Result, ep int) float64 { return r.QueueDelayPercentile(ep, 99) * 1000 }},
	{"slo_attainment_pct", "requests meeting both SLOs (%)", "%.2f",
		func(r *sim.Result, ep int) float64 { return r.SLOAttainment(ep) * 100 }},
	{"requests_completed", "completed requests", "%.0f",
		func(r *sim.Result, ep int) float64 { return float64(r.RequestsCompleted(ep)) }},
	{"requests_admitted", "requests routed to an instance", "%.0f",
		func(r *sim.Result, ep int) float64 { return float64(r.RequestsAdmitted(ep)) }},
	{"requests_shed", "requests rejected at admission", "%.0f",
		func(r *sim.Result, ep int) float64 { return float64(r.RequestsShed(ep)) }},
	{"energy_per_token_j", "serving energy per served token (J)", "%.2f",
		func(r *sim.Result, ep int) float64 { return r.EnergyPerTokenJ(ep) }},
}

// formatMetric renders one metric value for text reports. NaN means "no
// data" — e.g. SLO attainment over zero completions — and renders as a
// blank cell, so an endpoint that completed nothing is distinguishable from
// one at 0%.
func formatMetric(format string, v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf(format, v)
}

// metricByID resolves a report column: the static registry first, then the
// SLO registry with an optional "@ep<N>" endpoint selector.
func metricByID(id string) (Metric, bool) {
	for _, m := range metrics {
		if m.ID == id {
			return m, true
		}
	}
	base, ep := id, sim.AllEndpoints
	if i := strings.Index(id, "@ep"); i >= 0 {
		n, err := strconv.Atoi(id[i+len("@ep"):])
		if err != nil || n < 0 {
			return Metric{}, false
		}
		base, ep = id[:i], n
	}
	for _, m := range sloMetrics {
		if m.ID != base {
			continue
		}
		desc := m.Desc
		if ep != sim.AllEndpoints {
			desc = fmt.Sprintf("%s, endpoint %d", m.Desc, ep)
		}
		eval := m.Eval
		return Metric{ID: id, Desc: desc, Fmt: m.Fmt,
			Eval: func(r *sim.Result, _ Prov) float64 { return eval(r, ep) }}, true
	}
	return Metric{}, false
}

// MetricIDs lists every report metric in registry order: the static columns,
// then the request-level SLO columns in their aggregate form (each also
// accepts an "@ep<N>" endpoint suffix).
func MetricIDs() []string {
	out := make([]string, 0, len(metrics)+len(sloMetrics))
	for _, m := range metrics {
		out = append(out, m.ID)
	}
	for _, m := range sloMetrics {
		out = append(out, m.ID)
	}
	return out
}

func (out *Result) selectedMetrics() []Metric {
	var ms []Metric
	for _, id := range out.Campaign.Spec.metricIDs() {
		m, _ := metricByID(id)
		ms = append(ms, m)
	}
	return ms
}

// WriteTo renders the campaign report in the spec's format. Output is fully
// deterministic: same spec, same bytes, regardless of worker count.
func (out *Result) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	var err error
	switch out.Campaign.Spec.Report.Format {
	case "csv":
		err = out.writeCSV(&sb)
	case "json":
		err = out.writeJSON(&sb)
	default:
		out.writeText(&sb)
	}
	if err != nil {
		return 0, err
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// writeText renders the human-readable report: a policy × axis grid when the
// spec sweeps exactly one axis (the shape of the paper's ablation figures),
// a flat table otherwise.
func (out *Result) writeText(sb *strings.Builder) {
	sp := out.Campaign.Spec
	fmt.Fprintf(sb, "== %s: %s ==\n", sp.Name, out.title())
	if len(sp.Axes) == 1 {
		out.writeGrid(sb)
	} else {
		out.writeTable(sb)
	}
}

func (out *Result) title() string {
	if out.Campaign.Spec.Description != "" {
		return out.Campaign.Spec.Description
	}
	return fmt.Sprintf("%d runs", out.Campaign.Runs())
}

// writeGrid renders policies × the single axis, one metric tuple per cell —
// the exact row format of the paper's Fig. 20 ablation when the metrics are
// the two normalized envelopes.
func (out *Result) writeGrid(sb *strings.Builder) {
	ms := out.selectedMetrics()
	descs := make([]string, len(ms))
	for i, m := range ms {
		descs[i] = m.Desc
	}
	fmt.Fprintf(sb, "%s\n", strings.Join(descs, " / "))
	header := fmt.Sprintf("%-14s", "policy")
	for _, p := range out.Campaign.Points {
		header += fmt.Sprintf(" %12s", p.Labels[0])
	}
	fmt.Fprintf(sb, "%s\n", header)
	for pi, pol := range out.Campaign.Policies {
		line := fmt.Sprintf("%-14s", pol.Name)
		for xi := range out.Campaign.Points {
			cells := make([]string, len(ms))
			for mi, m := range ms {
				cells[mi] = formatMetric(m.Fmt, m.Eval(out.Runs[pi][xi], out.Prov[xi]))
			}
			line += "  " + strings.Join(cells, "/")
		}
		fmt.Fprintf(sb, "%s\n", line)
	}
}

// writeTable renders one line per run: axis labels, policy, metric columns.
func (out *Result) writeTable(sb *strings.Builder) {
	ms := out.selectedMetrics()
	header := ""
	for _, ax := range out.Campaign.Spec.Axes {
		header += fmt.Sprintf("%-24s ", ax.Param)
	}
	header += fmt.Sprintf("%-14s", "policy")
	for _, m := range ms {
		header += fmt.Sprintf(" %18s", m.ID)
	}
	fmt.Fprintf(sb, "%s\n", header)
	for pi, pol := range out.Campaign.Policies {
		for xi, pt := range out.Campaign.Points {
			line := ""
			for _, l := range pt.Labels {
				line += fmt.Sprintf("%-24s ", l)
			}
			line += fmt.Sprintf("%-14s", pol.Name)
			for _, m := range ms {
				line += fmt.Sprintf(" %18s", formatMetric(m.Fmt, m.Eval(out.Runs[pi][xi], out.Prov[xi])))
			}
			fmt.Fprintf(sb, "%s\n", line)
		}
	}
}

// writeCSV emits one row per run with full-precision metric values.
func (out *Result) writeCSV(sb *strings.Builder) error {
	ms := out.selectedMetrics()
	cw := csv.NewWriter(sb)
	header := []string{"spec"}
	for _, ax := range out.Campaign.Spec.Axes {
		header = append(header, ax.Param)
	}
	header = append(header, "policy")
	for _, m := range ms {
		header = append(header, m.ID)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for pi, pol := range out.Campaign.Policies {
		for xi, pt := range out.Campaign.Points {
			rec := []string{out.Campaign.Spec.Name}
			rec = append(rec, pt.Labels...)
			rec = append(rec, pol.Name)
			for _, m := range ms {
				v := m.Eval(out.Runs[pi][xi], out.Prov[xi])
				if math.IsNaN(v) {
					rec = append(rec, "") // no data: blank, not "NaN"
					continue
				}
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeJSON emits the full structured report (metric maps marshal with
// sorted keys, so output is deterministic).
func (out *Result) writeJSON(sb *strings.Builder) error {
	// Metric values are `any` because JSON cannot encode NaN: "no data"
	// (e.g. SLO attainment over zero completions) marshals as null.
	type jsonRun struct {
		Policy  string         `json:"policy"`
		Point   []string       `json:"point,omitempty"`
		Metrics map[string]any `json:"metrics"`
	}
	type jsonPoint struct {
		Labels     []string `json:"labels,omitempty"`
		ProvPowerW float64  `json:"prov_row_power_w"`
		ProvTempC  float64  `json:"prov_throttle_temp_c"`
	}
	ms := out.selectedMetrics()
	rep := struct {
		Name        string      `json:"name"`
		Description string      `json:"description,omitempty"`
		Axes        []string    `json:"axes,omitempty"`
		Policies    []string    `json:"policies"`
		Points      []jsonPoint `json:"points"`
		Runs        []jsonRun   `json:"runs"`
	}{
		Name:        out.Campaign.Spec.Name,
		Description: out.Campaign.Spec.Description,
	}
	for _, ax := range out.Campaign.Spec.Axes {
		rep.Axes = append(rep.Axes, ax.Param)
	}
	for xi, pt := range out.Campaign.Points {
		rep.Points = append(rep.Points, jsonPoint{
			Labels:     pt.Labels,
			ProvPowerW: out.Prov[xi].PowerW,
			ProvTempC:  out.Prov[xi].TempC,
		})
	}
	for _, pol := range out.Campaign.Policies {
		rep.Policies = append(rep.Policies, pol.Name)
	}
	for pi, pol := range out.Campaign.Policies {
		for xi, pt := range out.Campaign.Points {
			vals := make(map[string]any, len(ms))
			for _, m := range ms {
				if v := m.Eval(out.Runs[pi][xi], out.Prov[xi]); math.IsNaN(v) {
					vals[m.ID] = nil
				} else {
					vals[m.ID] = v
				}
			}
			rep.Runs = append(rep.Runs, jsonRun{Policy: pol.Name, Point: pt.Labels, Metrics: vals})
		}
	}
	enc := json.NewEncoder(sb)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}
