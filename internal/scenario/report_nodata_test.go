package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNoDataCellsRenderBlank pins the "no data" marker end to end: an SLO
// metric addressed at an endpoint that completes nothing (here an endpoint
// index past the workload's) evaluates to NaN and must render as a blank
// text cell, an empty CSV field, and a JSON null — never as "NaN", which
// would be indistinguishable from 0% attainment and break JSON encoding.
func TestNoDataCellsRenderBlank(t *testing.T) {
	load := func() *Spec {
		s := loadExample(t, "slo-replay.json")
		s.Report.Metrics = []string{"slo_attainment_pct@ep9", "slo_attainment_pct"}
		s.Axes = s.Axes[:0] // one grid point is enough
		return s
	}

	text := runCampaign(t, load(), 1)
	if strings.Contains(text, "NaN") {
		t.Errorf("text report leaks NaN:\n%s", text)
	}
	// The single-point table pads the blank no-data column with spaces, so
	// each policy row splits into one fewer field than the metric count.
	for _, row := range strings.Split(strings.TrimRight(text, "\n"), "\n")[2:] {
		if fields := strings.Fields(row); len(fields) != 2 {
			t.Errorf("row %q has %d fields, want policy + 1 populated metric", row, len(fields))
		}
	}

	s := load()
	s.Report.Format = "csv"
	csvOut := runCampaign(t, s, 1)
	if strings.Contains(csvOut, "NaN") {
		t.Errorf("CSV report leaks NaN:\n%s", csvOut)
	}
	rows := strings.Split(strings.TrimRight(csvOut, "\n"), "\n")
	for _, row := range rows[1:] {
		fields := strings.Split(row, ",")
		if got := fields[len(fields)-2]; got != "" {
			t.Errorf("no-data CSV field = %q, want empty", got)
		}
	}

	s = load()
	s.Report.Format = "json"
	var rep struct {
		Runs []struct {
			Metrics map[string]*float64 `json:"metrics"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(runCampaign(t, s, 1)), &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	for _, run := range rep.Runs {
		if v, ok := run.Metrics["slo_attainment_pct@ep9"]; !ok || v != nil {
			t.Errorf("no-data JSON metric = %v, want explicit null", v)
		}
		if v := run.Metrics["slo_attainment_pct"]; v == nil {
			t.Error("populated metric rendered null")
		}
	}
}
