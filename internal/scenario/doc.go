// Package scenario implements declarative simulation scenarios: a JSON spec
// format describing one simulation setup (layout scale and GPU mix, workload
// mix, weather, oversubscription, emergency schedule, policy set) plus sweep
// axes that expand the spec into a campaign grid. The campaign runner
// compiles each unique scenario once (sim.Compile) and fans the runs out
// across a bounded worker pool (experiments.RunParallel), emitting
// deterministic text/CSV/JSON reports.
//
// Specs make every "what-if" campaign of the paper's evaluation — and many
// the hard-coded experiment runners cannot express (heterogeneous A100+H100
// fleets, weather sweeps, rolling emergencies) — a committed file instead of
// a new runner. See examples/scenarios/.
//
// A spec whose workload carries a per-request log (workload.requests, a CSV
// recorded by tapas-trace) runs in request-level replay mode: report columns
// can then include per-endpoint TTFT/TBT/queueing-delay percentiles and SLO
// attainment (see report.go's sloMetrics and the "@ep<N>" metric suffix),
// and transform.demand_scale axes scale the request log together with the
// binned demand.
package scenario
