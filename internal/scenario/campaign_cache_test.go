package scenario

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/tapas-sim/tapas/internal/sim"
)

// collapsingSpec sweeps an axis whose first two values are identical, so two
// of the three grid points hash to the same compile-relevant scenario.
const collapsingSpec = `{
  "name": "collapsing",
  "layout": {"preset": "small"},
  "duration": "10m",
  "policies": ["baseline"],
  "axes": [{
    "param": "workload.demand_scale",
    "values": [1.0, 1.0, 2.0],
    "labels": ["control", "repeat", "doubled"]
  }]
}`

// TestCampaignDedupCollapsedAxis is the dedup satellite: grid points that
// collapse to one content key compile once, so a collapsed axis compiles
// strictly fewer times than len(Points) — with and without a cache.
func TestCampaignDedupCollapsedAxis(t *testing.T) {
	spec, err := Parse([]byte(collapsingSpec))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 3 {
		t.Fatalf("grid has %d points, want 3", len(c.Points))
	}
	res, err := c.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compiles != 2 {
		t.Errorf("Compiles = %d, want 2 (< %d points)", res.Compiles, len(c.Points))
	}
	// The collapsed points must still report: identical inputs, identical
	// rows; the distinct third point differs.
	base := res.Runs[0]
	if base[0].SaaSServedTokens != base[1].SaaSServedTokens {
		t.Error("collapsed points produced different results")
	}
	if base[0].SaaSDemandTokens == base[2].SaaSDemandTokens {
		t.Error("distinct grid point produced the collapsed result")
	}

	cache := sim.NewCompileCache(0)
	if _, err := c.Run(RunOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if n := cache.Compiles(); n != 2 {
		t.Errorf("cache performed %d compiles, want 2", n)
	}
}

// TestCampaignWarmRerunSkipsAllCompiles is the warm-rerun acceptance check:
// a second run of the same campaign through the same cache performs zero
// compile work (cold-compile counter flat, no new scenario misses) and its
// report is byte-identical to the cold run's.
func TestCampaignWarmRerunSkipsAllCompiles(t *testing.T) {
	spec, err := Parse([]byte(collapsingSpec))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	cache := sim.NewCompileCache(0)
	render := func() string {
		t.Helper()
		res, err := c.Run(RunOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if _, err := res.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	cold := render()
	coldStats := cache.Stats()
	warm := render()
	warmStats := cache.Stats()

	if warm != cold {
		t.Errorf("warm report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if warmStats.Compiles != coldStats.Compiles {
		t.Errorf("warm rerun compiled: %d -> %d cold compiles", coldStats.Compiles, warmStats.Compiles)
	}
	if warmStats.Scenarios.Misses != coldStats.Scenarios.Misses {
		t.Errorf("warm rerun missed: %d -> %d scenario misses", coldStats.Scenarios.Misses, warmStats.Scenarios.Misses)
	}
	if got := warmStats.Scenarios.Hits - coldStats.Scenarios.Hits; got == 0 {
		t.Error("warm rerun recorded no scenario hits")
	}
}

// TestCampaignCachedReportMatchesGolden proves cache-served campaigns render
// byte-identically to the committed golden of a cold run: the heatwave-sweep
// example is run twice through one cache, and the warm (all-hit) report is
// diffed against the golden the cacheless test pins.
func TestCampaignCachedReportMatchesGolden(t *testing.T) {
	s := loadExample(t, "heatwave-sweep.json")
	c, err := s.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	cache := sim.NewCompileCache(0)
	var warm string
	for i := 0; i < 2; i++ {
		res, err := c.Run(RunOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if _, err := res.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		warm = sb.String()
	}
	if misses := cache.Stats().Scenarios.Misses; misses != uint64(cache.Compiles()) {
		t.Fatalf("second run was not all hits: %d misses for %d compiles", misses, cache.Compiles())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "heatwave-sweep.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if warm != string(want) {
		t.Errorf("cache-hit report deviates from golden:\n--- got ---\n%s--- want ---\n%s", warm, want)
	}
}

// TestCampaignProgressAndContext covers the run-granular hooks RunOptions
// grew for the daemon: OnProgress fires once per completed run, and an
// already-canceled context stops the campaign before any work.
func TestCampaignProgressAndContext(t *testing.T) {
	spec, err := Parse([]byte(collapsingSpec))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var calls, lastDone, lastTotal int
	_, err = c.Run(RunOptions{OnProgress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > lastDone {
			lastDone = done
		}
		lastTotal = total
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Runs(); calls != want || lastDone != want || lastTotal != want {
		t.Errorf("progress calls=%d lastDone=%d total=%d, want all %d", calls, lastDone, lastTotal, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(RunOptions{Context: ctx}); err == nil {
		t.Error("canceled context did not fail the campaign")
	} else if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error %v does not surface the cancellation", err)
	}
}
