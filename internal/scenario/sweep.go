package scenario

import (
	"fmt"
	"sort"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// transformAxisOps maps the transform sweep axes to the chain op each one
// varies. Spec validation requires exactly one step of that op in
// workload.transforms (and at most one axis per op), so the sweep has an
// unambiguous target.
var transformAxisOps = map[string]string{
	"transform.demand_scale":      "demand_scale",
	"transform.demand_scale.saas": "demand_scale",
	"transform.demand_scale.iaas": "demand_scale",
	"transform.time_warp":         "time_warp",
}

// setTransformFactor clones the point's chain (grid points share the base
// scenario's slice) and applies set to the single step with the given op.
func setTransformFactor(sc *sim.Scenario, op string, set func(transform.Step) error) error {
	chain := sc.TraceTransforms.Clone()
	n := 0
	for _, s := range chain {
		if s.Op() != op {
			continue
		}
		n++
		if err := set(s); err != nil {
			return err
		}
	}
	if n != 1 {
		// Validate enforces this for spec-driven campaigns; programmatic
		// sweeps get the same loud failure.
		return fmt.Errorf("chain needs exactly one %s step to sweep (found %d)", op, n)
	}
	if err := chain.Validate(); err != nil {
		return err
	}
	sc.TraceTransforms = chain
	return nil
}

// axisSetters maps a sweepable parameter name to the mutation it applies to
// a grid point's scenario. Axes apply to the fully built (overridden and
// scaled) base scenario, in spec order.
var axisSetters = map[string]func(*sim.Scenario, AxisValue) error{
	"workload.saas_fraction": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.saas_fraction")
		if err != nil {
			return err
		}
		if f < 0 || f > 1 {
			return fmt.Errorf("workload.saas_fraction %v out of [0,1]", f)
		}
		sc.Workload.SaaSFraction = f
		return nil
	},
	"workload.demand_scale": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.demand_scale")
		if err != nil {
			return err
		}
		if f <= 0 {
			return fmt.Errorf("workload.demand_scale %v must be positive", f)
		}
		sc.Workload.DemandScale = f
		return nil
	},
	"slo.affinity_weight": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("slo.affinity_weight")
		if err != nil {
			return err
		}
		if f <= 0 || f > 1 {
			return fmt.Errorf("slo.affinity_weight %v out of (0,1]", f)
		}
		sc.SLOSched.AffinityWeight = f
		return nil
	},
	"slo.admission_slack": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("slo.admission_slack")
		if err != nil {
			return err
		}
		if f <= 0 {
			return fmt.Errorf("slo.admission_slack %v must be positive", f)
		}
		sc.SLOSched.AdmissionSlack = f
		return nil
	},
	"powergov.budget_frac": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("powergov.budget_frac")
		if err != nil {
			return err
		}
		if f <= 0 || f > 1 {
			return fmt.Errorf("powergov.budget_frac %v out of (0,1]", f)
		}
		sc.PowerGov.BudgetFrac = f
		return nil
	},
	"powergov.gain": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("powergov.gain")
		if err != nil {
			return err
		}
		if f <= 0 || f > 1 {
			return fmt.Errorf("powergov.gain %v out of (0,1]", f)
		}
		sc.PowerGov.Gain = f
		return nil
	},
	"workload.occupancy": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.occupancy")
		if err != nil {
			return err
		}
		if f <= 0 || f > 1 {
			return fmt.Errorf("workload.occupancy %v out of (0,1]", f)
		}
		sc.Workload.Occupancy = f
		return nil
	},
	"workload.endpoints": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.endpoints")
		if err != nil {
			return err
		}
		if f < 1 {
			return fmt.Errorf("workload.endpoints %v must be at least 1", f)
		}
		sc.Workload.Endpoints = int(f)
		return nil
	},
	"oversubscribe": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("oversubscribe")
		if err != nil {
			return err
		}
		if f < 0 {
			return fmt.Errorf("oversubscribe %v negative", f)
		}
		sc.Oversubscribe = f
		return nil
	},
	"region": func(sc *sim.Scenario, v AxisValue) error {
		name, err := v.str("region")
		if err != nil {
			return err
		}
		reg, err := regionByName(name)
		if err != nil {
			return err
		}
		sc.Region = reg
		return nil
	},
	"region.mean_c": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("region.mean_c")
		sc.Region.MeanC = f
		return err
	},
	"layout.gpu": func(sc *sim.Scenario, v AxisValue) error {
		name, err := v.str("layout.gpu")
		if err != nil {
			return err
		}
		m, err := layout.ParseGPUModel(name)
		if err != nil {
			return err
		}
		sc.Layout.GPU = m
		return nil
	},
	// The hyperscale axis: one campaign sweeps the same scenario over 1×,
	// 10×, 100× fleets. Applied at layout generation, so the setter simply
	// overwrites the factor — no compounding across grid points.
	"layout.fleet_scale": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("layout.fleet_scale")
		if err != nil {
			return err
		}
		if f <= 0 {
			return fmt.Errorf("layout.fleet_scale %v must be positive", f)
		}
		sc.Layout.FleetScale = f
		return nil
	},
	"layout.mix_fraction": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("layout.mix_fraction")
		if err != nil {
			return err
		}
		if f < 0 || f > 1 {
			return fmt.Errorf("layout.mix_fraction %v out of [0,1]", f)
		}
		sc.Layout.MixFraction = f
		return nil
	},
	"transform.demand_scale": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("transform.demand_scale")
		if err != nil {
			return err
		}
		if f <= 0 {
			return fmt.Errorf("transform.demand_scale %v must be positive", f)
		}
		return setTransformFactor(sc, "demand_scale", func(s transform.Step) error {
			ds := s.(*transform.DemandScale)
			// The axis sweeps the uniform factor; per-kind multipliers in
			// the spec's step are overridden per grid point.
			ds.Factor, ds.IaaS, ds.SaaS = f, 0, 0
			return nil
		})
	},
	// The per-kind axes sweep one side of the demand — the SaaS axis is the
	// paper's "demand intensity" knob (hotter requests on the same fleet),
	// the IaaS axis the arrival-pressure knob (thinned/replicated VM
	// population) — leaving the other side at the step's configured value.
	"transform.demand_scale.saas": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("transform.demand_scale.saas")
		if err != nil {
			return err
		}
		if f <= 0 {
			// DemandScale treats 0 as "unset = 1"; a swept 0 would silently
			// simulate unscaled demand under a "0" column label.
			return fmt.Errorf("transform.demand_scale.saas %v must be positive", f)
		}
		return setTransformFactor(sc, "demand_scale", func(s transform.Step) error {
			ds := s.(*transform.DemandScale)
			if ds.Factor != 0 {
				ds.IaaS, ds.Factor = ds.Factor, 0
			}
			ds.SaaS = f
			return nil
		})
	},
	"transform.demand_scale.iaas": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("transform.demand_scale.iaas")
		if err != nil {
			return err
		}
		if f <= 0 {
			return fmt.Errorf("transform.demand_scale.iaas %v must be positive", f)
		}
		return setTransformFactor(sc, "demand_scale", func(s transform.Step) error {
			ds := s.(*transform.DemandScale)
			if ds.Factor != 0 {
				ds.SaaS, ds.Factor = ds.Factor, 0
			}
			ds.IaaS = f
			return nil
		})
	},
	"transform.time_warp": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("transform.time_warp")
		if err != nil {
			return err
		}
		return setTransformFactor(sc, "time_warp", func(s transform.Step) error {
			s.(*transform.TimeWarp).Factor = f
			return nil
		})
	},
	"seed": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("seed")
		if err != nil {
			return err
		}
		sc.Layout.Seed = uint64(f)
		sc.Workload.Seed = uint64(f)
		return nil
	},
	"start_offset": func(sc *sim.Scenario, v AxisValue) error {
		s, err := v.str("start_offset")
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("start_offset axis: %w", err)
		}
		sc.StartOffset = d
		return nil
	},
}

// AxisParams lists the sweepable parameter names in sorted order.
func AxisParams() []string {
	out := make([]string, 0, len(axisSetters))
	for p := range axisSetters {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Point is one cell of the campaign grid: the scenario with every axis value
// applied, plus the per-axis display labels.
type Point struct {
	Labels   []string
	Values   []AxisValue
	Scenario sim.Scenario
}

// expand builds the cartesian grid of the spec's axes over the base
// scenario. A spec without axes yields exactly one point. Points are ordered
// with the last axis varying fastest (row-major in spec axis order).
func (s *Spec) expand(base sim.Scenario) ([]Point, error) {
	points := []Point{{Scenario: base}}
	for _, ax := range s.Axes {
		next := make([]Point, 0, len(points)*len(ax.Values))
		set := axisSetters[ax.Param]
		for _, p := range points {
			for vi, v := range ax.Values {
				label := v.Label()
				if len(ax.Labels) > 0 {
					label = ax.Labels[vi]
				}
				np := Point{
					Labels:   append(append([]string(nil), p.Labels...), label),
					Values:   append(append([]AxisValue(nil), p.Values...), v),
					Scenario: p.Scenario,
				}
				// Failure schedules are shared slices on the copied
				// scenario; axes never mutate them, so sharing is safe.
				if err := set(&np.Scenario, v); err != nil {
					return nil, fmt.Errorf("scenario: spec %q: axis %q: %w", s.Name, ax.Param, err)
				}
				next = append(next, np)
			}
		}
		points = next
	}
	return points, nil
}
