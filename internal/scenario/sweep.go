package scenario

import (
	"fmt"
	"sort"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/sim"
)

// axisSetters maps a sweepable parameter name to the mutation it applies to
// a grid point's scenario. Axes apply to the fully built (overridden and
// scaled) base scenario, in spec order.
var axisSetters = map[string]func(*sim.Scenario, AxisValue) error{
	"workload.saas_fraction": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.saas_fraction")
		if err != nil {
			return err
		}
		if f < 0 || f > 1 {
			return fmt.Errorf("workload.saas_fraction %v out of [0,1]", f)
		}
		sc.Workload.SaaSFraction = f
		return nil
	},
	"workload.demand_scale": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.demand_scale")
		if err != nil {
			return err
		}
		if f <= 0 {
			return fmt.Errorf("workload.demand_scale %v must be positive", f)
		}
		sc.Workload.DemandScale = f
		return nil
	},
	"workload.occupancy": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.occupancy")
		if err != nil {
			return err
		}
		if f <= 0 || f > 1 {
			return fmt.Errorf("workload.occupancy %v out of (0,1]", f)
		}
		sc.Workload.Occupancy = f
		return nil
	},
	"workload.endpoints": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("workload.endpoints")
		if err != nil {
			return err
		}
		if f < 1 {
			return fmt.Errorf("workload.endpoints %v must be at least 1", f)
		}
		sc.Workload.Endpoints = int(f)
		return nil
	},
	"oversubscribe": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("oversubscribe")
		if err != nil {
			return err
		}
		if f < 0 {
			return fmt.Errorf("oversubscribe %v negative", f)
		}
		sc.Oversubscribe = f
		return nil
	},
	"region": func(sc *sim.Scenario, v AxisValue) error {
		name, err := v.str("region")
		if err != nil {
			return err
		}
		reg, err := regionByName(name)
		if err != nil {
			return err
		}
		sc.Region = reg
		return nil
	},
	"region.mean_c": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("region.mean_c")
		sc.Region.MeanC = f
		return err
	},
	"layout.gpu": func(sc *sim.Scenario, v AxisValue) error {
		name, err := v.str("layout.gpu")
		if err != nil {
			return err
		}
		m, err := layout.ParseGPUModel(name)
		if err != nil {
			return err
		}
		sc.Layout.GPU = m
		return nil
	},
	"layout.mix_fraction": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("layout.mix_fraction")
		if err != nil {
			return err
		}
		if f < 0 || f > 1 {
			return fmt.Errorf("layout.mix_fraction %v out of [0,1]", f)
		}
		sc.Layout.MixFraction = f
		return nil
	},
	"seed": func(sc *sim.Scenario, v AxisValue) error {
		f, err := v.number("seed")
		if err != nil {
			return err
		}
		sc.Layout.Seed = uint64(f)
		sc.Workload.Seed = uint64(f)
		return nil
	},
	"start_offset": func(sc *sim.Scenario, v AxisValue) error {
		s, err := v.str("start_offset")
		if err != nil {
			return err
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("start_offset axis: %w", err)
		}
		sc.StartOffset = d
		return nil
	},
}

// AxisParams lists the sweepable parameter names in sorted order.
func AxisParams() []string {
	out := make([]string, 0, len(axisSetters))
	for p := range axisSetters {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Point is one cell of the campaign grid: the scenario with every axis value
// applied, plus the per-axis display labels.
type Point struct {
	Labels   []string
	Values   []AxisValue
	Scenario sim.Scenario
}

// expand builds the cartesian grid of the spec's axes over the base
// scenario. A spec without axes yields exactly one point. Points are ordered
// with the last axis varying fastest (row-major in spec axis order).
func (s *Spec) expand(base sim.Scenario) ([]Point, error) {
	points := []Point{{Scenario: base}}
	for _, ax := range s.Axes {
		next := make([]Point, 0, len(points)*len(ax.Values))
		set := axisSetters[ax.Param]
		for _, p := range points {
			for vi, v := range ax.Values {
				label := v.Label()
				if len(ax.Labels) > 0 {
					label = ax.Labels[vi]
				}
				np := Point{
					Labels:   append(append([]string(nil), p.Labels...), label),
					Values:   append(append([]AxisValue(nil), p.Values...), v),
					Scenario: p.Scenario,
				}
				// Failure schedules are shared slices on the copied
				// scenario; axes never mutate them, so sharing is safe.
				if err := set(&np.Scenario, v); err != nil {
					return nil, fmt.Errorf("scenario: spec %q: axis %q: %w", s.Name, ax.Param, err)
				}
				next = append(next, np)
			}
		}
		points = next
	}
	return points, nil
}
