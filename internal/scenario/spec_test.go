package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/sim"
)

// TestParseAndValidateErrors pins the error surface of the spec loader:
// typos and invalid values in committed spec files must fail loudly with a
// message naming the problem.
func TestParseAndValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"empty name", `{}`, "no name"},
		{"unknown field", `{"name":"x","oversubscribed":0.4}`, "unknown field"},
		{"bad duration", `{"name":"x","duration":"three hours"}`, "invalid duration"},
		{"numeric duration", `{"name":"x","duration":7}`, "duration must be a string"},
		{"negative tick", `{"name":"x","tick":"-1m"}`, "non-positive tick"},
		{"bad preset", `{"name":"x","layout":{"preset":"medium"}}`, "unknown layout preset"},
		{"bad gpu", `{"name":"x","layout":{"gpu":"B200"}}`, "unknown GPU model"},
		{"bad mix fraction", `{"name":"x","layout":{"mix_gpu":"H100","mix_fraction":1.5}}`, "out of [0,1]"},
		{"mix fraction without mix gpu", `{"name":"x","layout":{"mix_fraction":0.5}}`, "without layout.mix_gpu"},
		{"mix axis without mix gpu", `{"name":"x","axes":[{"param":"layout.mix_fraction","values":[0,0.5]}]}`, "without layout.mix_gpu"},
		{"mix gpu equals gpu", `{"name":"x","layout":{"gpu":"H100","mix_gpu":"H100","mix_fraction":0.5}}`, "needs two generations"},
		{"mix gpu equals implicit base", `{"name":"x","layout":{"mix_gpu":"A100","mix_fraction":0.5}}`, "needs two generations"},
		{"mix gpu equals gpu case-insensitively", `{"name":"x","layout":{"gpu":"h100","mix_gpu":"H100","mix_fraction":0.5}}`, "needs two generations"},
		{"null axis value", `{"name":"x","axes":[{"param":"oversubscribe","values":[0.2,null]}]}`, "not null"},
		{"zero occupancy", `{"name":"x","workload":{"occupancy":0}}`, "out of (0,1]"},
		{"negative occupancy", `{"name":"x","workload":{"occupancy":-0.5}}`, "out of (0,1]"},
		{"zero demand scale", `{"name":"x","workload":{"demand_scale":0}}`, "must be positive"},
		{"zero endpoints", `{"name":"x","workload":{"endpoints":0}}`, "at least 1"},
		{"trailing content", `{"name":"x"} {"policies":["nonsense"]}`, "trailing content"},
		{"bad saas fraction", `{"name":"x","workload":{"saas_fraction":-0.1}}`, "out of [0,1]"},
		{"bad region", `{"name":"x","region":"arctic"}`, "unknown region"},
		{"bad region object", `{"name":"x","region":{"mean":30}}`, "region must be"},
		{"bad failure kind", `{"name":"x","failures":[{"kind":"quake","at":"1h","duration":"1h"}]}`, "unknown failure kind"},
		{"zero failure duration", `{"name":"x","failures":[{"kind":"power","at":"1h","duration":"0s"}]}`, "must be positive"},
		{"bad policy", `{"name":"x","policies":["lru"]}`, "unknown policy"},
		{"bad axis param", `{"name":"x","axes":[{"param":"workload.mix","values":[1]}]}`, "unknown axis param"},
		{"axis no values", `{"name":"x","axes":[{"param":"oversubscribe","values":[]}]}`, "no values"},
		{"axis label mismatch", `{"name":"x","axes":[{"param":"oversubscribe","values":[0,0.2],"labels":["a"]}]}`, "1 labels for 2 values"},
		{"duplicate axis", `{"name":"x","axes":[{"param":"oversubscribe","values":[0]},{"param":"oversubscribe","values":[0.2]}]}`, "swept twice"},
		{"bad report format", `{"name":"x","report":{"format":"xml"}}`, "unknown report format"},
		{"bad metric", `{"name":"x","report":{"metrics":["latency"]}}`, "unknown metric"},
		{"negative scale", `{"name":"x","scale":-1}`, "negative scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec %s accepted", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBaseScenarioScaling checks the spec pipeline reproduces the experiment
// runners' scaling rules: aisle rounding, the 6-hour duration floor, the
// 9-hour start offset for short large-preset runs, and the seed threading.
func TestBaseScenarioScaling(t *testing.T) {
	s, err := Parse([]byte(`{"name":"x","scale":0.12}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.baseScenario(s.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Layout.Aisles != 2 {
		t.Errorf("aisles = %d, want 2", sc.Layout.Aisles)
	}
	if want := time.Duration(float64(7*24*time.Hour) * 0.12); sc.Duration != want {
		t.Errorf("duration = %v, want %v", sc.Duration, want)
	}
	if sc.StartOffset != 9*time.Hour {
		t.Errorf("start offset = %v, want 9h", sc.StartOffset)
	}
	if sc.Workload.Duration != sc.Duration {
		t.Error("workload duration not aligned")
	}
	if sc.Layout.Seed != 42 || sc.Workload.Seed != 42 {
		t.Error("default seed 42 not applied")
	}

	// Explicit fields survive scaling; custom seeds thread through.
	s2, err := Parse([]byte(`{"name":"x","scale":0.12,"seed":7,"start_offset":"3h","layout":{"seed":9}}`))
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := s2.baseScenario(s2.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.StartOffset != 3*time.Hour {
		t.Errorf("explicit start offset overridden to %v", sc2.StartOffset)
	}
	if sc2.Layout.Seed != 9 || sc2.Workload.Seed != 7 {
		t.Errorf("seeds = %d/%d, want 9/7", sc2.Layout.Seed, sc2.Workload.Seed)
	}

	// Explicit durations on the large preset are honored: no paper-week
	// floor at scale 1, proportional shrink (5-minute floor) under scale.
	s2b, err := Parse([]byte(`{"name":"x","duration":"1h"}`))
	if err != nil {
		t.Fatal(err)
	}
	sc2b, err := s2b.baseScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if sc2b.Duration != time.Hour {
		t.Errorf("explicit 1h duration became %v", sc2b.Duration)
	}
	sc2c, err := s2b.baseScenario(0.12)
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Duration(float64(time.Hour) * 0.12); sc2c.Duration != want {
		t.Errorf("explicit 1h duration at scale 0.12 = %v, want %v", sc2c.Duration, want)
	}

	// Small preset: sub-half scale shortens to the 20-minute smoke window.
	s3, err := Parse([]byte(`{"name":"x","scale":0.12,"layout":{"preset":"small"}}`))
	if err != nil {
		t.Fatal(err)
	}
	sc3, err := s3.baseScenario(s3.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if sc3.Duration != 20*time.Minute {
		t.Errorf("small-preset duration = %v, want 20m", sc3.Duration)
	}
	if sc3.Layout.Aisles != 1 {
		t.Errorf("small preset aisles = %d, want 1", sc3.Layout.Aisles)
	}
}

// TestExpandCartesian checks multi-axis grids expand row-major with the last
// axis fastest, and that axis values mutate the scenario.
func TestExpandCartesian(t *testing.T) {
	s, err := Parse([]byte(`{
		"name": "x",
		"layout": {"preset": "small"},
		"axes": [
			{"param": "oversubscribe", "values": [0, 0.2]},
			{"param": "layout.gpu", "values": ["A100", "H100"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.baseScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	points, err := s.expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expanded %d points, want 4", len(points))
	}
	wantLabels := [][]string{{"0", "A100"}, {"0", "H100"}, {"0.2", "A100"}, {"0.2", "H100"}}
	for i, p := range points {
		if p.Labels[0] != wantLabels[i][0] || p.Labels[1] != wantLabels[i][1] {
			t.Errorf("point %d labels = %v, want %v", i, p.Labels, wantLabels[i])
		}
	}
	if points[3].Scenario.Oversubscribe != 0.2 || points[3].Scenario.Layout.GPU != layout.H100 {
		t.Errorf("axis values not applied: %+v", points[3].Scenario)
	}
	if points[0].Scenario.Layout.GPU != layout.A100 || points[0].Scenario.Oversubscribe != 0 {
		t.Error("base point mutated")
	}
}

// TestSLOSchedAxes pins the new sweep axes: both SLO-scheduling knobs apply
// to the scenario's SLOSched, and out-of-range values are rejected.
func TestSLOSchedAxes(t *testing.T) {
	s, err := Parse([]byte(`{
		"name": "x",
		"layout": {"preset": "small"},
		"axes": [
			{"param": "slo.affinity_weight", "values": [0.25, 1]},
			{"param": "slo.admission_slack", "values": [0.5, 2]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.baseScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	points, err := s.expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expanded %d points, want 4", len(points))
	}
	got := points[1].Scenario.SLOSched
	if got.AffinityWeight != 0.25 || got.AdmissionSlack != 2 {
		t.Errorf("point 1 SLOSched = %+v, want {0.25 2}", got)
	}
	if base.SLOSched != (sim.SLOSched{}) {
		t.Error("base scenario mutated")
	}
	for _, bad := range []string{
		`{"name":"x","axes":[{"param":"slo.affinity_weight","values":[0]}]}`,
		`{"name":"x","axes":[{"param":"slo.affinity_weight","values":[1.5]}]}`,
		`{"name":"x","axes":[{"param":"slo.admission_slack","values":[-1]}]}`,
	} {
		s, err := Parse([]byte(bad))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Campaign(0); err == nil {
			t.Errorf("out-of-range axis accepted: %s", bad)
		}
	}
}

// TestPowerGovAxes pins the governor sweep axes: both controller knobs apply
// to the scenario's PowerGov, and out-of-range values are rejected.
func TestPowerGovAxes(t *testing.T) {
	s, err := Parse([]byte(`{
		"name": "x",
		"layout": {"preset": "small"},
		"axes": [
			{"param": "powergov.budget_frac", "values": [0.6, 0.9]},
			{"param": "powergov.gain", "values": [0.2, 0.5]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.baseScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	points, err := s.expand(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expanded %d points, want 4", len(points))
	}
	got := points[1].Scenario.PowerGov
	if got.BudgetFrac != 0.6 || got.Gain != 0.5 {
		t.Errorf("point 1 PowerGov = %+v, want {0.6 0.5}", got)
	}
	if base.PowerGov != (sim.PowerGov{}) {
		t.Error("base scenario mutated")
	}
	for _, bad := range []string{
		`{"name":"x","axes":[{"param":"powergov.budget_frac","values":[0]}]}`,
		`{"name":"x","axes":[{"param":"powergov.budget_frac","values":[1.5]}]}`,
		`{"name":"x","axes":[{"param":"powergov.gain","values":[-1]}]}`,
		`{"name":"x","axes":[{"param":"powergov.gain","values":[1.1]}]}`,
	} {
		s, err := Parse([]byte(bad))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Campaign(0); err == nil {
			t.Errorf("out-of-range axis accepted: %s", bad)
		}
	}
}

// TestParsePolicy pins the policy name surface.
func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]string{
		"baseline":        "Baseline",
		"tapas":           "TAPAS",
		"slo":             "SLO-Admit",
		"slo-edf":         "SLO-EDF",
		"powergov":        "PowerGov",
		"powergov-energy": "PowerGov-Energy",
		"place":           "Place",
		"place,config":    "Place+Config",
		"place, route":    "Place+Route",
	} {
		p, err := ParsePolicy(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if p.Name != want {
			t.Errorf("%q → %q, want %q", in, p.Name, want)
		}
		if p.New().Name() != want {
			t.Errorf("%q constructor names %q", in, p.New().Name())
		}
	}
	if _, err := ParsePolicy("place,teleport"); err == nil {
		t.Error("bad lever accepted")
	}
}

// TestDefaultPoliciesAndMetrics checks the spec defaults.
func TestDefaultPoliciesAndMetrics(t *testing.T) {
	s, err := Parse([]byte(`{"name":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.policyNames(); len(got) != 2 || got[0] != "baseline" || got[1] != "tapas" {
		t.Errorf("default policies = %v", got)
	}
	if got := s.metricIDs(); len(got) != 2 || got[0] != "norm_max_temp" || got[1] != "norm_peak_power" {
		t.Errorf("default metrics = %v", got)
	}
}
