package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/tapas-sim/tapas/internal/experiments"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// Duration is a time.Duration that unmarshals from Go duration strings
// ("20h9m36s", "1m").
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"24h\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("invalid duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// LayoutSpec selects and overrides a datacenter layout. Absent fields keep
// the preset's values.
type LayoutSpec struct {
	// Preset is "large" (the paper's ~1000-server cluster) or "small" (the
	// 80-server real-cluster testbed). Default "large".
	Preset         string   `json:"preset,omitempty"`
	Aisles         *int     `json:"aisles,omitempty"`
	RacksPerRow    *int     `json:"racks_per_row,omitempty"`
	ServersPerRack *int     `json:"servers_per_rack,omitempty"`
	GPU            string   `json:"gpu,omitempty"`          // "A100" | "H100"
	MixGPU         string   `json:"mix_gpu,omitempty"`      // heterogeneous fleets
	MixFraction    *float64 `json:"mix_fraction,omitempty"` // fraction of aisles on MixGPU
	Seed           *uint64  `json:"seed,omitempty"`
	// FleetScale multiplies the aisle count at layout generation (the
	// hyperscale axis): 10 provisions ten times the preset's fleet with the
	// same per-row/per-aisle shape. Composes with Scale (which shrinks
	// toward quick runs) — FleetScale applies to the already-scaled aisle
	// count. Also sweepable via the layout.fleet_scale axis.
	FleetScale *float64 `json:"fleet_scale,omitempty"`
}

// WorkloadSpec overrides workload generation. Absent fields keep the
// preset's values (50/50 mix, generator defaults for occupancy and demand).
//
// Trace switches the spec from synthetic generation to replay: the named
// workload CSV (recorded by tapas-trace -export / trace.WriteWorkloadCSV) is
// loaded once and pinned across the whole campaign grid, so axes sweep
// policies, climates, and failure schedules over the exact same workload.
// Relative paths resolve against the spec file's directory. Trace is
// mutually exclusive with every synthetic field of this struct and with
// workload.* / seed sweep axes — a synthetic override on a replayed trace
// would be silently ignored, so it is rejected instead.
// Transforms is an optional replay-time transform chain (canonical JSON of
// internal/trace/transform: time_warp, demand_scale, endpoint_filter,
// jitter, splice) applied to the pinned trace inside sim.Compile. It
// requires Trace — transforms reshape recorded workloads, synthetic ones
// are reshaped by their generation fields — and unlocks the transform.*
// sweep axes, so one pinned trace can drive a demand-scalability campaign.
// Relative splice paths resolve against the spec file's directory.
//
// Requests names a request-level replay log (CSV recorded by tapas-trace
// -export-requests / -import-azure -requests-out): with it set, SaaS
// endpoints stop consuming the trace's binned token rates and instead run
// continuous-batching queues fed by the log's individual arrivals, which
// unlocks the per-request SLO metrics (ttft_*, tbt_*, queue_*,
// slo_attainment_pct) as report columns. Requests requires Trace — the
// recorded workload still provides the endpoint set and VM population the
// requests are served on — and relative paths resolve against the spec file's
// directory. The Transforms chain applies to both views of the workload
// (time_warp and demand_scale reshape the request log consistently).
type WorkloadSpec struct {
	SaaSFraction *float64        `json:"saas_fraction,omitempty"`
	Endpoints    *int            `json:"endpoints,omitempty"`
	Occupancy    *float64        `json:"occupancy,omitempty"`
	DemandScale  *float64        `json:"demand_scale,omitempty"`
	Seed         *uint64         `json:"seed,omitempty"`
	Trace        string          `json:"trace,omitempty"`
	Requests     string          `json:"requests,omitempty"`
	Transforms   json.RawMessage `json:"transforms,omitempty"`
}

// RegionSpec selects the deployment climate: either a preset name ("hot",
// "temperate", "cool") or a full custom region object.
type RegionSpec struct {
	set    bool
	region trace.Region
}

// UnmarshalJSON accepts "hot" | "temperate" | "cool" or a custom object
// {"name", "mean_c", "seasonal_amp_c", "diurnal_amp_c", "noise_c"}.
func (r *RegionSpec) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		reg, err := regionByName(name)
		if err != nil {
			return err
		}
		r.set, r.region = true, reg
		return nil
	}
	var custom struct {
		Name         string  `json:"name"`
		MeanC        float64 `json:"mean_c"`
		SeasonalAmpC float64 `json:"seasonal_amp_c"`
		DiurnalAmpC  float64 `json:"diurnal_amp_c"`
		NoiseC       float64 `json:"noise_c"`
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&custom); err != nil {
		return fmt.Errorf("region must be a preset name or a custom object: %w", err)
	}
	if custom.Name == "" {
		custom.Name = "custom"
	}
	r.set = true
	r.region = trace.Region{
		Name:         custom.Name,
		MeanC:        custom.MeanC,
		SeasonalAmpC: custom.SeasonalAmpC,
		DiurnalAmpC:  custom.DiurnalAmpC,
		NoiseC:       custom.NoiseC,
	}
	return nil
}

func regionByName(name string) (trace.Region, error) {
	switch strings.ToLower(name) {
	case "hot":
		return trace.RegionHot, nil
	case "temperate":
		return trace.RegionTemperate, nil
	case "cool":
		return trace.RegionCool, nil
	}
	return trace.Region{}, fmt.Errorf("unknown region %q (known: hot, temperate, cool)", name)
}

// FailureSpec schedules one cooling or power emergency window.
type FailureSpec struct {
	Kind     string   `json:"kind"` // "power" | "cooling"
	At       Duration `json:"at"`
	Duration Duration `json:"duration"`
}

func (f FailureSpec) event() (sim.FailureEvent, error) {
	var kind sim.FailureKind
	switch f.Kind {
	case "power":
		kind = sim.PowerFailure
	case "cooling":
		kind = sim.CoolingFailure
	default:
		return sim.FailureEvent{}, fmt.Errorf("unknown failure kind %q (known: power, cooling)", f.Kind)
	}
	if f.Duration <= 0 {
		return sim.FailureEvent{}, fmt.Errorf("failure duration %v must be positive", time.Duration(f.Duration))
	}
	return sim.FailureEvent{Kind: kind, At: time.Duration(f.At), Duration: time.Duration(f.Duration)}, nil
}

// AxisSpec sweeps one parameter over a list of values; multiple axes expand
// into their cartesian grid. Labels (optional) name the grid columns in
// reports; they default to the formatted values.
type AxisSpec struct {
	Param  string      `json:"param"`
	Values []AxisValue `json:"values"`
	Labels []string    `json:"labels,omitempty"`
}

// AxisValue is one swept value: a JSON number or string.
type AxisValue struct {
	Num   float64
	Str   string
	IsNum bool
}

// UnmarshalJSON implements json.Unmarshaler. JSON null is rejected: both
// unmarshal targets would accept it as a silent no-op and sweep an
// unintended zero value.
func (v *AxisValue) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		return fmt.Errorf("axis value must be a number or a string, not null")
	}
	if err := json.Unmarshal(b, &v.Num); err == nil {
		v.IsNum = true
		return nil
	}
	if err := json.Unmarshal(b, &v.Str); err == nil {
		return nil
	}
	return fmt.Errorf("axis value %s must be a number or a string", b)
}

// Label formats the value for display when the axis declares no labels.
func (v AxisValue) Label() string {
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

func (v AxisValue) number(param string) (float64, error) {
	if !v.IsNum {
		return 0, fmt.Errorf("axis %q needs numeric values, got %q", param, v.Str)
	}
	return v.Num, nil
}

func (v AxisValue) str(param string) (string, error) {
	if v.IsNum {
		return "", fmt.Errorf("axis %q needs string values, got %v", param, v.Num)
	}
	return v.Str, nil
}

// ReportSpec selects the output format and metric columns.
type ReportSpec struct {
	// Format is "text" (grid over a single axis, flat table otherwise),
	// "csv", or "json". Default "text".
	Format string `json:"format,omitempty"`
	// Metrics are report columns; see Metrics() for the registry. Default
	// ["norm_max_temp", "norm_peak_power"].
	Metrics []string `json:"metrics,omitempty"`
}

// Spec is a declarative scenario specification, optionally swept into a
// campaign grid by Axes. The zero spec (plus a name) is the paper's
// large-scale week under Baseline and TAPAS.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Scale shrinks the preset toward quick runs exactly like the
	// experiment runners' -scale: it scales aisle count and duration (large
	// preset; floors of 2 aisles / 6 h) or shortens the run to 20 minutes
	// (small preset, scale < 0.5). 0 means 1.0 (paper scale).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives every deterministic generator; layout/workload seeds
	// override it individually. Default 42.
	Seed *uint64 `json:"seed,omitempty"`

	Layout        LayoutSpec    `json:"layout,omitempty"`
	Workload      WorkloadSpec  `json:"workload,omitempty"`
	Region        RegionSpec    `json:"region,omitempty"`
	Duration      *Duration     `json:"duration,omitempty"`
	Tick          *Duration     `json:"tick,omitempty"`
	StartOffset   *Duration     `json:"start_offset,omitempty"`
	Oversubscribe *float64      `json:"oversubscribe,omitempty"`
	Failures      []FailureSpec `json:"failures,omitempty"`

	// Shards splits the tick kernel's per-server phases across a bounded
	// worker pool (see sim.Scenario.Shards): 0 or 1 runs serially, n ≥ 2
	// uses n fixed chunks, negative selects GOMAXPROCS. Reports are
	// byte-identical at any shard count, so this is a throughput knob, not
	// a scenario parameter — tapas-campaign's -shards flag overrides it.
	Shards *int `json:"shards,omitempty"`

	// Policies are evaluated on every grid point: "baseline", "tapas", or a
	// comma list of levers ("place,route"). Default ["baseline", "tapas"].
	Policies []string   `json:"policies,omitempty"`
	Axes     []AxisSpec `json:"axes,omitempty"`
	Report   ReportSpec `json:"report,omitempty"`

	// dir is the directory of the spec file (set by Load); relative
	// workload.trace paths resolve against it, so committed specs can sit
	// next to their recorded traces.
	dir string
}

// Parse decodes and validates a spec. Unknown fields are rejected, so typos
// in committed spec files fail loudly instead of silently reverting to
// defaults.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	// Reject trailing content (e.g. a botched merge duplicating the
	// object) — only whitespace may follow the spec.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parsing spec: trailing content after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.dir = filepath.Dir(path)
	return s, nil
}

// SetBaseDir sets the directory relative workload.trace (and splice) paths
// resolve against. Load sets it to the spec file's directory automatically;
// callers that Parse specs from other sources (the campaign daemon's HTTP
// body, tests) use this to anchor relative paths explicitly.
func (s *Spec) SetBaseDir(dir string) { s.dir = dir }

// Validate checks the spec without building anything expensive.
func (s *Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario: spec %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	if s.Scale < 0 {
		return fail("negative scale %v", s.Scale)
	}
	switch s.Layout.Preset {
	case "", "large", "small":
	default:
		return fail("unknown layout preset %q (known: large, small)", s.Layout.Preset)
	}
	if s.Layout.GPU != "" {
		if _, err := layout.ParseGPUModel(s.Layout.GPU); err != nil {
			return fail("%v", err)
		}
	}
	if s.Layout.MixGPU != "" {
		if _, err := layout.ParseGPUModel(s.Layout.MixGPU); err != nil {
			return fail("%v", err)
		}
	}
	if f := s.Layout.MixFraction; f != nil && (*f < 0 || *f > 1) {
		return fail("layout.mix_fraction %v out of [0,1]", *f)
	}
	if f := s.Layout.FleetScale; f != nil && *f <= 0 {
		return fail("layout.fleet_scale %v must be positive", *f)
	}
	// A mix fraction without a distinct second generation would silently
	// produce a uniform fleet; require an explicit, different mix_gpu.
	// Compare parsed models (with the preset's A100 default applied), not
	// raw strings, so case variants and the implicit base cannot slip by.
	mixSwept := false
	for _, ax := range s.Axes {
		if ax.Param == "layout.mix_fraction" {
			mixSwept = true
		}
	}
	if (mixSwept || (s.Layout.MixFraction != nil && *s.Layout.MixFraction > 0)) && s.Layout.MixGPU == "" {
		return fail("layout.mix_fraction given without layout.mix_gpu")
	}
	if s.Layout.MixGPU != "" {
		base := layout.A100 // both presets default to A100
		if s.Layout.GPU != "" {
			base, _ = layout.ParseGPUModel(s.Layout.GPU)
		}
		if mix, _ := layout.ParseGPUModel(s.Layout.MixGPU); mix == base {
			return fail("layout.mix_gpu %q equals the base generation; a mixed fleet needs two generations", s.Layout.MixGPU)
		}
	}
	// Replay-time transforms reshape a recorded trace; without one there is
	// nothing to transform (synthetic workloads are shaped by their
	// generation fields), so the combination is rejected.
	if len(s.Workload.Transforms) > 0 && s.Workload.Trace == "" {
		return fail("workload.transforms requires workload.trace; transforms apply to recorded traces (synthetic workloads are shaped by the workload.* fields)")
	}
	// A request log replays individual arrivals against the recorded
	// workload's endpoint set and VM population; without the trace there is
	// nothing to serve them on.
	if s.Workload.Requests != "" && s.Workload.Trace == "" {
		return fail("workload.requests requires workload.trace; the recorded workload provides the endpoint set the request log is served on")
	}
	chain, err := s.transformChain()
	if err != nil {
		return fail("workload.transforms: %v", err)
	}
	sweptOps := map[string]string{}
	for _, ax := range s.Axes {
		op, ok := transformAxisOps[ax.Param]
		if !ok {
			continue
		}
		if prev, dup := sweptOps[op]; dup {
			return fail("axes %q and %q both sweep the %s step; they would overwrite each other", prev, ax.Param, op)
		}
		sweptOps[op] = ax.Param
		n := 0
		for _, step := range chain {
			if step.Op() == op {
				n++
			}
		}
		if n != 1 {
			return fail("axis %q needs exactly one %s step in workload.transforms to sweep (found %d)", ax.Param, op, n)
		}
	}
	// A replayed trace pins the workload; any synthetic workload knob (or a
	// sweep axis that would regenerate it) alongside would be silently
	// ignored, so the combinations are rejected outright.
	if s.Workload.Trace != "" {
		synthetic := ""
		switch {
		case s.Workload.SaaSFraction != nil:
			synthetic = "saas_fraction"
		case s.Workload.Endpoints != nil:
			synthetic = "endpoints"
		case s.Workload.Occupancy != nil:
			synthetic = "occupancy"
		case s.Workload.DemandScale != nil:
			synthetic = "demand_scale"
		case s.Workload.Seed != nil:
			synthetic = "seed"
		}
		if synthetic != "" {
			return fail("workload.trace replays a recorded workload; synthetic field workload.%s cannot be set alongside it", synthetic)
		}
		for _, ax := range s.Axes {
			if strings.HasPrefix(ax.Param, "workload.") || ax.Param == "seed" {
				return fail("axis %q cannot be swept when workload.trace pins a recorded workload", ax.Param)
			}
		}
	}
	if f := s.Workload.SaaSFraction; f != nil && (*f < 0 || *f > 1) {
		return fail("workload.saas_fraction %v out of [0,1]", *f)
	}
	// The trace generator treats zero occupancy/demand/endpoints as "use
	// the default", so an explicit zero would silently simulate something
	// else entirely; reject non-positive values outright.
	if f := s.Workload.Occupancy; f != nil && (*f <= 0 || *f > 1) {
		return fail("workload.occupancy %v out of (0,1]", *f)
	}
	if f := s.Workload.DemandScale; f != nil && *f <= 0 {
		return fail("workload.demand_scale %v must be positive", *f)
	}
	if n := s.Workload.Endpoints; n != nil && *n < 1 {
		return fail("workload.endpoints %d must be at least 1", *n)
	}
	if s.Duration != nil && *s.Duration <= 0 {
		return fail("non-positive duration %v", time.Duration(*s.Duration))
	}
	if s.Tick != nil && *s.Tick <= 0 {
		return fail("non-positive tick %v", time.Duration(*s.Tick))
	}
	if o := s.Oversubscribe; o != nil && *o < 0 {
		return fail("negative oversubscription %v", *o)
	}
	for _, f := range s.Failures {
		if _, err := f.event(); err != nil {
			return fail("%v", err)
		}
	}
	for _, p := range s.policyNames() {
		if _, err := ParsePolicy(p); err != nil {
			return fail("%v", err)
		}
	}
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		if _, ok := axisSetters[ax.Param]; !ok {
			return fail("unknown axis param %q (known: %s)", ax.Param, strings.Join(AxisParams(), ", "))
		}
		if seen[ax.Param] {
			return fail("axis param %q swept twice", ax.Param)
		}
		seen[ax.Param] = true
		if len(ax.Values) == 0 {
			return fail("axis %q has no values", ax.Param)
		}
		if len(ax.Labels) > 0 && len(ax.Labels) != len(ax.Values) {
			return fail("axis %q has %d labels for %d values", ax.Param, len(ax.Labels), len(ax.Values))
		}
	}
	switch s.Report.Format {
	case "", "text", "csv", "json":
	default:
		return fail("unknown report format %q (known: text, csv, json)", s.Report.Format)
	}
	for _, id := range s.metricIDs() {
		if _, ok := metricByID(id); !ok {
			return fail("unknown metric %q (known: %s)", id, strings.Join(MetricIDs(), ", "))
		}
	}
	return nil
}

// transformChain parses the workload.transforms field (nil when absent).
// Splice traces are not loaded here — Validate must not touch the
// filesystem; baseScenario loads them against the spec directory.
func (s *Spec) transformChain() (transform.Chain, error) {
	if len(s.Workload.Transforms) == 0 {
		return nil, nil
	}
	return transform.Parse(s.Workload.Transforms)
}

func (s *Spec) policyNames() []string {
	if len(s.Policies) == 0 {
		return []string{"baseline", "tapas"}
	}
	return s.Policies
}

func (s *Spec) metricIDs() []string {
	if len(s.Report.Metrics) == 0 {
		return []string{"norm_max_temp", "norm_peak_power"}
	}
	return s.Report.Metrics
}

// baseScenario materializes the un-swept sim.Scenario: preset, overrides,
// then scaling — the same pipeline the experiment runners use, so a spec of
// an existing figure reproduces it byte-identically.
func (s *Spec) baseScenario(scale float64) (sim.Scenario, error) {
	small := s.Layout.Preset == "small"
	var sc sim.Scenario
	if small {
		sc = sim.SmallScenario()
	} else {
		sc = sim.DefaultScenario()
	}
	if scale <= 0 {
		scale = 1
	}

	seed := uint64(42)
	if s.Seed != nil {
		seed = *s.Seed
	}
	sc.Layout.Seed = seed
	sc.Workload.Seed = seed

	// Layout overrides.
	lo := s.Layout
	if lo.Aisles != nil {
		sc.Layout.Aisles = *lo.Aisles
	}
	if lo.RacksPerRow != nil {
		sc.Layout.RacksPerRow = *lo.RacksPerRow
	}
	if lo.ServersPerRack != nil {
		sc.Layout.ServersPerRack = *lo.ServersPerRack
	}
	if lo.GPU != "" {
		m, err := layout.ParseGPUModel(lo.GPU)
		if err != nil {
			return sim.Scenario{}, err
		}
		sc.Layout.GPU = m
	}
	if lo.MixGPU != "" {
		m, err := layout.ParseGPUModel(lo.MixGPU)
		if err != nil {
			return sim.Scenario{}, err
		}
		sc.Layout.MixGPU = m
	}
	if lo.MixFraction != nil {
		sc.Layout.MixFraction = *lo.MixFraction
	}
	if lo.FleetScale != nil {
		sc.Layout.FleetScale = *lo.FleetScale
	}
	if lo.Seed != nil {
		sc.Layout.Seed = *lo.Seed
	}

	// Workload overrides.
	wo := s.Workload
	if wo.SaaSFraction != nil {
		sc.Workload.SaaSFraction = *wo.SaaSFraction
	}
	if wo.Endpoints != nil {
		sc.Workload.Endpoints = *wo.Endpoints
	}
	if wo.Occupancy != nil {
		sc.Workload.Occupancy = *wo.Occupancy
	}
	if wo.DemandScale != nil {
		sc.Workload.DemandScale = *wo.DemandScale
	}
	if wo.Seed != nil {
		sc.Workload.Seed = *wo.Seed
	}

	if s.Region.set {
		sc.Region = s.Region.region
	}
	if s.Duration != nil {
		sc.Duration = time.Duration(*s.Duration)
	}
	if s.Tick != nil {
		sc.Tick = time.Duration(*s.Tick)
	}
	if s.StartOffset != nil {
		sc.StartOffset = time.Duration(*s.StartOffset)
	}
	if s.Oversubscribe != nil {
		sc.Oversubscribe = *s.Oversubscribe
	}
	if s.Shards != nil {
		sc.Shards = *s.Shards
	}
	for _, f := range s.Failures {
		ev, err := f.event()
		if err != nil {
			return sim.Scenario{}, err
		}
		sc.Failures = append(sc.Failures, ev)
	}

	// Scaling: the exact rules the experiment runners apply (shared
	// helpers), so a spec of an existing figure reproduces it
	// byte-identically.
	if small {
		experiments.ScaleSmall(&sc, scale, s.Duration != nil)
	} else {
		experiments.ScaleLarge(&sc, scale, s.StartOffset != nil, s.Duration != nil)
	}
	sc.Workload.Duration = sc.Duration

	// Replay: load the recorded workload once; every grid point shares the
	// parsed trace read-only, exactly like compiled synthetic workloads.
	if s.Workload.Trace != "" {
		path := s.Workload.Trace
		if !filepath.IsAbs(path) && s.dir != "" {
			path = filepath.Join(s.dir, path)
		}
		wl, err := trace.LoadWorkloadCSV(path)
		if err != nil {
			return sim.Scenario{}, fmt.Errorf("loading workload.trace: %w", err)
		}
		sc.Trace = wl

		chain, err := s.transformChain()
		if err != nil {
			return sim.Scenario{}, fmt.Errorf("workload.transforms: %w", err)
		}
		if err := chain.Load(s.dir); err != nil {
			return sim.Scenario{}, fmt.Errorf("loading workload.transforms: %w", err)
		}
		sc.TraceTransforms = chain

		// Request-level replay: the log is loaded once and shared read-only
		// across the grid like the trace; sim.Compile transforms and
		// validates it against the workload.
		if s.Workload.Requests != "" {
			rpath := s.Workload.Requests
			if !filepath.IsAbs(rpath) && s.dir != "" {
				rpath = filepath.Join(s.dir, rpath)
			}
			reqs, err := trace.LoadRequestsCSV(rpath)
			if err != nil {
				return sim.Scenario{}, fmt.Errorf("loading workload.requests: %w", err)
			}
			sc.Requests = reqs
		}
	}
	return sc, nil
}
