package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse pins the spec parser: no input panics, every rejection is a
// wrapped "scenario:"-prefixed error, and accepted specs re-validate (Parse
// and Validate cannot disagree).
func FuzzParse(f *testing.F) {
	// The committed example specs are the richest seeds: presets, overrides,
	// axes, failures, custom regions, and the replay field.
	examples, _ := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	for _, path := range examples {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name": "x"}`))
	f.Add([]byte(`{"name": "x", "workload": {"trace": "t.csv"}}`))
	f.Add([]byte(`{"name": "x", "workload": {"trace": "t.csv", "seed": 1}}`))
	f.Add([]byte(`{"name": "x", "workload": {"trace": "t.csv", "transforms": [{"op": "demand_scale", "factor": 2}]}}`))
	f.Add([]byte(`{"name": "x", "workload": {"transforms": [{"op": "jitter", "sigma": "90s"}]}}`))
	f.Add([]byte(`{"name": "x", "workload": {"trace": "t.csv", "transforms": [{"op": "warp"}]}}`))
	f.Add([]byte(`{"name": "x", "workload": {"trace": "t.csv", "transforms": [{"op": "time_warp", "factor": 1}]},
	  "axes": [{"param": "transform.time_warp", "values": [0.5, 2]}]}`))
	f.Add([]byte(`{"name": "x", "axes": [{"param": "seed", "values": [null]}]}`))
	f.Add([]byte(`{"name": "x", "duration": "-5m"}`))
	f.Add([]byte(`{"name": "x", "region": {"mean_c": "hot"}}`))
	f.Add([]byte(`{"name": "x"} {"name": "y"}`))
	f.Add([]byte(`{"unknown_field": 1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			msg := err.Error()
			if !strings.Contains(msg, "scenario:") {
				t.Errorf("error %q lacks the scenario: wrapping", msg)
			}
			if strings.TrimSpace(msg) == "scenario:" {
				t.Errorf("error %q is not descriptive", msg)
			}
			return
		}
		// Parse validated the spec; Validate on the same value must agree.
		if err := s.Validate(); err != nil {
			t.Errorf("accepted spec fails re-validation: %v", err)
		}
	})
}
