package power

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/tapas-sim/tapas/internal/ring"
)

// diurnalWeek synthesizes n weeks of hourly power with a diurnal sine and
// noise, samplesPerHour samples per hour.
func diurnalWeek(weeks, samplesPerHour int, rng *rand.Rand) []float64 {
	n := weeks * HoursPerWeek * samplesPerHour
	out := make([]float64, n)
	for i := range out {
		hour := float64(i/samplesPerHour) + float64(i%samplesPerHour)/float64(samplesPerHour)
		day := hour / 24
		base := 1000 + 400*math.Sin(2*math.Pi*(day-0.3))
		out[i] = base + rng.NormFloat64()*30
	}
	return out
}

func TestBuildTemplateRequiresWeek(t *testing.T) {
	if _, err := BuildTemplate(make([]float64, 100), 6, 99); err == nil {
		t.Error("expected error for short history")
	}
	if _, err := BuildTemplate(make([]float64, HoursPerWeek*6), 0, 99); err == nil {
		t.Error("expected error for zero samplesPerHour")
	}
}

// TestBuildTemplateRingMatchesSlice verifies the ring-backed path produces
// the identical template, including when the ring has wrapped (the window
// then starts mid-buffer).
func TestBuildTemplateRingMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	history := diurnalWeek(1, 6, rng)
	r := ring.New(len(history))
	for _, v := range history {
		r.Push(v)
	}
	fromSlice, err := BuildTemplate(history, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	fromRing, err := BuildTemplateRing(r, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if fromRing != fromSlice {
		t.Error("ring-backed template differs from slice-backed template")
	}
	// Wrap the ring: push one extra week so the oldest week is evicted and
	// the stored window starts mid-buffer.
	more := diurnalWeek(1, 6, rng)
	for _, v := range more {
		r.Push(v)
	}
	fromSlice, err = BuildTemplate(more, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	fromRing, err = BuildTemplateRing(r, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if fromRing != fromSlice {
		t.Error("wrapped ring template differs from slice-backed template")
	}
}

func TestTemplatePredictionAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	history := diurnalWeek(2, 6, rng)
	week1 := history[:len(history)/2]
	week2 := history[len(history)/2:]
	tpl, err := BuildTemplate(week1, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 14a: row-based P50 prediction should be within 10% for the vast
	// majority of hours.
	errs := tpl.PredictionErrors(week2, 6)
	within := 0
	for _, e := range errs {
		if math.Abs(e) <= 10 {
			within++
		}
	}
	if frac := float64(within) / float64(len(errs)); frac < 0.9 {
		t.Errorf("only %.0f%% of predictions within 10%%, want > 90%%", frac*100)
	}
}

func TestTemplateP99RarelyUnderpredicts(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	history := diurnalWeek(2, 6, rng)
	week1 := history[:len(history)/2]
	week2 := history[len(history)/2:]
	tpl, err := BuildTemplate(week1, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	errs := tpl.PredictionErrors(week2, 6)
	under := 0
	for _, e := range errs {
		if e < 0 {
			under++
		}
	}
	// Fig. 14a: conservative P99 templates underpredict < 4% of row-hours.
	if frac := float64(under) / float64(len(errs)); frac > 0.04 {
		t.Errorf("P99 template underpredicts %.1f%% of samples, want < 4%%", frac*100)
	}
}

func TestTemplatePredictWraps(t *testing.T) {
	var tpl Template
	for h := range tpl.HourlyW {
		tpl.HourlyW[h] = float64(h)
	}
	if tpl.Predict(0) != tpl.Predict(HoursPerWeek) {
		t.Error("Predict must wrap modulo one week")
	}
	if tpl.Predict(-1) != tpl.HourlyW[HoursPerWeek-1] {
		t.Error("Predict must handle negative hours")
	}
}

func TestTemplatePeak(t *testing.T) {
	var tpl Template
	tpl.HourlyW[37] = 123
	if tpl.Peak() != 123 {
		t.Errorf("Peak = %v, want 123", tpl.Peak())
	}
}

func TestPredictionErrorsSkipsZeroActuals(t *testing.T) {
	var tpl Template
	errs := tpl.PredictionErrors([]float64{0, 0, 0}, 1)
	if len(errs) != 0 {
		t.Errorf("errors on zero actuals = %v, want empty", errs)
	}
}

func TestTemplatePercentileOrdering(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	history := diurnalWeek(1, 6, rng)
	t50, err := BuildTemplate(history, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	t99, err := BuildTemplate(history, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < HoursPerWeek; h++ {
		if t99.HourlyW[h] < t50.HourlyW[h] {
			t.Fatalf("hour %d: P99 %v below P50 %v", h, t99.HourlyW[h], t50.HourlyW[h])
		}
	}
}
