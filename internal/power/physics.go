// Package power implements the electrical side of the paper: ground-truth
// server power as a function of GPU load and frequency (used by the
// simulator), the row/UPS power hierarchy with capping (§2.2), learned
// polynomial power models, and the template-based power prediction used for
// placement (Fig. 14, following SmartOClock).
package power

import (
	"fmt"
	"math"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/regress"
	"github.com/tapas-sim/tapas/internal/units"
)

// DVFSExponent models GPU dynamic power versus clock frequency. DVFS scales
// voltage with frequency, so dynamic power grows superlinearly; 2.5 sits
// between the pure-f³ ideal and the static floor seen on real parts. It is
// the single source of truth for the exponent: the simulator's capped-power
// scaling and every capping inversion (core.TAPAS.selectiveCap, the PowerGov
// controller) must use it rather than re-deriving the literal, so the
// forward physics and the inversions can never drift apart.
const DVFSExponent = 2.5

// GPUPower returns the ground-truth power of one GPU at a utilization in
// [0,1] and a frequency fraction (freq / max freq) in (0,1].
func GPUPower(spec *layout.GPUSpec, util, freqFrac float64) float64 {
	util = units.Clamp01(util)
	freqFrac = units.Clamp(freqFrac, spec.MinFreqGHz/spec.MaxFreqGHz, 1)
	// Uncapped GPUs are the common case in the simulator's hot loop;
	// math.Pow(1, x) is exactly 1, so skipping it preserves the result bit
	// for bit.
	scale := 1.0
	if freqFrac != 1 {
		scale = math.Pow(freqFrac, DVFSExponent)
	}
	dynamic := (spec.GPUTDPW - spec.GPUIdleW) * util * scale
	return spec.GPUIdleW + dynamic
}

// FanPower returns fan power at a fan-speed fraction; fan power grows with
// the cube of speed.
func FanPower(spec *layout.GPUSpec, fanFrac float64) float64 {
	f := units.Clamp01(fanFrac)
	return spec.FanMaxW * f * f * f
}

// ServerPower returns the total ground-truth power of a server given its
// summed GPU power, its overall load fraction (drives CPUs/memory/NIC), and
// its fan-speed fraction. Matches the paper's observation that idle servers
// still draw significant power and that fans and other components scale
// with load.
func ServerPower(spec *layout.GPUSpec, gpuPowerW, loadFrac, fanFrac float64) float64 {
	other := units.Lerp(spec.ServerOtherW, spec.ServerOtherMaxW, units.Clamp01(loadFrac))
	return other + gpuPowerW + FanPower(spec, fanFrac)
}

// ServerPowerAtUniformLoad is a convenience for profiling and placement
// estimation: all GPUs at the same utilization and full frequency.
func ServerPowerAtUniformLoad(spec *layout.GPUSpec, util float64) float64 {
	gpu := GPUPower(spec, util, 1) * float64(spec.GPUsPerServer)
	return ServerPower(spec, gpu, util, 0.3+0.7*units.Clamp01(util))
}

// FreqFracForPower inverts GPUPower: the frequency fraction at which a GPU
// running at util draws at most targetW. Returns the minimum frequency
// fraction if even that is too much — including a zero-util GPU whose idle
// draw already exceeds the target, where no frequency state can help but the
// floor is still the honest recommendation. Used by power capping.
func FreqFracForPower(spec *layout.GPUSpec, util, targetW float64) float64 {
	minFrac := spec.MinFreqGHz / spec.MaxFreqGHz
	util = units.Clamp01(util)
	if util == 0 {
		if targetW < spec.GPUIdleW {
			return minFrac
		}
		return 1
	}
	dynBudget := targetW - spec.GPUIdleW
	if dynBudget <= 0 {
		return minFrac
	}
	frac := math.Pow(dynBudget/((spec.GPUTDPW-spec.GPUIdleW)*util), 1/DVFSExponent)
	return units.Clamp(frac, minFrac, 1)
}

// Model is the learned polynomial power model f_power(Load_GPU) for a
// server class (§2.2 uses polynomial regression; fans and other components
// also depend on load, which the polynomial absorbs).
type Model struct {
	Poly regress.Poly
}

// Predict returns estimated server power at a GPU load fraction.
func (m Model) Predict(loadFrac float64) float64 {
	return m.Poly.Eval(units.Clamp01(loadFrac))
}

// FitModel fits a degree-3 polynomial to (load, serverPower) observations.
func FitModel(loads, powers []float64) (Model, error) {
	p, err := regress.FitPoly(loads, powers, 3)
	if err != nil {
		return Model{}, fmt.Errorf("power: fitting server power model: %w", err)
	}
	return Model{Poly: p}, nil
}
