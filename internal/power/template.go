package power

import (
	"fmt"

	"github.com/tapas-sim/tapas/internal/regress"
	"github.com/tapas-sim/tapas/internal/ring"
)

// HoursPerWeek is the length of an hour-of-week template.
const HoursPerWeek = 7 * 24

// Template is an hour-of-week power template: the chosen percentile of the
// previous week's draw for each of the 168 hours. TAPAS uses templates to
// predict row- and VM-level power for placement and routing (Fig. 14,
// following SmartOClock's template approach).
type Template struct {
	Percentile float64
	HourlyW    [HoursPerWeek]float64
}

// BuildTemplate constructs a template from a power history sampled
// uniformly. samplesPerHour tells how many consecutive samples form one
// hour; history longer than a week folds onto the hour-of-week axis.
func BuildTemplate(history []float64, samplesPerHour int, percentile float64) (Template, error) {
	return buildTemplate(sliceHistory(history), samplesPerHour, percentile)
}

// BuildTemplateRing constructs a template directly from a rolling telemetry
// ring (e.g. cluster.State's RowPowerHist), reading samples oldest-to-newest
// in place — no snapshot copy of the four-week window is made.
func BuildTemplateRing(h *ring.Ring, samplesPerHour int, percentile float64) (Template, error) {
	return buildTemplate(h, samplesPerHour, percentile)
}

// history is the minimal ordered view buildTemplate consumes; both plain
// slices and ring buffers satisfy it.
type history interface {
	Len() int
	At(i int) float64
}

type sliceHistory []float64

func (s sliceHistory) Len() int         { return len(s) }
func (s sliceHistory) At(i int) float64 { return s[i] }

func buildTemplate(history history, samplesPerHour int, percentile float64) (Template, error) {
	if samplesPerHour <= 0 {
		return Template{}, fmt.Errorf("power: samplesPerHour must be positive, got %d", samplesPerHour)
	}
	if history.Len() < samplesPerHour*HoursPerWeek {
		return Template{}, fmt.Errorf("power: need at least one week of history (%d samples), got %d",
			samplesPerHour*HoursPerWeek, history.Len())
	}
	// Each sample contributes to its own hour bucket and the two adjacent
	// ones. With only one week of history a bucket would otherwise hold a
	// handful of samples, making high percentiles no better than the sample
	// max; the ±1 h window both enlarges the bucket and folds in the
	// diurnal slope, which is what makes P99 templates conservative.
	//
	// Bucket sizes are known exactly up front (every sample lands in three
	// buckets), so all 168 buckets are carved from one flat backing array —
	// one allocation instead of ~1300 append growths per template, which
	// matters both for the per-tick policy path (BuildTemplateRing) and the
	// template-heavy experiments (Fig. 14).
	n := history.Len()
	var counts [HoursPerWeek]int
	for i := 0; i < n; i++ {
		hour := (i / samplesPerHour) % HoursPerWeek
		for _, h := range [3]int{hour - 1, hour, hour + 1} {
			counts[(h+HoursPerWeek)%HoursPerWeek]++
		}
	}
	flat := make([]float64, 0, 3*n)
	var buckets [HoursPerWeek][]float64
	off := 0
	for h, c := range counts {
		buckets[h] = flat[off : off : off+c]
		off += c
	}
	for i := 0; i < n; i++ {
		v := history.At(i)
		hour := (i / samplesPerHour) % HoursPerWeek
		for _, h := range [3]int{hour - 1, hour, hour + 1} {
			b := (h + HoursPerWeek) % HoursPerWeek
			buckets[b] = append(buckets[b], v)
		}
	}
	t := Template{Percentile: percentile}
	for h := range buckets {
		// The buckets are scratch, so the percentile may sort them in
		// place instead of copying each one.
		t.HourlyW[h] = regress.PercentileInPlace(buckets[h], percentile)
	}
	return t, nil
}

// Predict returns the template's power estimate for an hour-of-week index
// (wraps modulo one week).
func (t Template) Predict(hourOfWeek int) float64 {
	h := hourOfWeek % HoursPerWeek
	if h < 0 {
		h += HoursPerWeek
	}
	return t.HourlyW[h]
}

// Peak returns the maximum hourly value in the template; placement uses the
// template peak as the predicted peak demand of a row or VM.
func (t Template) Peak() float64 {
	peak := t.HourlyW[0]
	for _, v := range t.HourlyW[1:] {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// PredictionErrors evaluates a template against a later week of actuals and
// returns the signed percentage error per sample ((pred−actual)/actual·100).
// Positive = overprediction. This generates the CDFs of Fig. 14.
func (t Template) PredictionErrors(actuals []float64, samplesPerHour int) []float64 {
	errs := make([]float64, 0, len(actuals))
	for i, a := range actuals {
		if a <= 0 {
			continue
		}
		hour := (i / samplesPerHour) % HoursPerWeek
		errs = append(errs, (t.HourlyW[hour]-a)/a*100)
	}
	return errs
}
