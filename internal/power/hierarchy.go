package power

import "github.com/tapas-sim/tapas/internal/layout"

// Budget tracks the live power envelopes of the three-level hierarchy
// (§2.2): per-row provisioned power (PDU pairs) and the UPS group. Failure
// events scale the effective limits: a UPS failure in the 4N/3 group drops
// datacenter capacity to 75%, which the operator propagates down as a
// uniform row multiplier.
type Budget struct {
	rowProvW []float64
	// multiplier is the current capacity factor: 1.0 healthy, 0.75 during
	// a UPS (power) emergency.
	multiplier float64
}

// NewBudget builds the budget from a generated datacenter.
func NewBudget(dc *layout.Datacenter) *Budget {
	b := &Budget{rowProvW: make([]float64, len(dc.Rows)), multiplier: 1}
	for i, row := range dc.Rows {
		b.rowProvW[i] = row.ProvPowerW
	}
	return b
}

// RowLimitW returns the current effective power limit of a row.
func (b *Budget) RowLimitW(row int) float64 { return b.rowProvW[row] * b.multiplier }

// SetEmergency sets the capacity multiplier (e.g. 0.75 on UPS failure) —
// pass 1 to clear.
func (b *Budget) SetEmergency(multiplier float64) {
	if multiplier <= 0 || multiplier > 1 {
		multiplier = 1
	}
	b.multiplier = multiplier
}

// Multiplier reports the current capacity factor.
func (b *Budget) Multiplier() float64 { return b.multiplier }

// OverdrawW returns how far a row's draw exceeds its effective limit
// (0 when within limits).
func (b *Budget) OverdrawW(row int, drawW float64) float64 {
	over := drawW - b.RowLimitW(row)
	if over < 0 {
		return 0
	}
	return over
}

// UniformCapFactor computes the fraction by which every server in an
// over-budget row must scale its power to fit the limit. This is the
// baseline's capping behaviour: homogeneous limits pushed down the
// hierarchy (§2.2), implemented as a uniform frequency cap (§5.4).
func UniformCapFactor(drawW, limitW float64) float64 {
	if drawW <= 0 || drawW <= limitW {
		return 1
	}
	f := limitW / drawW
	if f < 0 {
		return 0
	}
	return f
}
