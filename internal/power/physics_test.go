package power

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/regress"
)

func TestGPUPowerEndpoints(t *testing.T) {
	spec := layout.Spec(layout.A100)
	if got := GPUPower(&spec, 0, 1); got != spec.GPUIdleW {
		t.Errorf("idle GPU power = %v, want %v", got, spec.GPUIdleW)
	}
	if got := GPUPower(&spec, 1, 1); math.Abs(got-spec.GPUTDPW) > 1e-9 {
		t.Errorf("full GPU power = %v, want TDP %v", got, spec.GPUTDPW)
	}
}

func TestGPUPowerFrequencyScaling(t *testing.T) {
	spec := layout.Spec(layout.A100)
	full := GPUPower(&spec, 1, 1)
	half := GPUPower(&spec, 1, 0.5)
	if half >= full {
		t.Error("lower frequency must lower power")
	}
	// Superlinear: halving frequency cuts dynamic power by more than half.
	dynFull := full - spec.GPUIdleW
	dynHalf := half - spec.GPUIdleW
	if dynHalf > dynFull/2 {
		t.Errorf("dynamic power at half freq = %v, want < %v (superlinear DVFS)", dynHalf, dynFull/2)
	}
}

func TestGPUPowerClampsInputs(t *testing.T) {
	spec := layout.Spec(layout.A100)
	if GPUPower(&spec, 2, 1) != GPUPower(&spec, 1, 1) {
		t.Error("utilization above 1 must clamp")
	}
	minFrac := spec.MinFreqGHz / spec.MaxFreqGHz
	if GPUPower(&spec, 1, 0.01) != GPUPower(&spec, 1, minFrac) {
		t.Error("frequency below hardware minimum must clamp")
	}
}

func TestGPUPowerMonotoneProperty(t *testing.T) {
	spec := layout.Spec(layout.H100)
	f := func(a, b float64) bool {
		u1 := math.Mod(math.Abs(a), 1)
		u2 := math.Mod(math.Abs(b), 1)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return GPUPower(&spec, u2, 1) >= GPUPower(&spec, u1, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestServerPowerAtUniformLoad(t *testing.T) {
	spec := layout.Spec(layout.A100)
	idle := ServerPowerAtUniformLoad(&spec, 0)
	full := ServerPowerAtUniformLoad(&spec, 1)
	// Idle servers consume significant power (§2.2) — above 1 kW for DGX.
	if idle < 1000 {
		t.Errorf("idle server power = %v, want > 1 kW", idle)
	}
	// Full load approaches but does not exceed the server TDP.
	if full > spec.ServerTDPW {
		t.Errorf("full server power = %v exceeds TDP %v", full, spec.ServerTDPW)
	}
	if full < 0.9*spec.ServerTDPW {
		t.Errorf("full server power = %v, want ≥ 90%% of TDP %v", full, spec.ServerTDPW)
	}
}

func TestFanPowerCubic(t *testing.T) {
	spec := layout.Spec(layout.A100)
	if FanPower(&spec, 1) != spec.FanMaxW {
		t.Error("full fan power must equal FanMaxW")
	}
	if got := FanPower(&spec, 0.5); math.Abs(got-spec.FanMaxW/8) > 1e-9 {
		t.Errorf("half-speed fan power = %v, want max/8", got)
	}
}

func TestFreqFracForPowerInverts(t *testing.T) {
	spec := layout.Spec(layout.A100)
	for _, util := range []float64{0.3, 0.6, 1.0} {
		target := GPUPower(&spec, util, 0.85)
		frac := FreqFracForPower(&spec, util, target)
		if math.Abs(frac-0.85) > 1e-9 {
			t.Errorf("util %v: inverted frac = %v, want 0.85", util, frac)
		}
	}
	// Unreachably low target clamps to the hardware minimum.
	minFrac := spec.MinFreqGHz / spec.MaxFreqGHz
	if got := FreqFracForPower(&spec, 1, 10); got != minFrac {
		t.Errorf("impossible target frac = %v, want min %v", got, minFrac)
	}
	// Idle GPUs need no capping.
	if got := FreqFracForPower(&spec, 0, 100); got != 1 {
		t.Errorf("idle-GPU frac = %v, want 1", got)
	}
}

func TestFreqFracForPowerIdleOverBudget(t *testing.T) {
	// A zero-util GPU can still be over an idle-power budget; the honest
	// recommendation is the hardware floor, not "no cap".
	for _, m := range []layout.GPUModel{layout.A100, layout.H100} {
		spec := layout.Spec(m)
		minFrac := spec.MinFreqGHz / spec.MaxFreqGHz
		if got := FreqFracForPower(&spec, 0, spec.GPUIdleW-1); got != minFrac {
			t.Errorf("%v: idle GPU over idle budget frac = %v, want min %v", m, got, minFrac)
		}
		// At or above idle draw there is nothing frequency can shed.
		if got := FreqFracForPower(&spec, 0, spec.GPUIdleW); got != 1 {
			t.Errorf("%v: idle GPU at idle budget frac = %v, want 1", m, got)
		}
	}
}

// TestCappingInversionRoundTrip pins that the capping inversion and the
// forward physics share one DVFS exponent: for any achievable target,
// GPUPower at the inverted frequency reproduces the target within 1e-9.
// This is the regression wall against the exponent reappearing as a drifting
// literal in a capping path.
func TestCappingInversionRoundTrip(t *testing.T) {
	for _, m := range []layout.GPUModel{layout.A100, layout.H100} {
		spec := layout.Spec(m)
		minFrac := spec.MinFreqGHz / spec.MaxFreqGHz
		for _, util := range []float64{0.05, 0.25, 0.5, 0.75, 1} {
			lo := GPUPower(&spec, util, minFrac)
			hi := GPUPower(&spec, util, 1)
			for _, a := range []float64{0, 0.2, 0.5, 0.8, 1} {
				target := lo + a*(hi-lo)
				frac := FreqFracForPower(&spec, util, target)
				if got := GPUPower(&spec, util, frac); math.Abs(got-target) > 1e-9 {
					t.Errorf("%v util %v target %v: round-trip power %v (|Δ|=%g)",
						m, util, target, got, math.Abs(got-target))
				}
			}
		}
	}
}

func TestFitModelRecoversServerPower(t *testing.T) {
	spec := layout.Spec(layout.A100)
	rng := rand.New(rand.NewPCG(4, 4))
	var loads, powers []float64
	for i := 0; i < 500; i++ {
		l := rng.Float64()
		loads = append(loads, l)
		powers = append(powers, ServerPowerAtUniformLoad(&spec, l)+rng.NormFloat64()*20)
	}
	m, err := FitModel(loads, powers)
	if err != nil {
		t.Fatal(err)
	}
	var pred, actual []float64
	for l := 0.0; l <= 1; l += 0.05 {
		pred = append(pred, m.Predict(l))
		actual = append(actual, ServerPowerAtUniformLoad(&spec, l))
	}
	if mae := regress.MAE(pred, actual); mae > 60 {
		t.Errorf("power model MAE = %.1f W, want < 60 W (< 1%% of TDP)", mae)
	}
}

func TestFitModelError(t *testing.T) {
	if _, err := FitModel([]float64{1}, []float64{100}); err == nil {
		t.Error("expected insufficient-data error")
	}
}
