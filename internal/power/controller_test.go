package power

import (
	"math"
	"testing"

	"github.com/tapas-sim/tapas/internal/layout"
)

// fakePlant models one entity whose draw follows the recommended scale
// immediately: draw = baseW + dynW × scale.
func fakePlant(baseW, dynW, scale float64) float64 { return baseW + dynW*scale }

func TestControllerConvergesOntoBudget(t *testing.T) {
	c := NewController(1)
	c.Tune(0.8, 0.35)
	const baseW, dynW, capacityW = 2000, 4000, 6000
	budget := 0.8 * capacityW // 4800 W < base+dyn = 6000 W: must cap
	u := 1.0
	for i := 0; i < 200; i++ {
		u = c.Recommend(0, fakePlant(baseW, dynW, u), capacityW)
	}
	draw := fakePlant(baseW, dynW, u)
	if math.Abs(draw-budget) > 0.01*budget {
		t.Errorf("converged draw %v, want within 1%% of budget %v (scale %v)", draw, budget, u)
	}
}

func TestControllerReleasesGradually(t *testing.T) {
	c := NewController(1)
	c.Tune(0.8, 0.35)
	// Drive the entity deep over budget so the scale saturates at the floor.
	for i := 0; i < 100; i++ {
		c.Recommend(0, 100000, 1000)
	}
	if got := c.Scale(0); got != MinScale {
		t.Fatalf("saturated scale = %v, want floor %v", got, MinScale)
	}
	// Anti-windup: once the violation clears, the scale recovers immediately
	// and monotonically — no wound-up backlog to unwind first.
	prev := MinScale
	steps := 0
	for c.Scale(0) < 1 && steps < 100 {
		u := c.Recommend(0, 100, 1000)
		if u < prev {
			t.Fatalf("step %d: recovery not monotone (%v < %v)", steps, u, prev)
		}
		prev = u
		steps++
	}
	if c.Scale(0) != 1 {
		t.Errorf("scale did not recover to 1 within 100 ticks (at %v)", c.Scale(0))
	}
	if steps < 2 {
		t.Errorf("recovery took %d ticks, want gradual (> 1)", steps)
	}
}

func TestControllerUnderBudgetStaysUncapped(t *testing.T) {
	c := NewController(2)
	for i := 0; i < 10; i++ {
		if u := c.Recommend(1, 500, 1000); u != 1 {
			t.Fatalf("under-budget recommendation %v, want 1", u)
		}
	}
	// Out-of-range entities and zero capacity are inert.
	if c.Recommend(5, 1e9, 1000) != 1 || c.Recommend(0, 1e9, 0) != 1 {
		t.Error("out-of-range entity or zero capacity must recommend 1")
	}
}

func TestControllerTuneKeepsDefaultsOnZero(t *testing.T) {
	c := NewController(1)
	c.Tune(0, 0)
	if c.BudgetFrac != DefaultBudgetFrac || c.Gain != DefaultGain {
		t.Errorf("Tune(0,0) changed settings: %v/%v", c.BudgetFrac, c.Gain)
	}
	c.Tune(0.5, 0.9)
	if c.BudgetFrac != 0.5 || c.Gain != 0.9 {
		t.Errorf("Tune(0.5,0.9) not applied: %v/%v", c.BudgetFrac, c.Gain)
	}
}

func TestTargetFreqFracInvertsThroughPhysics(t *testing.T) {
	spec := layout.Spec(layout.H100)
	const util = 0.7
	for _, curCap := range []float64{1, 0.9, 0.6} {
		perGPUW := GPUPower(&spec, util, curCap)
		// scale 1 always recommends fully uncapped, whatever the current cap.
		if got := TargetFreqFrac(&spec, curCap, perGPUW, 1); got != 1 {
			t.Errorf("cap %v scale 1: target %v, want 1", curCap, got)
		}
		// A fractional scale recommends the frequency whose dynamic power is
		// scale × the *uncapped* dynamic power — verified through GPUPower.
		const scale = 0.5
		frac := TargetFreqFrac(&spec, curCap, perGPUW, scale)
		wantDyn := (GPUPower(&spec, util, 1) - spec.GPUIdleW) * scale
		gotDyn := GPUPower(&spec, util, frac) - spec.GPUIdleW
		if math.Abs(gotDyn-wantDyn) > 1e-9 {
			t.Errorf("cap %v: dynamic power %v, want %v", curCap, gotDyn, wantDyn)
		}
	}
	// Idle GPUs recommend uncapped: frequency cannot shed idle draw.
	if got := TargetFreqFrac(&spec, 1, spec.GPUIdleW, 0.1); got != 1 {
		t.Errorf("idle GPU target %v, want 1", got)
	}
}

func TestStepTowardIsGradualAndClamped(t *testing.T) {
	if got := StepToward(1, 0.5, 0.4, 0.3); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("step = %v, want 0.8", got)
	}
	if got := StepToward(0.4, 0, 1, 0.3); got != 0.3 {
		t.Errorf("floor clamp = %v, want 0.3", got)
	}
	if got := StepToward(0.9, 2, 1, 0.3); got != 1 {
		t.Errorf("ceiling clamp = %v, want 1", got)
	}
}
