package power

import (
	"math"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/units"
)

// Controller is the closed-loop power-capping controller behind the PowerGov
// policy: a Climatik-style monitor → action recommender → frequency tuner
// loop run once per tick per controlled entity (the policy uses one entity
// per SaaS endpoint).
//
// The monitor hands Recommend the entity's observed draw and capacity; the
// recommender holds a per-entity dynamic-power scale in [MinScale, 1]
// (1 = uncapped) and corrects it by Gain × the normalized budget error each
// tick. The stored scale is the integrated control state, and clamping it to
// the actuator range is the anti-windup: a long, deep violation cannot wind
// the state below what frequency capping can deliver, so recovery starts the
// moment the error changes sign instead of first unwinding an unbounded
// backlog. The tuner (TargetFreqFrac + StepToward) turns the scale into a
// per-server frequency state through the inverse DVFS physics and walks the
// live cap toward it gradually — no slam-and-decay.
type Controller struct {
	// BudgetFrac is the entity power budget as a fraction of the capacity
	// the monitor reports (the PowerGov policy reports aggregate server
	// TDP, so 1 would only cap an entity drawing full TDP).
	BudgetFrac float64
	// Gain is the per-tick correction applied to the scale per unit of
	// normalized budget error, and the tuner's per-tick step fraction
	// toward the recommended frequency. Values in (0, 1]; higher converges
	// faster but overshoots more.
	Gain float64

	scale []float64
}

// Controller defaults: a budget at 80% of aggregate TDP engages on busy
// fleets without strangling them, and a 0.35 gain settles within a few ticks
// while staying well-damped against the engine's ×1.05 cap recovery.
const (
	DefaultBudgetFrac = 0.8
	DefaultGain       = 0.35
	// MinScale floors the recommended dynamic-power scale; matching the
	// selective-capping floor keeps the two escalation paths comparable.
	MinScale = 0.05
)

// NewController builds a controller with default budget and gain for the
// given number of entities.
func NewController(entities int) *Controller {
	c := &Controller{BudgetFrac: DefaultBudgetFrac, Gain: DefaultGain}
	c.Reset(entities)
	return c
}

// Reset re-sizes the per-entity control state and returns every entity to
// the uncapped scale.
func (c *Controller) Reset(entities int) {
	c.scale = make([]float64, entities)
	for i := range c.scale {
		c.scale[i] = 1
	}
}

// Tune overrides budget fraction and gain; non-positive values keep the
// current settings (mirroring core.SLO.TuneSLO's zero-means-default rule).
func (c *Controller) Tune(budgetFrac, gain float64) {
	if budgetFrac > 0 {
		c.BudgetFrac = budgetFrac
	}
	if gain > 0 {
		c.Gain = gain
	}
}

// Recommend folds one tick's observation of an entity — its power draw and
// its capacity (the budget is BudgetFrac × capacityW) — into the control
// state and returns the recommended dynamic-power scale in [MinScale, 1].
// Entities with no capacity recommend 1 (nothing to govern).
func (c *Controller) Recommend(entity int, drawW, capacityW float64) float64 {
	if entity < 0 || entity >= len(c.scale) || capacityW <= 0 {
		return 1
	}
	budget := c.BudgetFrac * capacityW
	u := c.scale[entity] + c.Gain*(budget-drawW)/budget
	// Clamping the stored state is the anti-windup (see type comment).
	u = units.Clamp(u, MinScale, 1)
	c.scale[entity] = u
	return u
}

// Scale returns an entity's current recommendation without advancing it.
func (c *Controller) Scale(entity int) float64 {
	if entity < 0 || entity >= len(c.scale) {
		return 1
	}
	return c.scale[entity]
}

// TargetFreqFrac inverts the DVFS physics for the tuner: given a GPU's
// current frequency cap and observed per-GPU draw, return the frequency
// fraction at which its dynamic power lands on scale × its uncapped dynamic
// power. It first undoes the current cap (dynamic power scales with
// freqFrac^DVFSExponent) to recover the uncapped utilization, then asks
// FreqFracForPower for the frequency meeting the scaled target — so a scale
// of 1 recommends fully uncapped regardless of the current cap, and the
// recommendation round-trips through GPUPower. GPUs at or below idle draw
// recommend 1: frequency cannot shed idle power.
func TargetFreqFrac(spec *layout.GPUSpec, curCap, perGPUW, scale float64) float64 {
	dynW := perGPUW - spec.GPUIdleW
	if dynW <= 0 {
		return 1
	}
	minFrac := spec.MinFreqGHz / spec.MaxFreqGHz
	powCap := math.Pow(units.Clamp(curCap, minFrac, 1), DVFSExponent)
	dynUncappedW := dynW / powCap
	util := dynUncappedW / (spec.GPUTDPW - spec.GPUIdleW)
	return FreqFracForPower(spec, util, spec.GPUIdleW+dynUncappedW*scale)
}

// StepToward is the gradual tuner: it moves a live frequency cap a gain
// fraction of the way toward the recommended target, clamped to
// [floor, 1] — TAPAS slams caps down and lets them decay back; the
// closed-loop tuner approaches the recommendation from either side.
func StepToward(cur, target, gain, floor float64) float64 {
	return units.Clamp(cur+gain*(target-cur), floor, 1)
}
