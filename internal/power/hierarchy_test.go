package power

import (
	"testing"

	"github.com/tapas-sim/tapas/internal/layout"
)

func TestBudgetRowLimits(t *testing.T) {
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBudget(dc)
	for i, row := range dc.Rows {
		if b.RowLimitW(i) != row.ProvPowerW {
			t.Errorf("row %d limit = %v, want %v", i, b.RowLimitW(i), row.ProvPowerW)
		}
	}
}

func TestBudgetEmergency(t *testing.T) {
	dc, _ := layout.New(layout.SmallConfig())
	b := NewBudget(dc)
	normal := b.RowLimitW(0)
	b.SetEmergency(0.75)
	if got := b.RowLimitW(0); got != normal*0.75 {
		t.Errorf("emergency limit = %v, want %v (UPS failure ⇒ 75%%)", got, normal*0.75)
	}
	if b.Multiplier() != 0.75 {
		t.Errorf("multiplier = %v, want 0.75", b.Multiplier())
	}
	b.SetEmergency(1)
	if b.RowLimitW(0) != normal {
		t.Error("clearing emergency must restore limits")
	}
	// Invalid multipliers reset to healthy.
	b.SetEmergency(-2)
	if b.Multiplier() != 1 {
		t.Error("invalid multiplier must reset to 1")
	}
	b.SetEmergency(1.5)
	if b.Multiplier() != 1 {
		t.Error("multiplier above 1 must reset to 1")
	}
}

func TestBudgetOverdraw(t *testing.T) {
	dc, _ := layout.New(layout.SmallConfig())
	b := NewBudget(dc)
	limit := b.RowLimitW(0)
	if got := b.OverdrawW(0, limit-100); got != 0 {
		t.Errorf("within-limit overdraw = %v, want 0", got)
	}
	if got := b.OverdrawW(0, limit+500); got != 500 {
		t.Errorf("overdraw = %v, want 500", got)
	}
}

func TestUniformCapFactor(t *testing.T) {
	if got := UniformCapFactor(900, 1000); got != 1 {
		t.Errorf("under-limit cap = %v, want 1", got)
	}
	if got := UniformCapFactor(2000, 1000); got != 0.5 {
		t.Errorf("2× overdraw cap = %v, want 0.5", got)
	}
	if got := UniformCapFactor(0, 1000); got != 1 {
		t.Errorf("zero-draw cap = %v, want 1", got)
	}
	if got := UniformCapFactor(1000, -5); got != 0 {
		t.Errorf("negative-limit cap = %v, want 0", got)
	}
}
