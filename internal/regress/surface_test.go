package regress

import (
	"math"
	"math/rand/v2"
	"testing"
)

// inletTruth mimics the paper's inlet behaviour: flat below 15 °C outside,
// linear 15–25 °C, damped above 25 °C, plus a linear DC-load term.
func inletTruth(outside, load float64) float64 {
	var base float64
	switch {
	case outside < 15:
		base = 18
	case outside < 25:
		base = 18 + 0.5*(outside-15)
	default:
		base = 23 + 0.2*(outside-25)
	}
	return base + 2*load
}

func TestFitSurfaceInletShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var xs, ys, zs []float64
	for i := 0; i < 3000; i++ {
		o := rng.Float64()*40 - 2 // −2..38 °C outside
		l := rng.Float64()        // 0..1 load
		xs = append(xs, o)
		ys = append(ys, l)
		zs = append(zs, inletTruth(o, l)+rng.NormFloat64()*0.2)
	}
	s, err := FitSurface(xs, ys, zs, []float64{15, 25})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports MAE < 1 °C for this family; with σ=0.2 noise we
	// should easily be below 0.5 °C on held-out points.
	var pred, actual []float64
	for i := 0; i < 500; i++ {
		o := rng.Float64()*40 - 2
		l := rng.Float64()
		pred = append(pred, s.Eval(o, l))
		actual = append(actual, inletTruth(o, l))
	}
	if mae := MAE(pred, actual); mae > 0.5 {
		t.Errorf("surface MAE = %v, want < 0.5", mae)
	}
}

func TestFitSurfaceLoadSensitivity(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var xs, ys, zs []float64
	for i := 0; i < 2000; i++ {
		o := rng.Float64() * 40
		l := rng.Float64()
		xs = append(xs, o)
		ys = append(ys, l)
		zs = append(zs, inletTruth(o, l))
	}
	s, err := FitSurface(xs, ys, zs, []float64{15, 25})
	if err != nil {
		t.Fatal(err)
	}
	// ∂inlet/∂load must be ≈ 2 °C across the range (Fig. 5).
	delta := s.Eval(35, 1) - s.Eval(35, 0)
	if math.Abs(delta-2) > 0.3 {
		t.Errorf("load sensitivity = %v °C, want ≈ 2", delta)
	}
}

func TestFitSurfaceSparseSegmentsInherit(t *testing.T) {
	// Only warm data; cold-segment evaluation must still return something
	// sensible (inherited), not zero.
	var xs, ys, zs []float64
	for i := 0; i < 200; i++ {
		o := 26 + float64(i%10)
		xs = append(xs, o)
		ys = append(ys, 0.5)
		zs = append(zs, inletTruth(o, 0.5))
	}
	s, err := FitSurface(xs, ys, zs, []float64{15, 25})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(5, 0.5); got < 10 || got > 40 {
		t.Errorf("inherited segment Eval = %v, want plausible temperature", got)
	}
}

func TestFitSurfaceErrors(t *testing.T) {
	if _, err := FitSurface([]float64{1}, []float64{1, 2}, []float64{1}, nil); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := FitSurface([]float64{1}, []float64{1}, []float64{1}, []float64{9, 3}); err == nil {
		t.Error("expected unsorted-knots error")
	}
	if _, err := FitSurface(nil, nil, nil, []float64{15}); err == nil {
		t.Error("expected insufficient-data error")
	}
}
