package regress

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	b := []float64{3, -2, 7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, -2, 7}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1  →  x=2, y=1
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("got %v, want [2 1]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 4}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("got %v, want [4 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLinearBadDims(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for non-square matrix")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched rhs")
	}
}

// Property: for random well-conditioned systems, A·x ≈ b after solving.
func TestSolveLinearResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(seed uint64) bool {
		n := int(seed%5) + 2
		a := make([][]float64, n)
		orig := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64()*4 - 2
			}
			a[i][i] += float64(n) // diagonal dominance ⇒ well-conditioned
			copy(orig[i], a[i])
		}
		b := make([]float64, n)
		origB := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		copy(origB, b)
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += orig[i][j] * x[j]
			}
			if math.Abs(sum-origB[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExactRecovery(t *testing.T) {
	// y = 3 + 2a − b exactly; least squares must recover the weights.
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{1, a, b})
			y = append(y, 3+2*a-b)
		}
	}
	w, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-6 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	x := [][]float64{{1, 2, 3}}
	y := []float64{1}
	if _, err := LeastSquares(x, y); err == nil {
		t.Fatal("expected insufficient-data error")
	}
}

func TestLeastSquaresRagged(t *testing.T) {
	x := [][]float64{{1, 2}, {1}}
	y := []float64{1, 2}
	if _, err := LeastSquares(x, y); err == nil {
		t.Fatal("expected ragged-matrix error")
	}
}
