package regress

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2, 3}, []float64{1, 4, 1}); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MAE = %v, want 4/3", got)
	}
	if !math.IsNaN(MAE(nil, nil)) {
		t.Error("MAE(nil) should be NaN")
	}
	if !math.IsNaN(MAE([]float64{1}, []float64{1, 2})) {
		t.Error("MAE mismatched lengths should be NaN")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Error("RMSE(nil) should be NaN")
	}
}

func TestRMSEGreaterOrEqualMAEProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	f := func(_ uint64) bool {
		n := int(rng.Uint64()%20) + 1
		pred := make([]float64, n)
		act := make([]float64, n)
		for i := range pred {
			pred[i] = rng.Float64() * 100
			act[i] = rng.Float64() * 100
		}
		return RMSE(pred, act) >= MAE(pred, act)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestR2(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	if got := R2(actual, actual); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect R² = %v, want 1", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(mean, actual); math.Abs(got) > 1e-12 {
		t.Errorf("mean-predictor R² = %v, want 0", got)
	}
	if got := R2([]float64{1, 1}, []float64{2, 2}); !math.IsInf(got, -1) {
		t.Errorf("constant-actual wrong-pred R² = %v, want -Inf", got)
	}
	if got := R2([]float64{2, 2}, []float64{2, 2}); got != 1 {
		t.Errorf("constant exact R² = %v, want 1", got)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", std)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	f := func(_ uint64) bool {
		n := int(rng.Uint64()%50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortFloat64sMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 50; trial++ {
		n := int(rng.Uint64() % 200)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()*200 - 100
		}
		b := append([]float64(nil), a...)
		sortFloat64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: sort mismatch at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}
