package regress

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	p := Poly{Coeffs: []float64{1, -2, 3}} // 1 − 2x + 3x²
	cases := []struct{ x, want float64 }{
		{0, 1},
		{1, 2},
		{2, 9},
		{-1, 6},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPolyEvalEmpty(t *testing.T) {
	var p Poly
	if got := p.Eval(5); got != 0 {
		t.Errorf("empty poly Eval = %v, want 0", got)
	}
	if p.Degree() != -1 {
		t.Errorf("empty poly degree = %d, want -1", p.Degree())
	}
}

func TestFitPolyExactRecovery(t *testing.T) {
	// Sample y = 2 − x + 0.5x² and recover coefficients.
	var xs, ys []float64
	for x := -5.0; x <= 5; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, 2-x+0.5*x*x)
	}
	p, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -1, 0.5}
	for i := range want {
		if math.Abs(p.Coeffs[i]-want[i]) > 1e-6 {
			t.Errorf("coeff[%d] = %v, want %v", i, p.Coeffs[i], want[i])
		}
	}
}

func TestFitPolyDegreeZero(t *testing.T) {
	p, err := FitPoly([]float64{1, 2, 3}, []float64{4, 6, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Coeffs[0]-6) > 1e-6 {
		t.Errorf("constant fit = %v, want mean 6", p.Coeffs[0])
	}
}

func TestFitPolyErrors(t *testing.T) {
	if _, err := FitPoly([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("expected negative-degree error")
	}
	if _, err := FitPoly([]float64{1}, []float64{1}, 3); err == nil {
		t.Error("expected insufficient-data error")
	}
}

// Property: fitting noise-free samples of a random quadratic recovers it to
// within numerical tolerance, evaluated at held-out points.
func TestFitPolyRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	f := func(_ uint64) bool {
		c0 := rng.Float64()*10 - 5
		c1 := rng.Float64()*4 - 2
		c2 := rng.Float64()*2 - 1
		truth := Poly{Coeffs: []float64{c0, c1, c2}}
		var xs, ys []float64
		for x := -3.0; x <= 3; x += 0.25 {
			xs = append(xs, x)
			ys = append(ys, truth.Eval(x))
		}
		fit, err := FitPoly(xs, ys, 2)
		if err != nil {
			return false
		}
		for x := -2.5; x <= 2.5; x += 0.7 {
			if math.Abs(fit.Eval(x)-truth.Eval(x)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitPiecewiseTwoRegimes(t *testing.T) {
	// Flat at 18 below x=15, then linear 18 + 0.5(x−15): the paper's inlet
	// shape. A single knot at 15 must capture both regimes.
	var xs, ys []float64
	for x := 0.0; x <= 30; x += 0.25 {
		xs = append(xs, x)
		if x < 15 {
			ys = append(ys, 18)
		} else {
			ys = append(ys, 18+0.5*(x-15))
		}
	}
	pw, err := FitPiecewise(xs, ys, []float64{15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pw.Eval(5); math.Abs(got-18) > 0.01 {
		t.Errorf("cold regime Eval(5) = %v, want 18", got)
	}
	if got := pw.Eval(25); math.Abs(got-23) > 0.01 {
		t.Errorf("warm regime Eval(25) = %v, want 23", got)
	}
}

func TestFitPiecewiseEmptySegmentInherits(t *testing.T) {
	// All data above the knot: the lower segment must inherit the upper fit
	// so extrapolation below the training range still works (the paper calls
	// out random forests failing exactly here).
	var xs, ys []float64
	for x := 20.0; x <= 40; x++ {
		xs = append(xs, x)
		ys = append(ys, 2*x)
	}
	pw, err := FitPiecewise(xs, ys, []float64{15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := pw.Eval(10); math.Abs(got-20) > 1e-3 {
		t.Errorf("extrapolated Eval(10) = %v, want 20", got)
	}
}

func TestFitPiecewiseUnsortedKnots(t *testing.T) {
	if _, err := FitPiecewise([]float64{1, 2}, []float64{1, 2}, []float64{5, 3}, 1); err == nil {
		t.Error("expected unsorted-knots error")
	}
}

func TestFitPiecewiseNoData(t *testing.T) {
	if _, err := FitPiecewise(nil, nil, []float64{1}, 1); err == nil {
		t.Error("expected insufficient-data error")
	}
}

func TestLinearEvalAndFit(t *testing.T) {
	var feats [][]float64
	var ys []float64
	for a := 0.0; a < 4; a++ {
		for b := 0.0; b < 4; b++ {
			feats = append(feats, []float64{1, a, b})
			ys = append(ys, 10+0.5*a-2*b)
		}
	}
	m, err := FitLinear(feats, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Eval([]float64{1, 2, 1}); math.Abs(got-9) > 1e-6 {
		t.Errorf("Eval = %v, want 9", got)
	}
}
