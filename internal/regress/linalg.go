// Package regress implements the regression toolkit used by TAPAS profiling:
// dense linear least squares, polynomial and piecewise-polynomial fits, a
// multivariate piecewise surface (the paper's inlet-temperature model), and
// error metrics (MAE, RMSE, R²).
//
// The paper (§5.1) evaluates several regression families and selects
// piecewise polynomial regression for the cooling models because it reaches
// MAE < 1 °C while remaining fast, compact, and well-behaved on inputs below
// the training range. This package provides exactly that family, built from
// scratch on Gaussian elimination (no external dependencies).
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("regress: singular system")

// ErrInsufficientData is returned when a fit has fewer samples than
// parameters.
var ErrInsufficientData = errors.New("regress: insufficient data for fit")

// SolveLinear solves A·x = b in place using Gaussian elimination with partial
// pivoting. A must be square; A and b are clobbered.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("regress: bad system dimensions %dx%d", len(a), len(b))
	}
	for _, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("regress: non-square matrix row len %d != %d", len(row), n)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude in this column.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// LeastSquares fits weights w minimizing ‖X·w − y‖² via the normal equations
// XᵀX·w = Xᵀy. X is the design matrix (one row per sample). A small ridge
// term keeps near-collinear designs solvable, which matters when profiling
// data covers a narrow operating range.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	m := len(x)
	if m == 0 || len(y) != m {
		return nil, fmt.Errorf("regress: design matrix has %d rows, y has %d", m, len(y))
	}
	p := len(x[0])
	if m < p {
		return nil, ErrInsufficientData
	}
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regress: ragged design matrix at row %d", r)
		}
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	const ridge = 1e-9
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += ridge * (1 + xtx[i][i])
	}
	return SolveLinear(xtx, xty)
}
