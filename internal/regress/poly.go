package regress

import (
	"fmt"
	"sort"
)

// Poly is a univariate polynomial c₀ + c₁x + c₂x² + … .
type Poly struct {
	Coeffs []float64
}

// Eval evaluates the polynomial at x using Horner's method.
func (p Poly) Eval(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Degree reports the nominal degree (len(coeffs)-1, or -1 when empty).
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// FitPoly fits a degree-d polynomial to (x, y) by least squares.
func FitPoly(x, y []float64, degree int) (Poly, error) {
	if degree < 0 {
		return Poly{}, fmt.Errorf("regress: negative degree %d", degree)
	}
	if len(x) != len(y) {
		return Poly{}, fmt.Errorf("regress: len(x)=%d != len(y)=%d", len(x), len(y))
	}
	design := make([][]float64, len(x))
	for i, xi := range x {
		row := make([]float64, degree+1)
		v := 1.0
		for j := 0; j <= degree; j++ {
			row[j] = v
			v *= xi
		}
		design[i] = row
	}
	coeffs, err := LeastSquares(design, y)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Coeffs: coeffs}, nil
}

// Piecewise is a piecewise polynomial over contiguous segments of the x axis.
// Knots are the interior segment boundaries in ascending order; segment i
// covers x in [Knots[i-1], Knots[i]) with open ends extrapolated by the first
// and last pieces. Pieces has len(Knots)+1 entries.
type Piecewise struct {
	Knots  []float64
	Pieces []Poly
}

// Eval evaluates the piecewise polynomial at x.
func (pw Piecewise) Eval(x float64) float64 {
	idx := sort.SearchFloat64s(pw.Knots, x)
	return pw.Pieces[idx].Eval(x)
}

// FitPiecewise fits an independent degree-d polynomial per segment. Segments
// with too few points inherit the neighbouring fit so the result is total
// over the whole axis.
func FitPiecewise(x, y []float64, knots []float64, degree int) (Piecewise, error) {
	if len(x) != len(y) {
		return Piecewise{}, fmt.Errorf("regress: len(x)=%d != len(y)=%d", len(x), len(y))
	}
	if !sort.Float64sAreSorted(knots) {
		return Piecewise{}, fmt.Errorf("regress: knots must be ascending")
	}
	nseg := len(knots) + 1
	segX := make([][]float64, nseg)
	segY := make([][]float64, nseg)
	for i, xi := range x {
		s := sort.SearchFloat64s(knots, xi)
		segX[s] = append(segX[s], xi)
		segY[s] = append(segY[s], y[i])
	}
	pieces := make([]Poly, nseg)
	fitted := make([]bool, nseg)
	anyFit := false
	for s := 0; s < nseg; s++ {
		if len(segX[s]) > degree {
			p, err := FitPoly(segX[s], segY[s], degree)
			if err == nil {
				pieces[s], fitted[s] = p, true
				anyFit = true
			}
		}
	}
	if !anyFit {
		return Piecewise{}, ErrInsufficientData
	}
	// Fill unfitted segments from the nearest fitted neighbour so Eval is
	// total. Scan left-to-right then right-to-left.
	for s := 1; s < nseg; s++ {
		if !fitted[s] && fitted[s-1] {
			pieces[s], fitted[s] = pieces[s-1], true
		}
	}
	for s := nseg - 2; s >= 0; s-- {
		if !fitted[s] && fitted[s+1] {
			pieces[s], fitted[s] = pieces[s+1], true
		}
	}
	return Piecewise{Knots: append([]float64(nil), knots...), Pieces: pieces}, nil
}

// Linear is a multivariate linear model y = w·f(x) over an explicit feature
// vector (callers prepend 1 for the intercept).
type Linear struct {
	Weights []float64
}

// Eval computes the dot product of the weights with the feature vector.
func (l Linear) Eval(features []float64) float64 {
	v := 0.0
	for i, w := range l.Weights {
		v += w * features[i]
	}
	return v
}

// FitLinear fits a multivariate linear model by least squares.
func FitLinear(features [][]float64, y []float64) (Linear, error) {
	w, err := LeastSquares(features, y)
	if err != nil {
		return Linear{}, err
	}
	return Linear{Weights: w}, nil
}
