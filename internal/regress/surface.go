package regress

import (
	"fmt"
	"sort"
)

// Surface models z = f(x, y) as a piecewise model over segments of x, with a
// polynomial in x and a linear term in y per segment:
//
//	z = a + b·x + c·x² + d·y        (within each x-segment)
//
// This is the functional form TAPAS uses for the per-server inlet model
// (Eq. 1): x is the outside temperature (piecewise, because cooling behaves
// differently below 15 °C, between 15–25 °C, and above), and y is the
// datacenter load fraction, whose effect is roughly linear (Fig. 5).
type Surface struct {
	Knots  []float64 // interior x boundaries, ascending
	Pieces []Linear  // len(Knots)+1 models over features [1, x, x², y]
}

// Eval evaluates the surface at (x, y).
func (s Surface) Eval(x, y float64) float64 {
	idx := sort.SearchFloat64s(s.Knots, x)
	return s.Pieces[idx].Eval([]float64{1, x, x * x, y})
}

// FitSurface fits the piecewise surface to samples (x[i], y[i]) → z[i].
// Segments lacking enough samples inherit the nearest fitted segment.
func FitSurface(x, y, z []float64, knots []float64) (Surface, error) {
	if len(x) != len(y) || len(x) != len(z) {
		return Surface{}, fmt.Errorf("regress: surface sample lengths differ: %d/%d/%d", len(x), len(y), len(z))
	}
	if !sort.Float64sAreSorted(knots) {
		return Surface{}, fmt.Errorf("regress: knots must be ascending")
	}
	nseg := len(knots) + 1
	segF := make([][][]float64, nseg)
	segZ := make([][]float64, nseg)
	for i, xi := range x {
		s := sort.SearchFloat64s(knots, xi)
		segF[s] = append(segF[s], []float64{1, xi, xi * xi, y[i]})
		segZ[s] = append(segZ[s], z[i])
	}
	pieces := make([]Linear, nseg)
	fitted := make([]bool, nseg)
	anyFit := false
	for s := 0; s < nseg; s++ {
		if len(segF[s]) >= 8 { // 4 params, demand 2× samples for stability
			m, err := FitLinear(segF[s], segZ[s])
			if err == nil {
				pieces[s], fitted[s] = m, true
				anyFit = true
			}
		}
	}
	if !anyFit {
		return Surface{}, ErrInsufficientData
	}
	for s := 1; s < nseg; s++ {
		if !fitted[s] && fitted[s-1] {
			pieces[s], fitted[s] = pieces[s-1], true
		}
	}
	for s := nseg - 2; s >= 0; s-- {
		if !fitted[s] && fitted[s+1] {
			pieces[s], fitted[s] = pieces[s+1], true
		}
	}
	return Surface{Knots: append([]float64(nil), knots...), Pieces: pieces}, nil
}
