package regress

import "math"

// MAE returns the mean absolute error between predictions and actuals.
// Returns NaN for empty or mismatched inputs.
func MAE(pred, actual []float64) float64 {
	if len(pred) == 0 || len(pred) != len(actual) {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred))
}

// RMSE returns the root-mean-square error between predictions and actuals.
func RMSE(pred, actual []float64) float64 {
	if len(pred) == 0 || len(pred) != len(actual) {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// R2 returns the coefficient of determination of predictions vs actuals.
func R2(pred, actual []float64) float64 {
	if len(pred) == 0 || len(pred) != len(actual) {
		return math.NaN()
	}
	mean := 0.0
	for _, a := range actual {
		mean += a
	}
	mean /= float64(len(actual))
	ssRes, ssTot := 0.0, 0.0
	for i := range actual {
		d := actual[i] - pred[i]
		ssRes += d * d
		t := actual[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. xs need not be sorted; a copy is
// sorted internally. Returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	return PercentileInPlace(sorted, p)
}

// PercentileInPlace is Percentile without the defensive copy: it sorts xs.
// For callers whose input is scratch anyway (power's template buckets) the
// copy per call is pure overhead.
func PercentileInPlace(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := xs
	sortFloat64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// sortFloat64s is a local insertion/heap hybrid-free shim around sort to
// avoid importing sort in every metrics caller.
func sortFloat64s(xs []float64) {
	// Simple quicksort with insertion for small slices; deterministic and
	// allocation-free.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			mid := lo + (hi-lo)/2
			// median-of-three pivot
			if xs[mid] < xs[lo] {
				xs[mid], xs[lo] = xs[lo], xs[mid]
			}
			if xs[hi] < xs[lo] {
				xs[hi], xs[lo] = xs[lo], xs[hi]
			}
			if xs[hi] < xs[mid] {
				xs[hi], xs[mid] = xs[mid], xs[hi]
			}
			pivot := xs[mid]
			i, j := lo, hi
			for i <= j {
				for xs[i] < pivot {
					i++
				}
				for xs[j] > pivot {
					j--
				}
				if i <= j {
					xs[i], xs[j] = xs[j], xs[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
		for i := lo + 1; i <= hi; i++ {
			for k := i; k > lo && xs[k] < xs[k-1]; k-- {
				xs[k], xs[k-1] = xs[k-1], xs[k]
			}
		}
	}
	if len(xs) > 1 {
		qs(0, len(xs)-1)
	}
}
