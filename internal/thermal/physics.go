// Package thermal implements both sides of the paper's cooling story:
//
//   - the ground-truth physics the simulator uses to produce sensor readings
//     (inlet temperature as a function of outside temperature, datacenter
//     load and spatial position; GPU/memory temperature as a function of
//     inlet and GPU power; fan airflow; heat recirculation on AHU overload),
//     and
//   - the learned models TAPAS profiles from those readings (per-server
//     piecewise surfaces for Eq. 1, per-GPU linear models for Eq. 2) with
//     the < 1 °C MAE the paper reports.
//
// Scheduling policies must only consume the learned models; the physics is
// reserved for the simulator.
package thermal

import (
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/units"
)

// Cooling constants mirrored from the paper's characterization (§2.1).
const (
	// InletFloorC is the minimum inlet temperature the cooling plant
	// maintains to avoid humidity-induced failures.
	InletFloorC = 18.0
	// coldKneeC / hotKneeC bound the linear regime of the cooling curve:
	// below 15 °C outside the inlet is held at the floor, above 25 °C the
	// chillers dampen the slope.
	coldKneeC = 15.0
	hotKneeC  = 25.0
	// linearSlope is the inlet °C gained per outside °C between the knees.
	linearSlope = 0.5
	// hotSlope is the damped slope above hotKneeC.
	hotSlope = 0.2
	// loadGainC is the inlet rise from zero to full datacenter load
	// (Fig. 5 shows ≈ 2 °C).
	loadGainC = 2.0
	// recircGainC converts fractional aisle airflow deficit into an inlet
	// penalty for every server in the aisle: hot exhaust returning to the
	// cold aisle heats it quickly.
	recircGainC = 30.0
	// airHeatWPerCFMK relates server power to the inlet→outlet temperature
	// rise: ΔT = P / (airHeatWPerCFMK · CFM). Derived from air density and
	// specific heat at sea level.
	airHeatWPerCFMK = 0.569
)

// CoolingCurve returns the aisle-ambient inlet temperature for a given
// outside temperature and datacenter load fraction, before per-server
// spatial offsets. This is the ground truth behind Figs. 2, 3 and 5.
func CoolingCurve(outsideC, dcLoadFrac float64) float64 {
	var base float64
	switch {
	case outsideC < coldKneeC:
		base = InletFloorC
	case outsideC < hotKneeC:
		base = InletFloorC + linearSlope*(outsideC-coldKneeC)
	default:
		base = InletFloorC + linearSlope*(hotKneeC-coldKneeC) + hotSlope*(outsideC-hotKneeC)
	}
	return base + loadGainC*units.Clamp01(dcLoadFrac)
}

// InletTemp returns the ground-truth inlet temperature of a server given the
// outside temperature, datacenter load fraction and any recirculation
// penalty currently affecting its aisle.
func InletTemp(s *layout.Server, outsideC, dcLoadFrac, recircC float64) float64 {
	return CoolingCurve(outsideC, dcLoadFrac) + s.InletOffsetC + recircC
}

// GPUTemp returns the ground-truth steady-state temperature of GPU g on
// server s at a given inlet temperature and GPU power fraction (power/TDP).
// Matches Eq. 2: linear in both inputs with per-GPU heterogeneity.
func GPUTemp(s *layout.Server, g int, inletC, powerFrac float64) float64 {
	return inletC + s.GPUTempBiasC[g] + s.GPUTempGainC[g]*units.Clamp01(powerFrac)
}

// MemTemp returns the HBM temperature for a GPU running at gpuTempC with a
// given memory intensity in [0,1]. Decode phases with small batches fetch
// from memory constantly and push HBM above the GPU die (Fig. 15b); bulk
// compute keeps it a few degrees cooler (Fig. 9).
func MemTemp(gpuTempC, memIntensity float64) float64 {
	return gpuTempC - 3 + 8*units.Clamp01(memIntensity)
}

// MaxPowerFrac returns the highest GPU power fraction server s GPU g can run
// without its ground-truth temperature exceeding limitC at the given inlet.
// Result is clamped to [0, 1]. Used by the simulator to apply hardware
// thermal throttling.
func MaxPowerFrac(s *layout.Server, g int, inletC, limitC float64) float64 {
	gain := s.GPUTempGainC[g]
	if gain <= 0 {
		return 1
	}
	return units.Clamp01((limitC - inletC - s.GPUTempBiasC[g]) / gain)
}

// Airflow returns the fan airflow of a server at the given load fraction.
// The paper measures a linear relationship matching manufacturer specs.
func Airflow(spec *layout.GPUSpec, loadFrac float64) float64 {
	return units.Lerp(spec.AirflowIdleCFM, spec.AirflowMaxCFM, units.Clamp01(loadFrac))
}

// FanFrac returns the fan speed fraction (PWM) for a load fraction; airflow
// is proportional to fan speed in the modulated range.
func FanFrac(loadFrac float64) float64 {
	return 0.3 + 0.7*units.Clamp01(loadFrac)
}

// RecirculationPenalty converts an aisle's airflow demand and provisioned
// supply into an inlet temperature penalty. Zero while supply covers demand;
// grows linearly with the fractional deficit once AHUs are out-drawn (§2.1:
// insufficient AHU airflow leads to heat recirculation raising the
// temperature of all servers in the two rows).
func RecirculationPenalty(demandCFM, provCFM float64) float64 {
	if provCFM <= 0 || demandCFM <= provCFM {
		return 0
	}
	return recircGainC * (demandCFM - provCFM) / provCFM
}

// OutletTemp returns the server exhaust temperature given its inlet, total
// power draw, and airflow.
func OutletTemp(inletC, powerW, airflowCFM float64) float64 {
	if airflowCFM <= 0 {
		return inletC
	}
	return inletC + powerW/(airHeatWPerCFMK*airflowCFM)
}
