package thermal

import (
	"fmt"

	"github.com/tapas-sim/tapas/internal/regress"
)

// DefaultKnots are the outside-temperature segment boundaries used when
// fitting inlet models; they bracket the cooling plant's two behavioural
// knees.
var DefaultKnots = []float64{15, 25}

// InletModel is the learned per-server inlet-temperature model (Eq. 1):
// T_inlet,s = f_s(T_outside, Load_DC).
type InletModel struct {
	PerServer []regress.Surface
}

// Predict estimates the inlet temperature of a server.
func (m *InletModel) Predict(serverID int, outsideC, dcLoadFrac float64) float64 {
	return m.PerServer[serverID].Eval(outsideC, dcLoadFrac)
}

// InletSample is one 10-minute sensor aggregate used to fit inlet models.
type InletSample struct {
	OutsideC   float64
	DCLoadFrac float64
	// InletC holds the observed inlet temperature per server.
	InletC []float64
}

// FitInletModel fits a piecewise-polynomial surface per server from sensor
// history, the regression family the paper selects for its < 1 °C MAE and
// sane extrapolation.
func FitInletModel(samples []InletSample, nServers int) (*InletModel, error) {
	if len(samples) == 0 {
		return nil, regress.ErrInsufficientData
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		if len(s.InletC) != nServers {
			return nil, fmt.Errorf("thermal: sample %d has %d servers, want %d", i, len(s.InletC), nServers)
		}
		xs[i] = s.OutsideC
		ys[i] = s.DCLoadFrac
	}
	m := &InletModel{PerServer: make([]regress.Surface, nServers)}
	zs := make([]float64, len(samples))
	for sv := 0; sv < nServers; sv++ {
		for i, s := range samples {
			zs[i] = s.InletC[sv]
		}
		surf, err := regress.FitSurface(xs, ys, zs, DefaultKnots)
		if err != nil {
			return nil, fmt.Errorf("thermal: fitting inlet model for server %d: %w", sv, err)
		}
		m.PerServer[sv] = surf
	}
	return m, nil
}

// GPUTempModel is the learned per-GPU temperature model (Eq. 2):
// T_GPU,s,g = f_s,g(T_inlet,s, Load_GPU,g). Linear in both inputs.
type GPUTempModel struct {
	// PerGPU[serverID][gpu] over features [1, inletC, powerFrac].
	PerGPU [][]regress.Linear
}

// Predict estimates the temperature of one GPU.
func (m *GPUTempModel) Predict(serverID, gpu int, inletC, powerFrac float64) float64 {
	return m.PerGPU[serverID][gpu].Eval([]float64{1, inletC, powerFrac})
}

// HeadroomPowerFrac inverts the learned model: the highest power fraction
// the GPU can run while staying at or below limitC for the given inlet.
// This is what the Instance Configurator and router use to compute thermal
// headroom. Clamped to [0, 1].
func (m *GPUTempModel) HeadroomPowerFrac(serverID, gpu int, inletC, limitC float64) float64 {
	w := m.PerGPU[serverID][gpu].Weights
	// temp = w0 + w1·inlet + w2·powerFrac  ⇒  powerFrac = (limit−w0−w1·inlet)/w2
	if w[2] <= 0 {
		return 1
	}
	v := (limitC - w[0] - w[1]*inletC) / w[2]
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// GPUSample is one observation of a single GPU used to fit Eq. 2.
type GPUSample struct {
	Server    int
	GPU       int
	InletC    float64
	PowerFrac float64
	TempC     float64
}

// FitGPUTempModel fits a linear model per (server, GPU) pair.
func FitGPUTempModel(samples []GPUSample, nServers, gpusPerServer int) (*GPUTempModel, error) {
	feats := make([][][]float64, nServers*gpusPerServer)
	targets := make([][]float64, nServers*gpusPerServer)
	for _, s := range samples {
		if s.Server < 0 || s.Server >= nServers || s.GPU < 0 || s.GPU >= gpusPerServer {
			return nil, fmt.Errorf("thermal: GPU sample out of range: server %d gpu %d", s.Server, s.GPU)
		}
		idx := s.Server*gpusPerServer + s.GPU
		feats[idx] = append(feats[idx], []float64{1, s.InletC, s.PowerFrac})
		targets[idx] = append(targets[idx], s.TempC)
	}
	m := &GPUTempModel{PerGPU: make([][]regress.Linear, nServers)}
	for sv := 0; sv < nServers; sv++ {
		m.PerGPU[sv] = make([]regress.Linear, gpusPerServer)
		for g := 0; g < gpusPerServer; g++ {
			idx := sv*gpusPerServer + g
			if len(feats[idx]) < 6 {
				return nil, fmt.Errorf("thermal: only %d samples for server %d gpu %d: %w",
					len(feats[idx]), sv, g, regress.ErrInsufficientData)
			}
			lin, err := regress.FitLinear(feats[idx], targets[idx])
			if err != nil {
				return nil, fmt.Errorf("thermal: fitting gpu temp model server %d gpu %d: %w", sv, g, err)
			}
			m.PerGPU[sv][g] = lin
		}
	}
	return m, nil
}

// AirflowModel is the learned linear airflow function f_air(Load) shared by
// all servers of a given hardware generation ("All servers follow a similar
// linear function", §2.1).
type AirflowModel struct {
	IdleCFM float64
	MaxCFM  float64
}

// Predict returns the estimated airflow at a load fraction.
func (m AirflowModel) Predict(loadFrac float64) float64 {
	if loadFrac < 0 {
		loadFrac = 0
	}
	if loadFrac > 1 {
		loadFrac = 1
	}
	return m.IdleCFM + (m.MaxCFM-m.IdleCFM)*loadFrac
}

// FitAirflowModel fits the linear airflow curve from (load, airflow)
// measurements taken at idle, full load, and a few intermediate settings.
func FitAirflowModel(loads, airflows []float64) (AirflowModel, error) {
	p, err := regress.FitPoly(loads, airflows, 1)
	if err != nil {
		return AirflowModel{}, fmt.Errorf("thermal: fitting airflow model: %w", err)
	}
	return AirflowModel{IdleCFM: p.Eval(0), MaxCFM: p.Eval(1)}, nil
}
