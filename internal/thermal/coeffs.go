package thermal

import (
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/units"
)

// Coeffs holds the ground-truth thermal response of a fleet flattened into
// contiguous per-(server,GPU) coefficient tables. The simulator's tick kernel
// evaluates GPUTemp/MaxPowerFrac for every GPU of every server on every tick;
// with the coefficients laid out flat (stride GPUsPerServer) those become
// multiply-adds over sequential memory instead of pointer chases through
// *layout.Server. Compile once per datacenter; the tables are immutable and
// safe to share across concurrent runs.
//
// The arithmetic matches GPUTemp and MaxPowerFrac operation for operation, so
// results are bit-identical to evaluating the physics through the layout.
type Coeffs struct {
	GPUsPerServer int
	// BiasC and GainC are indexed server*GPUsPerServer + gpu.
	BiasC []float64 // idle temperature offset above inlet per GPU
	GainC []float64 // temperature rise above inlet at TDP per GPU
	// InletOffsetC is the spatial inlet offset per server.
	InletOffsetC []float64
}

// CompileCoeffs flattens the per-server heterogeneity of a generated
// datacenter into coefficient tables.
func CompileCoeffs(servers []*layout.Server, gpusPerServer int) *Coeffs {
	c := &Coeffs{
		GPUsPerServer: gpusPerServer,
		BiasC:         make([]float64, len(servers)*gpusPerServer),
		GainC:         make([]float64, len(servers)*gpusPerServer),
		InletOffsetC:  make([]float64, len(servers)),
	}
	for i, s := range servers {
		c.InletOffsetC[i] = s.InletOffsetC
		copy(c.BiasC[i*gpusPerServer:], s.GPUTempBiasC)
		copy(c.GainC[i*gpusPerServer:], s.GPUTempGainC)
	}
	return c
}

// GPUTemp mirrors the package-level GPUTemp for the flat index
// server*GPUsPerServer + gpu.
func (c *Coeffs) GPUTemp(idx int, inletC, powerFrac float64) float64 {
	return inletC + c.BiasC[idx] + c.GainC[idx]*units.Clamp01(powerFrac)
}

// MaxPowerFrac mirrors the package-level MaxPowerFrac for the flat index.
func (c *Coeffs) MaxPowerFrac(idx int, inletC, limitC float64) float64 {
	gain := c.GainC[idx]
	if gain <= 0 {
		return 1
	}
	return units.Clamp01((limitC - inletC - c.BiasC[idx]) / gain)
}
