package thermal

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/regress"
)

// genInletSamples produces synthetic sensor history by running the physics
// over random operating conditions — the same pipeline the profiler uses.
func genInletSamples(dc *layout.Datacenter, n int, rng *rand.Rand) []InletSample {
	samples := make([]InletSample, n)
	for i := range samples {
		outside := rng.Float64()*38 - 2
		load := rng.Float64()
		inlets := make([]float64, len(dc.Servers))
		for j, s := range dc.Servers {
			inlets[j] = InletTemp(s, outside, load, 0) + rng.NormFloat64()*0.2
		}
		samples[i] = InletSample{OutsideC: outside, DCLoadFrac: load, InletC: inlets}
	}
	return samples
}

func TestFitInletModelMAEUnderOneDegree(t *testing.T) {
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	model, err := FitInletModel(genInletSamples(dc, 2000, rng), len(dc.Servers))
	if err != nil {
		t.Fatal(err)
	}
	// Held-out evaluation across all servers: the paper reports MAE < 1 °C
	// for the piecewise-polynomial family.
	var pred, actual []float64
	for i := 0; i < 500; i++ {
		outside := rng.Float64()*38 - 2
		load := rng.Float64()
		for j, s := range dc.Servers {
			pred = append(pred, model.Predict(j, outside, load))
			actual = append(actual, InletTemp(s, outside, load, 0))
		}
	}
	if mae := regress.MAE(pred, actual); mae > 1.0 {
		t.Errorf("inlet model MAE = %.3f °C, want < 1 (paper §5.1)", mae)
	}
}

func TestFitInletModelErrors(t *testing.T) {
	if _, err := FitInletModel(nil, 3); err == nil {
		t.Error("expected error for no samples")
	}
	bad := []InletSample{{OutsideC: 20, DCLoadFrac: 0.5, InletC: []float64{20}}}
	if _, err := FitInletModel(bad, 3); err == nil {
		t.Error("expected error for server-count mismatch")
	}
}

func TestFitGPUTempModelRecoversPhysics(t *testing.T) {
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	nSrv := 4 // model a subset to keep the test quick
	gpus := dc.Servers[0].GPU.GPUsPerServer
	var samples []GPUSample
	for i := 0; i < 400; i++ {
		inlet := 18 + rng.Float64()*10
		for sv := 0; sv < nSrv; sv++ {
			for g := 0; g < gpus; g++ {
				pf := rng.Float64()
				samples = append(samples, GPUSample{
					Server: sv, GPU: g, InletC: inlet, PowerFrac: pf,
					TempC: GPUTemp(dc.Servers[sv], g, inlet, pf) + rng.NormFloat64()*0.3,
				})
			}
		}
	}
	model, err := FitGPUTempModel(samples, nSrv, gpus)
	if err != nil {
		t.Fatal(err)
	}
	var pred, actual []float64
	for i := 0; i < 200; i++ {
		inlet := 18 + rng.Float64()*10
		pf := rng.Float64()
		sv := i % nSrv
		g := i % gpus
		pred = append(pred, model.Predict(sv, g, inlet, pf))
		actual = append(actual, GPUTemp(dc.Servers[sv], g, inlet, pf))
	}
	if mae := regress.MAE(pred, actual); mae > 1.0 {
		t.Errorf("GPU temp model MAE = %.3f °C, want < 1 (paper Fig. 7)", mae)
	}
}

func TestGPUTempModelHeadroom(t *testing.T) {
	dc, _ := layout.New(layout.SmallConfig())
	rng := rand.New(rand.NewPCG(3, 3))
	gpus := dc.Servers[0].GPU.GPUsPerServer
	var samples []GPUSample
	for i := 0; i < 300; i++ {
		inlet := 18 + rng.Float64()*12
		pf := rng.Float64()
		for g := 0; g < gpus; g++ {
			samples = append(samples, GPUSample{
				Server: 0, GPU: g, InletC: inlet, PowerFrac: pf,
				TempC: GPUTemp(dc.Servers[0], g, inlet, pf),
			})
		}
	}
	model, err := FitGPUTempModel(samples, 1, gpus)
	if err != nil {
		t.Fatal(err)
	}
	// The headroom inversion must agree with the physics inversion.
	for g := 0; g < gpus; g++ {
		learned := model.HeadroomPowerFrac(0, g, 25, 85)
		truth := MaxPowerFrac(dc.Servers[0], g, 25, 85)
		if math.Abs(learned-truth) > 0.05 {
			t.Errorf("gpu %d headroom learned %v vs truth %v", g, learned, truth)
		}
		// Predicted temp at the headroom fraction must not exceed the limit.
		if temp := model.Predict(0, g, 25, learned); temp > 85.01 {
			t.Errorf("gpu %d predicted %v °C at headroom, above limit", g, temp)
		}
	}
	// Headroom at a cold inlet should be full power.
	if got := model.HeadroomPowerFrac(0, 0, -30, 85); got != 1 {
		t.Errorf("cold-inlet headroom = %v, want 1", got)
	}
	// Headroom at an absurd inlet should be zero.
	if got := model.HeadroomPowerFrac(0, 0, 120, 85); got != 0 {
		t.Errorf("hot-inlet headroom = %v, want 0", got)
	}
}

func TestFitGPUTempModelErrors(t *testing.T) {
	if _, err := FitGPUTempModel([]GPUSample{{Server: 5, GPU: 0}}, 2, 8); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := FitGPUTempModel(nil, 1, 1); err == nil {
		t.Error("expected insufficient-data error")
	}
	few := []GPUSample{{Server: 0, GPU: 0, InletC: 20, PowerFrac: 0.5, TempC: 50}}
	if _, err := FitGPUTempModel(few, 1, 1); err == nil {
		t.Error("expected insufficient-data error for single sample")
	}
}

func TestFitAirflowModel(t *testing.T) {
	spec := layout.Spec(layout.A100)
	// Idle, full, and a few intermediate settings, as in the paper.
	loads := []float64{0, 0.25, 0.5, 0.75, 1}
	flows := make([]float64, len(loads))
	for i, l := range loads {
		flows[i] = Airflow(&spec, l)
	}
	m, err := FitAirflowModel(loads, flows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict(0)-spec.AirflowIdleCFM) > 1 {
		t.Errorf("idle airflow = %v, want %v", m.Predict(0), spec.AirflowIdleCFM)
	}
	if math.Abs(m.Predict(1)-spec.AirflowMaxCFM) > 1 {
		t.Errorf("max airflow = %v, want %v", m.Predict(1), spec.AirflowMaxCFM)
	}
	// Out-of-range load clamps.
	if m.Predict(2) != m.Predict(1) || m.Predict(-1) != m.Predict(0) {
		t.Error("airflow prediction must clamp load to [0,1]")
	}
}

func TestFitAirflowModelError(t *testing.T) {
	if _, err := FitAirflowModel([]float64{0}, []float64{100}); err == nil {
		t.Error("expected insufficient-data error")
	}
}
