package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tapas-sim/tapas/internal/layout"
)

func testServer(t *testing.T) *layout.Server {
	t.Helper()
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dc.Servers[0]
}

func TestCoolingCurveRegimes(t *testing.T) {
	// Cold: floor held at 18 °C regardless of how cold it gets outside.
	if got := CoolingCurve(-5, 0); got != InletFloorC {
		t.Errorf("cold regime inlet = %v, want %v", got, InletFloorC)
	}
	if got := CoolingCurve(10, 0); got != InletFloorC {
		t.Errorf("cold regime inlet = %v, want %v", got, InletFloorC)
	}
	// Linear regime: inlet rises with outside.
	mid1, mid2 := CoolingCurve(17, 0), CoolingCurve(23, 0)
	if mid2 <= mid1 {
		t.Errorf("linear regime not increasing: %v vs %v", mid1, mid2)
	}
	// Hot regime: slope dampens (cooling works harder).
	slopeLinear := CoolingCurve(24, 0) - CoolingCurve(23, 0)
	slopeHot := CoolingCurve(34, 0) - CoolingCurve(33, 0)
	if slopeHot >= slopeLinear {
		t.Errorf("hot slope %v should be below linear slope %v", slopeHot, slopeLinear)
	}
}

func TestCoolingCurveContinuity(t *testing.T) {
	// No jumps at the knees.
	for _, knee := range []float64{15, 25} {
		lo, hi := CoolingCurve(knee-1e-6, 0.5), CoolingCurve(knee+1e-6, 0.5)
		if math.Abs(hi-lo) > 1e-3 {
			t.Errorf("discontinuity at %v °C: %v vs %v", knee, lo, hi)
		}
	}
}

func TestCoolingCurveLoadEffect(t *testing.T) {
	// Fig. 5: ≈ 2 °C between idle and fully loaded datacenter.
	d := CoolingCurve(35, 1) - CoolingCurve(35, 0)
	if math.Abs(d-loadGainC) > 1e-9 {
		t.Errorf("load effect = %v, want %v", d, loadGainC)
	}
}

func TestCoolingCurveMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		o1 := math.Mod(math.Abs(a), 45)
		o2 := math.Mod(math.Abs(b), 45)
		if o1 > o2 {
			o1, o2 = o2, o1
		}
		return CoolingCurve(o2, 0.5) >= CoolingCurve(o1, 0.5)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInletTempIncludesOffsets(t *testing.T) {
	s := testServer(t)
	base := CoolingCurve(20, 0.5)
	got := InletTemp(s, 20, 0.5, 0)
	if math.Abs(got-(base+s.InletOffsetC)) > 1e-9 {
		t.Errorf("inlet = %v, want base %v + offset %v", got, base, s.InletOffsetC)
	}
	withRecirc := InletTemp(s, 20, 0.5, 3)
	if math.Abs(withRecirc-got-3) > 1e-9 {
		t.Error("recirculation penalty not added")
	}
}

func TestGPUTempLinearInPower(t *testing.T) {
	s := testServer(t)
	idle := GPUTemp(s, 0, 22, 0)
	full := GPUTemp(s, 0, 22, 1)
	if full <= idle {
		t.Error("GPU temp must rise with power")
	}
	rise := full - idle
	if rise < 30 || rise > 50 {
		t.Errorf("full-load rise = %v °C, want ≈ 35–45 (Fig. 7 shape)", rise)
	}
	mid := GPUTemp(s, 0, 22, 0.5)
	if math.Abs(mid-(idle+rise/2)) > 1e-9 {
		t.Error("GPU temp not linear in power fraction")
	}
}

func TestGPUTempClampsPowerFrac(t *testing.T) {
	s := testServer(t)
	if GPUTemp(s, 0, 22, 1.5) != GPUTemp(s, 0, 22, 1) {
		t.Error("power fraction above 1 must clamp")
	}
	if GPUTemp(s, 0, 22, -0.5) != GPUTemp(s, 0, 22, 0) {
		t.Error("negative power fraction must clamp")
	}
}

func TestMaxPowerFracInvertsGPUTemp(t *testing.T) {
	s := testServer(t)
	inlet := 24.0
	limit := s.GPU.ThrottleTempC
	frac := MaxPowerFrac(s, 3, inlet, limit)
	if frac <= 0 || frac > 1 {
		t.Fatalf("frac = %v, want in (0,1]", frac)
	}
	if frac < 1 {
		temp := GPUTemp(s, 3, inlet, frac)
		if math.Abs(temp-limit) > 1e-6 {
			t.Errorf("temp at max frac = %v, want %v", temp, limit)
		}
	}
	// Impossibly hot inlet: no power allowed.
	if got := MaxPowerFrac(s, 3, 90, limit); got != 0 {
		t.Errorf("frac at 90 °C inlet = %v, want 0", got)
	}
	// Freezing inlet: full power fine.
	if got := MaxPowerFrac(s, 3, -20, limit); got != 1 {
		t.Errorf("frac at -20 °C inlet = %v, want 1", got)
	}
}

func TestMemTempPhases(t *testing.T) {
	// Compute-heavy (low memory intensity): HBM below die.
	if MemTemp(70, 0.1) >= 70 {
		t.Error("low-intensity HBM should sit below die temperature")
	}
	// Decode with tiny batches: HBM above die (Fig. 15b).
	if MemTemp(70, 0.9) <= 70 {
		t.Error("high-intensity HBM should exceed die temperature")
	}
}

func TestAirflowLinearAndSpec(t *testing.T) {
	spec := layout.Spec(layout.A100)
	idle := Airflow(&spec, 0)
	full := Airflow(&spec, 1)
	if idle != spec.AirflowIdleCFM || full != spec.AirflowMaxCFM {
		t.Errorf("airflow endpoints = %v/%v, want %v/%v", idle, full, spec.AirflowIdleCFM, spec.AirflowMaxCFM)
	}
	mid := Airflow(&spec, 0.5)
	if math.Abs(mid-(idle+full)/2) > 1e-9 {
		t.Error("airflow not linear")
	}
	// Paper cross-check: 840 CFM at 80% PWM for A100. Our linear function
	// in load ⇒ at the load giving 80% PWM, airflow ≈ 840.
	loadFor80PWM := (0.8 - 0.3) / 0.7
	if a := Airflow(&spec, loadFor80PWM); math.Abs(a-840) > 25 {
		t.Errorf("airflow at 80%% PWM load = %v, want ≈ 840", a)
	}
}

func TestRecirculationPenalty(t *testing.T) {
	if RecirculationPenalty(900, 1000) != 0 {
		t.Error("no penalty while under provisioned airflow")
	}
	if RecirculationPenalty(1000, 1000) != 0 {
		t.Error("no penalty at exactly provisioned airflow")
	}
	p := RecirculationPenalty(1100, 1000)
	if math.Abs(p-recircGainC*0.1) > 1e-9 {
		t.Errorf("10%% deficit penalty = %v, want %v", p, recircGainC*0.1)
	}
	if RecirculationPenalty(100, 0) != 0 {
		t.Error("zero provisioned airflow must not divide by zero")
	}
}

func TestRecirculationMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		d1 := math.Mod(math.Abs(a), 2000)
		d2 := math.Mod(math.Abs(b), 2000)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return RecirculationPenalty(d2, 1000) >= RecirculationPenalty(d1, 1000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutletTemp(t *testing.T) {
	// 6.5 kW through ~1050 CFM ⇒ ≈ 10–12 °C rise.
	rise := OutletTemp(25, 6500, 1050) - 25
	if rise < 8 || rise > 14 {
		t.Errorf("outlet rise = %v °C, want ≈ 11", rise)
	}
	if OutletTemp(25, 6500, 0) != 25 {
		t.Error("zero airflow must return inlet unchanged")
	}
}

func TestFanFracRange(t *testing.T) {
	if FanFrac(0) != 0.3 {
		t.Errorf("idle fan frac = %v, want 0.3", FanFrac(0))
	}
	if FanFrac(1) != 1.0 {
		t.Errorf("full fan frac = %v, want 1.0", FanFrac(1))
	}
}
