// Package serve turns the campaign library into a long-running service: a
// Scheduler that admits declarative scenario specs onto the existing
// parallel run pool with bounded queueing, streams per-campaign progress as
// an ordered event log, and serves every compilation through a shared
// content-addressed sim.CompileCache — so repeated what-ifs from many users
// skip sim.Compile entirely. The HTTP layer (Server) exposes the scheduler
// as a JSON API; cmd/tapas-campaign drives the same scheduler directly, so
// the CLI and the daemon cannot diverge.
package serve
