package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/tapas-sim/tapas/internal/scenario"
	"github.com/tapas-sim/tapas/internal/sim"
)

// Errors Submit returns; the HTTP layer maps them to status codes.
var (
	// ErrQueueFull is returned when admission control rejects a campaign
	// because the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: campaign queue full")
	// ErrShuttingDown is returned once Shutdown has begun (HTTP 503).
	ErrShuttingDown = errors.New("serve: scheduler shutting down")
)

// SchedulerConfig bounds a scheduler. Zero values select the defaults.
type SchedulerConfig struct {
	// QueueDepth bounds the number of campaigns waiting to run; Submit
	// fails with ErrQueueFull beyond it. Default 16.
	QueueDepth int
	// Concurrency is the number of campaigns executing at once (each one
	// internally parallel across Parallel workers). Default 1: campaigns
	// queue behind each other and the worker pool stays fully owned by the
	// running campaign.
	Concurrency int
	// Parallel is each campaign's worker-pool bound (≤ 0 = GOMAXPROCS).
	Parallel int
	// Shards overrides every run's tick-kernel shard count when non-zero.
	Shards int
	// CacheSize bounds the shared compile cache (entries per level;
	// ≤ 0 = sim.DefaultCacheEntries).
	CacheSize int
}

// Scheduler owns a bounded campaign queue, a shared compile cache, and the
// dispatcher goroutines that execute campaigns. Safe for concurrent use.
type Scheduler struct {
	cfg    SchedulerConfig
	cache  *sim.CompileCache
	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
}

// NewScheduler starts a scheduler with Concurrency dispatcher goroutines.
// Call Shutdown to stop it.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:    cfg,
		cache:  sim.NewCompileCache(cfg.CacheSize),
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *Job, cfg.QueueDepth),
		jobs:   make(map[string]*Job),
	}
	s.wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go s.dispatch()
	}
	return s
}

func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			j.run(s.ctx, scenario.RunOptions{
				Parallel: s.cfg.Parallel,
				Shards:   s.cfg.Shards,
				Cache:    s.cache,
			})
		}
	}
}

// Submit expands and validates a spec (scale overrides the spec's when
// positive) and enqueues the campaign. It returns immediately: the Job
// exposes the event log, Wait, and the final report. Admission control is a
// bounded queue — ErrQueueFull when it is at capacity.
func (s *Scheduler) Submit(spec *scenario.Spec, scale float64) (*Job, error) {
	camp, err := spec.Campaign(scale)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.seq++
	j := newJob(fmt.Sprintf("c%d", s.seq), spec, camp)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	j.emit(Event{Type: "queued", ID: j.ID, Name: spec.Name, Runs: camp.Runs()})
	select {
	case s.queue <- j:
		return j, nil
	default:
		j.finish(StatusFailed, ErrQueueFull)
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Job returns a submitted campaign by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// CacheStats snapshots the shared compile cache's counters.
func (s *Scheduler) CacheStats() sim.CacheStats { return s.cache.Stats() }

// Cache exposes the shared compile cache (tests and embedding callers).
func (s *Scheduler) Cache() *sim.CompileCache { return s.cache }

// Shutdown stops admission, cancels the running campaigns cooperatively (at
// run granularity), marks still-queued campaigns canceled, and waits for the
// dispatchers — or for ctx, whichever ends first.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	// Dispatchers exit on the canceled context; whatever is still in the
	// queue will never run.
	for {
		select {
		case j := <-s.queue:
			j.finish(StatusCanceled, context.Canceled)
			continue
		default:
		}
		break
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Event is one JSON-lines record of a campaign's event stream. Fields are
// populated per type: queued/start carry the campaign shape, progress the
// run counters, result the compile count and the rendered report, done the
// terminal status (and error, if any).
type Event struct {
	Type     string `json:"type"`
	ID       string `json:"id,omitempty"`
	Name     string `json:"name,omitempty"`
	Points   int    `json:"points,omitempty"`
	Policies int    `json:"policies,omitempty"`
	Runs     int    `json:"runs,omitempty"`
	Done     int    `json:"done,omitempty"`
	Total    int    `json:"total,omitempty"`
	Compiles int    `json:"compiles,omitempty"`
	Status   Status `json:"status,omitempty"`
	Error    string `json:"error,omitempty"`
	Report   string `json:"report,omitempty"`
}

// Job is one submitted campaign: an append-only event log plus the final
// report. All methods are safe for concurrent use.
type Job struct {
	ID       string
	Spec     *scenario.Spec
	Campaign *scenario.Campaign

	mu       sync.Mutex
	status   Status
	events   []Event
	changed  chan struct{}
	terminal bool
	err      error
	report   []byte
	compiles int
	progress int

	done chan struct{}
}

func newJob(id string, spec *scenario.Spec, camp *scenario.Campaign) *Job {
	return &Job{
		ID:       id,
		Spec:     spec,
		Campaign: camp,
		status:   StatusQueued,
		changed:  make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run executes the campaign and drives the event log to a terminal state.
func (j *Job) run(ctx context.Context, opt scenario.RunOptions) {
	if ctx.Err() != nil {
		j.finish(StatusCanceled, ctx.Err())
		return
	}
	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()
	total := j.Campaign.Runs()
	j.emit(Event{Type: "start", ID: j.ID, Name: j.Spec.Name,
		Points: len(j.Campaign.Points), Policies: len(j.Campaign.Policies), Runs: total})
	opt.Context = ctx
	opt.OnProgress = func(done, total int) {
		j.mu.Lock()
		if done > j.progress {
			j.progress = done
		}
		j.mu.Unlock()
		j.emit(Event{Type: "progress", ID: j.ID, Done: done, Total: total})
	}
	res, err := j.Campaign.Run(opt)
	if err != nil {
		if ctx.Err() != nil {
			j.finish(StatusCanceled, err)
		} else {
			j.finish(StatusFailed, err)
		}
		return
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		j.finish(StatusFailed, err)
		return
	}
	j.mu.Lock()
	j.report = buf.Bytes()
	j.compiles = res.Compiles
	j.mu.Unlock()
	j.emit(Event{Type: "result", ID: j.ID, Compiles: res.Compiles, Runs: total, Report: buf.String()})
	j.finish(StatusDone, nil)
}

// emit appends an event and wakes every stream.
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

// finish records the terminal state, emits the done event, and releases
// waiters. Idempotent: only the first terminal state sticks.
func (j *Job) finish(st Status, err error) {
	j.mu.Lock()
	if j.terminal {
		j.mu.Unlock()
		return
	}
	j.status = st
	j.err = err
	ev := Event{Type: "done", ID: j.ID, Status: st}
	if err != nil {
		ev.Error = err.Error()
	}
	j.events = append(j.events, ev)
	j.terminal = true
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
	close(j.done)
}

// EventsSince returns the events from index i on, a channel closed on the
// next append, and whether the log is terminal. Streaming loop: emit the
// slice, advance i, return when terminal, otherwise wait on the channel.
func (j *Job) EventsSince(i int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i > len(j.events) {
		i = len(j.events)
	}
	evs := make([]Event, len(j.events)-i)
	copy(evs, j.events[i:])
	return evs, j.changed, j.terminal
}

// Wait blocks until the job reaches a terminal state (returning its error,
// nil for success) or ctx ends.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status returns the current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the terminal error (nil while running or when done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Report returns the rendered campaign report (nil until done). The bytes
// are identical to Result.WriteTo on a direct run — cache hits included.
func (j *Job) Report() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Progress returns completed runs, total runs, and the compile count (the
// latter 0 until the result event).
func (j *Job) Progress() (done, total, compiles int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress, j.Campaign.Runs(), j.compiles
}
