package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/tapas-sim/tapas/internal/scenario"
)

// maxSpecBytes bounds a POSTed scenario spec; real specs are a few KB, so
// this only guards the daemon against accidental (or hostile) huge bodies.
const maxSpecBytes = 1 << 20

// Server is the HTTP face of a Scheduler: a JSON API for submitting
// campaigns, streaming their event logs as JSON lines, and inspecting the
// shared compile cache. Construct with NewServer and mount via Handler.
type Server struct {
	sched *Scheduler
	// BaseDir anchors relative workload.trace (and splice) paths in POSTed
	// specs; empty resolves against the daemon's working directory.
	BaseDir string
	mux     *http.ServeMux
}

// NewServer wraps a scheduler. baseDir anchors relative trace paths in
// POSTed specs ("" = the daemon's working directory).
func NewServer(sched *Scheduler, baseDir string) *Server {
	s := &Server{sched: sched, BaseDir: baseDir, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /campaigns", s.handleList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleJob)
	s.mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /campaigns/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /cachez", s.handleCachez)
	return s
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler { return s.mux }

// jobJSON is the API view of a Job.
type jobJSON struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Status   Status `json:"status"`
	Runs     int    `json:"runs"`
	Done     int    `json:"done"`
	Compiles int    `json:"compiles,omitempty"`
	Error    string `json:"error,omitempty"`
}

func jobView(j *Job) jobJSON {
	done, total, compiles := j.Progress()
	v := jobJSON{
		ID:       j.ID,
		Name:     j.Spec.Name,
		Status:   j.Status(),
		Runs:     total,
		Done:     done,
		Compiles: compiles,
	}
	if err := j.Err(); err != nil {
		v.Error = err.Error()
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleSubmit admits a scenario spec: the body is the same JSON a committed
// spec file holds (plus an optional "scale" query parameter overriding the
// spec's). 201 with the job on success, 400 on an invalid spec, 429 when the
// queue is full, 503 while shutting down.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("spec larger than %d bytes", maxSpecBytes))
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.BaseDir != "" {
		spec.SetBaseDir(s.BaseDir)
	}
	scale := 0.0
	if q := r.URL.Query().Get("scale"); q != "" {
		if _, err := fmt.Sscanf(q, "%g", &scale); err != nil || scale < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid scale %q", q))
			return
		}
	}
	job, err := s.sched.Submit(spec, scale)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, jobView(job))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = jobView(j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobView(j))
}

// handleEvents streams the job's event log as JSON lines: everything logged
// so far immediately, then live appends until the job reaches a terminal
// state (the "done" event is always the last line) or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	i := 0
	for {
		evs, changed, terminal := j.EventsSince(i)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		i += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleReport returns the finished campaign's rendered report verbatim —
// byte-identical to tapas-campaign's stdout for the same spec. 409 until the
// job is done.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if j.Status() != StatusDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("campaign %s is %s; the report exists once it is done", j.ID, j.Status()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(j.Report())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleCachez snapshots the shared compile cache: per-level hit/miss/
// eviction counters plus the number of cold compilations performed.
func (s *Server) handleCachez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.CacheStats())
}
