package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/scenario"
	"github.com/tapas-sim/tapas/internal/sim"
)

// smokeSpec is a fast single-run campaign used across the serve tests.
const smokeSpec = `{
  "name": "smoke",
  "layout": {"preset": "small"},
  "duration": "10m",
  "policies": ["baseline"],
  "report": {"format": "csv"}
}`

func parseSpec(t *testing.T, body string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func newTestScheduler(t *testing.T, cfg SchedulerConfig) *Scheduler {
	t.Helper()
	s := NewScheduler(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("scheduler shutdown: %v", err)
		}
	})
	return s
}

// TestSchedulerRunsCampaign submits one campaign and checks the full event
// sequence, the progress counters, and that the report is byte-identical to
// a direct Campaign.Run of the same spec.
func TestSchedulerRunsCampaign(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{})
	job, err := s.Submit(parseSpec(t, smokeSpec), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if job.Status() != StatusDone {
		t.Fatalf("status = %s, want done", job.Status())
	}

	evs, _, terminal := job.EventsSince(0)
	if !terminal {
		t.Fatal("event log not terminal after Wait")
	}
	var types []string
	for _, ev := range evs {
		types = append(types, ev.Type)
	}
	want := []string{"queued", "start", "progress", "result", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("event sequence %v, want %v", types, want)
	}
	done, total, compiles := job.Progress()
	if done != 1 || total != 1 || compiles != 1 {
		t.Errorf("progress done=%d total=%d compiles=%d, want 1/1/1", done, total, compiles)
	}

	c, err := parseSpec(t, smokeSpec).Campaign(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := res.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if got := string(job.Report()); got != sb.String() {
		t.Errorf("scheduler report differs from direct run:\n--- sched ---\n%s--- direct ---\n%s", got, sb.String())
	}
}

// TestSchedulerSharesCacheAcrossJobs proves two submissions of the same spec
// compile once: the daemon's whole point.
func TestSchedulerSharesCacheAcrossJobs(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{})
	for i := 0; i < 2; i++ {
		job, err := s.Submit(parseSpec(t, smokeSpec), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	if st.Compiles != 1 {
		t.Errorf("two identical campaigns performed %d compiles, want 1", st.Compiles)
	}
	if st.Scenarios.Hits == 0 {
		t.Error("second campaign recorded no scenario cache hits")
	}
}

// TestSchedulerQueueFull pins admission control deterministically: with the
// dispatchers stopped (white-box cancel) nothing drains the queue, so
// submissions beyond QueueDepth fail with ErrQueueFull and are not retained.
func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(SchedulerConfig{QueueDepth: 2})
	s.cancel()
	s.wg.Wait() // dispatchers gone; the queue can only fill
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(parseSpec(t, smokeSpec), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(parseSpec(t, smokeSpec), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: err = %v, want ErrQueueFull", err)
	}
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("%d jobs retained, want 2 (the rejected one is dropped)", got)
	}
	// Shutdown drains the still-queued jobs as canceled.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		if j.Status() != StatusCanceled {
			t.Errorf("job %s status = %s, want canceled", j.ID, j.Status())
		}
	}
	if _, err := s.Submit(parseSpec(t, smokeSpec), 0); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown submission: err = %v, want ErrShuttingDown", err)
	}
}

// TestSchedulerRejectsInvalidSpec proves validation happens at admission.
func TestSchedulerRejectsInvalidSpec(t *testing.T) {
	s := newTestScheduler(t, SchedulerConfig{})
	spec := parseSpec(t, smokeSpec)
	spec.Policies = []string{"bogus"}
	if _, err := s.Submit(spec, 0); err == nil {
		t.Fatal("invalid spec admitted")
	}
}

func newTestServer(t *testing.T) (*Scheduler, *httptest.Server) {
	t.Helper()
	sched := newTestScheduler(t, SchedulerConfig{})
	ts := httptest.NewServer(NewServer(sched, "").Handler())
	t.Cleanup(ts.Close)
	return sched, ts
}

// TestHTTPSubmitStreamReport drives the full HTTP API: POST a spec, stream
// its JSON-lines events to completion, fetch the report, and check the
// listing and cache endpoints.
func TestHTTPSubmitStreamReport(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /campaigns = %d, want 201", resp.StatusCode)
	}
	var created struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.ID == "" || created.Name != "smoke" {
		t.Fatalf("created = %+v", created)
	}

	// Stream events until the terminal line; the stream must end on its own.
	resp, err = http.Get(ts.URL + "/campaigns/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[len(types)-1] != "done" {
		t.Fatalf("event stream %v does not end with done", types)
	}

	resp, err = http.Get(ts.URL + "/campaigns/" + created.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(report), "spec,policy,") {
		t.Errorf("report status=%d body=%q", resp.StatusCode, report)
	}

	resp, err = http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []struct {
		ID     string `json:"id"`
		Status Status `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 1 || jobs[0].Status != StatusDone {
		t.Errorf("GET /campaigns = %+v", jobs)
	}

	resp, err = http.Get(ts.URL + "/cachez")
	if err != nil {
		t.Fatal(err)
	}
	var stats sim.CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Compiles != 1 || stats.Scenarios.Entries != 1 {
		t.Errorf("/cachez = %+v, want 1 compile / 1 entry", stats)
	}
}

// TestHTTPErrors covers the API's failure statuses: bad spec 400, unknown
// campaign 404, report before completion 409, healthz 200.
func TestHTTPErrors(t *testing.T) {
	sched, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(`{"name":"x","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/campaigns?scale=-1", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative scale = %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/campaigns/nope", "/campaigns/nope/events", "/campaigns/nope/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}

	// A queued-but-never-run job has no report: 409. Build it on a drained
	// scheduler so it deterministically never starts.
	stuck := NewScheduler(SchedulerConfig{QueueDepth: 1})
	stuck.cancel()
	stuck.wg.Wait()
	tsStuck := httptest.NewServer(NewServer(stuck, "").Handler())
	defer tsStuck.Close()
	resp, err = http.Post(tsStuck.URL+"/campaigns", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(tsStuck.URL + "/campaigns/" + created.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report before completion = %d, want 409", resp.StatusCode)
	}
	if err := stuck.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_ = sched
}

// TestHTTPQueueFull429 maps ErrQueueFull to HTTP 429 against a scheduler
// whose dispatchers are stopped, so the outcome is deterministic.
func TestHTTPQueueFull429(t *testing.T) {
	s := NewScheduler(SchedulerConfig{QueueDepth: 1})
	s.cancel()
	s.wg.Wait()
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(s, "").Handler())
	defer ts.Close()

	for i, want := range []int{http.StatusCreated, http.StatusTooManyRequests} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(smokeSpec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("submission %d = %d, want %d", i, resp.StatusCode, want)
		}
	}
}
