// Package core implements the paper's contribution: the TAPAS scheduling
// framework (§4) — offline Profiles, the rule-based VM Allocator, the
// thermal/power-aware request Router, and the Instance Configurator — plus
// the thermal/power-oblivious Baseline (§5.1) and the six ablation variants
// combining the three TAPAS levers.
package core

import (
	"fmt"
	"sync"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/thermal"
)

// Profiles bundles the models TAPAS learns during the offline profiling
// phase (§4.5): per-server inlet surfaces (Eq. 1), per-GPU temperature
// models (Eq. 2), the shared airflow curve, and the server power polynomial.
// The LLM configuration profile lives in cluster.State.Profile.
type Profiles struct {
	Inlet   *thermal.InletModel
	GPUTemp *thermal.GPUTempModel
	Airflow thermal.AirflowModel
	Power   power.Model

	// Per-generation airflow/power fits for heterogeneous fleets,
	// dense-indexed by layout.GPUModel. Absent generations alias the base
	// fit, so uniform fleets behave exactly as before.
	airflowBy [layout.GPUModelCount]thermal.AirflowModel
	powerBy   [layout.GPUModelCount]power.Model
}

// AirflowFor returns the fitted airflow curve of a GPU generation.
func (p *Profiles) AirflowFor(m layout.GPUModel) *thermal.AirflowModel { return &p.airflowBy[m] }

// PowerFor returns the fitted server power polynomial of a GPU generation.
func (p *Profiles) PowerFor(m layout.GPUModel) power.Model { return p.powerBy[m] }

// BuildProfiles runs the offline profiling phase against a datacenter: it
// evaluates the physics over a grid of operating conditions — the benchmarks
// and validation tests operators run at deployment time — and fits the
// regression models the paper selects. The scheduling policies consume only
// these fitted models, never the physics directly.
func BuildProfiles(dc *layout.Datacenter) (*Profiles, error) {
	spec := layout.Spec(dc.Config.GPU)

	// Inlet model: sweep outside temperature and datacenter load.
	outsides := []float64{0, 5, 10, 14, 16, 20, 24, 26, 30, 35, 40}
	loads := []float64{0, 0.25, 0.5, 0.75, 1}
	var inletSamples []thermal.InletSample
	for _, o := range outsides {
		for _, l := range loads {
			s := thermal.InletSample{OutsideC: o, DCLoadFrac: l, InletC: make([]float64, len(dc.Servers))}
			for i, srv := range dc.Servers {
				s.InletC[i] = thermal.InletTemp(srv, o, l, 0)
			}
			inletSamples = append(inletSamples, s)
		}
	}
	inletModel, err := thermal.FitInletModel(inletSamples, len(dc.Servers))
	if err != nil {
		return nil, fmt.Errorf("core: profiling inlet model: %w", err)
	}

	// GPU temperature model: sweep inlet × GPU power per GPU.
	inlets := []float64{18, 22, 26, 30}
	fracs := []float64{0.1, 0.4, 0.7, 1.0}
	var gpuSamples []thermal.GPUSample
	for _, srv := range dc.Servers {
		for g := 0; g < spec.GPUsPerServer; g++ {
			for _, in := range inlets {
				for _, f := range fracs {
					gpuSamples = append(gpuSamples, thermal.GPUSample{
						Server: srv.ID, GPU: g, InletC: in, PowerFrac: f,
						TempC: thermal.GPUTemp(srv, g, in, f),
					})
				}
			}
		}
	}
	gpuModel, err := thermal.FitGPUTempModel(gpuSamples, len(dc.Servers), spec.GPUsPerServer)
	if err != nil {
		return nil, fmt.Errorf("core: profiling GPU temp model: %w", err)
	}

	// Airflow curve and server power polynomial, fitted per hardware
	// generation present in the fleet (heterogeneous fleets run the
	// deployment benchmarks once per generation).
	airflowModel, powerModel, err := fitServerModels(spec)
	if err != nil {
		return nil, err
	}
	prof := &Profiles{
		Inlet:   inletModel,
		GPUTemp: gpuModel,
		Airflow: airflowModel,
		Power:   powerModel,
	}
	for m := range prof.airflowBy {
		prof.airflowBy[m] = airflowModel
		prof.powerBy[m] = powerModel
	}
	for _, m := range dc.Models() {
		if m == spec.Model {
			continue
		}
		af, pw, err := fitServerModels(layout.Spec(m))
		if err != nil {
			return nil, err
		}
		prof.airflowBy[m] = af
		prof.powerBy[m] = pw
	}
	return prof, nil
}

// fitServerModels fits one generation's airflow curve and power polynomial
// from its deployment measurements.
func fitServerModels(spec layout.GPUSpec) (thermal.AirflowModel, power.Model, error) {
	// Airflow: idle, full, and intermediate fan measurements (§2.1).
	afLoads := []float64{0, 0.25, 0.5, 0.75, 1}
	afFlows := make([]float64, len(afLoads))
	for i, l := range afLoads {
		afFlows[i] = thermal.Airflow(&spec, l)
	}
	airflowModel, err := thermal.FitAirflowModel(afLoads, afFlows)
	if err != nil {
		return thermal.AirflowModel{}, power.Model{}, fmt.Errorf("core: profiling airflow model: %w", err)
	}

	// Server power polynomial over load.
	var pLoads, pPowers []float64
	for l := 0.0; l <= 1.001; l += 0.05 {
		pLoads = append(pLoads, l)
		pPowers = append(pPowers, power.ServerPowerAtUniformLoad(&spec, l))
	}
	powerModel, err := power.FitModel(pLoads, pPowers)
	if err != nil {
		return thermal.AirflowModel{}, power.Model{}, fmt.Errorf("core: profiling power model: %w", err)
	}
	return airflowModel, powerModel, nil
}

// profilesKey identifies a datacenter's content: generation is deterministic
// in the layout config, and the server count additionally captures
// oversubscription (AddRacks is deterministic too). Two datacenters with the
// same key hold identical heterogeneity, so they share one fitted Profiles.
type profilesKey struct {
	cfg     layout.Config
	servers int
}

type profilesEntry struct {
	once sync.Once
	prof *Profiles
	err  error
}

var (
	profilesMu    sync.Mutex
	profilesCache = map[profilesKey]*profilesEntry{}
	profilesOrder []profilesKey
)

// profilesCacheCap bounds the memoized profile set; experiment grids touch a
// handful of distinct layouts, so eviction only matters for long benchmark
// loops churning through scaled configs.
const profilesCacheCap = 16

// ProfilesFor returns the offline profiles for a datacenter, fitting them at
// most once per distinct layout. The returned Profiles are read-only and
// shared: concurrent runs over the same (or an identical) datacenter reuse
// one model set instead of refitting per run.
func ProfilesFor(dc *layout.Datacenter) (*Profiles, error) {
	key := profilesKey{cfg: dc.Config, servers: len(dc.Servers)}
	profilesMu.Lock()
	e, ok := profilesCache[key]
	if !ok {
		if len(profilesOrder) >= profilesCacheCap {
			oldest := profilesOrder[0]
			profilesOrder = profilesOrder[1:]
			delete(profilesCache, oldest)
		}
		e = &profilesEntry{}
		profilesCache[key] = e
		profilesOrder = append(profilesOrder, key)
	}
	profilesMu.Unlock()
	e.once.Do(func() { e.prof, e.err = BuildProfiles(dc) })
	return e.prof, e.err
}
