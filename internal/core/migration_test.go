package core

import (
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
)

func TestMigratorMovesHotSaaSVM(t *testing.T) {
	st, prof := newComponentState(t)
	mig := newMigrator(prof)

	// Find the server with the hottest GPU response and a cool alternative.
	hot, cool := -1, -1
	hotGain, coolGain := 0.0, 1e9
	for _, srv := range st.DC.Servers {
		hi := 0.0
		for _, g := range srv.GPUTempGainC {
			if g > hi {
				hi = g
			}
		}
		if hi > hotGain {
			hotGain, hot = hi, srv.ID
		}
		if hi < coolGain {
			coolGain, cool = hi, srv.ID
		}
	}
	_ = cool
	// Place a SaaS VM on the hottest server and make it look busy/hot.
	var vm *cluster.VM
	for i, v := range st.VMs {
		if v.Spec.Kind == trace.SaaS {
			if err := st.Place(i, hot); err != nil {
				t.Fatal(err)
			}
			vm = v
			break
		}
	}
	st.ServerInletC[hot] = 28
	fracs := st.GPUFracs(hot)
	for g := range fracs {
		fracs[g] = 0.95
	}
	st.Now = time.Hour

	moves := mig.step(st)
	if moves != 1 {
		t.Fatalf("migrations = %d, want 1", moves)
	}
	if vm.Server == hot {
		t.Fatal("VM still on the hottest server")
	}
	if vm.Instance == nil {
		t.Fatal("instance lost across migration")
	}
	if st.ServerVM[hot] != -1 {
		t.Fatal("old server not freed")
	}
	if st.ServerVM[vm.Server] != vm.Spec.ID {
		t.Fatal("new server binding inconsistent")
	}
}

func TestMigratorRateLimits(t *testing.T) {
	st, prof := newComponentState(t)
	mig := newMigrator(prof)
	st.Now = time.Hour
	_ = mig.step(st) // sets lastRun
	st.Now = time.Hour + time.Minute
	if got := mig.step(st); got != 0 {
		t.Errorf("migrator ran again %v after the last round, want interval gating", time.Minute)
	}
}

func TestMigratorNeverMovesIaaS(t *testing.T) {
	st, prof := newComponentState(t)
	mig := newMigrator(prof)
	// Put an IaaS VM on the hottest server, fully loaded.
	hot := 0
	hotGain := 0.0
	for _, srv := range st.DC.Servers {
		for _, g := range srv.GPUTempGainC {
			if g > hotGain {
				hotGain, hot = g, srv.ID
			}
		}
	}
	var vmID int
	for i, v := range st.VMs {
		if v.Spec.Kind == trace.IaaS {
			if err := st.Place(i, hot); err != nil {
				t.Fatal(err)
			}
			vmID = i
			break
		}
	}
	st.ServerInletC[hot] = 30
	fracs := st.GPUFracs(hot)
	for g := range fracs {
		fracs[g] = 1
	}
	st.Now = time.Hour
	if got := mig.step(st); got != 0 {
		t.Errorf("migrator moved an IaaS VM (%d moves)", got)
	}
	if st.VMs[vmID].Server != hot {
		t.Error("IaaS VM relocated; live GPU migration is unsupported (§4.1)")
	}
}

func TestMigrationsInFullRun(t *testing.T) {
	// In a full TAPAS run migrations must not break invariants; count is
	// scenario dependent and may be zero when placement is already good.
	pol := NewFull()
	sc := sim.SmallScenario()
	sc.Duration = 2 * time.Hour
	sc.Workload.Duration = sc.Duration
	res, err := sim.Run(sc, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceRate() < 0.99 {
		t.Errorf("service rate %.3f degraded with migration enabled", res.ServiceRate())
	}
	if pol.Migrations < 0 {
		t.Fatal("negative migration count")
	}
}
