package core

import (
	"testing"

	"github.com/tapas-sim/tapas/internal/llm"
)

func TestSLONamesAndDiscipline(t *testing.T) {
	fifo, edf := NewSLO(false), NewSLO(true)
	if fifo.Name() != "SLO-Admit" || edf.Name() != "SLO-EDF" {
		t.Errorf("names = %q, %q", fifo.Name(), edf.Name())
	}
	if fifo.QueueDiscipline() != llm.FIFO {
		t.Error("admission variant must keep FIFO queues")
	}
	if edf.QueueDiscipline() != llm.EDF {
		t.Error("EDF variant must select EDF queues")
	}
}

func TestSLOTuneDefaults(t *testing.T) {
	s := NewSLO(false)
	if s.affinityWeight != affinityDiscount || s.admissionSlack != 1 {
		t.Fatalf("defaults = %v, %v; want %v, 1", s.affinityWeight, s.admissionSlack, affinityDiscount)
	}
	// Zero values (unset scenario knobs) keep the defaults.
	s.TuneSLO(0, 0)
	if s.affinityWeight != affinityDiscount || s.admissionSlack != 1 {
		t.Error("TuneSLO(0, 0) must keep the defaults")
	}
	s.TuneSLO(0.25, 1.5)
	if s.affinityWeight != 0.25 || s.admissionSlack != 1.5 {
		t.Errorf("tuned = %v, %v; want 0.25, 1.5", s.affinityWeight, s.admissionSlack)
	}
	// One-sided tuning leaves the other knob alone.
	s.TuneSLO(0.75, 0)
	if s.affinityWeight != 0.75 || s.admissionSlack != 1.5 {
		t.Errorf("one-sided tune = %v, %v; want 0.75, 1.5", s.affinityWeight, s.admissionSlack)
	}
}
