package core

import (
	"math"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/trace"
)

// newComponentState builds a small cluster state plus profiles for direct
// component tests (no simulator loop).
func newComponentState(t *testing.T) (*cluster.State, *Profiles) {
	t.Helper()
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.Generate(trace.WorkloadConfig{
		Servers: len(dc.Servers), SaaSFraction: 0.5,
		Duration: 24 * time.Hour, Endpoints: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cluster.NewState(dc, w)
	st.Tick = time.Minute
	prof, err := BuildProfiles(dc)
	if err != nil {
		t.Fatal(err)
	}
	// Plausible telemetry baseline.
	for i := range st.ServerInletC {
		st.ServerInletC[i] = 24
		st.ServerPowerW[i] = 2000
	}
	return st, prof
}

func findVM(st *cluster.State, kind trace.VMKind) *cluster.VM {
	for _, vm := range st.VMs {
		if vm.Spec.Kind == kind && vm.Server == -1 {
			return vm
		}
	}
	return nil
}

// --- allocator -------------------------------------------------------------

func TestAllocatorPlacesIaaSCoolerThanSaaS(t *testing.T) {
	st, prof := newComponentState(t)
	alloc := &allocator{prof: prof}
	iaas := findVM(st, trace.IaaS)
	saas := findVM(st, trace.SaaS)
	// Hot customer: force peak estimate 1.0 by leaving history empty.
	iaasSrv, ok := alloc.place(st, iaas)
	if !ok {
		t.Fatal("IaaS placement failed on an empty cluster")
	}
	saasSrv, ok := alloc.place(st, saas)
	if !ok {
		t.Fatal("SaaS placement failed on an empty cluster")
	}
	// Project both chosen servers at full load: the IaaS pick must be
	// cooler than the SaaS pick (rule 2: IaaS → cool, SaaS → warm).
	proj := func(server int) float64 {
		inlet := prof.Inlet.Predict(server, 34, 0.8)
		hot := 0.0
		for g := 0; g < st.GPUsPerServer; g++ {
			if tc := prof.GPUTemp.Predict(server, g, inlet, 1); tc > hot {
				hot = tc
			}
		}
		return hot
	}
	if proj(iaasSrv) >= proj(saasSrv) {
		t.Errorf("IaaS server projects %.1f °C, SaaS %.1f °C; want IaaS cooler", proj(iaasSrv), proj(saasSrv))
	}
}

func TestAllocatorSaaSAvoidsThrottleRange(t *testing.T) {
	st, prof := newComponentState(t)
	alloc := &allocator{prof: prof}
	saas := findVM(st, trace.SaaS)
	srv, ok := alloc.place(st, saas)
	if !ok {
		t.Fatal("placement failed")
	}
	inlet := prof.Inlet.Predict(srv, 34, 0.8)
	for g := 0; g < st.GPUsPerServer; g++ {
		if tc := prof.GPUTemp.Predict(srv, g, inlet, 1); tc > st.Spec.ThrottleTempC {
			t.Errorf("SaaS placed where full load projects %.1f °C (above throttle)", tc)
		}
	}
}

func TestAllocatorBalancesMix(t *testing.T) {
	st, prof := newComponentState(t)
	alloc := &allocator{prof: prof}
	// Place 30 VMs alternating kinds and check the per-row mix stays
	// reasonably balanced (rule 3).
	var queue []*cluster.VM
	var iaasQ, saasQ []*cluster.VM
	for _, vm := range st.VMs {
		if vm.Spec.Kind == trace.IaaS {
			iaasQ = append(iaasQ, vm)
		} else {
			saasQ = append(saasQ, vm)
		}
	}
	for i := 0; i < 15 && i < len(iaasQ) && i < len(saasQ); i++ {
		queue = append(queue, iaasQ[i], saasQ[i])
	}
	for _, vm := range queue {
		srv, ok := alloc.place(st, vm)
		if !ok {
			break
		}
		if err := st.Place(vm.Spec.ID, srv); err != nil {
			t.Fatal(err)
		}
	}
	for row := range st.DC.Rows {
		iaas, saas := st.RowMix(row)
		if iaas+saas == 0 {
			continue
		}
		if d := iaas - saas; d > 8 || d < -8 {
			t.Errorf("row %d badly imbalanced: %d IaaS vs %d SaaS", row, iaas, saas)
		}
	}
}

func TestAllocatorUsesCustomerHistory(t *testing.T) {
	st, prof := newComponentState(t)
	alloc := &allocator{prof: prof}
	// A mild customer (peak 0.4) should be allowed onto warmer hardware
	// than a hot one (peak 1.0), preserving cool servers.
	st.ObserveCustomerLoad(0, 0.4)
	st.ObserveCustomerLoad(1, 1.0)
	mild := &cluster.VM{Spec: trace.VMSpec{ID: 0, Kind: trace.IaaS, Customer: 0}, Server: -1}
	hot := &cluster.VM{Spec: trace.VMSpec{ID: 1, Kind: trace.IaaS, Customer: 1}, Server: -1}
	mildSrv, ok := alloc.place(st, mild)
	if !ok {
		t.Fatal("mild placement failed")
	}
	hotSrv, ok := alloc.place(st, hot)
	if !ok {
		t.Fatal("hot placement failed")
	}
	gain := func(server int) float64 {
		hi := 0.0
		for _, g := range st.DC.Servers[server].GPUTempGainC {
			if g > hi {
				hi = g
			}
		}
		return hi
	}
	if gain(mildSrv) < gain(hotSrv)-2 {
		t.Errorf("mild VM took a markedly cooler server (gain %.1f) than the hot VM (%.1f)",
			gain(mildSrv), gain(hotSrv))
	}
}

func TestAllocatorValidatorRejectsWhenEnvelopesFull(t *testing.T) {
	st, prof := newComponentState(t)
	alloc := &allocator{prof: prof}
	// Fill the cluster completely with presumed-peak VMs so predicted row
	// peaks leave no slack; the validator must then find no candidate.
	id := 0
	for _, vm := range st.VMs {
		if id >= len(st.ServerVM) {
			break
		}
		if vm.Server == -1 {
			if err := st.Place(vm.Spec.ID, id); err == nil {
				id++
			}
		}
	}
	extra := &cluster.VM{Spec: trace.VMSpec{ID: 9999, Kind: trace.IaaS, Customer: 99}, Server: -1}
	if _, ok := alloc.place(st, extra); ok {
		t.Error("allocator placed a VM on a full cluster")
	}
}

// --- router ----------------------------------------------------------------

func setupEndpoint(t *testing.T, st *cluster.State, n int) []*cluster.VM {
	t.Helper()
	placed := 0
	var vms []*cluster.VM
	rowSize := len(st.DC.Rows[0].Servers)
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == 0 && placed < n {
			// Alternate rows so row-level routing behaviour is observable.
			server := (placed%2)*rowSize + placed/2
			if err := st.Place(i, server); err != nil {
				t.Fatal(err)
			}
			placed++
			vms = append(vms, vm)
		}
	}
	if placed < n {
		t.Fatalf("only %d endpoint VMs available", placed)
	}
	return vms
}

func TestRouterDeliversAllDemand(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 6)
	rt := &router{prof: prof}
	prompt, output := 3e5, 7.5e4
	rt.route(st, st.Work.Endpoints[0], prompt, output)
	var total float64
	for _, vm := range vms {
		total += vm.Instance.QueueTokens() + vm.Instance.TickEnqueued() - vm.Instance.QueueTokens() // enqueued accumulator
		total += 0
	}
	// Queue tokens only track prompt+decode queues; verify via TickEnqueued.
	total = 0
	for _, vm := range vms {
		total += vm.Instance.TickEnqueued()
	}
	if math.Abs(total-(prompt+output)) > (prompt+output)*0.01 {
		t.Errorf("routed %.0f of %.0f tokens", total, prompt+output)
	}
}

func TestRouterAvoidsHotServers(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 6)
	rt := &router{prof: prof}
	// Make one server thermally critical.
	hot := vms[0].Server
	temps := st.GPUTemps(hot)
	for g := range temps {
		temps[g] = st.Spec.ThrottleTempC - 1
	}
	// The tick kernel maintains the per-server max the router reads.
	st.ServerHotGPUTempC[hot] = st.Spec.ThrottleTempC - 1
	// High demand (spread regime) that still fits the safe instances'
	// serving capacity, so nothing overflows onto the risky one.
	rt.route(st, st.Work.Endpoints[0], 9.6e5, 2.4e5)
	hotShare := vms[0].Instance.TickEnqueued()
	var coolMax float64
	for _, vm := range vms[1:] {
		if e := vm.Instance.TickEnqueued(); e > coolMax {
			coolMax = e
		}
	}
	if hotShare >= coolMax*0.2 {
		t.Errorf("hot server got %.0f tokens vs max cool %.0f; want strong avoidance", hotShare, coolMax)
	}
}

func TestRouterAvoidsPressuredRow(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 6)
	rt := &router{prof: prof}
	// Row 0 at 99% of its power limit.
	st.RowPowerW[0] = st.Budget.RowLimitW(0) * 0.99
	rt.route(st, st.Work.Endpoints[0], 7e5, 1.75e5)
	var row0, row1 float64
	for _, vm := range vms {
		if st.DC.Servers[vm.Server].Row == 0 {
			row0 += vm.Instance.TickEnqueued()
		} else {
			row1 += vm.Instance.TickEnqueued()
		}
	}
	if row0 >= row1*0.2 {
		t.Errorf("pressured row got %.0f tokens vs %.0f; want strong avoidance", row0, row1)
	}
}

func TestRouterSkipsReloadingInstances(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 4)
	cfg := vms[0].Instance.Config
	cfg.Model = llm.Llama13B
	vms[0].Instance.Reconfigure(cfg) // now reloading
	rt := &router{prof: prof}
	rt.route(st, st.Work.Endpoints[0], 1e5, 2.5e4)
	if vms[0].Instance.TickEnqueued() > 0 {
		t.Error("reloading instance received demand")
	}
}

func TestRouterConsolidatesAtLowLoad(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 8)
	rt := &router{prof: prof}
	// Tiny demand: should land on a subset of instances, not all eight.
	rt.route(st, st.Work.Endpoints[0], 5e4, 1.25e4)
	active := 0
	for _, vm := range vms {
		if vm.Instance.TickEnqueued() > 0 {
			active++
		}
	}
	if active > 4 {
		t.Errorf("low demand spread across %d instances; want consolidation", active)
	}
}

func TestRouterOverloadStillServesEveryone(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 4)
	// Everything at risk: temps critical everywhere.
	for i := range st.GPUTempC {
		st.GPUTempC[i] = st.Spec.ThrottleTempC
	}
	rt := &router{prof: prof}
	rt.route(st, st.Work.Endpoints[0], 4e5, 1e5)
	var total float64
	for _, vm := range vms {
		total += vm.Instance.TickEnqueued()
	}
	if total < 4.9e5 {
		t.Errorf("under fleet-wide risk, demand must still be served (even split); got %.0f", total)
	}
}

// --- configurator ------------------------------------------------------------

func TestConfiguratorDownsizesIdleInstances(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 3)
	cfgtor := newConfigurator(prof)
	// No demand at all: over a few rounds the configurator should settle
	// the instances on a low-power configuration (staggered cadence).
	for tick := 0; tick < 10; tick++ {
		st.Now = time.Duration(tick+1) * time.Minute
		cfgtor.configure(st)
	}
	for _, vm := range vms {
		e, ok := st.Profile.Entry(vm.Instance.Config)
		if !ok {
			t.Fatal("current config missing from profile")
		}
		def, _ := st.Profile.Entry(llm.DefaultConfig())
		if e.AvgServerPowerW >= def.AvgServerPowerW {
			t.Errorf("idle instance still at %.0f W config (default %.0f W)", e.AvgServerPowerW, def.AvgServerPowerW)
		}
		if vm.Instance.Config.Model != llm.Llama70B {
			t.Error("normal operation must not change the model (quality floor 1.0)")
		}
	}
}

func TestConfiguratorUpscalesUnderBacklog(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 1)
	in := vms[0].Instance
	low := llm.DefaultConfig()
	low.FreqFrac = 0.5
	in.Reconfigure(low)
	// Saturate: enqueue far beyond capacity and step to build backlog.
	in.EnqueueBulk(5e6, 1.25e6)
	in.Step(time.Minute)
	if in.BacklogSecs <= 3 {
		t.Fatal("expected backlog")
	}
	cfgtor := newConfigurator(prof)
	st.Now = time.Minute
	cfgtor.configure(st)
	if in.Config.FreqFrac <= 0.5 {
		t.Errorf("backlogged instance not upscaled: still at f=%.2f", in.Config.FreqFrac)
	}
}

func TestConfiguratorRespectsQualityFloorNormally(t *testing.T) {
	st, prof := newComponentState(t)
	vms := setupEndpoint(t, st, 2)
	cfgtor := newConfigurator(prof)
	// Severe row pressure without an emergency: may downsize config but
	// never the model.
	st.RowPowerW[0] = st.Budget.RowLimitW(0) * 1.2
	for tick := 0; tick < 6; tick++ {
		st.Now = time.Duration(tick+1) * time.Minute
		cfgtor.configure(st)
		for _, vm := range vms {
			vm.Instance.Step(time.Minute)
		}
	}
	for _, vm := range vms {
		if vm.Instance.Config.Model != llm.Llama70B || vm.Instance.Config.Quant != llm.FP16 {
			t.Errorf("normal operation changed model/quant to %v", vm.Instance.Config)
		}
	}
}

func TestConfiguratorAllowsSmallerModelsInEmergency(t *testing.T) {
	st, prof := newComponentState(t)
	_ = setupEndpoint(t, st, 2)
	cfgtor := newConfigurator(prof)
	st.Budget.SetEmergency(0.75)
	st.RowPowerW[0] = st.Budget.RowLimitW(0) * 1.4
	st.RowPowerW[1] = st.Budget.RowLimitW(1) * 1.4
	for i := range st.ServerPowerW {
		st.ServerPowerW[i] = 5500
	}
	changed := false
	for tick := 0; tick < 25; tick++ {
		st.Now = time.Duration(tick+1) * time.Minute
		cfgtor.configure(st)
		for _, vm := range st.VMs {
			if vm.Instance != nil {
				vm.Instance.EnqueueBulk(3e5, 7.5e4) // keep demand present
				vm.Instance.Step(time.Minute)
				if vm.Instance.Config.Model != llm.Llama70B || vm.Instance.Config.Quant != llm.FP16 {
					changed = true
				}
			}
		}
	}
	if !changed {
		t.Error("severe power emergency never engaged smaller/quantized models")
	}
}

// --- baseline ---------------------------------------------------------------

func TestBaselinePacksRows(t *testing.T) {
	st, _ := newComponentState(t)
	b := NewBaseline()
	var servers []int
	for i := 0; i < 10; i++ {
		srv, ok := b.Place(st, st.VMs[i])
		if !ok {
			t.Fatal("baseline placement failed")
		}
		if err := st.Place(st.VMs[i].Spec.ID, srv); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	// All ten in the same row: packing concentrates.
	row := st.DC.Servers[servers[0]].Row
	for _, s := range servers[1:] {
		if st.DC.Servers[s].Row != row {
			t.Fatalf("baseline spread VMs across rows %d and %d; expected packing", row, st.DC.Servers[s].Row)
		}
	}
}

func TestBaselineRouteLeastQueue(t *testing.T) {
	st, _ := newComponentState(t)
	vms := setupEndpoint(t, st, 3)
	// Pre-load one instance.
	vms[0].Instance.EnqueueBulk(1e6, 2.5e5)
	b := NewBaseline()
	before := make([]float64, len(vms))
	for i, vm := range vms {
		before[i] = vm.Instance.TickEnqueued()
	}
	b.Route(st, st.Work.Endpoints[0], 3e5, 7.5e4)
	if d0 := vms[0].Instance.TickEnqueued() - before[0]; d0 >= vms[1].Instance.TickEnqueued()-before[1] {
		t.Error("baseline routing must favor the least-loaded instance")
	}
}

func TestBaselineCapRowUniform(t *testing.T) {
	st, _ := newComponentState(t)
	b := NewBaseline()
	b.CapRow(st, 0, 300000, 200000)
	var capped int
	for _, srv := range st.DC.Rows[0].Servers {
		if st.ServerFreqCap[srv.ID] < 1 {
			capped++
		}
	}
	if capped != len(st.DC.Rows[0].Servers) {
		t.Errorf("uniform cap hit %d of %d servers", capped, len(st.DC.Rows[0].Servers))
	}
	// Other row untouched.
	for _, srv := range st.DC.Rows[1].Servers {
		if st.ServerFreqCap[srv.ID] < 1 {
			t.Fatal("cap leaked into another row")
		}
	}
	// Compounding: a second call caps deeper.
	first := st.ServerFreqCap[st.DC.Rows[0].Servers[0].ID]
	b.CapRow(st, 0, 300000, 200000)
	if st.ServerFreqCap[st.DC.Rows[0].Servers[0].ID] >= first {
		t.Error("capping must compound while the violation persists")
	}
}

// --- TAPAS selective capping --------------------------------------------------

func TestSelectiveCapPrefersIaaS(t *testing.T) {
	st, prof := newComponentState(t)
	pol := NewFull()
	pol.prof = prof
	// One IaaS and one SaaS VM in row 0.
	var iaasID, saasID = -1, -1
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.IaaS && iaasID == -1 {
			if err := st.Place(i, 0); err != nil {
				t.Fatal(err)
			}
			iaasID = 0
		}
		if vm.Spec.Kind == trace.SaaS && saasID == -1 {
			if err := st.Place(i, 1); err != nil {
				t.Fatal(err)
			}
			saasID = 1
		}
		if iaasID != -1 && saasID != -1 {
			break
		}
	}
	st.ServerPowerW[0] = 5000
	st.ServerPowerW[1] = 5000
	pol.selectiveCap(st, []int{0, 1}, 1000)
	if st.ServerFreqCap[0] >= 1 {
		t.Error("IaaS server must be capped first")
	}
	if st.ServerFreqCap[1] < 1 {
		t.Error("SaaS server must be spared while IaaS headroom remains")
	}
	// Impossible shed falls through to SaaS too.
	pol.selectiveCap(st, []int{0, 1}, 1e9)
	if st.ServerFreqCap[1] >= 1 {
		t.Error("overwhelming shed target must reach SaaS servers")
	}
}
