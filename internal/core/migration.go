package core

import (
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/trace"
)

// migrator implements §4.1's migration: beyond initial placement, TAPAS
// periodically recalculates better placements for SaaS VMs — create a new
// VM, transfer the workload, decommission the old one — to correct
// mispredictions and workload drift. IaaS VMs are never migrated: live GPU
// VM migration is unsupported (§4.1).
type migrator struct {
	prof     *Profiles
	interval time.Duration
	lastRun  time.Duration
	// lastMove rate-limits per-VM churn.
	lastMove map[int]time.Duration
}

const (
	// migrationInterval bounds how often the placement recalculation runs.
	migrationInterval = 30 * time.Minute
	// migrationCooldown bounds how often one VM may move.
	migrationCooldown = 2 * time.Hour
	// migrationsPerRound bounds fleet churn per recalculation.
	migrationsPerRound = 4
	// migrationTempGain is the predicted hottest-GPU improvement (°C)
	// required to justify a move.
	migrationTempGain = 5.0
)

func newMigrator(prof *Profiles) *migrator {
	return &migrator{prof: prof, interval: migrationInterval, lastMove: map[int]time.Duration{}}
}

// step evaluates migration opportunities and executes up to
// migrationsPerRound moves (§4.1's create → transfer → decommission,
// collapsed to one tick at simulator granularity; the serving instance rides
// along with its queues and affinity state).
func (m *migrator) step(st *cluster.State) int {
	if st.Now-m.lastRun < m.interval {
		return 0
	}
	m.lastRun = st.Now
	moves := 0
	for _, vm := range st.VMs {
		if moves >= migrationsPerRound {
			break
		}
		if vm.Spec.Kind != trace.SaaS || vm.Server < 0 || vm.Instance == nil {
			continue
		}
		if vm.Instance.Reloading() {
			continue
		}
		if last, seen := m.lastMove[vm.Spec.ID]; seen && st.Now-last < migrationCooldown {
			continue
		}
		cur := vm.Server
		curTemp := m.hottestPredicted(st, cur)
		// Only consider VMs whose current server runs hot at its load.
		if curTemp < st.Spec.ThrottleTempC-migrationTempGain {
			continue
		}
		// Target: the warmest free server that still projects at least
		// migrationTempGain cooler than the current placement at this VM's
		// estimated load (still "SaaS on warm servers", just viable ones).
		ceiling := curTemp - migrationTempGain
		if lim := st.Spec.ThrottleTempC - tempMargin; lim < ceiling {
			ceiling = lim
		}
		target, ok := m.selectTarget(st, vm, ceiling)
		if !ok || target == cur {
			continue
		}
		inst := vm.Instance
		st.Remove(vm.Spec.ID)
		if err := st.Place(vm.Spec.ID, target); err != nil {
			// Target raced away; put the VM back where it was.
			if err2 := st.Place(vm.Spec.ID, cur); err2 != nil {
				continue
			}
		}
		// Keep the serving state (queues, affinity) across the move.
		vm.Instance = inst
		m.lastMove[vm.Spec.ID] = st.Now
		moves++
	}
	return moves
}

// selectTarget returns the warmest free server whose projected hottest-GPU
// temperature at the VM's estimated load stays at or below ceiling.
func (m *migrator) selectTarget(st *cluster.State, vm *cluster.VM, ceiling float64) (int, bool) {
	estLoad := st.EstimateVMPeakLoad(vm.Spec)
	best, bestProj := -1, -1.0
	for id, occupant := range st.ServerVM {
		if occupant != -1 || id == vm.Server {
			continue
		}
		inlet := st.ServerInletC[id]
		proj := 0.0
		for g := 0; g < st.GPUsPerServer; g++ {
			if t := m.prof.GPUTemp.Predict(id, g, inlet, estLoad); t > proj {
				proj = t
			}
		}
		if proj <= ceiling && proj > bestProj {
			best, bestProj = id, proj
		}
	}
	return best, best != -1
}

// hottestPredicted returns the predicted hottest-GPU temperature of a server
// at its current observed power fractions and inlet.
func (m *migrator) hottestPredicted(st *cluster.State, server int) float64 {
	inlet := st.ServerInletC[server]
	hot := 0.0
	for g, frac := range st.GPUFracs(server) {
		if t := m.prof.GPUTemp.Predict(server, g, inlet, frac); t > hot {
			hot = t
		}
	}
	return hot
}
