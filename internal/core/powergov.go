package core

import (
	"math"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
)

// PowerGov is the closed-loop power-governing policy family: the full TAPAS
// stack for placement, routing, configuration and row/aisle capping, plus a
// per-tick monitor → recommender → tuner loop (power.Controller) that holds
// each SaaS endpoint under a configurable power budget.
//
// Each tick the governor (1) monitors the endpoint's draw — the summed
// ServerPowerW of its placed instances — against its budget (a fraction of
// the instances' aggregate server TDP), (2) recommends a dynamic-power scale
// via a clamped proportional controller with anti-windup, inverted into a
// per-server frequency state through the exported DVFS physics
// (power.TargetFreqFrac → power.FreqFracForPower), and (3) tunes
// ServerFreqCap a gain-sized step toward that state — approaching the
// recommendation gradually from either side, where TAPAS slams caps down on
// violations and waits for the engine's fixed decay. Every tuned server
// hosts an instance, so the governor only touches occupied servers and the
// engine's dirty-set capping contract (sim.Policy) holds.
//
// The energy-aware variant additionally replaces request routing: among the
// candidates whose projected time-to-first-token still fits the TTFT SLO,
// instances are scored by queued work weighted by their GPU generation's
// estimated energy per token, so on heterogeneous fleets SaaS load drifts to
// the efficient generation until its backlog nears the deadline — minimizing
// energy per token subject to the SLO, with plain TAPAS routing as the
// fallback when no candidate can meet it.
//
// Both controller knobs are sweepable as campaign axes
// (sim.Scenario.PowerGov → TunePowerGov): powergov.budget_frac in (0, 1],
// powergov.gain in (0, 1].
type PowerGov struct {
	*TAPAS
	energyAware bool
	ctrl        *power.Controller
}

// NewPowerGov builds the closed-loop power governor; energyAware additionally
// selects generation-efficiency-weighted request routing.
func NewPowerGov(energyAware bool) *PowerGov {
	return &PowerGov{TAPAS: NewFull(), energyAware: energyAware, ctrl: power.NewController(0)}
}

// Name implements sim.Policy.
func (g *PowerGov) Name() string {
	if g.energyAware {
		return "PowerGov-Energy"
	}
	return "PowerGov"
}

// Init implements sim.Policy: TAPAS profiling plus per-endpoint controller
// state.
func (g *PowerGov) Init(st *cluster.State) error {
	if err := g.TAPAS.Init(st); err != nil {
		return err
	}
	g.ctrl.Reset(len(st.Work.Endpoints))
	return nil
}

// TunePowerGov implements sim.PowerGovTunable: the engine forwards the
// scenario's PowerGov values once per run. Non-positive values keep the
// controller defaults (budget fraction 0.8, gain 0.35).
func (g *PowerGov) TunePowerGov(budgetFrac, gain float64) {
	g.ctrl.Tune(budgetFrac, gain)
}

// Configure implements sim.Policy: the TAPAS Instance Configurator and
// proactive row/aisle capping run first (hard envelopes stay authoritative),
// then the per-endpoint governor loop.
func (g *PowerGov) Configure(st *cluster.State) {
	g.TAPAS.Configure(st)
	g.govern(st)
}

// govern runs one controller tick per endpoint on the previous tick's
// telemetry, like the rest of Configure.
func (g *PowerGov) govern(st *cluster.State) {
	for ep := range st.Work.Endpoints {
		insts := st.EndpointInstances(ep)
		if len(insts) == 0 {
			continue
		}
		// Monitor: endpoint draw and capacity over its instances' servers.
		drawW, capacityW := 0.0, 0.0
		for _, vm := range insts {
			drawW += st.ServerPowerW[vm.Server]
			capacityW += st.ServerGPUSpec(vm.Server).ServerTDPW
		}
		// Recommend: the allowed fraction of uncapped dynamic GPU power.
		scale := g.ctrl.Recommend(ep, drawW, capacityW)
		// Tune: walk each server's frequency cap toward the state that
		// realizes the recommendation, one gain-sized step per tick.
		for _, vm := range insts {
			id := vm.Server
			spec := st.ServerGPUSpec(id)
			perGPUW := maxOf(st.GPUFracs(id)) * spec.GPUTDPW
			cur := st.ServerFreqCap[id]
			target := power.TargetFreqFrac(spec, cur, perGPUW, scale)
			next := power.StepToward(cur, target, g.ctrl.Gain, minFreqCap)
			if next != cur {
				st.ServerFreqCap[id] = next
			}
		}
	}
}

// maxOf returns the largest element (0 for an empty slice): the hottest GPU
// power fraction of a server block is its active-set fraction.
func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// RouteRequest implements sim.RequestRouter. The base variant keeps TAPAS
// routing. The energy-aware variant minimizes energy subject to the deadline:
// among the candidates whose projected time-to-first-token (wait already
// accrued + queued work + own prefill) still fits the TTFT SLO, it picks the
// lowest queued-work score weighted by the candidate's estimated energy per
// token (normalized to the most efficient candidate) — so on a heterogeneous
// fleet requests drift to the efficient generation until its backlog
// approaches the deadline, never past it. When no candidate fits, energy is
// irrelevant (the request is late wherever it lands) and routing falls back
// to plain TAPAS latency damage control.
func (g *PowerGov) RouteRequest(st *cluster.State, insts []*cluster.VM, req llm.Request) (int, bool) {
	if !g.energyAware {
		return g.TAPAS.RouteRequest(st, insts, req)
	}
	minJ := math.Inf(1)
	for _, vm := range insts {
		if j := energyPerTokenEst(st, vm); j < minJ {
			minJ = j
		}
	}
	// The engine admits at the start of the current tick; st.Now is its end.
	waited := (st.Now - st.Tick - req.Arrival).Seconds()
	if waited < 0 {
		waited = 0
	}
	throttleC := st.Spec.ThrottleTempC
	best, bestScore := -1, math.Inf(1)
	for i, vm := range insts {
		in := vm.Instance
		if in.Reloading() {
			continue
		}
		pr := llm.PrefillRate(in.Spec, in.Config)
		if pr <= 0 {
			continue
		}
		backlog := in.DemandSeconds()
		if waited+backlog+float64(req.PromptTokens)/pr > in.SLOs.TTFT.Seconds() {
			continue // this instance would already blow the deadline
		}
		// Queued seconds of work, weighted by relative energy per token; the
		// +1s bias keeps the efficiency preference decisive between idle
		// instances, where backlog alone degenerates to zero for everyone.
		score := (backlog + 1) * energyPerTokenEst(st, vm) / minJ
		if in.HasAffinity(req.Customer) {
			score *= affinityDiscount
		}
		srv := st.DC.Servers[vm.Server]
		rowUse := st.RowPowerW[srv.Row] / (st.Budget.RowLimitW(srv.Row) + 1)
		aisleUse := st.AisleDemandCFM[srv.Aisle] / (st.AisleLimitCFM(srv.Aisle) + 1)
		tempUse := st.ServerHotGPUTempC[vm.Server] / (throttleC - 2)
		if headroomOf(rowUse, aisleUse, tempUse) <= 0 {
			score += unsafePenaltySecs
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		// No candidate meets the deadline: fall back to TAPAS routing.
		return g.TAPAS.RouteRequest(st, insts, req)
	}
	return best, true
}

// energyPerTokenEst estimates an instance's marginal serving cost in joules
// per token from published specs and the performance model: full-load server
// power over full-batch decode throughput. It only needs to rank GPU
// generations against each other, so the crude full-tilt operating point is
// enough — and it is exact where it matters, favoring generations that buy
// more tokens per joule.
func energyPerTokenEst(st *cluster.State, vm *cluster.VM) float64 {
	in := vm.Instance
	rate := llm.DecodeTokenRate(in.Spec, in.Config, in.Config.MaxBatch)
	if rate <= 0 {
		return math.Inf(1)
	}
	return power.ServerPowerAtUniformLoad(&in.Spec, 1) / rate
}
