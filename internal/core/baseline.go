package core

import (
	"math"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/trace"
)

// Baseline is the thermal- and power-oblivious system of §5.1: traditional
// packing VM placement (Protean-style), performance-only LLM request
// routing (least queue), no instance reconfiguration, and uniform frequency
// capping when limits are exceeded.
type Baseline struct {
	// Reusable scratch: routing weights and capping ID lists are rebuilt
	// every tick, so they live on the policy to keep the hot loop
	// allocation-free.
	weights []float64
	ids     []int
}

// NewBaseline returns the baseline policy.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements sim.Policy.
func (*Baseline) Name() string { return "Baseline" }

// Place packs VMs: it prefers the free server in the most-occupied row
// (classic allocation keeps rows full to preserve large contiguous empty
// capacity), oblivious to temperature and power.
func (*Baseline) Place(st *cluster.State, vm *cluster.VM) (int, bool) {
	bestServer, bestScore := -1, -1.0
	for _, row := range st.DC.Rows {
		occupied := 0
		free := -1
		for _, srv := range row.Servers {
			if st.ServerVM[srv.ID] == -1 {
				if free == -1 {
					free = srv.ID
				}
			} else {
				occupied++
			}
		}
		if free == -1 {
			continue
		}
		score := float64(occupied)
		if score > bestScore {
			bestScore, bestServer = score, free
		}
	}
	if bestServer == -1 {
		return 0, false
	}
	return bestServer, true
}

// Route distributes demand inversely to queue depth — the state-of-the-art
// latency-optimizing load balancing the paper compares against, with no
// awareness of temperature or power.
func (b *Baseline) Route(st *cluster.State, ep trace.EndpointSpec, prompt, output float64) {
	insts := st.EndpointInstances(ep.ID)
	if cap(b.weights) < len(insts) {
		b.weights = make([]float64, len(insts))
	}
	weights := b.weights[:len(insts)]
	for i := range weights {
		weights[i] = 0
	}
	total := 0.0
	for i, vm := range insts {
		if vm.Instance.Reloading() {
			continue
		}
		weights[i] = 1 / (1 + vm.Instance.DemandSeconds())
		total += weights[i]
	}
	if total == 0 {
		even := 1 / float64(len(insts))
		for _, vm := range insts {
			vm.Instance.EnqueueBulk(prompt*even, output*even)
		}
		return
	}
	for i, vm := range insts {
		w := weights[i] / total
		vm.Instance.EnqueueBulk(prompt*w, output*w)
	}
}

// Configure does nothing: the baseline never reconfigures instances.
func (*Baseline) Configure(*cluster.State) {}

// CapRow applies a uniform frequency cap to every server in the row — the
// homogeneous limit distribution of §2.2 that Table 2 shows costing up to
// 35% performance.
func (b *Baseline) CapRow(st *cluster.State, row int, drawW, limitW float64) {
	ids := b.ids[:0]
	for _, srv := range st.DC.Rows[row].Servers {
		ids = append(ids, srv.ID)
	}
	b.ids = ids
	uniformCap(st, ids, drawW, limitW)
}

// CapAisle applies a uniform frequency cap to both rows of the aisle to
// bring airflow demand back under the AHU supply.
func (b *Baseline) CapAisle(st *cluster.State, aisle int, demandCFM, limitCFM float64) {
	ids := b.ids[:0]
	for _, srv := range st.DC.Aisles[aisle].Servers() {
		ids = append(ids, srv.ID)
	}
	b.ids = ids
	uniformCap(st, ids, demandCFM, limitCFM)
}

// uniformCap lowers ServerFreqCap on all ids so the aggregate (power or
// airflow, both ≈ linear in dynamic power) scales toward limit/draw. The
// scale compounds into the existing caps: frequency only controls the GPU
// dynamic share of server power, so a single application under-sheds and the
// controller must keep pressing until the violation clears (the engine's
// recovery hysteresis releases it afterwards).
func uniformCap(st *cluster.State, ids []int, draw, limit float64) {
	factor := power.UniformCapFactor(draw, limit)
	freqScale := math.Pow(factor, 1/power.DVFSExponent)
	for _, id := range ids {
		st.ServerFreqCap[id] = math.Max(minFreqCap, st.ServerFreqCap[id]*freqScale)
	}
}

// minFreqCap bounds capping at the hardware's minimum clock ratio.
const minFreqCap = 0.3
