package core

import (
	"math"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/trace"
)

// configurator implements the TAPAS Instance Configurator (§4.3): per
// instance it derives the allowable GPU power fraction (from the learned
// thermal model), the allowable server power (from row power and aisle
// airflow pressure), and a quality floor, then picks the configuration from
// the offline LLM profile that maximizes goodput within those limits —
// preferring the lowest-power configuration that still covers live demand,
// and treating reload-requiring changes (TP, model size, quantization) as a
// rate-limited last resort.
type configurator struct {
	prof        *Profiles
	lastReload  map[int]time.Duration // VM id → sim time of last reload
	rowPressure []int                 // consecutive ticks a row sat above target

	// Per-tick scratch, reused across configure calls so the steady-state
	// control loop does not allocate.
	rowScale   []float64
	aisleScale []float64
	aisleFairW []float64
}

const (
	// budgetTarget keeps rows/aisles a bit under their limits so demand
	// noise does not tip them over.
	budgetTarget = 0.96
	// demandMargin is the goodput headroom kept above live demand. Goodput
	// is already evaluated at 80% occupancy, so a thin extra margin keeps
	// SLOs safe while letting the configurator shed power at the shoulders
	// of the diurnal curve.
	demandMargin = 1.10
	// reloadCooldown rate-limits model reloads per instance.
	reloadCooldown = 10 * time.Minute
	// emergencyQualityFloor is the lowest acceptable relative quality when
	// shedding load during emergencies (§5.4 reports ≤12% average impact).
	emergencyQualityFloor = 0.60
	// configTempMargin keeps predicted GPU temperature below throttle.
	configTempMargin = 3.0
)

func newConfigurator(prof *Profiles) *configurator {
	return &configurator{prof: prof, lastReload: make(map[int]time.Duration)}
}

func (c *configurator) configure(st *cluster.State) {
	emergency := st.Budget.Multiplier() < 1 || st.AirflowLimitFrac < 1
	qualityFloor := 1.0
	if emergency {
		qualityFloor = emergencyQualityFloor
	}

	// Row and aisle pressure: the power scale each server in them must
	// apply to bring the aggregate back under target.
	if c.rowPressure == nil {
		c.rowPressure = make([]int, len(st.DC.Rows))
		c.rowScale = make([]float64, len(st.DC.Rows))
		c.aisleScale = make([]float64, len(st.DC.Aisles))
		c.aisleFairW = make([]float64, len(st.DC.Aisles))
	}
	rowScale := c.rowScale
	for row := range rowScale {
		rowScale[row] = 1
		target := st.Budget.RowLimitW(row) * budgetTarget
		if draw := st.RowPowerW[row]; draw > target {
			rowScale[row] = target / draw
			c.rowPressure[row]++
		} else {
			c.rowPressure[row] = 0
		}
	}
	aisleScale := c.aisleScale
	aisleFairW := c.aisleFairW
	for a := range aisleScale {
		aisleScale[a] = 1
		target := st.AisleLimitCFM(a) * budgetTarget
		if demand := st.AisleDemandCFM[a]; demand > target {
			aisleScale[a] = target / demand
		}
		// The server power that, fleet-wide in this aisle, would keep fan
		// airflow at the provisioned target — the aisle analogue of the
		// row fair share. Aisles are homogeneous per hardware generation,
		// so the aisle's own airflow/power fits apply throughout it.
		servers := st.DC.Aisles[a].Servers()
		model := servers[0].GPU.Model
		af := c.prof.AirflowFor(model)
		idleW := c.prof.PowerFor(model).Predict(0)
		n := float64(len(servers))
		perServerCFM := target / n
		heatFrac := (perServerCFM - af.IdleCFM) / (af.MaxCFM - af.IdleCFM)
		if heatFrac < 0 {
			heatFrac = 0
		}
		aisleFairW[a] = idleW + heatFrac*(servers[0].GPU.ServerTDPW-idleW)
	}

	tickSecs := st.Tick.Seconds()
	tickNo := int(st.Now / st.Tick)
	for _, vm := range st.VMs {
		if vm.Spec.Kind != trace.SaaS || vm.Server < 0 || vm.Instance == nil {
			continue
		}
		in := vm.Instance
		if in.Reloading() {
			continue
		}
		srv := st.DC.Servers[vm.Server]
		scale := rowScale[srv.Row]
		if s := aisleScale[srv.Aisle]; s < scale {
			scale = s
		}
		// The per-iteration controller caches its decisions (§4.5); absent
		// pressure or backlog, each instance is re-evaluated on a staggered
		// cadence.
		if scale >= 1 && !emergency && in.BacklogSecs <= 3 && (tickNo+vm.Spec.ID)%5 != 0 {
			continue
		}

		// Server power ceiling: unconstrained while the row/aisle have
		// slack; proportional squeeze otherwise — but never below the
		// server's fair share of the row target, or already-frugal
		// instances would ratchet down and never recover.
		maxServerW := srv.GPU.ServerTDPW
		if scale < 1 {
			maxServerW = st.ServerPowerW[vm.Server] * scale
			fairShare := st.Budget.RowLimitW(srv.Row) * budgetTarget / float64(len(st.DC.Rows[srv.Row].Servers))
			if af := aisleFairW[srv.Aisle]; af < fairShare {
				fairShare = af
			}
			if maxServerW < fairShare {
				maxServerW = fairShare
			}
		}

		// Thermal ceiling: hottest GPU of the server binds the allowable
		// power fraction at the current inlet (learned model inversion).
		inlet := st.ServerInletC[vm.Server]
		maxFrac := 1.0
		for g := 0; g < st.GPUsPerServer; g++ {
			h := c.prof.GPUTemp.HeadroomPowerFrac(vm.Server, g, inlet, st.Spec.ThrottleTempC-configTempMargin)
			if h < maxFrac {
				maxFrac = h
			}
		}

		required := in.TickEnqueued() / tickSecs * demandMargin
		// TickEnqueued measures granted demand, which shrinks when the
		// instance is downsized — a circular signal. Backlog is the
		// corrective: while the queue is not draining, demand goodput no
		// entry can satisfy, which makes pick fall through to the highest
		// goodput available within limits.
		if in.BacklogSecs > 3 {
			required = math.Inf(1)
		}
		// Reload-class changes (TP, model size, quantization) are the last
		// resort: only under persistent pressure or an emergency, and
		// rate-limited per instance. Otherwise the search is restricted to
		// free changes (frequency, batch).
		reloadOK := emergency || c.rowPressure[srv.Row] >= 2
		if reloadOK {
			if last, seen := c.lastReload[vm.Spec.ID]; seen && st.Now-last < reloadCooldown {
				reloadOK = false
			}
		}
		entry, ok := c.pick(st.ProfileFor(vm.Server), in.Config, maxFrac, maxServerW, qualityFloor, required, reloadOK)
		if !ok || entry.Config == in.Config {
			continue
		}
		if llm.ReconfigTime(in.Config, entry.Config) > 0 {
			c.lastReload[vm.Spec.ID] = st.Now
		}
		in.Reconfigure(entry.Config)
	}
}

// pick selects the operating point: among profile entries satisfying the
// thermal/power limits, quality floor, and (when reloads are gated) the
// no-reload restriction, the lowest-average-power entry whose goodput covers
// required demand; when none covers it, the highest-goodput entry.
// Entries are visited through pointers: ProfileEntry is large enough that
// copying it per iteration dominated the configurator's profile.
func (c *configurator) pick(p *llm.Profile, cur llm.Config, maxFrac, maxServerW, qualityFloor, required float64, reloadOK bool) (llm.ProfileEntry, bool) {
	feasible := func(e *llm.ProfileEntry) bool {
		return e.Goodput > 0 && e.Quality >= qualityFloor &&
			e.PeakGPUPowerFrac <= maxFrac && e.PeakServerPowerW <= maxServerW &&
			(reloadOK || llm.ReconfigTime(cur, e.Config) == 0)
	}
	// A quality floor of 1 (the non-emergency case) can only be met by the
	// precomputed full-quality subset; scanning just it preserves the
	// goodput ordering while skipping the reduced-quality majority.
	idx := p.FullQuality
	if qualityFloor < 1 {
		idx = nil
	}
	var best *llm.ProfileEntry
	if idx != nil {
		for _, i := range idx { // sorted by goodput descending
			e := &p.Entries[i]
			if e.Goodput < required {
				break // all later entries have even less goodput
			}
			if !feasible(e) {
				continue
			}
			if best == nil || e.Quality > best.Quality ||
				(e.Quality == best.Quality && (e.AvgServerPowerW < best.AvgServerPowerW ||
					(e.AvgServerPowerW == best.AvgServerPowerW && llm.ReconfigTime(cur, e.Config) < llm.ReconfigTime(cur, best.Config)))) {
				best = e
			}
		}
		if best != nil {
			return *best, true
		}
		for _, i := range idx {
			if e := &p.Entries[i]; feasible(e) {
				return *e, true
			}
		}
		return llm.ProfileEntry{}, false
	}
	for i := range p.Entries { // sorted by goodput descending
		e := &p.Entries[i]
		if e.Goodput < required {
			break // all later entries have even less goodput
		}
		if !feasible(e) {
			continue
		}
		// Among feasible entries prefer the highest quality — smaller
		// models are used "only when necessary" (§5.4) — then the lowest
		// average power, then the cheapest reconfiguration.
		if best == nil || e.Quality > best.Quality ||
			(e.Quality == best.Quality && (e.AvgServerPowerW < best.AvgServerPowerW ||
				(e.AvgServerPowerW == best.AvgServerPowerW && llm.ReconfigTime(cur, e.Config) < llm.ReconfigTime(cur, best.Config)))) {
			best = e
		}
	}
	if best != nil {
		return *best, true
	}
	// Demand cannot be covered within limits: serve as much as possible
	// with the highest-goodput feasible entry.
	for i := range p.Entries {
		if e := &p.Entries[i]; feasible(e) {
			return *e, true
		}
	}
	return llm.ProfileEntry{}, false
}
