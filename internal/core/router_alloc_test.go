package core

import (
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/trace"
)

// routeTestState builds a small cluster with 20 endpoint-0 instances placed,
// mirroring the routing micro-benchmark.
func routeTestState(t *testing.T) (*cluster.State, *TAPAS) {
	t.Helper()
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.Generate(trace.WorkloadConfig{
		Servers: len(dc.Servers), SaaSFraction: 0.5,
		Duration: time.Hour, Endpoints: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cluster.NewState(dc, w)
	pol := NewFull()
	if err := pol.Init(st); err != nil {
		t.Fatal(err)
	}
	placed := 0
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.SaaS && vm.Spec.Endpoint == 0 && placed < 20 {
			if err := st.Place(i, placed); err != nil {
				t.Fatal(err)
			}
			placed++
		}
	}
	st.Tick = time.Minute
	return st, pol
}

// TestRouteAllocFree locks in the zero-allocation steady state of the TAPAS
// routing hot path: after the first call has grown the router's reusable
// scratch, routing an endpoint's demand must not touch the heap. Both
// regimes are pinned — low demand exercises consolidation (including its
// stable sort), high demand the water-filling spread.
func TestRouteAllocFree(t *testing.T) {
	st, pol := routeTestState(t)
	ep := st.Work.Endpoints[0]
	for _, tc := range []struct {
		name           string
		prompt, output float64
	}{
		{"consolidation", 1e4, 2.5e3},
		{"water-filling", 1e6, 2.5e5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pol.Route(st, ep, tc.prompt, tc.output) // grow scratch once
			allocs := testing.AllocsPerRun(100, func() {
				pol.Route(st, ep, tc.prompt, tc.output)
			})
			if allocs != 0 {
				t.Errorf("route allocates %.1f times per call steady-state, want 0", allocs)
			}
		})
	}
}

// TestBaselineRouteAllocFree covers the comparison policy's hot path too, so
// Baseline-vs-TAPAS experiment times measure scheduling, not the allocator.
func TestBaselineRouteAllocFree(t *testing.T) {
	st, _ := routeTestState(t)
	ep := st.Work.Endpoints[0]
	pol := NewBaseline()
	pol.Route(st, ep, 1e5, 2.5e4)
	allocs := testing.AllocsPerRun(100, func() {
		pol.Route(st, ep, 1e5, 2.5e4)
	})
	if allocs != 0 {
		t.Errorf("baseline route allocates %.1f times per call steady-state, want 0", allocs)
	}
}
