package core

import (
	"math/rand/v2"
	"testing"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/regress"
	"github.com/tapas-sim/tapas/internal/thermal"
)

func buildTestProfiles(t *testing.T) (*layout.Datacenter, *Profiles) {
	t.Helper()
	dc, err := layout.New(layout.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfiles(dc)
	if err != nil {
		t.Fatal(err)
	}
	return dc, prof
}

func TestBuildProfilesInletAccuracy(t *testing.T) {
	dc, prof := buildTestProfiles(t)
	rng := rand.New(rand.NewPCG(21, 21))
	var pred, actual []float64
	for i := 0; i < 300; i++ {
		o := rng.Float64()*38 - 2
		l := rng.Float64()
		srv := dc.Servers[rng.IntN(len(dc.Servers))]
		pred = append(pred, prof.Inlet.Predict(srv.ID, o, l))
		actual = append(actual, thermal.InletTemp(srv, o, l, 0))
	}
	if mae := regress.MAE(pred, actual); mae > 1.0 {
		t.Errorf("profiled inlet MAE = %.3f °C, want < 1 (paper §5.1)", mae)
	}
}

func TestBuildProfilesGPUTempAccuracy(t *testing.T) {
	dc, prof := buildTestProfiles(t)
	rng := rand.New(rand.NewPCG(22, 22))
	var pred, actual []float64
	for i := 0; i < 500; i++ {
		srv := dc.Servers[rng.IntN(len(dc.Servers))]
		g := rng.IntN(srv.GPU.GPUsPerServer)
		inlet := 18 + rng.Float64()*14
		frac := rng.Float64()
		pred = append(pred, prof.GPUTemp.Predict(srv.ID, g, inlet, frac))
		actual = append(actual, thermal.GPUTemp(srv, g, inlet, frac))
	}
	if mae := regress.MAE(pred, actual); mae > 1.0 {
		t.Errorf("profiled GPU temp MAE = %.3f °C, want < 1 (paper Fig. 7)", mae)
	}
}

func TestBuildProfilesAirflowAndPower(t *testing.T) {
	dc, prof := buildTestProfiles(t)
	spec := layout.Spec(dc.Config.GPU)
	for _, l := range []float64{0, 0.3, 0.7, 1} {
		wantAF := thermal.Airflow(&spec, l)
		if got := prof.Airflow.Predict(l); got < wantAF-20 || got > wantAF+20 {
			t.Errorf("airflow at load %v = %v, want ≈ %v", l, got, wantAF)
		}
		wantP := power.ServerPowerAtUniformLoad(&spec, l)
		if got := prof.Power.Predict(l); got < wantP-150 || got > wantP+150 {
			t.Errorf("power at load %v = %v, want ≈ %v", l, got, wantP)
		}
	}
}

func TestProfilesDistinguishServers(t *testing.T) {
	dc, prof := buildTestProfiles(t)
	// Two servers with different heterogeneity must get different inlet
	// predictions — the model is per-server, not fleet-wide.
	hot, cold := -1, -1
	for _, srv := range dc.Servers {
		if hot == -1 || srv.InletOffsetC > dc.Servers[hot].InletOffsetC {
			hot = srv.ID
		}
		if cold == -1 || srv.InletOffsetC < dc.Servers[cold].InletOffsetC {
			cold = srv.ID
		}
	}
	if prof.Inlet.Predict(hot, 25, 0.5) <= prof.Inlet.Predict(cold, 25, 0.5) {
		t.Error("per-server inlet models must reflect spatial heterogeneity")
	}
}
