package core

import (
	"math"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/llm"
)

// SLO is the deadline-aware scheduling policy family for request-level
// replay. It keeps the full TAPAS stack for placement, binned routing,
// configuration and capping, and replaces per-request routing with
// admission control: a request is placed on the best-scoring instance whose
// projected time-to-first-token still fits inside the TTFT SLO (scaled by
// an admission slack), and shed outright when no instance can make the
// deadline — trading completed volume for the latency of what remains
// instead of blowing every deadline under overload.
//
// Scoring generalizes TAPAS's request router: queued seconds of work,
// discounted by a tunable affinity weight (TAPAS's fixed 0.5) for instances
// already holding the customer's KV-cache state, plus the thermal/power
// unsafe penalty. The EDF variant additionally switches per-instance queues
// to earliest-deadline-first prefill order.
//
// Both knobs are sweepable as campaign axes (sim.Scenario.SLOSched →
// TuneSLO): affinityWeight in (0, 1], admissionSlack > 0 where 1 admits
// exactly up to the SLO and larger values admit more optimistically.
type SLO struct {
	*TAPAS
	edf            bool
	affinityWeight float64
	admissionSlack float64
}

// NewSLO builds the deadline-aware admission policy; edf additionally
// selects earliest-deadline-first queue order on every instance.
func NewSLO(edf bool) *SLO {
	return &SLO{
		TAPAS:          NewFull(),
		edf:            edf,
		affinityWeight: affinityDiscount,
		admissionSlack: 1,
	}
}

// Name implements sim.Policy.
func (s *SLO) Name() string {
	if s.edf {
		return "SLO-EDF"
	}
	return "SLO-Admit"
}

// TuneSLO implements sim.SLOTunable: the engine forwards the scenario's
// SLOSched values once per run. Non-positive values keep the defaults
// (affinity weight 0.5, admission slack 1).
func (s *SLO) TuneSLO(affinityWeight, admissionSlack float64) {
	if affinityWeight > 0 {
		s.affinityWeight = affinityWeight
	}
	if admissionSlack > 0 {
		s.admissionSlack = admissionSlack
	}
}

// QueueDiscipline implements sim.RequestScheduler.
func (s *SLO) QueueDiscipline() llm.Discipline {
	if s.edf {
		return llm.EDF
	}
	return llm.FIFO
}

// AdmitRequest implements sim.RequestAdmitter. Each candidate instance gets
// the TAPAS routing score (queued work, affinity-discounted, unsafe-
// penalized) plus a projected TTFT: the wait the request has already accrued
// since arrival (the engine routes at tick start, so a request arriving just
// after a boundary carries most of a tick on the clock before any instance
// sees it), the queued seconds of work ahead of it, and its own prefill
// time. The request goes to the best-scoring instance whose projection fits
// slack × TTFT SLO; when none does — every candidate is overloaded or
// reloading, or the request is already too old — it is shed.
func (s *SLO) AdmitRequest(st *cluster.State, insts []*cluster.VM, req llm.Request) (int, bool) {
	throttleC := st.Spec.ThrottleTempC
	// The engine admits at the start of the current tick; st.Now is its end.
	waited := (st.Now - st.Tick - req.Arrival).Seconds()
	if waited < 0 {
		waited = 0
	}
	best, bestScore := -1, math.Inf(1)
	for i, vm := range insts {
		in := vm.Instance
		if in.Reloading() {
			continue
		}
		pr := llm.PrefillRate(in.Spec, in.Config)
		if pr <= 0 {
			continue
		}
		backlog := in.DemandSeconds()
		projTTFT := waited + backlog + float64(req.PromptTokens)/pr
		if projTTFT > s.admissionSlack*in.SLOs.TTFT.Seconds() {
			continue // this instance would already blow the deadline
		}
		score := backlog
		if in.HasAffinity(req.Customer) {
			score *= s.affinityWeight
		}
		srv := st.DC.Servers[vm.Server]
		rowUse := st.RowPowerW[srv.Row] / (st.Budget.RowLimitW(srv.Row) + 1)
		aisleUse := st.AisleDemandCFM[srv.Aisle] / (st.AisleLimitCFM(srv.Aisle) + 1)
		tempUse := st.ServerHotGPUTempC[vm.Server] / (throttleC - 2)
		if headroomOf(rowUse, aisleUse, tempUse) <= 0 {
			score += unsafePenaltySecs
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0, false // no instance can meet the deadline: shed
	}
	return best, true
}
