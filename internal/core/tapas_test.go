package core

import (
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
)

func runSmall(t *testing.T, pol sim.Policy, mutate func(*sim.Scenario)) *sim.Result {
	t.Helper()
	sc := sim.SmallScenario()
	if mutate != nil {
		mutate(&sc)
	}
	res, err := sim.Run(sc, pol)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Options{
		"Baseline":     {},
		"Place":        {Place: true},
		"Route":        {Route: true},
		"Config":       {Config: true},
		"Place+Route":  {Place: true, Route: true},
		"Place+Config": {Place: true, Config: true},
		"Route+Config": {Route: true, Config: true},
		"TAPAS":        {Place: true, Route: true, Config: true},
	}
	for want, opts := range cases {
		if got := New(opts).Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", opts, got, want)
		}
	}
	if NewBaseline().Name() != "Baseline" {
		t.Error("Baseline name wrong")
	}
}

// TestTAPASBeatsBaseline is the repo's headline check: on the paper's
// real-cluster scenario TAPAS must reduce peak row power by roughly 20%
// (§5.2 reports 20%) and lower the maximum temperature, while maintaining
// SLOs and result quality.
func TestTAPASBeatsBaseline(t *testing.T) {
	base := runSmall(t, NewBaseline(), nil)
	tapas := runSmall(t, NewFull(), nil)

	powerRed := 1 - tapas.PeakPower()/base.PeakPower()
	if powerRed < 0.10 {
		t.Errorf("TAPAS peak power reduction = %.1f%%, want ≥ 10%% (paper: ≈20%%)", powerRed*100)
	}
	if tapas.MaxTemp() >= base.MaxTemp() {
		t.Errorf("TAPAS max temp %.1f must beat baseline %.1f", tapas.MaxTemp(), base.MaxTemp())
	}
	if tapas.SLOViolationRate() > 0.01 {
		t.Errorf("TAPAS SLO violations = %.3f, want ≈ 0 under normal operation", tapas.SLOViolationRate())
	}
	if tapas.AvgQuality() < 0.999 {
		t.Errorf("TAPAS quality = %.3f, must be unaffected under normal operation", tapas.AvgQuality())
	}
	if tapas.ServiceRate() < 0.99 {
		t.Errorf("TAPAS service rate = %.3f, must keep up with demand", tapas.ServiceRate())
	}
}

// TestVariantOrdering checks the ablation structure of Fig. 20: every single
// lever improves on the baseline, and the full system is at least as good as
// the best single lever on peak power.
func TestVariantOrdering(t *testing.T) {
	results := map[string]*sim.Result{}
	for _, opts := range []Options{
		{},
		{Place: true},
		{Route: true},
		{Config: true},
		{Place: true, Route: true, Config: true},
	} {
		pol := New(opts)
		results[pol.Name()] = runSmall(t, pol, nil)
	}
	base := results["Baseline"].PeakPower()
	for _, name := range []string{"Place", "Route", "Config"} {
		if results[name].PeakPower() >= base {
			t.Errorf("%s peak power %.0f should beat Baseline %.0f", name, results[name].PeakPower(), base)
		}
	}
	tapas := results["TAPAS"].PeakPower()
	for _, name := range []string{"Place", "Route", "Config"} {
		if tapas > results[name].PeakPower()*1.02 {
			t.Errorf("TAPAS %.0f should be at least as good as %s %.0f", tapas, name, results[name].PeakPower())
		}
	}
}

// TestOversubscription reproduces the Fig. 21 shape at one point: at 40%
// oversubscription the Baseline caps heavily while TAPAS stays below ≈1% of
// server-time.
func TestOversubscription(t *testing.T) {
	over := func(sc *sim.Scenario) { sc.Oversubscribe = 0.4 }
	base := runSmall(t, NewBaseline(), over)
	tapas := runSmall(t, NewFull(), over)
	baseCap := base.ThrottleFrac() + base.PowerCapFrac()
	tapasCap := tapas.ThrottleFrac() + tapas.PowerCapFrac()
	if baseCap <= tapasCap {
		t.Errorf("baseline capping %.4f should exceed TAPAS %.4f at 40%% oversubscription", baseCap, tapasCap)
	}
	// On this 1-hour run the convergence transient of the first few ticks
	// dominates; the week-scale Fig. 21 experiment measures the steady
	// state (<0.7% in the paper).
	if tapasCap > 0.08 {
		t.Errorf("TAPAS capping fraction = %.4f at 40%% oversubscription, want small (paper: <0.7%% steady-state)", tapasCap)
	}
}

// TestNoCappingWithoutOversubscription: the None point of Fig. 21.
func TestNoCappingWithoutOversubscription(t *testing.T) {
	for _, pol := range []sim.Policy{NewBaseline(), NewFull()} {
		res := runSmall(t, pol, nil)
		if res.PowerCapSrvTicks > 0 {
			t.Errorf("%s: power capping without oversubscription", res.Policy)
		}
	}
}

// TestPowerEmergency reproduces Table 2's power column shape: under a UPS
// failure (75% capacity) the Baseline caps uniformly (hurting performance
// fleet-wide) while TAPAS shields IaaS and trades SaaS quality instead.
func TestPowerEmergency(t *testing.T) {
	withFailure := func(sc *sim.Scenario) {
		sc.Workload.DemandScale = 1.0
		sc.Workload.Occupancy = 0.97
		sc.Failures = []sim.FailureEvent{{Kind: sim.PowerFailure, At: 10 * time.Minute, Duration: 45 * time.Minute}}
	}
	base := runSmall(t, NewBaseline(), withFailure)
	tapas := runSmall(t, NewFull(), withFailure)

	if base.IaaSPerfLoss() <= 0.005 {
		t.Skipf("emergency too mild to cap baseline IaaS (loss %.4f)", base.IaaSPerfLoss())
	}
	if tapas.IaaSPerfLoss() > base.IaaSPerfLoss()*0.5 {
		t.Errorf("TAPAS IaaS perf loss %.3f should be far below baseline %.3f (Table 2: 0%% vs 35%%)",
			tapas.IaaSPerfLoss(), base.IaaSPerfLoss())
	}
	// TAPAS may trade quality (smaller models) — bounded per Table 2.
	if q := tapas.AvgQuality(); q < 0.85 {
		t.Errorf("TAPAS emergency quality = %.3f, want ≥ 0.85 (Table 2: ≤12%% impact)", q)
	}
	// Baseline never touches quality.
	if base.AvgQuality() < 0.999 {
		t.Error("baseline must not trade quality")
	}
}

// TestCoolingEmergency reproduces Table 2's thermal column shape.
func TestCoolingEmergency(t *testing.T) {
	withFailure := func(sc *sim.Scenario) {
		sc.Workload.DemandScale = 1.3
		sc.Workload.Occupancy = 0.97
		sc.Failures = []sim.FailureEvent{{Kind: sim.CoolingFailure, At: 10 * time.Minute, Duration: 45 * time.Minute}}
	}
	base := runSmall(t, NewBaseline(), withFailure)
	tapas := runSmall(t, NewFull(), withFailure)
	baseHurt := base.IaaSPerfLoss()
	if baseHurt <= 0.005 {
		t.Skipf("emergency too mild to cap baseline IaaS (loss %.4f)", baseHurt)
	}
	if tapas.IaaSPerfLoss() > baseHurt*0.6 {
		t.Errorf("TAPAS IaaS perf loss %.3f should be well below baseline %.3f during cooling emergency",
			tapas.IaaSPerfLoss(), baseHurt)
	}
}

// TestTAPASFallbackPlacement: when the validator rejects everything (tiny
// cluster, hot VM), TAPAS still places via the packing fallback.
func TestTAPASFallbackPlacement(t *testing.T) {
	res := runSmall(t, NewFull(), func(sc *sim.Scenario) {
		sc.Workload.Occupancy = 1.0 // saturate so the validator runs out of slack
	})
	if res.PlacementRejects > res.Ticks {
		t.Errorf("too many placement rejects (%d); fallback not engaging", res.PlacementRejects)
	}
}

// TestOverrunCountersRecoverOnLongHorizons is the regression wall for the
// monotone-escalation bug: the consecutive-violation counters must reset once
// a row/aisle stays under budget for a full recovery window, so on long
// horizons an isolated violation long after an early sustained one still gets
// the configurator's grace tick instead of capping immediately forever.
func TestOverrunCountersRecoverOnLongHorizons(t *testing.T) {
	st, _ := newComponentState(t)
	pol := New(Options{Config: true})
	if err := pol.Init(st); err != nil {
		t.Fatal(err)
	}
	// One IaaS VM in row 0 gives selective capping a target.
	vmID := -1
	for i, vm := range st.VMs {
		if vm.Spec.Kind == trace.IaaS {
			vmID = i
			break
		}
	}
	srv := st.DC.Rows[0].Servers[0].ID
	if err := st.Place(vmID, srv); err != nil {
		t.Fatal(err)
	}
	st.ServerPowerW[srv] = 5000 // well above idle: cappable dynamic power

	limit := st.Budget.RowLimitW(0)
	capRow := func() { pol.CapRow(st, 0, limit*1.2, limit) }

	capRow()
	if st.ServerFreqCap[srv] != 1 {
		t.Fatal("first violation must get a grace tick")
	}
	capRow()
	if st.ServerFreqCap[srv] >= 1 {
		t.Fatal("second consecutive violation must cap")
	}

	// The violation clears: caps recover (the engine's job, simulated here)
	// and the row sits under budget for a full recovery window of ticks.
	st.ServerFreqCap[srv] = 1
	st.RowPowerW[0] = limit * 0.5
	pol.aisleOverRuns[0] = 5
	for i := 0; i < overrunRecoveryTicks; i++ {
		pol.Configure(st)
	}
	if pol.rowOverRuns[0] != 0 || pol.aisleOverRuns[0] != 0 {
		t.Fatalf("counters after recovery window: row %d aisle %d, want 0/0",
			pol.rowOverRuns[0], pol.aisleOverRuns[0])
	}

	// A later isolated violation gets the grace tick again — before the fix
	// the ratcheted counter capped it immediately.
	capRow()
	if st.ServerFreqCap[srv] < 1 {
		t.Fatal("overrun counter did not recover: isolated violation capped without a grace tick")
	}
	capRow()
	if st.ServerFreqCap[srv] >= 1 {
		t.Fatal("sustained violation must still cap after recovery")
	}
}

func TestResetOverruns(t *testing.T) {
	pol := NewFull()
	_ = runSmall(t, pol, func(sc *sim.Scenario) { sc.Oversubscribe = 0.4 })
	pol.ResetOverruns()
	for _, v := range pol.rowOverRuns {
		if v != 0 {
			t.Fatal("rowOverRuns not reset")
		}
	}
	for _, v := range pol.aisleOverRuns {
		if v != 0 {
			t.Fatal("aisleOverRuns not reset")
		}
	}
}
