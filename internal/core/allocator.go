package core

import (
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/trace"
)

// allocator implements TAPAS workload placement (§4.1) as the three rules of
// §4.5: a validator filtering aisles/rows that would exceed airflow or power
// envelopes at predicted peak, a temperature preference (IaaS → cool
// servers, SaaS → warm servers), and an IaaS/SaaS balance preference.
type allocator struct {
	prof *Profiles

	// Per-placement scratch, reused across calls: placements recur every
	// tick while arrivals are pending, so the validator's per-row/per-aisle
	// projections and the candidate list must not allocate steadily.
	rowPeakW     []float64
	aislePeakCFM []float64
	cands        []placeCandidate

	// rowTplPeakW is the hour-of-week template peak per row, rebuilt from
	// the rolling row-power telemetry (power.BuildTemplateRing over
	// cluster.State.RowPowerHist) on a templateRefresh cadence. −1 while a
	// row has less than a week of history — the validator then relies on
	// the per-VM model projections alone, exactly as it did before
	// templates existed (§4.1: peak assumptions until history accrues).
	rowTplPeakW []float64
	rowTplAt    time.Duration
	rowTplInit  bool
}

// templateRefresh is how often the allocator rebuilds row power templates
// from telemetry; template shape drifts slowly (diurnal/weekly), so rebuilds
// are cheap background maintenance, not per-placement work.
const templateRefresh = 6 * time.Hour

// templatePercentile matches the paper's conservative row templates
// (Fig. 14: P99 underpredicts < 4% of row-hours).
const templatePercentile = 99

// templateSamplesPerHour converts the history resolution to template
// buckets.
const templateSamplesPerHour = int(time.Hour / cluster.HistoryRes)

// refreshRowTemplates rebuilds the per-row template peaks when stale.
func (a *allocator) refreshRowTemplates(st *cluster.State) {
	if a.rowTplInit && st.Now-a.rowTplAt < templateRefresh {
		return
	}
	if a.rowTplPeakW == nil {
		a.rowTplPeakW = make([]float64, len(st.DC.Rows))
	}
	a.rowTplInit = true
	a.rowTplAt = st.Now
	for row := range a.rowTplPeakW {
		tpl, err := power.BuildTemplateRing(st.RowPowerHist[row], templateSamplesPerHour, templatePercentile)
		if err != nil {
			a.rowTplPeakW[row] = -1 // under a week of history
			continue
		}
		a.rowTplPeakW[row] = tpl.Peak()
	}
}

type placeCandidate struct {
	server   int
	predTemp float64
	row      int
	model    layout.GPUModel
}

// tempMargin keeps predicted GPU temperature this far below the throttle
// threshold when admitting SaaS VMs onto warm servers.
const tempMargin = 2.0

func (a *allocator) place(st *cluster.State, vm *cluster.VM) (int, bool) {
	estLoad := st.EstimateVMPeakLoad(vm.Spec)
	// Per-generation projections: a candidate VM draws (and blows) more on
	// an H100 server than on an A100 one, so the validator evaluates the
	// placement with the models of each candidate's generation. Uniform
	// fleets index one fit everywhere.
	var newPeakWBy, newPeakCFMBy, idleWBy, idleCFMBy [layout.GPUModelCount]float64
	for m := range newPeakWBy {
		gm := layout.GPUModel(m)
		newPeakWBy[m] = a.prof.PowerFor(gm).Predict(estLoad)
		newPeakCFMBy[m] = a.prof.AirflowFor(gm).Predict(estLoad)
		idleWBy[m] = a.prof.PowerFor(gm).Predict(0)
		idleCFMBy[m] = a.prof.AirflowFor(gm).Predict(0)
	}
	a.refreshRowTemplates(st)

	// Validator: predicted peak power per row / airflow per aisle with the
	// candidate VM added. With under a week of history the paper assumes
	// peak-load conditions, which is what EstimateVMPeakLoad degrades to.
	if a.rowPeakW == nil {
		a.rowPeakW = make([]float64, len(st.DC.Rows))
		a.aislePeakCFM = make([]float64, len(st.DC.Aisles))
	}
	rowPeakW, aislePeakCFM := a.rowPeakW, a.aislePeakCFM
	for i := range rowPeakW {
		rowPeakW[i] = 0
	}
	for i := range aislePeakCFM {
		aislePeakCFM[i] = 0
	}
	for _, srv := range st.DC.Servers {
		load := 0.0
		if vmID := st.ServerVM[srv.ID]; vmID != -1 {
			load = st.EstimateVMPeakLoad(st.VMs[vmID].Spec)
		}
		rowPeakW[srv.Row] += a.prof.PowerFor(srv.GPU.Model).Predict(load)
		aislePeakCFM[srv.Aisle] += a.prof.AirflowFor(srv.GPU.Model).Predict(load)
	}
	// Once a row has a week of telemetry, its observed template peak floors
	// the model projection: rows whose history already shows draw near the
	// envelope stay closed to new load even when per-VM estimates are
	// optimistic (the paper's template-based row prediction, Fig. 14a).
	for row := range rowPeakW {
		if tpl := a.rowTplPeakW[row]; tpl > rowPeakW[row] {
			rowPeakW[row] = tpl
		}
	}

	// Predicted hottest-GPU temperature per free server at the VM's load,
	// under reference hot conditions (placement is a long-horizon choice).
	refOutside := st.OutsideC + 4
	if refOutside < 30 {
		refOutside = 30
	}
	cands := a.cands[:0]
	for _, id := range st.FreeServers() {
		srv := st.DC.Servers[id]
		m := srv.GPU.Model
		if rowPeakW[srv.Row]-idleWBy[m]+newPeakWBy[m] > st.DC.Rows[srv.Row].ProvPowerW {
			continue
		}
		if aislePeakCFM[srv.Aisle]-idleCFMBy[m]+newPeakCFMBy[m] > st.DC.Aisles[srv.Aisle].ProvAirflowCFM {
			continue
		}
		inlet := a.prof.Inlet.Predict(id, refOutside, 0.8)
		temp := 0.0
		for g := 0; g < st.GPUsPerServer; g++ {
			if t := a.prof.GPUTemp.Predict(id, g, inlet, estLoad); t > temp {
				temp = t
			}
		}
		cands = append(cands, placeCandidate{server: id, predTemp: temp, row: srv.Row, model: m})
	}
	a.cands = cands // keep the grown buffer for the next placement
	if len(cands) == 0 {
		return 0, false
	}

	// Temperature preference (rule 2). The "cold group" for a VM is the set
	// of servers whose projected temperature — at the VM's own predicted
	// load — is within coldBandC of the best achievable. IaaS VMs must land
	// in their cold group, but take its *warmest* member, so the very
	// coolest servers remain available for hotter customers arriving later
	// (hotter VMs project hotter everywhere, hence get the cool hardware).
	// SaaS VMs prefer the warmest server that stays safely below throttle.
	minProj := cands[0].predTemp
	for _, c := range cands[1:] {
		if c.predTemp < minProj {
			minProj = c.predTemp
		}
	}
	throttleC := st.Spec.ThrottleTempC
	inGroup := func(temp float64) bool {
		if vm.Spec.Kind == trace.IaaS {
			return temp <= minProj+coldBandC
		}
		return temp <= throttleC-tempMargin
	}

	best, bestScore := -1, 1<<30
	bestTemp := 0.0
	for _, c := range cands {
		tempScore := 1
		if inGroup(c.predTemp) {
			tempScore = 0
		}
		// Power preference: avoid concentrating synchronous peaks — prefer
		// rows whose predicted post-placement peak stays low (Insight #3:
		// placement relieves hotspots and smooths power spikes).
		peakFrac := (rowPeakW[c.row] - idleWBy[c.model] + newPeakWBy[c.model]) / st.DC.Rows[c.row].ProvPowerW
		var powScore int
		switch {
		case peakFrac <= 0.75:
			powScore = 0
		case peakFrac <= 0.85:
			powScore = 1
		case peakFrac <= 0.95:
			powScore = 2
		default:
			powScore = 3
		}
		// Balance preference (rule 3): prefer rows where this VM kind is
		// under-represented. diff = other-kind count − same-kind count.
		iaas, saas := st.RowMix(c.row)
		var balScore int
		diff := saas - iaas
		if vm.Spec.Kind == trace.SaaS {
			diff = iaas - saas
		}
		switch {
		case diff > 1: // other kind heavy: adding here improves balance
			balScore = 0
		case diff >= -1: // balanced
			balScore = 1
		default: // already heavy in this kind
			balScore = 2
		}
		score := tempScore*16 + powScore*4 + balScore
		better := score < bestScore
		if score == bestScore {
			if tempScore == 0 {
				// Within the preferred group take the warmest member (both
				// kinds): it conserves the coolest servers.
				better = c.predTemp > bestTemp
			} else {
				// Outside the group, degrade gracefully to the coolest.
				better = c.predTemp < bestTemp
			}
		}
		if better {
			best, bestScore, bestTemp = c.server, score, c.predTemp
		}
	}
	return best, best != -1
}

// coldBandC is the projected-temperature slack defining a VM's cold group.
const coldBandC = 2.0
