package core

import (
	"testing"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
)

// TestPowerGovCapsOverBudgetEndpoint pins the closed loop end to end on
// component state: an endpoint drawing near TDP against a 50% budget is
// walked under a frequency cap, and once the draw falls below budget the
// caps recover monotonically to uncapped — gradual in both directions.
func TestPowerGovCapsOverBudgetEndpoint(t *testing.T) {
	st, _ := newComponentState(t)
	pol := NewPowerGov(false)
	if err := pol.Init(st); err != nil {
		t.Fatal(err)
	}
	vms := setupEndpoint(t, st, 4)
	pol.TunePowerGov(0.5, 0.35)
	setDraw := func(powerW, gpuFrac float64) {
		for _, vm := range vms {
			st.ServerPowerW[vm.Server] = powerW
			fr := st.GPUFracs(vm.Server)
			for g := range fr {
				fr[g] = gpuFrac
			}
		}
	}
	// Near-TDP draw, twice the budget: the governor must engage.
	setDraw(6400, 1)
	for i := 0; i < 60; i++ {
		pol.Configure(st)
	}
	for _, vm := range vms {
		if cap := st.ServerFreqCap[vm.Server]; cap >= 1 {
			t.Fatalf("server %d uncapped (%.3f) after 60 over-budget ticks", vm.Server, cap)
		}
		if cap := st.ServerFreqCap[vm.Server]; cap < minFreqCap {
			t.Fatalf("server %d capped below the policy floor: %.3f", vm.Server, cap)
		}
	}
	// Idle draw, well under budget: caps must release gradually, never
	// overshooting downward, and reach uncapped.
	setDraw(1000, 0.1)
	prev := st.ServerFreqCap[vms[0].Server]
	for i := 0; i < 300; i++ {
		pol.Configure(st)
		cur := st.ServerFreqCap[vms[0].Server]
		if cur < prev-1e-12 {
			t.Fatalf("tick %d: cap regressed %.6f → %.6f during recovery", i, prev, cur)
		}
		prev = cur
	}
	if prev < 0.999 {
		t.Errorf("cap recovered only to %.4f, want ~1", prev)
	}
}

// TestPowerGovOnlyTouchesOccupiedServers pins the sim.Policy capping
// contract the dirty-set engine optimization relies on: the governor must
// never move the frequency cap of a server without an instance.
func TestPowerGovOnlyTouchesOccupiedServers(t *testing.T) {
	st, _ := newComponentState(t)
	pol := NewPowerGov(false)
	if err := pol.Init(st); err != nil {
		t.Fatal(err)
	}
	vms := setupEndpoint(t, st, 2)
	occupied := map[int]bool{}
	for _, vm := range vms {
		occupied[vm.Server] = true
		st.ServerPowerW[vm.Server] = 6400
		fr := st.GPUFracs(vm.Server)
		for g := range fr {
			fr[g] = 1
		}
	}
	pol.TunePowerGov(0.3, 0.5)
	for i := 0; i < 20; i++ {
		pol.Configure(st)
	}
	for id, cap := range st.ServerFreqCap {
		if !occupied[id] && cap != 1 {
			t.Errorf("unoccupied server %d cap moved to %.3f", id, cap)
		}
	}
}

// TestEnergyRoutingPrefersEfficientGeneration pins the energy-aware router
// on a heterogeneous pair: with equal (idle) backlogs the request goes to
// the generation with lower estimated energy per token, and a large enough
// backlog on the efficient instance flips the decision — energy preference
// never starves latency.
func TestEnergyRoutingPrefersEfficientGeneration(t *testing.T) {
	st, _ := newComponentState(t)
	// Re-arm one target server as the other GPU generation before placement,
	// so its instance profile (llm.NewInstance copies the server's GPU spec)
	// belongs to that generation.
	rowSize := len(st.DC.Rows[0].Servers)
	st.DC.Servers[rowSize].GPU = layout.Spec(layout.H100)
	pol := NewPowerGov(true)
	if err := pol.Init(st); err != nil {
		t.Fatal(err)
	}
	vms := setupEndpoint(t, st, 2) // servers 0 (A100) and rowSize (H100)
	j0, j1 := energyPerTokenEst(st, vms[0]), energyPerTokenEst(st, vms[1])
	if j0 == j1 {
		t.Fatalf("generations estimate identical energy per token (%.3f J); test fleet not heterogeneous", j0)
	}
	cheap, costly := 0, 1
	if j0 > j1 {
		cheap, costly = 1, 0
	}
	req := llm.Request{PromptTokens: 500, OutputTokens: 125}
	idx, ok := pol.RouteRequest(st, vms, req)
	if !ok || idx != cheap {
		t.Errorf("idle instances: routed to %d, want efficient candidate %d (%.3f vs %.3f J/token)",
			idx, cheap, energyPerTokenEst(st, vms[cheap]), energyPerTokenEst(st, vms[costly]))
	}
	// Pile an hour of work onto the efficient instance: backlog must win.
	vms[cheap].Instance.EnqueueBulk(4e6, 1e6)
	idx, ok = pol.RouteRequest(st, vms, req)
	if !ok || idx != costly {
		t.Errorf("saturated efficient instance: routed to %d, want %d", idx, costly)
	}
}

// TestPowerGovEndpointMonitorIgnoresEmptyEndpoints pins that endpoints with
// no placed instances neither panic nor perturb controller state for the
// active ones.
func TestPowerGovEndpointMonitorIgnoresEmptyEndpoints(t *testing.T) {
	st, _ := newComponentState(t)
	pol := NewPowerGov(false)
	if err := pol.Init(st); err != nil {
		t.Fatal(err)
	}
	// No placements at all: govern must be a no-op.
	pol.Configure(st)
	for id, cap := range st.ServerFreqCap {
		if cap != 1 {
			t.Fatalf("server %d capped on an empty cluster (%.3f)", id, cap)
		}
	}
}
