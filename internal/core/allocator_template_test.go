package core

import (
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/trace"
)

// TestAllocatorRowTemplateFloor pins the runtime template reader: once a
// row's rolling power telemetry spans a full week, the allocator's validator
// floors its projected peak with the hour-of-week template peak
// (power.BuildTemplateRing over State.RowPowerHist), closing rows whose
// observed draw already crowds the envelope.
func TestAllocatorRowTemplateFloor(t *testing.T) {
	st, prof := newComponentState(t)
	alloc := &allocator{prof: prof}
	// A week of telemetry: row 0 historically draws right at its provisioned
	// envelope, row 1 sits far below it.
	week := int(7 * 24 * time.Hour / cluster.HistoryRes)
	hot := st.DC.Rows[0].ProvPowerW
	for i := 0; i < week; i++ {
		st.RowPowerHist[0].Push(hot)
		st.RowPowerHist[1].Push(1000)
	}
	st.Now = time.Minute
	vm := findVM(st, trace.IaaS)
	srv, ok := alloc.place(st, vm)
	if !ok {
		t.Fatal("placement failed with a whole row of capacity available")
	}
	if alloc.rowTplPeakW[0] < hot*0.99 {
		t.Errorf("row 0 template peak = %.0f W, want ≈ %.0f from a week of history", alloc.rowTplPeakW[0], hot)
	}
	if row := st.DC.Servers[srv].Row; row != 1 {
		t.Errorf("VM placed in row %d; row 0's template history shows it at its power envelope", row)
	}
}

// TestAllocatorRowTemplateNeedsWeek verifies templates stay inert with under
// a week of history: the validator then relies on model projections alone,
// preserving pre-template behavior.
func TestAllocatorRowTemplateNeedsWeek(t *testing.T) {
	st, prof := newComponentState(t)
	alloc := &allocator{prof: prof}
	halfWeek := int(7 * 24 * time.Hour / cluster.HistoryRes / 2)
	for i := 0; i < halfWeek; i++ {
		st.RowPowerHist[0].Push(st.DC.Rows[0].ProvPowerW * 2)
		st.RowPowerHist[1].Push(st.DC.Rows[1].ProvPowerW * 2)
	}
	st.Now = time.Minute
	if _, ok := alloc.place(st, findVM(st, trace.IaaS)); !ok {
		t.Fatal("placement failed")
	}
	for row, peak := range alloc.rowTplPeakW {
		if peak != -1 {
			t.Errorf("row %d template peak = %v, want -1 (unavailable) with half a week of history", row, peak)
		}
	}
}
