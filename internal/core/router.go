package core

import (
	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/trace"
)

// router implements TAPAS request routing (§4.2): it estimates the risk of
// violating the three operational limits — aisle airflow, row power, server
// temperature — filters out instances with high violation risk, then applies
// consolidation (fill warm instances first, letting others idle) followed by
// headroom-proportional spreading. KV-cache affinity is approximated in the
// fluid model by the stable consolidation order, which keeps a customer's
// demand on the same instances across ticks.
//
// route runs once per endpoint per tick, so its working sets (scored
// instances, consolidation order, grants) live on the router struct and are
// reused across calls: steady-state routing performs no heap allocations.
type router struct {
	prof *Profiles

	scored []routeScored
	order  []int
	grants []float64
}

type routeScored struct {
	vm       *cluster.VM
	headroom float64 // 0 = at risk
	capacity float64 // tokens this tick
	hash     uint64  // consolidation rank, precomputed once per scoring
}

// riskGate is the utilization of a limit beyond which no further demand is
// routed toward it.
const riskGate = 0.97

// routeHash mixes an endpoint and server ID into a stable consolidation
// rank (splitmix64 finalizer).
func routeHash(endpoint, server int) uint64 {
	z := uint64(endpoint)*0x9e3779b97f4a7c15 + uint64(server)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *router) route(st *cluster.State, ep trace.EndpointSpec, prompt, output float64) {
	insts := st.EndpointInstances(ep.ID)
	if len(insts) == 0 {
		return
	}
	throttleC := st.Spec.ThrottleTempC
	tickSecs := st.Tick.Seconds()
	scoredInsts := r.scored[:0]
	aggCap := 0.0 // serving capacity of instances with any headroom
	for _, vm := range insts {
		in := vm.Instance
		if in.Reloading() {
			scoredInsts = append(scoredInsts, routeScored{vm: vm, hash: routeHash(ep.ID, vm.Server)})
			continue
		}
		srv := st.DC.Servers[vm.Server]
		rowUse := st.RowPowerW[srv.Row] / (st.Budget.RowLimitW(srv.Row) + 1)
		aisleUse := st.AisleDemandCFM[srv.Aisle] / (st.AisleLimitCFM(srv.Aisle) + 1)
		tempUse := st.ServerHotGPUTempC[vm.Server] / (throttleC - 2)
		head := headroomOf(rowUse, aisleUse, tempUse)
		capTokens := 0.0
		if g, ok := in.ConfigGoodput(st.ProfileFor(vm.Server)); ok {
			capTokens = g * tickSecs
		}
		scoredInsts = append(scoredInsts, routeScored{vm: vm, headroom: head, capacity: capTokens, hash: routeHash(ep.ID, vm.Server)})
		if head > 0 {
			aggCap += capTokens
		}
	}
	r.scored = scoredInsts // keep the grown buffer for the next call

	demand := prompt + output
	promptShare := prompt / demand

	// Low-load regime: consolidate onto a stable subset of safe instances
	// (energy saving + KV-cache affinity: the same instances keep serving
	// the same customers across ticks), letting the rest idle.
	if demand < 0.5*aggCap {
		if cap(r.order) < len(scoredInsts) {
			r.order = make([]int, 0, cap(scoredInsts))
		}
		order := r.order[:len(scoredInsts)]
		for i := range order {
			order[i] = i
		}
		consolidationSort(order, scoredInsts)
		remaining := demand
		for _, idx := range order {
			if remaining <= 0 {
				return
			}
			s := scoredInsts[idx]
			if s.headroom <= 0.2 || s.capacity <= 0 {
				continue
			}
			take := s.capacity * 0.6
			if take > remaining {
				take = remaining
			}
			s.vm.Instance.EnqueueBulk(take*promptShare, take*(1-promptShare))
			remaining -= take
		}
		if remaining <= 0 {
			return
		}
		demand = remaining // overflow falls through to spreading
	}

	// High-load regime: water-fill proportional to capacity × headroom², so
	// instances on power- or thermally-stressed infrastructure receive
	// quadratically less demand — but never grant any instance more than it
	// can serve, redistributing the clamped excess over remaining slack.
	if cap(r.grants) < len(scoredInsts) {
		r.grants = make([]float64, 0, cap(scoredInsts))
	}
	grants := r.grants[:len(scoredInsts)]
	for i := range grants {
		grants[i] = 0
	}
	totalW := 0.0
	for _, s := range scoredInsts {
		totalW += s.capacity * s.headroom * s.headroom
	}
	remaining := demand
	if totalW > 0 {
		for i, s := range scoredInsts {
			w := s.capacity * s.headroom * s.headroom / totalW
			g := demand * w
			if max := s.capacity * 0.95; g > max {
				g = max
			}
			grants[i] = g
			remaining -= g
		}
		// Second pass: pour the clamped excess into remaining serving slack.
		if remaining > 1e-9 {
			slackTotal := 0.0
			for i, s := range scoredInsts {
				if s.headroom > 0 {
					slackTotal += maxf(s.capacity*0.95-grants[i], 0)
				}
			}
			if slackTotal > 0 {
				for i, s := range scoredInsts {
					if s.headroom <= 0 {
						continue
					}
					add := maxf(s.capacity*0.95-grants[i], 0) / slackTotal * remaining
					if add > 0 {
						grants[i] += add
					}
				}
				remaining = 0
			}
		}
	}
	// Whatever still remains (fleet overloaded or everyone at risk) is
	// split evenly — serving beats dropping.
	if remaining > 1e-9 {
		live := 0
		for _, s := range scoredInsts {
			if !s.vm.Instance.Reloading() {
				live++
			}
		}
		if live > 0 {
			even := remaining / float64(live)
			for i, s := range scoredInsts {
				if !s.vm.Instance.Reloading() {
					grants[i] += even
				}
			}
		}
	}
	for i, s := range scoredInsts {
		if grants[i] > 0 {
			s.vm.Instance.EnqueueBulk(grants[i]*promptShare, grants[i]*(1-promptShare))
		}
	}
}

// headroomOf folds the three limit utilizations into one headroom score:
// 0 when any limit sits beyond the risk gate, otherwise the smallest
// normalized distance to the gate.
func headroomOf(rowUse, aisleUse, tempUse float64) float64 {
	head := 1.0
	for _, use := range [3]float64{rowUse, aisleUse, tempUse} {
		if use >= riskGate {
			return 0
		}
		if h := (riskGate - use) / riskGate; h < head {
			head = h
		}
	}
	return head
}

// consolidationSort stably orders instance indexes for the low-load regime:
// serving-capable first, then instances already busy (KV reuse), ties broken
// by the per-endpoint route hash. It is a hand-rolled insertion sort because
// sort.SliceStable allocates its closure header on every call and this runs
// per endpoint per tick; endpoint fleets are tens of instances, where
// insertion sort is also the faster algorithm.
func consolidationSort(order []int, scored []routeScored) {
	less := func(a, b int) bool {
		ia, ib := scored[a], scored[b]
		if (ia.headroom > 0) != (ib.headroom > 0) {
			return ia.headroom > 0
		}
		// Sticky toward instances already serving (KV reuse). Ties
		// break on a per-endpoint hash of the server, which is stable
		// across ticks (affinity) but decorrelated across endpoints —
		// otherwise every endpoint would pile onto the same rows and
		// oscillate against the shared telemetry.
		ba, bb := ia.vm.Instance.BusyFrac > 0.15, ib.vm.Instance.BusyFrac > 0.15
		if ba != bb {
			return ba
		}
		return ia.hash < ib.hash
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
