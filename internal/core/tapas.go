package core

import (
	"math"
	"strings"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/trace"
)

// Options selects which TAPAS levers are active; all three is the full
// system, none degenerates to the Baseline. The six partial combinations are
// the paper's ablation variants (Fig. 20).
type Options struct {
	Place  bool
	Route  bool
	Config bool
}

// TAPAS is the thermal- and power-aware scheduling policy (§4).
type TAPAS struct {
	opts Options
	base *Baseline

	prof          *Profiles
	alloc         *allocator
	route         *router
	config        *configurator
	migrate       *migrator
	rowOverRuns   []int // consecutive over-budget ticks per row
	aisleOverRuns []int
	// rowUnderRuns/aisleUnderRuns count consecutive under-budget ticks so
	// the escalation counters above reset after a full recovery window —
	// without the reset they are monotone within a run, and on week-long
	// horizons one early sustained violation makes every later isolated
	// violation skip the configurator's grace tick forever.
	rowUnderRuns   []int
	aisleUnderRuns []int

	// Per-tick scratch reused across capping calls (steady-state capping
	// performs no heap allocations).
	capIDs  []int
	capIaaS []int
	capSaaS []int

	// Migrations counts executed SaaS migrations (§4.1) for introspection.
	Migrations int
}

// New builds a TAPAS policy (or ablation variant) with the given levers.
func New(opts Options) *TAPAS {
	return &TAPAS{opts: opts, base: NewBaseline()}
}

// NewFull returns the complete TAPAS system.
func NewFull() *TAPAS { return New(Options{Place: true, Route: true, Config: true}) }

// Name implements sim.Policy with the paper's variant naming.
func (t *TAPAS) Name() string {
	if t.opts == (Options{Place: true, Route: true, Config: true}) {
		return "TAPAS"
	}
	var parts []string
	if t.opts.Place {
		parts = append(parts, "Place")
	}
	if t.opts.Route {
		parts = append(parts, "Route")
	}
	if t.opts.Config {
		parts = append(parts, "Config")
	}
	if len(parts) == 0 {
		return "Baseline"
	}
	return strings.Join(parts, "+")
}

// Init runs the offline profiling phase (§4.5) against the datacenter.
// Profiles are memoized per layout (ProfilesFor), so repeated runs over a
// shared compiled scenario fit the regression models once.
func (t *TAPAS) Init(st *cluster.State) error {
	prof, err := ProfilesFor(st.DC)
	if err != nil {
		return err
	}
	t.prof = prof
	t.alloc = &allocator{prof: prof}
	t.route = &router{prof: prof}
	t.config = newConfigurator(prof)
	t.migrate = newMigrator(prof)
	t.rowOverRuns = make([]int, len(st.DC.Rows))
	t.aisleOverRuns = make([]int, len(st.DC.Aisles))
	t.rowUnderRuns = make([]int, len(st.DC.Rows))
	t.aisleUnderRuns = make([]int, len(st.DC.Aisles))
	return nil
}

// Place implements sim.Policy.
func (t *TAPAS) Place(st *cluster.State, vm *cluster.VM) (int, bool) {
	if !t.opts.Place {
		return t.base.Place(st, vm)
	}
	if srv, ok := t.alloc.place(st, vm); ok {
		return srv, true
	}
	// The validator found no compliant server; fall back to packing rather
	// than rejecting capacity outright (the paper migrates/requeues; the
	// fluid simulator retries next tick first).
	return t.base.Place(st, vm)
}

// Route implements sim.Policy.
func (t *TAPAS) Route(st *cluster.State, ep trace.EndpointSpec, prompt, output float64) {
	if !t.opts.Route {
		t.base.Route(st, ep, prompt, output)
		return
	}
	t.route.route(st, ep, prompt, output)
}

// affinityDiscount scales the queued-work score of instances that already
// hold a customer's KV-cache state, so request-level routing prefers warm
// instances (§4.2's cache-affinity routing) without starving cold ones: a
// warm instance loses preference once its backlog doubles a cold one's.
const affinityDiscount = 0.5

// unsafePenaltySecs pushes instances with no thermal/power headroom behind
// every safe instance in the request-routing score; it is only ever decisive
// when all instances are unsafe, where relative backlog still breaks ties.
const unsafePenaltySecs = 1e6

// RouteRequest implements sim.RequestRouter for request-level replay. With
// the Route lever active, requests prefer instances already serving the same
// customer (KV-cache affinity) and avoid instances whose server lacks
// thermal or power headroom — the same signals the fluid token router uses.
// With the lever off it defers to the engine's least-queued-work default.
func (t *TAPAS) RouteRequest(st *cluster.State, insts []*cluster.VM, req llm.Request) (int, bool) {
	if !t.opts.Route {
		return 0, false
	}
	throttleC := st.Spec.ThrottleTempC
	best, bestScore := -1, math.Inf(1)
	for i, vm := range insts {
		in := vm.Instance
		if in.Reloading() {
			continue
		}
		score := in.DemandSeconds()
		if in.HasAffinity(req.Customer) {
			score *= affinityDiscount
		}
		srv := st.DC.Servers[vm.Server]
		rowUse := st.RowPowerW[srv.Row] / (st.Budget.RowLimitW(srv.Row) + 1)
		aisleUse := st.AisleDemandCFM[srv.Aisle] / (st.AisleLimitCFM(srv.Aisle) + 1)
		tempUse := st.ServerHotGPUTempC[vm.Server] / (throttleC - 2)
		if headroomOf(rowUse, aisleUse, tempUse) <= 0 {
			score += unsafePenaltySecs
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0, false // every instance reloading; engine default applies
	}
	return best, true
}

// Configure implements sim.Policy. Besides the Instance Configurator it
// applies proactive selective capping just under the row/aisle limits, so
// oversubscribed fleets converge below the envelopes instead of oscillating
// across them (Fig. 21's near-zero capping at 40% oversubscription).
func (t *TAPAS) Configure(st *cluster.State) {
	if t.opts.Place && t.migrate != nil {
		t.Migrations += t.migrate.step(st)
	}
	if !t.opts.Config {
		return
	}
	t.config.configure(st)
	t.decayOverruns(st)
	const proactive = 0.985
	for row, draw := range st.RowPowerW {
		limit := st.Budget.RowLimitW(row) * proactive
		if draw > limit {
			t.selectiveCap(st, t.rowIDs(st, row), draw-limit)
		}
	}
	for a, demand := range st.AisleDemandCFM {
		limit := st.AisleLimitCFM(a) * proactive
		if demand <= limit {
			continue
		}
		ids := t.capIDs[:0]
		totalW := 0.0
		for _, srv := range st.DC.Aisles[a].Servers() {
			ids = append(ids, srv.ID)
			totalW += st.ServerPowerW[srv.ID]
		}
		t.capIDs = ids
		t.selectiveCap(st, ids, (demand-limit)/demand*totalW)
	}
}

// overrunRecoveryTicks is the recovery window after which a row/aisle that
// stayed under budget gets its escalation counter reset: the time a fully
// capped server needs to recover to uncapped under the engine's ×1.05
// per-tick release from the 0.3 floor (⌈ln(1/0.3)/ln(1.05)⌉ ≈ 25). A
// violation inside the window still escalates immediately; only after the
// caps it caused have fully drained does the next violation get the
// configurator's grace tick again.
const overrunRecoveryTicks = 25

// decayOverruns counts consecutive under-budget ticks per row/aisle (on the
// previous tick's telemetry, like the rest of Configure) and resets the
// matching escalation counter after a full recovery window, so the
// consecutive-violation semantics of CapRow/CapAisle hold on long horizons
// instead of the counters ratcheting monotonically within a run.
func (t *TAPAS) decayOverruns(st *cluster.State) {
	for row, draw := range st.RowPowerW {
		if draw > st.Budget.RowLimitW(row) {
			t.rowUnderRuns[row] = 0
			continue
		}
		if t.rowUnderRuns[row]++; t.rowUnderRuns[row] >= overrunRecoveryTicks {
			t.rowOverRuns[row] = 0
			t.rowUnderRuns[row] = 0
		}
	}
	for a, demand := range st.AisleDemandCFM {
		if demand > st.AisleLimitCFM(a) {
			t.aisleUnderRuns[a] = 0
			continue
		}
		if t.aisleUnderRuns[a]++; t.aisleUnderRuns[a] >= overrunRecoveryTicks {
			t.aisleOverRuns[a] = 0
			t.aisleUnderRuns[a] = 0
		}
	}
}

// rowIDs fills the reusable capIDs scratch with the row's server IDs.
func (t *TAPAS) rowIDs(st *cluster.State, row int) []int {
	ids := t.capIDs[:0]
	for _, srv := range st.DC.Rows[row].Servers {
		ids = append(ids, srv.ID)
	}
	t.capIDs = ids
	return ids
}

// CapRow implements sim.Policy. With the Config lever active, TAPAS first
// lets the Instance Configurator shed SaaS power; only if the row stays over
// budget on consecutive ticks does it cap — IaaS last, per §4.4's "regular
// power capping techniques to the IaaS VMs" as the final resort.
func (t *TAPAS) CapRow(st *cluster.State, row int, drawW, limitW float64) {
	if !t.opts.Config {
		t.base.CapRow(st, row, drawW, limitW)
		return
	}
	t.rowOverRuns[row]++
	if t.rowOverRuns[row] < 2 {
		return // give the configurator one tick to react
	}
	t.selectiveCap(st, t.rowIDs(st, row), drawW-limitW)
}

// CapAisle implements sim.Policy with the same selective escalation.
func (t *TAPAS) CapAisle(st *cluster.State, aisle int, demandCFM, limitCFM float64) {
	if !t.opts.Config {
		t.base.CapAisle(st, aisle, demandCFM, limitCFM)
		return
	}
	t.aisleOverRuns[aisle]++
	if t.aisleOverRuns[aisle] < 2 {
		return
	}
	// Airflow tracks dynamic power; convert the CFM overdraw into a power
	// shed target using the fleet-average W-per-CFM of the aisle.
	ids := t.capIDs[:0]
	totalW := 0.0
	for _, srv := range st.DC.Aisles[aisle].Servers() {
		ids = append(ids, srv.ID)
		totalW += st.ServerPowerW[srv.ID]
	}
	t.capIDs = ids
	shedW := (demandCFM - limitCFM) / demandCFM * totalW
	t.selectiveCap(st, ids, shedW)
}

// selectiveCap sheds shedW watts from the given servers by capping IaaS
// frequency, falling back to SaaS servers only if IaaS reduction cannot
// cover the target.
func (t *TAPAS) selectiveCap(st *cluster.State, ids []int, shedW float64) {
	if shedW <= 0 {
		return
	}
	var idleWBy [layout.GPUModelCount]float64
	for m := range idleWBy {
		idleWBy[m] = t.prof.PowerFor(layout.GPUModel(m)).Predict(0)
	}
	iaas, saas := t.capIaaS[:0], t.capSaaS[:0]
	iaasDynW := 0.0
	for _, id := range ids {
		vmID := st.ServerVM[id]
		if vmID == -1 {
			continue
		}
		if st.VMs[vmID].Spec.Kind == trace.IaaS {
			iaas = append(iaas, id)
			if d := st.ServerPowerW[id] - idleWBy[st.DC.Servers[id].GPU.Model]; d > 0 {
				iaasDynW += d
			}
		} else {
			saas = append(saas, id)
		}
	}
	t.capIaaS, t.capSaaS = iaas, saas
	headroomLeft := false
	if iaasDynW > 0 {
		factor := 1 - shedW/iaasDynW
		if factor < 0 {
			factor = 0
		}
		freqScale := math.Pow(math.Max(factor, 0.05), 1/power.DVFSExponent)
		for _, id := range iaas {
			// Compound: frequency only reaches the GPU dynamic share, so
			// the controller presses until the violation clears.
			next := math.Max(minFreqCap, st.ServerFreqCap[id]*freqScale)
			if next < st.ServerFreqCap[id] {
				st.ServerFreqCap[id] = next
			}
			if st.ServerFreqCap[id] > minFreqCap {
				headroomLeft = true
			}
		}
		if factor > 0 && headroomLeft {
			return // IaaS capping still has room to cover the shed target
		}
		shedW -= iaasDynW
	}
	// Residual shed falls on SaaS servers.
	saasDynW := 0.0
	for _, id := range saas {
		if d := st.ServerPowerW[id] - idleWBy[st.DC.Servers[id].GPU.Model]; d > 0 {
			saasDynW += d
		}
	}
	if saasDynW <= 0 || shedW <= 0 {
		return
	}
	factor := math.Max(1-shedW/saasDynW, 0.05)
	freqScale := math.Pow(factor, 1/power.DVFSExponent)
	for _, id := range saas {
		st.ServerFreqCap[id] = math.Max(minFreqCap, st.ServerFreqCap[id]*freqScale)
	}
}

// ResetOverruns clears every consecutive-violation counter at once. The
// per-tick decay in Configure (decayOverruns) keeps long runs correct on its
// own; this remains for embedders that reset a policy between episodes.
func (t *TAPAS) ResetOverruns() {
	for i := range t.rowOverRuns {
		t.rowOverRuns[i] = 0
	}
	for i := range t.aisleOverRuns {
		t.aisleOverRuns[i] = 0
	}
}
