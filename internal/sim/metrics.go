package sim

import (
	"time"

	"github.com/tapas-sim/tapas/internal/regress"
)

// Result aggregates everything a run produces.
type Result struct {
	Policy string
	Tick   time.Duration
	Ticks  int

	// Per-tick series.
	MaxTempC      []float64 // hottest GPU in the datacenter
	PeakRowPowerW []float64 // hungriest row
	TotalPowerW   []float64
	RowPowerW     [][]float64 // per row, only when Scenario.RecordRowSeries

	// Event accounting in server-ticks. A server-tick is thermally capped
	// when its GPUs hardware-throttle or its aisle out-draws the AHUs;
	// power-capped when its row exceeds the effective power limit.
	ServerTicks             int
	ThermalThrottleSrvTicks int
	PowerCapSrvTicks        int
	PlacementRejects        int

	// SaaS service quality.
	SaaSDemandTokens  float64
	SaaSServedTokens  float64
	SaaSCompletedReqs float64
	SaaSViolatedReqs  float64
	SaaSQualityWeight float64

	// IaaS impact.
	IaaSFreqCapSum  float64 // Σ (1 − freqCap) over IaaS server-ticks
	IaaSServerTicks int
}

// MaxTemp returns the run-wide maximum GPU temperature.
func (r *Result) MaxTemp() float64 { return maxOf(r.MaxTempC) }

// PeakPower returns the run-wide peak row power.
func (r *Result) PeakPower() float64 { return maxOf(r.PeakRowPowerW) }

// PercentilePeakPower returns a percentile of the per-tick peak row power
// series, useful for comparing sustained peaks rather than single spikes.
func (r *Result) PercentilePeakPower(p float64) float64 {
	return regress.Percentile(r.PeakRowPowerW, p)
}

// PercentileMaxTemp returns a percentile of the per-tick max temperature.
func (r *Result) PercentileMaxTemp(p float64) float64 {
	return regress.Percentile(r.MaxTempC, p)
}

// ThrottleFrac returns the fraction of server-time under thermal throttling.
func (r *Result) ThrottleFrac() float64 {
	if r.ServerTicks == 0 {
		return 0
	}
	return float64(r.ThermalThrottleSrvTicks) / float64(r.ServerTicks)
}

// PowerCapFrac returns the fraction of server-time under power capping.
func (r *Result) PowerCapFrac() float64 {
	if r.ServerTicks == 0 {
		return 0
	}
	return float64(r.PowerCapSrvTicks) / float64(r.ServerTicks)
}

// AvgQuality returns the quality-weighted average over completed requests.
func (r *Result) AvgQuality() float64 {
	if r.SaaSCompletedReqs == 0 {
		return 1
	}
	return r.SaaSQualityWeight / r.SaaSCompletedReqs
}

// SLOViolationRate returns the fraction of completed requests that violated
// their latency SLO.
func (r *Result) SLOViolationRate() float64 {
	if r.SaaSCompletedReqs == 0 {
		return 0
	}
	return r.SaaSViolatedReqs / r.SaaSCompletedReqs
}

// ServiceRate returns served/demanded SaaS tokens (1 = kept up with load).
func (r *Result) ServiceRate() float64 {
	if r.SaaSDemandTokens == 0 {
		return 1
	}
	rate := r.SaaSServedTokens / r.SaaSDemandTokens
	if rate > 1 {
		return 1
	}
	return rate
}

// IaaSPerfLoss returns the average IaaS performance loss from frequency
// capping (0 = unaffected, 0.35 = 35% capped on average).
func (r *Result) IaaSPerfLoss() float64 {
	if r.IaaSServerTicks == 0 {
		return 0
	}
	return r.IaaSFreqCapSum / float64(r.IaaSServerTicks)
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
