package sim

import (
	"math"
	"time"

	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/regress"
)

// Result aggregates everything a run produces.
type Result struct {
	Policy string
	Tick   time.Duration
	Ticks  int

	// Per-tick series.
	MaxTempC      []float64 // hottest GPU in the datacenter
	PeakRowPowerW []float64 // hungriest row
	TotalPowerW   []float64
	RowPowerW     [][]float64 // per row, only when Scenario.RecordRowSeries

	// Event accounting in server-ticks. A server-tick is thermally capped
	// when its GPUs hardware-throttle or its aisle out-draws the AHUs;
	// power-capped when its row exceeds the effective power limit.
	// FreqCapSrvTicks counts server-ticks that ran under an *applied*
	// frequency cap (ServerFreqCap < 1 after the tick's recovery step),
	// whichever policy path set it — so unlike PowerCapSrvTicks, which
	// counts row-limit violations, it measures actual capping interventions
	// and distinguishes a governor that caps gently and early from one that
	// slams on violations.
	ServerTicks             int
	ThermalThrottleSrvTicks int
	PowerCapSrvTicks        int
	FreqCapSrvTicks         int
	PlacementRejects        int

	// SaaS service quality.
	SaaSDemandTokens  float64
	SaaSServedTokens  float64
	SaaSCompletedReqs float64
	SaaSViolatedReqs  float64
	SaaSQualityWeight float64

	// IaaS impact.
	IaaSFreqCapSum  float64 // Σ (1 − freqCap) over IaaS server-ticks
	IaaSServerTicks int

	// Per-endpoint energy accounting, sized to the workload's endpoints by
	// the engine and populated in both binned and request-level modes.
	// EndpointEnergyJ integrates the full power of every server hosting an
	// endpoint's instances over each tick (accumulated serially in the tick
	// kernel, so values are byte-identical at any shard count);
	// EndpointServedTokens attributes served tokens per endpoint in the
	// engine's deterministic harvest order.
	EndpointEnergyJ      []float64
	EndpointServedTokens []float64

	// Request-level replay SLO accounting, populated only when the scenario
	// carries a request log (Scenario.Requests). Outer slices are indexed by
	// endpoint ID and sized on demand; samples are seconds, appended in the
	// engine's deterministic harvest order (ascending VM ID at departure and
	// end of run), so reports are byte-identical at any -parallel/-shards
	// setting. Requests still in flight at the horizon contribute nothing.
	ReqTTFT       [][]float64 // per endpoint: time to first token
	ReqTBT        [][]float64 // per endpoint: max time between tokens
	ReqQueueDelay [][]float64 // per endpoint: arrival → prefill start
	ReqCompleted  []int       // per endpoint: completed requests
	ReqViolated   []int       // per endpoint: completions violating an SLO
	ReqAdmitted   []int       // per endpoint: requests routed to an instance
	ReqShed       []int       // per endpoint: requests rejected at admission
}

// growEndpoints sizes every per-endpoint slice to cover endpoint ep, so the
// parallel slices stay index-aligned no matter which accessor grew them.
func (r *Result) growEndpoints(ep int) {
	for len(r.ReqCompleted) <= ep {
		r.ReqTTFT = append(r.ReqTTFT, nil)
		r.ReqTBT = append(r.ReqTBT, nil)
		r.ReqQueueDelay = append(r.ReqQueueDelay, nil)
		r.ReqCompleted = append(r.ReqCompleted, 0)
		r.ReqViolated = append(r.ReqViolated, 0)
		r.ReqAdmitted = append(r.ReqAdmitted, 0)
		r.ReqShed = append(r.ReqShed, 0)
	}
}

// AddCompletion folds one drained request-latency record into the
// per-endpoint SLO accounting. The engine calls it in harvest order.
func (r *Result) AddCompletion(c llm.Completion) {
	ep := c.Endpoint
	r.growEndpoints(ep)
	r.ReqTTFT[ep] = append(r.ReqTTFT[ep], c.TTFT)
	r.ReqTBT[ep] = append(r.ReqTBT[ep], c.TBT)
	r.ReqQueueDelay[ep] = append(r.ReqQueueDelay[ep], c.QueueDelay)
	r.ReqCompleted[ep]++
	if c.Violated {
		r.ReqViolated[ep]++
	}
}

// AddAdmitted counts one request the router placed on an instance.
func (r *Result) AddAdmitted(ep int) {
	r.growEndpoints(ep)
	r.ReqAdmitted[ep]++
}

// AddShed counts one request an admission-controlling policy rejected: it
// was never enqueued, so it appears in no latency series. Admitted + shed
// sums to the requests that arrived within the horizon.
func (r *Result) AddShed(ep int) {
	r.growEndpoints(ep)
	r.ReqShed[ep]++
}

// MaxTemp returns the run-wide maximum GPU temperature.
func (r *Result) MaxTemp() float64 { return maxOf(r.MaxTempC) }

// PeakPower returns the run-wide peak row power.
func (r *Result) PeakPower() float64 { return maxOf(r.PeakRowPowerW) }

// PercentilePeakPower returns a percentile of the per-tick peak row power
// series, useful for comparing sustained peaks rather than single spikes.
func (r *Result) PercentilePeakPower(p float64) float64 {
	return regress.Percentile(r.PeakRowPowerW, p)
}

// PercentileMaxTemp returns a percentile of the per-tick max temperature.
func (r *Result) PercentileMaxTemp(p float64) float64 {
	return regress.Percentile(r.MaxTempC, p)
}

// ThrottleFrac returns the fraction of server-time under thermal throttling.
func (r *Result) ThrottleFrac() float64 {
	if r.ServerTicks == 0 {
		return 0
	}
	return float64(r.ThermalThrottleSrvTicks) / float64(r.ServerTicks)
}

// PowerCapFrac returns the fraction of server-time under power capping.
func (r *Result) PowerCapFrac() float64 {
	if r.ServerTicks == 0 {
		return 0
	}
	return float64(r.PowerCapSrvTicks) / float64(r.ServerTicks)
}

// AvgQuality returns the quality-weighted average over completed requests.
func (r *Result) AvgQuality() float64 {
	if r.SaaSCompletedReqs == 0 {
		return 1
	}
	return r.SaaSQualityWeight / r.SaaSCompletedReqs
}

// SLOViolationRate returns the fraction of completed requests that violated
// their latency SLO.
func (r *Result) SLOViolationRate() float64 {
	if r.SaaSCompletedReqs == 0 {
		return 0
	}
	return r.SaaSViolatedReqs / r.SaaSCompletedReqs
}

// ServiceRate returns served/demanded SaaS tokens (1 = kept up with load).
func (r *Result) ServiceRate() float64 {
	if r.SaaSDemandTokens == 0 {
		return 1
	}
	rate := r.SaaSServedTokens / r.SaaSDemandTokens
	if rate > 1 {
		return 1
	}
	return rate
}

// IaaSPerfLoss returns the average IaaS performance loss from frequency
// capping (0 = unaffected, 0.35 = 35% capped on average).
func (r *Result) IaaSPerfLoss() float64 {
	if r.IaaSServerTicks == 0 {
		return 0
	}
	return r.IaaSFreqCapSum / float64(r.IaaSServerTicks)
}

// AllEndpoints selects the aggregate over every endpoint in the
// request-level SLO accessors below.
const AllEndpoints = -1

// reqSamples returns one endpoint's sample slice, or the concatenation over
// all endpoints for AllEndpoints (endpoint order, so the aggregate is
// deterministic; percentiles sort anyway).
func (r *Result) reqSamples(series [][]float64, ep int) []float64 {
	if ep >= 0 {
		if ep >= len(series) {
			return nil
		}
		return series[ep]
	}
	var all []float64
	for _, s := range series {
		all = append(all, s...)
	}
	return all
}

func percentileOrZero(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return regress.Percentile(xs, p)
}

// TTFTPercentile returns the p-th percentile of time-to-first-token in
// seconds over an endpoint's completed requests (AllEndpoints aggregates;
// 0 with no completions). Percentiles interpolate linearly on rank
// p/100·(n−1) over the sorted samples (regress.Percentile).
func (r *Result) TTFTPercentile(ep int, p float64) float64 {
	return percentileOrZero(r.reqSamples(r.ReqTTFT, ep), p)
}

// TBTPercentile returns the p-th percentile of the per-request maximum
// time-between-tokens in seconds (AllEndpoints aggregates; 0 with no
// completions).
func (r *Result) TBTPercentile(ep int, p float64) float64 {
	return percentileOrZero(r.reqSamples(r.ReqTBT, ep), p)
}

// QueueDelayPercentile returns the p-th percentile of queueing delay
// (arrival to prefill start) in seconds (AllEndpoints aggregates; 0 with no
// completions).
func (r *Result) QueueDelayPercentile(ep int, p float64) float64 {
	return percentileOrZero(r.reqSamples(r.ReqQueueDelay, ep), p)
}

// SLOAttainment returns the fraction of an endpoint's completed requests
// that met both latency SLOs: (completed − violated) / completed, over
// completed requests only (in-flight requests at the horizon are excluded).
// AllEndpoints aggregates. No completions yields NaN — "no data", which
// reports render as a blank cell — so an overloaded endpoint that finished
// nothing is distinguishable from one at 0% attainment.
func (r *Result) SLOAttainment(ep int) float64 {
	var done, bad int
	if ep >= 0 {
		if ep < len(r.ReqCompleted) {
			done, bad = r.ReqCompleted[ep], r.ReqViolated[ep]
		}
	} else {
		for i := range r.ReqCompleted {
			done += r.ReqCompleted[i]
			bad += r.ReqViolated[i]
		}
	}
	if done == 0 {
		return math.NaN()
	}
	return float64(done-bad) / float64(done)
}

// RequestsCompleted returns the number of completed requests for an endpoint
// (AllEndpoints aggregates).
func (r *Result) RequestsCompleted(ep int) int { return sumCount(r.ReqCompleted, ep) }

// RequestsAdmitted returns the number of requests routed to an instance for
// an endpoint (AllEndpoints aggregates).
func (r *Result) RequestsAdmitted(ep int) int { return sumCount(r.ReqAdmitted, ep) }

// RequestsShed returns the number of requests rejected at admission for an
// endpoint (AllEndpoints aggregates). Always 0 for policies without
// admission control.
func (r *Result) RequestsShed(ep int) int { return sumCount(r.ReqShed, ep) }

// RequestEndpoints returns how many endpoint slots the request-level
// accounting covers (0 in binned mode).
func (r *Result) RequestEndpoints() int { return len(r.ReqCompleted) }

// EnergyPerTokenJ returns an endpoint's serving energy per served token in
// joules: the power of every server hosting its instances integrated over
// the run, divided by the tokens it served (AllEndpoints aggregates both
// sums first). An endpoint that served nothing yields NaN — "no data",
// rendered blank/null by reports — so idle endpoints are distinguishable
// from impossibly efficient ones.
func (r *Result) EnergyPerTokenJ(ep int) float64 {
	var energy, tokens float64
	if ep >= 0 {
		if ep >= len(r.EndpointEnergyJ) {
			return math.NaN()
		}
		energy, tokens = r.EndpointEnergyJ[ep], r.EndpointServedTokens[ep]
	} else {
		for i := range r.EndpointEnergyJ {
			energy += r.EndpointEnergyJ[i]
			tokens += r.EndpointServedTokens[i]
		}
	}
	if tokens == 0 {
		return math.NaN()
	}
	return energy / tokens
}

// CapEvents returns the number of server-ticks spent under an applied
// frequency cap (see FreqCapSrvTicks).
func (r *Result) CapEvents() int { return r.FreqCapSrvTicks }

func sumCount(counts []int, ep int) int {
	if ep >= 0 {
		if ep >= len(counts) {
			return 0
		}
		return counts[ep]
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// maxOf returns the maximum of the series, folding from the first element so
// all-negative series (sub-zero cold-climate temperatures) report their true
// maximum. Empty series return 0.
func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
