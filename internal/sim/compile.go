package sim

import (
	"fmt"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/thermal"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/units"
)

// CompiledScenario holds every run-invariant artifact of a Scenario, built
// once by Compile and shared — strictly read-only — by any number of
// subsequent (including concurrent) runs: the generated datacenter layout,
// the workload trace, the outside-temperature series, the LLM configuration
// profile, flattened per-(server,GPU) thermal coefficient tables, and the
// seeded "previous week" demand history. Each Run gets its own fresh
// cluster.State, so runs never observe each other.
//
// Experiment grids that evaluate many policies (or many failure schedules)
// over the same scenario compile once and run many times; reports are
// byte-identical to compiling per run.
type CompiledScenario struct {
	// Scenario is the descriptor the artifacts were compiled from. The
	// compile-relevant fields (Layout, Workload, Region, Duration,
	// StartOffset, Oversubscribe) must not be changed after compilation;
	// runtime-only fields (Tick, Failures, RecordRowSeries, Observer, Shards) may be
	// varied per run via Variant.
	Scenario Scenario

	DC       *layout.Datacenter
	Workload *trace.Workload
	Outside  *trace.OutsideTemp
	Profile  *llm.Profile
	Coeffs   *thermal.Coeffs

	// requests is the transformed, validated request log of request-level
	// replay scenarios (Scenario.Requests after the transform chain); nil in
	// binned mode. Shared read-only across runs like every other artifact.
	requests []llm.Request

	// Per-generation artifacts for heterogeneous fleets, dense-indexed by
	// layout.GPUModel. profileBy[base model] aliases Profile; absent models
	// hold zero values. srvModel is the per-server generation index used by
	// the tick kernel, and fleetTDPW the aggregate server TDP.
	profileBy  [layout.GPUModelCount]*llm.Profile
	specBy     [layout.GPUModelCount]layout.GPUSpec
	idleWBy    [layout.GPUModelCount]float64
	idleFracBy [layout.GPUModelCount]float64
	srvModel   []uint8
	fleetTDPW  float64

	// Idle tick-kernel constants, precomputed with the exact operation
	// sequence the fused tick loop runs for an idle uncapped server, so the
	// engine's dirty-set fast paths substitute them bit for bit:
	// idleTickWBy is the server power the power pass produces at all-idle
	// GPU fractions, and idleAirflowBy the fan airflow the airflow pass
	// derives from that power.
	idleTickWBy   [layout.GPUModelCount]float64
	idleAirflowBy [layout.GPUModelCount]float64

	// compiledFrom snapshots the descriptor Compile ran against, so Run can
	// reject variants that changed compile-relevant fields.
	compiledFrom Scenario

	// Seeded history estimates (§3.1), copied into each run's state.
	customerPeak map[int]float64
	endpointPeak map[int]float64

	// Flat per-server topology for the tick kernel's fleet sweeps.
	srvRow   []int32
	srvAisle []int32

	// Per-server maxima over the GPU block's thermal coefficients. Rounding
	// is monotone, so inlet + srvMaxBias + srvMaxGain*cf is a floating-point
	// upper bound on every GPU temperature the fused loop can produce at
	// power fraction cf; when that bound stays at or below the throttle
	// limit the kernel runs the branch-free loop variant.
	srvMaxBias []float64
	srvMaxGain []float64

	// vmPhase maps a VM index to an entry of phaseBy — the distinct
	// PhaseHours values among the workload's un-warped IaaS load patterns
	// (phases are shared per customer, so there are few). The tick kernel
	// computes each phase's diurnal sine once per tick instead of once per
	// IaaS server. -1 marks patterns that must go through LoadPattern.At
	// (non-IaaS, or time-warped by a trace transform).
	vmPhase []int32
	phaseBy []float64

	// rowSpanEnd[row] is the exclusive end of the row's leading contiguous
	// server-ID span (layouts assign row servers consecutive IDs; only
	// oversubscription appends out-of-span servers at the end of the ID
	// space). The dirty-set tick sweeps a clean row's span without
	// per-server checks.
	rowSpanEnd []int32
}

// Compile builds the run-invariant artifacts of a scenario. The returned
// object is immutable; call Run on it any number of times, from any number
// of goroutines. Compile itself is pure — repeated what-ifs that want to
// skip it entirely go through a CompileCache, which memoizes both whole
// compilations (by ScenarioKey) and the sub-artifacts below.
func Compile(sc Scenario) (*CompiledScenario, error) {
	la, err := buildLayoutArtifacts(sc.Layout, sc.Oversubscribe)
	if err != nil {
		return nil, err
	}
	wa, err := buildWorkloadArtifacts(sc, len(la.dc.Servers))
	if err != nil {
		return nil, err
	}
	return assemble(sc, la, wa, buildOutside(sc, wa.w)), nil
}

// outsideSeedXor decorrelates the weather series from the workload streams
// derived from the same seed.
const outsideSeedXor = 0xd00d

// layoutArtifacts groups every compiled artifact derived solely from the
// layout config (plus oversubscription): the generated datacenter and all
// per-server/per-generation tables the tick kernel reads. One instance is
// shared read-only by every compiled scenario with the same layout — a
// climate or demand sweep builds it once.
type layoutArtifacts struct {
	dc      *layout.Datacenter
	profile *llm.Profile
	coeffs  *thermal.Coeffs

	profileBy     [layout.GPUModelCount]*llm.Profile
	specBy        [layout.GPUModelCount]layout.GPUSpec
	idleWBy       [layout.GPUModelCount]float64
	idleFracBy    [layout.GPUModelCount]float64
	idleTickWBy   [layout.GPUModelCount]float64
	idleAirflowBy [layout.GPUModelCount]float64
	srvModel      []uint8
	fleetTDPW     float64
	srvRow        []int32
	srvAisle      []int32
	srvMaxBias    []float64
	srvMaxGain    []float64
	rowSpanEnd    []int32
}

// workloadArtifacts groups every compiled artifact derived solely from the
// materialized workload: the trace itself, the seeded "previous week"
// history, the shared-phase index for un-warped IaaS load patterns, and the
// transformed request log of request-level replay scenarios.
type workloadArtifacts struct {
	w            *trace.Workload
	requests     []llm.Request
	customerPeak map[int]float64
	endpointPeak map[int]float64
	vmPhase      []int32
	phaseBy      []float64
}

// buildLayoutArtifacts generates the datacenter and precomputes the tables
// the tick kernel reads from it.
func buildLayoutArtifacts(lc layout.Config, oversubscribe float64) (*layoutArtifacts, error) {
	dc, err := layout.New(lc)
	if err != nil {
		return nil, err
	}
	if oversubscribe > 0 {
		dc.AddRacks(oversubscribe)
	}
	spec := layout.Spec(dc.Config.GPU)
	la := &layoutArtifacts{
		dc:       dc,
		profile:  llm.BuildProfile(spec, llm.DefaultWorkload()),
		coeffs:   thermal.CompileCoeffs(dc.Servers, spec.GPUsPerServer),
		srvRow:   make([]int32, len(dc.Servers)),
		srvAisle: make([]int32, len(dc.Servers)),
		srvModel: make([]uint8, len(dc.Servers)),
	}
	la.srvMaxBias = make([]float64, len(dc.Servers))
	la.srvMaxGain = make([]float64, len(dc.Servers))
	for i := range dc.Servers {
		base := i * spec.GPUsPerServer
		maxB, maxG := 0.0, 0.0
		for g := 0; g < spec.GPUsPerServer; g++ {
			if b := la.coeffs.BiasC[base+g]; b > maxB {
				maxB = b
			}
			if gn := la.coeffs.GainC[base+g]; gn > maxG {
				maxG = gn
			}
		}
		la.srvMaxBias[i] = maxB
		la.srvMaxGain[i] = maxG
	}
	la.rowSpanEnd = make([]int32, len(dc.Rows))
	for i := range la.rowSpanEnd {
		la.rowSpanEnd[i] = -1
	}
	for i, s := range dc.Servers {
		la.srvRow[i] = int32(s.Row)
		la.srvAisle[i] = int32(s.Aisle)
		la.srvModel[i] = uint8(s.GPU.Model)
		la.fleetTDPW += s.GPU.ServerTDPW
		if end := la.rowSpanEnd[s.Row]; end == -1 || end == int32(i) {
			la.rowSpanEnd[s.Row] = int32(i + 1)
		}
	}
	// One serving profile and idle-power table per hardware generation
	// present; the base generation reuses the profile built above.
	la.profileBy[spec.Model] = la.profile
	for _, m := range dc.Models() {
		ms := layout.Spec(m)
		la.specBy[m] = ms
		la.idleWBy[m] = power.ServerPowerAtUniformLoad(&ms, 0)
		la.idleFracBy[m] = ms.GPUIdleW / ms.GPUTDPW
		if la.profileBy[m] == nil {
			la.profileBy[m] = llm.BuildProfile(ms, llm.DefaultWorkload())
		}
		// The tick kernel's idle constants replay the fused loop's exact
		// arithmetic — a per-GPU accumulation at the idle fraction, then
		// the server-power and airflow passes — so the idle fast paths are
		// bit-identical to the full sweep. The GPU count is the state's
		// uniform per-server stride, as in the kernel.
		mp := &la.specBy[m]
		sum := 0.0
		for g := 0; g < spec.GPUsPerServer; g++ {
			sum += la.idleFracBy[m] * mp.GPUTDPW
		}
		la.idleTickWBy[m] = power.ServerPower(mp, sum, 0, thermal.FanFrac(0))
		heatFrac := units.Clamp01((la.idleTickWBy[m] - la.idleWBy[m]) / (mp.ServerTDPW - la.idleWBy[m]))
		la.idleAirflowBy[m] = thermal.Airflow(mp, heatFrac)
	}
	// Pre-warm the lazily memoized aisle rosters: policies call
	// Aisle.Servers() in capping paths, and the memo write would race when
	// runs share the layout.
	for _, a := range dc.Aisles {
		a.Servers()
	}
	return la, nil
}

// buildWorkloadArtifacts materializes the workload and the artifacts derived
// from it (seeded history, shared-phase index).
func buildWorkloadArtifacts(sc Scenario, servers int) (*workloadArtifacts, error) {
	w, err := workloadFor(sc, servers)
	if err != nil {
		return nil, err
	}
	wa := &workloadArtifacts{w: w}
	wa.requests, err = requestsFor(sc, w)
	if err != nil {
		return nil, err
	}
	wa.vmPhase = make([]int32, len(w.VMs))
	phaseIdx := make(map[float64]int32)
	for i, vm := range w.VMs {
		wa.vmPhase[i] = -1
		if vm.Kind != trace.IaaS {
			continue
		}
		if ts := vm.Load.TimeScale; ts > 0 && ts != 1 {
			continue
		}
		idx, ok := phaseIdx[vm.Load.PhaseHours]
		if !ok {
			idx = int32(len(wa.phaseBy))
			wa.phaseBy = append(wa.phaseBy, vm.Load.PhaseHours)
			phaseIdx[vm.Load.PhaseHours] = idx
		}
		wa.vmPhase[i] = idx
	}
	wa.customerPeak, wa.endpointPeak = compileHistory(w)
	return wa, nil
}

// buildOutside precomputes the outside-temperature series for the
// scenario's window, seeded from the workload it runs against.
func buildOutside(sc Scenario, w *trace.Workload) *trace.OutsideTemp {
	return trace.NewOutsideTemp(sc.Region, sc.StartOffset+sc.Duration, 10*time.Minute, w.Config.Seed^outsideSeedXor)
}

// assemble wires pre-built artifacts into a CompiledScenario. The artifacts
// may come from a fresh build or a CompileCache — every build of the same
// content key is byte-identical, so assembly never depends on provenance.
func assemble(sc Scenario, la *layoutArtifacts, wa *workloadArtifacts, outside *trace.OutsideTemp) *CompiledScenario {
	return &CompiledScenario{
		Scenario:      sc,
		compiledFrom:  sc,
		DC:            la.dc,
		Workload:      wa.w,
		requests:      wa.requests,
		Outside:       outside,
		Profile:       la.profile,
		Coeffs:        la.coeffs,
		profileBy:     la.profileBy,
		specBy:        la.specBy,
		idleWBy:       la.idleWBy,
		idleFracBy:    la.idleFracBy,
		idleTickWBy:   la.idleTickWBy,
		idleAirflowBy: la.idleAirflowBy,
		srvModel:      la.srvModel,
		fleetTDPW:     la.fleetTDPW,
		srvRow:        la.srvRow,
		srvAisle:      la.srvAisle,
		srvMaxBias:    la.srvMaxBias,
		srvMaxGain:    la.srvMaxGain,
		rowSpanEnd:    la.rowSpanEnd,
		customerPeak:  wa.customerPeak,
		endpointPeak:  wa.endpointPeak,
		vmPhase:       wa.vmPhase,
		phaseBy:       wa.phaseBy,
	}
}

// workloadFor materializes the workload a scenario simulates over a fleet of
// the given size: the replayed trace when set (transformed by the scenario's
// chain, validated against the fleet), otherwise a synthetic trace.Generate
// run.
func workloadFor(sc Scenario, servers int) (*trace.Workload, error) {
	if sc.Trace == nil {
		if len(sc.TraceTransforms) > 0 {
			return nil, fmt.Errorf("sim: TraceTransforms requires a replay Trace; transforms reshape recorded workloads (synthetic workloads are reshaped by their generation config)")
		}
		wc := sc.Workload
		wc.Servers = servers
		return trace.Generate(wc)
	}
	w, err := sc.TraceTransforms.Apply(sc.Trace)
	if err != nil {
		return nil, fmt.Errorf("sim: applying trace transforms: %w", err)
	}
	if err := validateReplay(w, servers, sc.Duration); err != nil {
		return nil, err
	}
	return w, nil
}

// requestsFor materializes the request log a request-level replay scenario
// admits: the scenario's log transformed by its chain (time_warp rescales
// arrivals, demand_scale thins or replicates — the ops that reshape endpoint
// sets are rejected, see transform.Chain.ApplyRequests), then validated
// against the workload the engine will serve it with: arrivals sorted (the
// engine admits through a monotone cursor), token counts non-negative, and
// every endpoint reference within the workload's endpoint set (queues are
// indexed positionally).
func requestsFor(sc Scenario, w *trace.Workload) ([]llm.Request, error) {
	if len(sc.Requests) == 0 {
		return nil, nil
	}
	reqs, err := sc.TraceTransforms.ApplyRequests(sc.Requests)
	if err != nil {
		return nil, fmt.Errorf("sim: applying transforms to the request log: %w", err)
	}
	var prev time.Duration
	for i := range reqs {
		rq := &reqs[i]
		if rq.Endpoint < 0 || rq.Endpoint >= len(w.Endpoints) {
			return nil, fmt.Errorf("sim: request log invalid: request %d targets endpoint %d, but the workload has %d endpoints", rq.ID, rq.Endpoint, len(w.Endpoints))
		}
		if rq.PromptTokens < 0 || rq.OutputTokens < 0 {
			return nil, fmt.Errorf("sim: request log invalid: request %d has negative token counts", rq.ID)
		}
		if rq.Arrival < prev {
			return nil, fmt.Errorf("sim: request log invalid: request %d arrives at %v, before the previous request's %v; the log must be sorted by arrival", rq.ID, rq.Arrival, prev)
		}
		prev = rq.Arrival
	}
	return reqs, nil
}

// validateReplay checks that a recorded (and possibly transformed) workload
// fits the scenario it is replayed under, so a stale trace fails loudly
// instead of silently simulating a different cluster. The structural checks
// (dense IDs, sorted arrivals, valid endpoint references —
// trace.Workload.Validate) mirror trace.ReadWorkloadCSV for traces built
// programmatically: the engine indexes VM and endpoint state positionally
// and admits arrivals through a monotone cursor, so a shifted ID or
// out-of-order arrival would corrupt the run instead of erroring.
func validateReplay(w *trace.Workload, servers int, duration time.Duration) error {
	if err := w.Validate(); err != nil {
		return fmt.Errorf("sim: replay trace invalid: %w", err)
	}
	if w.Config.Servers != servers {
		return fmt.Errorf("sim: replay trace was recorded for %d servers but the layout provides %d; replay against the layout (and oversubscription) the trace was recorded with", w.Config.Servers, servers)
	}
	if w.Config.Duration > 0 && duration > w.Config.Duration {
		return fmt.Errorf("sim: scenario duration %v exceeds the replay trace's recorded window %v; re-record a longer trace or shorten the run", duration, w.Config.Duration)
	}
	return nil
}

// GenerateWorkload materializes the workload a scenario would simulate —
// the unit cmd/tapas-trace records. The fleet size comes from the scenario's
// layout (including oversubscribed racks), exactly as Compile computes it,
// so a recorded trace replays against the same scenario byte-identically.
func GenerateWorkload(sc Scenario) (*trace.Workload, error) {
	dc, err := layout.New(sc.Layout)
	if err != nil {
		return nil, err
	}
	if sc.Oversubscribe > 0 {
		dc.AddRacks(sc.Oversubscribe)
	}
	return workloadFor(sc, len(dc.Servers))
}

// Variant returns a shallow copy sharing every compiled artifact, with
// mutate applied to the scenario. Only runtime-only fields may be changed:
// Tick, Failures, RecordRowSeries, Observer, Shards (and shortening Duration).
// Changing compile-relevant fields (Layout, Workload, Trace, TraceTransforms,
// Requests, Region, StartOffset, Oversubscribe, lengthening Duration) requires a fresh
// Compile; Run rejects such variants rather than simulate against stale
// artifacts.
func (cs *CompiledScenario) Variant(mutate func(*Scenario)) *CompiledScenario {
	copy := *cs
	if mutate != nil {
		mutate(&copy.Scenario)
	}
	return &copy
}

// ForScenario returns a variant of the compilation adopting sc's
// runtime-only fields (Tick, Failures, RecordRowSeries, Observer, Shards).
// The caller must ensure sc's compile-relevant fields are content-equal to
// the compiled scenario's (ScenarioKey equality guarantees it); pointer-typed
// sources (the replay trace, transform-chain steps) and the
// layout-overwritten Workload.Servers are normalized to the compiled
// scenario's own, so content-equal scenarios from different loads of the
// same trace still pass Run's variant check.
func (cs *CompiledScenario) ForScenario(sc Scenario) *CompiledScenario {
	cp := *cs
	sc.Trace = cs.compiledFrom.Trace
	sc.TraceTransforms = cs.compiledFrom.TraceTransforms
	sc.Requests = cs.compiledFrom.Requests
	sc.Workload.Servers = cs.compiledFrom.Workload.Servers
	cp.Scenario = sc
	return &cp
}

// checkRuntimeOnly verifies the scenario still matches the compiled
// artifacts on every compile-relevant field.
func (cs *CompiledScenario) checkRuntimeOnly() error {
	base, cur := cs.compiledFrom, cs.Scenario
	switch {
	case cur.Layout != base.Layout:
		return fmt.Errorf("sim: variant changed Layout; recompile the scenario")
	case cur.Workload != base.Workload:
		return fmt.Errorf("sim: variant changed Workload; recompile the scenario")
	case cur.Trace != base.Trace:
		return fmt.Errorf("sim: variant changed Trace; recompile the scenario")
	case !cur.TraceTransforms.Equal(base.TraceTransforms):
		return fmt.Errorf("sim: variant changed TraceTransforms; recompile the scenario")
	case !sameRequests(cur.Requests, base.Requests):
		return fmt.Errorf("sim: variant changed Requests; recompile the scenario")
	case cur.SLOSched != base.SLOSched:
		return fmt.Errorf("sim: variant changed SLOSched; recompile the scenario")
	case cur.PowerGov != base.PowerGov:
		return fmt.Errorf("sim: variant changed PowerGov; recompile the scenario")
	case cur.Region != base.Region:
		return fmt.Errorf("sim: variant changed Region; recompile the scenario")
	case cur.StartOffset != base.StartOffset:
		return fmt.Errorf("sim: variant changed StartOffset; recompile the scenario")
	case cur.Oversubscribe != base.Oversubscribe:
		return fmt.Errorf("sim: variant changed Oversubscribe; recompile the scenario")
	case cur.Duration > base.Duration:
		return fmt.Errorf("sim: variant lengthened Duration beyond the compiled weather/workload window (%v > %v); recompile the scenario", cur.Duration, base.Duration)
	}
	return nil
}

// sameRequests reports whether two request logs are the same slice (length
// plus backing-array identity). ForScenario normalizes a content-equal
// scenario's log to the compiled one's, mirroring the pointer-swap semantics
// of the Trace check.
func sameRequests(a, b []llm.Request) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// Run executes one simulation of the compiled scenario under a policy. Safe
// for concurrent use: every call builds a private cluster.State around the
// shared read-only artifacts.
func (cs *CompiledScenario) Run(pol Policy) (*Result, error) {
	sc := cs.Scenario
	if sc.Tick <= 0 {
		return nil, fmt.Errorf("sim: non-positive tick %v", sc.Tick)
	}
	if err := cs.checkRuntimeOnly(); err != nil {
		return nil, err
	}
	st := cluster.NewStateFrom(cs.DC, cs.Workload, cs.Profile)
	for m, p := range cs.profileBy {
		if p != nil && p != cs.Profile {
			st.SetModelProfile(layout.GPUModel(m), p)
		}
	}
	st.Tick = sc.Tick
	st.SeedHistory(cs.customerPeak, cs.endpointPeak)
	if init, ok := pol.(Initializer); ok {
		if err := init.Init(st); err != nil {
			return nil, fmt.Errorf("sim: policy init: %w", err)
		}
	}
	r := &runner{sc: sc, cs: cs, pol: pol, st: st, outside: cs.Outside}
	return r.run()
}

// compileHistory pre-computes the per-customer and per-endpoint demand
// estimates from the week preceding the simulation window — the "previous
// week" history the paper's placement predictions rely on (§3.1, Fig. 14).
// Policies that ignore history (the Baseline) are unaffected.
//
// Load shapes are shared per customer, so the 7×24-hour peak scan runs once
// per unique customer on its first VM's pattern instead of once per VM —
// workloads hold ~40 customers but thousands of VMs. The patterns do carry
// small per-VM noise (±0.09 load fraction), which a max-over-all-VMs would
// fold in; the single-VM estimate sits at most that far below it, well
// within the prediction-error budget these seeds feed (§4.1 assumes peak
// outright when history is missing). VM order is deterministic, so the
// estimate is too.
func compileHistory(w *trace.Workload) (customerPeak, endpointPeak map[int]float64) {
	customerPeak = make(map[int]float64)
	endpointPeak = make(map[int]float64)
	for _, vm := range w.VMs {
		if vm.Kind != trace.IaaS {
			continue
		}
		if _, seen := customerPeak[vm.Customer]; seen {
			continue
		}
		peak := 0.0
		for h := 0; h < 7*24; h++ {
			if l := vm.Load.At(time.Duration(h) * time.Hour); l > peak {
				peak = l
			}
		}
		customerPeak[vm.Customer] = peak
	}
	for _, ep := range w.Endpoints {
		peak := 0.0
		for h := 0; h < 7*24; h++ {
			p, o := ep.DemandTokens(time.Duration(h)*time.Hour, time.Minute)
			if d := (p + o) / 60 / float64(ep.NumVMs); d > peak {
				peak = d
			}
		}
		endpointPeak[ep.ID] = peak
	}
	return customerPeak, endpointPeak
}
