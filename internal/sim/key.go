package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// CacheKey is a content hash over the compile-relevant fields of a Scenario
// (or one of its sub-artifacts). Two scenarios with equal keys compile to
// byte-identical artifacts, so a compiled scenario cached under the key can
// serve both — see CompileCache.
type CacheKey [sha256.Size]byte

// String returns the key as lowercase hex.
func (k CacheKey) String() string { return hex.EncodeToString(k[:]) }

// ScenarioKey hashes the compile-relevant fields of a scenario: layout
// config, workload spec (or trace content + transform chain), the
// request-level replay log when present, region, duration, start offset,
// and oversubscription. Runtime-only fields — Tick,
// Failures, RecordRowSeries, Observer, Shards — are excluded, exactly
// mirroring what CompiledScenario.Variant allows a run to change without
// recompiling; Workload.Servers is excluded too because Compile overwrites
// it from the layout. Replayed traces (and splice overlays) are hashed by
// content via their canonical workload CSV, so the key is stable across
// loads of the same file and across processes.
func ScenarioKey(sc Scenario) (CacheKey, error) {
	return scenarioKey(sc, nil)
}

// scenarioKey is ScenarioKey with an optional fingerprint memo (the
// CompileCache threads its bounded memo through so repeated lookups against
// a shared in-memory trace do not re-serialize it).
func scenarioKey(sc Scenario, memo *fingerprintMemo) (CacheKey, error) {
	h := newKeyHasher("tapas-scenario-key/v1")
	h.hashLayout(sc.Layout)
	h.f64(sc.Oversubscribe)
	if err := h.hashWorkloadSource(sc, memo); err != nil {
		return CacheKey{}, err
	}
	h.hashRegion(sc.Region)
	h.dur(sc.Duration)
	h.dur(sc.StartOffset)
	h.hashSLOSched(sc.SLOSched)
	h.hashPowerGov(sc.PowerGov)
	return h.sum(), nil
}

// hashSLOSched folds the SLO-scheduling parameters into the key. The zero
// value (policy defaults) contributes nothing, keeping pre-existing keys
// stable — mirroring hashRequests.
func (k *keyHasher) hashSLOSched(s SLOSched) {
	if s == (SLOSched{}) {
		return
	}
	k.str("slosched")
	k.f64(s.AffinityWeight)
	k.f64(s.AdmissionSlack)
}

// hashPowerGov folds the power-governor parameters into the key with the
// same zero-value rule as hashSLOSched: scenarios that never touch PowerGov
// keep their pre-existing keys byte for byte.
func (k *keyHasher) hashPowerGov(p PowerGov) {
	if p == (PowerGov{}) {
		return
	}
	k.str("powergov")
	k.f64(p.BudgetFrac)
	k.f64(p.Gain)
}

// layoutKey hashes what buildLayoutArtifacts consumes: the layout config and
// the oversubscription ratio (extra racks change the generated datacenter).
func layoutKey(lc layout.Config, oversubscribe float64) CacheKey {
	h := newKeyHasher("tapas-layout-key/v1")
	h.hashLayout(lc)
	h.f64(oversubscribe)
	return h.sum()
}

// workloadKey hashes what workloadFor consumes: the synthetic generation
// config plus fleet size, or the replayed trace content plus its transform
// chain and the validation window. Scenarios that differ only in region or
// start offset share it — a climate sweep generates (or transforms) its
// workload once.
func workloadKey(sc Scenario, servers int, memo *fingerprintMemo) (CacheKey, error) {
	h := newKeyHasher("tapas-workload-key/v1")
	h.i64(int64(servers))
	if err := h.hashWorkloadSource(sc, memo); err != nil {
		return CacheKey{}, err
	}
	// Replay validation depends on the scenario window (duration beyond the
	// recorded window is rejected), so replayed artifacts are keyed per
	// duration; synthetic generation reads Workload.Duration, hashed by
	// hashWorkloadSource already.
	if sc.Trace != nil {
		h.dur(sc.Duration)
	}
	return h.sum(), nil
}

// weatherKey hashes what the outside-temperature series is built from: the
// region, the simulated window, and the workload seed it is derived from.
func weatherKey(region trace.Region, window time.Duration, seed uint64) CacheKey {
	h := newKeyHasher("tapas-weather-key/v1")
	h.hashRegion(region)
	h.dur(window)
	h.u64(seed)
	return h.sum()
}

// keyHasher serializes fields into a SHA-256 stream. Every value is written
// fixed-width or length-prefixed, so field boundaries are unambiguous and
// the encoding is canonical.
type keyHasher struct {
	h   hash.Hash
	buf [8]byte
}

func newKeyHasher(domain string) *keyHasher {
	k := &keyHasher{h: sha256.New()}
	k.str(domain)
	return k
}

func (k *keyHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(k.buf[:], v)
	k.h.Write(k.buf[:])
}

func (k *keyHasher) i64(v int64)         { k.u64(uint64(v)) }
func (k *keyHasher) f64(v float64)       { k.u64(floatBits(v)) }
func (k *keyHasher) dur(d time.Duration) { k.i64(int64(d)) }
func (k *keyHasher) bytes(tag byte, b []byte) {
	k.h.Write([]byte{tag})
	k.u64(uint64(len(b)))
	k.h.Write(b)
}
func (k *keyHasher) str(s string) { k.bytes('s', []byte(s)) }

func (k *keyHasher) sum() CacheKey {
	var key CacheKey
	k.h.Sum(key[:0])
	return key
}

func (k *keyHasher) hashLayout(lc layout.Config) {
	k.str(lc.Name)
	k.i64(int64(lc.Aisles))
	k.i64(int64(lc.RacksPerRow))
	k.i64(int64(lc.ServersPerRack))
	k.i64(int64(lc.GPU))
	k.u64(lc.Seed)
	k.i64(int64(lc.MixGPU))
	k.f64(lc.MixFraction)
	k.f64(lc.FleetScale)
	k.f64(lc.AirflowMargin)
	k.f64(lc.PowerMargin)
	k.f64(lc.AirflowDesignLoad)
}

func (k *keyHasher) hashRegion(r trace.Region) {
	k.str(r.Name)
	k.f64(r.MeanC)
	k.f64(r.SeasonalAmpC)
	k.f64(r.DiurnalAmpC)
	k.f64(r.NoiseC)
}

// hashWorkloadSource hashes where the workload comes from: the synthetic
// generation config (Servers excluded — Compile overwrites it from the
// layout), or the replayed trace content plus the canonical transform chain
// (splice overlays hashed by content too — the chain's canonical JSON names
// only their path). A request-level replay log (Scenario.Requests) is hashed
// field by field in both branches: it is workload content the engine serves,
// so scenarios differing only in their log must never share a key.
func (k *keyHasher) hashWorkloadSource(sc Scenario, memo *fingerprintMemo) error {
	defer k.hashRequests(sc.Requests)
	if sc.Trace == nil {
		wc := sc.Workload
		k.str("synthetic")
		k.f64(wc.SaaSFraction)
		k.dur(wc.Duration)
		k.i64(int64(wc.Endpoints))
		k.u64(wc.Seed)
		k.f64(wc.Occupancy)
		k.f64(wc.DemandScale)
		return nil
	}
	k.str("replay")
	fp, err := memo.fingerprint(sc.Trace)
	if err != nil {
		return err
	}
	k.bytes('t', fp[:])
	k.str(sc.TraceTransforms.String())
	for _, step := range sc.TraceTransforms {
		sp, ok := step.(*transform.Splice)
		if !ok {
			continue
		}
		ov := sp.Workload()
		if ov == nil {
			return fmt.Errorf("sim: cache key: splice trace %q not loaded; load the chain before keying", sp.Trace)
		}
		ofp, err := memo.fingerprint(ov)
		if err != nil {
			return err
		}
		k.bytes('o', ofp[:])
	}
	return nil
}

// hashRequests folds a request-level replay log into the key, one fixed-width
// record per request. Empty logs (binned mode) contribute nothing, keeping
// pre-existing keys stable.
func (k *keyHasher) hashRequests(reqs []llm.Request) {
	if len(reqs) == 0 {
		return
	}
	k.str("requests")
	k.i64(int64(len(reqs)))
	for i := range reqs {
		rq := &reqs[i]
		k.i64(rq.ID)
		k.i64(int64(rq.Customer))
		k.i64(int64(rq.Endpoint))
		k.i64(int64(rq.PromptTokens))
		k.i64(int64(rq.OutputTokens))
		k.dur(rq.Arrival)
	}
}

func floatBits(f float64) uint64 {
	// Normalize the two zero representations so -0 and +0 key identically
	// (they generate identical workloads and layouts).
	if f == 0 {
		return 0
	}
	return math.Float64bits(f)
}

// fingerprint hashes a workload's content via its canonical CSV encoding
// (trace.WriteWorkloadCSV round-trips float64 exactly, so the encoding is a
// stable content address). A nil memo computes directly.
func (m *fingerprintMemo) fingerprint(w *trace.Workload) (CacheKey, error) {
	if m != nil {
		if fp, ok := m.get(w); ok {
			return fp, nil
		}
	}
	h := sha256.New()
	if err := trace.WriteWorkloadCSV(h, w); err != nil {
		return CacheKey{}, fmt.Errorf("sim: fingerprinting trace: %w", err)
	}
	var fp CacheKey
	h.Sum(fp[:0])
	if m != nil {
		m.put(w, fp)
	}
	return fp, nil
}
