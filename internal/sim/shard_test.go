package sim

import (
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/trace"
)

// -update regenerates the shard golden file (testdata/shard_golden.txt).
var updateShardGolden = flag.Bool("update", false, "rewrite the shard golden file")

// shardScenario is a deliberately hostile scenario for the sharded tick
// kernel's dirty-set bookkeeping: a hot region (weather keeps moving the
// inlet base), mid-run power and cooling emergencies (global invalidation
// plus capping churn), and oversubscription (rows whose trailing servers sit
// outside the contiguous ID span the clean-row sweep uses).
func shardScenario() Scenario {
	sc := DefaultScenario()
	sc.Layout.Aisles = 2
	sc.Duration = 2 * time.Hour
	sc.Workload.Duration = sc.Duration
	sc.Workload.Servers = sc.Layout.Aisles * 2 * sc.Layout.RacksPerRow * sc.Layout.ServersPerRack
	sc.StartOffset = 9 * time.Hour // diurnal peak: active load, not an idle fleet
	sc.Region = trace.RegionHot
	sc.Oversubscribe = 0.2
	sc.Failures = []FailureEvent{
		{Kind: PowerFailure, At: 30 * time.Minute, Duration: 30 * time.Minute},
		{Kind: CoolingFailure, At: 75 * time.Minute, Duration: 20 * time.Minute},
	}
	return sc
}

// TestShardedRunsByteIdentical is the determinism property of the sharded
// tick kernel: for any shard count, and with runs racing each other over one
// shared compiled scenario (the campaign runner's -parallel shape), every
// Result field — full per-tick series included — matches the serial engine
// exactly. reflect.DeepEqual on float64 series is bit equality, so any
// reordered floating-point reduction fails here.
func TestShardedRunsByteIdentical(t *testing.T) {
	cs, err := Compile(shardScenario())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []struct {
		name string
		new  func() Policy
	}{
		{"tapas", func() Policy { return core.NewFull() }},
		{"baseline", func() Policy { return core.New(core.Options{}) }},
	} {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			serial, err := cs.Variant(func(s *Scenario) { s.Shards = 1 }).Run(pol.new())
			if err != nil {
				t.Fatal(err)
			}
			shardCounts := []int{0, 2, 7, runtime.NumCPU(), -1}
			for _, n := range shardCounts {
				n := n
				res, err := cs.Variant(func(s *Scenario) { s.Shards = n }).Run(pol.new())
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				if !reflect.DeepEqual(serial, res) {
					t.Errorf("shards=%d diverged from the serial engine", n)
				}
			}
			// Cross-run parallelism on top of intra-run sharding: all shard
			// counts race over the same compiled scenario, as under the
			// campaign runner's worker pool at any -parallel value.
			results := make([]*Result, len(shardCounts))
			errs := make([]error, len(shardCounts))
			var wg sync.WaitGroup
			for i, n := range shardCounts {
				i, n := i, n
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[i], errs[i] = cs.Variant(func(s *Scenario) { s.Shards = n }).Run(pol.new())
				}()
			}
			wg.Wait()
			for i, n := range shardCounts {
				if errs[i] != nil {
					t.Fatalf("concurrent shards=%d: %v", n, errs[i])
				}
				if !reflect.DeepEqual(serial, results[i]) {
					t.Errorf("concurrent shards=%d diverged from the serial engine", n)
				}
			}
		})
	}
}

// fingerprintResult renders a Result exactly: scalars and series hashes use
// the raw float64 bit patterns (%x hex floats, FNV-64 over Float64bits), so
// the golden pins bit-for-bit output, not rounded prints.
func fingerprintResult(r *Result) string {
	hash := func(xs []float64) uint64 {
		h := fnv.New64a()
		var buf [8]byte
		for _, x := range xs {
			bits := math.Float64bits(x)
			for i := range buf {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
		return h.Sum64()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy %s tick %v ticks %d\n", r.Policy, r.Tick, r.Ticks)
	fmt.Fprintf(&sb, "maxTempC series fnv64a %016x last %x\n", hash(r.MaxTempC), r.MaxTempC[len(r.MaxTempC)-1])
	fmt.Fprintf(&sb, "peakRowPowerW series fnv64a %016x last %x\n", hash(r.PeakRowPowerW), r.PeakRowPowerW[len(r.PeakRowPowerW)-1])
	fmt.Fprintf(&sb, "totalPowerW series fnv64a %016x last %x\n", hash(r.TotalPowerW), r.TotalPowerW[len(r.TotalPowerW)-1])
	fmt.Fprintf(&sb, "maxTemp %x peakPower %x\n", r.MaxTemp(), r.PeakPower())
	fmt.Fprintf(&sb, "serverTicks %d thermal %d powerCap %d rejects %d\n",
		r.ServerTicks, r.ThermalThrottleSrvTicks, r.PowerCapSrvTicks, r.PlacementRejects)
	fmt.Fprintf(&sb, "saas demand %x served %x completed %x violated %x quality %x\n",
		r.SaaSDemandTokens, r.SaaSServedTokens, r.SaaSCompletedReqs, r.SaaSViolatedReqs, r.SaaSQualityWeight)
	fmt.Fprintf(&sb, "iaas capSum %x srvTicks %d\n", r.IaaSFreqCapSum, r.IaaSServerTicks)
	// Request-level SLO accounting: hash the per-endpoint sample series in
	// endpoint order (empty in binned mode, where the hashes pin the
	// zero-sample FNV offset basis).
	flat := func(series [][]float64) []float64 {
		var all []float64
		for _, s := range series {
			all = append(all, s...)
		}
		return all
	}
	violated := 0
	for _, v := range r.ReqViolated {
		violated += v
	}
	fmt.Fprintf(&sb, "req ttft fnv64a %016x tbt %016x queue %016x completed %d violated %d\n",
		hash(flat(r.ReqTTFT)), hash(flat(r.ReqTBT)), hash(flat(r.ReqQueueDelay)),
		r.RequestsCompleted(AllEndpoints), violated)
	return sb.String()
}

// TestShardGoldenSerialEqualsSharded pins serial ≡ sharded against a
// committed golden: both the serial engine and a 7-shard run must reproduce
// testdata/shard_golden.txt byte for byte. A regression in either path (or a
// nondeterministic reduction) cannot pass — the committed bits are the
// arbiter, not a run-to-run comparison.
func TestShardGoldenSerialEqualsSharded(t *testing.T) {
	cs, err := Compile(shardScenario())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, variant := range []struct {
		name   string
		shards int
	}{
		{"serial", 1},
		{"sharded-7", 7},
	} {
		res, err := cs.Variant(func(s *Scenario) { s.Shards = variant.shards }).Run(core.NewFull())
		if err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		fmt.Fprintf(&sb, "== %s ==\n%s", variant.name, fingerprintResult(res))
	}
	got := sb.String()

	serial, sharded, ok := strings.Cut(got, "== sharded-7 ==\n")
	if !ok {
		t.Fatal("malformed fingerprint output")
	}
	if strings.TrimPrefix(serial, "== serial ==\n") != sharded {
		t.Errorf("serial and sharded fingerprints differ:\n%s", got)
	}

	path := filepath.Join("testdata", "shard_golden.txt")
	if *updateShardGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from the committed golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
