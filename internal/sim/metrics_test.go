package sim

import (
	"math"
	"testing"

	"github.com/tapas-sim/tapas/internal/llm"
)

// TestMaxOfNegativeSeries is the regression test for the maxOf fold: a
// series whose true maximum is negative (sub-zero cold-climate
// temperatures) must report that maximum, not 0.
func TestMaxOfNegativeSeries(t *testing.T) {
	r := &Result{MaxTempC: []float64{-21.5, -3.25, -17}}
	if got := r.MaxTemp(); got != -3.25 {
		t.Errorf("MaxTemp of all-negative series = %v, want -3.25", got)
	}
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{-5}, -5},
		{[]float64{-2, 4, -7}, 4},
		{[]float64{3, 1, 2}, 3},
	}
	for _, c := range cases {
		if got := maxOf(c.xs); got != c.want {
			t.Errorf("maxOf(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// TestSLOAttainmentNoData pins the "no data" marker: zero completions yield
// NaN (rendered as a blank report cell), distinct from a genuine 0%
// attainment, and missing endpoint slots behave the same.
func TestSLOAttainmentNoData(t *testing.T) {
	r := &Result{}
	if got := r.SLOAttainment(AllEndpoints); !math.IsNaN(got) {
		t.Errorf("attainment with no completions = %v, want NaN", got)
	}
	if got := r.SLOAttainment(3); !math.IsNaN(got) {
		t.Errorf("attainment of an unseen endpoint = %v, want NaN", got)
	}
	r.AddCompletion(llm.Completion{Endpoint: 0, Violated: true})
	if got := r.SLOAttainment(0); got != 0 {
		t.Errorf("all-violated attainment = %v, want exactly 0", got)
	}
	if got := r.SLOAttainment(AllEndpoints); got != 0 {
		t.Errorf("aggregate all-violated attainment = %v, want exactly 0", got)
	}
}

// TestShedAccountingSlices pins the per-endpoint shed/admitted bookkeeping:
// the parallel slices grow together no matter which accessor grows them,
// and the aggregate accessors sum across endpoints.
func TestShedAccountingSlices(t *testing.T) {
	r := &Result{}
	r.AddShed(2)
	r.AddAdmitted(0)
	r.AddAdmitted(2)
	r.AddCompletion(llm.Completion{Endpoint: 1})
	if got := r.RequestEndpoints(); got != 3 {
		t.Fatalf("endpoint slots = %d, want 3", got)
	}
	for _, n := range []int{len(r.ReqShed), len(r.ReqAdmitted), len(r.ReqTTFT), len(r.ReqViolated)} {
		if n != 3 {
			t.Fatalf("parallel slice lengths diverged: %d vs 3", n)
		}
	}
	if got := r.RequestsShed(AllEndpoints); got != 1 {
		t.Errorf("total shed = %d, want 1", got)
	}
	if got := r.RequestsAdmitted(AllEndpoints); got != 2 {
		t.Errorf("total admitted = %d, want 2", got)
	}
	if got := r.RequestsShed(2); got != 1 {
		t.Errorf("endpoint 2 shed = %d, want 1", got)
	}
	if got := r.RequestsShed(9); got != 0 {
		t.Errorf("out-of-range endpoint shed = %d, want 0", got)
	}
}
