package sim

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/tapas-sim/tapas/internal/trace"
)

// CompileCache is a two-level, content-addressed, size-bounded cache of
// compiled scenarios, safe for concurrent use.
//
// Level 1 keys whole *CompiledScenario values by ScenarioKey — a canonical
// hash of the compile-relevant Scenario fields — so identical grid points
// across sweeps, reruns, and concurrent campaigns compile once. Hits return
// a CompiledScenario variant adopting the caller's runtime-only fields
// (Tick, Failures, RecordRowSeries, Observer, Shards), which is exactly the
// set a compiled scenario can vary per run; reports from a cache hit are
// byte-identical to a cold compile.
//
// Level 2 memoizes the sub-artifacts Compile builds — the generated layout
// (plus every table derived from it), the workload (generated or
// trace-replayed, plus seeded history), and the outside-temperature series —
// under independent content keys. A climate sweep therefore reuses its
// layout and workload across all grid points, and a demand sweep reuses its
// layout and weather, even though every point's level-1 key differs.
//
// Each level is an LRU bounded by entry count. Concurrent compiles of the
// same level-1 key are deduplicated (the losers wait for the winner's
// result); concurrent compiles of different scenarios that share a
// sub-artifact may build it redundantly, which wastes work but never
// changes results — every build of the same key is byte-identical.
type CompileCache struct {
	scenarios *lruCache[*CompiledScenario]
	layouts   *lruCache[*layoutArtifacts]
	workloads *lruCache[*workloadArtifacts]
	weather   *lruCache[*trace.OutsideTemp]
	fp        *fingerprintMemo
	compiles  atomic.Uint64

	mu     sync.Mutex
	flight map[CacheKey]*flightCall
}

// DefaultCacheEntries is the default level-1 bound used by callers that take
// a cache size of 0.
const DefaultCacheEntries = 64

// NewCompileCache returns a cache bounded to maxEntries compiled scenarios
// (level 1); each level-2 sub-artifact cache is bounded to the same count.
// maxEntries <= 0 selects DefaultCacheEntries.
func NewCompileCache(maxEntries int) *CompileCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &CompileCache{
		scenarios: newLRUCache[*CompiledScenario](maxEntries),
		layouts:   newLRUCache[*layoutArtifacts](maxEntries),
		workloads: newLRUCache[*workloadArtifacts](maxEntries),
		weather:   newLRUCache[*trace.OutsideTemp](maxEntries),
		fp:        newFingerprintMemo(4 * maxEntries),
		flight:    make(map[CacheKey]*flightCall),
	}
}

// Compile returns the compiled scenario for sc, from cache when its content
// key is present and compiling (then caching) it otherwise. The returned
// value adopts sc's runtime-only fields and is safe for any number of
// concurrent Run calls, like a fresh Compile result.
//
// Traces attached to sc (Scenario.Trace, splice overlays) must not be
// mutated after first use — the same read-only contract Compile itself
// imposes — because their content fingerprints are memoized by pointer.
func (c *CompileCache) Compile(sc Scenario) (*CompiledScenario, error) {
	key, err := scenarioKey(sc, c.fp)
	if err != nil {
		return nil, err
	}
	if cs, ok := c.scenarios.get(key); ok {
		return cs.ForScenario(sc), nil
	}
	// Deduplicate concurrent compiles of the same key: the first caller
	// compiles, later ones wait and adopt its result.
	c.mu.Lock()
	if call, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		return call.cs.ForScenario(sc), nil
	}
	call := &flightCall{done: make(chan struct{})}
	c.flight[key] = call
	c.mu.Unlock()

	call.cs, call.err = c.compileCold(sc)
	if call.err == nil {
		c.scenarios.add(key, call.cs)
	}
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()
	close(call.done)
	if call.err != nil {
		return nil, call.err
	}
	return call.cs, nil
}

// Key exposes the level-1 content key of a scenario, computed with the
// cache's trace-fingerprint memo (campaigns use it to deduplicate grid
// points before the compile fan-out).
func (c *CompileCache) Key(sc Scenario) (CacheKey, error) {
	return scenarioKey(sc, c.fp)
}

// Compiles returns the number of cold compiles the cache has performed —
// the work every other Compile call skipped.
func (c *CompileCache) Compiles() uint64 { return c.compiles.Load() }

// compileCold builds a compiled scenario through the level-2 sub-artifact
// caches: layout tables, workload (plus seeded history), and weather are
// reused when their content keys match a previous compile.
func (c *CompileCache) compileCold(sc Scenario) (*CompiledScenario, error) {
	c.compiles.Add(1)
	lk := layoutKey(sc.Layout, sc.Oversubscribe)
	la, ok := c.layouts.get(lk)
	if !ok {
		var err error
		la, err = buildLayoutArtifacts(sc.Layout, sc.Oversubscribe)
		if err != nil {
			return nil, err
		}
		c.layouts.add(lk, la)
	}
	wk, err := workloadKey(sc, len(la.dc.Servers), c.fp)
	if err != nil {
		return nil, err
	}
	wa, ok := c.workloads.get(wk)
	if !ok {
		wa, err = buildWorkloadArtifacts(sc, len(la.dc.Servers))
		if err != nil {
			return nil, err
		}
		c.workloads.add(wk, wa)
	}
	wkey := weatherKey(sc.Region, sc.StartOffset+sc.Duration, wa.w.Config.Seed^outsideSeedXor)
	out, ok2 := c.weather.get(wkey)
	if !ok2 {
		out = buildOutside(sc, wa.w)
		c.weather.add(wkey, out)
	}
	return assemble(sc, la, wa, out), nil
}

// Stats returns a consistent-enough snapshot of per-level counters (each
// level is snapshotted atomically; levels are read in sequence).
func (c *CompileCache) Stats() CacheStats {
	return CacheStats{
		Compiles:  c.compiles.Load(),
		Scenarios: c.scenarios.stats(),
		Layouts:   c.layouts.stats(),
		Workloads: c.workloads.stats(),
		Weather:   c.weather.stats(),
	}
}

// CacheStats is a snapshot of CompileCache counters, one LevelStats per
// cache level plus the total number of cold compiles performed.
type CacheStats struct {
	Compiles  uint64     `json:"compiles"`
	Scenarios LevelStats `json:"scenarios"`
	Layouts   LevelStats `json:"layouts"`
	Workloads LevelStats `json:"workloads"`
	Weather   LevelStats `json:"weather"`
}

// LevelStats counts one cache level's traffic.
type LevelStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

type flightCall struct {
	done chan struct{}
	cs   *CompiledScenario
	err  error
}

// lruCache is a mutex-guarded LRU keyed by CacheKey and bounded by entry
// count. Values are shared read-only artifacts, so eviction just drops the
// reference.
type lruCache[V any] struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[CacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry[V any] struct {
	key CacheKey
	val V
}

func newLRUCache[V any](max int) *lruCache[V] {
	return &lruCache[V]{max: max, ll: list.New(), items: make(map[CacheKey]*list.Element)}
}

func (c *lruCache[V]) get(k CacheKey) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

func (c *lruCache[V]) add(k CacheKey, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		// A concurrent compile of the same sub-artifact key finished first;
		// keep the incumbent (values for one key are interchangeable) and
		// refresh its recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry[V]{key: k, val: v})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		ent := el.Value.(*lruEntry[V])
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.evictions++
	}
}

func (c *lruCache[V]) stats() LevelStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return LevelStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}

// keysMRU returns the cached keys from most to least recently used (tests).
func (c *lruCache[V]) keysMRU() []CacheKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CacheKey, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).key)
	}
	return out
}

// fingerprintMemo memoizes workload content fingerprints by pointer, so
// repeated key computations against the same in-memory trace do not
// re-serialize it. Bounded: the map is dropped wholesale when full (the
// memo is an optimization; correctness never depends on it).
type fingerprintMemo struct {
	mu  sync.Mutex
	max int
	fps map[*trace.Workload]CacheKey
}

func newFingerprintMemo(max int) *fingerprintMemo {
	return &fingerprintMemo{max: max, fps: make(map[*trace.Workload]CacheKey)}
}

func (m *fingerprintMemo) get(w *trace.Workload) (CacheKey, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fp, ok := m.fps[w]
	return fp, ok
}

func (m *fingerprintMemo) put(w *trace.Workload, fp CacheKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.fps) >= m.max {
		clear(m.fps)
	}
	m.fps[w] = fp
}
