package sim

import (
	"reflect"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// Compile-time checks that the SLO policy family plugs into every optional
// engine surface it is designed for.
var (
	_ Policy           = (*core.SLO)(nil)
	_ RequestAdmitter  = (*core.SLO)(nil)
	_ RequestScheduler = (*core.SLO)(nil)
	_ SLOTunable       = (*core.SLO)(nil)
	_ RequestRouter    = (*core.SLO)(nil)
)

// overloadedRequests scales the synthetic log until the small fleet cannot
// serve everything inside the SLO, so deadline-aware admission has load to
// shed.
func overloadedRequests(t *testing.T, factor float64) []llm.Request {
	t.Helper()
	chain := transform.Chain{&transform.DemandScale{SaaS: factor}}
	scaled, err := chain.ApplyRequests(syntheticRequests(400, 2, 7*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	return scaled
}

// TestSLOAdmissionAccounting is the shed bookkeeping contract: every routed
// request is either admitted or shed (admitted + shed = arrived), completions
// never exceed admissions, and under heavy overload the policy actually
// sheds.
func TestSLOAdmissionAccounting(t *testing.T) {
	reqs := overloadedRequests(t, 8)
	cs, err := Compile(requestScenario(reqs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cs.Run(core.NewSLO(false))
	if err != nil {
		t.Fatal(err)
	}
	admitted := res.RequestsAdmitted(AllEndpoints)
	shed := res.RequestsShed(AllEndpoints)
	if admitted+shed != len(reqs) {
		t.Errorf("admitted %d + shed %d = %d, want every arrived request (%d)",
			admitted, shed, admitted+shed, len(reqs))
	}
	if shed == 0 {
		t.Error("8x overload shed nothing; admission control inactive")
	}
	if done := res.RequestsCompleted(AllEndpoints); done > admitted {
		t.Errorf("completed %d exceeds admitted %d", done, admitted)
	}
	for ep := 0; ep < res.RequestEndpoints(); ep++ {
		if res.RequestsShed(ep) < 0 || res.RequestsAdmitted(ep) < 0 {
			t.Fatalf("endpoint %d: negative accounting", ep)
		}
	}

	// Policies without admission control shed nothing and admit everything.
	base, err := cs.Run(core.New(core.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := base.RequestsShed(AllEndpoints); got != 0 {
		t.Errorf("baseline shed %d requests, want 0", got)
	}
	if got := base.RequestsAdmitted(AllEndpoints); got != len(reqs) {
		t.Errorf("baseline admitted %d, want all %d", got, len(reqs))
	}
}

// TestSLOAdmissionBeatsTAPASUnderOverload is the tentpole claim: at heavy
// overload, shedding doomed requests keeps the latency of what remains
// inside the SLO, so the deadline-aware policy's attainment (over
// completions) beats TAPAS's.
func TestSLOAdmissionBeatsTAPASUnderOverload(t *testing.T) {
	cs, err := Compile(requestScenario(overloadedRequests(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	tapas, err := cs.Run(core.NewFull())
	if err != nil {
		t.Fatal(err)
	}
	slo, err := cs.Run(core.NewSLO(false))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := slo.SLOAttainment(AllEndpoints), tapas.SLOAttainment(AllEndpoints); !(a > b) {
		t.Errorf("SLO-Admit attainment %.4f does not beat TAPAS %.4f at 8x overload", a, b)
	}
}

// TestSLOPoliciesShardsByteIdentical extends the shard-determinism property
// to admission control and both queue disciplines: shedding decisions, EDF
// reordering, and the harvest order must be bit-identical at every shard
// count.
func TestSLOPoliciesShardsByteIdentical(t *testing.T) {
	cs, err := Compile(requestScenario(overloadedRequests(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []struct {
		name string
		new  func() Policy
	}{
		{"slo-fifo", func() Policy { return core.NewSLO(false) }},
		{"slo-edf", func() Policy { return core.NewSLO(true) }},
	} {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			serial, err := cs.Variant(func(s *Scenario) { s.Shards = 1 }).Run(pol.new())
			if err != nil {
				t.Fatal(err)
			}
			if serial.RequestsCompleted(AllEndpoints) == 0 {
				t.Fatal("request mode inactive: no completions to compare")
			}
			for _, n := range []int{2, 7, -1} {
				res, err := cs.Variant(func(s *Scenario) { s.Shards = n }).Run(pol.new())
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				if !reflect.DeepEqual(serial, res) {
					t.Errorf("shards=%d diverged from the serial engine", n)
				}
			}
		})
	}
}

// TestSLOSchedCacheKey pins the keying contract for the new policy
// parameters: the zero value keys identically to the pre-SLOSched encoding
// (existing cache entries stay valid), while any non-zero parameter — and
// each distinct value — changes the key.
func TestSLOSchedCacheKey(t *testing.T) {
	reqs := syntheticRequests(50, 2, 5*time.Minute)
	base := requestScenario(reqs)
	k0, err := ScenarioKey(base)
	if err != nil {
		t.Fatal(err)
	}
	zero := requestScenario(reqs)
	zero.SLOSched = SLOSched{}
	if k, _ := ScenarioKey(zero); k != k0 {
		t.Error("zero SLOSched changed the scenario key")
	}
	weighted := requestScenario(reqs)
	weighted.SLOSched = SLOSched{AffinityWeight: 0.25}
	kw, err := ScenarioKey(weighted)
	if err != nil {
		t.Fatal(err)
	}
	if kw == k0 {
		t.Error("affinity weight not folded into the scenario key")
	}
	slacked := requestScenario(reqs)
	slacked.SLOSched = SLOSched{AdmissionSlack: 1.5}
	ks, err := ScenarioKey(slacked)
	if err != nil {
		t.Fatal(err)
	}
	if ks == k0 || ks == kw {
		t.Error("admission slack not distinguished in the scenario key")
	}
}

// TestVariantRejectsSLOSchedChange pins that SLOSched is compile-relevant:
// a variant changing it must be rejected instead of silently reusing
// artifacts keyed under other parameters.
func TestVariantRejectsSLOSchedChange(t *testing.T) {
	cs, err := Compile(requestScenario(syntheticRequests(50, 2, 5*time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	v := cs.Variant(func(s *Scenario) { s.SLOSched.AdmissionSlack = 2 })
	if _, err := v.Run(core.NewSLO(false)); err == nil {
		t.Fatal("variant changing SLOSched ran without recompiling")
	}
}

// TestSLOTuningChangesBehavior pins the TuneSLO plumbing end to end: a
// generous admission slack must shed no more than a strict one on the same
// compiled log.
func TestSLOTuningChangesBehavior(t *testing.T) {
	reqs := overloadedRequests(t, 4)
	shedAt := func(slack float64) int {
		sc := requestScenario(reqs)
		sc.SLOSched.AdmissionSlack = slack
		res, err := Run(sc, core.NewSLO(false))
		if err != nil {
			t.Fatal(err)
		}
		return res.RequestsShed(AllEndpoints)
	}
	strict, generous := shedAt(0.5), shedAt(100)
	if strict == 0 {
		t.Error("slack 0.5 at 4x overload shed nothing")
	}
	if generous > strict {
		t.Errorf("slack 100 shed %d requests, more than slack 0.5's %d", generous, strict)
	}
}
