package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/thermal"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/units"
)

// dynPowerExp is the DVFS exponent of the power physics; aliasing the
// exported constant keeps the kernel's capped-power scaling and every
// capping inversion on one source of truth.
const dynPowerExp = power.DVFSExponent

// capRecovery is the per-tick multiplicative recovery of frequency caps once
// the pressure that caused them subsides.
const capRecovery = 1.05

// Run executes a scenario under a policy and returns the collected metrics.
// It compiles the scenario's run-invariant artifacts and runs once; callers
// evaluating several policies (or failure schedules) over the same scenario
// should Compile once and call CompiledScenario.Run per policy instead.
func Run(sc Scenario, pol Policy) (*Result, error) {
	if sc.Tick <= 0 {
		return nil, fmt.Errorf("sim: non-positive tick %v", sc.Tick)
	}
	cs, err := Compile(sc)
	if err != nil {
		return nil, err
	}
	return cs.Run(pol)
}

// Initializer is an optional policy extension invoked once before the run,
// e.g. for offline profiling (§4.5).
type Initializer interface {
	Init(st *cluster.State) error
}

// The tick kernel (airflowStep + fleetStep) is split into two phases so a run
// can shard across workers and still report byte-identically to a serial run:
//
//   - Phase A visits every server exactly once, writing only that server's
//     slots in the flat telemetry arrays plus per-shard partials whose merge
//     is exact under any grouping (integer counters, float max). Shards are
//     fixed contiguous server-ID ranges, so the partition never depends on
//     timing.
//   - Phase B runs serially in ascending server-ID order and performs every
//     floating-point accumulation (row power, total power, aisle airflow
//     demand, IaaS cap-loss) exactly as the historical fused loop did — same
//     values, same order — so float non-associativity never shows.
//
// The dirty-set tick rides on the same structure: a server that ended the
// previous sweep idle and uncapped cannot throttle or change power, so phase
// A replaces its physics with compile-time idle constants, and rows whose
// occupancy epoch and capping inputs are untouched skip even the per-server
// checks (see Scenario.Shards, the Policy capping contract, and
// cluster.State.RowOccEpoch).
type runner struct {
	sc      Scenario
	cs      *CompiledScenario
	pol     Policy
	st      *cluster.State
	outside *trace.OutsideTemp

	thermalCap    []float64 // hardware throttle factor per server
	aisleViolated []bool    // airflow demand exceeded supply this tick
	prevDCLoad    float64
	pending       []int // VM IDs awaiting placement
	nextVM        int
	res           *Result

	// Request-level replay state (Scenario.Requests): the monotone admission
	// cursor into the compiled request log, the optional per-request
	// router/admitter the policy implements, the queue discipline it selects,
	// and per-endpoint token scratch feeding the demand observations the
	// configurator sizes against.
	reqCursor   int
	reqRouter   RequestRouter
	reqAdmitter RequestAdmitter
	queueDisc   llm.Discipline
	epReqTokens []float64

	// Per-tick scratch for the fleet sweep: cap-recovery eligibility depends
	// only on the row/aisle, so it is evaluated once per row/aisle instead
	// of once per server.
	rowRecoverOK   []bool
	aisleRecoverOK []bool

	// Sharding state. pool is nil for serial runs; shards is the effective
	// count (≥ 1). srvCapLoss defers the IaaS cap-loss contribution from
	// phase A (parallel, unordered) to phase B (serial, ID-ordered); -1
	// marks "not an IaaS server this tick".
	pool          *shardPool
	shards        int
	srvCapLoss    []float64
	shardMaxTemp  []float64
	shardThrottle []int
	shardStable   [][]int32 // per shard: per row, servers that ended the sweep idle+uncapped

	// Dirty-set row epochs. A row whose servers all ended the previous sweep
	// idle and uncapped, whose occupancy epoch is unchanged, and whose row
	// and aisle saw no capping call since, is swept through the idle fast
	// path without per-server checks.
	rowStableCnt    []int32
	rowOccSeen      []uint64
	rowCapTouched   []bool
	aisleCapTouched []bool
	rowFastUntil    []int32 // per row: idle-sweep up to this server ID (exclusive); -1 = dirty

	// phaseDaily[i] is this tick's diurnal sine for compiled phase i
	// (CompiledScenario.phaseBy): one sine per distinct customer phase per
	// tick instead of one per IaaS server.
	phaseDaily []float64
	// fanSeeded flips after the first airflowStep; from then on fan airflow
	// comes from the tick kernel, not a separate fleet pass.
	fanSeeded bool
	// expiry is a binary min-heap of (departure time, VM ID) over placed
	// VMs, so the per-tick departure pass pops only the VMs actually due
	// instead of scanning every placed VM. Popped IDs are re-sorted
	// ascending before removal — the order the full scan removed them in —
	// and re-checked against live state, so stale entries are harmless.
	expiry    []vmExpiry
	expiryDue []int
	// tickEval shares this tick's weekend/noise-bucket terms across every
	// un-warped load-pattern evaluation; vmNoise memoizes each VM's noise
	// hashes across the ~10 ticks that share a bucket.
	tickEval trace.TickEval
	vmNoise  []trace.NoiseCache
}

// vmExpiry is one expiry-heap entry: the simulation time a placed VM's
// lifetime ends, and which VM.
type vmExpiry struct {
	at time.Duration
	vm int32
}

func (r *runner) pushExpiry(vmID int, at time.Duration) {
	r.expiry = append(r.expiry, vmExpiry{at: at, vm: int32(vmID)})
	i := len(r.expiry) - 1
	for i > 0 {
		p := (i - 1) / 2
		if r.expiry[p].at <= r.expiry[i].at {
			break
		}
		r.expiry[p], r.expiry[i] = r.expiry[i], r.expiry[p]
		i = p
	}
}

func (r *runner) popExpiry() {
	h := r.expiry
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	r.expiry = h
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h[c+1].at < h[c].at {
			c++
		}
		if h[i].at <= h[c].at {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

func (r *runner) run() (*Result, error) {
	st := r.st
	ticks := int(r.sc.Duration / r.sc.Tick)
	r.res = &Result{Policy: r.pol.Name(), Tick: r.sc.Tick, Ticks: ticks}
	r.res.MaxTempC = make([]float64, 0, ticks)
	r.res.PeakRowPowerW = make([]float64, 0, ticks)
	r.res.TotalPowerW = make([]float64, 0, ticks)
	if r.sc.RecordRowSeries {
		r.res.RowPowerW = make([][]float64, len(st.DC.Rows))
		for row := range r.res.RowPowerW {
			r.res.RowPowerW[row] = make([]float64, 0, ticks)
		}
	}
	n := len(st.DC.Servers)
	rows := len(st.DC.Rows)
	r.thermalCap = make([]float64, n)
	for i := range r.thermalCap {
		r.thermalCap[i] = 1
		// Seed the fan-control lag with each generation's idle draw.
		st.ServerPowerW[i] = r.cs.idleWBy[r.cs.srvModel[i]]
	}
	r.aisleViolated = make([]bool, len(st.DC.Aisles))
	r.rowRecoverOK = make([]bool, rows)
	r.aisleRecoverOK = make([]bool, len(st.DC.Aisles))
	r.prevDCLoad = 0.3

	r.shards = normalizeShards(r.sc.Shards, n)
	if r.shards > 1 {
		r.pool = newShardPool(r.shards, n)
		defer r.pool.close()
	}
	r.srvCapLoss = make([]float64, n)
	for i := range r.srvCapLoss {
		r.srvCapLoss[i] = -1
	}
	r.shardMaxTemp = make([]float64, r.shards)
	r.shardThrottle = make([]int, r.shards)
	r.shardStable = make([][]int32, r.shards)
	for s := range r.shardStable {
		r.shardStable[s] = make([]int32, rows)
	}
	r.rowStableCnt = make([]int32, rows)
	r.rowOccSeen = make([]uint64, rows)
	r.rowCapTouched = make([]bool, rows)
	r.aisleCapTouched = make([]bool, len(st.DC.Aisles))
	r.rowFastUntil = make([]int32, rows)
	r.phaseDaily = make([]float64, len(r.cs.phaseBy))
	r.vmNoise = make([]trace.NoiseCache, len(st.VMs))
	for i := range r.vmNoise {
		r.vmNoise[i].Bucket = ^uint64(0)
	}
	requestMode := len(r.cs.requests) > 0
	if requestMode {
		r.epReqTokens = make([]float64, len(st.Work.Endpoints))
		r.reqRouter, _ = r.pol.(RequestRouter)
		r.reqAdmitter, _ = r.pol.(RequestAdmitter)
		if rs, ok := r.pol.(RequestScheduler); ok {
			r.queueDisc = rs.QueueDiscipline()
		}
	}
	if tun, ok := r.pol.(SLOTunable); ok {
		tun.TuneSLO(r.sc.SLOSched.AffinityWeight, r.sc.SLOSched.AdmissionSlack)
	}
	if tun, ok := r.pol.(PowerGovTunable); ok {
		tun.TunePowerGov(r.sc.PowerGov.BudgetFrac, r.sc.PowerGov.Gain)
	}
	// Per-endpoint energy/token accounting is sized up front: every SaaS VM
	// spec references a workload endpoint, so the slices never grow mid-run.
	r.res.EndpointEnergyJ = make([]float64, len(st.Work.Endpoints))
	r.res.EndpointServedTokens = make([]float64, len(st.Work.Endpoints))

	for ti := 0; ti < ticks; ti++ {
		now := time.Duration(ti+1) * r.sc.Tick
		wall := r.sc.StartOffset + now
		st.Now = now
		st.Wall = wall
		st.OutsideC = r.outside.At(wall)
		st.DCLoadFrac = r.prevDCLoad

		r.applyFailures(now)
		r.churnVMs(now)
		if requestMode {
			r.routeRequests(now)
		} else {
			r.routeDemand(wall)
		}
		r.pol.Configure(st)
		r.airflowStep()
		r.fleetStep(wall)
		st.RecordHistory(r.sc.Tick)
		if r.sc.Observer != nil {
			r.sc.Observer(st)
		}
	}
	// Harvest instances still running at the end.
	for _, vm := range st.VMs {
		if vm.Instance != nil {
			r.harvest(vm)
		}
	}
	return r.res, nil
}

// applyFailures sets the emergency multipliers for the current time.
func (r *runner) applyFailures(now time.Duration) {
	airflow, powerMult := 1.0, 1.0
	for _, f := range r.sc.Failures {
		if now >= f.At && now < f.At+f.Duration {
			switch f.Kind {
			case CoolingFailure:
				airflow = 0.90
			case PowerFailure:
				powerMult = 0.75
			}
		}
	}
	r.st.AirflowLimitFrac = airflow
	r.st.Budget.SetEmergency(powerMult)
}

// churnVMs processes departures and (re)tries placements.
func (r *runner) churnVMs(now time.Duration) {
	st := r.st
	// Departures: pop the due expiry-heap entries instead of scanning every
	// placed VM. A placed VM is inactive exactly when now has reached its
	// recorded departure time, and removing the due set in ascending VM-ID
	// order reproduces the full scan's removal (and harvest accumulation)
	// order bit for bit.
	due := r.expiryDue[:0]
	for len(r.expiry) > 0 && r.expiry[0].at <= now {
		due = append(due, int(r.expiry[0].vm))
		r.popExpiry()
	}
	sort.Ints(due)
	for _, vmID := range due {
		vm := st.VMs[vmID]
		if vm.Server >= 0 && !vm.Spec.Active(now) {
			if vm.Instance != nil {
				r.harvest(vm)
			}
			st.Remove(vm.Spec.ID)
		}
	}
	r.expiryDue = due
	for r.nextVM < len(st.VMs) && st.VMs[r.nextVM].Spec.Arrival <= now {
		// A VM placed before its cursor admission (an initializer seed)
		// enters the departure set here, exactly when the old scan's
		// [:nextVM] window would first have covered it.
		if vm := st.VMs[r.nextVM]; vm.Server >= 0 {
			r.pushExpiry(r.nextVM, vm.Spec.Arrival+vm.Spec.Lifetime)
		}
		r.pending = append(r.pending, r.nextVM)
		r.nextVM++
	}
	keep := r.pending[:0]
	for _, vmID := range r.pending {
		vm := st.VMs[vmID]
		if !vm.Spec.Active(now) {
			continue // expired before it could be placed
		}
		if srv, ok := r.pol.Place(st, vm); ok {
			if err := st.Place(vmID, srv); err == nil {
				r.pushExpiry(vmID, vm.Spec.Arrival+vm.Spec.Lifetime)
				continue
			}
		}
		r.res.PlacementRejects++
		keep = append(keep, vmID)
	}
	r.pending = keep
}

// routeDemand distributes each endpoint's token demand via the policy.
func (r *runner) routeDemand(wall time.Duration) {
	st := r.st
	for _, ep := range st.Work.Endpoints {
		prompt, output := ep.DemandTokens(wall, r.sc.Tick)
		if prompt+output <= 0 {
			continue
		}
		insts := st.EndpointInstances(ep.ID)
		if len(insts) == 0 {
			continue
		}
		st.ObserveEndpointDemand(ep.ID, (prompt+output)/r.sc.Tick.Seconds()/float64(len(insts)))
		r.res.SaaSDemandTokens += prompt + output
		r.pol.Route(st, ep, prompt, output)
	}
}

// routeRequests is routeDemand in request-level replay mode: it admits every
// request that arrived by the start of this tick (the log is
// arrival-sorted, so a monotone cursor suffices) into one instance's
// continuous-batching queue. Admission at tick start keeps queueing delay
// and TTFT non-negative: the per-instance queue clocks sit exactly at tick
// start when routing runs. The policy picks the instance when it implements
// RequestRouter; otherwise (and whenever it declines) the engine routes to
// the least-loaded non-reloading instance, ties to the lowest VM ID.
// Requests targeting an endpoint with no placed instances are dropped, as
// binned demand for an instance-less endpoint is. Admitted tokens still feed
// st.ObserveEndpointDemand, so the configurator sees the same per-VM demand
// signal as in binned mode.
func (r *runner) routeRequests(now time.Duration) {
	st := r.st
	reqs := r.cs.requests
	tickStart := now - r.sc.Tick
	// Instances placed since the last tick enter replay mode here, with
	// their queue clock at tick start — before their first Step.
	for ep := range st.Work.Endpoints {
		for _, vm := range st.EndpointInstances(ep) {
			if in := vm.Instance; in.Queue() == nil {
				in.AttachQueue(tickStart)
				in.Queue().SetDiscipline(r.queueDisc)
			}
		}
	}
	for i := range r.epReqTokens {
		r.epReqTokens[i] = 0
	}
	for r.reqCursor < len(reqs) && reqs[r.reqCursor].Arrival <= tickStart {
		req := reqs[r.reqCursor]
		r.reqCursor++
		insts := st.EndpointInstances(req.Endpoint)
		if len(insts) == 0 {
			continue
		}
		// Shed requests still count toward the observed demand signal: the
		// load arrived whether or not the policy accepted it, and the
		// configurator should size against true pressure.
		r.epReqTokens[req.Endpoint] += float64(req.TotalTokens())
		idx, ok := -1, false
		if r.reqAdmitter != nil {
			// An admission-controlling policy replaces RouteRequest wholesale:
			// it both picks the instance and may shed the request outright.
			var admit bool
			idx, admit = r.reqAdmitter.AdmitRequest(st, insts, req)
			if !admit {
				r.res.AddShed(req.Endpoint)
				continue
			}
			ok = true
		} else if r.reqRouter != nil {
			idx, ok = r.reqRouter.RouteRequest(st, insts, req)
		}
		if !ok || idx < 0 || idx >= len(insts) {
			idx = defaultRequestTarget(insts)
		}
		insts[idx].Instance.EnqueueRequest(req)
		r.res.AddAdmitted(req.Endpoint)
	}
	tickSecs := r.sc.Tick.Seconds()
	for ep, tokens := range r.epReqTokens {
		if tokens <= 0 {
			continue
		}
		insts := st.EndpointInstances(ep)
		st.ObserveEndpointDemand(ep, tokens/tickSecs/float64(len(insts)))
		r.res.SaaSDemandTokens += tokens
	}
}

// defaultRequestTarget picks the instance with the least queued seconds of
// work, skipping reloading instances when any alternative exists; insts is
// in ascending VM-ID order, so strict improvement ties to the lowest VM ID.
func defaultRequestTarget(insts []*cluster.VM) int {
	best, bestLoad := -1, math.Inf(1)
	for i, vm := range insts {
		in := vm.Instance
		if in.Reloading() {
			continue
		}
		if d := in.DemandSeconds(); d < bestLoad {
			best, bestLoad = i, d
		}
	}
	if best < 0 {
		return 0 // every instance is reloading; the oldest absorbs the wait
	}
	return best
}

// airflowStep derives per-server airflow from the previous tick's power
// (fans chase heat, so fan control lags load by one tick), aggregates aisle
// demand, and invokes the policy when an aisle out-draws its AHUs. Phase A
// (per-server airflow) shards; phase B (aisle sums, policy calls) runs
// serially in server-ID order — the accumulation sequence of the historical
// fused loop.
func (r *runner) airflowStep() {
	st := r.st
	if !r.fanSeeded {
		// First tick only: ServerPowerW holds the initializer's seed rather
		// than a kernel-written value, so derive fan airflow from it once.
		// Every later tick reuses the airflow fleetShard stored alongside
		// the server power it is a pure function of — nothing between the
		// kernel write and this read mutates ServerPowerW, so folding the
		// fan pass into the kernel is exact and saves a fleet-wide sweep.
		r.fanSeeded = true
		if r.pool != nil {
			r.pool.run(func(_, lo, hi int) { r.airflowShard(lo, hi) })
		} else {
			r.airflowShard(0, len(st.ServerPowerW))
		}
	}
	for a := range st.AisleDemandCFM {
		st.AisleDemandCFM[a] = 0
	}
	srvAisle := r.cs.srvAisle
	for id, af := range st.ServerAirflowCFM {
		st.AisleDemandCFM[srvAisle[id]] += af
	}
	for a := range st.AisleDemandCFM {
		limit := st.AisleLimitCFM(a)
		r.aisleViolated[a] = st.AisleDemandCFM[a] > limit
		if r.aisleViolated[a] {
			r.pol.CapAisle(st, a, st.AisleDemandCFM[a], limit)
			r.aisleCapTouched[a] = true
		}
		st.AisleRecircC[a] = thermal.RecirculationPenalty(st.AisleDemandCFM[a], limit)
	}
}

// airflowShard computes fan airflow for a contiguous server range. A server
// drawing exactly the idle tick power — every idle server after its first
// sweep — reuses the precompiled idle airflow instead of re-deriving it.
func (r *runner) airflowShard(lo, hi int) {
	st := r.st
	cs := r.cs
	for id := lo; id < hi; id++ {
		m := cs.srvModel[id]
		p := st.ServerPowerW[id]
		if p == cs.idleTickWBy[m] {
			st.ServerAirflowCFM[id] = cs.idleAirflowBy[m]
			continue
		}
		spec := &cs.specBy[m]
		idleP := cs.idleWBy[m]
		heatFrac := units.Clamp01((p - idleP) / (spec.ServerTDPW - idleP))
		st.ServerAirflowCFM[id] = thermal.Airflow(spec, heatFrac)
	}
}

// fleetStep is the fused tick kernel: one pass over the fleet advances SaaS
// instances, computes per-GPU power fractions, applies hardware thermal
// throttling against the compiled coefficient tables, and accumulates server,
// row and total power. Phase A (per-server physics) shards; phase B (row,
// total and IaaS reductions) runs serially in server-ID order; a trailing
// per-row loop applies the policy's capping response and records the tick.
//
// A server-tick is thermally capped when its GPUs throttle or its aisle's
// airflow is violated; power-capped when its row exceeds its effective limit.
func (r *runner) fleetStep(wall time.Duration) {
	st := r.st
	cs := r.cs
	// Caps recover gradually, and only while the constraints that
	// motivated them sit comfortably below their limits — otherwise
	// recovery and re-capping oscillate across the limit every tick.
	// Row eligibility reads the previous tick's power, so it must be
	// evaluated before the accumulators reset.
	for row := range r.rowRecoverOK {
		r.rowRecoverOK[row] = st.RowPowerW[row] < st.Budget.RowLimitW(row)*0.93
	}
	for a := range r.aisleRecoverOK {
		r.aisleRecoverOK[a] = st.AisleDemandCFM[a] < st.AisleLimitCFM(a)*0.93
	}

	// Dirty-set gate: a row re-enters the full per-server sweep only when
	// some input changed since its last visit — a placement or removal
	// (occupancy epoch), a capping call on the row or its aisle, or a server
	// that ended the previous sweep occupied or capped. Everything else
	// about a clean row is reproduced exactly by the idle fast path.
	dcRows := st.DC.Rows
	for row := range dcRows {
		if r.rowStableCnt[row] == int32(len(dcRows[row].Servers)) &&
			st.RowOccEpoch[row] == r.rowOccSeen[row] &&
			!r.rowCapTouched[row] && !r.aisleCapTouched[dcRows[row].Aisle] {
			r.rowFastUntil[row] = cs.rowSpanEnd[row]
		} else {
			r.rowFastUntil[row] = -1
		}
		r.rowOccSeen[row] = st.RowOccEpoch[row]
		r.rowCapTouched[row] = false
	}
	for a := range r.aisleCapTouched {
		r.aisleCapTouched[a] = false
	}

	for row := range st.RowPowerW {
		st.RowPowerW[row] = 0
	}
	// The cooling-curve base is uniform across the fleet this tick; only the
	// per-server spatial offset and aisle recirculation vary.
	inletBase := thermal.CoolingCurve(st.OutsideC, st.DCLoadFrac)
	r.tickEval = trace.NewTickEval(wall)
	for i, ph := range cs.phaseBy {
		r.phaseDaily[i] = trace.DailySin(wall, ph)
	}
	n := len(st.ServerPowerW)

	// Phase A: per-server physics over fixed contiguous shard ranges.
	if r.pool != nil {
		r.pool.run(func(s, lo, hi int) {
			stable := r.shardStable[s]
			for i := range stable {
				stable[i] = 0
			}
			r.shardMaxTemp[s], r.shardThrottle[s] = r.fleetShard(wall, inletBase, lo, hi, stable)
		})
	} else {
		stable := r.shardStable[0]
		for i := range stable {
			stable[i] = 0
		}
		r.shardMaxTemp[0], r.shardThrottle[0] = r.fleetShard(wall, inletBase, 0, n, stable)
	}
	maxTemp := 0.0
	for s := 0; s < r.shards; s++ {
		if r.shardMaxTemp[s] > maxTemp {
			maxTemp = r.shardMaxTemp[s]
		}
		r.res.ThermalThrottleSrvTicks += r.shardThrottle[s]
	}
	for row := range r.rowStableCnt {
		c := r.shardStable[0][row]
		for s := 1; s < r.shards; s++ {
			c += r.shardStable[s][row]
		}
		r.rowStableCnt[row] = c
	}

	// Phase B: the floating-point reductions, serial in ascending server-ID
	// order — the exact accumulation sequence of the historical fused loop.
	srvRow := cs.srvRow
	total := 0.0
	for id, p := range st.ServerPowerW {
		st.RowPowerW[srvRow[id]] += p
		total += p
		if st.ServerFreqCap[id] < 1 {
			r.res.FreqCapSrvTicks++
		}
		if cl := r.srvCapLoss[id]; cl >= 0 {
			r.srvCapLoss[id] = -1
			r.res.IaaSFreqCapSum += cl
			r.res.IaaSServerTicks++
			vm := st.VMs[st.ServerVM[id]]
			st.ObserveCustomerLoad(vm.Spec.Customer, st.ServerLoadFrac[id])
		}
	}
	// Per-endpoint energy: integrate the full power of every server hosting
	// an endpoint's instances over the tick. Runs in the serial phase so the
	// per-endpoint float accumulation is in fixed (endpoint, ascending VM-ID)
	// order — byte-identical at any shard count, like the reductions above.
	tickSecs := r.sc.Tick.Seconds()
	for ep := range r.res.EndpointEnergyJ {
		sum := 0.0
		for _, vm := range st.EndpointInstances(ep) {
			sum += st.ServerPowerW[vm.Server]
		}
		r.res.EndpointEnergyJ[ep] += sum * tickSecs
	}

	r.res.ServerTicks += n
	r.res.MaxTempC = append(r.res.MaxTempC, maxTemp)
	peak := 0.0
	for row, draw := range st.RowPowerW {
		limit := st.Budget.RowLimitW(row)
		if draw > limit {
			r.pol.CapRow(st, row, draw, limit)
			r.rowCapTouched[row] = true
			r.res.PowerCapSrvTicks += len(st.DC.Rows[row].Servers)
		}
		if draw > peak {
			peak = draw
		}
		if r.sc.RecordRowSeries {
			r.res.RowPowerW[row] = append(r.res.RowPowerW[row], draw)
		}
	}
	r.res.PeakRowPowerW = append(r.res.PeakRowPowerW, peak)
	r.res.TotalPowerW = append(r.res.TotalPowerW, total)
	r.prevDCLoad = total / cs.fleetTDPW
}

// fleetShard runs phase A for servers [lo, hi): per-server physics with no
// cross-server accumulation. It returns the range's max GPU temperature and
// thermally-capped server count (both merge exactly across shards), and
// counts per row how many servers ended the sweep idle and uncapped.
func (r *runner) fleetShard(wall time.Duration, inletBase float64, lo, hi int, stable []int32) (maxTemp float64, throttleTicks int) {
	st := r.st
	cs := r.cs
	co := cs.Coeffs
	srvRow, srvAisle := cs.srvRow, cs.srvAisle
	gpus := st.GPUsPerServer
	id := lo
	for id < hi {
		row := int(srvRow[id])
		if fu := r.rowFastUntil[row]; fu > int32(id) {
			// Clean row: every server is known idle and uncapped, so sweep
			// its contiguous span without re-checking each one.
			end := hi
			if int(fu) < end {
				end = int(fu)
			}
			aisle := int(srvAisle[id])
			viol := r.aisleViolated[aisle]
			start := id
			for ; id < end; id++ {
				if t := r.idleServer(id, inletBase, aisle); t > maxTemp {
					maxTemp = t
				}
				if viol {
					throttleTicks++
				}
			}
			stable[row] += int32(id - start)
			continue
		}
		m := cs.srvModel[id]
		spec := &cs.specBy[m]
		idleFrac := cs.idleFracBy[m]
		throttleC := spec.ThrottleTempC
		aisle := int(srvAisle[id])
		vmID := st.ServerVM[id]

		if vmID == -1 && st.ServerFreqCap[id] == 1 && r.thermalCap[id] == 1 {
			// Idle and uncapped: cap recovery is a no-op, the GPUs sit at
			// the idle fraction, and the throttle condition (frac > idle)
			// can never fire, so the compiled idle constants reproduce the
			// full path bit for bit.
			if t := r.idleServer(id, inletBase, aisle); t > maxTemp {
				maxTemp = t
			}
			if r.aisleViolated[aisle] {
				throttleTicks++
			}
			stable[row]++
			id++
			continue
		}

		if r.rowRecoverOK[row] && r.aisleRecoverOK[aisle] {
			// Branch instead of math.Min: caps are positive finite, so the
			// semantics match and the non-inlined call is avoided.
			if c := st.ServerFreqCap[id] * capRecovery; c < 1 {
				st.ServerFreqCap[id] = c
			} else {
				st.ServerFreqCap[id] = 1
			}
		}
		base := id * gpus
		// ServerHotGPUTempC still holds last tick's hottest GPU, so the
		// cool check is one read instead of a scan over the GPU block.
		if st.ServerHotGPUTempC[id] <= throttleC-5 {
			if c := r.thermalCap[id] * capRecovery; c < 1 {
				r.thermalCap[id] = c
			} else {
				r.thermalCap[id] = 1
			}
		}
		cap := st.ServerFreqCap[id] * r.thermalCap[id]

		// Every GPU of a server runs at one of two power fractions: actFrac
		// on the first nAct GPUs (the VM's active set) and the idle fraction
		// on the rest. The workload switch derives the pair; the single
		// per-GPU loop below then fuses fraction fill, thermal evaluation
		// with hardware throttling, and the power sum into one pass over the
		// flat coefficient tables.
		actFrac := idleFrac
		nAct := gpus
		loadFrac := 0.0
		switch {
		case vmID == -1:
		case st.VMs[vmID].Spec.Kind == trace.IaaS:
			vm := st.VMs[vmID]
			var util float64
			if pi := cs.vmPhase[vmID]; pi >= 0 {
				util = vm.Spec.Load.AtTick(&r.tickEval, r.phaseDaily[pi], &r.vmNoise[vmID])
			} else {
				util = vm.Spec.Load.At(wall)
			}
			actFrac = power.GPUPower(spec, util, cap) / spec.GPUTDPW
			loadFrac = util
			// The cap-loss sum and the customer-peak observation are
			// deferred to phase B: the float accumulation is order-sensitive
			// and the peak map write would race across shards.
			r.srvCapLoss[id] = 1 - cap
		default: // SaaS
			in := st.VMs[vmID].Instance
			if cap == 1 && in.StepDrained(r.sc.Tick) {
				// Drained and uncapped, the SaaS path collapses to idle
				// physics: BusyFrac is 0, so GPUPowerFrac returns exactly
				// the GPU idle fraction and every fraction, temperature and
				// power below reproduces the idle-server constants bit for
				// bit. Occupied servers are never row-stable, so no
				// stable[row] count.
				if t := r.idleServer(id, inletBase, aisle); t > maxTemp {
					maxTemp = t
				}
				if r.aisleViolated[aisle] {
					throttleTicks++
				}
				id++
				continue
			}
			in.SpeedFactor = cap
			in.Step(r.sc.Tick)
			gpuBase := in.GPUPowerFrac()
			// Frequency capping shrinks the dynamic share of GPU power.
			// math.Pow(1, x) is exactly 1, so uncapped servers (the common
			// case) skip the call without changing the result.
			powCap := 1.0
			if cap != 1 {
				powCap = math.Pow(cap, dynPowerExp)
			}
			actFrac = idleFrac + (gpuBase-idleFrac)*powCap
			nAct = in.ActiveGPUs()
			loadFrac = in.BusyFrac * float64(in.ActiveGPUs()) / float64(spec.GPUsPerServer)
		}
		st.ServerLoadFrac[id] = loadFrac

		// Thermals and power: inlet, GPU temperatures with hardware
		// throttling, and the server power sum in one pass. Clamp01 is
		// hoisted per distinct fraction; the per-GPU temperature stays a
		// multiply-add over the flat bias/gain tables.
		inlet := inletBase + co.InletOffsetC[id] + st.AisleRecircC[aisle]
		st.ServerInletC[id] = inlet
		fracs := st.GPUPowerFrac[base : base+gpus]
		temps := st.GPUTempC[base : base+gpus]
		bias := co.BiasC[base : base+gpus]
		gain := co.GainC[base : base+gpus]
		cfAct := units.Clamp01(actFrac)
		throttled := false
		srvMax := 0.0
		sum := 0.0
		w := spec.GPUTDPW
		if nAct > gpus {
			nAct = gpus
		}
		if actFrac <= idleFrac || inlet+cs.srvMaxBias[id]+cs.srvMaxGain[id]*cfAct <= throttleC {
			// The precomputed coefficient maxima upper-bound every GPU
			// temperature (rounding is monotone), so the throttle condition
			// cannot fire anywhere in the block and the loop runs without
			// the per-GPU check. f*w is the same multiply every iteration,
			// so hoisting it is bit-identical.
			actW := actFrac * w
			for g := 0; g < nAct; g++ {
				temp := inlet + bias[g] + gain[g]*cfAct
				fracs[g] = actFrac
				temps[g] = temp
				if temp > srvMax {
					srvMax = temp
				}
				sum += actW
			}
		} else {
			for g := 0; g < nAct; g++ {
				f := actFrac
				temp := inlet + bias[g] + gain[g]*cfAct
				if temp > throttleC && f > idleFrac {
					throttled = true
					allowed := co.MaxPowerFrac(base+g, inlet, throttleC)
					if allowed < idleFrac {
						allowed = idleFrac // hardware cannot go below idle draw
					}
					if allowed < f {
						f = allowed
						temp = inlet + bias[g] + gain[g]*units.Clamp01(f)
					}
				}
				fracs[g] = f
				temps[g] = temp
				if temp > srvMax {
					srvMax = temp
				}
				sum += f * w
			}
		}
		if nAct < gpus {
			// Inactive GPUs sit at the idle fraction, which can never
			// satisfy the throttle condition (f > idleFrac), so this run is
			// branch-free.
			cfIdle := units.Clamp01(idleFrac)
			idleTerm := idleFrac * w
			for g := nAct; g < gpus; g++ {
				temp := inlet + bias[g] + gain[g]*cfIdle
				fracs[g] = idleFrac
				temps[g] = temp
				if temp > srvMax {
					srvMax = temp
				}
				sum += idleTerm
			}
		}
		st.ServerHotGPUTempC[id] = srvMax
		if srvMax > maxTemp {
			maxTemp = srvMax
		}
		if throttled {
			// The hardware clock-down slows next tick's work.
			r.thermalCap[id] = math.Max(0.3, r.thermalCap[id]*0.85)
		}
		if throttled || r.aisleViolated[aisle] {
			throttleTicks++
		}
		// power.ServerPower and thermal.FanFrac, unrolled to share one
		// Clamp01 of the load fraction (Clamp01 is pure, so reusing the
		// value is bit-identical); the addition order matches ServerPower.
		clf := units.Clamp01(loadFrac)
		p := units.Lerp(spec.ServerOtherW, spec.ServerOtherMaxW, clf) + sum + power.FanPower(spec, 0.3+0.7*clf)
		st.ServerPowerW[id] = p
		// Next tick's fan airflow is a pure function of this power draw;
		// computing it here retires the separate airflow fleet pass.
		if p == cs.idleTickWBy[m] {
			st.ServerAirflowCFM[id] = cs.idleAirflowBy[m]
		} else {
			idleP := cs.idleWBy[m]
			// heatFrac is already clamped, so Lerp directly (thermal.Airflow
			// would only re-clamp — Clamp01 is idempotent).
			heatFrac := units.Clamp01((p - idleP) / (spec.ServerTDPW - idleP))
			st.ServerAirflowCFM[id] = units.Lerp(spec.AirflowIdleCFM, spec.AirflowMaxCFM, heatFrac)
		}
		if vmID == -1 && st.ServerFreqCap[id] == 1 && r.thermalCap[id] == 1 {
			stable[row]++
		}
		id++
	}
	return maxTemp, throttleTicks
}

// idleServer is the dirty-set fast path for an idle, uncapped server: GPU
// fractions sit at the idle fraction, temperatures still track this tick's
// inlet (weather, datacenter load and recirculation move every tick), and
// power is the compiled idle constant. Returns the hottest GPU temperature.
func (r *runner) idleServer(id int, inletBase float64, aisle int) float64 {
	st := r.st
	cs := r.cs
	co := cs.Coeffs
	gpus := st.GPUsPerServer
	m := cs.srvModel[id]
	idleFrac := cs.idleFracBy[m]
	base := id * gpus
	fracs := st.GPUPowerFrac[base : base+gpus]
	temps := st.GPUTempC[base : base+gpus]
	bias := co.BiasC[base : base+gpus]
	gain := co.GainC[base : base+gpus]
	inlet := inletBase + co.InletOffsetC[id] + st.AisleRecircC[aisle]
	st.ServerInletC[id] = inlet
	st.ServerLoadFrac[id] = 0
	cf := units.Clamp01(idleFrac)
	maxT := 0.0
	for g := range fracs {
		fracs[g] = idleFrac
		temp := inlet + bias[g] + gain[g]*cf
		temps[g] = temp
		if temp > maxT {
			maxT = temp
		}
	}
	st.ServerHotGPUTempC[id] = maxT
	st.ServerPowerW[id] = cs.idleTickWBy[m]
	st.ServerAirflowCFM[id] = cs.idleAirflowBy[m]
	return maxT
}

// harvest folds a departing instance's cumulative service counters into the
// result, and in request-level replay mode drains its per-request latency
// records. Harvest order is deterministic (ascending VM ID, at departure and
// end of run), so the per-endpoint SLO sample order is too.
func (r *runner) harvest(vm *cluster.VM) {
	in := vm.Instance
	r.res.SaaSServedTokens += in.ServedTokens
	if ep := vm.Spec.Endpoint; ep >= 0 && ep < len(r.res.EndpointServedTokens) {
		r.res.EndpointServedTokens[ep] += in.ServedTokens
	}
	r.res.SaaSCompletedReqs += in.CompletedRequests
	r.res.SaaSViolatedReqs += in.SLOViolatedReqs
	r.res.SaaSQualityWeight += in.QualityWeight
	for _, c := range in.DrainCompletions() {
		r.res.AddCompletion(c)
	}
}
