package sim

import (
	"fmt"
	"math"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/thermal"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/units"
)

// dynPowerExp matches the DVFS exponent of the power physics; used to
// convert power-scale factors into frequency-scale factors.
const dynPowerExp = 2.5

// capRecovery is the per-tick multiplicative recovery of frequency caps once
// the pressure that caused them subsides.
const capRecovery = 1.05

// Run executes a scenario under a policy and returns the collected metrics.
func Run(sc Scenario, pol Policy) (*Result, error) {
	if sc.Tick <= 0 {
		return nil, fmt.Errorf("sim: non-positive tick %v", sc.Tick)
	}
	dc, err := layout.New(sc.Layout)
	if err != nil {
		return nil, err
	}
	if sc.Oversubscribe > 0 {
		dc.AddRacks(sc.Oversubscribe)
	}
	wc := sc.Workload
	wc.Servers = len(dc.Servers)
	w, err := trace.Generate(wc)
	if err != nil {
		return nil, err
	}
	outside := trace.NewOutsideTemp(sc.Region, sc.StartOffset+sc.Duration, 10*time.Minute, wc.Seed^0xd00d)
	st := cluster.NewState(dc, w)

	st.Tick = sc.Tick
	seedHistory(st, w)
	if init, ok := pol.(Initializer); ok {
		if err := init.Init(st); err != nil {
			return nil, fmt.Errorf("sim: policy init: %w", err)
		}
	}
	r := &runner{sc: sc, pol: pol, st: st, outside: outside}
	return r.run()
}

// Initializer is an optional policy extension invoked once before the run,
// e.g. for offline profiling (§4.5).
type Initializer interface {
	Init(st *cluster.State) error
}

// seedHistory pre-populates the per-customer and per-endpoint demand
// estimates from the week preceding the simulation window — the "previous
// week" history the paper's placement predictions rely on (§3.1, Fig. 14).
// Policies that ignore history (the Baseline) are unaffected.
//
// Load shapes are shared per customer, so the 7×24-hour peak scan runs
// once per unique customer on its first VM's pattern instead of once per
// VM — workloads hold ~40 customers but thousands of VMs. The patterns do
// carry small per-VM noise (±0.09 load fraction), which the old
// max-over-all-VMs folded in; the single-VM estimate sits at most that far
// below it, well within the prediction-error budget these seeds feed
// (§4.1 assumes peak outright when history is missing). VM order is
// deterministic, so the estimate is too.
func seedHistory(st *cluster.State, w *trace.Workload) {
	for _, vm := range w.VMs {
		if vm.Kind != trace.IaaS {
			continue
		}
		if _, seen := st.CustomerPeakLoad[vm.Customer]; seen {
			continue
		}
		peak := 0.0
		for h := 0; h < 7*24; h++ {
			if l := vm.Load.At(time.Duration(h) * time.Hour); l > peak {
				peak = l
			}
		}
		st.ObserveCustomerLoad(vm.Customer, peak)
	}
	for _, ep := range w.Endpoints {
		peak := 0.0
		for h := 0; h < 7*24; h++ {
			p, o := ep.DemandTokens(time.Duration(h)*time.Hour, time.Minute)
			if d := (p + o) / 60 / float64(ep.NumVMs); d > peak {
				peak = d
			}
		}
		st.ObserveEndpointDemand(ep.ID, peak)
	}
}

type runner struct {
	sc      Scenario
	pol     Policy
	st      *cluster.State
	outside *trace.OutsideTemp

	thermalCap    []float64 // hardware throttle factor per server
	aisleViolated []bool    // airflow demand exceeded supply this tick
	throttledSrv  []bool    // hardware thermal throttle hit this tick
	prevDCLoad    float64
	pending       []int // VM IDs awaiting placement
	nextVM        int
	res           *Result

	// Tick-invariant values hoisted out of the per-server loops: the GPU
	// spec is uniform across the fleet, so idle power and the idle power
	// fraction never change during a run.
	idlePowerW float64
	idleFrac   float64

	// Per-tick scratch for stepServers: cap-recovery eligibility depends
	// only on the row/aisle, so it is evaluated once per row/aisle instead
	// of once per server.
	rowRecoverOK   []bool
	aisleRecoverOK []bool
}

func (r *runner) run() (*Result, error) {
	st := r.st
	ticks := int(r.sc.Duration / r.sc.Tick)
	r.res = &Result{Policy: r.pol.Name(), Tick: r.sc.Tick, Ticks: ticks}
	r.res.MaxTempC = make([]float64, 0, ticks)
	r.res.PeakRowPowerW = make([]float64, 0, ticks)
	r.res.TotalPowerW = make([]float64, 0, ticks)
	if r.sc.RecordRowSeries {
		r.res.RowPowerW = make([][]float64, len(st.DC.Rows))
	}
	n := len(st.DC.Servers)
	r.thermalCap = make([]float64, n)
	r.idlePowerW = power.ServerPowerAtUniformLoad(st.Spec, 0)
	r.idleFrac = st.Spec.GPUIdleW / st.Spec.GPUTDPW
	for i := range r.thermalCap {
		r.thermalCap[i] = 1
		st.ServerPowerW[i] = r.idlePowerW // seed the fan-control lag
	}
	r.aisleViolated = make([]bool, len(st.DC.Aisles))
	r.throttledSrv = make([]bool, n)
	r.rowRecoverOK = make([]bool, len(st.DC.Rows))
	r.aisleRecoverOK = make([]bool, len(st.DC.Aisles))
	r.prevDCLoad = 0.3

	for ti := 0; ti < ticks; ti++ {
		now := time.Duration(ti+1) * r.sc.Tick
		wall := r.sc.StartOffset + now
		st.Now = now
		st.Wall = wall
		st.OutsideC = r.outside.At(wall)
		st.DCLoadFrac = r.prevDCLoad

		r.applyFailures(now)
		r.churnVMs(now)
		r.routeDemand(wall)
		r.pol.Configure(st)
		r.airflowStep()
		r.stepServers(wall)
		r.thermalStep()
		r.powerStep()
		st.RecordHistory(r.sc.Tick)
		if r.sc.Observer != nil {
			r.sc.Observer(st)
		}
	}
	// Harvest instances still running at the end.
	for _, vm := range st.VMs {
		if vm.Instance != nil {
			r.harvest(vm)
		}
	}
	return r.res, nil
}

// applyFailures sets the emergency multipliers for the current time.
func (r *runner) applyFailures(now time.Duration) {
	airflow, powerMult := 1.0, 1.0
	for _, f := range r.sc.Failures {
		if now >= f.At && now < f.At+f.Duration {
			switch f.Kind {
			case CoolingFailure:
				airflow = 0.90
			case PowerFailure:
				powerMult = 0.75
			}
		}
	}
	r.st.AirflowLimitFrac = airflow
	r.st.Budget.SetEmergency(powerMult)
}

// churnVMs processes departures and (re)tries placements.
func (r *runner) churnVMs(now time.Duration) {
	st := r.st
	for _, vm := range st.VMs {
		if vm.Server >= 0 && !vm.Spec.Active(now) {
			if vm.Instance != nil {
				r.harvest(vm)
			}
			st.Remove(vm.Spec.ID)
		}
	}
	for r.nextVM < len(st.VMs) && st.VMs[r.nextVM].Spec.Arrival <= now {
		r.pending = append(r.pending, r.nextVM)
		r.nextVM++
	}
	keep := r.pending[:0]
	for _, vmID := range r.pending {
		vm := st.VMs[vmID]
		if !vm.Spec.Active(now) {
			continue // expired before it could be placed
		}
		if srv, ok := r.pol.Place(st, vm); ok {
			if err := st.Place(vmID, srv); err == nil {
				continue
			}
		}
		r.res.PlacementRejects++
		keep = append(keep, vmID)
	}
	r.pending = keep
}

// routeDemand distributes each endpoint's token demand via the policy.
func (r *runner) routeDemand(wall time.Duration) {
	st := r.st
	for _, ep := range st.Work.Endpoints {
		prompt, output := ep.DemandTokens(wall, r.sc.Tick)
		if prompt+output <= 0 {
			continue
		}
		insts := st.EndpointInstances(ep.ID)
		if len(insts) == 0 {
			continue
		}
		st.ObserveEndpointDemand(ep.ID, (prompt+output)/r.sc.Tick.Seconds()/float64(len(insts)))
		r.res.SaaSDemandTokens += prompt + output
		r.pol.Route(st, ep, prompt, output)
	}
}

// airflowStep derives per-server airflow from the previous tick's power
// (fans chase heat, so fan control lags load by one tick), aggregates aisle
// demand, and invokes the policy when an aisle out-draws its AHUs.
func (r *runner) airflowStep() {
	st := r.st
	spec := st.Spec
	idleP := r.idlePowerW
	maxP := spec.ServerTDPW
	for a := range st.AisleDemandCFM {
		st.AisleDemandCFM[a] = 0
	}
	for _, s := range st.DC.Servers {
		heatFrac := units.Clamp01((st.ServerPowerW[s.ID] - idleP) / (maxP - idleP))
		af := thermal.Airflow(spec, heatFrac)
		st.ServerAirflowCFM[s.ID] = af
		st.AisleDemandCFM[s.Aisle] += af
	}
	for a := range st.AisleDemandCFM {
		limit := st.AisleLimitCFM(a)
		r.aisleViolated[a] = st.AisleDemandCFM[a] > limit
		if r.aisleViolated[a] {
			r.pol.CapAisle(st, a, st.AisleDemandCFM[a], limit)
		}
		st.AisleRecircC[a] = thermal.RecirculationPenalty(st.AisleDemandCFM[a], limit)
	}
}

// stepServers advances SaaS instances and computes per-GPU power fractions
// for every server.
func (r *runner) stepServers(wall time.Duration) {
	st := r.st
	spec := st.Spec
	idleFrac := r.idleFrac
	// Caps recover gradually, and only while the constraints that
	// motivated them sit comfortably below their limits — otherwise
	// recovery and re-capping oscillate across the limit every tick.
	for row := range r.rowRecoverOK {
		r.rowRecoverOK[row] = st.RowPowerW[row] < st.Budget.RowLimitW(row)*0.93
	}
	for a := range r.aisleRecoverOK {
		r.aisleRecoverOK[a] = st.AisleDemandCFM[a] < st.AisleLimitCFM(a)*0.93
	}
	for _, s := range st.DC.Servers {
		if r.rowRecoverOK[s.Row] && r.aisleRecoverOK[s.Aisle] {
			st.ServerFreqCap[s.ID] = math.Min(1, st.ServerFreqCap[s.ID]*capRecovery)
		}
		coolOK := true
		for _, tc := range st.GPUTempC[s.ID] {
			if tc > spec.ThrottleTempC-5 {
				coolOK = false
				break
			}
		}
		if coolOK {
			r.thermalCap[s.ID] = math.Min(1, r.thermalCap[s.ID]*capRecovery)
		}
		cap := st.ServerFreqCap[s.ID] * r.thermalCap[s.ID]

		vmID := st.ServerVM[s.ID]
		fracs := st.GPUPowerFrac[s.ID]
		loadFrac := 0.0
		switch {
		case vmID == -1:
			for g := range fracs {
				fracs[g] = idleFrac
			}
		case st.VMs[vmID].Spec.Kind == trace.IaaS:
			vm := st.VMs[vmID]
			util := vm.Spec.Load.At(wall)
			st.ObserveCustomerLoad(vm.Spec.Customer, util)
			frac := power.GPUPower(spec, util, cap) / spec.GPUTDPW
			for g := range fracs {
				fracs[g] = frac
			}
			loadFrac = util
			r.res.IaaSFreqCapSum += 1 - cap
			r.res.IaaSServerTicks++
		default: // SaaS
			in := st.VMs[vmID].Instance
			in.SpeedFactor = cap
			in.Step(r.sc.Tick)
			base := in.GPUPowerFrac()
			// Frequency capping shrinks the dynamic share of GPU power.
			eff := idleFrac + (base-idleFrac)*math.Pow(cap, dynPowerExp)
			for g := range fracs {
				if g < in.ActiveGPUs() {
					fracs[g] = eff
				} else {
					fracs[g] = idleFrac
				}
			}
			loadFrac = in.BusyFrac * float64(in.ActiveGPUs()) / float64(spec.GPUsPerServer)
		}
		st.ServerLoadFrac[s.ID] = loadFrac
	}
	r.res.ServerTicks += len(st.DC.Servers)
}

// thermalStep computes inlet and GPU temperatures, applies hardware thermal
// throttling, and counts thermal events: a server-tick is thermally capped
// when its GPUs throttle or its aisle's airflow is violated.
func (r *runner) thermalStep() {
	st := r.st
	spec := st.Spec
	idleFrac := r.idleFrac
	maxTemp := 0.0
	for _, s := range st.DC.Servers {
		inlet := thermal.InletTemp(s, st.OutsideC, st.DCLoadFrac, st.AisleRecircC[s.Aisle])
		st.ServerInletC[s.ID] = inlet
		throttled := false
		fracs := st.GPUPowerFrac[s.ID]
		for g := range fracs {
			temp := thermal.GPUTemp(s, g, inlet, fracs[g])
			if temp > spec.ThrottleTempC && fracs[g] > idleFrac {
				throttled = true
				allowed := thermal.MaxPowerFrac(s, g, inlet, spec.ThrottleTempC)
				if allowed < idleFrac {
					allowed = idleFrac // hardware cannot go below idle draw
				}
				if allowed < fracs[g] {
					fracs[g] = allowed
					temp = thermal.GPUTemp(s, g, inlet, fracs[g])
				}
			}
			st.GPUTempC[s.ID][g] = temp
			if temp > maxTemp {
				maxTemp = temp
			}
		}
		r.throttledSrv[s.ID] = throttled
		if throttled {
			// The hardware clock-down slows next tick's work.
			r.thermalCap[s.ID] = math.Max(0.3, r.thermalCap[s.ID]*0.85)
		}
		if throttled || r.aisleViolated[s.Aisle] {
			r.res.ThermalThrottleSrvTicks++
		}
	}
	r.res.MaxTempC = append(r.res.MaxTempC, maxTemp)
}

// powerStep computes server and row power, invokes the policy's capping
// response for over-budget rows, and records the tick's peaks. A server-tick
// counts as power-capped when its row exceeds its effective limit.
func (r *runner) powerStep() {
	st := r.st
	spec := st.Spec
	for row := range st.RowPowerW {
		st.RowPowerW[row] = 0
	}
	total := 0.0
	for _, s := range st.DC.Servers {
		sum := 0.0
		for _, f := range st.GPUPowerFrac[s.ID] {
			sum += f * spec.GPUTDPW
		}
		load := st.ServerLoadFrac[s.ID]
		p := power.ServerPower(spec, sum, load, thermal.FanFrac(load))
		st.ServerPowerW[s.ID] = p
		st.RowPowerW[s.Row] += p
		total += p
	}
	peak := 0.0
	for row, draw := range st.RowPowerW {
		limit := st.Budget.RowLimitW(row)
		if draw > limit {
			r.pol.CapRow(st, row, draw, limit)
			r.res.PowerCapSrvTicks += len(st.DC.Rows[row].Servers)
		}
		if draw > peak {
			peak = draw
		}
		if r.sc.RecordRowSeries {
			r.res.RowPowerW[row] = append(r.res.RowPowerW[row], draw)
		}
	}
	r.res.PeakRowPowerW = append(r.res.PeakRowPowerW, peak)
	r.res.TotalPowerW = append(r.res.TotalPowerW, total)
	r.prevDCLoad = total / (float64(len(st.DC.Servers)) * spec.ServerTDPW)
}

// harvest folds a departing instance's cumulative service counters into the
// result.
func (r *runner) harvest(vm *cluster.VM) {
	in := vm.Instance
	r.res.SaaSServedTokens += in.ServedTokens
	r.res.SaaSCompletedReqs += in.CompletedRequests
	r.res.SaaSViolatedReqs += in.SLOViolatedReqs
	r.res.SaaSQualityWeight += in.QualityWeight
}
