package sim

import (
	"fmt"
	"math"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/thermal"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/units"
)

// dynPowerExp matches the DVFS exponent of the power physics; used to
// convert power-scale factors into frequency-scale factors.
const dynPowerExp = 2.5

// capRecovery is the per-tick multiplicative recovery of frequency caps once
// the pressure that caused them subsides.
const capRecovery = 1.05

// Run executes a scenario under a policy and returns the collected metrics.
// It compiles the scenario's run-invariant artifacts and runs once; callers
// evaluating several policies (or failure schedules) over the same scenario
// should Compile once and call CompiledScenario.Run per policy instead.
func Run(sc Scenario, pol Policy) (*Result, error) {
	if sc.Tick <= 0 {
		return nil, fmt.Errorf("sim: non-positive tick %v", sc.Tick)
	}
	cs, err := Compile(sc)
	if err != nil {
		return nil, err
	}
	return cs.Run(pol)
}

// Initializer is an optional policy extension invoked once before the run,
// e.g. for offline profiling (§4.5).
type Initializer interface {
	Init(st *cluster.State) error
}

type runner struct {
	sc      Scenario
	cs      *CompiledScenario
	pol     Policy
	st      *cluster.State
	outside *trace.OutsideTemp

	thermalCap    []float64 // hardware throttle factor per server
	aisleViolated []bool    // airflow demand exceeded supply this tick
	throttledSrv  []bool    // hardware thermal throttle hit this tick
	prevDCLoad    float64
	pending       []int // VM IDs awaiting placement
	nextVM        int
	res           *Result

	// Per-tick scratch for stepServers: cap-recovery eligibility depends
	// only on the row/aisle, so it is evaluated once per row/aisle instead
	// of once per server.
	rowRecoverOK   []bool
	aisleRecoverOK []bool
}

func (r *runner) run() (*Result, error) {
	st := r.st
	ticks := int(r.sc.Duration / r.sc.Tick)
	r.res = &Result{Policy: r.pol.Name(), Tick: r.sc.Tick, Ticks: ticks}
	r.res.MaxTempC = make([]float64, 0, ticks)
	r.res.PeakRowPowerW = make([]float64, 0, ticks)
	r.res.TotalPowerW = make([]float64, 0, ticks)
	if r.sc.RecordRowSeries {
		r.res.RowPowerW = make([][]float64, len(st.DC.Rows))
		for row := range r.res.RowPowerW {
			r.res.RowPowerW[row] = make([]float64, 0, ticks)
		}
	}
	n := len(st.DC.Servers)
	r.thermalCap = make([]float64, n)
	for i := range r.thermalCap {
		r.thermalCap[i] = 1
		// Seed the fan-control lag with each generation's idle draw.
		st.ServerPowerW[i] = r.cs.idleWBy[r.cs.srvModel[i]]
	}
	r.aisleViolated = make([]bool, len(st.DC.Aisles))
	r.throttledSrv = make([]bool, n)
	r.rowRecoverOK = make([]bool, len(st.DC.Rows))
	r.aisleRecoverOK = make([]bool, len(st.DC.Aisles))
	r.prevDCLoad = 0.3

	for ti := 0; ti < ticks; ti++ {
		now := time.Duration(ti+1) * r.sc.Tick
		wall := r.sc.StartOffset + now
		st.Now = now
		st.Wall = wall
		st.OutsideC = r.outside.At(wall)
		st.DCLoadFrac = r.prevDCLoad

		r.applyFailures(now)
		r.churnVMs(now)
		r.routeDemand(wall)
		r.pol.Configure(st)
		r.airflowStep()
		r.fleetStep(wall)
		st.RecordHistory(r.sc.Tick)
		if r.sc.Observer != nil {
			r.sc.Observer(st)
		}
	}
	// Harvest instances still running at the end.
	for _, vm := range st.VMs {
		if vm.Instance != nil {
			r.harvest(vm)
		}
	}
	return r.res, nil
}

// applyFailures sets the emergency multipliers for the current time.
func (r *runner) applyFailures(now time.Duration) {
	airflow, powerMult := 1.0, 1.0
	for _, f := range r.sc.Failures {
		if now >= f.At && now < f.At+f.Duration {
			switch f.Kind {
			case CoolingFailure:
				airflow = 0.90
			case PowerFailure:
				powerMult = 0.75
			}
		}
	}
	r.st.AirflowLimitFrac = airflow
	r.st.Budget.SetEmergency(powerMult)
}

// churnVMs processes departures and (re)tries placements.
func (r *runner) churnVMs(now time.Duration) {
	st := r.st
	for _, vm := range st.VMs {
		if vm.Server >= 0 && !vm.Spec.Active(now) {
			if vm.Instance != nil {
				r.harvest(vm)
			}
			st.Remove(vm.Spec.ID)
		}
	}
	for r.nextVM < len(st.VMs) && st.VMs[r.nextVM].Spec.Arrival <= now {
		r.pending = append(r.pending, r.nextVM)
		r.nextVM++
	}
	keep := r.pending[:0]
	for _, vmID := range r.pending {
		vm := st.VMs[vmID]
		if !vm.Spec.Active(now) {
			continue // expired before it could be placed
		}
		if srv, ok := r.pol.Place(st, vm); ok {
			if err := st.Place(vmID, srv); err == nil {
				continue
			}
		}
		r.res.PlacementRejects++
		keep = append(keep, vmID)
	}
	r.pending = keep
}

// routeDemand distributes each endpoint's token demand via the policy.
func (r *runner) routeDemand(wall time.Duration) {
	st := r.st
	for _, ep := range st.Work.Endpoints {
		prompt, output := ep.DemandTokens(wall, r.sc.Tick)
		if prompt+output <= 0 {
			continue
		}
		insts := st.EndpointInstances(ep.ID)
		if len(insts) == 0 {
			continue
		}
		st.ObserveEndpointDemand(ep.ID, (prompt+output)/r.sc.Tick.Seconds()/float64(len(insts)))
		r.res.SaaSDemandTokens += prompt + output
		r.pol.Route(st, ep, prompt, output)
	}
}

// airflowStep derives per-server airflow from the previous tick's power
// (fans chase heat, so fan control lags load by one tick), aggregates aisle
// demand, and invokes the policy when an aisle out-draws its AHUs.
func (r *runner) airflowStep() {
	st := r.st
	cs := r.cs
	srvAisle := cs.srvAisle
	for a := range st.AisleDemandCFM {
		st.AisleDemandCFM[a] = 0
	}
	for id := range st.ServerPowerW {
		m := cs.srvModel[id]
		spec := &cs.specBy[m]
		idleP := cs.idleWBy[m]
		heatFrac := units.Clamp01((st.ServerPowerW[id] - idleP) / (spec.ServerTDPW - idleP))
		af := thermal.Airflow(*spec, heatFrac)
		st.ServerAirflowCFM[id] = af
		st.AisleDemandCFM[srvAisle[id]] += af
	}
	for a := range st.AisleDemandCFM {
		limit := st.AisleLimitCFM(a)
		r.aisleViolated[a] = st.AisleDemandCFM[a] > limit
		if r.aisleViolated[a] {
			r.pol.CapAisle(st, a, st.AisleDemandCFM[a], limit)
		}
		st.AisleRecircC[a] = thermal.RecirculationPenalty(st.AisleDemandCFM[a], limit)
	}
}

// fleetStep is the fused tick kernel: one pass over the fleet advances SaaS
// instances, computes per-GPU power fractions, applies hardware thermal
// throttling against the compiled coefficient tables, and accumulates server,
// row and total power — the work the engine previously spread across three
// separate fleet sweeps (stepServers → thermalStep → powerStep). A trailing
// per-row loop applies the policy's capping response and records the tick.
//
// A server-tick is thermally capped when its GPUs throttle or its aisle's
// airflow is violated; power-capped when its row exceeds its effective limit.
func (r *runner) fleetStep(wall time.Duration) {
	st := r.st
	cs := r.cs
	co := cs.Coeffs
	srvRow, srvAisle := cs.srvRow, cs.srvAisle
	gpus := st.GPUsPerServer
	// Caps recover gradually, and only while the constraints that
	// motivated them sit comfortably below their limits — otherwise
	// recovery and re-capping oscillate across the limit every tick.
	// Row eligibility reads the previous tick's power, so it must be
	// evaluated before the accumulators reset.
	for row := range r.rowRecoverOK {
		r.rowRecoverOK[row] = st.RowPowerW[row] < st.Budget.RowLimitW(row)*0.93
	}
	for a := range r.aisleRecoverOK {
		r.aisleRecoverOK[a] = st.AisleDemandCFM[a] < st.AisleLimitCFM(a)*0.93
	}
	for row := range st.RowPowerW {
		st.RowPowerW[row] = 0
	}
	// The cooling-curve base is uniform across the fleet this tick; only the
	// per-server spatial offset and aisle recirculation vary.
	inletBase := thermal.CoolingCurve(st.OutsideC, st.DCLoadFrac)
	maxTemp := 0.0
	total := 0.0
	n := len(st.ServerPowerW)
	for id := 0; id < n; id++ {
		m := cs.srvModel[id]
		spec := &cs.specBy[m]
		idleFrac := cs.idleFracBy[m]
		throttleC := spec.ThrottleTempC
		row := int(srvRow[id])
		aisle := int(srvAisle[id])
		if r.rowRecoverOK[row] && r.aisleRecoverOK[aisle] {
			st.ServerFreqCap[id] = math.Min(1, st.ServerFreqCap[id]*capRecovery)
		}
		base := id * gpus
		temps := st.GPUTempC[base : base+gpus]
		coolOK := true
		for _, tc := range temps {
			if tc > throttleC-5 {
				coolOK = false
				break
			}
		}
		if coolOK {
			r.thermalCap[id] = math.Min(1, r.thermalCap[id]*capRecovery)
		}
		cap := st.ServerFreqCap[id] * r.thermalCap[id]

		vmID := st.ServerVM[id]
		fracs := st.GPUPowerFrac[base : base+gpus]
		loadFrac := 0.0
		switch {
		case vmID == -1:
			for g := range fracs {
				fracs[g] = idleFrac
			}
		case st.VMs[vmID].Spec.Kind == trace.IaaS:
			vm := st.VMs[vmID]
			util := vm.Spec.Load.At(wall)
			st.ObserveCustomerLoad(vm.Spec.Customer, util)
			frac := power.GPUPower(*spec, util, cap) / spec.GPUTDPW
			for g := range fracs {
				fracs[g] = frac
			}
			loadFrac = util
			r.res.IaaSFreqCapSum += 1 - cap
			r.res.IaaSServerTicks++
		default: // SaaS
			in := st.VMs[vmID].Instance
			in.SpeedFactor = cap
			in.Step(r.sc.Tick)
			gpuBase := in.GPUPowerFrac()
			// Frequency capping shrinks the dynamic share of GPU power.
			// math.Pow(1, x) is exactly 1, so uncapped servers (the common
			// case) skip the call without changing the result.
			powCap := 1.0
			if cap != 1 {
				powCap = math.Pow(cap, dynPowerExp)
			}
			eff := idleFrac + (gpuBase-idleFrac)*powCap
			for g := range fracs {
				if g < in.ActiveGPUs() {
					fracs[g] = eff
				} else {
					fracs[g] = idleFrac
				}
			}
			loadFrac = in.BusyFrac * float64(in.ActiveGPUs()) / float64(spec.GPUsPerServer)
		}
		st.ServerLoadFrac[id] = loadFrac

		// Thermals: inlet and GPU temperatures with hardware throttling,
		// evaluated as multiply-adds over the flat coefficient tables.
		inlet := inletBase + co.InletOffsetC[id] + st.AisleRecircC[aisle]
		st.ServerInletC[id] = inlet
		throttled := false
		for g := range fracs {
			temp := co.GPUTemp(base+g, inlet, fracs[g])
			if temp > throttleC && fracs[g] > idleFrac {
				throttled = true
				allowed := co.MaxPowerFrac(base+g, inlet, throttleC)
				if allowed < idleFrac {
					allowed = idleFrac // hardware cannot go below idle draw
				}
				if allowed < fracs[g] {
					fracs[g] = allowed
					temp = co.GPUTemp(base+g, inlet, fracs[g])
				}
			}
			temps[g] = temp
			if temp > maxTemp {
				maxTemp = temp
			}
		}
		r.throttledSrv[id] = throttled
		if throttled {
			// The hardware clock-down slows next tick's work.
			r.thermalCap[id] = math.Max(0.3, r.thermalCap[id]*0.85)
		}
		if throttled || r.aisleViolated[aisle] {
			r.res.ThermalThrottleSrvTicks++
		}

		// Power: sum the (possibly throttled) GPU fractions into server, row
		// and datacenter draw.
		sum := 0.0
		for _, f := range fracs {
			sum += f * spec.GPUTDPW
		}
		p := power.ServerPower(*spec, sum, loadFrac, thermal.FanFrac(loadFrac))
		st.ServerPowerW[id] = p
		st.RowPowerW[row] += p
		total += p
	}
	r.res.ServerTicks += n
	r.res.MaxTempC = append(r.res.MaxTempC, maxTemp)
	peak := 0.0
	for row, draw := range st.RowPowerW {
		limit := st.Budget.RowLimitW(row)
		if draw > limit {
			r.pol.CapRow(st, row, draw, limit)
			r.res.PowerCapSrvTicks += len(st.DC.Rows[row].Servers)
		}
		if draw > peak {
			peak = draw
		}
		if r.sc.RecordRowSeries {
			r.res.RowPowerW[row] = append(r.res.RowPowerW[row], draw)
		}
	}
	r.res.PeakRowPowerW = append(r.res.PeakRowPowerW, peak)
	r.res.TotalPowerW = append(r.res.TotalPowerW, total)
	r.prevDCLoad = total / cs.fleetTDPW
}

// harvest folds a departing instance's cumulative service counters into the
// result.
func (r *runner) harvest(vm *cluster.VM) {
	in := vm.Instance
	r.res.SaaSServedTokens += in.ServedTokens
	r.res.SaaSCompletedReqs += in.CompletedRequests
	r.res.SaaSViolatedReqs += in.SLOViolatedReqs
	r.res.SaaSQualityWeight += in.QualityWeight
}
