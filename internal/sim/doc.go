// Package sim is the discrete-time datacenter simulator: it replays the
// workload trace against the layout/thermal/power physics, invokes a
// scheduling Policy at each decision point (VM placement, request routing,
// instance configuration, power capping), applies hardware thermal
// throttling and power capping, injects cooling/power failures, and records
// the metrics behind the paper's evaluation figures.
//
// # Simulation modes
//
// The engine runs one of two SaaS demand models, selected by the compiled
// scenario:
//
//   - Binned (the default): each endpoint's recorded or generated token
//     demand is routed per tick as fluid prefill/decode backlog
//     (Policy.Route → Instance.EnqueueBulk), and service quality is
//     aggregate (served/demanded tokens, analytic SLO violation fractions).
//   - Request-level replay (Scenario.Requests non-empty): each SaaS instance
//     runs a continuous-batching queue (llm.RequestQueue) fed by the log's
//     individual arrivals. Requests are admitted once their arrival falls
//     inside a completed tick, routed per request (RequestRouter, or the
//     engine's least-queued-work default), and every completion yields exact
//     TTFT, max time-between-tokens, and queueing-delay samples plus SLO
//     attainment, recorded per endpoint on the Result.
//
// # Compilation and caching
//
// Compile splits scenario construction into immutable artifacts (layout,
// workload, weather, request log) shared read-only across runs; CompileCache
// memoizes them under content-hash keys (ScenarioKey), so campaign grids and
// repeated what-ifs skip redundant work. Runtime-only fields (Tick,
// Failures, RecordRowSeries, Observer, Shards) stay out of the key and are
// adjustable per run via CompiledScenario.Variant.
//
// # Determinism
//
// Every run is a pure function of its scenario: seeded RNG streams drive
// workload generation and noise, the sharded tick kernel fixes both the
// shard partition (contiguous server-ID chunks) and the reduction order
// (ascending server ID) independent of shard count, and request completions
// are harvested in ascending VM-ID order at departure and end of run.
// Reports are therefore byte-identical at any -parallel / -shards setting.
package sim
