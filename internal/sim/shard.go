package sim

import (
	"runtime"
	"sync"
)

// shardPool fans the per-server phases of the tick kernel out over fixed
// contiguous server-ID chunks. Boundaries are computed once from the shard
// count alone — never from runtime load — and every cross-server reduction
// happens serially after run returns, so a run's reports are byte-identical
// at any shard count (including 1): the parallel phase only writes
// per-server slots and per-shard partials whose merge order is exact
// (integer adds, float max).
//
// Workers are persistent for the lifetime of the run: shard i is always
// executed by the same goroutine (shard 0 by the caller), and run blocks
// until every shard finishes, which both orders the workers' writes before
// the caller's reduction and keeps the per-tick overhead to one
// channel-send/receive pair per worker.
type shardPool struct {
	bounds []int // len shards+1; shard i covers [bounds[i], bounds[i+1])
	work   []chan func(shard, lo, hi int)
	wg     sync.WaitGroup
}

// normalizeShards resolves a Scenario.Shards setting against the fleet size:
// negative means GOMAXPROCS, and a shard needs at least one server.
func normalizeShards(shards, servers int) int {
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > servers {
		shards = servers
	}
	if shards < 1 {
		return 1
	}
	return shards
}

// newShardPool starts workers for shards 1..n-1; shard 0 runs on the caller.
func newShardPool(shards, servers int) *shardPool {
	p := &shardPool{
		bounds: make([]int, shards+1),
		work:   make([]chan func(shard, lo, hi int), shards-1),
	}
	for i := 0; i <= shards; i++ {
		p.bounds[i] = i * servers / shards
	}
	for i := range p.work {
		p.work[i] = make(chan func(shard, lo, hi int))
		shard := i + 1
		go func(ch chan func(shard, lo, hi int)) {
			for f := range ch {
				f(shard, p.bounds[shard], p.bounds[shard+1])
				p.wg.Done()
			}
		}(p.work[i])
	}
	return p
}

// run executes f once per shard and returns when all shards have finished.
func (p *shardPool) run(f func(shard, lo, hi int)) {
	p.wg.Add(len(p.work))
	for _, ch := range p.work {
		ch <- f
	}
	f(0, p.bounds[0], p.bounds[1])
	p.wg.Wait()
}

// close stops the workers; the pool must not be used afterwards.
func (p *shardPool) close() {
	for _, ch := range p.work {
		close(ch)
	}
}
