package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
)

// Compile-time checks that the power-governing policy family plugs into every
// optional engine surface it is designed for.
var (
	_ Policy          = (*core.PowerGov)(nil)
	_ RequestRouter   = (*core.PowerGov)(nil)
	_ PowerGovTunable = (*core.PowerGov)(nil)
)

// TestPowerGovCacheKey pins the keying contract for the governor knobs: the
// zero value keys identically to the pre-PowerGov encoding (existing cache
// entries stay valid), while each non-zero knob — and each distinct value —
// changes the key.
func TestPowerGovCacheKey(t *testing.T) {
	reqs := syntheticRequests(50, 2, 5*time.Minute)
	base := requestScenario(reqs)
	k0, err := ScenarioKey(base)
	if err != nil {
		t.Fatal(err)
	}
	zero := requestScenario(reqs)
	zero.PowerGov = PowerGov{}
	if k, _ := ScenarioKey(zero); k != k0 {
		t.Error("zero PowerGov changed the scenario key")
	}
	budgeted := requestScenario(reqs)
	budgeted.PowerGov = PowerGov{BudgetFrac: 0.7}
	kb, err := ScenarioKey(budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if kb == k0 {
		t.Error("budget fraction not folded into the scenario key")
	}
	gained := requestScenario(reqs)
	gained.PowerGov = PowerGov{Gain: 0.5}
	kg, err := ScenarioKey(gained)
	if err != nil {
		t.Fatal(err)
	}
	if kg == k0 || kg == kb {
		t.Error("gain not distinguished in the scenario key")
	}
}

// TestVariantRejectsPowerGovChange pins that PowerGov is compile-relevant: a
// variant changing it must be rejected instead of silently reusing artifacts
// keyed under other parameters.
func TestVariantRejectsPowerGovChange(t *testing.T) {
	cs, err := Compile(requestScenario(syntheticRequests(50, 2, 5*time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	v := cs.Variant(func(s *Scenario) { s.PowerGov.BudgetFrac = 0.5 })
	if _, err := v.Run(core.NewPowerGov(false)); err == nil {
		t.Fatal("variant changing PowerGov ran without recompiling")
	}
}

// TestPowerGovTuningChangesBehavior pins the TunePowerGov plumbing end to
// end: a tight budget must put servers under an applied frequency cap for
// more server-ticks than a budget at the full TDP envelope, on the same
// request log.
func TestPowerGovTuningChangesBehavior(t *testing.T) {
	reqs := overloadedRequests(t, 4)
	capTicksAt := func(budgetFrac float64) int {
		sc := requestScenario(reqs)
		sc.PowerGov.BudgetFrac = budgetFrac
		res, err := Run(sc, core.NewPowerGov(false))
		if err != nil {
			t.Fatal(err)
		}
		return res.FreqCapSrvTicks
	}
	tight, generous := capTicksAt(0.3), capTicksAt(1)
	if tight == 0 {
		t.Error("budget at 30% of TDP applied no frequency caps at 4x overload")
	}
	if tight <= generous {
		t.Errorf("budget 0.3 capped %d server-ticks, not more than budget 1.0's %d", tight, generous)
	}
}

// TestPowerGovEnergyAccounting pins the per-endpoint energy integration: a
// run that serves tokens reports positive, finite energy per token for every
// active endpoint and in aggregate.
func TestPowerGovEnergyAccounting(t *testing.T) {
	reqs := overloadedRequests(t, 2)
	res, err := Run(requestScenario(reqs), core.NewPowerGov(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestsCompleted(AllEndpoints) == 0 {
		t.Fatal("request mode inactive: no completions to account energy against")
	}
	j := res.EnergyPerTokenJ(AllEndpoints)
	if !(j > 0) || math.IsInf(j, 0) {
		t.Errorf("aggregate energy per token = %v, want positive and finite", j)
	}
	for ep := range res.EndpointEnergyJ {
		if res.EndpointEnergyJ[ep] <= 0 {
			t.Errorf("endpoint %d integrated %.1f J, want positive", ep, res.EndpointEnergyJ[ep])
		}
	}
}

// TestPowerGovShardsByteIdentical extends the shard-determinism property to
// the governor loop and the energy-aware router: tuned caps, integrated
// energy, and routing decisions must be bit-identical at every shard count.
func TestPowerGovShardsByteIdentical(t *testing.T) {
	cs, err := Compile(requestScenario(overloadedRequests(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []struct {
		name string
		new  func() Policy
	}{
		{"powergov", func() Policy { return core.NewPowerGov(false) }},
		{"powergov-energy", func() Policy { return core.NewPowerGov(true) }},
	} {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			serial, err := cs.Variant(func(s *Scenario) { s.Shards = 1 }).Run(pol.new())
			if err != nil {
				t.Fatal(err)
			}
			if serial.RequestsCompleted(AllEndpoints) == 0 {
				t.Fatal("request mode inactive: no completions to compare")
			}
			for _, n := range []int{2, 7, -1} {
				res, err := cs.Variant(func(s *Scenario) { s.Shards = n }).Run(pol.new())
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				if !reflect.DeepEqual(serial, res) {
					t.Errorf("shards=%d diverged from the serial engine", n)
				}
			}
		})
	}
}
