package sim

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

func mustKey(t *testing.T, sc Scenario) CacheKey {
	t.Helper()
	k, err := ScenarioKey(sc)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestScenarioKeyIgnoresRuntimeOnly pins the key's canonicalization contract:
// every field a compiled scenario can vary per run (the Variant set — Tick,
// Failures, RecordRowSeries, Observer, Shards — plus Workload.Servers, which
// Compile overwrites from the layout) must not move the key, so cache hits
// serve all runtime variants of one compilation.
func TestScenarioKeyIgnoresRuntimeOnly(t *testing.T) {
	base := SmallScenario()
	want := mustKey(t, base)
	mutations := map[string]func(*Scenario){
		"tick": func(sc *Scenario) { sc.Tick = 30 * time.Second },
		"failures": func(sc *Scenario) {
			sc.Failures = []FailureEvent{{Kind: PowerFailure, At: time.Minute, Duration: time.Minute}}
		},
		"record_rows":      func(sc *Scenario) { sc.RecordRowSeries = true },
		"observer":         func(sc *Scenario) { sc.Observer = func(*cluster.State) {} },
		"shards":           func(sc *Scenario) { sc.Shards = 8 },
		"workload_servers": func(sc *Scenario) { sc.Workload.Servers = 9999 },
	}
	for name, mutate := range mutations {
		sc := base
		mutate(&sc)
		if got := mustKey(t, sc); got != want {
			t.Errorf("%s: runtime-only mutation moved the key", name)
		}
	}
}

// TestScenarioKeySensitivity proves every compile-relevant field moves the
// key: a collision here would serve the wrong compilation from cache.
func TestScenarioKeySensitivity(t *testing.T) {
	base := SmallScenario()
	want := mustKey(t, base)
	mutations := map[string]func(*Scenario){
		"layout.gpu":             func(sc *Scenario) { sc.Layout.GPU = layout.H100 },
		"layout.seed":            func(sc *Scenario) { sc.Layout.Seed++ },
		"layout.aisles":          func(sc *Scenario) { sc.Layout.Aisles++ },
		"layout.fleet_scale":     func(sc *Scenario) { sc.Layout.FleetScale = 2 },
		"oversubscribe":          func(sc *Scenario) { sc.Oversubscribe = 0.2 },
		"workload.seed":          func(sc *Scenario) { sc.Workload.Seed++ },
		"workload.saas_fraction": func(sc *Scenario) { sc.Workload.SaaSFraction = 0.7 },
		"workload.duration":      func(sc *Scenario) { sc.Workload.Duration += time.Minute },
		"region.name":            func(sc *Scenario) { sc.Region.Name = "elsewhere" },
		"region.mean_c":          func(sc *Scenario) { sc.Region.MeanC += 1 },
		"duration":               func(sc *Scenario) { sc.Duration += time.Minute },
		"start_offset":           func(sc *Scenario) { sc.StartOffset += time.Hour },
	}
	seen := map[CacheKey]string{want: "base"}
	for name, mutate := range mutations {
		sc := base
		mutate(&sc)
		got := mustKey(t, sc)
		if prev, dup := seen[got]; dup {
			t.Errorf("%s: key collides with %s", name, prev)
		}
		seen[got] = name
	}
}

// TestScenarioKeyNormalizesZero pins ±0 canonicalization: the two float zero
// bit patterns generate identical scenarios, so they must key identically.
func TestScenarioKeyNormalizesZero(t *testing.T) {
	pos := SmallScenario()
	neg := pos
	neg.Oversubscribe = math.Copysign(0, -1)
	if mustKey(t, pos) != mustKey(t, neg) {
		t.Error("-0 and +0 oversubscription key differently")
	}
}

// TestScenarioKeyReplayByContent proves replayed traces key by content, not
// identity: two loads of the same CSV share a key, different content does
// not, and the transform chain is part of the key.
func TestScenarioKeyReplayByContent(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, seed uint64) string {
		t.Helper()
		wl, err := trace.Generate(trace.WorkloadConfig{
			Servers: 8, SaaSFraction: 0.5, Duration: 10 * time.Minute, Endpoints: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteWorkloadCSV(f, wl); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pathA := write("a.csv", 1)
	pathB := write("b.csv", 2)

	scenarioFor := func(path string) Scenario {
		t.Helper()
		wl, err := trace.LoadWorkloadCSV(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := SmallScenario()
		sc.Trace = wl
		return sc
	}
	first := mustKey(t, scenarioFor(pathA))
	second := mustKey(t, scenarioFor(pathA)) // fresh load, distinct pointer
	if first != second {
		t.Error("two loads of the same trace key differently")
	}
	if other := mustKey(t, scenarioFor(pathB)); other == first {
		t.Error("different trace content shares a key")
	}

	chain, err := transform.Parse([]byte(`[{"op":"demand_scale","factor":2}]`))
	if err != nil {
		t.Fatal(err)
	}
	transformed := scenarioFor(pathA)
	transformed.TraceTransforms = chain
	if mustKey(t, transformed) == first {
		t.Error("transform chain does not move the key")
	}
}
