package sim

import (
	"math"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/trace"
)

// naivePolicy is the simplest valid policy: first-free placement, even
// routing, no reconfiguration, uniform row capping. It exists to exercise
// the engine; the real Baseline and TAPAS live in internal/core.
type naivePolicy struct{}

func (naivePolicy) Name() string { return "naive" }

func (naivePolicy) Place(st *cluster.State, vm *cluster.VM) (int, bool) {
	for id, occupant := range st.ServerVM {
		if occupant == -1 {
			return id, true
		}
	}
	return 0, false
}

func (naivePolicy) Route(st *cluster.State, ep trace.EndpointSpec, prompt, output float64) {
	insts := st.EndpointInstances(ep.ID)
	n := float64(len(insts))
	for _, vm := range insts {
		vm.Instance.EnqueueBulk(prompt/n, output/n)
	}
}

func (naivePolicy) Configure(*cluster.State) {}

func (naivePolicy) CapRow(st *cluster.State, row int, drawW, limitW float64) {
	factor := power.UniformCapFactor(drawW, limitW)
	freqScale := math.Pow(factor, 1/2.5)
	for _, srv := range st.DC.Rows[row].Servers {
		if st.ServerFreqCap[srv.ID] > freqScale {
			st.ServerFreqCap[srv.ID] = freqScale
		}
	}
}

func (naivePolicy) CapAisle(st *cluster.State, aisle int, demandCFM, limitCFM float64) {
	factor := math.Pow(limitCFM/demandCFM, 1/2.5)
	for _, srv := range st.DC.Aisles[aisle].Servers() {
		if st.ServerFreqCap[srv.ID] > factor {
			st.ServerFreqCap[srv.ID] = factor
		}
	}
}

func smallRun(t *testing.T, mutate func(*Scenario)) *Result {
	t.Helper()
	sc := SmallScenario()
	if mutate != nil {
		mutate(&sc)
	}
	res, err := Run(sc, naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunBasics(t *testing.T) {
	res := smallRun(t, nil)
	if res.Ticks != 60 {
		t.Fatalf("ticks = %d, want 60", res.Ticks)
	}
	if len(res.MaxTempC) != res.Ticks || len(res.PeakRowPowerW) != res.Ticks {
		t.Fatal("per-tick series have wrong length")
	}
	if res.Policy != "naive" {
		t.Error("policy name not recorded")
	}
	// Physical plausibility.
	if res.MaxTemp() < 30 || res.MaxTemp() > 95 {
		t.Errorf("max temp = %v °C, want physically plausible", res.MaxTemp())
	}
	if res.PeakPower() <= 0 {
		t.Error("peak power must be positive")
	}
	rowCap := 40 * 6500 * 1.03 * 1.1 // 40 servers/row with margin and slack
	if res.PeakPower() > rowCap {
		t.Errorf("peak row power %v exceeds physical bound %v", res.PeakPower(), rowCap)
	}
	if res.ServerTicks != 80*60 {
		t.Errorf("server ticks = %d, want %d", res.ServerTicks, 80*60)
	}
}

func TestRunServesSaaSDemand(t *testing.T) {
	res := smallRun(t, nil)
	if res.SaaSDemandTokens <= 0 {
		t.Fatal("no SaaS demand generated")
	}
	if res.SaaSServedTokens <= 0 {
		t.Fatal("no SaaS tokens served")
	}
	if res.ServiceRate() < 0.5 {
		t.Errorf("service rate = %v, want ≥ 0.5 with an hour of moderate load", res.ServiceRate())
	}
	if res.SaaSCompletedReqs <= 0 {
		t.Error("no completed requests")
	}
	if q := res.AvgQuality(); math.Abs(q-1) > 1e-9 {
		t.Errorf("avg quality = %v, want 1 (no reconfiguration)", q)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := smallRun(t, nil)
	b := smallRun(t, nil)
	if a.SaaSServedTokens != b.SaaSServedTokens {
		t.Error("served tokens differ across identical runs")
	}
	for i := range a.MaxTempC {
		if a.MaxTempC[i] != b.MaxTempC[i] {
			t.Fatalf("max temp series differs at tick %d", i)
		}
		if a.PeakRowPowerW[i] != b.PeakRowPowerW[i] {
			t.Fatalf("peak power series differs at tick %d", i)
		}
	}
}

func TestRunRejectsBadTick(t *testing.T) {
	sc := SmallScenario()
	sc.Tick = 0
	if _, err := Run(sc, naivePolicy{}); err == nil {
		t.Fatal("expected error for zero tick")
	}
}

func TestRunPowerEmergencyCapsServers(t *testing.T) {
	normal := smallRun(t, nil)
	emergency := smallRun(t, func(sc *Scenario) {
		sc.Failures = []FailureEvent{{Kind: PowerFailure, At: 10 * time.Minute, Duration: 40 * time.Minute}}
	})
	if emergency.PowerCapSrvTicks <= normal.PowerCapSrvTicks {
		t.Errorf("power emergency should force capping: %d vs normal %d",
			emergency.PowerCapSrvTicks, normal.PowerCapSrvTicks)
	}
	// Frequency capping slows serving; with slack in the fluid queues the
	// tokens still get served, so the robust observable is that served
	// throughput cannot increase and the run stays healthy.
	if emergency.SaaSServedTokens > normal.SaaSServedTokens*1.001 {
		t.Error("capping cannot increase served tokens")
	}
	if emergency.ServiceRate() < 0.5 {
		t.Errorf("emergency service rate collapsed: %v", emergency.ServiceRate())
	}
}

func TestRunCoolingEmergencyRaisesTemps(t *testing.T) {
	// The paper evaluates emergencies over a peak-load window (§5.4); at
	// moderate load the 90% airflow limit still covers demand.
	peakLoad := func(sc *Scenario) {
		sc.Workload.DemandScale = 1.3
		sc.Workload.Occupancy = 0.97
	}
	normal := smallRun(t, peakLoad)
	emergency := smallRun(t, func(sc *Scenario) {
		peakLoad(sc)
		sc.Failures = []FailureEvent{{Kind: CoolingFailure, At: 10 * time.Minute, Duration: 40 * time.Minute}}
	})
	// With 10% less airflow the cluster either recirculates (hotter) or
	// throttles more.
	hotter := emergency.MaxTemp() > normal.MaxTemp()+0.1
	moreThrottle := emergency.ThermalThrottleSrvTicks > normal.ThermalThrottleSrvTicks
	if !hotter && !moreThrottle {
		t.Error("cooling emergency had no observable thermal effect")
	}
}

func TestRunOversubscriptionAddsServersAndCapping(t *testing.T) {
	normal := smallRun(t, nil)
	over := smallRun(t, func(sc *Scenario) { sc.Oversubscribe = 0.5 })
	if over.ServerTicks <= normal.ServerTicks {
		t.Fatal("oversubscription must add servers")
	}
	// With 50% more servers against fixed envelopes, the naive policy must
	// hit capping (power or thermal) far more often.
	overEvents := over.PowerCapSrvTicks + over.ThermalThrottleSrvTicks
	normalEvents := normal.PowerCapSrvTicks + normal.ThermalThrottleSrvTicks
	if overEvents <= normalEvents {
		t.Errorf("oversubscribed events %d should exceed normal %d", overEvents, normalEvents)
	}
}

func TestRunRowSeriesRecording(t *testing.T) {
	res := smallRun(t, func(sc *Scenario) { sc.RecordRowSeries = true })
	if len(res.RowPowerW) != 2 {
		t.Fatalf("row series count = %d, want 2", len(res.RowPowerW))
	}
	for row, series := range res.RowPowerW {
		if len(series) != res.Ticks {
			t.Fatalf("row %d series length %d, want %d", row, len(series), res.Ticks)
		}
	}
}

func TestResultAccessorsOnEmpty(t *testing.T) {
	var r Result
	if r.ThrottleFrac() != 0 || r.PowerCapFrac() != 0 {
		t.Error("empty result fracs must be 0")
	}
	if r.AvgQuality() != 1 {
		t.Error("empty result quality must be 1")
	}
	if r.SLOViolationRate() != 0 {
		t.Error("empty result violation rate must be 0")
	}
	if r.ServiceRate() != 1 {
		t.Error("empty result service rate must be 1")
	}
	if r.IaaSPerfLoss() != 0 {
		t.Error("empty result IaaS loss must be 0")
	}
}

func TestFailureKindString(t *testing.T) {
	if CoolingFailure.String() != "cooling" || PowerFailure.String() != "power" {
		t.Error("FailureKind String() wrong")
	}
}

// TestMixedFleetRun proves a heterogeneous A100+H100 scenario simulates end
// to end under both policies, with H100 rows actually drawing more power
// than A100 rows and all runs deterministic.
func TestMixedFleetRun(t *testing.T) {
	sc := SmallScenario()
	sc.Layout.Aisles = 2
	sc.Layout.MixGPU = layout.H100
	sc.Layout.MixFraction = 0.5
	sc.Duration = 30 * time.Minute
	sc.Workload.Duration = sc.Duration
	sc.RecordRowSeries = true

	cs, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.DC.Heterogeneous() {
		t.Fatal("compiled fleet not heterogeneous")
	}
	for _, mk := range []func() Policy{
		func() Policy { return core.NewBaseline() },
		func() Policy { return core.NewFull() },
	} {
		res1, err := cs.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		res2, err := cs.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		if res1.PeakPower() != res2.PeakPower() || res1.MaxTemp() != res2.MaxTemp() {
			t.Fatalf("%s: mixed-fleet runs not deterministic", res1.Policy)
		}
	}

	// Physics check against the all-A100 twin on an IaaS-only workload
	// under the oblivious Baseline: placement (packing) and per-VM load
	// fractions are identical across the two fleets, so the aisle swapped
	// to H100 hardware must draw strictly more — the same load fraction on
	// 700 W GPUs is more watts than on 400 W ones.
	iaas := sc
	iaas.Workload.SaaSFraction = 0
	uni := iaas
	uni.Layout.MixFraction = 0
	csMixed, err := Compile(iaas)
	if err != nil {
		t.Fatal(err)
	}
	csUni, err := Compile(uni)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := csMixed.Run(core.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	a100, err := csUni.Run(core.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	lastTotal := func(r *Result) float64 { return r.TotalPowerW[len(r.TotalPowerW)-1] }
	if lastTotal(mixed) <= lastTotal(a100) {
		t.Errorf("mixed-fleet total %.0f W not above all-A100 total %.0f W", lastTotal(mixed), lastTotal(a100))
	}
	// Each generation gets its own serving profile.
	if cs.profileBy[layout.H100] == nil || cs.profileBy[layout.H100] == cs.profileBy[layout.A100] {
		t.Error("H100 generation did not get its own serving profile")
	}
}
