package sim

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// quickScenario is a small, cheap-to-compile scenario for cache tests.
func quickScenario() Scenario {
	sc := SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	return sc
}

// TestCompileCacheHitMatchesCold is the cache's core determinism contract:
// a hit's run results are deeply equal to a cold sim.Compile's, so reports
// built from either are byte-identical.
func TestCompileCacheHitMatchesCold(t *testing.T) {
	sc := quickScenario()
	cold, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCompileCache(0)
	for i := 0; i < 2; i++ { // i=0 misses and fills, i=1 hits
		cs, err := cache.Compile(sc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cs.Run(naivePolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("compile %d: cached run differs from cold run", i)
		}
	}
	if n := cache.Compiles(); n != 1 {
		t.Errorf("cache performed %d compiles, want 1", n)
	}
	st := cache.Stats()
	if st.Scenarios.Hits != 1 || st.Scenarios.Misses != 1 {
		t.Errorf("scenario level hits=%d misses=%d, want 1/1", st.Scenarios.Hits, st.Scenarios.Misses)
	}
}

// TestCompileCacheServesRuntimeVariants proves a hit adopts the caller's
// runtime-only fields: a tick- and failure-varied scenario is served from the
// cache yet runs exactly like a fresh compile of the varied scenario.
func TestCompileCacheServesRuntimeVariants(t *testing.T) {
	base := quickScenario()
	cache := NewCompileCache(0)
	if _, err := cache.Compile(base); err != nil {
		t.Fatal(err)
	}

	varied := base
	varied.Tick = 30 * time.Second
	varied.Failures = []FailureEvent{{Kind: CoolingFailure, At: 5 * time.Minute, Duration: 5 * time.Minute}}
	varied.Shards = 2

	cs, err := cache.Compile(varied)
	if err != nil {
		t.Fatal(err)
	}
	if n := cache.Compiles(); n != 1 {
		t.Fatalf("runtime variant recompiled (compiles=%d)", n)
	}
	got, err := cs.Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Compile(varied)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("cached runtime variant differs from a fresh compile of the varied scenario")
	}
}

// TestCompileCacheLevel2Reuse pins the sub-artifact memoization: a climate
// change recompiles the scenario but reuses the layout and workload; a
// workload-seed change still reuses the layout.
func TestCompileCacheLevel2Reuse(t *testing.T) {
	cache := NewCompileCache(0)
	sc := quickScenario()
	if _, err := cache.Compile(sc); err != nil {
		t.Fatal(err)
	}

	climate := sc
	climate.Region.Name = "cooler"
	climate.Region.MeanC -= 10
	if _, err := cache.Compile(climate); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Compiles != 2 {
		t.Fatalf("compiles = %d, want 2", st.Compiles)
	}
	if st.Layouts.Hits != 1 || st.Workloads.Hits != 1 {
		t.Errorf("climate change: layout hits=%d workload hits=%d, want 1/1 (both reusable)",
			st.Layouts.Hits, st.Workloads.Hits)
	}
	if st.Weather.Hits != 0 {
		t.Errorf("climate change reused weather (hits=%d), but the region changed", st.Weather.Hits)
	}

	demand := sc
	demand.Workload.Seed++
	if _, err := cache.Compile(demand); err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Layouts.Hits != 2 {
		t.Errorf("workload change: layout hits=%d, want 2 (layout unchanged)", st.Layouts.Hits)
	}
	if st.Workloads.Hits != 1 {
		t.Errorf("workload change reused the workload (hits=%d) despite a new seed", st.Workloads.Hits)
	}
}

// TestCompileCacheBound proves the entry bound and re-miss after eviction.
func TestCompileCacheBound(t *testing.T) {
	cache := NewCompileCache(2)
	scenarios := make([]Scenario, 3)
	for i := range scenarios {
		sc := quickScenario()
		sc.StartOffset += time.Duration(i) * time.Hour
		scenarios[i] = sc
		if _, err := cache.Compile(sc); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Scenarios.Entries != 2 {
		t.Errorf("scenario entries = %d, want 2 (bound)", st.Scenarios.Entries)
	}
	if st.Scenarios.Evictions != 1 {
		t.Errorf("scenario evictions = %d, want 1", st.Scenarios.Evictions)
	}
	// The first scenario was least recently used and evicted; compiling it
	// again is a cold compile.
	if _, err := cache.Compile(scenarios[0]); err != nil {
		t.Fatal(err)
	}
	if n := cache.Compiles(); n != 4 {
		t.Errorf("compiles = %d, want 4 (evicted scenario recompiles)", n)
	}
}

// TestLRUCacheOrderAndEviction is the white-box LRU contract: recency order,
// eviction of the least recently used entry, and the counters.
func TestLRUCacheOrderAndEviction(t *testing.T) {
	key := func(b byte) CacheKey { var k CacheKey; k[0] = b; return k }
	c := newLRUCache[int](3)
	for b := byte(1); b <= 3; b++ {
		c.add(key(b), int(b))
	}
	if _, ok := c.get(key(1)); !ok { // touch 1: order is now 1,3,2
		t.Fatal("fresh entry missing")
	}
	c.add(key(4), 4) // evicts 2, the LRU

	want := []CacheKey{key(4), key(1), key(3)}
	if got := c.keysMRU(); !reflect.DeepEqual(got, want) {
		t.Errorf("MRU order = %v, want %v", got, want)
	}
	if _, ok := c.get(key(2)); ok {
		t.Error("evicted entry still present")
	}
	if v, ok := c.get(key(1)); !ok || v != 1 {
		t.Errorf("get(1) = %d,%v; want 1,true", v, ok)
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Errorf("evictions=%d entries=%d, want 1/3", st.Evictions, st.Entries)
	}
	// Re-adding an existing key keeps the incumbent value and refreshes it.
	c.add(key(3), 33)
	if v, _ := c.get(key(3)); v != 3 {
		t.Errorf("duplicate add replaced the incumbent: got %d, want 3", v)
	}
	if got := c.keysMRU()[0]; got != key(3) {
		t.Errorf("duplicate add did not refresh recency: MRU is %v", got)
	}
}

// TestCompileCacheConcurrent hammers one cache from many goroutines (run
// under -race in CI): concurrent compiles of the same scenario collapse into
// one cold compile via the flight map, and every caller gets a result that
// runs correctly.
func TestCompileCacheConcurrent(t *testing.T) {
	scA := quickScenario()
	scB := quickScenario()
	scB.StartOffset += time.Hour

	cache := NewCompileCache(0)
	const workers = 16
	results := make([]*CompiledScenario, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sc := scA
			if w%2 == 1 {
				sc = scB
			}
			results[w], errs[w] = cache.Compile(sc)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w] == nil {
			t.Fatalf("worker %d: nil compilation", w)
		}
	}
	if n := cache.Compiles(); n != 2 {
		t.Errorf("cache performed %d compiles for 2 unique scenarios", n)
	}
	if _, err := results[0].Run(naivePolicy{}); err != nil {
		t.Fatal(err)
	}
}
