package sim

import (
	"time"

	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// Policy is the scheduling surface TAPAS and the baselines implement.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// Place selects a server for a newly arrived VM. ok=false rejects the
	// placement (retried next tick).
	Place(st *cluster.State, vm *cluster.VM) (serverID int, ok bool)
	// Route distributes an endpoint's per-tick token demand across its
	// instances by calling EnqueueBulk on them.
	Route(st *cluster.State, ep trace.EndpointSpec, promptTokens, outputTokens float64)
	// Configure may reconfigure SaaS instances (frequency, batch, TP,
	// model, quantization) based on current telemetry.
	Configure(st *cluster.State)
	// CapRow reacts to a row exceeding its power limit by lowering
	// ServerFreqCap entries for servers in that row (applied next tick).
	CapRow(st *cluster.State, row int, drawW, limitW float64)
	// CapAisle reacts to an aisle's airflow demand exceeding its
	// provisioned supply (heat recirculation pressure).
	//
	// Capping contract: CapRow and CapAisle may lower ServerFreqCap for any
	// server of the named row/aisle. Other hooks (Configure in particular)
	// may only change ServerFreqCap of occupied servers. The engine's
	// dirty-set tick relies on this to prove that a row of idle, uncapped
	// servers is unchanged between sweeps: occupancy changes are counted by
	// cluster.State.RowOccEpoch and capping calls are observed at the call
	// site, so an idle server's frequency cap cannot move unobserved.
	CapAisle(st *cluster.State, aisle int, demandCFM, limitCFM float64)
}

// RequestRouter is an optional Policy extension consulted per request in
// request-level replay mode (Scenario.Requests). insts is the target
// endpoint's placed instances in ascending VM-ID order (never empty); the
// return value selects one by index. ok=false falls back to the engine's
// default routing (least queued seconds of work among non-reloading
// instances, ties to the lowest VM ID). The engine performs the enqueue —
// implementations only choose. Policies that do not implement the interface
// always get the default, so binned-mode policies run unchanged.
type RequestRouter interface {
	RouteRequest(st *cluster.State, insts []*cluster.VM, req llm.Request) (idx int, ok bool)
}

// RequestAdmitter is an optional Policy extension giving a RequestRouter
// veto power over admission in request-level replay mode. It is consulted
// instead of RouteRequest: admit=true places the request on insts[idx]
// exactly like RouteRequest; admit=false sheds it — the request is never
// enqueued, counts in Result.ReqShed, and produces no latency sample.
// Shedding trades completed volume for the latency of what remains, so
// SLO-attainment columns (computed over completions) must be read next to
// the requests_shed column.
type RequestAdmitter interface {
	AdmitRequest(st *cluster.State, insts []*cluster.VM, req llm.Request) (idx int, admit bool)
}

// RequestScheduler is an optional Policy extension selecting the scheduling
// discipline of per-instance request queues (FIFO when not implemented).
// The engine applies it when it attaches an instance's queue.
type RequestScheduler interface {
	QueueDiscipline() llm.Discipline
}

// SLOTunable is an optional Policy extension for policies whose
// admission/routing parameters can be swept as campaign axes. The engine
// calls TuneSLO once per run, before the first tick, with the scenario's
// SLOSched values; zero values mean "keep the policy's default".
type SLOTunable interface {
	TuneSLO(affinityWeight, admissionSlack float64)
}

// PowerGovTunable is an optional Policy extension for closed-loop power
// governors (core.PowerGov). The engine calls TunePowerGov once per run,
// before the first tick, with the scenario's PowerGov values; zero values
// mean "keep the policy's default".
type PowerGovTunable interface {
	TunePowerGov(budgetFrac, gain float64)
}

// PowerGov parameterizes closed-loop power-capping policies (core.PowerGov).
// The zero value leaves policy defaults untouched. Compile-relevant: both
// fields enter the scenario cache key (when non-zero) because they change
// frequency states and therefore every downstream metric — and like SLOSched
// the zero value contributes nothing, keeping pre-existing keys byte-stable.
type PowerGov struct {
	// BudgetFrac is each endpoint's power budget as a fraction of the
	// aggregate server TDP of its placed instances. Policy default 0.8
	// (power.DefaultBudgetFrac). Swept via the powergov.budget_frac axis.
	BudgetFrac float64
	// Gain is the controller's per-tick correction gain in (0, 1]: the
	// fraction of the normalized budget error folded into the recommended
	// power scale, and the tuner's per-tick step toward the recommended
	// frequency. Policy default 0.35 (power.DefaultGain). Swept via the
	// powergov.gain axis.
	Gain float64
}

// SLOSched parameterizes SLO-aware scheduling policies (core.SLO). The
// zero value leaves policy defaults untouched. Compile-relevant: both
// fields enter the scenario cache key (when non-zero) because they change
// routing decisions and therefore every downstream metric.
type SLOSched struct {
	// AffinityWeight is the multiplicative score discount for routing a
	// request to an instance that recently served the same customer
	// (KV-cache reuse). 1 disables affinity, smaller values chase reuse
	// harder. Policy default 0.5, matching TAPAS's fixed discount.
	AffinityWeight float64
	// AdmissionSlack scales the TTFT SLO bound used by deadline-aware
	// admission: a request is shed when its projected TTFT on the best
	// candidate instance exceeds slack × TTFT SLO. Policy default 1.
	AdmissionSlack float64
}

// FailureKind enumerates infrastructure emergencies (§5.4).
type FailureKind int

const (
	// CoolingFailure models an AHU/chiller loss: aisle airflow limited to
	// 90% of provisioned.
	CoolingFailure FailureKind = iota
	// PowerFailure models a UPS loss in the 4N/3 group: row power limited
	// to 75% of provisioned.
	PowerFailure
)

func (k FailureKind) String() string {
	if k == PowerFailure {
		return "power"
	}
	return "cooling"
}

// FailureEvent schedules an emergency window.
type FailureEvent struct {
	Kind     FailureKind
	At       time.Duration
	Duration time.Duration
}

// Scenario fully describes one simulation run.
type Scenario struct {
	Layout   layout.Config
	Workload trace.WorkloadConfig
	// Trace, when non-nil, replays a recorded workload instead of generating
	// one: Compile uses it verbatim (shared read-only across runs, like
	// generated workloads) and Workload is ignored. The trace must have been
	// recorded against a fleet of the same size as Layout (plus
	// Oversubscribe) provides — Compile rejects mismatches — so campaigns
	// can sweep policies, climates, and failures over a pinned workload.
	// Record/replay traces round-trip through trace.WriteWorkloadCSV /
	// ReadWorkloadCSV (see cmd/tapas-trace).
	Trace *trace.Workload
	// TraceTransforms is an optional replay-time transform chain applied to
	// Trace inside Compile (time_warp, demand_scale, endpoint_filter,
	// jitter, splice), turning one pinned trace into a family of scenarios —
	// "the same trace, 2x hotter". Requires Trace; the transformed workload
	// is validated exactly like a replayed one. Compile-relevant: variants
	// changing the chain are rejected, and the chain (including step
	// contents) must not be mutated after Compile.
	TraceTransforms transform.Chain
	// Requests, when non-empty, switches SaaS serving into request-level
	// replay mode: instead of routing binned per-tick token demand, the
	// engine admits these individual requests by arrival time into
	// per-instance continuous-batching queues (llm.RequestQueue) and records
	// per-request TTFT, time-between-tokens and queueing delay. Requests
	// must be sorted by Arrival (an offset from simulation start) and
	// reference endpoints of the scenario's workload; requests arriving
	// after the run's horizon are never admitted, and requests still in
	// flight at the horizon produce no latency sample. Compile-relevant:
	// the chain in TraceTransforms is applied to the log at compile time
	// (time_warp, demand_scale), and the log is part of the scenario's
	// cache key. Typically loaded from a requests CSV (trace.LoadRequestsCSV,
	// the `requests` scenario-spec field).
	Requests []llm.Request
	// SLOSched tunes SLO-aware policies (request-level replay mode only);
	// the zero value keeps policy defaults. Swept via the
	// slo.affinity_weight and slo.admission_slack campaign axes.
	SLOSched SLOSched
	// PowerGov tunes closed-loop power-capping policies (core.PowerGov);
	// the zero value keeps policy defaults. Swept via the
	// powergov.budget_frac and powergov.gain campaign axes.
	PowerGov PowerGov
	Region   trace.Region
	Duration time.Duration
	Tick     time.Duration
	// StartOffset shifts the time-of-day phase of all load and weather
	// patterns, letting short scenarios run at the diurnal peak. VM
	// arrivals and lifetimes stay on the simulation clock.
	StartOffset   time.Duration
	Oversubscribe float64 // extra rack ratio added at fixed envelopes
	Failures      []FailureEvent
	// RecordRowSeries keeps the full per-row power series (needed by
	// Fig. 10-style outputs; costs memory on long runs).
	RecordRowSeries bool
	// Shards splits the per-server phases of the tick kernel across a
	// bounded worker pool: 0 or 1 runs serially, n ≥ 2 uses n fixed
	// contiguous server-ID chunks, and a negative value uses GOMAXPROCS.
	// Results are byte-identical at any shard count: shard boundaries are
	// fixed up front and every floating-point reduction runs serially in
	// server-ID order after the parallel phase. Runtime-only — a compiled
	// scenario can vary it per run.
	Shards int
	// Observer, when set, is invoked at the end of every tick with the live
	// cluster state. The characterization experiments use it to sample
	// sensors; it must not mutate the state.
	Observer func(st *cluster.State)
}

// DefaultScenario returns the paper's large-scale setup: ~1000 A100 servers,
// 50/50 IaaS/SaaS, one week at one-minute ticks, temperate region.
func DefaultScenario() Scenario {
	lc := layout.DefaultConfig()
	return Scenario{
		Layout: lc,
		Workload: trace.WorkloadConfig{
			Servers:      lc.Aisles * 2 * lc.RacksPerRow * lc.ServersPerRack,
			SaaSFraction: 0.5,
			Duration:     7 * 24 * time.Hour,
			Endpoints:    10,
			Seed:         42,
		},
		Region:   trace.RegionTemperate,
		Duration: 7 * 24 * time.Hour,
		Tick:     time.Minute,
	}
}

// SmallScenario returns the paper's real-cluster setup: 80 servers in two
// rows, 50/50 mix, one hour.
func SmallScenario() Scenario {
	lc := layout.SmallConfig()
	return Scenario{
		Layout: lc,
		Workload: trace.WorkloadConfig{
			Servers:      lc.Aisles * 2 * lc.RacksPerRow * lc.ServersPerRack,
			SaaSFraction: 0.5,
			Duration:     time.Hour,
			Endpoints:    3,
			Seed:         42,
		},
		Region:      trace.RegionHot,
		Duration:    time.Hour,
		Tick:        time.Minute,
		StartOffset: 13 * time.Hour, // early-afternoon diurnal peak
	}
}
