package sim

import (
	"reflect"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// syntheticRequests builds a deterministic request log spread over the first
// window of the run, cycling through eps endpoints and a small customer
// population (so KV-cache affinity routing has repeats to latch onto).
func syntheticRequests(n, eps int, window time.Duration) []llm.Request {
	reqs := make([]llm.Request, n)
	for i := range reqs {
		reqs[i] = llm.Request{
			ID:           int64(i),
			Customer:     i % 37,
			Endpoint:     i % eps,
			PromptTokens: 256 + (i%7)*128,
			OutputTokens: 32 + (i%5)*16,
			Arrival:      time.Duration(i) * window / time.Duration(n),
		}
	}
	return reqs
}

// requestScenario is the small fleet running in request-level replay mode
// with a tick fine enough that admission quantization does not drown the
// latency signal.
func requestScenario(reqs []llm.Request) Scenario {
	sc := SmallScenario()
	sc.Duration = 10 * time.Minute
	sc.Workload.Duration = sc.Duration
	sc.Tick = time.Second
	sc.Requests = reqs
	return sc
}

// TestRequestReplayPopulatesSLOAccounting is the end-to-end contract of
// request-level replay: every request in the log (arrivals well inside the
// horizon) completes, per-endpoint accounting sums to the aggregate, and the
// latency samples are sane (non-negative queueing delay, positive TTFT).
func TestRequestReplayPopulatesSLOAccounting(t *testing.T) {
	const n = 400
	reqs := syntheticRequests(n, 2, 7*time.Minute)
	cs, err := Compile(requestScenario(reqs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cs.Run(core.New(core.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RequestsCompleted(AllEndpoints); got != n {
		t.Fatalf("completed %d of %d requests", got, n)
	}
	sum := 0
	for ep := 0; ep < res.RequestEndpoints(); ep++ {
		sum += res.RequestsCompleted(ep)
		if res.RequestsCompleted(ep) == 0 {
			t.Errorf("endpoint %d completed no requests", ep)
		}
	}
	if sum != n {
		t.Errorf("per-endpoint completions sum to %d, want %d", sum, n)
	}
	if p := res.TTFTPercentile(AllEndpoints, 50); p <= 0 {
		t.Errorf("TTFT p50 %v, want > 0", p)
	}
	if p := res.TBTPercentile(AllEndpoints, 99); p <= 0 {
		t.Errorf("TBT p99 %v, want > 0", p)
	}
	for ep, samples := range res.ReqQueueDelay {
		for i, q := range samples {
			if q < 0 {
				t.Fatalf("endpoint %d sample %d: negative queueing delay %v", ep, i, q)
			}
		}
	}
	if a := res.SLOAttainment(AllEndpoints); a < 0 || a > 1 {
		t.Errorf("SLO attainment %v out of [0,1]", a)
	}
	if res.SaaSServedTokens <= 0 {
		t.Error("request replay served no tokens")
	}
}

// TestRequestReplayShardsByteIdentical extends the shard determinism
// property to request-level replay: per-request queues, routing, and the
// harvest order of the SLO samples must be bit-identical at every shard
// count, for both the default router and TAPAS's affinity-aware
// RouteRequest.
func TestRequestReplayShardsByteIdentical(t *testing.T) {
	cs, err := Compile(requestScenario(syntheticRequests(300, 2, 7*time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []struct {
		name string
		new  func() Policy
	}{
		{"baseline", func() Policy { return core.New(core.Options{}) }},
		{"tapas", func() Policy { return core.NewFull() }},
	} {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			serial, err := cs.Variant(func(s *Scenario) { s.Shards = 1 }).Run(pol.new())
			if err != nil {
				t.Fatal(err)
			}
			if serial.RequestsCompleted(AllEndpoints) == 0 {
				t.Fatal("request mode inactive: no completions to compare")
			}
			for _, n := range []int{2, 7, -1} {
				res, err := cs.Variant(func(s *Scenario) { s.Shards = n }).Run(pol.new())
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				if !reflect.DeepEqual(serial, res) {
					t.Errorf("shards=%d diverged from the serial engine", n)
				}
			}
		})
	}
}

// TestRequestReplayAttainmentMonotone is the property the demand_scale sweep
// relies on: a SaaS factor ≥ 1 keeps every recorded request and adds
// replicas, so each request's latency weakly increases and SLO attainment is
// monotone non-increasing in the factor.
func TestRequestReplayAttainmentMonotone(t *testing.T) {
	base := syntheticRequests(400, 2, 7*time.Minute)
	prev := 2.0 // above any attainable fraction
	for _, f := range []float64{1, 2, 4} {
		chain := transform.Chain{&transform.DemandScale{SaaS: f}}
		scaled, err := chain.ApplyRequests(base)
		if err != nil {
			t.Fatal(err)
		}
		if want := len(base) * int(f); len(scaled) != want {
			t.Fatalf("factor %v: %d requests, want %d", f, len(scaled), want)
		}
		cs, err := Compile(requestScenario(scaled))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cs.Run(core.New(core.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		att := res.SLOAttainment(AllEndpoints)
		if att > prev+1e-12 {
			t.Errorf("factor %v: attainment %.6f rose above %.6f at the lower factor", f, att, prev)
		}
		prev = att
	}
}

// TestRequestLogCacheKey pins the keying contract: scenarios differing only
// in their request log must not share a cache key, and an empty log keys
// identically to the pre-request-mode encoding (binned-mode keys are stable
// across this feature).
func TestRequestLogCacheKey(t *testing.T) {
	reqs := syntheticRequests(50, 2, 5*time.Minute)
	withLog := requestScenario(reqs)
	k1, err := ScenarioKey(withLog)
	if err != nil {
		t.Fatal(err)
	}
	same := requestScenario(reqs)
	k2, err := ScenarioKey(same)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical request logs produced different keys")
	}
	tweaked := append([]llm.Request(nil), reqs...)
	tweaked[0].PromptTokens++
	k3, err := ScenarioKey(requestScenario(tweaked))
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("tweaked request log shares the original's key")
	}
	k4, err := ScenarioKey(requestScenario(nil))
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Error("empty log shares a key with a populated one")
	}
}
