package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// quickReplayScenario is the 80-server 20-minute smoke setup the replay
// round-trip tests simulate.
func quickReplayScenario() Scenario {
	sc := SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	return sc
}

// reportString folds every metric of a result into one full-precision string,
// so "byte-identical report" comparisons cover the whole result surface.
func reportString(r *Result) string {
	return fmt.Sprintf("policy=%s ticks=%d maxT=%v p99T=%v peakW=%v p99W=%v throttle=%v powercap=%v svc=%v slo=%v qual=%v iaas=%v rejects=%d",
		r.Policy, r.Ticks, r.MaxTemp(), r.PercentileMaxTemp(99), r.PeakPower(),
		r.PercentilePeakPower(99), r.ThrottleFrac(), r.PowerCapFrac(),
		r.ServiceRate(), r.SLOViolationRate(), r.AvgQuality(), r.IaaSPerfLoss(), r.PlacementRejects)
}

// TestReplayReproducesGeneratedRun is the record/replay contract at the sim
// layer: exporting a generated workload to CSV and replaying the parsed copy
// produces a report byte-identical to the original generated run, across a
// grid of workload configs.
func TestReplayReproducesGeneratedRun(t *testing.T) {
	for _, saas := range []float64{0, 0.5, 1} {
		for _, seed := range []uint64{7, 42} {
			t.Run(fmt.Sprintf("saas=%v/seed=%d", saas, seed), func(t *testing.T) {
				sc := quickReplayScenario()
				sc.Workload.SaaSFraction = saas
				sc.Workload.Seed = seed

				genRes, err := Run(sc, naivePolicy{})
				if err != nil {
					t.Fatal(err)
				}

				wl, err := GenerateWorkload(sc)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := trace.WriteWorkloadCSV(&buf, wl); err != nil {
					t.Fatal(err)
				}
				parsed, err := trace.ReadWorkloadCSV(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(parsed, wl) {
					t.Fatal("workload differs after CSV round trip")
				}

				replay := sc
				replay.Trace = parsed
				repRes, err := Run(replay, naivePolicy{})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := reportString(repRes), reportString(genRes); got != want {
					t.Errorf("replay report differs from generated run:\ngot:  %s\nwant: %s", got, want)
				}
				if !reflect.DeepEqual(repRes, genRes) {
					t.Error("replay result not deeply equal to generated run")
				}
			})
		}
	}
}

// TestGenerateWorkloadAppliesTransforms: GenerateWorkload materializes the
// workload exactly as Compile would, chain included — the contract behind
// "tapas-trace -transform output replays byte-identically to the in-spec
// chain".
func TestGenerateWorkloadAppliesTransforms(t *testing.T) {
	sc := quickReplayScenario()
	wl, err := GenerateWorkload(sc)
	if err != nil {
		t.Fatal(err)
	}
	chain := transform.Chain{&transform.DemandScale{Factor: 1.5, Seed: 9}}
	replay := sc
	replay.Trace = wl
	replay.TraceTransforms = chain
	got, err := GenerateWorkload(replay)
	if err != nil {
		t.Fatal(err)
	}
	want, err := chain.Apply(wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("GenerateWorkload did not apply the transform chain like Compile")
	}
}

// TestReplayValidation pins the loud-failure paths: fleet-size mismatch,
// over-long runs, empty traces, and variant swaps.
func TestReplayValidation(t *testing.T) {
	sc := quickReplayScenario()
	wl, err := GenerateWorkload(sc)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("fleet mismatch", func(t *testing.T) {
		bad := sc
		bad.Trace = wl
		bad.Oversubscribe = 0.4 // grows the fleet past the recorded 80 servers
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "recorded for") {
			t.Errorf("got %v, want fleet-size mismatch error", err)
		}
	})
	t.Run("duration beyond window", func(t *testing.T) {
		bad := sc
		bad.Trace = wl
		bad.Duration = wl.Config.Duration + time.Hour
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "exceeds the replay trace") {
			t.Errorf("got %v, want window error", err)
		}
	})
	t.Run("empty trace", func(t *testing.T) {
		bad := sc
		bad.Trace = &trace.Workload{Config: wl.Config}
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "no VMs") {
			t.Errorf("got %v, want empty-trace error", err)
		}
	})
	t.Run("shifted VM ids", func(t *testing.T) {
		// The engine indexes VM state positionally; a programmatic trace
		// with ids not equal to their index must be rejected, not replayed
		// into silent corruption (or a panic at expiry).
		shifted := *wl
		shifted.VMs = append([]trace.VMSpec(nil), wl.VMs...)
		for i := range shifted.VMs {
			shifted.VMs[i].ID = i + 1
		}
		bad := sc
		bad.Trace = &shifted
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "VM ids must be dense") {
			t.Errorf("got %v, want dense-id rejection", err)
		}
	})
	t.Run("shifted endpoint ids", func(t *testing.T) {
		shifted := *wl
		shifted.Endpoints = append([]trace.EndpointSpec(nil), wl.Endpoints...)
		for i := range shifted.Endpoints {
			shifted.Endpoints[i].ID = i + 3
		}
		bad := sc
		bad.Trace = &shifted
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "endpoint ids must be dense") {
			t.Errorf("got %v, want dense-endpoint-id rejection", err)
		}
	})
	t.Run("unsorted arrivals", func(t *testing.T) {
		shuffled := *wl
		shuffled.VMs = append([]trace.VMSpec(nil), wl.VMs...)
		last := len(shuffled.VMs) - 1
		shuffled.VMs[last].Arrival = -1 // sorts before every 0-arrival resident
		bad := sc
		bad.Trace = &shuffled
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "sorted by arrival") {
			t.Errorf("got %v, want sorted-arrival rejection", err)
		}
	})
	t.Run("transforms without trace", func(t *testing.T) {
		bad := sc
		bad.TraceTransforms = transform.Chain{&transform.DemandScale{Factor: 2}}
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "requires a replay Trace") {
			t.Errorf("got %v, want transforms-without-trace rejection", err)
		}
	})
	t.Run("invalid transform chain", func(t *testing.T) {
		bad := sc
		bad.Trace = wl
		bad.TraceTransforms = transform.Chain{&transform.TimeWarp{Factor: -3}}
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "transform") {
			t.Errorf("got %v, want chain validation error", err)
		}
	})
	t.Run("warp shrinks window below duration", func(t *testing.T) {
		bad := sc
		bad.Trace = wl
		bad.TraceTransforms = transform.Chain{&transform.TimeWarp{Factor: 0.25}}
		_, err := Compile(bad)
		if err == nil || !strings.Contains(err.Error(), "exceeds the replay trace") {
			t.Errorf("got %v, want window error on the warped trace", err)
		}
	})
	t.Run("variant swaps transform chain", func(t *testing.T) {
		good := sc
		good.Trace = wl
		good.TraceTransforms = transform.Chain{&transform.DemandScale{Factor: 1}}
		cs, err := Compile(good)
		if err != nil {
			t.Fatal(err)
		}
		v := cs.Variant(func(s *Scenario) {
			s.TraceTransforms = transform.Chain{&transform.DemandScale{Factor: 2}}
		})
		if _, err := v.Run(naivePolicy{}); err == nil || !strings.Contains(err.Error(), "variant changed TraceTransforms") {
			t.Errorf("got %v, want transform-variant rejection", err)
		}
		// Runtime-only variants over a transformed trace stay allowed.
		ok := cs.Variant(func(s *Scenario) { s.Tick = 2 * time.Minute })
		if _, err := ok.Run(naivePolicy{}); err != nil {
			t.Errorf("runtime-only variant rejected: %v", err)
		}
	})
	t.Run("variant swaps trace", func(t *testing.T) {
		good := sc
		good.Trace = wl
		cs, err := Compile(good)
		if err != nil {
			t.Fatal(err)
		}
		other := *wl
		v := cs.Variant(func(s *Scenario) { s.Trace = &other })
		if _, err := v.Run(naivePolicy{}); err == nil || !strings.Contains(err.Error(), "variant changed Trace") {
			t.Errorf("got %v, want trace-variant rejection", err)
		}
	})
}
