package sim

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestCompiledRunMatchesFreshRun pins the compiled-scenario contract: running
// from a shared compilation produces results deeply equal to compiling per
// run, and repeated runs from one compilation do not contaminate each other.
func TestCompiledRunMatchesFreshRun(t *testing.T) {
	sc := SmallScenario()
	fresh, err := Run(sc, naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cs.Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := cs.Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, first) {
		t.Error("compiled run differs from fresh run")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("second run from the same compilation differs from the first")
	}
}

// TestCompiledRunsConcurrently drives many simultaneous runs off one
// compilation; with -race this proves the shared artifacts are read-only.
func TestCompiledRunsConcurrently(t *testing.T) {
	sc := SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	cs, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cs.Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = cs.Run(naivePolicy{})
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(want, results[w]) {
			t.Errorf("worker %d produced a different result", w)
		}
	}
}

// TestCompiledVariant verifies runtime-only variations (tick, failures)
// reuse the compiled artifacts yet match a fresh compile of the varied
// scenario.
func TestCompiledVariant(t *testing.T) {
	sc := SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	cs, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}

	fineSc := sc
	fineSc.Tick = 15 * time.Second
	freshFine, err := Run(fineSc, naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	variantFine, err := cs.Variant(func(s *Scenario) { s.Tick = 15 * time.Second }).Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(freshFine, variantFine) {
		t.Error("tick variant differs from fresh compile at that tick")
	}

	failSc := sc
	failSc.Failures = []FailureEvent{{Kind: PowerFailure, At: 5 * time.Minute, Duration: 10 * time.Minute}}
	freshFail, err := Run(failSc, naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	variantFail, err := cs.Variant(func(s *Scenario) {
		s.Failures = []FailureEvent{{Kind: PowerFailure, At: 5 * time.Minute, Duration: 10 * time.Minute}}
	}).Run(naivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(freshFail, variantFail) {
		t.Error("failure variant differs from fresh compile with that schedule")
	}
	// The base compilation must be untouched by variants.
	if cs.Scenario.Tick != sc.Tick || len(cs.Scenario.Failures) != 0 {
		t.Error("Variant mutated the base compiled scenario")
	}
}

// TestCompiledRunRejectsBadTick keeps the tick validation on the compiled
// path.
func TestCompiledRunRejectsBadTick(t *testing.T) {
	cs, err := Compile(SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Variant(func(s *Scenario) { s.Tick = 0 }).Run(naivePolicy{}); err == nil {
		t.Fatal("expected error for zero tick")
	}
}

// TestCompiledRunRejectsStaleArtifacts pins the runtime-only contract: a
// variant that changes a compile-relevant field must fail loudly instead of
// simulating against artifacts compiled for different inputs.
func TestCompiledRunRejectsStaleArtifacts(t *testing.T) {
	cs, err := Compile(SmallScenario())
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"workload", func(s *Scenario) { s.Workload.SaaSFraction = 0.25 }},
		{"region", func(s *Scenario) { s.Region.MeanC += 5 }},
		{"oversubscribe", func(s *Scenario) { s.Oversubscribe = 0.3 }},
		{"start offset", func(s *Scenario) { s.StartOffset += time.Hour }},
		{"longer duration", func(s *Scenario) { s.Duration *= 2 }},
	}
	for _, tc := range bad {
		if _, err := cs.Variant(tc.mutate).Run(naivePolicy{}); err == nil {
			t.Errorf("%s variant must be rejected", tc.name)
		}
	}
	// Shortening the duration stays within the compiled window and is fine.
	short := cs.Variant(func(s *Scenario) {
		s.Duration = 20 * time.Minute
	})
	if _, err := short.Run(naivePolicy{}); err != nil {
		t.Errorf("shortened-duration variant must run: %v", err)
	}
}
