// Package units defines typed physical quantities used across the TAPAS
// simulator: temperatures, power, airflow, and clock frequency.
//
// The types are thin float64 wrappers. They exist so that public structs and
// function signatures document which unit they expect; arithmetic-heavy inner
// loops convert to float64 at the boundary.
package units

import "fmt"

// Celsius is a temperature in degrees Celsius.
type Celsius float64

func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// Watts is electrical power in watts.
type Watts float64

func (w Watts) String() string {
	if w >= 1000 {
		return fmt.Sprintf("%.2fkW", float64(w)/1000)
	}
	return fmt.Sprintf("%.0fW", float64(w))
}

// Kilowatts converts to kW.
func (w Watts) Kilowatts() float64 { return float64(w) / 1000 }

// CFM is volumetric airflow in cubic feet per minute.
type CFM float64

func (a CFM) String() string { return fmt.Sprintf("%.0fCFM", float64(a)) }

// GHz is a clock frequency in gigahertz.
type GHz float64

func (f GHz) String() string { return fmt.Sprintf("%.2fGHz", float64(f)) }

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp01 limits v to [0, 1]. Used for utilization and load fractions.
func Clamp01(v float64) float64 { return Clamp(v, 0, 1) }

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
