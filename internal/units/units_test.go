package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClamp01Property(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		got := Clamp01(v)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampIdempotent(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		once := Clamp(v, -3, 7)
		return Clamp(once, -3, 7) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp(0,10,0.5) = %v, want 5", got)
	}
	if got := Lerp(2, 2, 0.9); got != 2 {
		t.Errorf("Lerp(2,2,0.9) = %v, want 2", got)
	}
	if got := Lerp(1, 3, 0); got != 1 {
		t.Errorf("Lerp(1,3,0) = %v, want 1", got)
	}
	if got := Lerp(1, 3, 1); got != 3 {
		t.Errorf("Lerp(1,3,1) = %v, want 3", got)
	}
}

func TestLerpEndpointsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true // avoid overflow in b-a
		}
		return Lerp(a, b, 0) == a && Lerp(a, b, 1) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := Celsius(72.34).String(); got != "72.3°C" {
		t.Errorf("Celsius string = %q", got)
	}
	if got := Watts(6500).String(); got != "6.50kW" {
		t.Errorf("Watts kW string = %q", got)
	}
	if got := Watts(400).String(); got != "400W" {
		t.Errorf("Watts string = %q", got)
	}
	if got := CFM(840).String(); got != "840CFM" {
		t.Errorf("CFM string = %q", got)
	}
	if got := GHz(1.41).String(); got != "1.41GHz" {
		t.Errorf("GHz string = %q", got)
	}
}

func TestKilowatts(t *testing.T) {
	if got := Watts(6500).Kilowatts(); got != 6.5 {
		t.Errorf("Kilowatts = %v, want 6.5", got)
	}
}
