// Package trace synthesizes the production telemetry the paper's evaluation
// replays: outside-temperature series per region, GPU VM arrival traces with
// realistic lifetimes and diurnal load patterns (IaaS), and SaaS inference
// endpoints with request streams. Every generator is deterministic in its
// seed.
//
// The generators are parameterized to match the distributions the paper
// reports: over 60% of VMs live beyond two weeks (Fig. 12a), endpoints run
// 23–100 VMs (Fig. 12b, §5.1), row power is heavy-tailed (Fig. 10), and VM
// load is strongly diurnal and predictable week-over-week (Figs. 13–14).
package trace

import (
	"math"
	"math/rand/v2"
	"time"
)

// Region parameterizes a deployment climate.
type Region struct {
	Name         string
	MeanC        float64 // annual mean temperature
	SeasonalAmpC float64 // seasonal swing amplitude
	DiurnalAmpC  float64 // day/night swing amplitude
	NoiseC       float64 // weather noise magnitude
}

// Preset regions spanning the "three regions with varying climates" of the
// paper's characterization.
var (
	RegionHot       = Region{Name: "hot", MeanC: 30, SeasonalAmpC: 5, DiurnalAmpC: 8, NoiseC: 1.5}
	RegionTemperate = Region{Name: "temperate", MeanC: 18, SeasonalAmpC: 8, DiurnalAmpC: 7, NoiseC: 2.0}
	RegionCool      = Region{Name: "cool", MeanC: 9, SeasonalAmpC: 7, DiurnalAmpC: 5, NoiseC: 2.0}
)

// OutsideTemp is a precomputed outside-temperature series with AR(1) weather
// noise, sampled at a fixed step and linearly interpolated between samples.
type OutsideTemp struct {
	Region Region
	Step   time.Duration
	Series []float64
}

// NewOutsideTemp generates a series covering [0, duration].
func NewOutsideTemp(region Region, duration, step time.Duration, seed uint64) *OutsideTemp {
	if step <= 0 {
		step = 10 * time.Minute
	}
	n := int(duration/step) + 2
	rng := rand.New(rand.NewPCG(seed, 0x0075fde))
	series := make([]float64, n)
	noise := 0.0
	for i := range series {
		t := time.Duration(i) * step
		hours := t.Hours()
		// Seasonal component over a 90-day half-cycle (the paper's study
		// spans the warm months).
		seasonal := region.SeasonalAmpC * math.Sin(2*math.Pi*hours/(24*180))
		// Diurnal: coldest ≈ 05:00, hottest ≈ 15:00.
		diurnal := region.DiurnalAmpC * math.Sin(2*math.Pi*(hours-10)/24)
		noise = 0.97*noise + 0.03*rng.NormFloat64()*region.NoiseC*5
		series[i] = region.MeanC + seasonal + diurnal + noise
	}
	return &OutsideTemp{Region: region, Step: step, Series: series}
}

// At returns the outside temperature at time t (clamped to the series).
func (o *OutsideTemp) At(t time.Duration) float64 {
	if t < 0 {
		return o.Series[0]
	}
	idx := float64(t) / float64(o.Step)
	i := int(idx)
	if i >= len(o.Series)-1 {
		return o.Series[len(o.Series)-1]
	}
	frac := idx - float64(i)
	return o.Series[i]*(1-frac) + o.Series[i+1]*frac
}
