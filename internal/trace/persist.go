package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"time"

	"github.com/tapas-sim/tapas/internal/llm"
)

// WriteVMsCSV serializes a workload's VM arrival trace in a stable CSV
// layout, so generated traces can be archived and replayed byte-identically
// (the role the paper's production traces play).
//
// Columns: id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,
// weekend_dip,noise,seed.
func WriteVMsCSV(w io.Writer, vms []VMSpec) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "kind", "customer", "endpoint", "arrival_ns", "lifetime_ns",
		"base", "amp", "phase", "weekend_dip", "noise", "seed"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, vm := range vms {
		rec := []string{
			strconv.Itoa(vm.ID),
			strconv.Itoa(int(vm.Kind)),
			strconv.Itoa(vm.Customer),
			strconv.Itoa(vm.Endpoint),
			strconv.FormatInt(int64(vm.Arrival), 10),
			strconv.FormatInt(int64(vm.Lifetime), 10),
			strconv.FormatFloat(vm.Load.Base, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.DiurnalAmp, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.PhaseHours, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.WeekendDip, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.NoiseAmp, 'g', -1, 64),
			strconv.FormatUint(vm.Load.Seed, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing VM %d: %w", vm.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadVMsCSV parses a trace written by WriteVMsCSV. The reader streams —
// every row is validated as it arrives — and each error names the 1-based
// CSV row it occurred on (the header is row 1, the first VM row is row 2).
// Duplicate VM IDs are rejected: two VMs with one ID would silently collapse
// into one server assignment when replayed.
func ReadVMsCSV(r io.Reader) ([]VMSpec, error) {
	cr := csv.NewReader(r)
	const wantCols = 12
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: empty VMs CSV")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: VMs CSV row 1: %w", err)
	}
	if len(header) != wantCols {
		return nil, fmt.Errorf("trace: VMs CSV row 1: header has %d columns, want %d", len(header), wantCols)
	}
	var out []VMSpec
	seen := map[int]bool{}
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		row++
		if err != nil {
			return nil, fmt.Errorf("trace: VMs CSV row %d: %w", row, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: VMs CSV row %d: id: %w", row, err)
		}
		if seen[id] {
			return nil, fmt.Errorf("trace: VMs CSV row %d: duplicate VM id %d", row, id)
		}
		kind, err := strconv.Atoi(rec[1])
		if err != nil || (kind != int(IaaS) && kind != int(SaaS)) {
			return nil, fmt.Errorf("trace: VMs CSV row %d: invalid kind %q", row, rec[1])
		}
		customer, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: VMs CSV row %d: customer: %w", row, err)
		}
		endpoint, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: VMs CSV row %d: endpoint: %w", row, err)
		}
		arrival, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: VMs CSV row %d: arrival: %w", row, err)
		}
		lifetime, err := strconv.ParseInt(rec[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: VMs CSV row %d: lifetime: %w", row, err)
		}
		var fields [5]float64
		names := [5]string{"base", "amp", "phase", "weekend_dip", "noise"}
		for k := 0; k < 5; k++ {
			fields[k], err = strconv.ParseFloat(rec[6+k], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: VMs CSV row %d: %s: %w", row, names[k], err)
			}
			if math.IsNaN(fields[k]) || math.IsInf(fields[k], 0) {
				return nil, fmt.Errorf("trace: VMs CSV row %d: %s: non-finite value %q", row, names[k], rec[6+k])
			}
		}
		seed, err := strconv.ParseUint(rec[11], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: VMs CSV row %d: seed: %w", row, err)
		}
		seen[id] = true
		out = append(out, VMSpec{
			ID:       id,
			Kind:     VMKind(kind),
			Customer: customer,
			Endpoint: endpoint,
			Arrival:  time.Duration(arrival),
			Lifetime: time.Duration(lifetime),
			Load: LoadPattern{
				Base: fields[0], DiurnalAmp: fields[1], PhaseHours: fields[2],
				WeekendDip: fields[3], NoiseAmp: fields[4], Seed: seed,
			},
		})
	}
	return out, nil
}

// validateRequest checks one request against the invariants fine-grained
// replay relies on: non-negative token counts and arrival, and arrivals
// non-decreasing (replay engines consume the stream through a monotone
// cursor, like VM arrivals). Shared by the writer and the reader so the two
// cannot drift: anything the writer archives, the reader accepts.
func validateRequest(r llm.Request, prev time.Duration) error {
	if r.PromptTokens < 0 || r.OutputTokens < 0 {
		return fmt.Errorf("negative token count (%d, %d)", r.PromptTokens, r.OutputTokens)
	}
	if r.Arrival < 0 {
		return fmt.Errorf("negative arrival %v", r.Arrival)
	}
	if r.Arrival < prev {
		return fmt.Errorf("arrival %v before the previous request's %v (requests must be sorted by arrival)", r.Arrival, prev)
	}
	return nil
}

// WriteRequestsCSV serializes a request stream (id,customer,endpoint,prompt,
// output,arrival_ns) for request-level replay. Requests are validated as
// they are written — negative counts or out-of-order arrivals would archive
// a stream the reader (rightly) refuses to load back.
func WriteRequestsCSV(w io.Writer, reqs []llm.Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "customer", "endpoint", "prompt", "output", "arrival_ns"}); err != nil {
		return fmt.Errorf("trace: writing requests header: %w", err)
	}
	var prev time.Duration
	seen := make(map[int64]bool, len(reqs))
	for i, r := range reqs {
		if err := validateRequest(r, prev); err != nil {
			return fmt.Errorf("trace: writing request %d (id %d): %w", i, r.ID, err)
		}
		if seen[r.ID] {
			return fmt.Errorf("trace: writing request %d: duplicate request id %d", i, r.ID)
		}
		seen[r.ID] = true
		prev = r.Arrival
		rec := []string{
			strconv.FormatInt(r.ID, 10),
			strconv.Itoa(r.Customer),
			strconv.Itoa(r.Endpoint),
			strconv.Itoa(r.PromptTokens),
			strconv.Itoa(r.OutputTokens),
			strconv.FormatInt(int64(r.Arrival), 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing request %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing requests CSV: %w", err)
	}
	return nil
}

// ReadRequestsCSV parses a stream written by WriteRequestsCSV. Like
// ReadVMsCSV it streams — every row is validated as it arrives (header
// names, field parses, duplicate IDs, non-negative counts, sorted arrivals)
// rather than after materializing the slice — and errors carry the 1-based
// CSV row (the header is row 1). Both the current 6-column layout and the
// legacy 5-column form without the endpoint column (every request targets
// endpoint 0) are accepted; the writer always emits 6 columns.
func ReadRequestsCSV(r io.Reader) ([]llm.Request, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: empty requests CSV")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: requests CSV row 1: %w", err)
	}
	want := []string{"id", "customer", "endpoint", "prompt", "output", "arrival_ns"}
	hasEndpoint := true
	if len(header) == len(want)-1 {
		// Legacy 5-column stream: no endpoint column.
		want = []string{"id", "customer", "prompt", "output", "arrival_ns"}
		hasEndpoint = false
	} else if len(header) != len(want) {
		return nil, fmt.Errorf("trace: requests CSV row 1: header has %d columns, want %d (or the legacy %d without endpoint)", len(header), len(want), len(want)-1)
	}
	for i, name := range want {
		if header[i] != name {
			return nil, fmt.Errorf("trace: requests CSV row 1: column %d is %q, want %q", i+1, header[i], name)
		}
	}
	var out []llm.Request
	seen := map[int64]bool{}
	var prev time.Duration
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		row++
		if err != nil {
			return nil, fmt.Errorf("trace: requests CSV row %d: %w", row, err)
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: requests CSV row %d: id: %w", row, err)
		}
		if seen[id] {
			return nil, fmt.Errorf("trace: requests CSV row %d: duplicate request id %d", row, id)
		}
		customer, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: requests CSV row %d: customer: %w", row, err)
		}
		endpoint, col := 0, 2
		if hasEndpoint {
			endpoint, err = strconv.Atoi(rec[2])
			if err != nil {
				return nil, fmt.Errorf("trace: requests CSV row %d: endpoint: %w", row, err)
			}
			if endpoint < 0 {
				return nil, fmt.Errorf("trace: requests CSV row %d: negative endpoint %d", row, endpoint)
			}
			col = 3
		}
		prompt, err := strconv.Atoi(rec[col])
		if err != nil {
			return nil, fmt.Errorf("trace: requests CSV row %d: prompt: %w", row, err)
		}
		output, err := strconv.Atoi(rec[col+1])
		if err != nil {
			return nil, fmt.Errorf("trace: requests CSV row %d: output: %w", row, err)
		}
		arrival, err := strconv.ParseInt(rec[col+2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: requests CSV row %d: arrival: %w", row, err)
		}
		req := llm.Request{
			ID: id, Customer: customer, Endpoint: endpoint,
			PromptTokens: prompt, OutputTokens: output,
			Arrival: time.Duration(arrival),
		}
		if err := validateRequest(req, prev); err != nil {
			return nil, fmt.Errorf("trace: requests CSV row %d: %w", row, err)
		}
		seen[id] = true
		prev = req.Arrival
		out = append(out, req)
	}
	return out, nil
}

// SaveRequestsCSV writes a request stream to a file via WriteRequestsCSV.
func SaveRequestsCSV(path string, reqs []llm.Request) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteRequestsCSV(f, reqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRequestsCSV reads a request stream from a file via ReadRequestsCSV.
func LoadRequestsCSV(path string) ([]llm.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	reqs, err := ReadRequestsCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reqs, nil
}
