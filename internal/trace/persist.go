package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/tapas-sim/tapas/internal/llm"
)

// WriteVMsCSV serializes a workload's VM arrival trace in a stable CSV
// layout, so generated traces can be archived and replayed byte-identically
// (the role the paper's production traces play).
//
// Columns: id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,
// weekend_dip,noise,seed.
func WriteVMsCSV(w io.Writer, vms []VMSpec) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "kind", "customer", "endpoint", "arrival_ns", "lifetime_ns",
		"base", "amp", "phase", "weekend_dip", "noise", "seed"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for _, vm := range vms {
		rec := []string{
			strconv.Itoa(vm.ID),
			strconv.Itoa(int(vm.Kind)),
			strconv.Itoa(vm.Customer),
			strconv.Itoa(vm.Endpoint),
			strconv.FormatInt(int64(vm.Arrival), 10),
			strconv.FormatInt(int64(vm.Lifetime), 10),
			strconv.FormatFloat(vm.Load.Base, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.DiurnalAmp, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.PhaseHours, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.WeekendDip, 'g', -1, 64),
			strconv.FormatFloat(vm.Load.NoiseAmp, 'g', -1, 64),
			strconv.FormatUint(vm.Load.Seed, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: writing VM %d: %w", vm.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadVMsCSV parses a trace written by WriteVMsCSV.
func ReadVMsCSV(r io.Reader) ([]VMSpec, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	const wantCols = 12
	if len(records[0]) != wantCols {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(records[0]), wantCols)
	}
	out := make([]VMSpec, 0, len(records)-1)
	for i, rec := range records[1:] {
		parse := func(idx int) (float64, error) { return strconv.ParseFloat(rec[idx], 64) }
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d id: %w", i+1, err)
		}
		kind, err := strconv.Atoi(rec[1])
		if err != nil || (kind != int(IaaS) && kind != int(SaaS)) {
			return nil, fmt.Errorf("trace: row %d has invalid kind %q", i+1, rec[1])
		}
		customer, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d customer: %w", i+1, err)
		}
		endpoint, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d endpoint: %w", i+1, err)
		}
		arrival, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d arrival: %w", i+1, err)
		}
		lifetime, err := strconv.ParseInt(rec[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d lifetime: %w", i+1, err)
		}
		var fields [5]float64
		for k := 0; k < 5; k++ {
			fields[k], err = parse(6 + k)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d load field %d: %w", i+1, k, err)
			}
		}
		seed, err := strconv.ParseUint(rec[11], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d seed: %w", i+1, err)
		}
		out = append(out, VMSpec{
			ID:       id,
			Kind:     VMKind(kind),
			Customer: customer,
			Endpoint: endpoint,
			Arrival:  time.Duration(arrival),
			Lifetime: time.Duration(lifetime),
			Load: LoadPattern{
				Base: fields[0], DiurnalAmp: fields[1], PhaseHours: fields[2],
				WeekendDip: fields[3], NoiseAmp: fields[4], Seed: seed,
			},
		})
	}
	return out, nil
}

// WriteRequestsCSV serializes a request stream (id,customer,prompt,output,
// arrival_s) for replay in fine-grained experiments.
func WriteRequestsCSV(w io.Writer, reqs []llm.Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "customer", "prompt", "output", "arrival_ns"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatInt(r.ID, 10),
			strconv.Itoa(r.Customer),
			strconv.Itoa(r.PromptTokens),
			strconv.Itoa(r.OutputTokens),
			strconv.FormatInt(int64(r.Arrival), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRequestsCSV parses a stream written by WriteRequestsCSV.
func ReadRequestsCSV(r io.Reader) ([]llm.Request, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading requests CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty requests CSV")
	}
	out := make([]llm.Request, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != 5 {
			return nil, fmt.Errorf("trace: request row %d has %d columns, want 5", i+1, len(rec))
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: request row %d id: %w", i+1, err)
		}
		customer, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: request row %d customer: %w", i+1, err)
		}
		prompt, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: request row %d prompt: %w", i+1, err)
		}
		output, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: request row %d output: %w", i+1, err)
		}
		arrival, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: request row %d arrival: %w", i+1, err)
		}
		out = append(out, llm.Request{
			ID: id, Customer: customer, PromptTokens: prompt, OutputTokens: output,
			Arrival: time.Duration(arrival),
		})
	}
	return out, nil
}
