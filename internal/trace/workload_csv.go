package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"time"

	"github.com/tapas-sim/tapas/internal/llm"
)

// The workload CSV format is the archival unit of record/replay: one
// versioned file that round-trips a full Workload — generation config, SaaS
// endpoints (including their per-endpoint seeds and demand shapes), and the
// VM arrival trace — losslessly, so a recorded workload can be pinned in a
// repository and replayed byte-identically under any policy, climate, or
// failure schedule.
//
// The file is ordinary CSV with a leading record-type column and per-type
// field counts:
//
//	tapas-workload,v2
//	config,<servers>,<saas_fraction>,<duration_ns>,<endpoints>,<seed>,<occupancy>,<demand_scale>
//	endpoint,<id>,<num_vms>,<avg_prompt_tokens>,<avg_output_tokens>,<rate_base>,<rate_amp>,<rate_phase>,<rate_weekend_dip>,<rate_noise>,<rate_seed>,<peak_rps_per_vm>,<customer_count>,<seed>,<rate_time_scale>
//	vm,<id>,<kind>,<customer>,<endpoint>,<arrival_ns>,<lifetime_ns>,<base>,<amp>,<phase>,<weekend_dip>,<noise>,<seed>,<time_scale>
//
// Records must appear in section order (version, config, endpoints, VMs) so
// the reader can validate every row as it arrives: a VM row referencing an
// endpoint checks against the endpoints already declared, without buffering
// the file. Floats are serialized with strconv 'g'/-1, which round-trips
// float64 exactly.
//
// v1 files — everything recorded before the time_warp transform existed —
// lack the trailing time_scale column on endpoint and vm rows; the reader
// still accepts them (time scale 0 = unscaled), the writer always emits v2.
const (
	workloadMagic     = "tapas-workload"
	workloadVersion   = "v2"
	workloadVersionV1 = "v1"

	configCols = 8

	endpointColsV1 = 14
	vmColsV1       = 13
	endpointCols   = 15
	vmCols         = 14
)

// WriteWorkloadCSV serializes a full workload in the versioned CSV layout
// documented above. ReadWorkloadCSV inverts it losslessly.
func WriteWorkloadCSV(w io.Writer, wl *Workload) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{workloadMagic, workloadVersion}); err != nil {
		return fmt.Errorf("trace: writing workload version: %w", err)
	}
	cfg := wl.Config
	if err := cw.Write([]string{
		"config",
		strconv.Itoa(cfg.Servers),
		formatFloat(cfg.SaaSFraction),
		strconv.FormatInt(int64(cfg.Duration), 10),
		strconv.Itoa(cfg.Endpoints),
		strconv.FormatUint(cfg.Seed, 10),
		formatFloat(cfg.Occupancy),
		formatFloat(cfg.DemandScale),
	}); err != nil {
		return fmt.Errorf("trace: writing workload config: %w", err)
	}
	for _, ep := range wl.Endpoints {
		if err := cw.Write([]string{
			"endpoint",
			strconv.Itoa(ep.ID),
			strconv.Itoa(ep.NumVMs),
			formatFloat(ep.Work.AvgPromptTokens),
			formatFloat(ep.Work.AvgOutputTokens),
			formatFloat(ep.Rate.Base),
			formatFloat(ep.Rate.DiurnalAmp),
			formatFloat(ep.Rate.PhaseHours),
			formatFloat(ep.Rate.WeekendDip),
			formatFloat(ep.Rate.NoiseAmp),
			strconv.FormatUint(ep.Rate.Seed, 10),
			formatFloat(ep.PeakRPSPerVM),
			strconv.Itoa(ep.CustomerCount),
			strconv.FormatUint(ep.Seed, 10),
			formatFloat(ep.Rate.TimeScale),
		}); err != nil {
			return fmt.Errorf("trace: writing endpoint %d: %w", ep.ID, err)
		}
	}
	for _, vm := range wl.VMs {
		if err := cw.Write([]string{
			"vm",
			strconv.Itoa(vm.ID),
			strconv.Itoa(int(vm.Kind)),
			strconv.Itoa(vm.Customer),
			strconv.Itoa(vm.Endpoint),
			strconv.FormatInt(int64(vm.Arrival), 10),
			strconv.FormatInt(int64(vm.Lifetime), 10),
			formatFloat(vm.Load.Base),
			formatFloat(vm.Load.DiurnalAmp),
			formatFloat(vm.Load.PhaseHours),
			formatFloat(vm.Load.WeekendDip),
			formatFloat(vm.Load.NoiseAmp),
			strconv.FormatUint(vm.Load.Seed, 10),
			formatFloat(vm.Load.TimeScale),
		}); err != nil {
			return fmt.Errorf("trace: writing VM %d: %w", vm.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing workload CSV: %w", err)
	}
	return nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ReadWorkloadCSV parses a workload written by WriteWorkloadCSV. The reader
// streams: each record is validated as it arrives (section order, field
// counts, duplicate endpoint/VM IDs, SaaS VMs referencing undeclared
// endpoints), so a malformed row is reported with its 1-based row number —
// the version line is row 1 — without reading the rest of the file.
func ReadWorkloadCSV(r io.Reader) (*Workload, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // per-type counts, checked below
	cr.ReuseRecord = true

	rec, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: workload CSV is empty")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: workload row 1: %w", err)
	}
	if len(rec) != 2 || rec[0] != workloadMagic {
		return nil, fmt.Errorf("trace: workload row 1: not a %s file (got %q)", workloadMagic, rec[0])
	}
	v1 := rec[1] == workloadVersionV1
	if !v1 && rec[1] != workloadVersion {
		return nil, fmt.Errorf("trace: workload row 1: unsupported version %q (supported: %s, %s)", rec[1], workloadVersionV1, workloadVersion)
	}
	wantEndpointCols, wantVMCols := endpointCols, vmCols
	if v1 {
		wantEndpointCols, wantVMCols = endpointColsV1, vmColsV1
	}

	wl := &Workload{}
	var (
		row         = 1
		haveConfig  bool
		sawVM       bool
		lastArrival time.Duration
	)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		row++
		if err != nil {
			return nil, fmt.Errorf("trace: workload row %d: %w", row, err)
		}
		p := rowParser{rec: rec, row: row}
		switch rec[0] {
		case "config":
			if haveConfig {
				return nil, fmt.Errorf("trace: workload row %d: duplicate config record", row)
			}
			if len(rec) != configCols {
				return nil, fmt.Errorf("trace: workload row %d: config record has %d fields, want %d", row, len(rec), configCols)
			}
			cfg := WorkloadConfig{
				Servers:      p.intField(1, "servers"),
				SaaSFraction: p.floatField(2, "saas_fraction"),
				Duration:     time.Duration(p.int64Field(3, "duration_ns")),
				Endpoints:    p.intField(4, "endpoints"),
				Seed:         p.uintField(5, "seed"),
				Occupancy:    p.floatField(6, "occupancy"),
				DemandScale:  p.floatField(7, "demand_scale"),
			}
			if p.err != nil {
				return nil, p.err
			}
			if cfg.Servers <= 0 {
				return nil, fmt.Errorf("trace: workload row %d: non-positive server count %d", row, cfg.Servers)
			}
			if cfg.SaaSFraction < 0 || cfg.SaaSFraction > 1 {
				return nil, fmt.Errorf("trace: workload row %d: saas_fraction %v out of [0,1]", row, cfg.SaaSFraction)
			}
			if cfg.Duration < 0 {
				return nil, fmt.Errorf("trace: workload row %d: negative duration %v", row, cfg.Duration)
			}
			wl.Config = cfg
			haveConfig = true

		case "endpoint":
			if !haveConfig {
				return nil, fmt.Errorf("trace: workload row %d: endpoint record before config", row)
			}
			if sawVM {
				return nil, fmt.Errorf("trace: workload row %d: endpoint record after VM records (endpoints must precede VMs)", row)
			}
			if len(rec) != wantEndpointCols {
				return nil, fmt.Errorf("trace: workload row %d: endpoint record has %d fields, want %d", row, len(rec), wantEndpointCols)
			}
			ep := EndpointSpec{
				ID:     p.intField(1, "id"),
				NumVMs: p.intField(2, "num_vms"),
				Work: llm.Workload{
					AvgPromptTokens: p.floatField(3, "avg_prompt_tokens"),
					AvgOutputTokens: p.floatField(4, "avg_output_tokens"),
				},
				Rate: LoadPattern{
					Base:       p.floatField(5, "rate_base"),
					DiurnalAmp: p.floatField(6, "rate_amp"),
					PhaseHours: p.floatField(7, "rate_phase"),
					WeekendDip: p.floatField(8, "rate_weekend_dip"),
					NoiseAmp:   p.floatField(9, "rate_noise"),
					Seed:       p.uintField(10, "rate_seed"),
				},
				PeakRPSPerVM:  p.floatField(11, "peak_rps_per_vm"),
				CustomerCount: p.intField(12, "customer_count"),
				Seed:          p.uintField(13, "seed"),
			}
			if !v1 {
				ep.Rate.TimeScale = p.floatField(14, "rate_time_scale")
			}
			if p.err != nil {
				return nil, p.err
			}
			// The engine indexes endpoint sets by ID (Workload.Endpoints[id]),
			// so IDs must be dense and in row order — this also catches
			// duplicates.
			if ep.ID != len(wl.Endpoints) {
				return nil, fmt.Errorf("trace: workload row %d: endpoint id %d, want %d (endpoint ids must be dense 0..n-1 in row order)", row, ep.ID, len(wl.Endpoints))
			}
			if ep.NumVMs < 0 {
				return nil, fmt.Errorf("trace: workload row %d: negative endpoint num_vms %d", row, ep.NumVMs)
			}
			wl.Endpoints = append(wl.Endpoints, ep)

		case "vm":
			if !haveConfig {
				return nil, fmt.Errorf("trace: workload row %d: vm record before config", row)
			}
			if len(rec) != wantVMCols {
				return nil, fmt.Errorf("trace: workload row %d: vm record has %d fields, want %d", row, len(rec), wantVMCols)
			}
			sawVM = true
			vm := VMSpec{
				ID:       p.intField(1, "id"),
				Kind:     VMKind(p.intField(2, "kind")),
				Customer: p.intField(3, "customer"),
				Endpoint: p.intField(4, "endpoint"),
				Arrival:  time.Duration(p.int64Field(5, "arrival_ns")),
				Lifetime: time.Duration(p.int64Field(6, "lifetime_ns")),
				Load: LoadPattern{
					Base:       p.floatField(7, "base"),
					DiurnalAmp: p.floatField(8, "amp"),
					PhaseHours: p.floatField(9, "phase"),
					WeekendDip: p.floatField(10, "weekend_dip"),
					NoiseAmp:   p.floatField(11, "noise"),
					Seed:       p.uintField(12, "seed"),
				},
			}
			if !v1 {
				vm.Load.TimeScale = p.floatField(13, "time_scale")
			}
			if p.err != nil {
				return nil, p.err
			}
			if vm.Kind != IaaS && vm.Kind != SaaS {
				return nil, fmt.Errorf("trace: workload row %d: invalid VM kind %d", row, int(vm.Kind))
			}
			// The engine indexes VM state positionally (State.VMs[id]) and
			// admits arrivals through a monotone cursor, so IDs must be
			// dense in row order (catching duplicates) and arrivals
			// non-decreasing — a shifted ID would remove the wrong VM at
			// expiry, an out-of-order arrival would be admitted late.
			if vm.ID != len(wl.VMs) {
				return nil, fmt.Errorf("trace: workload row %d: VM id %d, want %d (VM ids must be dense 0..n-1 in row order)", row, vm.ID, len(wl.VMs))
			}
			if vm.Arrival < 0 {
				return nil, fmt.Errorf("trace: workload row %d: negative VM arrival %v", row, vm.Arrival)
			}
			if vm.Arrival < lastArrival {
				return nil, fmt.Errorf("trace: workload row %d: VM arrival %v before the previous row's %v (VM rows must be sorted by arrival)", row, vm.Arrival, lastArrival)
			}
			if vm.Lifetime <= 0 {
				return nil, fmt.Errorf("trace: workload row %d: non-positive VM lifetime %v", row, vm.Lifetime)
			}
			if vm.Kind == SaaS && (vm.Endpoint < 0 || vm.Endpoint >= len(wl.Endpoints)) {
				return nil, fmt.Errorf("trace: workload row %d: SaaS VM %d references undeclared endpoint %d", row, vm.ID, vm.Endpoint)
			}
			if vm.Kind == IaaS && vm.Endpoint != -1 {
				return nil, fmt.Errorf("trace: workload row %d: IaaS VM %d has endpoint %d, want -1", row, vm.ID, vm.Endpoint)
			}
			lastArrival = vm.Arrival
			wl.VMs = append(wl.VMs, vm)

		default:
			return nil, fmt.Errorf("trace: workload row %d: unknown record type %q (known: config, endpoint, vm)", row, rec[0])
		}
	}
	if !haveConfig {
		return nil, fmt.Errorf("trace: workload CSV has no config record")
	}
	if len(wl.VMs) == 0 {
		return nil, fmt.Errorf("trace: workload CSV has no VM records")
	}
	return wl, nil
}

// rowParser accumulates the first field-parse error of a record, so record
// construction reads as a flat literal and errors still carry row, field
// name, and cause.
type rowParser struct {
	rec []string
	row int
	err error
}

func (p *rowParser) fail(idx int, name string, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("trace: workload row %d: field %d (%s): %w", p.row, idx+1, name, err)
	}
}

func (p *rowParser) intField(idx int, name string) int {
	v, err := strconv.Atoi(p.rec[idx])
	if err != nil {
		p.fail(idx, name, err)
	}
	return v
}

func (p *rowParser) int64Field(idx int, name string) int64 {
	v, err := strconv.ParseInt(p.rec[idx], 10, 64)
	if err != nil {
		p.fail(idx, name, err)
	}
	return v
}

func (p *rowParser) uintField(idx int, name string) uint64 {
	v, err := strconv.ParseUint(p.rec[idx], 10, 64)
	if err != nil {
		p.fail(idx, name, err)
	}
	return v
}

func (p *rowParser) floatField(idx int, name string) float64 {
	v, err := strconv.ParseFloat(p.rec[idx], 64)
	if err != nil {
		p.fail(idx, name, err)
	}
	// NaN/Inf would parse fine here and then poison every downstream
	// power/temperature metric; fail at the row instead.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		p.fail(idx, name, fmt.Errorf("non-finite value %q", p.rec[idx]))
	}
	return v
}

// SaveWorkloadCSV writes a workload trace to a file.
func SaveWorkloadCSV(path string, wl *Workload) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteWorkloadCSV(f, wl); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// LoadWorkloadCSV reads a workload trace from a file.
func LoadWorkloadCSV(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	wl, err := ReadWorkloadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return wl, nil
}
