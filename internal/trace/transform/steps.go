package transform

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"github.com/tapas-sim/tapas/internal/trace"
)

// Factor bounds shared by the scaling steps: wide enough for any experiment
// the paper runs (it sweeps demand up to a few multiples of recorded load),
// tight enough that a fuzzer or typo cannot request a million-fold
// replication.
const (
	minWarpFactor  = 0.01
	maxWarpFactor  = 100
	maxScaleFactor = 64
	maxJitterSigma = Dur(30 * 24 * time.Hour)
	maxSpliceShift = Dur(10 * 365 * 24 * time.Hour)
)

// scaleDur scales a duration by a float factor with round-to-nearest.
func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(math.Round(float64(d) * f))
}

// effTimeScale returns the effective time scale of a pattern (0 means 1).
func effTimeScale(ts float64) float64 {
	if ts <= 0 {
		return 1
	}
	return ts
}

// shallowCopy clones the workload envelope with fresh top-level slices, so a
// step can edit entries without touching its input.
func shallowCopy(w *trace.Workload) *trace.Workload {
	out := &trace.Workload{Config: w.Config}
	out.VMs = append([]trace.VMSpec(nil), w.VMs...)
	out.Endpoints = append([]trace.EndpointSpec(nil), w.Endpoints...)
	return out
}

// renumberVMs assigns dense IDs in slice order.
func renumberVMs(vms []trace.VMSpec) {
	for i := range vms {
		vms[i].ID = i
	}
}

// TimeWarp compresses (factor < 1) or stretches (factor > 1) the trace
// window: VM arrivals and lifetimes scale by the factor, and every load
// pattern's timeline (endpoint demand shapes and IaaS load shapes) is
// re-based so the same demand history plays out over the new window. A
// 24h trace warped by 0.5 delivers its full diurnal cycle in 12h — the
// paper's time-compressed stress replays.
type TimeWarp struct {
	Factor float64 `json:"factor"`
}

// Op implements Step.
func (t *TimeWarp) Op() string { return "time_warp" }

// Validate implements Step.
func (t *TimeWarp) Validate() error {
	if math.IsNaN(t.Factor) || t.Factor < minWarpFactor || t.Factor > maxWarpFactor {
		return fmt.Errorf("factor %v out of [%v, %v]", t.Factor, minWarpFactor, maxWarpFactor)
	}
	return nil
}

// Clone implements Step.
func (t *TimeWarp) Clone() Step { c := *t; return &c }

// Apply implements Step.
func (t *TimeWarp) Apply(w *trace.Workload) (*trace.Workload, error) {
	if t.Factor == 1 {
		return w, nil // exact identity, even for pathological durations
	}
	out := shallowCopy(w)
	out.Config.Duration = scaleDur(w.Config.Duration, t.Factor)
	for i := range out.VMs {
		vm := &out.VMs[i]
		vm.Arrival = scaleDur(vm.Arrival, t.Factor)
		vm.Lifetime = scaleDur(vm.Lifetime, t.Factor)
		if vm.Lifetime < 1 {
			vm.Lifetime = 1 // keep sub-nanosecond lifetimes valid
		}
		vm.Load.TimeScale = effTimeScale(vm.Load.TimeScale) * t.Factor
	}
	for i := range out.Endpoints {
		ep := &out.Endpoints[i]
		ep.Rate.TimeScale = effTimeScale(ep.Rate.TimeScale) * t.Factor
	}
	// Scaling by a positive factor is monotone, so arrivals stay sorted and
	// IDs stay dense — no renumbering needed.
	return out, nil
}

// DemandScale makes the same trace arrive hotter or colder. SaaS demand
// scales exactly: every endpoint's request rate is multiplied (the fluid
// token demand follows linearly). IaaS demand scales through the VM
// population — each IaaS VM is kept, thinned, or replicated deterministically
// so the expected population is the original times the factor (replicas keep
// their customer's load shape with a perturbed noise seed, preserving the
// per-customer predictability TAPAS exploits). Either a uniform Factor or
// per-kind IaaS/SaaS multipliers (unset means 1); serving capacity (endpoint
// VM counts) is left alone, which is exactly what makes the trace "hotter".
type DemandScale struct {
	Factor float64 `json:"factor,omitempty"`
	IaaS   float64 `json:"iaas,omitempty"`
	SaaS   float64 `json:"saas,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
}

// Op implements Step.
func (d *DemandScale) Op() string { return "demand_scale" }

// factors resolves the per-kind multipliers.
func (d *DemandScale) factors() (iaas, saas float64) {
	if d.Factor != 0 {
		return d.Factor, d.Factor
	}
	iaas, saas = d.IaaS, d.SaaS
	if iaas == 0 {
		iaas = 1
	}
	if saas == 0 {
		saas = 1
	}
	return iaas, saas
}

// Validate implements Step.
func (d *DemandScale) Validate() error {
	if d.Factor != 0 && (d.IaaS != 0 || d.SaaS != 0) {
		return fmt.Errorf("factor and per-kind iaas/saas multipliers are mutually exclusive")
	}
	if d.Factor == 0 && d.IaaS == 0 && d.SaaS == 0 {
		return fmt.Errorf("demand_scale needs a factor or at least one of iaas/saas")
	}
	for name, f := range map[string]float64{"factor": d.Factor, "iaas": d.IaaS, "saas": d.SaaS} {
		if f == 0 {
			continue
		}
		if math.IsNaN(f) || f < 0 || f > maxScaleFactor {
			return fmt.Errorf("%s %v out of (0, %v]", name, f, maxScaleFactor)
		}
	}
	return nil
}

// Clone implements Step.
func (d *DemandScale) Clone() Step { c := *d; return &c }

// Apply implements Step.
func (d *DemandScale) Apply(w *trace.Workload) (*trace.Workload, error) {
	iaas, saas := d.factors()
	out := &trace.Workload{Config: w.Config}
	out.Endpoints = append([]trace.EndpointSpec(nil), w.Endpoints...)
	for i := range out.Endpoints {
		out.Endpoints[i].PeakRPSPerVM *= saas
	}
	out.Config.DemandScale *= saas

	if want := float64(len(w.VMs)) * math.Max(iaas, 1); want > maxVMs {
		return nil, fmt.Errorf("iaas factor %v over %d VMs would exceed the %d-VM cap", iaas, len(w.VMs), maxVMs)
	}
	out.VMs = make([]trace.VMSpec, 0, len(w.VMs))
	for _, vm := range w.VMs {
		if vm.Kind != trace.IaaS {
			out.VMs = append(out.VMs, vm)
			continue
		}
		copies := int(math.Floor(iaas))
		if frac := iaas - math.Floor(iaas); frac > 0 && trace.HashUnit(d.Seed^0x5ca1e, uint64(vm.ID)) < frac {
			copies++
		}
		for j := 0; j < copies; j++ {
			rep := vm
			if j > 0 {
				// Replicas share the customer's deterministic load shape but
				// not its per-VM noise stream.
				rep.Load.Seed = vm.Load.Seed ^ (uint64(j) * 0x9e3779b97f4a7c15)
			}
			out.VMs = append(out.VMs, rep)
		}
	}
	if len(out.VMs) == 0 {
		return nil, fmt.Errorf("iaas factor %v thinned away every VM", iaas)
	}
	// Replicas are inserted adjacent to their original (same arrival), so
	// order stays sorted; only IDs need re-densifying.
	renumberVMs(out.VMs)
	return out, nil
}

// EndpointFilter keeps or drops parts of the workload: by VM kind ("iaas"
// keeps only opaque customer VMs, "saas" only inference endpoints) or by
// endpoint ID set. Remaining endpoints are re-indexed densely and their VMs'
// references remapped. The empty filter is the identity.
type EndpointFilter struct {
	Kind string `json:"kind,omitempty"` // "iaas" | "saas"
	Keep []int  `json:"keep,omitempty"`
	Drop []int  `json:"drop,omitempty"`
}

// Op implements Step.
func (e *EndpointFilter) Op() string { return "endpoint_filter" }

// Validate implements Step.
func (e *EndpointFilter) Validate() error {
	set := 0
	if e.Kind != "" {
		set++
		if e.Kind != "iaas" && e.Kind != "saas" {
			return fmt.Errorf("unknown kind %q (known: iaas, saas)", e.Kind)
		}
	}
	if len(e.Keep) > 0 {
		set++
	}
	if len(e.Drop) > 0 {
		set++
	}
	if set > 1 {
		return fmt.Errorf("kind, keep, and drop are mutually exclusive")
	}
	for name, ids := range map[string][]int{"keep": e.Keep, "drop": e.Drop} {
		seen := map[int]bool{}
		for _, id := range ids {
			if id < 0 {
				return fmt.Errorf("%s id %d is negative", name, id)
			}
			if seen[id] {
				return fmt.Errorf("%s id %d listed twice", name, id)
			}
			seen[id] = true
		}
	}
	return nil
}

// Clone implements Step.
func (e *EndpointFilter) Clone() Step {
	c := *e
	c.Keep = append([]int(nil), e.Keep...)
	c.Drop = append([]int(nil), e.Drop...)
	return &c
}

// Apply implements Step.
func (e *EndpointFilter) Apply(w *trace.Workload) (*trace.Workload, error) {
	if e.Kind == "" && len(e.Keep) == 0 && len(e.Drop) == 0 {
		return w, nil // identity
	}
	keepIaaS := true
	keepEp := make([]bool, len(w.Endpoints))
	switch {
	case e.Kind == "iaas":
		keepIaaS = true // and no endpoints
	case e.Kind == "saas":
		keepIaaS = false
		for i := range keepEp {
			keepEp[i] = true
		}
	case len(e.Keep) > 0:
		for _, id := range e.Keep {
			if id >= len(w.Endpoints) {
				return nil, fmt.Errorf("keep id %d out of range (trace has %d endpoints)", id, len(w.Endpoints))
			}
			keepEp[id] = true
		}
	default:
		for i := range keepEp {
			keepEp[i] = true
		}
		for _, id := range e.Drop {
			if id >= len(w.Endpoints) {
				return nil, fmt.Errorf("drop id %d out of range (trace has %d endpoints)", id, len(w.Endpoints))
			}
			keepEp[id] = false
		}
	}

	out := &trace.Workload{Config: w.Config}
	remap := make([]int, len(w.Endpoints))
	for i, ep := range w.Endpoints {
		if !keepEp[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(out.Endpoints)
		ep.ID = len(out.Endpoints)
		out.Endpoints = append(out.Endpoints, ep)
	}
	for _, vm := range w.VMs {
		if vm.Kind == trace.IaaS {
			if !keepIaaS {
				continue
			}
		} else {
			if remap[vm.Endpoint] < 0 {
				continue
			}
			vm.Endpoint = remap[vm.Endpoint]
		}
		out.VMs = append(out.VMs, vm)
	}
	if len(out.VMs) == 0 {
		return nil, fmt.Errorf("filter removed every VM")
	}
	renumberVMs(out.VMs)
	out.Config.Endpoints = len(out.Endpoints)
	return out, nil
}

// Jitter perturbs VM arrival times with a seeded uniform offset in
// [-sigma, +sigma], de-synchronizing arrival waves without changing the
// aggregate demand. Initial residents (arrival 0 — the warm-start
// population) are left in place; perturbed arrivals clamp to the recorded
// window [0, duration], so a VM near either edge is moved to it rather than
// silently dropped out of the replay. The same sigma and seed always
// produce the same trace.
type Jitter struct {
	Sigma Dur    `json:"sigma"`
	Seed  uint64 `json:"seed,omitempty"`
}

// Op implements Step.
func (j *Jitter) Op() string { return "jitter" }

// Validate implements Step.
func (j *Jitter) Validate() error {
	if j.Sigma <= 0 || j.Sigma > maxJitterSigma {
		return fmt.Errorf("sigma %v out of (0, %v]", time.Duration(j.Sigma), time.Duration(maxJitterSigma))
	}
	return nil
}

// Clone implements Step.
func (j *Jitter) Clone() Step { c := *j; return &c }

// Apply implements Step.
func (j *Jitter) Apply(w *trace.Workload) (*trace.Workload, error) {
	out := shallowCopy(w)
	for i := range out.VMs {
		vm := &out.VMs[i]
		if vm.Arrival <= 0 {
			continue
		}
		u := trace.HashUnit(j.Seed^0x7177e4, uint64(vm.ID))
		vm.Arrival += time.Duration(math.Round((2*u - 1) * float64(j.Sigma)))
		if vm.Arrival < 0 {
			vm.Arrival = 0
		}
		if limit := w.Config.Duration; limit > 0 && vm.Arrival > limit {
			vm.Arrival = limit
		}
	}
	sort.SliceStable(out.VMs, func(a, b int) bool { return out.VMs[a].Arrival < out.VMs[b].Arrival })
	renumberVMs(out.VMs)
	return out, nil
}

// Splice overlays a second recorded trace onto the first: its endpoints are
// appended (re-indexed densely), its VMs merged into the arrival order with
// an optional time offset, and its IaaS customers renumbered past the base
// trace's so load-shape identities never collide. Both traces must target
// the same fleet size. The window extends to cover the shifted overlay.
type Splice struct {
	Trace  string `json:"trace"`
	Offset Dur    `json:"offset,omitempty"`

	// other is the loaded overlay workload (Chain.Load, or SetWorkload for
	// programmatic chains). It is shared read-only, never mutated.
	other *trace.Workload
}

// Op implements Step.
func (s *Splice) Op() string { return "splice" }

// Validate implements Step.
func (s *Splice) Validate() error {
	if s.Trace == "" {
		return fmt.Errorf("splice needs a trace path")
	}
	if s.Offset < 0 || s.Offset > maxSpliceShift {
		return fmt.Errorf("offset %v out of [0, %v]", time.Duration(s.Offset), time.Duration(maxSpliceShift))
	}
	return nil
}

// Clone implements Step. The loaded overlay is shared (read-only), matching
// compiled-scenario sharing semantics.
func (s *Splice) Clone() Step { c := *s; return &c }

// SetWorkload attaches an already-parsed overlay workload, for chains built
// programmatically rather than loaded from disk. The workload is used
// read-only.
func (s *Splice) SetWorkload(w *trace.Workload) { s.other = w }

// Workload returns the loaded overlay workload (nil until Chain.Load or
// SetWorkload attaches it). Content-addressed caching hashes it directly:
// the chain's canonical JSON names only the overlay's path, not its bytes.
func (s *Splice) Workload() *trace.Workload { return s.other }

// load resolves and reads the overlay trace (no-op when already attached).
func (s *Splice) load(dir string) error {
	if s.other != nil {
		return nil
	}
	path := s.Trace
	if !filepath.IsAbs(path) && dir != "" {
		path = filepath.Join(dir, path)
	}
	w, err := trace.LoadWorkloadCSV(path)
	if err != nil {
		return err
	}
	s.other = w
	return nil
}

// Apply implements Step.
func (s *Splice) Apply(w *trace.Workload) (*trace.Workload, error) {
	if s.other == nil {
		return nil, fmt.Errorf("splice trace %q not loaded (Chain.Load resolves it)", s.Trace)
	}
	ov := s.other
	if ov.Config.Servers != w.Config.Servers {
		return nil, fmt.Errorf("splice trace %q was recorded for %d servers, base trace for %d; both must target the same fleet",
			s.Trace, ov.Config.Servers, w.Config.Servers)
	}
	if len(w.VMs)+len(ov.VMs) > maxVMs {
		return nil, fmt.Errorf("splice would produce %d VMs, more than the %d cap", len(w.VMs)+len(ov.VMs), maxVMs)
	}
	offset := time.Duration(s.Offset)

	out := &trace.Workload{Config: w.Config}
	out.Endpoints = append([]trace.EndpointSpec(nil), w.Endpoints...)
	epShift := len(w.Endpoints)
	for _, ep := range ov.Endpoints {
		ep.ID += epShift
		out.Endpoints = append(out.Endpoints, ep)
	}

	// Overlay IaaS customers get fresh identities: customer IDs key the
	// shared load shapes and seeded history, and two recordings' customer 7s
	// are unrelated tenants.
	custShift := 0
	for _, vm := range w.VMs {
		if vm.Kind == trace.IaaS && vm.Customer >= custShift {
			custShift = vm.Customer + 1
		}
	}

	shifted := make([]trace.VMSpec, len(ov.VMs))
	for i, vm := range ov.VMs {
		vm.Arrival += offset
		if vm.Kind == trace.IaaS {
			vm.Customer += custShift
		} else {
			vm.Endpoint += epShift
		}
		shifted[i] = vm
	}

	// Merge two arrival-sorted lists; base VMs win ties, keeping the merge
	// stable and deterministic.
	out.VMs = make([]trace.VMSpec, 0, len(w.VMs)+len(shifted))
	i, k := 0, 0
	for i < len(w.VMs) && k < len(shifted) {
		if w.VMs[i].Arrival <= shifted[k].Arrival {
			out.VMs = append(out.VMs, w.VMs[i])
			i++
		} else {
			out.VMs = append(out.VMs, shifted[k])
			k++
		}
	}
	out.VMs = append(out.VMs, w.VMs[i:]...)
	out.VMs = append(out.VMs, shifted[k:]...)
	renumberVMs(out.VMs)

	if end := offset + ov.Config.Duration; end > out.Config.Duration {
		out.Config.Duration = end
	}
	out.Config.Endpoints = len(out.Endpoints)
	return out, nil
}
