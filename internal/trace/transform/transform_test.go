package transform

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/trace"
)

// genWorkload builds a small deterministic mixed workload.
func genWorkload(t *testing.T, saas float64, seed uint64) *trace.Workload {
	t.Helper()
	w, err := trace.Generate(trace.WorkloadConfig{
		Servers: 60, SaaSFraction: saas, Duration: 6 * time.Hour, Endpoints: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func countKind(w *trace.Workload, k trace.VMKind) int {
	n := 0
	for _, vm := range w.VMs {
		if vm.Kind == k {
			n++
		}
	}
	return n
}

func TestParseChainRejects(t *testing.T) {
	cases := map[string]struct {
		in      string
		wantSub string
	}{
		"not an array":      {`{"op":"jitter"}`, "parsing chain"},
		"trailing content":  {`[] []`, "trailing content"},
		"no op":             {`[{}]`, `no "op" field`},
		"unknown op":        {`[{"op":"resample"}]`, `unknown op "resample"`},
		"unknown field":     {`[{"op":"time_warp","factor":2,"bogus":1}]`, "bogus"},
		"warp factor low":   {`[{"op":"time_warp","factor":0.001}]`, "out of"},
		"warp factor high":  {`[{"op":"time_warp","factor":1000}]`, "out of"},
		"scale empty":       {`[{"op":"demand_scale"}]`, "needs a factor"},
		"scale both":        {`[{"op":"demand_scale","factor":2,"iaas":1.5}]`, "mutually exclusive"},
		"scale huge":        {`[{"op":"demand_scale","factor":1e9}]`, "out of"},
		"scale negative":    {`[{"op":"demand_scale","factor":-2}]`, "out of"},
		"filter kind":       {`[{"op":"endpoint_filter","kind":"gpu"}]`, `unknown kind "gpu"`},
		"filter both":       {`[{"op":"endpoint_filter","keep":[0],"drop":[1]}]`, "mutually exclusive"},
		"filter dup id":     {`[{"op":"endpoint_filter","keep":[1,1]}]`, "listed twice"},
		"filter neg id":     {`[{"op":"endpoint_filter","drop":[-1]}]`, "negative"},
		"jitter no sigma":   {`[{"op":"jitter"}]`, "sigma"},
		"jitter bad dur":    {`[{"op":"jitter","sigma":"fast"}]`, "invalid duration"},
		"jitter num sigma":  {`[{"op":"jitter","sigma":90}]`, "duration must be a string"},
		"jitter huge sigma": {`[{"op":"jitter","sigma":"8760h"}]`, "out of"},
		"splice no trace":   {`[{"op":"splice"}]`, "needs a trace path"},
		"splice neg offset": {`[{"op":"splice","trace":"t.csv","offset":"-1h"}]`, "out of"},
		"over step cap":     {`[` + strings.Repeat(`{"op":"time_warp","factor":1},`, 32) + `{"op":"time_warp","factor":1}]`, "32-step limit"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "transform:") {
				t.Errorf("error %q is not wrapped with the transform: prefix", err)
			}
		})
	}
}

// TestChainCanonicalJSON pins the canonical encoding: parse → marshal is
// stable, and marshal → parse reproduces the chain.
func TestChainCanonicalJSON(t *testing.T) {
	in := `[
	  {"op": "time_warp", "factor": 0.5},
	  {"op": "demand_scale", "iaas": 1.5, "saas": 2, "seed": 9},
	  {"op": "endpoint_filter", "keep": [0, 2]},
	  {"op": "jitter", "sigma": "90s", "seed": 7},
	  {"op": "splice", "trace": "other.csv", "offset": "24h"}
	]`
	c, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	canon := c.String()
	want := `[{"op":"time_warp","factor":0.5},` +
		`{"op":"demand_scale","iaas":1.5,"saas":2,"seed":9},` +
		`{"op":"endpoint_filter","keep":[0,2]},` +
		`{"op":"jitter","sigma":"1m30s","seed":7},` +
		`{"op":"splice","trace":"other.csv","offset":"24h0m0s"}]`
	if canon != want {
		t.Errorf("canonical form:\ngot  %s\nwant %s", canon, want)
	}
	again, err := Parse([]byte(canon))
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if again.String() != canon {
		t.Error("canonical encoding is not a fixed point")
	}
	if !c.Equal(again) {
		t.Error("re-parsed chain not Equal to original")
	}
	if c.Equal(again[:3]) {
		t.Error("prefix chain must not be Equal")
	}
}

func TestChainCloneIsDeep(t *testing.T) {
	c, err := Parse([]byte(`[{"op":"demand_scale","factor":2},{"op":"endpoint_filter","keep":[1]}]`))
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	cl[0].(*DemandScale).Factor = 3
	cl[1].(*EndpointFilter).Keep[0] = 0
	if c[0].(*DemandScale).Factor != 2 || c[1].(*EndpointFilter).Keep[0] != 1 {
		t.Error("Clone shares state with the original chain")
	}
	if c.Equal(cl) {
		t.Error("mutated clone must not be Equal")
	}
}

func TestTimeWarp(t *testing.T) {
	w := genWorkload(t, 0.5, 3)
	warped, err := Chain{&TimeWarp{Factor: 0.5}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := warped.Config.Duration, w.Config.Duration/2; got != want {
		t.Errorf("duration %v, want %v", got, want)
	}
	for i := range w.VMs {
		// Round-to-nearest of odd nanosecond counts may land ±0.5ns off the
		// exact half.
		if d := warped.VMs[i].Arrival*2 - w.VMs[i].Arrival; d < -1 || d > 1 {
			t.Fatalf("VM %d arrival %v not halved from %v", i, warped.VMs[i].Arrival, w.VMs[i].Arrival)
		}
	}
	// The load timeline compresses with the window: the warped pattern at t
	// equals the original at 2t.
	vm := warped.VMs[0]
	orig := w.VMs[0]
	for _, at := range []time.Duration{0, time.Hour, 2*time.Hour + 11*time.Minute} {
		if got, want := vm.Load.At(at), orig.Load.At(2*at); got != want {
			t.Errorf("warped load at %v = %v, original at %v = %v", at, got, 2*at, want)
		}
	}
	ep, epo := warped.Endpoints[0], w.Endpoints[0]
	if got, want := ep.Rate.At(time.Hour), epo.Rate.At(2*time.Hour); got != want {
		t.Errorf("warped endpoint rate %v, want %v", got, want)
	}

	// Double warp composes multiplicatively.
	twice, err := Chain{&TimeWarp{Factor: 0.5}, &TimeWarp{Factor: 4}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := twice.VMs[0].Load.TimeScale, 2.0; got != want {
		t.Errorf("composed TimeScale %v, want %v", got, want)
	}
}

func TestDemandScale(t *testing.T) {
	w := genWorkload(t, 0.5, 5)
	iaasBefore := countKind(w, trace.IaaS)

	scaled, err := Chain{&DemandScale{Factor: 2, Seed: 11}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	// SaaS demand scales exactly; serving capacity (NumVMs) does not.
	for i := range w.Endpoints {
		if got, want := scaled.Endpoints[i].PeakRPSPerVM, w.Endpoints[i].PeakRPSPerVM*2; got != want {
			t.Errorf("endpoint %d PeakRPSPerVM %v, want %v", i, got, want)
		}
		if scaled.Endpoints[i].NumVMs != w.Endpoints[i].NumVMs {
			t.Errorf("endpoint %d NumVMs changed", i)
		}
	}
	// Integer factor: IaaS population exactly doubles, SaaS unchanged.
	if got, want := countKind(scaled, trace.IaaS), 2*iaasBefore; got != want {
		t.Errorf("IaaS VMs %d, want exactly %d", got, want)
	}
	if got, want := countKind(scaled, trace.SaaS), countKind(w, trace.SaaS); got != want {
		t.Errorf("SaaS VMs %d, want unchanged %d", got, want)
	}

	// Fractional thinning lands near the expectation and is deterministic.
	thin, err := Chain{&DemandScale{IaaS: 0.5, Seed: 11}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	got := countKind(thin, trace.IaaS)
	if lo, hi := iaasBefore*3/10, iaasBefore*7/10; got < lo || got > hi {
		t.Errorf("thinned IaaS VMs %d outside [%d, %d] (before: %d)", got, lo, hi, iaasBefore)
	}
	thin2, err := Chain{&DemandScale{IaaS: 0.5, Seed: 11}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(thin, thin2) {
		t.Error("same chain + seed must reproduce the same workload")
	}
	other, err := Chain{&DemandScale{IaaS: 0.5, Seed: 12}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(thin, other) {
		t.Error("different seeds should thin different VMs")
	}
}

func TestEndpointFilter(t *testing.T) {
	w := genWorkload(t, 0.5, 7)

	onlyIaaS, err := Chain{&EndpointFilter{Kind: "iaas"}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyIaaS.Endpoints) != 0 || countKind(onlyIaaS, trace.SaaS) != 0 {
		t.Error("kind=iaas must drop every endpoint and SaaS VM")
	}
	if countKind(onlyIaaS, trace.IaaS) != countKind(w, trace.IaaS) {
		t.Error("kind=iaas must keep every IaaS VM")
	}

	onlySaaS, err := Chain{&EndpointFilter{Kind: "saas"}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if countKind(onlySaaS, trace.IaaS) != 0 || len(onlySaaS.Endpoints) != len(w.Endpoints) {
		t.Error("kind=saas must drop IaaS VMs and keep endpoints")
	}

	drop, err := Chain{&EndpointFilter{Drop: []int{0}}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(drop.Endpoints) != len(w.Endpoints)-1 {
		t.Fatalf("drop [0]: %d endpoints, want %d", len(drop.Endpoints), len(w.Endpoints)-1)
	}
	// Remaining endpoints re-index densely and VM references follow: the old
	// endpoint 1 is now 0, and its demand shape came along.
	if drop.Endpoints[0].Seed != w.Endpoints[1].Seed {
		t.Error("dropped filter did not shift endpoint 1 to slot 0")
	}
	for _, vm := range drop.VMs {
		if vm.Kind == trace.SaaS && (vm.Endpoint < 0 || vm.Endpoint >= len(drop.Endpoints)) {
			t.Fatalf("SaaS VM %d references endpoint %d after filter", vm.ID, vm.Endpoint)
		}
	}
	if err := drop.Validate(); err != nil {
		t.Errorf("filtered workload invalid: %v", err)
	}

	if _, err := (Chain{&EndpointFilter{Keep: []int{99}}}).Apply(w); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("keep out-of-range: got %v", err)
	}
	if _, err := (Chain{&EndpointFilter{Kind: "saas"}}).Apply(onlyIaaS); err == nil || !strings.Contains(err.Error(), "removed every VM") {
		t.Errorf("emptying filter: got %v", err)
	}
}

func TestJitter(t *testing.T) {
	w := genWorkload(t, 0.5, 9)
	j, err := Chain{&Jitter{Sigma: Dur(time.Hour), Seed: 4}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.VMs) != len(w.VMs) {
		t.Fatal("jitter changed the VM population")
	}
	residents := 0
	moved := 0
	for i, vm := range w.VMs {
		if vm.Arrival == 0 {
			residents++
			if j.VMs[i].Arrival != 0 {
				t.Fatal("jitter moved a t=0 resident")
			}
		}
	}
	// Arrivals after the residents may have been reordered; compare the
	// multiset sizes and perturbation bound via a sweep.
	for _, vm := range j.VMs {
		if vm.Arrival != 0 {
			moved++
		}
	}
	if got := len(w.VMs) - residents; moved > got {
		t.Errorf("jitter produced %d positive arrivals from %d", moved, got)
	}
	if err := j.Validate(); err != nil {
		t.Errorf("jittered workload invalid: %v", err)
	}
	j2, err := Chain{&Jitter{Sigma: Dur(time.Hour), Seed: 4}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, j2) {
		t.Error("same sigma + seed must reproduce the same workload")
	}
	// Arrivals clamp to the recorded window on both sides: a sigma larger
	// than the whole window cannot jitter a VM out of the replay.
	wide, err := Chain{&Jitter{Sigma: Dur(10 * w.Config.Duration), Seed: 8}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range wide.VMs {
		if vm.Arrival < 0 || vm.Arrival > w.Config.Duration {
			t.Fatalf("VM %d jittered to %v, outside [0, %v]", vm.ID, vm.Arrival, w.Config.Duration)
		}
	}
}

func TestSplice(t *testing.T) {
	base := genWorkload(t, 0.5, 13)
	overlay := genWorkload(t, 0.5, 14)

	sp := &Splice{Trace: "overlay.csv", Offset: Dur(2 * time.Hour)}
	sp.SetWorkload(overlay)
	out, err := Chain{sp}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(out.VMs), len(base.VMs)+len(overlay.VMs); got != want {
		t.Fatalf("spliced VMs %d, want %d", got, want)
	}
	if got, want := len(out.Endpoints), len(base.Endpoints)+len(overlay.Endpoints); got != want {
		t.Fatalf("spliced endpoints %d, want %d", got, want)
	}
	if got, want := out.Config.Duration, base.Config.Duration+2*time.Hour; got != want {
		t.Errorf("spliced window %v, want %v (overlay shifted by 2h)", got, want)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("spliced workload invalid: %v", err)
	}
	// Overlay customers were renumbered past the base trace's.
	maxBase := 0
	for _, vm := range base.VMs {
		if vm.Kind == trace.IaaS && vm.Customer > maxBase {
			maxBase = vm.Customer
		}
	}
	overlayCust := 0
	for _, vm := range out.VMs {
		if vm.Kind == trace.IaaS && vm.Customer > maxBase {
			overlayCust++
		}
	}
	if overlayCust == 0 {
		t.Error("no overlay IaaS customer was renumbered past the base range")
	}

	// Fleet-size mismatch is rejected.
	small, err := trace.Generate(trace.WorkloadConfig{Servers: 30, Duration: time.Hour, Endpoints: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spBad := &Splice{Trace: "overlay.csv"}
	spBad.SetWorkload(small)
	if _, err := (Chain{spBad}).Apply(base); err == nil || !strings.Contains(err.Error(), "same fleet") {
		t.Errorf("fleet mismatch: got %v", err)
	}

	// Unloaded splice fails loudly.
	if _, err := (Chain{&Splice{Trace: "missing.csv"}}).Apply(base); err == nil || !strings.Contains(err.Error(), "not loaded") {
		t.Errorf("unloaded splice: got %v", err)
	}
}

func TestChainLoadResolvesSplice(t *testing.T) {
	overlay := genWorkload(t, 0.5, 21)
	dir := t.TempDir()
	if err := trace.SaveWorkloadCSV(dir+"/overlay.csv", overlay); err != nil {
		t.Fatal(err)
	}
	c, err := Parse([]byte(`[{"op":"splice","trace":"overlay.csv"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Load(dir); err != nil {
		t.Fatal(err)
	}
	base := genWorkload(t, 0.5, 22)
	out, err := c.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.VMs) != len(base.VMs)+len(overlay.VMs) {
		t.Error("loaded splice did not merge the overlay")
	}
	missing, err := Parse([]byte(`[{"op":"splice","trace":"nope.csv"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if err := missing.Load(dir); err == nil {
		t.Error("loading a missing splice trace must error")
	}
}

// TestApplyIsPure proves no step mutates its input.
func TestApplyIsPure(t *testing.T) {
	w := genWorkload(t, 0.5, 17)
	snapshot := &trace.Workload{
		Config:    w.Config,
		VMs:       append([]trace.VMSpec(nil), w.VMs...),
		Endpoints: append([]trace.EndpointSpec(nil), w.Endpoints...),
	}
	overlay := genWorkload(t, 0.5, 18)
	sp := &Splice{Trace: "o.csv", Offset: Dur(time.Hour)}
	sp.SetWorkload(overlay)
	chain := Chain{
		&TimeWarp{Factor: 0.5},
		&DemandScale{Factor: 1.5, Seed: 2},
		&EndpointFilter{Drop: []int{1}},
		&Jitter{Sigma: Dur(30 * time.Minute), Seed: 3},
		sp,
	}
	if _, err := chain.Apply(w); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, snapshot) {
		t.Error("chain mutated its input workload")
	}
}

// TestWorkloadCSVRoundTripAfterTransform: a transformed workload is itself a
// pinnable artifact — it survives the CSV round trip exactly (including the
// warped TimeScale columns the v2 format adds).
func TestWorkloadCSVRoundTripAfterTransform(t *testing.T) {
	w := genWorkload(t, 0.5, 19)
	out, err := Chain{&TimeWarp{Factor: 0.5}, &DemandScale{Factor: 2, Seed: 1}}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteWorkloadCSV(&buf, out); err != nil {
		t.Fatal(err)
	}
	again, err := trace.ReadWorkloadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, out) {
		t.Error("transformed workload changed across the CSV round trip")
	}
}
