package transform_test

// Metamorphic tests: instead of pinning transform outputs to goldens, these
// pin relations every transform must satisfy — identity parameters are exact
// no-ops all the way through the simulator, the same chain and seed always
// produce the same bytes, and scaling demand scales demand. Relations hold
// for every trace, so they keep holding as the generator and engine evolve.

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

// quickScenario is the 80-server 20-minute smoke setup.
func quickScenario(t *testing.T) (sim.Scenario, *trace.Workload) {
	t.Helper()
	sc := sim.SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	wl, err := sim.GenerateWorkload(sc)
	if err != nil {
		t.Fatal(err)
	}
	return sc, wl
}

// reportString folds every scalar metric of a run into one full-precision
// string, so "byte-identical report" covers the whole result surface.
func reportString(r *sim.Result) string {
	return fmt.Sprintf("policy=%s ticks=%d maxT=%v p99T=%v peakW=%v p99W=%v throttle=%v powercap=%v svc=%v slo=%v qual=%v iaas=%v rejects=%d",
		r.Policy, r.Ticks, r.MaxTemp(), r.PercentileMaxTemp(99), r.PeakPower(),
		r.PercentilePeakPower(99), r.ThrottleFrac(), r.PowerCapFrac(),
		r.ServiceRate(), r.SLOViolationRate(), r.AvgQuality(), r.IaaSPerfLoss(), r.PlacementRejects)
}

func runReplay(t *testing.T, sc sim.Scenario, wl *trace.Workload, chain transform.Chain) string {
	t.Helper()
	replay := sc
	replay.Trace = wl
	replay.TraceTransforms = chain
	res, err := sim.Run(replay, core.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	return reportString(res)
}

// TestIdentityLaws: transforms at their identity parameters — demand_scale
// 1.0, time_warp 1.0, the empty endpoint_filter — produce reports
// byte-identical to replaying the untouched trace through sim.Compile.
func TestIdentityLaws(t *testing.T) {
	sc, wl := quickScenario(t)
	want := runReplay(t, sc, wl, nil)

	chains := map[string]transform.Chain{
		"demand_scale(1.0)": {&transform.DemandScale{Factor: 1}},
		"time_warp(1.0)":    {&transform.TimeWarp{Factor: 1}},
		"empty filter":      {&transform.EndpointFilter{}},
		"stacked identities": {
			&transform.DemandScale{Factor: 1, Seed: 99},
			&transform.TimeWarp{Factor: 1},
			&transform.EndpointFilter{},
		},
	}
	for name, chain := range chains {
		t.Run(name, func(t *testing.T) {
			if got := runReplay(t, sc, wl, chain); got != want {
				t.Errorf("identity chain changed the report:\ngot:  %s\nwant: %s", got, want)
			}
		})
	}
}

// TestCompositionDeterminism: the same chain and seed produce byte-identical
// workloads however many times they are applied, and the simulated report is
// stable across repeated compiles.
func TestCompositionDeterminism(t *testing.T) {
	sc, wl := quickScenario(t)
	chain := transform.Chain{
		&transform.TimeWarp{Factor: 0.75},
		&transform.DemandScale{Factor: 1.5, Seed: 3},
		&transform.Jitter{Sigma: transform.Dur(2 * time.Minute), Seed: 5},
	}
	first, err := chain.Apply(wl)
	if err != nil {
		t.Fatal(err)
	}
	second, err := chain.Apply(wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same chain applied twice produced different workloads")
	}

	// Warping to 0.75 shrinks the recorded window below the scenario
	// duration; run at the warped window.
	short := sc
	short.Duration = time.Duration(0.75 * float64(sc.Duration))
	r1 := runReplay(t, short, wl, chain)
	r2 := runReplay(t, short, wl, chain)
	if r1 != r2 {
		t.Errorf("same chain produced different reports:\n%s\n%s", r1, r2)
	}

	// In-spec application ≡ pre-applied trace: replaying the transformed
	// workload without a chain gives the same bytes.
	pre := runReplay(t, short, first, nil)
	if pre != r1 {
		t.Errorf("pre-applied trace differs from in-scenario chain:\npre: %s\nin:  %s", pre, r1)
	}
}

// TestDemandScaleMonotonicity: demand_scale 2.0 doubles the workload's
// aggregate demand — SaaS token demand exactly, IaaS population within the
// deterministic-thinning tolerance.
func TestDemandScaleMonotonicity(t *testing.T) {
	_, wl := quickScenario(t)
	scaled, err := (transform.Chain{&transform.DemandScale{Factor: 2, Seed: 7}}).Apply(wl)
	if err != nil {
		t.Fatal(err)
	}

	sumTokens := func(w *trace.Workload) float64 {
		total := 0.0
		for m := 0; m < int(w.Config.Duration/time.Minute); m++ {
			at := time.Duration(m) * time.Minute
			for _, ep := range w.Endpoints {
				p, o := ep.DemandTokens(at, time.Minute)
				total += p + o
			}
		}
		return total
	}
	base, got := sumTokens(wl), sumTokens(scaled)
	if base <= 0 {
		t.Fatal("base trace has no SaaS demand to scale")
	}
	if ratio := got / base; math.Abs(ratio-2) > 1e-9 {
		t.Errorf("SaaS token demand ratio %v, want exactly 2 (within fp tolerance)", ratio)
	}

	iaas := func(w *trace.Workload) int {
		n := 0
		for _, vm := range w.VMs {
			if vm.Kind == trace.IaaS {
				n++
			}
		}
		return n
	}
	if got, want := iaas(scaled), 2*iaas(wl); got != want {
		// Factor 2 is integral, so replication is exact.
		t.Errorf("IaaS population %d, want exactly %d at factor 2", got, want)
	}

	// A fractional factor lands within tolerance of the expectation.
	frac, err := (transform.Chain{&transform.DemandScale{Factor: 1.5, Seed: 7}}).Apply(wl)
	if err != nil {
		t.Fatal(err)
	}
	gotN, wantN := float64(iaas(frac)), 1.5*float64(iaas(wl))
	if math.Abs(gotN-wantN) > 0.35*wantN {
		t.Errorf("IaaS population %v at factor 1.5, want ≈%v", gotN, wantN)
	}
}

// TestTimeWarpPreservesDemandVolume: compressing time halves the window but
// preserves the demand trajectory — the warped trace's demand at t equals
// the original's at t/f, so total volume scales by exactly f.
func TestTimeWarpPreservesDemandVolume(t *testing.T) {
	_, wl := quickScenario(t)
	warped, err := (transform.Chain{&transform.TimeWarp{Factor: 0.5}}).Apply(wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{0, 7 * time.Minute, 9*time.Minute + 30*time.Second} {
		for i, ep := range warped.Endpoints {
			gotP, gotO := ep.DemandTokens(at, time.Minute)
			wantP, wantO := wl.Endpoints[i].DemandTokens(2*at, time.Minute)
			if gotP != wantP || gotO != wantO {
				t.Errorf("endpoint %d demand at %v = (%v,%v), original at %v = (%v,%v)",
					i, at, gotP, gotO, 2*at, wantP, wantO)
			}
		}
	}
}
