package transform

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/trace"
)

// FuzzParseChain pins the chain decoder's contracts: no input panics, every
// rejection is a wrapped descriptive "transform:" error, the canonical
// encoding is a fixed point (parse → marshal → parse reproduces the chain),
// and chains that apply cleanly to a workload produce structurally valid
// output that survives the workload-CSV round trip.
func FuzzParseChain(f *testing.F) {
	seeds := []string{
		`[]`,
		`[{"op":"time_warp","factor":0.5}]`,
		`[{"op":"time_warp","factor":1}]`,
		`[{"op":"demand_scale","factor":2}]`,
		`[{"op":"demand_scale","iaas":0.5,"saas":2,"seed":7}]`,
		`[{"op":"endpoint_filter","kind":"iaas"}]`,
		`[{"op":"endpoint_filter","keep":[0,1]}]`,
		`[{"op":"endpoint_filter","drop":[0]}]`,
		`[{"op":"endpoint_filter"}]`,
		`[{"op":"jitter","sigma":"90s","seed":3}]`,
		`[{"op":"splice","trace":"other.csv","offset":"1h"}]`,
		`[{"op":"time_warp","factor":0.5},{"op":"demand_scale","factor":2},{"op":"jitter","sigma":"2m"}]`,
		`[{"op":"resample"}]`,
		`[{"factor":2}]`,
		`[{"op":"demand_scale","factor":1e99}]`,
		`[{"op":"jitter","sigma":90}]`,
		`[null]`,
		`{}`,
		`[`,
		``,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// One small fixed workload shared by every apply probe (the fuzzer only
	// varies the chain, so a package-level fixture keeps iterations fast).
	wl, err := trace.Generate(trace.WorkloadConfig{
		Servers: 30, SaaSFraction: 0.5, Duration: time.Hour, Endpoints: 2, Seed: 6,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			msg := err.Error()
			if !strings.Contains(msg, "transform:") {
				t.Errorf("error %q lacks the transform: wrapping", msg)
			}
			if strings.TrimSpace(msg) == "transform:" {
				t.Errorf("error %q is not descriptive", msg)
			}
			return
		}
		// Canonical fixed point.
		canon := c.String()
		again, err := Parse([]byte(canon))
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if again.String() != canon {
			t.Errorf("canonical encoding is not a fixed point: %q -> %q", canon, again.String())
		}
		if !c.Equal(again) {
			t.Error("re-parsed chain not Equal to original")
		}

		// Apply probe: chains that apply cleanly must emit valid workloads
		// that round-trip through the CSV archive; chains that fail must
		// fail with a wrapped error (e.g. unloaded splices, emptied fleets).
		out, err := c.Apply(wl)
		if err != nil {
			if !strings.Contains(err.Error(), "transform:") {
				t.Errorf("apply error %q lacks the transform: wrapping", err)
			}
			return
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("chain %s produced an invalid workload: %v", canon, err)
		}
		var buf strings.Builder
		if err := trace.WriteWorkloadCSV(&buf, out); err != nil {
			t.Fatalf("chain %s output does not archive: %v", canon, err)
		}
		reread, err := trace.ReadWorkloadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("chain %s archive does not re-parse: %v", canon, err)
		}
		if !reflect.DeepEqual(reread, out) {
			t.Errorf("chain %s output changed across the CSV round trip", canon)
		}
	})
}
