package transform

import (
	"fmt"
	"math"

	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/trace"
)

// maxRequests caps the request log a transform may produce, mirroring maxVMs:
// a stacked chain of replicating demand_scale steps fails loudly instead of
// exhausting memory.
const maxRequests = 1 << 22

// requestScaleSalt decorrelates request thinning/replication from the VM
// population thinning of the same demand_scale step.
const requestScaleSalt = 0x5ca1e2

// ApplyRequests runs the chain over a per-request log, keeping it consistent
// with the workload the same chain transforms: time_warp rescales arrival
// times, demand_scale thins or replicates requests by its SaaS factor
// (keyed on the original request ID, so a factor ≥ 1 keeps every recorded
// request). The remaining ops reshape structure a flat request log does not
// carry (endpoint sets, VM populations, overlay traces) and are rejected —
// replaying them against an unchanged log would silently desynchronize the
// two views of the same workload. The input is never mutated; IDs are
// re-densified after any population change.
func (c Chain) ApplyRequests(reqs []llm.Request) ([]llm.Request, error) {
	if len(c) == 0 {
		return reqs, nil
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := reqs
	for i, s := range c {
		var err error
		switch st := s.(type) {
		case *TimeWarp:
			out, err = st.applyRequests(out)
		case *DemandScale:
			out, err = st.applyRequests(out)
		default:
			err = fmt.Errorf("op %s does not apply to request logs (supported: time_warp, demand_scale)", s.Op())
		}
		if err != nil {
			return nil, fmt.Errorf("transform: step %d (%s): %w", i+1, s.Op(), err)
		}
	}
	return out, nil
}

// applyRequests is TimeWarp over a request log: arrivals scale by the factor.
// Scaling by a positive factor is monotone, so arrivals stay sorted.
func (t *TimeWarp) applyRequests(reqs []llm.Request) ([]llm.Request, error) {
	if t.Factor == 1 {
		return reqs, nil
	}
	out := append([]llm.Request(nil), reqs...)
	for i := range out {
		out[i].Arrival = scaleDur(out[i].Arrival, t.Factor)
	}
	return out, nil
}

// applyRequests is DemandScale over a request log: each request is kept,
// thinned, or replicated by the SaaS factor, deterministically keyed on its
// original ID — the request-level analogue of scaling endpoint request rates.
// Replicas sit adjacent to their original (same arrival), so order stays
// sorted; IDs are re-densified afterwards.
func (d *DemandScale) applyRequests(reqs []llm.Request) ([]llm.Request, error) {
	_, saas := d.factors()
	if saas == 1 {
		return reqs, nil
	}
	want := float64(len(reqs)) * math.Max(saas, 1)
	if want > maxRequests {
		return nil, fmt.Errorf("saas factor %v over %d requests would exceed the %d-request cap", saas, len(reqs), maxRequests)
	}
	whole := math.Floor(saas)
	frac := saas - whole
	out := make([]llm.Request, 0, int(math.Ceil(want)))
	for _, rq := range reqs {
		copies := int(whole)
		if frac > 0 && trace.HashUnit(d.Seed^requestScaleSalt, uint64(rq.ID)) < frac {
			copies++
		}
		for j := 0; j < copies; j++ {
			out = append(out, rq)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("saas factor %v thinned away every request", saas)
	}
	for i := range out {
		out[i].ID = int64(i)
	}
	return out, nil
}
