// Package transform implements composable, deterministic replay-time
// transforms over recorded workload traces. The paper evaluates TAPAS by
// rescaling and reshaping production Azure traces — "the same trace, 2x
// hotter", time-compressed, or skewed toward particular endpoints — rather
// than regenerating synthetic load; a transform Chain gives the reproduction
// the same lever over a pinned trace.Workload without touching the recorded
// artifact.
//
// Every Step is a pure Workload -> Workload function: it never mutates its
// input, it is deterministic (perturbations are seeded hashes, never global
// randomness), and its output upholds the structural invariants replay
// relies on (dense IDs, sorted arrivals, valid endpoint references —
// trace.Workload.Validate). Chains have a canonical JSON encoding
//
//	[{"op": "time_warp", "factor": 0.5},
//	 {"op": "demand_scale", "factor": 2},
//	 {"op": "endpoint_filter", "keep": [0, 2]},
//	 {"op": "jitter", "sigma": "90s", "seed": 7},
//	 {"op": "splice", "trace": "other.trace.csv", "offset": "24h"}]
//
// used verbatim by the workload.transforms scenario-spec field and the
// tapas-trace -transform flag, so a transformed trace is itself a pinnable
// artifact: applying a chain in-spec and replaying a chain-re-exported CSV
// produce byte-identical reports.
package transform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"github.com/tapas-sim/tapas/internal/trace"
)

// maxChainSteps bounds a chain; anything longer is a malformed or
// adversarial input, not an experiment.
const maxChainSteps = 32

// maxVMs caps the VM population a transform may produce, so a stacked chain
// of replicating demand_scale steps fails loudly instead of exhausting
// memory.
const maxVMs = 1 << 20

// Step is one pure, deterministic Workload -> Workload transform.
type Step interface {
	// Op returns the step's operation name, the "op" field of its JSON form.
	Op() string
	// Validate checks the step's parameters without a workload.
	Validate() error
	// Apply transforms w without mutating it.
	Apply(w *trace.Workload) (*trace.Workload, error)
	// Clone returns a deep copy, so sweeps can vary one step per grid point
	// without aliasing the spec's chain.
	Clone() Step
}

// Chain is an ordered list of transform steps applied left to right.
type Chain []Step

// Parse decodes and validates a chain from its canonical JSON form. Unknown
// ops and unknown per-op fields are rejected, so typos in committed chains
// fail loudly instead of silently no-op'ing.
func Parse(data []byte) (Chain, error) {
	var raws []json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&raws); err != nil {
		return nil, fmt.Errorf("transform: parsing chain: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("transform: parsing chain: trailing content after the chain array")
	}
	if len(raws) > maxChainSteps {
		return nil, fmt.Errorf("transform: chain has %d steps, more than the %d-step limit", len(raws), maxChainSteps)
	}
	c := make(Chain, 0, len(raws))
	for i, raw := range raws {
		s, err := parseStep(raw)
		if err != nil {
			return nil, fmt.Errorf("transform: step %d: %w", i+1, err)
		}
		c = append(c, s)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseStep(raw json.RawMessage) (Step, error) {
	// Split the "op" discriminator from the per-op parameters, so the
	// parameter decode below can reject unknown fields without tripping on
	// "op" itself.
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return nil, fmt.Errorf("decoding step: %w", err)
	}
	var op string
	if opRaw, ok := fields["op"]; ok {
		if err := json.Unmarshal(opRaw, &op); err != nil {
			return nil, fmt.Errorf("decoding step op: %w", err)
		}
		delete(fields, "op")
	}
	var s Step
	switch op {
	case "time_warp":
		s = &TimeWarp{}
	case "demand_scale":
		s = &DemandScale{}
	case "endpoint_filter":
		s = &EndpointFilter{}
	case "jitter":
		s = &Jitter{}
	case "splice":
		s = &Splice{}
	case "":
		return nil, fmt.Errorf("step has no \"op\" field")
	default:
		return nil, fmt.Errorf("unknown op %q (known: time_warp, demand_scale, endpoint_filter, jitter, splice)", op)
	}
	params, err := json.Marshal(fields)
	if err != nil {
		return nil, fmt.Errorf("op %s: %w", op, err)
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("op %s: %w", op, err)
	}
	return s, nil
}

// UnmarshalJSON implements json.Unmarshaler, so a Chain can sit directly in
// a larger JSON document (the workload.transforms spec field).
func (c *Chain) UnmarshalJSON(data []byte) error {
	parsed, err := Parse(data)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// MarshalJSON emits the canonical encoding Parse accepts.
func (c Chain) MarshalJSON() ([]byte, error) {
	if c == nil {
		return []byte("[]"), nil
	}
	out := make([]any, len(c))
	for i, s := range c {
		out[i] = stepJSON{Op: s.Op(), Step: s}
	}
	return json.Marshal(out)
}

// stepJSON wraps a step so the canonical encoding always leads with "op".
type stepJSON struct {
	Op   string
	Step Step
}

func (s stepJSON) MarshalJSON() ([]byte, error) {
	body, err := json.Marshal(s.Step)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"op":%q`, s.Op)
	if !bytes.Equal(body, []byte("{}")) {
		buf.WriteByte(',')
		buf.Write(body[1 : len(body)-1])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// String returns the canonical JSON of the chain (used for display and for
// Equal).
func (c Chain) String() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Steps marshal from plain fields; an error here is a programming
		// bug, not an input condition.
		return fmt.Sprintf("!transform-chain-marshal: %v", err)
	}
	return string(b)
}

// Equal reports whether two chains have the same canonical encoding. Loaded
// splice workloads are compared by path, mirroring the pointer-swap (not
// deep content) semantics of sim variant checks.
func (c Chain) Equal(other Chain) bool {
	if len(c) != len(other) {
		return false
	}
	if len(c) == 0 {
		return true
	}
	return c.String() == other.String()
}

// Validate checks every step's parameters.
func (c Chain) Validate() error {
	if len(c) > maxChainSteps {
		return fmt.Errorf("transform: chain has %d steps, more than the %d-step limit", len(c), maxChainSteps)
	}
	for i, s := range c {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("transform: step %d (%s): %w", i+1, s.Op(), err)
		}
	}
	return nil
}

// Clone deep-copies the chain, so a sweep can vary one step's parameters per
// grid point without mutating the spec's parsed chain.
func (c Chain) Clone() Chain {
	if c == nil {
		return nil
	}
	out := make(Chain, len(c))
	for i, s := range c {
		out[i] = s.Clone()
	}
	return out
}

// Load resolves every splice step's trace path against dir (when relative)
// and loads the referenced workload CSVs. Chains without splice steps need
// no Load. Idempotent: already-loaded steps are kept.
func (c Chain) Load(dir string) error {
	for i, s := range c {
		sp, ok := s.(*Splice)
		if !ok {
			continue
		}
		if err := sp.load(dir); err != nil {
			return fmt.Errorf("transform: step %d (splice): %w", i+1, err)
		}
	}
	return nil
}

// Apply runs the chain over w left to right and validates the final
// workload. The input is never mutated; an empty chain returns it unchanged.
func (c Chain) Apply(w *trace.Workload) (*trace.Workload, error) {
	if len(c) == 0 {
		return w, nil
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := w
	for i, s := range c {
		next, err := s.Apply(out)
		if err != nil {
			return nil, fmt.Errorf("transform: step %d (%s): %w", i+1, s.Op(), err)
		}
		if len(next.VMs) > maxVMs {
			return nil, fmt.Errorf("transform: step %d (%s) produced %d VMs, more than the %d cap", i+1, s.Op(), len(next.VMs), maxVMs)
		}
		out = next
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("transform: chain output invalid: %w", err)
	}
	return out, nil
}

// Dur is a time.Duration that round-trips through Go duration strings
// ("90s", "24h") in chain JSON.
type Dur time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"90s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("invalid duration %q: %w", s, err)
	}
	*d = Dur(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Transforms draw deterministic noise from trace.HashUnit — the same
// splitmix64 construction the trace generator uses — so they never touch
// global randomness and share one definition with the generator.
