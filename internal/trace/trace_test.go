package trace

import (
	"math"
	"testing"
	"time"
)

func TestOutsideTempDeterministic(t *testing.T) {
	a := NewOutsideTemp(RegionHot, 24*time.Hour, 10*time.Minute, 1)
	b := NewOutsideTemp(RegionHot, 24*time.Hour, 10*time.Minute, 1)
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatal("outside temperature not deterministic")
		}
	}
}

func TestOutsideTempDiurnalShape(t *testing.T) {
	o := NewOutsideTemp(RegionHot, 7*24*time.Hour, 10*time.Minute, 2)
	// Afternoon should be warmer than pre-dawn on average.
	var afternoon, dawn float64
	days := 7
	for d := 0; d < days; d++ {
		afternoon += o.At(time.Duration(d)*24*time.Hour + 15*time.Hour)
		dawn += o.At(time.Duration(d)*24*time.Hour + 5*time.Hour)
	}
	if afternoon <= dawn {
		t.Errorf("afternoon %v not warmer than dawn %v", afternoon/7, dawn/7)
	}
}

func TestOutsideTempRegionOrdering(t *testing.T) {
	hot := NewOutsideTemp(RegionHot, 48*time.Hour, 10*time.Minute, 3)
	cool := NewOutsideTemp(RegionCool, 48*time.Hour, 10*time.Minute, 3)
	var hSum, cSum float64
	for i := 0; i < 48; i++ {
		hSum += hot.At(time.Duration(i) * time.Hour)
		cSum += cool.At(time.Duration(i) * time.Hour)
	}
	if hSum <= cSum {
		t.Error("hot region should average warmer than cool region")
	}
}

func TestOutsideTempClamping(t *testing.T) {
	o := NewOutsideTemp(RegionTemperate, time.Hour, 10*time.Minute, 4)
	if got := o.At(-time.Hour); got != o.Series[0] {
		t.Error("negative time must clamp to start")
	}
	if got := o.At(100 * time.Hour); got != o.Series[len(o.Series)-1] {
		t.Error("beyond-end time must clamp to end")
	}
}

func TestLoadPatternRange(t *testing.T) {
	p := LoadPattern{Base: 0.3, DiurnalAmp: 0.6, NoiseAmp: 0.1, Seed: 5}
	for h := 0; h < 24*14; h++ {
		v := p.At(time.Duration(h) * time.Hour)
		if v < 0 || v > 1 {
			t.Fatalf("load %v out of [0,1] at hour %d", v, h)
		}
	}
}

func TestLoadPatternDeterministic(t *testing.T) {
	p := LoadPattern{Base: 0.3, DiurnalAmp: 0.5, NoiseAmp: 0.08, Seed: 6}
	for h := 0; h < 100; h++ {
		at := time.Duration(h) * 37 * time.Minute
		if p.At(at) != p.At(at) {
			t.Fatal("load pattern not deterministic")
		}
	}
}

func TestLoadPatternWeeklyPredictability(t *testing.T) {
	// Same hour, one week apart: the diurnal+weekly structure should make
	// values close (that is what power templates exploit, Fig. 14).
	p := LoadPattern{Base: 0.3, DiurnalAmp: 0.5, NoiseAmp: 0.05, Seed: 7}
	var diff, n float64
	for h := 0; h < 7*24; h++ {
		a := p.At(time.Duration(h) * time.Hour)
		b := p.At(time.Duration(h+7*24) * time.Hour)
		diff += math.Abs(a - b)
		n++
	}
	if avg := diff / n; avg > 0.12 {
		t.Errorf("week-over-week mean difference = %v, want < 0.12", avg)
	}
}

func TestLoadPatternWeekendDip(t *testing.T) {
	p := LoadPattern{Base: 0.4, DiurnalAmp: 0.4, WeekendDip: 0.3, Seed: 8}
	weekday := p.At(2*24*time.Hour + 14*time.Hour) // Wednesday
	weekend := p.At(5*24*time.Hour + 14*time.Hour) // Saturday
	if weekend >= weekday {
		t.Errorf("weekend load %v not below weekday %v", weekend, weekday)
	}
}

func TestGenerateWorkloadShape(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Servers: 1000, SaaSFraction: 0.5, Duration: 7 * 24 * time.Hour,
		Endpoints: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Endpoints) != 10 {
		t.Fatalf("endpoints = %d, want 10", len(w.Endpoints))
	}
	var iaas, saas int
	for _, vm := range w.VMs {
		switch vm.Kind {
		case IaaS:
			iaas++
			if vm.Endpoint != -1 {
				t.Fatal("IaaS VM has endpoint")
			}
		case SaaS:
			saas++
			if vm.Endpoint < 0 || vm.Endpoint >= len(w.Endpoints) {
				t.Fatalf("SaaS VM endpoint %d out of range", vm.Endpoint)
			}
		}
	}
	ratio := float64(saas) / float64(saas+iaas)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("SaaS fraction = %v, want ≈ 0.5", ratio)
	}
	// Initial population near target occupancy.
	initial := 0
	for _, vm := range w.VMs {
		if vm.Arrival == 0 {
			initial++
		}
	}
	if initial < 800 || initial > 1000 {
		t.Errorf("initial population = %d, want ≈ 920", initial)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(WorkloadConfig{Servers: 0}); err == nil {
		t.Error("expected error for zero servers")
	}
	if _, err := Generate(WorkloadConfig{Servers: 10, SaaSFraction: 1.5}); err == nil {
		t.Error("expected error for SaaS fraction > 1")
	}
}

func TestLifetimeDistributionMatchesFig12a(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Servers: 4000, SaaSFraction: 0.5, Duration: 7 * 24 * time.Hour, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	over2w := 0
	for _, vm := range w.VMs {
		if vm.Lifetime > 14*24*time.Hour {
			over2w++
		}
	}
	frac := float64(over2w) / float64(len(w.VMs))
	// Fig. 12a: over 60% of VMs run for more than two weeks.
	if frac < 0.55 || frac > 0.75 {
		t.Errorf("fraction living > 2 weeks = %v, want ≈ 0.6", frac)
	}
}

func TestEndpointSizesSpanPaperRange(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Servers: 1000, SaaSFraction: 0.5, Duration: 24 * time.Hour,
		Endpoints: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	minN, maxN := 1<<30, 0
	total := 0
	for _, e := range w.Endpoints {
		if e.NumVMs < minN {
			minN = e.NumVMs
		}
		if e.NumVMs > maxN {
			maxN = e.NumVMs
		}
		total += e.NumVMs
	}
	// §5.1: endpoints have between 23 and 100 VMs; require the right order
	// of magnitude and a skewed spread.
	if maxN < 60 || maxN > 160 {
		t.Errorf("largest endpoint = %d VMs, want ≈ 100", maxN)
	}
	if minN > 40 {
		t.Errorf("smallest endpoint = %d VMs, want small tail", minN)
	}
	if maxN <= 2*minN {
		t.Error("endpoint sizes should be skewed (Fig. 12b)")
	}
}

func TestVMActiveWindow(t *testing.T) {
	vm := VMSpec{Arrival: time.Hour, Lifetime: 2 * time.Hour}
	if vm.Active(0) {
		t.Error("not active before arrival")
	}
	if !vm.Active(90 * time.Minute) {
		t.Error("active during lifetime")
	}
	if vm.Active(4 * time.Hour) {
		t.Error("not active after expiry")
	}
}

func TestEndpointDemandTokens(t *testing.T) {
	w, _ := Generate(WorkloadConfig{Servers: 200, SaaSFraction: 0.5, Duration: 24 * time.Hour, Seed: 10})
	e := w.Endpoints[0]
	p, o := e.DemandTokens(12*time.Hour, time.Minute)
	if p <= 0 || o <= 0 {
		t.Fatal("midday demand must be positive")
	}
	if o >= p {
		t.Error("output tokens should be below prompt tokens for the default workload")
	}
}

func TestEndpointRequestsStream(t *testing.T) {
	w, _ := Generate(WorkloadConfig{Servers: 200, SaaSFraction: 0.5, Duration: 24 * time.Hour, Seed: 11})
	e := w.Endpoints[0]
	reqs := e.Requests(0, 10*time.Minute, 1)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	prev := time.Duration(-1)
	customers := map[int]int{}
	for _, r := range reqs {
		if r.Arrival < prev {
			t.Fatal("requests not time-ordered")
		}
		prev = r.Arrival
		if r.PromptTokens < 16 || r.PromptTokens > 8192 {
			t.Fatalf("prompt tokens %d out of range", r.PromptTokens)
		}
		if r.OutputTokens < 8 || r.OutputTokens > 2048 {
			t.Fatalf("output tokens %d out of range", r.OutputTokens)
		}
		customers[r.Customer]++
	}
	// Zipf skew: the most frequent customer should dominate the median one.
	maxC := 0
	for _, n := range customers {
		if n > maxC {
			maxC = n
		}
	}
	if maxC < 3 {
		t.Error("expected repeat customers from Zipf skew")
	}
	// Determinism.
	again := e.Requests(0, 10*time.Minute, 1)
	if len(again) != len(reqs) {
		t.Fatal("request stream not deterministic")
	}
}

func TestSampleCustomersSkew(t *testing.T) {
	w, _ := Generate(WorkloadConfig{Servers: 200, SaaSFraction: 0.5, Duration: 24 * time.Hour, Seed: 12})
	e := w.Endpoints[0]
	ids := e.SampleCustomers(time.Hour, 200)
	if len(ids) != 200 {
		t.Fatalf("sampled %d, want 200", len(ids))
	}
	low := 0
	for _, id := range ids {
		if id < 0 || id >= e.CustomerCount {
			t.Fatalf("customer %d out of range", id)
		}
		if id < e.CustomerCount/10 {
			low++
		}
	}
	// Zipf: the first decile of customers should receive well over 10% of
	// the samples.
	if low < 60 {
		t.Errorf("only %d/200 samples in the first decile, want Zipf skew", low)
	}
}

func TestVMKindString(t *testing.T) {
	if IaaS.String() != "IaaS" || SaaS.String() != "SaaS" {
		t.Error("VMKind String() wrong")
	}
}
