package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The fuzzers pin two contracts on every CSV reader: no input may panic, and
// every rejection must surface as a wrapped, descriptive error (the "trace:"
// prefix carries the package and, for row-level problems, the 1-based row).
// Accepted inputs must additionally survive a write→read round trip, so the
// readers and writers cannot drift apart.

func seedWorkloadCSV(f *testing.F) {
	w, err := Generate(WorkloadConfig{
		Servers: 40, SaaSFraction: 0.5, Duration: time.Hour, Endpoints: 2, Seed: 9,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, w); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add([]byte(valid))
	f.Add([]byte(strings.ReplaceAll(valid, "\n", "\r\n")))
	f.Add([]byte(strings.TrimRight(valid, "\n")))
	lines := strings.SplitAfter(valid, "\n")
	f.Add([]byte(strings.Join(lines[:2], ""))) // version+config only
	f.Add([]byte("tapas-workload,v1\n"))
	f.Add([]byte("tapas-workload,v2\nconfig,1\n"))
	f.Add([]byte("tapas-workload,v99\nconfig,80,0.5,0,3,42,0.92,0.8\n"))
	f.Add([]byte("config,80,0.5,0,3,42,0.92,0.8\n")) // missing version line
	f.Add([]byte(`"tapas-workload","v1"` + "\n"))
	// v1 files (no time_scale column) stay parseable; v1 rows under a v2
	// version line (and vice versa) are field-count errors.
	f.Add([]byte("tapas-workload,v1\nconfig,80,0.5,0,3,42,0.92,0.8\nvm,0,0,0,-1,0,1,0,0,0,0,0,0\nvm,0,0,0,-1,0,1,0,0,0,0,0,0\n"))
	f.Add([]byte("tapas-workload,v1\nconfig,80,0.5,0,3,42,0.92,0.8\nvm,0,1,-1,7,0,1,0,0,0,0,0,0\n"))
	f.Add([]byte("tapas-workload,v1\nconfig,80,0.5,3600000000000,1,42,0.92,0.8\nendpoint,0,5,1024,256,0.25,0.65,1,0.25,0.05,42,2.5,100,7\nvm,0,1,-1,0,0,3600000000000,0,0,0,0,0,0\n"))
	f.Add([]byte("tapas-workload,v2\nconfig,80,0.5,0,3,42,0.92,0.8\nvm,0,0,0,-1,0,1,0,0,0,0,0,0\n"))
	f.Add([]byte("tapas-workload,v2\nconfig,80,0.5,0,3,42,0.92,0.8\nvm,0,0,0,-1,0,1,0,0,0,0,0,0,0.5\n"))
	f.Add([]byte("\x00\xff,broken\n"))
	f.Add([]byte(""))
}

func checkFuzzErr(t *testing.T, err error) {
	if err == nil {
		return
	}
	msg := err.Error()
	if !strings.Contains(msg, "trace:") {
		t.Errorf("error %q lacks the trace: wrapping", msg)
	}
	if strings.TrimSpace(msg) == "trace:" {
		t.Errorf("error %q is not descriptive", msg)
	}
}

func FuzzReadWorkloadCSV(f *testing.F) {
	seedWorkloadCSV(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		wl, err := ReadWorkloadCSV(bytes.NewReader(data))
		if err != nil {
			checkFuzzErr(t, err)
			return
		}
		// Accepted input must re-serialize and re-parse to the exact same
		// workload (sound because non-finite floats are rejected above).
		var buf bytes.Buffer
		if err := WriteWorkloadCSV(&buf, wl); err != nil {
			t.Fatalf("re-serializing accepted workload: %v", err)
		}
		again, err := ReadWorkloadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing re-serialized workload: %v", err)
		}
		if !reflect.DeepEqual(again, wl) {
			t.Error("accepted workload changed across a write→read round trip")
		}
	})
}

// FuzzReadAzureLLMCSV pins the Azure-style request-log importer: no input
// panics, every rejection is a wrapped descriptive "trace:" error, and every
// accepted input reconstructs a structurally valid workload that survives
// the workload-CSV archive round trip exactly.
func FuzzReadAzureLLMCSV(f *testing.F) {
	const header = "timestamp,endpoint,prompt_tokens,output_tokens\n"
	seeds := []string{
		header + "0,chat,512,128\n30.5,chat,1024,256\n61,code,2048,64\n",
		header + "0,chat,512,128\n",
		header + "2023-11-16T18:01:51Z,chat,512,128\n2023-11-16T18:02:12Z,code,900,40\n",
		header + "2023-11-16 18:01:51.1627340,chat,512,128\n2023-11-16 18:03:00.5,chat,700,90\n",
		header + "10,chat,512,128\n5,chat,1024,256\n",                  // unsorted
		header + "0,chat,-5,128\n",                                     // negative tokens
		header + "0,,512,128\n",                                        // empty endpoint
		header + "1e18,chat,512,128\n",                                 // beyond the window
		header + "0,chat,512,128\n2023-11-16T18:01:51Z,chat,512,128\n", // mixed modes
		header,
		"time,endpoint,prompt_tokens,output_tokens\n0,chat,1,1\n",
		"",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	cfg := AzureImportConfig{Servers: 40, Seed: 7}
	f.Fuzz(func(t *testing.T, data []byte) {
		wl, err := ReadAzureLLMCSV(bytes.NewReader(data), cfg)
		if err != nil {
			checkFuzzErr(t, err)
			return
		}
		if err := wl.Validate(); err != nil {
			t.Fatalf("accepted import is structurally invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteWorkloadCSV(&buf, wl); err != nil {
			t.Fatalf("re-serializing imported workload: %v", err)
		}
		again, err := ReadWorkloadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing re-serialized import: %v", err)
		}
		if !reflect.DeepEqual(again, wl) {
			t.Error("imported workload changed across a write→read round trip")
		}
	})
}

func FuzzReadVMsCSV(f *testing.F) {
	w, err := Generate(WorkloadConfig{
		Servers: 30, SaaSFraction: 0.5, Duration: time.Hour, Endpoints: 2, Seed: 4,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVMsCSV(&buf, w.VMs); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add([]byte(valid))
	f.Add([]byte(strings.ReplaceAll(valid, "\n", "\r\n")))
	f.Add([]byte("id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n"))
	f.Add([]byte("id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n1,9,0,0,0,0,0,0,0,0,0,0\n"))
	f.Add([]byte("id,kind\n1,0\n"))
	f.Add([]byte("\"unclosed\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		vms, err := ReadVMsCSV(bytes.NewReader(data))
		if err != nil {
			checkFuzzErr(t, err)
			return
		}
		var buf bytes.Buffer
		if err := WriteVMsCSV(&buf, vms); err != nil {
			t.Fatalf("re-serializing accepted VMs: %v", err)
		}
		again, err := ReadVMsCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing re-serialized VMs: %v", err)
		}
		if !reflect.DeepEqual(again, vms) {
			t.Error("accepted VMs changed across a write→read round trip")
		}
	})
}

func FuzzReadRequestsCSV(f *testing.F) {
	w, err := Generate(WorkloadConfig{
		Servers: 30, SaaSFraction: 1, Duration: time.Hour, Endpoints: 1, Seed: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	reqs := w.Endpoints[0].Requests(0, time.Minute, 1)
	var buf bytes.Buffer
	if err := WriteRequestsCSV(&buf, reqs); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add([]byte(valid))
	f.Add([]byte(strings.TrimRight(valid, "\n")))
	f.Add([]byte("id,customer,prompt,output,arrival_ns\n1,2,3\n"))
	f.Add([]byte("id,customer,prompt,output,arrival_ns\nx,2,3,4,5\n"))
	f.Add([]byte("\xef\xbb\xbfid,customer,prompt,output,arrival_ns\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := ReadRequestsCSV(bytes.NewReader(data))
		if err != nil {
			checkFuzzErr(t, err)
			return
		}
		var buf bytes.Buffer
		if err := WriteRequestsCSV(&buf, reqs); err != nil {
			t.Fatalf("re-serializing accepted requests: %v", err)
		}
		again, err := ReadRequestsCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing re-serialized requests: %v", err)
		}
		if !reflect.DeepEqual(again, reqs) {
			t.Error("accepted requests changed across a write→read round trip")
		}
	})
}
