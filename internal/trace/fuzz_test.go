package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The fuzzers pin two contracts on every CSV reader: no input may panic, and
// every rejection must surface as a wrapped, descriptive error (the "trace:"
// prefix carries the package and, for row-level problems, the 1-based row).
// Accepted inputs must additionally survive a write→read round trip, so the
// readers and writers cannot drift apart.

func seedWorkloadCSV(f *testing.F) {
	w, err := Generate(WorkloadConfig{
		Servers: 40, SaaSFraction: 0.5, Duration: time.Hour, Endpoints: 2, Seed: 9,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, w); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add([]byte(valid))
	f.Add([]byte(strings.ReplaceAll(valid, "\n", "\r\n")))
	f.Add([]byte(strings.TrimRight(valid, "\n")))
	lines := strings.SplitAfter(valid, "\n")
	f.Add([]byte(strings.Join(lines[:2], ""))) // version+config only
	f.Add([]byte("tapas-workload,v1\n"))
	f.Add([]byte("tapas-workload,v2\nconfig,1\n"))
	f.Add([]byte("config,80,0.5,0,3,42,0.92,0.8\n")) // missing version line
	f.Add([]byte(`"tapas-workload","v1"` + "\n"))
	f.Add([]byte("tapas-workload,v1\nconfig,80,0.5,0,3,42,0.92,0.8\nvm,0,0,0,-1,0,1,0,0,0,0,0,0\nvm,0,0,0,-1,0,1,0,0,0,0,0,0\n"))
	f.Add([]byte("tapas-workload,v1\nconfig,80,0.5,0,3,42,0.92,0.8\nvm,0,1,-1,7,0,1,0,0,0,0,0,0\n"))
	f.Add([]byte("\x00\xff,broken\n"))
	f.Add([]byte(""))
}

func checkFuzzErr(t *testing.T, err error) {
	if err == nil {
		return
	}
	msg := err.Error()
	if !strings.Contains(msg, "trace:") {
		t.Errorf("error %q lacks the trace: wrapping", msg)
	}
	if strings.TrimSpace(msg) == "trace:" {
		t.Errorf("error %q is not descriptive", msg)
	}
}

func FuzzReadWorkloadCSV(f *testing.F) {
	seedWorkloadCSV(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		wl, err := ReadWorkloadCSV(bytes.NewReader(data))
		if err != nil {
			checkFuzzErr(t, err)
			return
		}
		// Accepted input must re-serialize and re-parse to the exact same
		// workload (sound because non-finite floats are rejected above).
		var buf bytes.Buffer
		if err := WriteWorkloadCSV(&buf, wl); err != nil {
			t.Fatalf("re-serializing accepted workload: %v", err)
		}
		again, err := ReadWorkloadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing re-serialized workload: %v", err)
		}
		if !reflect.DeepEqual(again, wl) {
			t.Error("accepted workload changed across a write→read round trip")
		}
	})
}

func FuzzReadVMsCSV(f *testing.F) {
	w, err := Generate(WorkloadConfig{
		Servers: 30, SaaSFraction: 0.5, Duration: time.Hour, Endpoints: 2, Seed: 4,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVMsCSV(&buf, w.VMs); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add([]byte(valid))
	f.Add([]byte(strings.ReplaceAll(valid, "\n", "\r\n")))
	f.Add([]byte("id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n"))
	f.Add([]byte("id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n1,9,0,0,0,0,0,0,0,0,0,0\n"))
	f.Add([]byte("id,kind\n1,0\n"))
	f.Add([]byte("\"unclosed\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		vms, err := ReadVMsCSV(bytes.NewReader(data))
		if err != nil {
			checkFuzzErr(t, err)
			return
		}
		var buf bytes.Buffer
		if err := WriteVMsCSV(&buf, vms); err != nil {
			t.Fatalf("re-serializing accepted VMs: %v", err)
		}
		again, err := ReadVMsCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing re-serialized VMs: %v", err)
		}
		if !reflect.DeepEqual(again, vms) {
			t.Error("accepted VMs changed across a write→read round trip")
		}
	})
}

func FuzzReadRequestsCSV(f *testing.F) {
	w, err := Generate(WorkloadConfig{
		Servers: 30, SaaSFraction: 1, Duration: time.Hour, Endpoints: 1, Seed: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	reqs := w.Endpoints[0].Requests(0, time.Minute, 1)
	var buf bytes.Buffer
	if err := WriteRequestsCSV(&buf, reqs); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add([]byte(valid))
	f.Add([]byte(strings.TrimRight(valid, "\n")))
	f.Add([]byte("id,customer,prompt,output,arrival_ns\n1,2,3\n"))
	f.Add([]byte("id,customer,prompt,output,arrival_ns\nx,2,3,4,5\n"))
	f.Add([]byte("\xef\xbb\xbfid,customer,prompt,output,arrival_ns\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := ReadRequestsCSV(bytes.NewReader(data))
		if err != nil {
			checkFuzzErr(t, err)
			return
		}
		var buf bytes.Buffer
		if err := WriteRequestsCSV(&buf, reqs); err != nil {
			t.Fatalf("re-serializing accepted requests: %v", err)
		}
		again, err := ReadRequestsCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing re-serialized requests: %v", err)
		}
		if !reflect.DeepEqual(again, reqs) {
			t.Error("accepted requests changed across a write→read round trip")
		}
	})
}
