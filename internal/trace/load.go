package trace

import (
	"math"
	"time"
)

// LoadPattern is a deterministic diurnal load generator in [0,1]. The same
// pattern evaluated at the same time always returns the same value, which is
// what makes week-over-week template prediction work (Fig. 14).
type LoadPattern struct {
	Base       float64 // floor load
	DiurnalAmp float64 // day/night swing
	PhaseHours float64 // shift of the daily peak
	WeekendDip float64 // multiplicative dip applied on days 6 and 7
	NoiseAmp   float64 // high-frequency jitter amplitude
	Seed       uint64
	// TimeScale stretches the pattern's timeline: At(t) evaluates the
	// un-scaled pattern at t/TimeScale, so a pattern with TimeScale 2 plays
	// its diurnal cycle over 48 hours. 0 means 1 (unscaled) — the zero value
	// keeps every pre-transform trace byte-compatible. Set by the time_warp
	// trace transform; the synthetic generator always leaves it 0.
	TimeScale float64
}

// At evaluates the pattern at time t, clamped to [0, 1].
func (p LoadPattern) At(t time.Duration) float64 {
	if p.TimeScale > 0 && p.TimeScale != 1 {
		t = time.Duration(math.Round(float64(t) / p.TimeScale))
	}
	return p.atWithDaily(t, DailySin(t, p.PhaseHours))
}

// DailySin is the diurnal sine term of a pattern with the given phase at
// time t — peak mid-afternoon by default, PhaseHours shifts per customer.
// Exposed so a caller evaluating many same-phase patterns at one time (the
// tick kernel: a customer's VMs share their phase) can compute it once and
// pass it to AtTick.
func DailySin(t time.Duration, phaseHours float64) float64 {
	return math.Sin(2 * math.Pi * (t.Hours() - 9 - phaseHours) / 24)
}

// TickEval precomputes the purely time-dependent terms of atWithDaily —
// weekend flag, noise bucket index, intra-bucket interpolation — which are
// shared by every un-warped pattern evaluated at one instant. The tick
// kernel builds one per tick instead of re-deriving them per VM.
type TickEval struct {
	t       time.Duration
	weekend bool
	bucket  uint64
	frac    float64
}

// NewTickEval captures time t for batched pattern evaluation via AtTick.
func NewTickEval(t time.Duration) TickEval {
	return TickEval{
		t:       t,
		weekend: int(t.Hours()/24)%7 >= 5,
		bucket:  uint64(t / (10 * time.Minute)),
		frac:    float64(t%(10*time.Minute)) / float64(10*time.Minute),
	}
}

// NoiseCache memoizes one pattern's two bucket hashes. The noise bucket
// advances every 10 minutes while ticks are much shorter, so a per-VM cache
// turns two splitmix rounds per evaluation into an amortized fraction of
// one. The zero value is NOT valid — initialize Bucket to ^uint64(0) so the
// first evaluation misses.
type NoiseCache struct {
	Bucket uint64
	N0, N1 float64
}

// AtTick evaluates the pattern at the TickEval's time given a precomputed
// DailySin(t, p.PhaseHours), memoizing noise hashes in nc (which may be nil
// to hash every call). Bit-identical to At for patterns without
// time-warping; patterns with TimeScale set must go through At, which warps
// t before the sine is taken.
func (p *LoadPattern) AtTick(e *TickEval, daily float64, nc *NoiseCache) float64 {
	v := p.Base + p.DiurnalAmp*(0.5+0.5*daily)
	if e.weekend {
		v *= 1 - p.WeekendDip
	}
	if p.NoiseAmp > 0 {
		var n0, n1 float64
		if nc != nil {
			if nc.Bucket != e.bucket {
				nc.Bucket = e.bucket
				nc.N0 = HashUnit(p.Seed, e.bucket)
				nc.N1 = HashUnit(p.Seed, e.bucket+1)
			}
			n0, n1 = nc.N0, nc.N1
		} else {
			n0 = HashUnit(p.Seed, e.bucket)
			n1 = HashUnit(p.Seed, e.bucket+1)
		}
		v += p.NoiseAmp * ((n0*(1-e.frac) + n1*e.frac) - 0.5) * 2
	}
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (p LoadPattern) atWithDaily(t time.Duration, daily float64) float64 {
	e := NewTickEval(t)
	return p.AtTick(&e, daily, nil)
}

// HashUnit maps (seed, x) to a uniform value in [0,1) via splitmix64 — the
// shared deterministic-noise primitive of the generator and the replay-time
// transforms (internal/trace/transform), which must stay on one definition
// so "same seed, same trace" holds across both.
func HashUnit(seed, x uint64) float64 {
	z := seed + x*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
