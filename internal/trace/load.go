package trace

import (
	"math"
	"time"
)

// LoadPattern is a deterministic diurnal load generator in [0,1]. The same
// pattern evaluated at the same time always returns the same value, which is
// what makes week-over-week template prediction work (Fig. 14).
type LoadPattern struct {
	Base       float64 // floor load
	DiurnalAmp float64 // day/night swing
	PhaseHours float64 // shift of the daily peak
	WeekendDip float64 // multiplicative dip applied on days 6 and 7
	NoiseAmp   float64 // high-frequency jitter amplitude
	Seed       uint64
	// TimeScale stretches the pattern's timeline: At(t) evaluates the
	// un-scaled pattern at t/TimeScale, so a pattern with TimeScale 2 plays
	// its diurnal cycle over 48 hours. 0 means 1 (unscaled) — the zero value
	// keeps every pre-transform trace byte-compatible. Set by the time_warp
	// trace transform; the synthetic generator always leaves it 0.
	TimeScale float64
}

// At evaluates the pattern at time t, clamped to [0, 1].
func (p LoadPattern) At(t time.Duration) float64 {
	if p.TimeScale > 0 && p.TimeScale != 1 {
		t = time.Duration(math.Round(float64(t) / p.TimeScale))
	}
	hours := t.Hours()
	// Peak mid-afternoon by default; PhaseHours shifts per customer.
	daily := math.Sin(2 * math.Pi * (hours - 9 - p.PhaseHours) / 24)
	v := p.Base + p.DiurnalAmp*(0.5+0.5*daily)
	day := int(hours/24) % 7
	if day >= 5 {
		v *= 1 - p.WeekendDip
	}
	// Deterministic jitter: hash the 10-minute bucket index and
	// interpolate between consecutive buckets for continuity.
	if p.NoiseAmp > 0 {
		bucket := uint64(t / (10 * time.Minute))
		frac := float64(t%(10*time.Minute)) / float64(10*time.Minute)
		n0 := HashUnit(p.Seed, bucket)
		n1 := HashUnit(p.Seed, bucket+1)
		v += p.NoiseAmp * ((n0*(1-frac) + n1*frac) - 0.5) * 2
	}
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// HashUnit maps (seed, x) to a uniform value in [0,1) via splitmix64 — the
// shared deterministic-noise primitive of the generator and the replay-time
// transforms (internal/trace/transform), which must stay on one definition
// so "same seed, same trace" holds across both.
func HashUnit(seed, x uint64) float64 {
	z := seed + x*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
