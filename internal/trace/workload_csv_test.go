package trace

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// genWorkload builds a small deterministic workload for round-trip tests.
func genWorkload(t *testing.T, cfg WorkloadConfig) *Workload {
	t.Helper()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkloadCSVRoundTrip sweeps a grid of generation configs and requires
// the CSV round trip to reproduce the exact Workload struct — the property
// behind byte-identical replay reports.
func TestWorkloadCSVRoundTrip(t *testing.T) {
	for _, saas := range []float64{0, 0.5, 1} {
		for _, eps := range []int{1, 4} {
			for _, seed := range []uint64{1, 42} {
				name := fmt.Sprintf("saas=%v/eps=%d/seed=%d", saas, eps, seed)
				t.Run(name, func(t *testing.T) {
					w := genWorkload(t, WorkloadConfig{
						Servers: 80, SaaSFraction: saas, Duration: 6 * time.Hour,
						Endpoints: eps, Seed: seed,
					})
					var buf bytes.Buffer
					if err := WriteWorkloadCSV(&buf, w); err != nil {
						t.Fatal(err)
					}
					got, err := ReadWorkloadCSV(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, w) {
						t.Errorf("workload differs after round trip:\ngot config  %+v\nwant config %+v\ngot %d VMs / %d endpoints, want %d / %d",
							got.Config, w.Config, len(got.VMs), len(got.Endpoints), len(w.VMs), len(w.Endpoints))
					}
				})
			}
		}
	}
}

// TestWorkloadCSVInputVariants proves the reader is robust to the CSV
// variants real files arrive in: CRLF line endings, quoted fields, and a
// missing trailing newline all parse to the identical workload.
func TestWorkloadCSVInputVariants(t *testing.T) {
	w := genWorkload(t, WorkloadConfig{
		Servers: 60, SaaSFraction: 0.5, Duration: 3 * time.Hour, Endpoints: 2, Seed: 7,
	})
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, w); err != nil {
		t.Fatal(err)
	}
	canonical := buf.String()

	quoteAll := func(s string) string {
		var sb strings.Builder
		for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
			fields := strings.Split(line, ",")
			for i, f := range fields {
				fields[i] = `"` + f + `"`
			}
			sb.WriteString(strings.Join(fields, ","))
			sb.WriteString("\n")
		}
		return sb.String()
	}
	variants := map[string]string{
		"crlf":                strings.ReplaceAll(canonical, "\n", "\r\n"),
		"no trailing newline": strings.TrimRight(canonical, "\n"),
		"quoted fields":       quoteAll(canonical),
		"quoted crlf no trailing newline": strings.TrimRight(
			strings.ReplaceAll(quoteAll(canonical), "\n", "\r\n"), "\r\n"),
	}
	for name, in := range variants {
		t.Run(name, func(t *testing.T) {
			got, err := ReadWorkloadCSV(strings.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, w) {
				t.Error("workload differs from canonical parse")
			}
		})
	}
}

func validWorkloadCSV(t *testing.T) string {
	t.Helper()
	w := genWorkload(t, WorkloadConfig{
		Servers: 40, SaaSFraction: 0.5, Duration: time.Hour, Endpoints: 2, Seed: 3,
	})
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestReadWorkloadCSVErrors drives every incremental-validation path and
// requires each error to name its 1-based row.
func TestReadWorkloadCSVErrors(t *testing.T) {
	valid := validWorkloadCSV(t)
	lines := strings.Split(strings.TrimRight(valid, "\n"), "\n")
	withLine := func(idx int, repl string) string {
		out := append([]string(nil), lines...)
		out[idx] = repl
		return strings.Join(out, "\n") + "\n"
	}
	firstVM := 0
	for i, l := range lines {
		if strings.HasPrefix(l, "vm,") {
			firstVM = i
			break
		}
	}
	cases := map[string]struct {
		in      string
		wantSub string
	}{
		"empty":              {"", "empty"},
		"wrong magic":        {"nope,v1\n", "not a tapas-workload file"},
		"bad version":        {"tapas-workload,v99\n", "unsupported version"},
		"no config":          {"tapas-workload,v1\n", "no config record"},
		"no vms":             {lines[0] + "\n" + lines[1] + "\n", "no VM records"},
		"unknown record":     {withLine(2, "bogus,1,2"), "unknown record type"},
		"duplicate config":   {withLine(2, lines[1]), "duplicate config record"},
		"config field count": {withLine(1, "config,1,2,3"), "config record has 4 fields"},
		"config bad servers": {withLine(1, "config,x,0.5,0,2,3,0.92,0.8"), "field 2 (servers)"},
		"config neg servers": {withLine(1, "config,-4,0.5,0,2,3,0.92,0.8"), "non-positive server count"},
		"config bad mix":     {withLine(1, "config,40,1.5,0,2,3,0.92,0.8"), "saas_fraction 1.5 out of [0,1]"},
		"endpoint after vm": {strings.Join(append(append([]string(nil), lines[:firstVM+1]...), lines[2]), "\n") + "\n",
			"endpoint record after VM records"},
		"endpoint field count": {withLine(2, "endpoint,0,5"), "endpoint record has 3 fields"},
		"endpoint bad id":      {withLine(2, "endpoint,x"+strings.TrimPrefix(lines[2], "endpoint,0")), "field 2 (id)"},
		"duplicate endpoint":   {withLine(3, lines[2]), "endpoint ids must be dense"},
		"endpoint shifted id":  {withLine(2, "endpoint,7"+strings.TrimPrefix(lines[2], "endpoint,0")), "endpoint id 7, want 0"},
		"vm field count":       {withLine(firstVM, "vm,1,2"), "vm record has 3 fields"},
		"vm bad kind":          {withLine(firstVM, "vm,0,7,0,-1,0,3600000000000,0,0,0,0,0,0,0"), "invalid VM kind 7"},
		"vm duplicate id":      {withLine(firstVM+1, lines[firstVM]), "VM ids must be dense"},
		"vm shifted id":        {withLine(firstVM, "vm,5,0,0,-1,0,3600000000000,0,0,0,0,0,0,0"), "VM id 5, want 0"},
		"vm bad arrival":       {withLine(firstVM, "vm,0,0,0,-1,-5,3600000000000,0,0,0,0,0,0,0"), "negative VM arrival"},
		"vm out of order":      {withLine(firstVM, "vm,0,0,0,-1,500,3600000000000,0,0,0,0,0,0,0"), "must be sorted by arrival"},
		"vm bad lifetime":      {withLine(firstVM, "vm,0,0,0,-1,0,0,0,0,0,0,0,0,0"), "non-positive VM lifetime"},
		"vm unknown endpoint":  {withLine(firstVM, "vm,0,1,-1,99,0,3600000000000,0,0,0,0,0,0,0"), "undeclared endpoint 99"},
		"iaas vm endpoint":     {withLine(firstVM, "vm,0,0,3,2,0,3600000000000,0,0,0,0,0,0,0"), "IaaS VM 0 has endpoint 2, want -1"},
		"nan load field":       {withLine(firstVM, "vm,0,0,0,-1,0,3600000000000,NaN,0,0,0,0,0,0"), "non-finite value"},
		"inf rate field":       {withLine(2, "endpoint,0,5,1024,256,+Inf,0,0,0,0,1,2.5,100,3,0"), "non-finite value"},
		"v1 row with v2 count": {withLine(firstVM, strings.Join(strings.Split(lines[firstVM], ",")[:vmColsV1], ",")), "vm record has 13 fields, want 14"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadWorkloadCSV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "trace:") {
				t.Errorf("error %q is not wrapped with the trace: prefix", err)
			}
		})
	}
}

// TestReadVMsCSVRowNumbersAndDuplicates pins the uniform row-number contract
// of the flat VM reader (header is row 1) and duplicate-ID rejection.
func TestReadVMsCSVRowNumbersAndDuplicates(t *testing.T) {
	header := "id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n"
	vm := func(id int) string {
		return fmt.Sprintf("%d,0,0,-1,0,1000,0.5,0.5,0,0,0,9\n", id)
	}
	// A bad field on the second data row must be reported as row 3.
	bad := header + vm(1) + "x,0,0,-1,0,1000,0.5,0.5,0,0,0,9\n"
	if _, err := ReadVMsCSV(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Errorf("bad id on second data row: got %v, want row 3", err)
	}
	dup := header + vm(5) + vm(5)
	if _, err := ReadVMsCSV(strings.NewReader(dup)); err == nil || !strings.Contains(err.Error(), "duplicate VM id 5") {
		t.Errorf("duplicate VM id: got %v", err)
	}
	short := header + "1,0,0\n"
	if _, err := ReadVMsCSV(strings.NewReader(short)); err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Errorf("short row: got %v, want row 2", err)
	}
	reqBad := "id,customer,prompt,output,arrival_ns\n1,2,3,4,5\nx,2,3,4,5\n"
	if _, err := ReadRequestsCSV(strings.NewReader(reqBad)); err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Errorf("bad request id: got %v, want row 3", err)
	}
}

// TestWorkloadCSVReadsV1 pins backward compatibility with v1 files (recorded
// before time_warp existed): the v1 layout — no trailing time_scale column —
// still parses, with every pattern unscaled (TimeScale 0), and re-exports in
// the v2 layout that round-trips to the same workload.
func TestWorkloadCSVReadsV1(t *testing.T) {
	v1 := "tapas-workload,v1\n" +
		"config,40,0.5,3600000000000,1,3,0.92,0.8\n" +
		"endpoint,0,5,1024,256,0.25,0.65,1,0.25,0.05,42,2.5,100,7\n" +
		"vm,0,0,3,-1,0,3600000000000,0.3,0.4,0,0.1,0.05,9\n" +
		"vm,1,1,-1,0,600000000000,3600000000000,0,0,0,0,0,0\n"
	w, err := ReadWorkloadCSV(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.VMs) != 2 || len(w.Endpoints) != 1 {
		t.Fatalf("v1 parse: %d VMs / %d endpoints", len(w.VMs), len(w.Endpoints))
	}
	if w.VMs[0].Load.TimeScale != 0 || w.Endpoints[0].Rate.TimeScale != 0 {
		t.Error("v1 parse must leave TimeScale unset (0 = unscaled)")
	}
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, w); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "tapas-workload,v2\n") {
		t.Errorf("re-export must be v2, got %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	again, err := ReadWorkloadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, w) {
		t.Error("v1 workload changed across a v2 re-export round trip")
	}
	// A v1 row inside a v2 file (and vice versa) is rejected by field count,
	// covered in TestReadWorkloadCSVErrors.
}

// TestSaveLoadWorkloadCSV exercises the file-level helpers.
func TestSaveLoadWorkloadCSV(t *testing.T) {
	w := genWorkload(t, WorkloadConfig{
		Servers: 40, SaaSFraction: 0.4, Duration: 2 * time.Hour, Endpoints: 2, Seed: 11,
	})
	path := t.TempDir() + "/wl.csv"
	if err := SaveWorkloadCSV(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWorkloadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Error("workload differs after save/load")
	}
	if _, err := LoadWorkloadCSV(path + ".missing"); err == nil {
		t.Error("missing file must error")
	}
}
