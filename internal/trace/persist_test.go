package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/llm"
)

func TestVMsCSVRoundTrip(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Servers: 100, SaaSFraction: 0.5, Duration: 24 * time.Hour,
		Endpoints: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVMsCSV(&buf, w.VMs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVMsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w.VMs) {
		t.Fatalf("round trip lost VMs: %d vs %d", len(got), len(w.VMs))
	}
	for i := range got {
		if got[i] != w.VMs[i] {
			t.Fatalf("VM %d differs after round trip:\n%+v\n%+v", i, got[i], w.VMs[i])
		}
	}
	// Load patterns must evaluate identically after the round trip.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 7 * time.Hour
		if got[i].Load.At(at) != w.VMs[i].Load.At(at) {
			t.Fatalf("VM %d load pattern diverged after round trip", i)
		}
	}
}

func TestReadVMsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "a,b\n",
		"bad kind":    "id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n1,9,0,0,0,0,0,0,0,0,0,0\n",
		"bad number":  "id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\nx,0,0,0,0,0,0,0,0,0,0,0\n",
		"bad arrival": "id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n1,0,0,0,z,0,0,0,0,0,0,0\n",
	}
	for name, csv := range cases {
		if _, err := ReadVMsCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRequestsCSVRoundTrip(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Servers: 100, SaaSFraction: 0.5, Duration: 24 * time.Hour,
		Endpoints: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := w.Endpoints[0].Requests(0, 2*time.Minute, 1)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	var buf bytes.Buffer
	if err := WriteRequestsCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, got[i], reqs[i])
		}
	}
}

// TestReadRequestsCSVLegacyFiveColumns pins backward compatibility: streams
// archived before the endpoint column existed load with every request on
// endpoint 0.
func TestReadRequestsCSVLegacyFiveColumns(t *testing.T) {
	in := "id,customer,prompt,output,arrival_ns\n7,3,100,20,5000\n8,4,50,10,6000\n"
	got, err := ReadRequestsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []llm.Request{
		{ID: 7, Customer: 3, PromptTokens: 100, OutputTokens: 20, Arrival: 5000},
		{ID: 8, Customer: 4, PromptTokens: 50, OutputTokens: 10, Arrival: 6000},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d requests, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("request %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadRequestsCSVErrors(t *testing.T) {
	const header = "id,customer,endpoint,prompt,output,arrival_ns\n"
	const legacy = "id,customer,prompt,output,arrival_ns\n"
	cases := map[string]struct {
		in      string
		wantSub string
	}{
		"empty":             {"", "empty requests CSV"},
		"short row":         {header + "1,2,3\n", "row 2"},
		"bad id":            {header + "x,2,0,3,4,5\n", "row 2: id"},
		"bad customer":      {header + "1,x,0,3,4,5\n", "row 2: customer"},
		"bad endpoint":      {header + "1,2,x,3,4,5\n", "row 2: endpoint"},
		"negative endpoint": {header + "1,2,-1,3,4,5\n", "row 2: negative endpoint"},
		"bad prompt":        {header + "1,2,0,x,4,5\n", "row 2: prompt"},
		"bad output":        {header + "1,2,0,3,x,5\n", "row 2: output"},
		"bad arrival":       {header + "1,2,0,3,4,x\n", "row 2: arrival"},
		"wrong header":      {"a,b,c,d,e,f\n", `column 1 is "a", want "id"`},
		"legacy bad column": {"id,customer,prompt,endpoint,arrival_ns\n", `column 4 is "endpoint", want "output"`},
		"header count":      {"id,customer\n", "header has 2 columns, want 6"},
		"duplicate id":      {header + "1,2,0,3,4,5\n1,2,0,3,4,6\n", "row 3: duplicate request id 1"},
		"negative prompt":   {header + "1,2,0,-3,4,5\n", "row 2: negative token count"},
		"negative output":   {header + "1,2,0,3,-4,5\n", "row 2: negative token count"},
		"negative arrival":  {header + "1,2,0,3,4,-5\n", "row 2: negative arrival"},
		"unsorted arrival":  {header + "1,2,0,3,4,900\n2,2,0,3,4,100\n", "row 3: arrival 100ns before the previous request's 900ns"},
		"legacy bad prompt": {legacy + "1,2,x,4,5\n", "row 2: prompt"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadRequestsCSV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "trace:") {
				t.Errorf("error %q is not wrapped with the trace: prefix", err)
			}
		})
	}
}

// TestWriteRequestsCSVRejectsInvalid pins the writer side of the shared
// validation: a stream the reader would refuse is rejected at write time
// instead of being archived.
func TestWriteRequestsCSVRejectsInvalid(t *testing.T) {
	cases := map[string][]llm.Request{
		"negative prompt":  {{ID: 1, PromptTokens: -1, OutputTokens: 1}},
		"negative arrival": {{ID: 1, PromptTokens: 1, OutputTokens: 1, Arrival: -time.Second}},
		"unsorted": {
			{ID: 1, PromptTokens: 1, OutputTokens: 1, Arrival: time.Minute},
			{ID: 2, PromptTokens: 1, OutputTokens: 1, Arrival: time.Second},
		},
		"duplicate id": {
			{ID: 1, PromptTokens: 1, OutputTokens: 1, Arrival: time.Second},
			{ID: 1, PromptTokens: 1, OutputTokens: 1, Arrival: time.Minute},
		},
	}
	for name, reqs := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			err := WriteRequestsCSV(&buf, reqs)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), "trace:") {
				t.Errorf("error %q is not wrapped with the trace: prefix", err)
			}
		})
	}
}
