package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestVMsCSVRoundTrip(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Servers: 100, SaaSFraction: 0.5, Duration: 24 * time.Hour,
		Endpoints: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVMsCSV(&buf, w.VMs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVMsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w.VMs) {
		t.Fatalf("round trip lost VMs: %d vs %d", len(got), len(w.VMs))
	}
	for i := range got {
		if got[i] != w.VMs[i] {
			t.Fatalf("VM %d differs after round trip:\n%+v\n%+v", i, got[i], w.VMs[i])
		}
	}
	// Load patterns must evaluate identically after the round trip.
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 7 * time.Hour
		if got[i].Load.At(at) != w.VMs[i].Load.At(at) {
			t.Fatalf("VM %d load pattern diverged after round trip", i)
		}
	}
}

func TestReadVMsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "a,b\n",
		"bad kind":    "id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n1,9,0,0,0,0,0,0,0,0,0,0\n",
		"bad number":  "id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\nx,0,0,0,0,0,0,0,0,0,0,0\n",
		"bad arrival": "id,kind,customer,endpoint,arrival_ns,lifetime_ns,base,amp,phase,weekend_dip,noise,seed\n1,0,0,0,z,0,0,0,0,0,0,0\n",
	}
	for name, csv := range cases {
		if _, err := ReadVMsCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRequestsCSVRoundTrip(t *testing.T) {
	w, err := Generate(WorkloadConfig{
		Servers: 100, SaaSFraction: 0.5, Duration: 24 * time.Hour,
		Endpoints: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := w.Endpoints[0].Requests(0, 2*time.Minute, 1)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	var buf bytes.Buffer
	if err := WriteRequestsCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, got[i], reqs[i])
		}
	}
}

func TestReadRequestsCSVErrors(t *testing.T) {
	if _, err := ReadRequestsCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must error")
	}
	bad := "id,customer,prompt,output,arrival_ns\n1,2,3\n"
	if _, err := ReadRequestsCSV(strings.NewReader(bad)); err == nil {
		t.Error("short row must error")
	}
	bad = "id,customer,prompt,output,arrival_ns\nx,2,3,4,5\n"
	if _, err := ReadRequestsCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad id must error")
	}
}
