package trace

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

const azureHeader = "timestamp,endpoint,prompt_tokens,output_tokens\n"

// synthAzureCSV builds a deterministic two-endpoint request log with a clear
// diurnal peak: "chat" runs 10x hotter mid-window than at the edges, "code"
// is flat and light.
func synthAzureCSV(hours int) string {
	var sb strings.Builder
	sb.WriteString(azureHeader)
	for h := 0; h < hours; h++ {
		// chat: 2 requests/min at the peak hour, 1 every 5 minutes off-peak.
		perHour := 12
		if h == hours/2 {
			perHour = 120
		}
		for i := 0; i < perHour; i++ {
			sec := h*3600 + i*3600/perHour
			fmt.Fprintf(&sb, "%d,chat,%d,%d\n", sec, 800+i%100, 150+i%20)
			if i%6 == 0 {
				fmt.Fprintf(&sb, "%d,code,%d,%d\n", sec, 2000, 60)
			}
		}
	}
	return sb.String()
}

func TestReadAzureLLMCSVReconstruction(t *testing.T) {
	in := synthAzureCSV(6)
	wl, err := ReadAzureLLMCSV(strings.NewReader(in), AzureImportConfig{Servers: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Validate(); err != nil {
		t.Fatalf("imported workload invalid: %v", err)
	}
	if len(wl.Endpoints) != 2 {
		t.Fatalf("endpoints %d, want 2", len(wl.Endpoints))
	}
	if wl.Config.Servers != 80 || wl.Config.SaaSFraction != 1 {
		t.Errorf("config %+v: want 80 servers, all-SaaS", wl.Config)
	}
	if want := 6 * time.Hour; wl.Config.Duration != want {
		t.Errorf("window %v, want %v", wl.Config.Duration, want)
	}

	chat, code := wl.Endpoints[0], wl.Endpoints[1]
	// chat carries ~10x the tokens; the VM split follows the weights.
	if chat.NumVMs <= code.NumVMs {
		t.Errorf("chat got %d VMs, code %d; the hot endpoint must dominate", chat.NumVMs, code.NumVMs)
	}
	total := 0
	for _, ep := range wl.Endpoints {
		total += ep.NumVMs
	}
	occupied := 0.92 * float64(wl.Config.Servers)
	if want := int(occupied); total != want {
		t.Errorf("total SaaS VMs %d, want %d (servers × occupancy)", total, want)
	}
	if len(wl.VMs) != total {
		t.Errorf("VM records %d, want %d", len(wl.VMs), total)
	}

	// The fitted peak preserves the observed peak request rate exactly:
	// pattern value 1 × PeakRPSPerVM × NumVMs = max binned rate. The peak
	// hour spreads 120 chat requests evenly, 20 per 10-minute bin.
	if got, want := chat.PeakRPSPerVM*float64(chat.NumVMs), 20.0/600.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("chat peak RPS %v, want %v (20 requests per peak 10m bin)", got, want)
	}
	// Token means reproduce the log's averages.
	if chat.Work.AvgPromptTokens < 800 || chat.Work.AvgPromptTokens > 900 {
		t.Errorf("chat avg prompt %v, want in [800, 900]", chat.Work.AvgPromptTokens)
	}
	if code.Work.AvgPromptTokens != 2000 || code.Work.AvgOutputTokens != 60 {
		t.Errorf("code token means (%v, %v), want (2000, 60)", code.Work.AvgPromptTokens, code.Work.AvgOutputTokens)
	}

	// Determinism: same file, same config, same workload.
	again, err := ReadAzureLLMCSV(strings.NewReader(in), AzureImportConfig{Servers: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, wl) {
		t.Error("import is not deterministic")
	}
}

// TestReadAzureLLMCSVAbsoluteTimestamps covers the RFC 3339 and
// Azure-dataset forms; the first row anchors the epoch.
func TestReadAzureLLMCSVAbsoluteTimestamps(t *testing.T) {
	in := azureHeader +
		"2023-11-16 18:00:00.0000000,chat,512,128\n" +
		"2023-11-16 18:20:00.0000000,chat,1024,256\n" +
		"2023-11-16 19:00:00.0000000,chat,256,64\n"
	wl, err := ReadAzureLLMCSV(strings.NewReader(in), AzureImportConfig{Servers: 40})
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Hour + 10*time.Minute; wl.Config.Duration != want {
		t.Errorf("window %v, want %v (last request at +1h, 10m bins)", wl.Config.Duration, want)
	}

	rfc := azureHeader +
		"2024-01-01T00:00:00Z,chat,512,128\n" +
		"2024-01-01T00:30:00Z,chat,512,128\n"
	if _, err := ReadAzureLLMCSV(strings.NewReader(rfc), AzureImportConfig{Servers: 40}); err != nil {
		t.Errorf("RFC 3339 timestamps must parse: %v", err)
	}
}

func TestReadAzureLLMCSVErrors(t *testing.T) {
	cases := map[string]struct {
		in      string
		cfg     AzureImportConfig
		wantSub string
	}{
		"empty":           {"", AzureImportConfig{Servers: 40}, "empty"},
		"no rows":         {azureHeader, AzureImportConfig{Servers: 40}, "no request rows"},
		"wrong header":    {"time,endpoint,prompt_tokens,output_tokens\n", AzureImportConfig{Servers: 40}, `column 1 is "time"`},
		"header count":    {"timestamp,endpoint\n", AzureImportConfig{Servers: 40}, "header has 2 columns"},
		"bad timestamp":   {azureHeader + "noon,chat,1,1\n", AzureImportConfig{Servers: 40}, "row 2: timestamp"},
		"negative ts":     {azureHeader + "-5,chat,1,1\n", AzureImportConfig{Servers: 40}, "negative timestamp"},
		"unsorted":        {azureHeader + "10,chat,1,1\n5,chat,1,1\n", AzureImportConfig{Servers: 40}, "sorted by timestamp"},
		"mixed modes":     {azureHeader + "0,chat,1,1\n2024-01-01T00:00:00Z,chat,1,1\n", AzureImportConfig{Servers: 40}, "mixes absolute and relative"},
		"beyond window":   {azureHeader + "99999999999,chat,1,1\n", AzureImportConfig{Servers: 40}, "import window"},
		"negative tokens": {azureHeader + "0,chat,-1,1\n", AzureImportConfig{Servers: 40}, "negative token count"},
		"bad tokens":      {azureHeader + "0,chat,x,1\n", AzureImportConfig{Servers: 40}, "prompt_tokens"},
		"empty endpoint":  {azureHeader + "0,,1,1\n", AzureImportConfig{Servers: 40}, "empty endpoint name"},
		"no servers":      {azureHeader + "0,chat,1,1\n", AzureImportConfig{}, "non-positive server count"},
		"bad bin":         {azureHeader + "0,chat,1,1\n", AzureImportConfig{Servers: 40, Bin: time.Second}, "bin 1s out of"},
		"bad occupancy":   {azureHeader + "0,chat,1,1\n", AzureImportConfig{Servers: 40, Occupancy: 2}, "occupancy"},
		"fleet too small": {azureHeader + "0,a,1,1\n0,b,1,1\n0,c,1,1\n", AzureImportConfig{Servers: 2}, "fewer than the 3 endpoints"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadAzureLLMCSV(strings.NewReader(tc.in), tc.cfg)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "trace:") {
				t.Errorf("error %q is not wrapped with the trace: prefix", err)
			}
		})
	}
}

// TestAzureImportRoundTrip proves the reconstructed workload archives
// exactly: the CSV round trip reproduces the imported struct bit for bit.
func TestAzureImportRoundTrip(t *testing.T) {
	wl, err := ReadAzureLLMCSV(strings.NewReader(synthAzureCSV(4)), AzureImportConfig{Servers: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkloadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wl) {
		t.Error("imported workload changed across the CSV round trip")
	}
}

// TestAzureImportFixture pins the committed miniature fixture: it must
// import cleanly with the documented defaults and keep its endpoint count.
func TestAzureImportFixture(t *testing.T) {
	wl, err := LoadAzureLLMCSV("../../examples/traces/azure-llm-sample.csv", AzureImportConfig{Servers: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Endpoints) != 3 {
		t.Errorf("fixture endpoints %d, want 3 (chat, code, search)", len(wl.Endpoints))
	}
	if err := wl.Validate(); err != nil {
		t.Errorf("fixture import invalid: %v", err)
	}
	if wl.Config.Duration < time.Hour {
		t.Errorf("fixture window %v, want at least an hour", wl.Config.Duration)
	}
}
