package trace

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/tapas-sim/tapas/internal/llm"
)

// VMKind distinguishes opaque customer VMs from provider-managed inference
// VMs (§3.2).
type VMKind int

const (
	IaaS VMKind = iota
	SaaS
)

func (k VMKind) String() string {
	if k == SaaS {
		return "SaaS"
	}
	return "IaaS"
}

// VMSpec is one GPU VM in the arrival trace. Each VM occupies a full server
// (§3.1: "these VMs occupy a full server").
type VMSpec struct {
	ID       int
	Kind     VMKind
	Customer int // IaaS customer identity (shared load shapes per customer)
	Endpoint int // SaaS endpoint index; -1 for IaaS
	Arrival  time.Duration
	Lifetime time.Duration
	Load     LoadPattern // IaaS GPU load; unused for SaaS (requests drive it)
}

// Active reports whether the VM exists at time t. Pointer receiver: the
// spec embeds a LoadPattern and the simulator asks per placed VM per tick —
// a value receiver would copy the whole struct each call.
func (v *VMSpec) Active(t time.Duration) bool {
	return t >= v.Arrival && t < v.Arrival+v.Lifetime
}

// EndpointSpec is one SaaS inference endpoint: a set of VMs serving one
// model behind a load balancer (§3.2).
type EndpointSpec struct {
	ID            int
	NumVMs        int
	Work          llm.Workload
	Rate          LoadPattern // demand shape over time
	PeakRPSPerVM  float64     // requests/s per VM at Rate == 1
	CustomerCount int
	Seed          uint64
}

// DemandTokens returns the aggregate (prompt, output) token demand of the
// endpoint over a tick starting at t — the fluid-simulation view of the
// request stream.
func (e EndpointSpec) DemandTokens(t, tick time.Duration) (prompt, output float64) {
	rps := e.PeakRPSPerVM * float64(e.NumVMs) * e.Rate.At(t)
	n := rps * tick.Seconds()
	return n * e.Work.AvgPromptTokens, n * e.Work.AvgOutputTokens
}

// SampleCustomers returns k Zipf-distributed customer IDs active around
// time t, used by routers that apply KV-cache affinity to fluid demand.
func (e EndpointSpec) SampleCustomers(t time.Duration, k int) []int {
	rng := rand.New(rand.NewPCG(e.Seed, uint64(t/(10*time.Second))))
	out := make([]int, k)
	for i := range out {
		out[i] = zipfSample(rng, e.CustomerCount)
	}
	return out
}

// Requests generates the individual request stream in [from, to) for
// fine-grained simulation: Poisson arrivals at the endpoint rate, lognormal
// token counts, Zipf customers.
func (e EndpointSpec) Requests(from, to time.Duration, seed uint64) []llm.Request {
	rng := rand.New(rand.NewPCG(e.Seed, seed))
	var out []llm.Request
	id := int64(e.ID) << 32
	t := from
	for t < to {
		rps := e.PeakRPSPerVM * float64(e.NumVMs) * e.Rate.At(t)
		if rps <= 0 {
			t += time.Second
			continue
		}
		gap := rng.ExpFloat64() / rps
		t += time.Duration(gap * float64(time.Second))
		if t >= to {
			break
		}
		prompt := int(lognormal(rng, math.Log(e.Work.AvgPromptTokens)-0.5, 1.0))
		output := int(lognormal(rng, math.Log(e.Work.AvgOutputTokens)-0.32, 0.8))
		out = append(out, llm.Request{
			ID:           id,
			Customer:     zipfSample(rng, e.CustomerCount),
			Endpoint:     e.ID,
			PromptTokens: clampInt(prompt, 16, 8192),
			OutputTokens: clampInt(output, 8, 2048),
			Arrival:      t,
		})
		id++
	}
	return out
}

func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// zipfSample draws from a Zipf(s≈1.1) distribution over [0, n) using
// inverse-CDF on the harmonic weights; cheap approximation adequate for
// affinity skew.
func zipfSample(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Weight(i) ∝ 1/(i+1)^1.1; invert via rejection-free approximation:
	// draw u and walk a geometric-ish index. For modest n a direct inverse
	// using the continuous approximation is fine.
	u := rng.Float64()
	// CDF of continuous pareto-like density over [1, n+1).
	s := 0.1 // exponent − 1
	x := math.Pow(1-u*(1-math.Pow(float64(n+1), -s)), -1/s)
	idx := int(x) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// WorkloadConfig parameterizes workload generation.
type WorkloadConfig struct {
	Servers      int     // cluster capacity in servers (one VM per server)
	SaaSFraction float64 // fraction of VMs that are SaaS (paper: 50/50 mix)
	Duration     time.Duration
	Endpoints    int // number of SaaS endpoints (paper: 10)
	Seed         uint64
	// Occupancy is the target fraction of servers hosting a VM (default 0.92).
	Occupancy float64
	// DemandScale scales SaaS request rates relative to fleet serving
	// capacity (default 0.8: loaded endpoints whose diurnal peaks approach
	// instance saturation, as production endpoints are sized to do).
	DemandScale float64
}

// Workload is a generated cluster workload.
type Workload struct {
	Config    WorkloadConfig
	VMs       []VMSpec
	Endpoints []EndpointSpec
}

// Validate checks the structural invariants every consumer of a workload
// relies on: the engine indexes VM and endpoint state positionally
// (State.VMs[id], Workload.Endpoints[id]) and admits arrivals through a
// monotone cursor, so IDs must be dense in order and arrivals sorted — a
// shifted ID would remove the wrong VM at expiry, an out-of-order arrival
// would be admitted late. ReadWorkloadCSV enforces the same invariants row by
// row; Validate covers workloads built programmatically (imports, transforms,
// replay of in-memory traces).
func (w *Workload) Validate() error {
	if w.Config.Servers <= 0 {
		return fmt.Errorf("trace: workload has non-positive server count %d", w.Config.Servers)
	}
	if w.Config.Duration < 0 {
		return fmt.Errorf("trace: workload has negative duration %v", w.Config.Duration)
	}
	if len(w.VMs) == 0 {
		return fmt.Errorf("trace: workload has no VMs")
	}
	for i, ep := range w.Endpoints {
		if ep.ID != i {
			return fmt.Errorf("trace: endpoint %d has id %d; endpoint ids must be dense 0..n-1 in order", i, ep.ID)
		}
		if ep.NumVMs < 0 {
			return fmt.Errorf("trace: endpoint %d has negative num_vms %d", i, ep.NumVMs)
		}
	}
	for i, vm := range w.VMs {
		if vm.ID != i {
			return fmt.Errorf("trace: VM %d has id %d; VM ids must be dense 0..n-1 in order", i, vm.ID)
		}
		if vm.Kind != IaaS && vm.Kind != SaaS {
			return fmt.Errorf("trace: VM %d has invalid kind %d", i, int(vm.Kind))
		}
		if i > 0 && vm.Arrival < w.VMs[i-1].Arrival {
			return fmt.Errorf("trace: VM %d arrives at %v, before VM %d at %v; VMs must be sorted by arrival", i, vm.Arrival, i-1, w.VMs[i-1].Arrival)
		}
		if vm.Arrival < 0 {
			return fmt.Errorf("trace: VM %d has negative arrival %v", i, vm.Arrival)
		}
		if vm.Lifetime <= 0 {
			return fmt.Errorf("trace: VM %d has non-positive lifetime %v", i, vm.Lifetime)
		}
		if vm.Kind == SaaS && (vm.Endpoint < 0 || vm.Endpoint >= len(w.Endpoints)) {
			return fmt.Errorf("trace: SaaS VM %d references undeclared endpoint %d", i, vm.Endpoint)
		}
		if vm.Kind == IaaS && vm.Endpoint != -1 {
			return fmt.Errorf("trace: IaaS VM %d has endpoint %d, want -1", i, vm.Endpoint)
		}
	}
	return nil
}

// Generate builds the full VM arrival trace and endpoint set.
func Generate(cfg WorkloadConfig) (*Workload, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("trace: non-positive server count %d", cfg.Servers)
	}
	if cfg.SaaSFraction < 0 || cfg.SaaSFraction > 1 {
		return nil, fmt.Errorf("trace: SaaS fraction %v out of [0,1]", cfg.SaaSFraction)
	}
	if cfg.Occupancy == 0 {
		cfg.Occupancy = 0.92
	}
	if cfg.DemandScale == 0 {
		cfg.DemandScale = 0.8
	}
	if cfg.Endpoints <= 0 {
		cfg.Endpoints = 10
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x3c0ffee))
	w := &Workload{Config: cfg}

	target := int(float64(cfg.Servers) * cfg.Occupancy)
	saasCount := int(float64(target) * cfg.SaaSFraction)
	iaasCount := target - saasCount

	// SaaS endpoints: VM counts spanning 23–100 (paper §5.1), scaled down
	// proportionally if the cluster is small.
	sizes := endpointSizes(cfg.Endpoints, saasCount, rng)
	for i, n := range sizes {
		w.Endpoints = append(w.Endpoints, EndpointSpec{
			ID:     i,
			NumVMs: n,
			Work:   llm.DefaultWorkload(),
			Rate: LoadPattern{
				Base:       0.25,
				DiurnalAmp: 0.65,
				PhaseHours: float64(rng.IntN(6)) - 3,
				WeekendDip: 0.25,
				NoiseAmp:   0.05,
				Seed:       cfg.Seed ^ uint64(i)*0x9e37,
			},
			PeakRPSPerVM:  cfg.DemandScale * 3.2, // ≈ saturating one instance at peak when 1.0
			CustomerCount: 2000 + rng.IntN(8000),
			Seed:          cfg.Seed ^ (uint64(i+1) << 20),
		})
	}

	// VM population: initial residents plus arrivals over the window so that
	// occupancy stays near target as lifetimes expire.
	id := 0
	addVM := func(kind VMKind, arrival time.Duration, endpoint int) {
		spec := VMSpec{
			ID:       id,
			Kind:     kind,
			Arrival:  arrival,
			Lifetime: sampleLifetime(rng),
			Endpoint: -1,
		}
		if kind == IaaS {
			spec.Customer = rng.IntN(40) // 40 distinct IaaS customers
			spec.Load = iaasLoad(rng, cfg.Seed, spec.Customer, id)
		} else {
			spec.Endpoint = endpoint
			spec.Customer = -1
		}
		w.VMs = append(w.VMs, spec)
		id++
	}
	for i := 0; i < iaasCount; i++ {
		addVM(IaaS, 0, -1)
	}
	for ep, n := range sizes {
		for i := 0; i < n; i++ {
			addVM(SaaS, 0, ep)
		}
	}
	// Ongoing arrivals replace departures: expected departures per day ≈
	// population / mean lifetime.
	meanLifetimeDays := 25.0
	arrivalsPerDay := float64(target) / meanLifetimeDays
	days := cfg.Duration.Hours() / 24
	extra := int(arrivalsPerDay * days)
	for i := 0; i < extra; i++ {
		at := time.Duration(rng.Float64() * float64(cfg.Duration))
		if rng.Float64() < cfg.SaaSFraction {
			addVM(SaaS, at, rng.IntN(len(sizes)))
		} else {
			addVM(IaaS, at, -1)
		}
	}
	sort.Slice(w.VMs, func(i, j int) bool { return w.VMs[i].Arrival < w.VMs[j].Arrival })
	for i := range w.VMs {
		w.VMs[i].ID = i
	}
	return w, nil
}

// endpointSizes splits saasCount VMs across n endpoints with the skew of
// Fig. 12b: a few large endpoints hold most VMs.
func endpointSizes(n, saasCount int, rng *rand.Rand) []int {
	if n <= 0 || saasCount <= 0 {
		return nil
	}
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -0.8) // heavy head
		total += weights[i]
	}
	sizes := make([]int, n)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(saasCount) * weights[i] / total)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Adjust the largest endpoint to hit the target exactly (when possible).
	sizes[0] += saasCount - assigned
	if sizes[0] < 1 {
		sizes[0] = 1
	}
	return sizes
}

// sampleLifetime draws a VM lifetime matching Fig. 12a: most VMs are
// long-lived (> 60% beyond two weeks).
func sampleLifetime(rng *rand.Rand) time.Duration {
	if rng.Float64() < 0.38 {
		// Short-lived: exponential, mean 4 days.
		d := rng.ExpFloat64() * 4
		if d < 0.04 {
			d = 0.04 // at least ~1 hour
		}
		return time.Duration(d * 24 * float64(time.Hour))
	}
	// Long-lived: uniform 2–13 weeks.
	d := 14 + rng.Float64()*77
	return time.Duration(d * 24 * float64(time.Hour))
}

// iaasLoad builds a diurnal load pattern for an IaaS VM; VMs of the same
// customer share phase and base shape (the predictability TAPAS exploits for
// customer-based power templates, Fig. 14b).
func iaasLoad(rng *rand.Rand, seed uint64, customer, vmID int) LoadPattern {
	// Business-hours peaks are mostly aligned across customers (Fig. 13);
	// phases spread only a few hours.
	custPhase := float64(customer%7) - 3
	return LoadPattern{
		Base:       0.20 + 0.35*HashUnit(seed, uint64(customer)*31),
		DiurnalAmp: 0.30 + 0.50*HashUnit(seed, uint64(customer)*37),
		PhaseHours: custPhase,
		WeekendDip: 0.2 * HashUnit(seed, uint64(customer)*41),
		NoiseAmp:   0.04 + 0.05*rng.Float64(),
		Seed:       seed ^ uint64(vmID)<<13,
	}
}
