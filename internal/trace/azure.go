package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"strconv"
	"time"

	"github.com/tapas-sim/tapas/internal/llm"
)

// Azure-LLM-inference-style trace ingestion. The paper evaluates TAPAS
// against production Azure traces; the public Azure LLM inference datasets
// record one request per row with a timestamp, the endpoint (model
// deployment) it hit, and its prompt/output token counts. ReadAzureLLMCSV
// reconstructs a replayable Workload from that request log: per-endpoint
// demand is binned over the trace window, the binned rates are fitted to the
// simulator's diurnal LoadPattern, and a SaaS fleet sized to the target
// cluster is allocated across endpoints in proportion to their peak token
// throughput.
//
// Expected CSV layout (header row required, names exact):
//
//	timestamp,endpoint,prompt_tokens,output_tokens
//
// timestamp is either a number of seconds since trace start ("12.75") or an
// absolute time (RFC 3339, or the Azure dataset's "2006-01-02 15:04:05.999"
// form; the first row anchors the epoch). The first data row fixes which of
// the two forms the file uses — mixing them is rejected. Rows must be sorted
// by timestamp (the published datasets are), token counts must be
// non-negative, and endpoint names non-empty.

// AzureImportConfig parameterizes the demand reconstruction.
type AzureImportConfig struct {
	// Servers is the cluster the reconstructed workload targets (required;
	// becomes Workload.Config.Servers, which replay validates against the
	// scenario layout).
	Servers int
	// Occupancy is the fraction of servers hosting a SaaS VM (default 0.92,
	// like the synthetic generator). The resulting VM count is split across
	// endpoints in proportion to peak token throughput, one VM minimum each.
	Occupancy float64
	// Bin is the demand-reconstruction bin width (default 10m; bounds
	// [1m, 24h]). Narrower bins resolve sharper bursts but need denser logs.
	Bin time.Duration
	// Seed feeds the per-endpoint customer-affinity generators of the
	// reconstructed endpoints.
	Seed uint64
}

// Import limits: a malformed (or adversarial) file cannot make the importer
// allocate unbounded bin tables or request logs.
const (
	azureMaxWindow    = 35 * 24 * time.Hour
	azureMaxEndpoints = 256
	azureMaxRequests  = 1 << 22
)

// azureCustomerCount is the per-endpoint customer population of reconstructed
// endpoints. The public datasets carry no tenant column, so imported requests
// draw Zipf-distributed customers from this population — the same affinity
// skew the synthetic generator produces.
const azureCustomerCount = 2000

// azureCustomerSalt decorrelates the imported-request customer stream from
// the per-endpoint generators seeded off the same cfg.Seed.
const azureCustomerSalt = 0xa27e

// Azure dataset timestamps: "2023-11-16 18:01:51.1627340".
const azureTimeLayout = "2006-01-02 15:04:05.999999999"

// azureEndpoint accumulates one endpoint's request log during the streaming
// parse. Endpoint IDs are assigned densely in order of first appearance;
// names exist only in the source file (the simulator addresses endpoints by
// ID).
type azureEndpoint struct {
	requests  int
	promptTok int64
	outputTok int64
	binCount  []int // requests per bin, grown as the window extends
}

// ReadAzureLLMCSV ingests an Azure-LLM-inference-style request log and
// reconstructs a replayable Workload via binned demand reconstruction. The
// reader streams and validates every row as it arrives; errors carry the
// 1-based CSV row (the header is row 1) and the trace: prefix.
func ReadAzureLLMCSV(r io.Reader, cfg AzureImportConfig) (*Workload, error) {
	w, _, err := readAzureLLMCSV(r, cfg, false)
	return w, err
}

// ReadAzureLLMCSVRequests is ReadAzureLLMCSV plus the request log itself:
// every source row becomes one llm.Request (dense sequential IDs, the dense
// first-appearance endpoint ID, arrival relative to trace start, and a
// Zipf-sampled customer — the datasets carry no tenant column). The log pairs
// with the reconstructed Workload for request-level replay
// (sim.Scenario.Requests): the workload sizes the fleet, the log drives the
// per-request queues.
func ReadAzureLLMCSVRequests(r io.Reader, cfg AzureImportConfig) (*Workload, []llm.Request, error) {
	return readAzureLLMCSV(r, cfg, true)
}

func readAzureLLMCSV(r io.Reader, cfg AzureImportConfig, collect bool) (*Workload, []llm.Request, error) {
	if cfg.Servers <= 0 {
		return nil, nil, fmt.Errorf("trace: azure import: non-positive server count %d", cfg.Servers)
	}
	if cfg.Occupancy == 0 {
		cfg.Occupancy = 0.92
	}
	if cfg.Occupancy < 0 || cfg.Occupancy > 1 {
		return nil, nil, fmt.Errorf("trace: azure import: occupancy %v out of (0,1]", cfg.Occupancy)
	}
	if cfg.Bin == 0 {
		cfg.Bin = 10 * time.Minute
	}
	if cfg.Bin < time.Minute || cfg.Bin > 24*time.Hour {
		return nil, nil, fmt.Errorf("trace: azure import: bin %v out of [1m, 24h]", cfg.Bin)
	}

	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	const wantCols = 4
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("trace: azure CSV is empty")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("trace: azure CSV row 1: %w", err)
	}
	want := [wantCols]string{"timestamp", "endpoint", "prompt_tokens", "output_tokens"}
	if len(header) != wantCols {
		return nil, nil, fmt.Errorf("trace: azure CSV row 1: header has %d columns, want %d", len(header), wantCols)
	}
	for i, name := range want {
		if header[i] != name {
			return nil, nil, fmt.Errorf("trace: azure CSV row 1: column %d is %q, want %q", i+1, header[i], name)
		}
	}

	var (
		endpoints []*azureEndpoint
		byName    = map[string]int{}
		row       = 1
		// absolute / relative timestamp mode, fixed by the first data row
		modeSet  bool
		absolute bool
		epoch    time.Time
		lastRel  time.Duration = -1
		// request-log passthrough (collect mode only)
		reqs    []llm.Request
		custRNG = rand.New(rand.NewPCG(cfg.Seed, azureCustomerSalt))
	)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		row++
		if err != nil {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: %w", row, err)
		}

		rel, isAbs, ts, err := parseAzureTimestamp(rec[0], epoch)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: timestamp: %w", row, err)
		}
		if !modeSet {
			modeSet, absolute = true, isAbs
			if isAbs {
				epoch = ts
				rel = 0
			}
		} else if isAbs != absolute {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: timestamp %q mixes absolute and relative-seconds forms within one file", row, rec[0])
		}
		if rel < 0 {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: negative timestamp %q", row, rec[0])
		}
		if rel < lastRel {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: timestamp %q before the previous row's (rows must be sorted by timestamp)", row, rec[0])
		}
		if rel > azureMaxWindow {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: timestamp %q is %v past trace start, beyond the %v import window", row, rec[0], rel, azureMaxWindow)
		}
		lastRel = rel

		name := rec[1]
		if name == "" {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: empty endpoint name", row)
		}
		prompt, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: prompt_tokens: %w", row, err)
		}
		output, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: output_tokens: %w", row, err)
		}
		if prompt < 0 || output < 0 {
			return nil, nil, fmt.Errorf("trace: azure CSV row %d: negative token count (%d, %d)", row, prompt, output)
		}

		idx, ok := byName[name]
		if !ok {
			if len(endpoints) >= azureMaxEndpoints {
				return nil, nil, fmt.Errorf("trace: azure CSV row %d: more than %d distinct endpoints", row, azureMaxEndpoints)
			}
			idx = len(endpoints)
			byName[name] = idx
			endpoints = append(endpoints, &azureEndpoint{})
		}
		ep := endpoints[idx]
		ep.requests++
		ep.promptTok += int64(prompt)
		ep.outputTok += int64(output)
		bin := int(rel / cfg.Bin)
		for len(ep.binCount) <= bin {
			ep.binCount = append(ep.binCount, 0)
		}
		ep.binCount[bin]++

		if collect {
			if len(reqs) >= azureMaxRequests {
				return nil, nil, fmt.Errorf("trace: azure CSV row %d: more than %d requests", row, azureMaxRequests)
			}
			reqs = append(reqs, llm.Request{
				ID:           int64(len(reqs)),
				Customer:     zipfSample(custRNG, azureCustomerCount),
				Endpoint:     idx,
				PromptTokens: prompt,
				OutputTokens: output,
				Arrival:      rel,
			})
		}
	}
	if len(endpoints) == 0 {
		return nil, nil, fmt.Errorf("trace: azure CSV has no request rows")
	}
	w, err := reconstructAzureWorkload(endpoints, lastRel, cfg)
	if err != nil {
		return nil, nil, err
	}
	return w, reqs, nil
}

// parseAzureTimestamp parses one timestamp field: a float number of seconds
// since trace start, or an absolute RFC 3339 / Azure-dataset time (relative
// to epoch once it is anchored).
func parseAzureTimestamp(s string, epoch time.Time) (rel time.Duration, isAbs bool, ts time.Time, err error) {
	if f, ferr := strconv.ParseFloat(s, 64); ferr == nil {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, false, time.Time{}, fmt.Errorf("non-finite seconds value %q", s)
		}
		if f < 0 {
			// Any negative is negative; avoid converting extreme values.
			return -1, false, time.Time{}, nil
		}
		// Bound before converting: a huge float would overflow Duration.
		if f > azureMaxWindow.Seconds()+1 {
			return 0, false, time.Time{}, fmt.Errorf("seconds value %q outside the import window", s)
		}
		return time.Duration(f * float64(time.Second)), false, time.Time{}, nil
	}
	for _, layout := range []string{time.RFC3339Nano, azureTimeLayout} {
		if t, terr := time.Parse(layout, s); terr == nil {
			if epoch.IsZero() {
				return 0, true, t, nil
			}
			d := t.Sub(epoch)
			return d, true, t, nil
		}
	}
	return 0, false, time.Time{}, fmt.Errorf("invalid timestamp %q (want seconds since start, RFC 3339, or %q)", s, azureTimeLayout)
}

// reconstructAzureWorkload fits the binned per-endpoint request log to the
// simulator's workload model: diurnal LoadPatterns matched to the observed
// rate shape, peak request rates preserved exactly, and a SaaS fleet split
// across endpoints by peak token throughput.
func reconstructAzureWorkload(eps []*azureEndpoint, lastRel time.Duration, cfg AzureImportConfig) (*Workload, error) {
	totalBins := int(lastRel/cfg.Bin) + 1
	duration := time.Duration(totalBins) * cfg.Bin

	targetVMs := int(float64(cfg.Servers) * cfg.Occupancy)
	if targetVMs < len(eps) {
		return nil, fmt.Errorf("trace: azure import: %d servers at occupancy %.2f fit %d SaaS VMs, fewer than the %d endpoints in the trace",
			cfg.Servers, cfg.Occupancy, targetVMs, len(eps))
	}

	binSec := cfg.Bin.Seconds()
	type fit struct {
		peakRPS   float64 // highest binned request rate (requests/s)
		base      float64 // min/peak binned rate, the pattern floor
		phase     float64 // PhaseHours aligning the pattern peak to the data
		avgPrompt float64
		avgOutput float64
		weight    float64 // peak token throughput, the VM-allocation weight
	}
	fits := make([]fit, len(eps))
	for i, ep := range eps {
		peak, minRate, peakBin := 0.0, math.Inf(1), 0
		for b := 0; b < totalBins; b++ {
			r := 0.0
			if b < len(ep.binCount) {
				r = float64(ep.binCount[b]) / binSec
			}
			if r > peak {
				peak, peakBin = r, b
			}
			if r < minRate {
				minRate = r
			}
		}
		f := fit{
			peakRPS:   peak,
			base:      minRate / peak, // peak > 0: every endpoint has ≥1 request
			avgPrompt: math.Max(1, float64(ep.promptTok)/float64(ep.requests)),
			avgOutput: math.Max(1, float64(ep.outputTok)/float64(ep.requests)),
		}
		// LoadPattern peaks at hour 15+PhaseHours; align it with the
		// hour-of-day of the hottest bin.
		peakHour := math.Mod((time.Duration(peakBin)*cfg.Bin + cfg.Bin/2).Hours(), 24)
		f.phase = peakHour - 15
		f.weight = f.peakRPS * (f.avgPrompt + f.avgOutput)
		fits[i] = f
	}

	// VM allocation: proportional to peak token throughput, one VM minimum,
	// with the heaviest endpoint absorbing the rounding remainder (mirroring
	// the synthetic generator's endpointSizes).
	totalWeight := 0.0
	heaviest := 0
	for i, f := range fits {
		totalWeight += f.weight
		if f.weight > fits[heaviest].weight {
			heaviest = i
		}
	}
	sizes := make([]int, len(eps))
	assigned := 0
	for i, f := range fits {
		sizes[i] = int(float64(targetVMs) * f.weight / totalWeight)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	sizes[heaviest] += targetVMs - assigned
	if sizes[heaviest] < 1 {
		sizes[heaviest] = 1
	}

	totalVMs := 0
	w := &Workload{}
	for i := range eps {
		f := fits[i]
		w.Endpoints = append(w.Endpoints, EndpointSpec{
			ID:     i,
			NumVMs: sizes[i],
			Work:   llm.Workload{AvgPromptTokens: f.avgPrompt, AvgOutputTokens: f.avgOutput},
			Rate: LoadPattern{
				Base:       f.base,
				DiurnalAmp: 1 - f.base,
				PhaseHours: f.phase,
			},
			PeakRPSPerVM:  f.peakRPS / float64(sizes[i]),
			CustomerCount: 2000,
			Seed:          cfg.Seed ^ (uint64(i+1) << 20),
		})
		for j := 0; j < sizes[i]; j++ {
			w.VMs = append(w.VMs, VMSpec{
				ID:       totalVMs,
				Kind:     SaaS,
				Customer: -1,
				Endpoint: i,
				Arrival:  0,
				Lifetime: duration,
			})
			totalVMs++
		}
	}
	w.Config = WorkloadConfig{
		Servers:      cfg.Servers,
		SaaSFraction: 1,
		Duration:     duration,
		Endpoints:    len(eps),
		Seed:         cfg.Seed,
		Occupancy:    float64(totalVMs) / float64(cfg.Servers),
		DemandScale:  1,
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("trace: azure import produced an invalid workload: %w", err)
	}
	return w, nil
}

// LoadAzureLLMCSV reads an Azure-style request log from a file.
func LoadAzureLLMCSV(path string, cfg AzureImportConfig) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	w, err := ReadAzureLLMCSV(f, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return w, nil
}

// LoadAzureLLMCSVRequests reads an Azure-style request log from a file and
// returns both the reconstructed Workload and the per-request replay log
// (see ReadAzureLLMCSVRequests).
func LoadAzureLLMCSVRequests(path string, cfg AzureImportConfig) (*Workload, []llm.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	w, reqs, err := ReadAzureLLMCSVRequests(f, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return w, reqs, nil
}
