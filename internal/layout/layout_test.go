package layout

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDefaultDimensions(t *testing.T) {
	dc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := dc.Config
	wantRows := cfg.Aisles * 2
	wantRacks := wantRows * cfg.RacksPerRow
	wantServers := wantRacks * cfg.ServersPerRack
	if len(dc.Aisles) != cfg.Aisles {
		t.Errorf("aisles = %d, want %d", len(dc.Aisles), cfg.Aisles)
	}
	if len(dc.Rows) != wantRows {
		t.Errorf("rows = %d, want %d", len(dc.Rows), wantRows)
	}
	if len(dc.Racks) != wantRacks {
		t.Errorf("racks = %d, want %d", len(dc.Racks), wantRacks)
	}
	if len(dc.Servers) != wantServers {
		t.Errorf("servers = %d, want %d", len(dc.Servers), wantServers)
	}
	if len(dc.UPSes) != NumUPS {
		t.Errorf("UPSes = %d, want %d", len(dc.UPSes), NumUPS)
	}
}

func TestNewSmallIsTwoRows80Servers(t *testing.T) {
	dc, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(dc.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(dc.Rows))
	}
	if len(dc.Servers) != 80 {
		t.Errorf("servers = %d, want 80 (paper's real-cluster scale)", len(dc.Servers))
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := DefaultConfig()
	bad.Aisles = 0
	if _, err := New(bad); err == nil {
		t.Error("expected error for zero aisles")
	}
	bad = DefaultConfig()
	bad.ServersPerRack = -1
	if _, err := New(bad); err == nil {
		t.Error("expected error for negative servers per rack")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Servers {
		if a.Servers[i].InletOffsetC != b.Servers[i].InletOffsetC {
			t.Fatalf("server %d inlet offset differs across identical seeds", i)
		}
		for g := range a.Servers[i].GPUTempGainC {
			if a.Servers[i].GPUTempGainC[g] != b.Servers[i].GPUTempGainC[g] {
				t.Fatalf("server %d GPU %d gain differs across identical seeds", i, g)
			}
		}
	}
}

func TestSeedChangesHeterogeneity(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := New(cfg)
	cfg.Seed = 1234
	b, _ := New(cfg)
	same := true
	for i := range a.Servers {
		if a.Servers[i].InletOffsetC != b.Servers[i].InletOffsetC {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical heterogeneity")
	}
}

func TestSpatialSpreadMatchesPaper(t *testing.T) {
	dc, _ := New(DefaultConfig())
	// Rack-position spread within a row should be on the order of 1–2.5 °C
	// (Fig. 4: up to 2 °C), and end racks warmer than front racks.
	row := dc.Rows[0]
	first := row.Racks[0].Servers[0].InletOffsetC
	last := row.Racks[len(row.Racks)-1].Servers[0].InletOffsetC
	if last <= first {
		t.Errorf("end rack (%.2f) not warmer than front rack (%.2f)", last, first)
	}
	if d := last - first; d < 0.4 || d > 3.0 {
		t.Errorf("rack spread = %.2f °C, want within (0.4, 3.0)", d)
	}
}

func TestGPUHeterogeneitySpread(t *testing.T) {
	dc, _ := New(DefaultConfig())
	// At full load the 8 GPUs of one server should spread by several °C,
	// up to ~10 °C (Fig. 8), and odd GPU numbers should be hotter on
	// average across the fleet (Fig. 9 shows even IDs cooler).
	maxSpread := 0.0
	oddSum, evenSum := 0.0, 0.0
	n := 0
	for _, s := range dc.Servers {
		lo, hi := math.Inf(1), math.Inf(-1)
		for g, gain := range s.GPUTempGainC {
			if gain < lo {
				lo = gain
			}
			if gain > hi {
				hi = gain
			}
			if (g+1)%2 == 1 {
				oddSum += gain
			} else {
				evenSum += gain
			}
		}
		if hi-lo > maxSpread {
			maxSpread = hi - lo
		}
		n++
	}
	if maxSpread < 5 || maxSpread > 12 {
		t.Errorf("max intra-server gain spread = %.1f °C, want within [5, 12]", maxSpread)
	}
	if oddSum <= evenSum {
		t.Error("odd-numbered GPUs should be hotter than even-numbered on aggregate")
	}
}

func TestRowPowerProvisioning(t *testing.T) {
	dc, _ := New(DefaultConfig())
	spec := Spec(dc.Config.GPU)
	for _, row := range dc.Rows {
		want := float64(len(row.Servers)) * spec.ServerTDPW * (1 + dc.Config.PowerMargin)
		if math.Abs(row.ProvPowerW-want) > 1 {
			t.Errorf("row %d provisioned power = %v, want %v", row.ID, row.ProvPowerW, want)
		}
	}
}

func TestAisleAirflowProvisioning(t *testing.T) {
	dc, _ := New(DefaultConfig())
	spec := Spec(dc.Config.GPU)
	design := spec.AirflowIdleCFM + (spec.AirflowMaxCFM-spec.AirflowIdleCFM)*0.85
	for _, aisle := range dc.Aisles {
		n := float64(len(aisle.Servers()))
		want := n * design * (1 + dc.Config.AirflowMargin)
		if math.Abs(aisle.ProvAirflowCFM-want) > 1 {
			t.Errorf("aisle %d airflow = %v, want %v", aisle.ID, aisle.ProvAirflowCFM, want)
		}
		// Provisioned below the theoretical all-fans-at-max aggregate but
		// above the idle aggregate.
		if aisle.ProvAirflowCFM >= n*spec.AirflowMaxCFM {
			t.Error("AHUs must not be provisioned for every fan at 100%")
		}
		if aisle.ProvAirflowCFM <= n*spec.AirflowIdleCFM {
			t.Error("AHUs must cover well above idle airflow")
		}
	}
}

func TestUPSAssignmentCoversAllRows(t *testing.T) {
	dc, _ := New(DefaultConfig())
	seen := map[int]bool{}
	for _, ups := range dc.UPSes {
		for _, r := range ups.Rows {
			if seen[r] {
				t.Errorf("row %d assigned to multiple UPSes", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != len(dc.Rows) {
		t.Errorf("UPSes cover %d rows, want %d", len(seen), len(dc.Rows))
	}
}

func TestAddRacksOversubscription(t *testing.T) {
	dc, _ := New(DefaultConfig())
	before := len(dc.Servers)
	rowPower := dc.Rows[0].ProvPowerW
	aisleAir := dc.Aisles[0].ProvAirflowCFM
	dc.AddRacks(0.4)
	if len(dc.Servers) <= before {
		t.Fatal("AddRacks added no servers")
	}
	grown := float64(len(dc.Servers)-before) / float64(before)
	if grown < 0.3 || grown > 0.5 {
		t.Errorf("oversubscription grew fleet by %.0f%%, want ≈ 40%%", grown*100)
	}
	if dc.Rows[0].ProvPowerW != rowPower {
		t.Error("row power envelope must not change under oversubscription")
	}
	if dc.Aisles[0].ProvAirflowCFM != aisleAir {
		t.Error("aisle airflow envelope must not change under oversubscription")
	}
	// New servers must be indexed contiguously and belong to valid rows.
	for i, s := range dc.Servers {
		if s.ID != i {
			t.Fatalf("server ID %d at index %d", s.ID, i)
		}
		if s.Row < 0 || s.Row >= len(dc.Rows) {
			t.Fatalf("server %d has invalid row %d", s.ID, s.Row)
		}
	}
}

func TestAddRacksZeroRatioNoop(t *testing.T) {
	dc, _ := New(DefaultConfig())
	before := len(dc.Servers)
	dc.AddRacks(0)
	if len(dc.Servers) != before {
		t.Error("AddRacks(0) must be a no-op")
	}
}

func TestSpecValues(t *testing.T) {
	a := Spec(A100)
	if a.ServerTDPW != 6500 {
		t.Errorf("A100 server TDP = %v, want 6500 (paper §1)", a.ServerTDPW)
	}
	if a.ThrottleTempC != 85 {
		t.Errorf("A100 throttle = %v, want 85", a.ThrottleTempC)
	}
	// 840 CFM at 80% PWM (paper §2.1) ⇒ max ≈ 1050.
	if math.Abs(a.AirflowMaxCFM*0.8-840) > 1 {
		t.Errorf("A100 airflow at 80%% = %v, want 840", a.AirflowMaxCFM*0.8)
	}
	h := Spec(H100)
	if h.ServerTDPW != 10200 {
		t.Errorf("H100 server TDP = %v, want 10200", h.ServerTDPW)
	}
	if math.Abs(h.AirflowMaxCFM*0.8-1105) > 1 {
		t.Errorf("H100 airflow at 80%% = %v, want 1105", h.AirflowMaxCFM*0.8)
	}
	if A100.String() != "A100" || H100.String() != "H100" {
		t.Error("GPUModel String() wrong")
	}
	if GPUModel(9).String() == "" {
		t.Error("unknown GPUModel String() empty")
	}
}

// Property: generation never produces a server whose combined heterogeneity
// would exceed physical plausibility (inlet offsets within ±4 °C, gains
// positive).
func TestHeterogeneityBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := SmallConfig()
		cfg.Seed = seed
		dc, err := New(cfg)
		if err != nil {
			return false
		}
		for _, s := range dc.Servers {
			if s.InletOffsetC < -4 || s.InletOffsetC > 4 {
				return false
			}
			for _, g := range s.GPUTempGainC {
				if g <= 0 || g > 60 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMixedFleet checks per-aisle heterogeneous generation: the trailing
// MixFraction of aisles carry MixGPU servers with matching power/airflow
// provisioning, and MixFraction 0 reproduces the uniform fleet exactly.
func TestMixedFleet(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Aisles = 4
	cfg.MixGPU = H100
	cfg.MixFraction = 0.5
	dc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dc.Heterogeneous() {
		t.Fatal("mixed config generated a homogeneous fleet")
	}
	models := dc.Models()
	if len(models) != 2 || models[0] != A100 || models[1] != H100 {
		t.Fatalf("Models() = %v, want [A100 H100]", models)
	}
	for _, srv := range dc.Servers {
		want := A100
		if srv.Aisle >= 2 {
			want = H100
		}
		if srv.GPU.Model != want {
			t.Fatalf("server %d in aisle %d has model %v, want %v", srv.ID, srv.Aisle, srv.GPU.Model, want)
		}
	}
	// Envelopes are sized for the hardware they feed.
	a100Row, h100Row := dc.Rows[0], dc.Rows[len(dc.Rows)-1]
	if h100Row.ProvPowerW <= a100Row.ProvPowerW {
		t.Errorf("H100 row provisioned at %.0f W, A100 at %.0f W; want H100 higher", h100Row.ProvPowerW, a100Row.ProvPowerW)
	}
	if dc.Aisles[3].ProvAirflowCFM <= dc.Aisles[0].ProvAirflowCFM {
		t.Error("H100 aisle airflow not provisioned above A100 aisle")
	}

	// Zero mix fraction is byte-for-byte the uniform fleet.
	uni, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultConfig()
	cfg2.MixGPU = H100
	cfg2.MixFraction = 0
	mix0, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.Servers) != len(mix0.Servers) {
		t.Fatal("server counts differ")
	}
	for i := range uni.Servers {
		if uni.Servers[i].InletOffsetC != mix0.Servers[i].InletOffsetC ||
			uni.Servers[i].GPU.Model != mix0.Servers[i].GPU.Model {
			t.Fatalf("server %d differs between uniform and mix-0 fleets", i)
		}
	}
}

// TestMixedFleetValidation pins the config error paths.
func TestMixedFleetValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MixFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("mix fraction 1.5 accepted")
	}
	cfg.MixFraction = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative mix fraction accepted")
	}
}
