package layout

import (
	"fmt"
	"math/rand/v2"
)

// Config describes a datacenter to generate. Aisles each contain two rows
// (Fig. 1); rows contain RacksPerRow racks of ServersPerRack servers.
type Config struct {
	Name           string
	Aisles         int
	RacksPerRow    int
	ServersPerRack int
	GPU            GPUModel
	Seed           uint64
	// MixGPU and MixFraction describe a heterogeneous fleet: the trailing
	// MixFraction of aisles (rounded to whole aisles) are built from MixGPU
	// servers instead of GPU. Hardware generations are homogeneous within an
	// aisle — operators roll out new generations aisle-by-aisle, and each
	// row's power envelope and each aisle's AHU provisioning are sized for
	// the hardware they feed. MixFraction 0 (the default) is a uniform
	// fleet.
	MixGPU      GPUModel
	MixFraction float64
	// FleetScale multiplies the aisle count at generation time (rounded to
	// the nearest whole aisle, floor 1): the hyperscale axis. A 10–100×
	// fleet keeps the preset's per-row/per-aisle topology, so power
	// envelopes and AHU provisioning stay at the shape the physics were
	// validated against — the datacenter just has more aisles. 0 (the
	// default) means 1× (the preset's size).
	FleetScale float64
	// AirflowMargin and PowerMargin are the provisioning headroom over the
	// nominal aggregate peak (airflow per aisle, power per row). Operators
	// provision for peak load (§2.1, §2.2), so margins are small.
	AirflowMargin float64
	PowerMargin   float64
	// AirflowDesignLoad is the server load fraction whose aggregate airflow
	// the AHUs are provisioned to sustain (default 0.85). AHUs are sized
	// for the realistic simultaneous peak, not for every fan at 100% —
	// which never occurs fleet-wide.
	AirflowDesignLoad float64
}

// DefaultConfig returns the cluster used by the paper's large-scale
// experiments: ~1000 A100 servers (13 aisles × 2 rows × 10 racks × 4
// servers = 1040).
func DefaultConfig() Config {
	return Config{
		Name:           "dc-east-1",
		Aisles:         13,
		RacksPerRow:    10,
		ServersPerRack: 4,
		GPU:            A100,
		Seed:           42,
		AirflowMargin:  0.03,
		PowerMargin:    0.03,
	}
}

// SmallConfig returns the two-row, 80-server layout of the paper's real
// cluster experiment (§5.2).
func SmallConfig() Config {
	return Config{
		Name:           "dc-lab",
		Aisles:         1,
		RacksPerRow:    10,
		ServersPerRack: 4,
		GPU:            A100,
		Seed:           42,
		AirflowMargin:  0.03,
		PowerMargin:    0.03,
	}
}

// Server is one GPU server. Heterogeneity fields are ground truth used by
// the thermal physics; scheduling policies must not read them directly.
type Server struct {
	ID      int
	Rack    int
	Row     int
	Aisle   int
	HeightU int // slot within the rack, 0 = bottom
	GPU     GPUSpec

	// InletOffsetC is the spatial inlet-temperature offset of this server
	// (row construction + rack position within row + height in rack).
	InletOffsetC float64
	// GPUTempGainC is, per GPU, the temperature rise above inlet at 100%
	// GPU power (process variation + position within the chassis; even
	// GPU numbers sit closer to the inlet and run cooler, §2.1).
	GPUTempGainC []float64
	// GPUTempBiasC is the per-GPU idle temperature offset above inlet.
	GPUTempBiasC []float64
}

// Rack is a vertical stack of servers.
type Rack struct {
	ID       int
	Row      int
	PosInRow int
	Servers  []*Server
}

// Row is a line of racks sharing one provisioned power envelope (fed by a
// PDU pair).
type Row struct {
	ID         int
	Aisle      int
	UPS        int
	Racks      []*Rack
	Servers    []*Server
	ProvPowerW float64
}

// Aisle is a contained cold aisle between two rows, fed by AHUs that must
// out-blow the aggregate server airflow demand (Eq. 3).
type Aisle struct {
	ID             int
	Rows           [2]*Row
	ProvAirflowCFM float64

	servers []*Server // memoized Servers() result
}

// Servers returns all servers in both rows of the aisle. The slice is
// memoized — schedulers call this in per-tick capping loops — so callers
// must treat it as read-only.
func (a *Aisle) Servers() []*Server {
	if a.servers == nil {
		out := make([]*Server, 0, len(a.Rows[0].Servers)+len(a.Rows[1].Servers))
		out = append(out, a.Rows[0].Servers...)
		a.servers = append(out, a.Rows[1].Servers...)
	}
	return a.servers
}

// UPS is one uninterruptible power supply in the 4N/3 redundancy group.
type UPS struct {
	ID   int
	Rows []int
}

// Datacenter is the generated physical plant.
type Datacenter struct {
	Config  Config
	Aisles  []*Aisle
	Rows    []*Row
	Racks   []*Rack
	Servers []*Server
	UPSes   []*UPS
}

// Models returns the distinct GPU models present in the fleet in GPUModel
// order (the base model first for uniform fleets).
func (dc *Datacenter) Models() []GPUModel {
	var present [GPUModelCount]bool
	for _, s := range dc.Servers {
		present[s.GPU.Model] = true
	}
	var out []GPUModel
	for m := GPUModel(0); m < GPUModelCount; m++ {
		if present[m] {
			out = append(out, m)
		}
	}
	return out
}

// Heterogeneous reports whether the fleet mixes GPU generations.
func (dc *Datacenter) Heterogeneous() bool { return len(dc.Models()) > 1 }

// mixAisles returns how many trailing aisles are built from MixGPU.
func (cfg Config) mixAisles() int {
	if cfg.MixFraction <= 0 || cfg.MixGPU == cfg.GPU {
		return 0
	}
	n := int(float64(cfg.Aisles)*cfg.MixFraction + 0.5)
	if n > cfg.Aisles {
		n = cfg.Aisles
	}
	return n
}

// aisleSpec returns the server spec an aisle is built from.
func (cfg Config) aisleSpec(aisle int) GPUSpec {
	if aisle >= cfg.Aisles-cfg.mixAisles() {
		return Spec(cfg.MixGPU)
	}
	return Spec(cfg.GPU)
}

// NumUPS is the UPS group size for 4N/3 redundancy (§2.2).
const NumUPS = 4

// New generates a datacenter from cfg. Generation is deterministic in
// cfg.Seed: the same seed always yields identical heterogeneity.
func New(cfg Config) (*Datacenter, error) {
	if cfg.Aisles <= 0 || cfg.RacksPerRow <= 0 || cfg.ServersPerRack <= 0 {
		return nil, fmt.Errorf("layout: non-positive dimensions in config %+v", cfg)
	}
	if cfg.FleetScale < 0 {
		return nil, fmt.Errorf("layout: negative fleet scale %v", cfg.FleetScale)
	}
	if cfg.FleetScale > 0 {
		cfg.Aisles = int(float64(cfg.Aisles)*cfg.FleetScale + 0.5)
		if cfg.Aisles < 1 {
			cfg.Aisles = 1
		}
	}
	if cfg.AirflowDesignLoad == 0 {
		cfg.AirflowDesignLoad = 0.85
	}
	if cfg.MixFraction < 0 || cfg.MixFraction > 1 {
		return nil, fmt.Errorf("layout: mix fraction %v out of [0,1]", cfg.MixFraction)
	}
	if cfg.mixAisles() > 0 && Spec(cfg.MixGPU).GPUsPerServer != Spec(cfg.GPU).GPUsPerServer {
		return nil, fmt.Errorf("layout: mixed models %v and %v differ in GPUs per server", cfg.GPU, cfg.MixGPU)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7a7a5))
	dc := &Datacenter{Config: cfg}
	for u := 0; u < NumUPS; u++ {
		dc.UPSes = append(dc.UPSes, &UPS{ID: u})
	}
	serverID, rackID := 0, 0
	for a := 0; a < cfg.Aisles; a++ {
		spec := cfg.aisleSpec(a)
		aisle := &Aisle{ID: a}
		for r := 0; r < 2; r++ {
			rowID := a*2 + r
			// Row-level construction offset: up to ~1 °C spread (Fig. 4).
			rowOffset := rng.Float64()*1.0 - 0.5
			row := &Row{ID: rowID, Aisle: a, UPS: rowID % NumUPS}
			for k := 0; k < cfg.RacksPerRow; k++ {
				rack := &Rack{ID: rackID, Row: rowID, PosInRow: k}
				rackID++
				// Rack position: racks far from the AHU run warmer, up to
				// ~2 °C within a row (Fig. 1, Fig. 4).
				posFrac := float64(k) / float64(max(cfg.RacksPerRow-1, 1))
				rackOffset := 1.4*posFrac*posFrac + rng.Float64()*0.6 - 0.3
				for h := 0; h < cfg.ServersPerRack; h++ {
					// Height has a minor impact (Fig. 4).
					heightOffset := (rng.Float64()*0.3 - 0.15) + 0.05*float64(h)
					srv := &Server{
						ID:           serverID,
						Rack:         rack.ID,
						Row:          rowID,
						Aisle:        a,
						HeightU:      h,
						GPU:          spec,
						InletOffsetC: rowOffset + rackOffset + heightOffset,
					}
					srv.GPUTempGainC, srv.GPUTempBiasC = gpuHeterogeneity(rng, spec)
					serverID++
					rack.Servers = append(rack.Servers, srv)
					row.Servers = append(row.Servers, srv)
					dc.Servers = append(dc.Servers, srv)
				}
				row.Racks = append(row.Racks, rack)
				dc.Racks = append(dc.Racks, rack)
			}
			row.ProvPowerW = float64(len(row.Servers)) * spec.ServerTDPW * (1 + cfg.PowerMargin)
			aisle.Rows[r] = row
			dc.Rows = append(dc.Rows, row)
			dc.UPSes[row.UPS].Rows = append(dc.UPSes[row.UPS].Rows, rowID)
		}
		nServers := float64(len(aisle.Rows[0].Servers) + len(aisle.Rows[1].Servers))
		designCFM := spec.AirflowIdleCFM + (spec.AirflowMaxCFM-spec.AirflowIdleCFM)*cfg.AirflowDesignLoad
		aisle.ProvAirflowCFM = nServers * designCFM * (1 + cfg.AirflowMargin)
		dc.Aisles = append(dc.Aisles, aisle)
	}
	return dc, nil
}

// gpuHeterogeneity draws per-GPU temperature response parameters. The paper
// observes up to 10 °C spread across the 8 GPUs of one server at identical
// load (Fig. 8), with even GPU numbers (closer to the inlet) cooler, and
// over 20 °C spread across GPUs of the whole datacenter at comparable inlet
// (Fig. 9) — so there is a server-level component (assembly and heat-sink
// variation) on top of the per-GPU one.
func gpuHeterogeneity(rng *rand.Rand, spec GPUSpec) (gain, bias []float64) {
	gain = make([]float64, spec.GPUsPerServer)
	bias = make([]float64, spec.GPUsPerServer)
	// Server-to-server ±7 °C at TDP: together with process variation and
	// chassis position this yields the >20 °C fleet-wide spread of Fig. 9.
	serverOffset := rng.Float64()*14 - 7
	for g := range gain {
		base := 38.0              // °C rise above inlet at TDP
		pv := rng.Float64()*6 - 3 // process variation ±3 °C
		layoutPenalty := 0.0
		if (g+1)%2 == 1 { // odd GPU numbers (1,3,5,7) sit behind other parts
			layoutPenalty = 4.0
		}
		gain[g] = base + serverOffset + pv + layoutPenalty
		bias[g] = 4 + rng.Float64()*2 // idle offset above inlet, 4–6 °C
	}
	return gain, bias
}

// AddRacks appends extra racks to every row, modelling oversubscription:
// operators add racks to existing rows without raising the provisioned
// airflow or power envelopes (§4.4). ratio 0.4 adds 40% more racks
// (rounded down per row, at least 1 when ratio > 0).
func (dc *Datacenter) AddRacks(ratio float64) {
	if ratio <= 0 {
		return
	}
	rng := rand.New(rand.NewPCG(dc.Config.Seed, 0x05e15))
	serverID := len(dc.Servers)
	rackID := len(dc.Racks)
	for _, row := range dc.Rows {
		spec := row.Servers[0].GPU // rows are homogeneous by construction
		extra := int(float64(dc.Config.RacksPerRow) * ratio)
		if extra == 0 {
			extra = 1
		}
		for k := 0; k < extra; k++ {
			pos := dc.Config.RacksPerRow + k
			rack := &Rack{ID: rackID, Row: row.ID, PosInRow: pos}
			rackID++
			posFrac := float64(pos) / float64(max(dc.Config.RacksPerRow-1, 1))
			if posFrac > 1.3 {
				posFrac = 1.3
			}
			rackOffset := 1.4*posFrac*posFrac + rng.Float64()*0.6 - 0.3
			for h := 0; h < dc.Config.ServersPerRack; h++ {
				srv := &Server{
					ID:           serverID,
					Rack:         rack.ID,
					Row:          row.ID,
					Aisle:        row.Aisle,
					HeightU:      h,
					GPU:          spec,
					InletOffsetC: rackOffset + 0.05*float64(h),
				}
				srv.GPUTempGainC, srv.GPUTempBiasC = gpuHeterogeneity(rng, spec)
				serverID++
				rack.Servers = append(rack.Servers, srv)
				row.Servers = append(row.Servers, srv)
				dc.Servers = append(dc.Servers, srv)
			}
			row.Racks = append(row.Racks, rack)
			dc.Racks = append(dc.Racks, rack)
		}
		// Note: row.ProvPowerW and aisle ProvAirflowCFM intentionally stay
		// fixed — that is what oversubscription means.
		dc.Aisles[row.Aisle].servers = nil // invalidate the memoized roster
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
