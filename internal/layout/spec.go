// Package layout models the physical datacenter the paper characterizes in
// §2: aisles of two rows fed by AHUs, rows of racks sharing a provisioned
// power envelope, racks of GPU servers, and the per-entity heterogeneity
// (row/rack/height inlet offsets, per-GPU process variation) that TAPAS
// exploits.
//
// All heterogeneity is generated deterministically from the layout seed so
// experiments are reproducible, and it is *hidden* from scheduling policies:
// policies only see it through profiled sensor data, exactly as in the paper.
package layout

import "fmt"

// GPUModel identifies the accelerator generation of a server.
type GPUModel int

const (
	// A100 is an NVIDIA DGX A100 server (8×A100).
	A100 GPUModel = iota
	// H100 is an NVIDIA DGX H100 server (8×H100).
	H100
	// GPUModelCount bounds dense per-model tables.
	GPUModelCount
)

// ParseGPUModel maps a model name ("A100", "H100") to its GPUModel.
func ParseGPUModel(name string) (GPUModel, error) {
	switch name {
	case "A100", "a100":
		return A100, nil
	case "H100", "h100":
		return H100, nil
	}
	return 0, fmt.Errorf("layout: unknown GPU model %q (known: A100, H100)", name)
}

func (m GPUModel) String() string {
	switch m {
	case A100:
		return "A100"
	case H100:
		return "H100"
	default:
		return fmt.Sprintf("GPUModel(%d)", int(m))
	}
}

// GPUSpec captures the published characteristics of a DGX server that the
// paper's models depend on: thermal design power, airflow envelope, clock
// range, and the 85 °C throttle threshold.
type GPUSpec struct {
	Model           GPUModel
	GPUsPerServer   int
	GPUTDPW         float64 // per-GPU thermal design power, watts
	GPUIdleW        float64 // per-GPU idle power, watts
	ServerOtherW    float64 // CPUs, memory, storage, NICs at idle, watts
	ServerOtherMaxW float64 // same components at full load (excluding fans)
	FanMaxW         float64 // fan power at full speed, watts
	ServerTDPW      float64 // total server TDP, watts (6.5 kW A100 / 10.2 kW H100)
	MaxFreqGHz      float64
	MinFreqGHz      float64
	ThrottleTempC   float64 // GPU thermal throttle threshold
	MemMaxTempC     float64 // HBM temperature limit
	AirflowIdleCFM  float64
	AirflowMaxCFM   float64 // at 100% PWM; paper cites 840/1105 CFM at 80%
}

// Spec returns the server specification for a GPU model. The values combine
// published DGX numbers with the paper's constants (§2.1): A100 servers have
// a 6.5 kW TDP and 840 CFM at 80% PWM (⇒ 1050 CFM at 100%); H100 servers
// 10.2 kW and 1105 CFM at 80% (⇒ 1380 CFM).
func Spec(m GPUModel) GPUSpec {
	switch m {
	case H100:
		return GPUSpec{
			Model:           H100,
			GPUsPerServer:   8,
			GPUTDPW:         700,
			GPUIdleW:        90,
			ServerOtherW:    1300,
			ServerOtherMaxW: 4250,
			FanMaxW:         350,
			ServerTDPW:      10200,
			MaxFreqGHz:      1.98,
			MinFreqGHz:      0.80,
			ThrottleTempC:   85,
			MemMaxTempC:     95,
			AirflowIdleCFM:  420,
			AirflowMaxCFM:   1381,
		}
	default:
		return GPUSpec{
			Model:           A100,
			GPUsPerServer:   8,
			GPUTDPW:         400,
			GPUIdleW:        55,
			ServerOtherW:    1100,
			ServerOtherMaxW: 3050,
			FanMaxW:         250,
			ServerTDPW:      6500,
			MaxFreqGHz:      1.41,
			MinFreqGHz:      0.70,
			ThrottleTempC:   85,
			MemMaxTempC:     95,
			AirflowIdleCFM:  320,
			AirflowMaxCFM:   1050,
		}
	}
}
