package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/sim"
)

// TestReplayFanOutDeterministicAcrossWorkers pins the replay half of the
// fan-out contract at the RunParallel layer: a scenario compiled from a
// recorded workload trace (shared read-only, exactly like generated
// workloads) produces deeply-equal results for every job regardless of the
// worker count — the property campaign reports' byte-determinism rests on.
func TestReplayFanOutDeterministicAcrossWorkers(t *testing.T) {
	sc := sim.SmallScenario()
	sc.Duration = 20 * time.Minute
	sc.Workload.Duration = sc.Duration
	wl, err := sim.GenerateWorkload(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Trace = wl
	cs, err := sim.Compile(sc)
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 6
	run := func(workers int) []*sim.Result {
		t.Helper()
		res, err := RunParallel(jobs, workers, func(_, job int) (*sim.Result, error) {
			// Alternate policies so the pool replays the shared trace under
			// different mutation patterns, not six identical runs.
			if job%2 == 0 {
				return cs.Run(core.NewBaseline())
			}
			return cs.Run(core.NewFull())
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, workers := range []int{4, 8} {
		par := run(workers)
		for job := range seq {
			if !reflect.DeepEqual(seq[job], par[job]) {
				t.Errorf("replay job %d differs between 1 and %d workers", job, workers)
			}
		}
	}
}
