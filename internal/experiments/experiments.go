// Package experiments contains one runner per table and figure of the
// paper's characterization (§2–§3) and evaluation (§5). Each runner
// regenerates the corresponding rows/series from the simulator and models in
// this repository, at a configurable scale, and returns a textual Report.
//
// cmd/tapas-bench executes them at paper scale; the root bench_test.go
// executes reduced-scale versions under testing.B.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/trace"
)

// Params configures an experiment run.
type Params struct {
	// Scale multiplies cluster size and duration toward paper scale
	// (1.0 = the paper's setup; benchmarks use ~0.1).
	Scale float64
	Seed  uint64
	// Parallel bounds the worker pool for multi-run experiments (fig11's
	// random placements, fig20's ablation grid, table2's emergency matrix).
	// ≤ 0 selects GOMAXPROCS. Reports are byte-identical across worker
	// counts: every run is seeded per job and collected in job order.
	Parallel int
	// Shards sets every run's tick-kernel shard count (see
	// sim.Scenario.Shards; 0/1 serial, negative selects GOMAXPROCS).
	// Reports are byte-identical at any value.
	Shards int
}

// DefaultParams runs at paper scale.
func DefaultParams() Params { return Params{Scale: 1.0, Seed: 42} }

// QuickParams is the reduced scale used by benchmarks and smoke tests.
func QuickParams() Params { return Params{Scale: 0.12, Seed: 42} }

// Report is the textual result of one experiment.
type Report struct {
	ID    string
	Title string
	Lines []string
	Notes []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "%s\n", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Spec registers an experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Params) (*Report, error)
}

// All lists every experiment in paper order.
var All = []Spec{
	{"table1", "Impact of configuration parameters (Table 1)", Table1},
	{"fig1", "Datacenter layout inlet heatmap (Fig. 1)", Fig1},
	{"fig2", "Inlet vs outside temperature timeline (Fig. 2)", Fig2},
	{"fig3", "Inlet vs outside regression (Fig. 3)", Fig3},
	{"fig4", "Inlet distribution across rows/racks/height (Fig. 4)", Fig4},
	{"fig5", "Inlet vs datacenter load (Fig. 5)", Fig5},
	{"fig6", "GPU temperature and power timeline (Fig. 6)", Fig6},
	{"fig7", "GPU temperature regression (Fig. 7)", Fig7},
	{"fig8", "Per-GPU temperature heterogeneity (Fig. 8)", Fig8},
	{"fig9", "Fleet GPU temperature distribution (Fig. 9)", Fig9},
	{"fig10", "Row power imbalance (Fig. 10)", Fig10},
	{"fig11", "Random placement temperature/power spread (Fig. 11)", Fig11},
	{"fig12", "VM lifetime and endpoint size CDFs (Fig. 12)", Fig12},
	{"fig13", "Diurnal VM load and row power (Fig. 13)", Fig13},
	{"fig14", "Power prediction error CDFs (Fig. 14)", Fig14},
	{"fig15", "Per-phase temperature/power by configuration (Fig. 15)", Fig15},
	{"fig16", "Goodput vs temperature/power Pareto (Fig. 16)", Fig16},
	{"fig18", "Real-cluster peak power, Baseline vs TAPAS (Fig. 18)", Fig18},
	{"fig19", "Week-scale max temperature and peak power (Fig. 19)", Fig19},
	{"fig20", "Ablation across policies and SaaS/IaaS mixes (Fig. 20)", Fig20},
	{"fig21", "Oversubscription capping sweep (Fig. 21)", Fig21},
	{"table2", "Emergency management (Table 2)", Table2},
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Spec, bool) {
	for _, s := range All {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// --- shared scenario builders -------------------------------------------

// scaleAisles is the one aisle-scaling rule (round to nearest, floor 2)
// shared by scaledLayout and ScaleLarge.
func scaleAisles(aisles int, scale float64) int {
	n := int(float64(aisles)*scale + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

// scaledLayout returns the large-cluster layout scaled toward paper size.
func scaledLayout(p Params) layout.Config {
	lc := layout.DefaultConfig()
	lc.Aisles = scaleAisles(lc.Aisles, p.Scale)
	lc.Seed = p.Seed
	return lc
}

// ScaleLarge applies the quick-run scaling rules of the large preset in
// place: aisle count and duration shrink proportionally, and sub-half-scale
// runs shift to the 9 h diurnal-peak start offset unless the caller pinned
// an offset explicitly. The 6 h duration floor guards the preset's paper
// week; a caller-chosen duration (explicitDuration) scales with only a
// 5-minute floor so short campaigns stay short. Shared with the
// scenario-spec pipeline so spec campaigns reproduce the runners'
// scenarios exactly.
func ScaleLarge(sc *sim.Scenario, scale float64, explicitOffset, explicitDuration bool) {
	sc.Layout.Aisles = scaleAisles(sc.Layout.Aisles, scale)
	floor := 6 * time.Hour
	if explicitDuration {
		floor = 5 * time.Minute
	}
	dur := time.Duration(float64(sc.Duration) * scale)
	if dur < floor {
		dur = floor
	}
	sc.Duration = dur
	sc.Workload.Duration = dur
	sc.Workload.Servers = sc.Layout.Aisles * 2 * sc.Layout.RacksPerRow * sc.Layout.ServersPerRack
	if scale < 0.5 && !explicitOffset {
		sc.StartOffset = 9 * time.Hour // short runs still cover the daily peak
	}
}

// ScaleSmall applies the quick-run scaling rules of the small (real-cluster)
// preset in place: sub-half-scale runs shorten to the 20-minute smoke
// window, or — when the caller set a duration explicitly — scale it
// proportionally with a 5-minute floor.
func ScaleSmall(sc *sim.Scenario, scale float64, explicitDuration bool) {
	if scale >= 0.5 {
		return
	}
	d := 20 * time.Minute
	if explicitDuration {
		d = time.Duration(float64(sc.Duration) * scale)
		if d < 5*time.Minute {
			d = 5 * time.Minute
		}
	}
	sc.Duration = d
	sc.Workload.Duration = d
}

// scaledScenario returns the paper's large-scale evaluation scenario at the
// requested scale.
func scaledScenario(p Params) sim.Scenario {
	sc := sim.DefaultScenario()
	sc.Layout.Seed = p.Seed
	sc.Workload.Seed = p.Seed
	sc.Shards = p.Shards
	ScaleLarge(&sc, p.Scale, false, false)
	return sc
}

// smallScenario returns the real-cluster scenario (80 servers, 1 h).
func smallScenario(p Params) sim.Scenario {
	sc := sim.SmallScenario()
	sc.Workload.Seed = p.Seed
	sc.Shards = p.Shards
	ScaleSmall(&sc, p.Scale, false)
	return sc
}

// mustDC builds a datacenter or panics (generation only fails on invalid
// dimensions, which the builders never produce).
func mustDC(cfg layout.Config) *layout.Datacenter {
	dc, err := layout.New(cfg)
	if err != nil {
		panic(err)
	}
	return dc
}

// cdfRow formats selected percentiles of a sample set.
func cdfRow(name string, xs []float64, percentile func([]float64, float64) float64) string {
	return fmt.Sprintf("%-14s P10=%7.2f P25=%7.2f P50=%7.2f P75=%7.2f P90=%7.2f P99=%7.2f",
		name, percentile(xs, 10), percentile(xs, 25), percentile(xs, 50),
		percentile(xs, 75), percentile(xs, 90), percentile(xs, 99))
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// genWorkload builds a workload or panics (only invalid configs fail).
func genWorkload(cfg trace.WorkloadConfig) *trace.Workload {
	w, err := trace.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}
