package experiments

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/regress"
	"github.com/tapas-sim/tapas/internal/sim"
	"github.com/tapas-sim/tapas/internal/thermal"
	"github.com/tapas-sim/tapas/internal/trace"
)

// Table1 reproduces the direction table: the impact of each configuration
// knob on performance, temperature, power and quality.
func Table1(p Params) (*Report, error) {
	r := &Report{ID: "table1", Title: "Impact of configuration parameters"}
	spec := layout.Spec(layout.A100)
	w := llm.DefaultWorkload()
	slos := llm.ComputeSLOs(spec, llm.DefaultConfig(), w)
	base := llm.Characterize(spec, llm.DefaultConfig(), w, slos)

	arrow := func(delta, eps float64) string {
		switch {
		case delta > eps:
			return "↑"
		case delta < -eps:
			return "↓"
		default:
			return "−"
		}
	}
	row := func(name string, c llm.Config) {
		e := llm.Characterize(spec, c, w, slos)
		r.addf("%-28s perf %s   temp %s   power %s   quality %s",
			name,
			arrow(e.Goodput-base.Goodput, base.Goodput*0.01),
			arrow(e.PeakGPUPowerFrac-base.PeakGPUPowerFrac, 0.01),
			arrow(e.AvgServerPowerW-base.AvgServerPowerW, base.AvgServerPowerW*0.01),
			arrow(e.Quality-base.Quality, 0.005))
	}
	small := llm.DefaultConfig()
	small.Model = llm.Llama7B
	row("Model size (70B→7B)", small)
	quant := llm.DefaultConfig()
	quant.Quant = llm.FP8
	row("Quantization (FP16→FP8)", quant)
	tp := llm.DefaultConfig()
	tp.TP = 2
	row("Parallelism (TP8→TP2)", tp)
	freq := llm.DefaultConfig()
	freq.FreqFrac = 0.5
	row("Frequency (2GHz→1GHz)", freq)
	batch := llm.DefaultConfig()
	batch.MaxBatch = 16
	row("Batch size (64→16)", batch)
	r.notef("paper Table 1: size ↑↓↓↓↓; quant ↑↓↓↓; TP8→TP2 ↓↑↓−; freq ↓↓↓−; batch ↓↓↓− (temp column = hottest-GPU power fraction)")
	return r, nil
}

// Fig1 renders the median inlet temperature per rack across the layout.
func Fig1(p Params) (*Report, error) {
	r := &Report{ID: "fig1", Title: "Datacenter layout inlet heatmap"}
	dc := mustDC(scaledLayout(p))
	outside := trace.NewOutsideTemp(trace.RegionTemperate, 7*24*time.Hour, 10*time.Minute, p.Seed)
	medians := make([][]float64, len(dc.Rows))
	for rowID, row := range dc.Rows {
		medians[rowID] = make([]float64, len(row.Racks))
		for k, rack := range row.Racks {
			var samples []float64
			for h := 0; h < 7*24; h += 3 {
				o := outside.At(time.Duration(h) * time.Hour)
				samples = append(samples, thermal.InletTemp(rack.Servers[len(rack.Servers)-1], o, 0.6, 0))
			}
			medians[rowID][k] = regress.Percentile(samples, 50)
		}
	}
	for rowID, row := range medians {
		line := fmt.Sprintf("row %2d:", rowID)
		for _, m := range row {
			line += fmt.Sprintf(" %5.1f", m)
		}
		r.Lines = append(r.Lines, line)
	}
	r.notef("paper Fig. 1: median inlet 18–23 °C with rack-position hotspots at row ends")
	return r, nil
}

// Fig2 prints the inlet and outside temperature timeline for three servers.
func Fig2(p Params) (*Report, error) {
	r := &Report{ID: "fig2", Title: "Inlet vs outside temperature, three servers, one month"}
	dc := mustDC(scaledLayout(p))
	outside := trace.NewOutsideTemp(trace.RegionTemperate, 31*24*time.Hour, 10*time.Minute, p.Seed)
	servers := []*layout.Server{dc.Servers[0], dc.Servers[len(dc.Servers)/2], dc.Servers[len(dc.Servers)-1]}
	r.addf("%-6s %8s %8s %8s %8s", "day", "outside", "srv1", "srv2", "srv3")
	for day := 0; day < 31; day += 2 {
		at := time.Duration(day)*24*time.Hour + 15*time.Hour
		o := outside.At(at)
		r.addf("%-6d %8.1f %8.1f %8.1f %8.1f", day, o,
			thermal.InletTemp(servers[0], o, 0.6, 0),
			thermal.InletTemp(servers[1], o, 0.6, 0),
			thermal.InletTemp(servers[2], o, 0.6, 0))
	}
	r.notef("paper Fig. 2: inlet tracks outside; one server consistently ≈2 °C warmer")
	return r, nil
}

// Fig3 fits the inlet-vs-outside regression for three servers and reports
// the regime slopes.
func Fig3(p Params) (*Report, error) {
	r := &Report{ID: "fig3", Title: "Inlet vs outside regression"}
	dc := mustDC(scaledLayout(p))
	rng := rand.New(rand.NewPCG(p.Seed, 3))
	for i, srv := range []*layout.Server{dc.Servers[0], dc.Servers[len(dc.Servers)/2], dc.Servers[len(dc.Servers)-1]} {
		var xs, ys, zs []float64
		for k := 0; k < 2000; k++ {
			o := rng.Float64()*40 - 2
			l := rng.Float64()
			xs = append(xs, o)
			ys = append(ys, l)
			zs = append(zs, thermal.InletTemp(srv, o, l, 0)+rng.NormFloat64()*0.2)
		}
		surf, err := regress.FitSurface(xs, ys, zs, thermal.DefaultKnots)
		if err != nil {
			return nil, err
		}
		var pred, act []float64
		for k := 0; k < 400; k++ {
			o := rng.Float64()*40 - 2
			l := rng.Float64()
			pred = append(pred, surf.Eval(o, l))
			act = append(act, thermal.InletTemp(srv, o, l, 0))
		}
		r.addf("server %d: inlet(5°C)=%5.1f inlet(20°C)=%5.1f inlet(32°C)=%5.1f  slope(15–25)=%4.2f °C/°C  MAE=%.2f °C",
			i+1, surf.Eval(5, 0.5), surf.Eval(20, 0.5), surf.Eval(32, 0.5),
			(surf.Eval(25, 0.5)-surf.Eval(15, 0.5))/10, regress.MAE(pred, act))
	}
	r.notef("paper Fig. 3: flat ≈18 °C below 15 °C outside, ≈linear 15–25 °C, damped above; MAE < 1 °C")
	return r, nil
}

// Fig4 reports the inlet temperature spread attributable to rows, rack
// position within rows, and height within racks.
func Fig4(p Params) (*Report, error) {
	r := &Report{ID: "fig4", Title: "Inlet distribution across physical entities"}
	dc := mustDC(scaledLayout(p))
	byRow := map[int][]float64{}
	byRackPos := map[int][]float64{}
	byHeight := map[int][]float64{}
	for _, row := range dc.Rows {
		for _, rack := range row.Racks {
			for _, srv := range rack.Servers {
				inlet := thermal.InletTemp(srv, 22, 0.6, 0)
				byRow[srv.Row] = append(byRow[srv.Row], inlet)
				byRackPos[rack.PosInRow] = append(byRackPos[rack.PosInRow], inlet)
				byHeight[srv.HeightU] = append(byHeight[srv.HeightU], inlet)
			}
		}
	}
	spread := func(groups map[int][]float64) float64 {
		lo, hi := 1e9, -1e9
		for _, xs := range groups {
			m := regress.Percentile(xs, 50)
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		return hi - lo
	}
	r.addf("median-inlet spread across rows:            %.2f °C", spread(byRow))
	r.addf("median-inlet spread across racks in a row:  %.2f °C", spread(byRackPos))
	r.addf("median-inlet spread across heights in rack: %.2f °C", spread(byHeight))
	r.notef("paper Fig. 4: ≤1 °C across rows, ≤2 °C across racks, height minor")
	return r, nil
}

// Fig5 reports inlet temperature as a function of datacenter load.
func Fig5(p Params) (*Report, error) {
	r := &Report{ID: "fig5", Title: "Inlet temperature vs datacenter load"}
	for _, outside := range []float64{15, 25, 35} {
		lo := thermal.CoolingCurve(outside, 0.1)
		hi := thermal.CoolingCurve(outside, 0.9)
		r.addf("outside %4.1f °C: inlet %.2f → %.2f °C from 10%% to 90%% load (Δ %.2f)", outside, lo, hi, hi-lo)
	}
	r.notef("paper Fig. 5: ≈2 °C inlet difference between low and high load")
	return r, nil
}

// Fig6 prints the GPU temperature/power timeline for one server under a
// diurnal load over 45 days.
func Fig6(p Params) (*Report, error) {
	r := &Report{ID: "fig6", Title: "GPU temperature and power over 45 days"}
	dc := mustDC(scaledLayout(p))
	srv := dc.Servers[0]
	spec := srv.GPU
	outside := trace.NewOutsideTemp(trace.RegionTemperate, 45*24*time.Hour, 10*time.Minute, p.Seed)
	load := trace.LoadPattern{Base: 0.3, DiurnalAmp: 0.6, NoiseAmp: 0.05, Seed: p.Seed}
	r.addf("%-5s %8s %8s %8s %8s %9s", "day", "inlet", "outlet", "gpu", "mem", "power")
	for day := 0; day < 45; day += 3 {
		at := time.Duration(day)*24*time.Hour + 14*time.Hour
		util := load.At(at)
		inlet := thermal.InletTemp(srv, outside.At(at), 0.6, 0)
		gpuW := power.GPUPower(&spec, util, 1)
		frac := gpuW / spec.GPUTDPW
		gpuT := thermal.GPUTemp(srv, 0, inlet, frac)
		memT := thermal.MemTemp(gpuT, 0.4)
		serverW := power.ServerPowerAtUniformLoad(&spec, util)
		outlet := thermal.OutletTemp(inlet, serverW, thermal.Airflow(&spec, util))
		r.addf("%-5d %8.1f %8.1f %8.1f %8.1f %8.0fW", day, inlet, outlet, gpuT, memT, gpuW)
	}
	r.notef("paper Fig. 6: GPU tracks load between ≈30 °C idle and ≈70 °C busy; outlet sits above inlet")
	return r, nil
}

// Fig7 fits the GPU-temperature regression and reports its MAE.
func Fig7(p Params) (*Report, error) {
	r := &Report{ID: "fig7", Title: "GPU temperature regression"}
	dc := mustDC(scaledLayout(p))
	srv := dc.Servers[0]
	rng := rand.New(rand.NewPCG(p.Seed, 7))
	var feats [][]float64
	var temps []float64
	for i := 0; i < 1500; i++ {
		inlet := 18 + rng.Float64()*14
		frac := rng.Float64()
		feats = append(feats, []float64{1, inlet, frac})
		temps = append(temps, thermal.GPUTemp(srv, 0, inlet, frac)+rng.NormFloat64()*0.3)
	}
	lin, err := regress.FitLinear(feats, temps)
	if err != nil {
		return nil, err
	}
	var pred, act []float64
	for i := 0; i < 400; i++ {
		inlet := 18 + rng.Float64()*14
		frac := rng.Float64()
		pred = append(pred, lin.Eval([]float64{1, inlet, frac}))
		act = append(act, thermal.GPUTemp(srv, 0, inlet, frac))
	}
	r.addf("T_gpu = %.2f + %.3f·inlet + %.2f·powerFrac", lin.Weights[0], lin.Weights[1], lin.Weights[2])
	r.addf("held-out MAE = %.3f °C", regress.MAE(pred, act))
	r.notef("paper Fig. 7: linear regression on (inlet, GPU load) with MAE < 1 °C")
	return r, nil
}

// Fig8 reports the sorted full-load temperatures of the 8 GPUs of one
// server.
func Fig8(p Params) (*Report, error) {
	r := &Report{ID: "fig8", Title: "Sorted per-GPU temperatures of one server"}
	dc := mustDC(scaledLayout(p))
	srv := dc.Servers[0]
	temps := make([]float64, len(srv.GPUTempGainC))
	for g := range temps {
		temps[g] = thermal.GPUTemp(srv, g, 24, 0.95)
	}
	sorted := sortedCopy(temps)
	line := "full-load GPU temps (sorted):"
	for _, t := range sorted {
		line += fmt.Sprintf(" %5.1f", t)
	}
	r.Lines = append(r.Lines, line)
	r.addf("intra-server spread = %.1f °C", sorted[len(sorted)-1]-sorted[0])
	r.notef("paper Fig. 8: up to ≈10 °C spread across the 8 GPUs at identical load")
	return r, nil
}

// Fig9 reports the fleet-wide GPU temperature distribution at high load and
// the per-GPU-number medians.
func Fig9(p Params) (*Report, error) {
	r := &Report{ID: "fig9", Title: "Fleet GPU temperature distribution at high load"}
	dc := mustDC(scaledLayout(p))
	var all []float64
	byIdx := make([][]float64, dc.Servers[0].GPU.GPUsPerServer)
	for _, srv := range dc.Servers {
		for g := range srv.GPUTempGainC {
			t := thermal.GPUTemp(srv, g, 24, 0.95)
			all = append(all, t)
			byIdx[g] = append(byIdx[g], t)
		}
	}
	r.addf("%d GPUs at high load, comparable inlet:", len(all))
	r.Lines = append(r.Lines, cdfRow("GPU temp", all, regress.Percentile))
	r.addf("fleet range = %.1f °C", regress.Percentile(all, 100)-regress.Percentile(all, 0))
	line := "median by GPU number:"
	for g, xs := range byIdx {
		line += fmt.Sprintf(" GPU%d=%.1f", g+1, regress.Percentile(xs, 50))
	}
	r.Lines = append(r.Lines, line)
	r.notef("paper Fig. 9: >20 °C fleet-wide range; even GPU numbers cooler than odd")
	return r, nil
}

// Fig10 runs the baseline over the scaled cluster and reports row power
// imbalance: four sample row timelines plus the P50/P99 CDF across rows.
func Fig10(p Params) (*Report, error) {
	r := &Report{ID: "fig10", Title: "Row power imbalance"}
	sc := scaledScenario(p)
	sc.RecordRowSeries = true
	res, err := sim.Run(sc, baselinePolicy())
	if err != nil {
		return nil, err
	}
	nRows := len(res.RowPowerW)
	step := len(res.RowPowerW[0]) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < 4 && i < nRows; i++ {
		line := fmt.Sprintf("row %d util%%:", i)
		for t := 0; t < len(res.RowPowerW[i]); t += step {
			line += fmt.Sprintf(" %3.0f", res.RowPowerW[i][t]/res.PeakPower()*100)
		}
		r.Lines = append(r.Lines, line)
	}
	var p50s, p99s []float64
	for row := 0; row < nRows; row++ {
		p50s = append(p50s, regress.Percentile(res.RowPowerW[row], 50))
		p99s = append(p99s, regress.Percentile(res.RowPowerW[row], 99))
	}
	maxP99 := regress.Percentile(p99s, 100)
	r.addf("rows whose P99 power sits below the hungriest row:")
	for _, q := range []float64{50, 75, 90} {
		v := regress.Percentile(p99s, q)
		r.addf("  %2.0f%% of rows draw ≥ %.0f%% less P99 power than the max", q, (1-v/maxP99)*100)
	}
	r.addf("%s", cdfRow("row P50 (kW)", scaleSlice(p50s, 1e-3), regress.Percentile))
	r.addf("%s", cdfRow("row P99 (kW)", scaleSlice(p99s, 1e-3), regress.Percentile))
	r.notef("paper Fig. 10: heavy tail — 50/75/90%% of rows draw 28/18/10%% less P99 power than the hungriest")
	return r, nil
}

// Fig11 evaluates many random placements of 80 VMs over two rows and
// reports the spread of peak temperature and row power plus their
// correlation.
func Fig11(p Params) (*Report, error) {
	r := &Report{ID: "fig11", Title: "Random placement spread"}
	dc := mustDC(layout.SmallConfig())
	w := genWorkload(trace.WorkloadConfig{
		Servers: len(dc.Servers), SaaSFraction: 0.5,
		Duration: 24 * time.Hour, Endpoints: 3, Seed: p.Seed,
	})
	var loads []float64
	for _, vm := range w.VMs {
		if vm.Arrival != 0 {
			continue
		}
		if vm.Kind == trace.IaaS {
			peak := 0.0
			for h := 0; h < 24; h++ {
				if l := vm.Load.At(time.Duration(h) * time.Hour); l > peak {
					peak = l
				}
			}
			loads = append(loads, peak)
		} else {
			loads = append(loads, 0.68) // SaaS instances at busy diurnal peak
		}
	}
	trials := int(100000 * p.Scale)
	if trials < 2000 {
		trials = 2000
	}
	spec := layout.Spec(dc.Config.GPU)
	// Hoist the trial-invariant physics out of the trial loop: the inlet
	// depends only on the server, and per-VM GPU power fraction / server
	// power depend only on the VM's load — only the permutation varies.
	inletC := make([]float64, len(dc.Servers))
	rowOf := make([]int, len(dc.Servers))
	for id, srv := range dc.Servers {
		inletC[id] = thermal.InletTemp(srv, 30, 0.7, 0)
		rowOf[id] = srv.Row
	}
	gpuFrac := make([]float64, len(loads))
	serverW := make([]float64, len(loads))
	for v, load := range loads {
		gpuFrac[v] = power.GPUPower(&spec, load, 1) / spec.GPUTDPW
		serverW[v] = power.ServerPowerAtUniformLoad(&spec, load)
	}
	// The hottest-GPU temperature of (server, VM) does not depend on the
	// permutation either: evaluate the thermal surface once for every pair
	// (servers × VMs × GPUs evaluations) so each trial reduces to table
	// lookups. At 100k trials this replaces ~10^8 physics evaluations.
	maxTempOn := make([]float64, len(dc.Servers)*len(loads))
	for id, srv := range dc.Servers {
		row := maxTempOn[id*len(loads) : (id+1)*len(loads)]
		for v := range loads {
			maxT := 0.0
			for g := range srv.GPUTempGainC {
				if t := thermal.GPUTemp(srv, g, inletC[id], gpuFrac[v]); t > maxT {
					maxT = t
				}
			}
			row[v] = maxT
		}
	}
	// Trials are independent: fan them out across the worker pool, one
	// deterministic PCG stream per trial so the result is byte-identical
	// for any worker count. Each worker keeps its own permutation scratch
	// and reseeds a private PCG per trial instead of allocating a new one.
	type trialResult struct{ tempC, powerKW float64 }
	workers := ResolveWorkers(p.Parallel)
	perms := make([][]int, workers)
	pcgs := make([]*rand.PCG, workers)
	rngs := make([]*rand.Rand, workers)
	results, _ := RunParallel(trials, workers, func(worker, trial int) (trialResult, error) {
		perm := perms[worker]
		if perm == nil {
			perm = make([]int, len(dc.Servers))
			perms[worker] = perm
			pcgs[worker] = rand.NewPCG(0, 0)
			rngs[worker] = rand.New(pcgs[worker])
		}
		for i := range perm {
			perm[i] = i
		}
		pcgs[worker].Seed(p.Seed, 11+uint64(trial))
		rng := rngs[worker]
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		maxTemp := 0.0
		var rowPower [2]float64
		for v := range loads {
			id := perm[v]
			if t := maxTempOn[id*len(loads)+v]; t > maxTemp {
				maxTemp = t
			}
			rowPower[rowOf[id]] += serverW[v]
		}
		peak := rowPower[0]
		if rowPower[1] > peak {
			peak = rowPower[1]
		}
		return trialResult{tempC: maxTemp, powerKW: peak / 1000}, nil
	})
	peakTemps := make([]float64, trials)
	peakPowers := make([]float64, trials)
	for i, tr := range results {
		peakTemps[i] = tr.tempC
		peakPowers[i] = tr.powerKW
	}
	r.addf("%d random placements of %d VMs across 2 rows:", trials, len(loads))
	r.Lines = append(r.Lines, cdfRow("peak temp °C", peakTemps, regress.Percentile))
	r.Lines = append(r.Lines, cdfRow("row power kW", peakPowers, regress.Percentile))
	worst := regress.Percentile(peakPowers, 100)
	best := regress.Percentile(peakPowers, 0)
	r.addf("worst placement draws %.0f%% more peak power than the best", (worst/best-1)*100)
	r.addf("temp/power correlation r = %.2f", correlation(peakTemps, peakPowers))
	r.notef("paper Fig. 11: worst placement >85 °C vs ≈72 °C typical; +27%% power; no temp/power correlation")
	return r, nil
}

// Fig12 reports the VM lifetime CDF and the VMs-per-endpoint CDF.
func Fig12(p Params) (*Report, error) {
	r := &Report{ID: "fig12", Title: "VM lifetimes and endpoint sizes"}
	w := genWorkload(trace.WorkloadConfig{
		Servers: 4000, SaaSFraction: 0.5, Duration: 7 * 24 * time.Hour,
		Endpoints: 10, Seed: p.Seed,
	})
	var lifetimes []float64
	for _, vm := range w.VMs {
		lifetimes = append(lifetimes, vm.Lifetime.Hours()/24)
	}
	r.Lines = append(r.Lines, cdfRow("lifetime days", lifetimes, regress.Percentile))
	over2w := 0
	for _, d := range lifetimes {
		if d > 14 {
			over2w++
		}
	}
	r.addf("VMs living > 2 weeks: %.0f%%", float64(over2w)/float64(len(lifetimes))*100)
	var sizes []float64
	for _, ep := range w.Endpoints {
		sizes = append(sizes, float64(ep.NumVMs))
	}
	sort.Float64s(sizes)
	line := "endpoint sizes:"
	for _, s := range sizes {
		line += fmt.Sprintf(" %d", int(s))
	}
	r.Lines = append(r.Lines, line)
	r.notef("paper Fig. 12: >60%% of VMs live over two weeks; endpoints span ≈23–100+ VMs, half of VMs in large endpoints")
	return r, nil
}

// Fig13 prints a 4-week diurnal load/power pattern for an example VM and row.
func Fig13(p Params) (*Report, error) {
	r := &Report{ID: "fig13", Title: "Diurnal VM load and row power"}
	w := genWorkload(trace.WorkloadConfig{
		Servers: 200, SaaSFraction: 0.5, Duration: 28 * 24 * time.Hour,
		Endpoints: 3, Seed: p.Seed,
	})
	var iaas []trace.VMSpec
	for _, vm := range w.VMs {
		if vm.Kind == trace.IaaS && vm.Arrival == 0 {
			iaas = append(iaas, vm)
		}
	}
	spec := layout.Spec(layout.A100)
	r.addf("%-5s %10s %14s", "day", "vm-load", "row-power-norm")
	peakRow := 0.0
	var rows []float64
	for day := 0; day < 28; day++ {
		at := time.Duration(day)*24*time.Hour + 14*time.Hour
		rowW := 0.0
		for i := 0; i < 40 && i < len(iaas); i++ {
			rowW += power.ServerPowerAtUniformLoad(&spec, iaas[i].Load.At(at))
		}
		rows = append(rows, rowW)
		if rowW > peakRow {
			peakRow = rowW
		}
	}
	for day := 0; day < 28; day += 2 {
		at := time.Duration(day)*24*time.Hour + 14*time.Hour
		r.addf("%-5d %10.2f %14.2f", day, iaas[0].Load.At(at), rows[day]/peakRow)
	}
	r.notef("paper Fig. 13: distinctly periodic diurnal/weekly pattern at VM and row level")
	return r, nil
}

// Fig14 builds row- and customer-based power templates from one week and
// evaluates the prediction error on the next.
func Fig14(p Params) (*Report, error) {
	r := &Report{ID: "fig14", Title: "Power prediction error CDFs"}
	w := genWorkload(trace.WorkloadConfig{
		Servers: 400, SaaSFraction: 0, Duration: 14 * 24 * time.Hour,
		Endpoints: 1, Seed: p.Seed,
	})
	spec := layout.Spec(layout.A100)
	samplesPerHour := 6
	total := 14 * 24 * samplesPerHour
	// Row-based: aggregate 40 VMs per row.
	nRows := 8
	rowSeries := make([][]float64, nRows)
	var rowVMs [][]trace.VMSpec
	var active []trace.VMSpec
	for _, vm := range w.VMs {
		if vm.Arrival == 0 {
			active = append(active, vm)
		}
	}
	for rIdx := 0; rIdx < nRows; rIdx++ {
		lo := rIdx * 40
		if lo+40 > len(active) {
			break
		}
		rowVMs = append(rowVMs, active[lo:lo+40])
		rowSeries[rIdx] = make([]float64, total)
	}
	for i := 0; i < total; i++ {
		at := time.Duration(i) * 10 * time.Minute
		for rIdx := range rowVMs {
			sum := 0.0
			for _, vm := range rowVMs[rIdx] {
				sum += power.ServerPowerAtUniformLoad(&spec, vm.Load.At(at))
			}
			rowSeries[rIdx][i] = sum
		}
	}
	week := 7 * 24 * samplesPerHour
	var rowErrs []float64
	under := 0
	for rIdx := range rowVMs {
		tpl, err := power.BuildTemplate(rowSeries[rIdx][:week], samplesPerHour, 99)
		if err != nil {
			return nil, err
		}
		errs := tpl.PredictionErrors(rowSeries[rIdx][week:], samplesPerHour)
		for _, e := range errs {
			rowErrs = append(rowErrs, e)
			if e < 0 {
				under++
			}
		}
	}
	r.Lines = append(r.Lines, cdfRow("row err % P99", rowErrs, regress.Percentile))
	r.addf("row-based P99 template underpredicts %.1f%% of row-hours", float64(under)/float64(len(rowErrs))*100)

	// Customer-based per-VM prediction at several percentiles. The series
	// buffer is scratch reused across every (percentile, VM) pair — each
	// pass overwrites all of it — instead of 120 fresh two-week slices.
	series := make([]float64, total)
	for _, pct := range []float64{50, 90, 99} {
		var errs []float64
		u := 0
		for i := 0; i < 40 && i < len(active); i++ {
			for k := range series {
				series[k] = power.ServerPowerAtUniformLoad(&spec, active[i].Load.At(time.Duration(k)*10*time.Minute))
			}
			tpl, err := power.BuildTemplate(series[:week], samplesPerHour, pct)
			if err != nil {
				return nil, err
			}
			for _, e := range tpl.PredictionErrors(series[week:], samplesPerHour) {
				errs = append(errs, e)
				if e < 0 {
					u++
				}
			}
		}
		within := 0
		for _, e := range errs {
			if e >= -10 && e <= 10 {
				within++
			}
		}
		r.addf("customer-based P%-2.0f: %.0f%% within ±10%%, underpredicts %.1f%%",
			pct, float64(within)/float64(len(errs))*100, float64(u)/float64(len(errs))*100)
	}
	r.notef("paper Fig. 14: row templates <10%% error for most hours, P99 underpredicts <4%%; customer templates within 10%% for >75%% of VM-hours")
	return r, nil
}

// Fig15 reports per-phase GPU temperature, memory temperature and server
// power across TP, batch and model-size settings.
func Fig15(p Params) (*Report, error) {
	r := &Report{ID: "fig15", Title: "Per-phase temperature and power by configuration"}
	spec := layout.Spec(layout.A100)
	inlet := 24.0
	gain, bias := 42.0, 5.0 // representative GPU thermal response
	row := func(name string, c llm.Config) {
		for _, phase := range []llm.Phase{llm.Prefill, llm.Decode} {
			frac := llm.GPUPowerFrac(spec, c, phase)
			gpuT := inlet + bias + gain*frac
			memT := thermal.MemTemp(gpuT, llm.MemIntensity(phase, c))
			r.addf("%-18s %-8s gpu=%5.1f°C mem=%5.1f°C power=%5.2fkW",
				name, phase, gpuT, memT, llm.ServerPowerW(spec, c, phase)/1000)
		}
	}
	for _, tp := range []int{8, 4, 2} {
		c := llm.DefaultConfig()
		c.TP = tp
		row(fmt.Sprintf("TP%d", tp), c)
	}
	for _, b := range []int{64, 16, 1} {
		c := llm.DefaultConfig()
		c.MaxBatch = b
		row(fmt.Sprintf("batch %d", b), c)
	}
	for _, m := range []llm.ModelSize{llm.Llama70B, llm.Llama13B, llm.Llama7B} {
		c := llm.DefaultConfig()
		c.Model = m
		row(m.String(), c)
	}
	r.notef("paper Fig. 15: TP↓ ⇒ total power ↓ but hottest GPU ↑; batch↓ ⇒ power/temp ↓ but decode HBM ↑; size↓ ⇒ everything ↓")
	return r, nil
}

// Fig16 prints the normalized goodput/temperature/power frontier.
func Fig16(p Params) (*Report, error) {
	r := &Report{ID: "fig16", Title: "Goodput vs temperature and power (Pareto)"}
	prof := llm.BuildProfile(layout.Spec(layout.A100), llm.DefaultWorkload())
	maxGoodput, maxFrac, maxPower := 0.0, 0.0, 0.0
	for _, e := range prof.Entries {
		if e.Goodput > maxGoodput {
			maxGoodput = e.Goodput
		}
		if e.PeakGPUPowerFrac > maxFrac {
			maxFrac = e.PeakGPUPowerFrac
		}
		if e.PeakServerPowerW > maxPower {
			maxPower = e.PeakServerPowerW
		}
	}
	for _, m := range []llm.ModelSize{llm.Llama70B, llm.Llama13B, llm.Llama7B} {
		frontier := prof.ParetoFrontier(m)
		r.addf("%s frontier (%d points of %d configs):", m, len(frontier), len(prof.Entries))
		limit := 6
		for i, e := range frontier {
			if i >= limit {
				r.addf("  … %d more", len(frontier)-limit)
				break
			}
			r.addf("  %-26s goodput=%.2f temp=%.2f power=%.2f quality=%.2f",
				e.Config, e.Goodput/maxGoodput, e.PeakGPUPowerFrac/maxFrac, e.PeakServerPowerW/maxPower, e.Quality)
		}
	}
	r.notef("paper Fig. 16: per-model Pareto frontiers; model size dominates the temperature/power floor")
	return r, nil
}

func scaleSlice(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

func correlation(xs, ys []float64) float64 {
	mx, sx := regress.MeanStd(xs)
	my, sy := regress.MeanStd(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	sum := 0.0
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(len(xs)) / (sx * sy)
}
