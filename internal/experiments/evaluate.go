package experiments

import (
	"fmt"
	"time"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/regress"
	"github.com/tapas-sim/tapas/internal/sim"
)

func baselinePolicy() sim.Policy { return core.NewBaseline() }
func tapasPolicy() sim.Policy    { return core.NewFull() }

// Fig18 reproduces the real-cluster experiment: peak row power over one hour
// under Baseline vs TAPAS, plus the fluid-vs-fine simulator validation (the
// paper reports a 4% absolute error between its real cluster and simulator).
func Fig18(p Params) (*Report, error) {
	r := &Report{ID: "fig18", Title: "Real-cluster peak power: Baseline vs TAPAS"}
	// One compilation covers all three runs (Baseline, TAPAS, and the
	// fine-tick validation below): layout, workload, weather and seeded
	// history are identical across them.
	cs, err := sim.Compile(smallScenario(p))
	if err != nil {
		return nil, err
	}
	results := map[string]*sim.Result{}
	for _, pol := range []sim.Policy{baselinePolicy(), tapasPolicy()} {
		res, err := cs.Run(pol)
		if err != nil {
			return nil, err
		}
		results[res.Policy] = res
	}
	base, tapas := results["Baseline"], results["TAPAS"]
	norm := base.PeakPower()
	step := base.Ticks / 12
	if step == 0 {
		step = 1
	}
	for _, res := range []*sim.Result{base, tapas} {
		line := fmt.Sprintf("%-8s norm peak:", res.Policy)
		for t := 0; t < res.Ticks; t += step {
			line += fmt.Sprintf(" %4.2f", res.PeakRowPowerW[t]/norm)
		}
		r.Lines = append(r.Lines, line)
	}
	red := 1 - tapas.PeakPower()/base.PeakPower()
	r.addf("peak power reduction: %.1f%% (paper: ≈20%%)", red*100)
	r.addf("TAPAS P99 SLO violations: %.2f%%, quality: %.3f", tapas.SLOViolationRate()*100, tapas.AvgQuality())

	// Simulator validation: the same scenario at a finer tick plays the
	// "real cluster"; the coarse fluid run is the simulator. The tick is a
	// runtime-only knob, so the compiled artifacts are reused as-is.
	fine := cs.Variant(func(sc *sim.Scenario) { sc.Tick = 15 * time.Second })
	fineRes, err := fine.Run(tapasPolicy())
	if err != nil {
		return nil, err
	}
	coarseSeries := normalizedSeries(tapas.PeakRowPowerW, norm)
	fineSeries := downsample(normalizedSeries(fineRes.PeakRowPowerW, norm), 4)
	n := len(coarseSeries)
	if len(fineSeries) < n {
		n = len(fineSeries)
	}
	absErr := regress.MAE(coarseSeries[:n], fineSeries[:n])
	r.addf("fluid-vs-fine absolute error: %.1f%% of peak (paper: 4%%)", absErr*100)
	return r, nil
}

// Fig19 runs the week-scale simulation and reports max temperature and peak
// power for Baseline vs TAPAS.
func Fig19(p Params) (*Report, error) {
	r := &Report{ID: "fig19", Title: "Week-scale max temperature and peak power"}
	cs, err := sim.Compile(scaledScenario(p))
	if err != nil {
		return nil, err
	}
	results := map[string]*sim.Result{}
	for _, pol := range []sim.Policy{baselinePolicy(), tapasPolicy()} {
		res, err := cs.Run(pol)
		if err != nil {
			return nil, err
		}
		results[res.Policy] = res
	}
	base, tapas := results["Baseline"], results["TAPAS"]
	normP := base.PeakPower()
	step := base.Ticks / 14
	if step == 0 {
		step = 1
	}
	for _, res := range []*sim.Result{base, tapas} {
		power := fmt.Sprintf("%-8s norm peak power:", res.Policy)
		temp := fmt.Sprintf("%-8s max temp (°C):  ", res.Policy)
		for t := 0; t < res.Ticks; t += step {
			power += fmt.Sprintf(" %4.2f", res.PeakRowPowerW[t]/normP)
			temp += fmt.Sprintf(" %4.0f", res.MaxTempC[t])
		}
		r.Lines = append(r.Lines, power, temp)
	}
	r.addf("max temperature: %.1f → %.1f °C (−%.1f%%; paper: −15%%)",
		base.MaxTemp(), tapas.MaxTemp(), (1-tapas.MaxTemp()/base.MaxTemp())*100)
	r.addf("peak row power: %.0f → %.0f kW (−%.1f%%; paper: −24%%)",
		base.PeakPower()/1000, tapas.PeakPower()/1000, (1-tapas.PeakPower()/base.PeakPower())*100)
	r.addf("thermal throttle server-ticks: %d → %d; power-cap server-ticks: %d → %d",
		base.ThermalThrottleSrvTicks, tapas.ThermalThrottleSrvTicks,
		base.PowerCapSrvTicks, tapas.PowerCapSrvTicks)
	r.addf("TAPAS quality %.3f, SLO violations %.2f%%", tapas.AvgQuality(), tapas.SLOViolationRate()*100)
	return r, nil
}

// Fig20 runs the ablation: all eight policies across five SaaS/IaaS mixes,
// reporting normalized max temperature and peak power.
func Fig20(p Params) (*Report, error) {
	r := &Report{ID: "fig20", Title: "Ablation: policies × SaaS/IaaS mixes"}
	mixes := []struct {
		name string
		saas float64
	}{
		{"SaaS", 1.0}, {"75/25", 0.75}, {"50/50", 0.5}, {"25/75", 0.25}, {"IaaS", 0.0},
	}
	variants := []core.Options{
		{},
		{Place: true},
		{Route: true},
		{Config: true},
		{Place: true, Route: true},
		{Place: true, Config: true},
		{Route: true, Config: true},
		{Place: true, Route: true, Config: true},
	}
	// Normalize to provisioned envelopes: row power limit and throttle temp.
	sc0 := scaledScenario(p)
	dc := mustDC(sc0.Layout)
	provPower := dc.Rows[0].ProvPowerW
	provTemp := dc.Servers[0].GPU.ThrottleTempC

	header := fmt.Sprintf("%-14s", "policy")
	for _, m := range mixes {
		header += fmt.Sprintf(" %12s", m.name)
	}
	r.Lines = append(r.Lines, "normalized max temperature / normalized peak power", header)
	// The 8 variants × 5 mixes grid is 40 independent simulations. The five
	// mixes compile once each (workload generation differs per SaaS
	// fraction); all eight policy variants of a mix then share the compiled
	// artifacts read-only across the worker pool. Results match the
	// compile-per-run path exactly.
	compiled, err := RunParallel(len(mixes), p.Parallel, func(_, mi int) (*sim.CompiledScenario, error) {
		sc := scaledScenario(p)
		sc.Workload.SaaSFraction = mixes[mi].saas
		return sim.Compile(sc)
	})
	if err != nil {
		return nil, err
	}
	type cell struct{ temp, power float64 }
	cells, err := RunParallel(len(variants)*len(mixes), p.Parallel, func(_, job int) (cell, error) {
		opts := variants[job/len(mixes)]
		res, err := compiled[job%len(mixes)].Run(core.New(opts))
		if err != nil {
			return cell{}, err
		}
		return cell{temp: res.MaxTemp() / provTemp, power: res.PeakPower() / provPower}, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, opts := range variants {
		line := fmt.Sprintf("%-14s", core.New(opts).Name())
		for mi := range mixes {
			c := cells[vi*len(mixes)+mi]
			line += fmt.Sprintf("  %4.2f/%4.2f", c.temp, c.power)
		}
		r.Lines = append(r.Lines, line)
	}
	r.notef("paper Fig. 20: each lever ≤12%% alone; TAPAS −17%% temp / −23%% power at 50/50; all-SaaS best (−23/−28%%); all-IaaS limited to Place")
	return r, nil
}

// Fig21 sweeps the oversubscription ratio and reports the fraction of time
// under thermal and power capping for Baseline and TAPAS.
func Fig21(p Params) (*Report, error) {
	r := &Report{ID: "fig21", Title: "Oversubscription capping sweep"}
	r.addf("%-8s %10s %14s %14s", "policy", "oversub%", "thermal-cap%", "power-cap%")
	for _, ratio := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		// Oversubscription changes the generated layout, so each ratio
		// compiles once and both policies share it.
		sc := scaledScenario(p)
		sc.Oversubscribe = ratio
		cs, err := sim.Compile(sc)
		if err != nil {
			return nil, err
		}
		for _, mk := range []func() sim.Policy{baselinePolicy, tapasPolicy} {
			res, err := cs.Run(mk())
			if err != nil {
				return nil, err
			}
			r.addf("%-8s %10.0f %14.2f %14.2f",
				res.Policy, ratio*100, res.ThrottleFrac()*100, res.PowerCapFrac()*100)
		}
	}
	r.notef("paper Fig. 21: no capping at 0%%; Baseline caps heavily beyond 20%%; TAPAS <0.7%% up to 40%%")
	return r, nil
}

// Table2 reproduces the emergency comparison: power (75% capacity) and
// cooling (90% airflow) failures during a peak-load window.
func Table2(p Params) (*Report, error) {
	r := &Report{ID: "table2", Title: "Emergency management: Baseline vs TAPAS"}
	peakLoad := func(sc *sim.Scenario) {
		// The paper measures emergencies over a peak-load window (§5.4);
		// below this demand the degraded envelopes still cover the fleet
		// and neither policy needs to act.
		sc.Workload.DemandScale = 1.3
		sc.Workload.Occupancy = 0.97
	}
	// The emergency matrix is 2 emergencies × 2 policies × {normal, failed}
	// = 8 independent simulations sharing one compiled scenario: the failure
	// schedule is a runtime-only knob, so every job reuses the same layout,
	// workload and seeded history via Variant.
	base := smallScenario(p)
	peakLoad(&base)
	cs, err := sim.Compile(base)
	if err != nil {
		return nil, err
	}
	emergencies := []sim.FailureKind{sim.PowerFailure, sim.CoolingFailure}
	policies := []func() sim.Policy{baselinePolicy, tapasPolicy}
	runs, err := RunParallel(len(emergencies)*len(policies)*2, p.Parallel, func(_, job int) (*sim.Result, error) {
		emergency := emergencies[job/(len(policies)*2)]
		mk := policies[(job/2)%len(policies)]
		run := cs
		if job%2 == 1 {
			run = cs.Variant(func(sc *sim.Scenario) {
				sc.Failures = []sim.FailureEvent{{Kind: emergency, At: sc.Duration / 6, Duration: sc.Duration}}
			})
		}
		return run.Run(mk())
	})
	if err != nil {
		return nil, err
	}
	for ei, emergency := range emergencies {
		r.addf("--- %s emergency ---", emergency)
		for pi := range policies {
			base := ei*len(policies)*2 + pi*2
			normal, failed := runs[base], runs[base+1]
			saasPerf := failed.SaaSServedTokens/normal.SaaSServedTokens - 1
			quality := failed.AvgQuality()/normal.AvgQuality() - 1
			r.addf("%-8s IaaS perf %+5.1f%%  SaaS perf %+5.1f%%  IaaS quality +0.0%%  SaaS quality %+5.1f%%",
				failed.Policy, -failed.IaaSPerfLoss()*100, saasPerf*100, quality*100)
		}
	}
	r.notef("paper Table 2: Baseline −35%%/−22%% perf (power/thermal) at zero quality cost; TAPAS holds IaaS at 0%%, improves SaaS perf, trades ≤12%%/6%% quality")
	return r, nil
}

func normalizedSeries(xs []float64, norm float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / norm
	}
	return out
}

// downsample averages each consecutive group of k samples.
func downsample(xs []float64, k int) []float64 {
	if k <= 1 {
		return xs
	}
	out := make([]float64, 0, len(xs)/k)
	for i := 0; i+k <= len(xs); i += k {
		sum := 0.0
		for j := 0; j < k; j++ {
			sum += xs[i+j]
		}
		out = append(out, sum/float64(k))
	}
	return out
}
