package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunParallelCtxPreCanceled proves a canceled context skips every job:
// nothing runs and the context's error is reported.
func TestRunParallelCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := RunParallelCtx(ctx, 8, workers, func(_, job int) (int, error) {
			ran.Add(1)
			return job, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d jobs ran under a canceled context", n)
	}
}

// TestRunParallelCtxMidRunCancel cancels from inside a job on the serial
// path, where job order is deterministic: jobs before the cancellation run
// and complete, jobs after it are skipped with ctx.Err().
func TestRunParallelCtxMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	results, err := RunParallelCtx(ctx, 5, 1, func(_, job int) (int, error) {
		ran.Add(1)
		if job == 1 {
			cancel()
		}
		return job * 10, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 2 {
		t.Errorf("%d jobs ran, want 2 (jobs 0 and 1; the rest skipped)", n)
	}
	// In-flight results survive: the error return still carries the partial
	// results slice, and completed jobs keep their values.
	if results[0] != 0 || results[1] != 10 {
		t.Errorf("completed jobs lost their results: %v", results[:2])
	}
}

// TestRunParallelCtxJobErrorWins proves a genuine job failure earlier in job
// order is reported in preference to a later cancellation error.
func TestRunParallelCtxJobErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := RunParallelCtx(ctx, 5, 1, func(_, job int) (int, error) {
		if job == 0 {
			return 0, boom
		}
		if job == 1 {
			cancel()
		}
		return job, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the job-0 failure", err)
	}
}
