package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunParallel executes n independent jobs on a bounded worker pool and
// collects their results in job order, so output is byte-identical no matter
// how many workers run. Each fn invocation receives the worker index (for
// per-worker scratch reuse) and the job index (for deterministic per-job
// seeding). workers ≤ 0 selects GOMAXPROCS; a single worker degenerates to
// a plain sequential loop on the calling goroutine.
//
// Every job runs even when an earlier one fails; the error reported is the
// one with the lowest job index, which again keeps the outcome independent
// of scheduling.
func RunParallel[T any](n, workers int, fn func(worker, job int) (T, error)) ([]T, error) {
	return RunParallelCtx(context.Background(), n, workers, fn)
}

// RunParallelCtx is RunParallel with cooperative cancellation: once ctx is
// done, jobs not yet started are skipped and recorded as ctx.Err() instead
// of running (in-flight jobs finish — fn is not interrupted mid-run). The
// error reported is still the one with the lowest job index, so a genuine
// job failure that ran before the cancellation wins over the cancellation
// error when it sits earlier in job order. Long-running services (the
// campaign daemon) use this to shed queued work on shutdown at run
// granularity.
func RunParallelCtx[T any](ctx context.Context, n, workers int, fn func(worker, job int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for job := 0; job < n; job++ {
			if err := ctx.Err(); err != nil {
				errs[job] = err
				continue
			}
			results[job], errs[job] = fn(0, job)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				for {
					job := int(next.Add(1)) - 1
					if job >= n {
						return
					}
					if err := ctx.Err(); err != nil {
						errs[job] = err
						continue
					}
					results[job], errs[job] = fn(worker, job)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ResolveWorkers maps the "unset" worker count (≤ 0) to GOMAXPROCS.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}
