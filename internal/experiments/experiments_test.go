package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRunAtQuickScale smoke-tests every registered experiment:
// it must run without error and produce non-empty output.
func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	p := QuickParams()
	for _, spec := range All {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			if testing.Short() && (spec.ID == "fig20" || spec.ID == "fig21") {
				t.Skip("multi-run sweep skipped in -short")
			}
			rep, err := spec.Run(p)
			if err != nil {
				t.Fatalf("%s failed: %v", spec.ID, err)
			}
			if len(rep.Lines) == 0 {
				t.Fatalf("%s produced no output", spec.ID)
			}
			var sb strings.Builder
			if _, err := rep.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), spec.ID) {
				t.Error("report header missing experiment ID")
			}
		})
	}
}

// TestParallelReportsDeterministic pins the fan-out contract: multi-run
// experiments produce byte-identical reports whether their independent runs
// execute sequentially or on a worker pool. fig20 and table2 share one
// compiled scenario per mix across the pool, so this also pins that the
// shared read-only artifacts cannot skew results.
func TestParallelReportsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep skipped in -short")
	}
	for _, id := range []string{"fig11", "fig20", "table2"} {
		spec, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		render := func(parallel int) string {
			p := QuickParams()
			p.Parallel = parallel
			rep, err := spec.Run(p)
			if err != nil {
				t.Fatalf("%s (parallel=%d) failed: %v", id, parallel, err)
			}
			var sb strings.Builder
			if _, err := rep.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			return sb.String()
		}
		if seq, par := render(1), render(4); seq != par {
			t.Errorf("%s report differs between parallel=1 and parallel=4:\n--- sequential ---\n%s--- parallel ---\n%s", id, seq, par)
		}
	}
}

func TestRunParallelOrderingAndErrors(t *testing.T) {
	squares, err := RunParallel(50, 4, func(_, job int) (int, error) {
		return job * job, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range squares {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
	// The reported error is the lowest-index failure, independent of
	// scheduling; later jobs still run.
	ran := make([]bool, 20)
	_, err = RunParallel(20, 4, func(_, job int) (int, error) {
		ran[job] = true
		if job == 7 || job == 13 {
			return 0, fmt.Errorf("job %d failed", job)
		}
		return 0, nil
	})
	if err == nil || err.Error() != "job 7 failed" {
		t.Errorf("err = %v, want the lowest-index failure (job 7)", err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("job %d never ran", i)
		}
	}
	if out, err := RunParallel(0, 4, func(_, int2 int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Errorf("n=0 must be a no-op, got %v, %v", out, err)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig19"); !ok {
		t.Error("fig19 must be registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown ID must not resolve")
	}
	if len(All) != 22 {
		t.Errorf("registered experiments = %d, want 22 (Table 1–2, Figs. 1–16, 18–21)", len(All))
	}
}

// TestFig19Shape verifies the headline numbers hold at quick scale: TAPAS
// beats Baseline on both temperature and power.
func TestFig19Shape(t *testing.T) {
	rep, err := Fig19(QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rep.Lines, "\n")
	if !strings.Contains(joined, "max temperature") || !strings.Contains(joined, "peak row power") {
		t.Fatalf("missing summary lines:\n%s", joined)
	}
	for _, line := range rep.Lines {
		if strings.HasPrefix(line, "max temperature") || strings.HasPrefix(line, "peak row power") {
			if strings.Contains(line, "−-") || strings.Contains(line, "(-") {
				t.Errorf("reduction negative (TAPAS lost): %s", line)
			}
		}
	}
}

// TestTable1Directions checks the direction arrows against the paper.
func TestTable1Directions(t *testing.T) {
	rep, err := Table1(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][4]string{
		"Model size":   {"↑", "↓", "↓", "↓"},
		"Quantization": {"↑", "↓", "↓", "↓"},
		"Parallelism":  {"↓", "↑", "↓", "−"},
		"Frequency":    {"↓", "↓", "↓", "−"},
		"Batch size":   {"↓", "↓", "↓", "−"},
	}
	for prefix, dirs := range want {
		found := false
		for _, line := range rep.Lines {
			if strings.HasPrefix(line, prefix) {
				found = true
				for i, label := range []string{"perf", "temp", "power", "quality"} {
					token := label + " " + dirs[i]
					if !strings.Contains(line, token) {
						t.Errorf("%s: want %q in %q", prefix, token, line)
					}
				}
			}
		}
		if !found {
			t.Errorf("no Table 1 row starting with %q", prefix)
		}
	}
}

// TestFig14AllocsPerRun pins the allocation budget of the template
// experiment. Fig14 builds 128 hour-of-week templates; before the flat
// bucket carving in power.buildTemplate (plus in-place percentiles and the
// reused series scratch here) it cost ~151k allocations per run — the worst
// in the benchmark suite by 20×. The budget has ~4× headroom over the
// current ~570 so incidental drift passes, but an accidental return to
// per-bucket growth fails loudly.
func TestFig14AllocsPerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second allocation measurement skipped in -short")
	}
	p := QuickParams()
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := Fig14(p); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 2500
	if allocs > budget {
		t.Errorf("Fig14 allocated %.0f times per run, budget %d", allocs, budget)
	}
}
