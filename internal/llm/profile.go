package llm

import (
	"sort"

	"github.com/tapas-sim/tapas/internal/layout"
)

// ProfileEntry is the offline-profiled characterization of one configuration
// (§4.5: when the provider onboards a new LLM, TAPAS profiles the impact of
// each configuration parameter on that hardware).
type ProfileEntry struct {
	Config Config
	// Goodput is sustainable tokens/s under the endpoint SLOs.
	Goodput float64
	// PeakGPUPowerFrac is the hottest per-GPU power fraction across phases;
	// combined with the thermal model it bounds the hottest GPU temperature.
	PeakGPUPowerFrac float64
	// PeakServerPowerW is the server power at the hungriest phase.
	PeakServerPowerW float64
	// AvgServerPowerW weights phases by their time share for the workload.
	AvgServerPowerW float64
	// Quality is the relative answer quality (70B FP16 = 1).
	Quality float64
}

// Profile is the full offline profile of an LLM on a hardware generation.
type Profile struct {
	Spec    layout.GPUSpec
	Work    Workload
	SLOs    SLOs
	Entries []ProfileEntry

	// index maps a configuration to its position in Entries. Entry is called
	// per instance per tick by the router, so the lookup must not scan (and
	// copy) the whole entry table.
	index map[Config]int

	// FullQuality lists the positions in Entries (preserving the goodput
	// ordering) whose Quality is at least 1 — the only entries that can pass
	// a quality floor of 1, which is what the Instance Configurator requires
	// outside emergencies. Scanning just these skips the reduced-quality
	// majority of the table on the common path.
	FullQuality []int
}

// BuildProfile characterizes every valid configuration, computing the data
// behind Figs. 15 and 16.
func BuildProfile(spec layout.GPUSpec, w Workload) *Profile {
	slos := ComputeSLOs(spec, DefaultConfig(), w)
	p := &Profile{Spec: spec, Work: w, SLOs: slos}
	for _, c := range ConfigSpace(spec) {
		p.Entries = append(p.Entries, Characterize(spec, c, w, slos))
	}
	// Deterministic ordering: by goodput descending, then by string.
	sort.Slice(p.Entries, func(i, j int) bool {
		if p.Entries[i].Goodput != p.Entries[j].Goodput {
			return p.Entries[i].Goodput > p.Entries[j].Goodput
		}
		return p.Entries[i].Config.String() < p.Entries[j].Config.String()
	})
	p.index = make(map[Config]int, len(p.Entries))
	for i, e := range p.Entries {
		p.index[e.Config] = i
		if e.Quality >= 1 {
			p.FullQuality = append(p.FullQuality, i)
		}
	}
	return p
}

// Characterize computes the profile entry for a single configuration.
func Characterize(spec layout.GPUSpec, c Config, w Workload, slos SLOs) ProfileEntry {
	prefillFrac := phaseTimeShare(spec, c, w)
	prePower := ServerPowerW(spec, c, Prefill)
	decPower := ServerPowerW(spec, c, Decode)
	preFrac := GPUPowerFrac(spec, c, Prefill)
	decFrac := GPUPowerFrac(spec, c, Decode)
	e := ProfileEntry{
		Config:           c,
		Goodput:          Goodput(spec, c, w, slos),
		PeakGPUPowerFrac: maxf(preFrac, decFrac),
		PeakServerPowerW: maxf(prePower, decPower),
		AvgServerPowerW:  prefillFrac*prePower + (1-prefillFrac)*decPower,
		Quality:          c.Quality(),
	}
	return e
}

// phaseTimeShare returns the fraction of busy time an instance spends in
// prefill for the workload under config c.
func phaseTimeShare(spec layout.GPUSpec, c Config, w Workload) float64 {
	dPre := w.AvgPromptTokens / PrefillRate(spec, c)
	dDec := w.AvgOutputTokens * DecodeStepTime(spec, c, c.MaxBatch).Seconds() / float64(c.MaxBatch)
	if dPre+dDec == 0 {
		return 0
	}
	return dPre / (dPre + dDec)
}

// Best returns the highest-goodput entry satisfying all three limits: a
// per-GPU power-fraction ceiling (thermal headroom), a server power ceiling,
// and a quality floor. ok is false when nothing qualifies. This is the
// Instance Configurator's core search (§4.3).
func (p *Profile) Best(maxGPUPowerFrac, maxServerPowerW, minQuality float64) (ProfileEntry, bool) {
	for _, e := range p.Entries { // already sorted by goodput desc
		if e.Goodput <= 0 {
			continue
		}
		if e.PeakGPUPowerFrac <= maxGPUPowerFrac &&
			e.PeakServerPowerW <= maxServerPowerW &&
			e.Quality >= minQuality {
			return e, true
		}
	}
	return ProfileEntry{}, false
}

// BestPreferringCheapReconfig behaves like Best but among entries within
// tolerance of the best goodput prefers ones not requiring a model reload
// from the current config — the paper's "quantization and size changes are
// a last resort" rule.
func (p *Profile) BestPreferringCheapReconfig(cur Config, maxGPUPowerFrac, maxServerPowerW, minQuality float64) (ProfileEntry, bool) {
	best, ok := p.Best(maxGPUPowerFrac, maxServerPowerW, minQuality)
	if !ok {
		return best, false
	}
	const tolerance = 0.93 // accept ≤7% goodput loss to avoid a reload
	if ReconfigTime(cur, best.Config) == 0 {
		return best, true
	}
	for _, e := range p.Entries {
		if e.Goodput < best.Goodput*tolerance {
			break
		}
		if ReconfigTime(cur, e.Config) != 0 {
			continue
		}
		if e.PeakGPUPowerFrac <= maxGPUPowerFrac &&
			e.PeakServerPowerW <= maxServerPowerW &&
			e.Quality >= minQuality && e.Goodput > 0 {
			return e, true
		}
	}
	return best, true
}

// Entry returns the profile entry for an exact configuration.
func (p *Profile) Entry(c Config) (ProfileEntry, bool) {
	if p.index != nil {
		if i, ok := p.index[c]; ok {
			return p.Entries[i], true
		}
		return ProfileEntry{}, false
	}
	// Profiles assembled by hand (tests) have no index; fall back to a scan.
	for _, e := range p.Entries {
		if e.Config == c {
			return e, true
		}
	}
	return ProfileEntry{}, false
}

// ParetoFrontier returns the entries not dominated in (goodput↑, peak GPU
// power frac↓, peak server power↓) within each quality tier — the per-model
// frontiers of Fig. 16.
func (p *Profile) ParetoFrontier(model ModelSize) []ProfileEntry {
	var tier []ProfileEntry
	for _, e := range p.Entries {
		if e.Config.Model == model && e.Goodput > 0 {
			tier = append(tier, e)
		}
	}
	var frontier []ProfileEntry
	for i, e := range tier {
		dominated := false
		for j, o := range tier {
			if i == j {
				continue
			}
			if o.Goodput >= e.Goodput &&
				o.PeakGPUPowerFrac <= e.PeakGPUPowerFrac &&
				o.PeakServerPowerW <= e.PeakServerPowerW &&
				(o.Goodput > e.Goodput || o.PeakGPUPowerFrac < e.PeakGPUPowerFrac || o.PeakServerPowerW < e.PeakServerPowerW) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, e)
		}
	}
	return frontier
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
