package llm

import (
	"math"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/regress"
)

func queueInstance(c Config) *Instance {
	spec := layout.Spec(layout.A100)
	w := DefaultWorkload()
	in := NewInstance(spec, c, w, ComputeSLOs(spec, DefaultConfig(), w))
	in.AttachQueue(0)
	return in
}

// TestQueueSingleRequestLatencies pins the analytic latencies of one request
// served alone: TTFT is the prompt's prefill time, TBT one single-sequence
// decode step, queueing delay zero.
func TestQueueSingleRequestLatencies(t *testing.T) {
	in := queueInstance(DefaultConfig())
	req := Request{ID: 1, Endpoint: 2, PromptTokens: 1000, OutputTokens: 10}
	in.EnqueueRequest(req)
	for i := 0; i < 10 && len(in.Queue().completions) == 0; i++ {
		in.Step(10 * time.Second)
	}
	comps := in.DrainCompletions()
	if len(comps) != 1 {
		t.Fatalf("got %d completions, want 1", len(comps))
	}
	c := comps[0]
	if c.Endpoint != 2 {
		t.Errorf("endpoint %d, want 2", c.Endpoint)
	}
	wantTTFT := float64(req.PromptTokens) / PrefillRate(in.Spec, in.Config)
	if math.Abs(c.TTFT-wantTTFT) > 1e-9 {
		t.Errorf("TTFT %v, want %v", c.TTFT, wantTTFT)
	}
	wantTBT := DecodeStepTime(in.Spec, in.Config, 1).Seconds()
	if math.Abs(c.TBT-wantTBT) > 1e-9 {
		t.Errorf("TBT %v, want %v", c.TBT, wantTBT)
	}
	if c.QueueDelay != 0 {
		t.Errorf("queue delay %v, want 0", c.QueueDelay)
	}
	if c.Violated {
		t.Error("unloaded request flagged as SLO-violated")
	}
	if in.CompletedRequests != 1 {
		t.Errorf("CompletedRequests %v, want 1", in.CompletedRequests)
	}
	if want := float64(req.TotalTokens()); in.ServedTokens != want {
		t.Errorf("ServedTokens %v, want %v", in.ServedTokens, want)
	}
}

// TestQueueMatchesEngineSim cross-validates the tick-driven queue against the
// self-clocked EngineSim on an identical burst: with every request present at
// t=0 both models execute the same operation sequence, so per-request TTFT
// and TBT must agree to floating-point noise regardless of tick size.
func TestQueueMatchesEngineSim(t *testing.T) {
	cfg := Config{Model: Llama70B, Quant: FP16, TP: 8, MaxBatch: 4, FreqFrac: 1}
	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, Request{
			ID: int64(i), Customer: i % 3,
			PromptTokens: 500 + 100*i, OutputTokens: 20 + i,
		})
	}
	spec := layout.Spec(layout.A100)
	slos := ComputeSLOs(spec, DefaultConfig(), DefaultWorkload())
	ref := NewEngineSim(spec, cfg).Run(reqs, time.Hour, slos)

	in := queueInstance(cfg)
	for _, r := range reqs {
		in.EnqueueRequest(r)
	}
	var comps []Completion
	for i := 0; i < 10000 && len(comps) < len(reqs); i++ {
		in.Step(time.Second)
		comps = append(comps, in.DrainCompletions()...)
	}
	if len(comps) != ref.Completed {
		t.Fatalf("queue completed %d, EngineSim %d", len(comps), ref.Completed)
	}
	// Both models run the same op sequence, so the latency samples agree and
	// identical percentile evaluations must too.
	ttfts := make([]float64, 0, len(comps))
	tbts := make([]float64, 0, len(comps))
	for _, c := range comps {
		ttfts = append(ttfts, c.TTFT)
		tbts = append(tbts, c.TBT)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"TTFT p50", regress.Percentile(ttfts, 50), ref.TTFTP50.Seconds()},
		{"TTFT p99", regress.Percentile(ttfts, 99), ref.TTFTP99.Seconds()},
		{"TBT p99", regress.Percentile(tbts, 99), ref.TBTP99.Seconds()},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-6*c.want {
			t.Errorf("%s: queue %v, EngineSim %v", c.name, c.got, c.want)
		}
	}
}

// TestQueueOpCarriesAcrossTicks pins tick-size independence: the same burst
// served with 1s ticks and with 30s ticks yields completions whose latencies
// agree to floating-point noise, because a partially executed operation
// carries its remaining work and true start time across tick boundaries.
func TestQueueOpCarriesAcrossTicks(t *testing.T) {
	cfg := Config{Model: Llama70B, Quant: FP16, TP: 8, MaxBatch: 16, FreqFrac: 1}
	var reqs []Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, Request{ID: int64(i), PromptTokens: 2000, OutputTokens: 50})
	}
	run := func(tick time.Duration) []Completion {
		in := queueInstance(cfg)
		for _, r := range reqs {
			in.EnqueueRequest(r)
		}
		var comps []Completion
		for i := 0; i < 100000 && len(comps) < len(reqs); i++ {
			in.Step(tick)
			comps = append(comps, in.DrainCompletions()...)
		}
		return comps
	}
	fine, coarse := run(time.Second), run(30*time.Second)
	if len(fine) != len(reqs) || len(coarse) != len(reqs) {
		t.Fatalf("completions: fine %d, coarse %d, want %d", len(fine), len(coarse), len(reqs))
	}
	for i := range fine {
		if math.Abs(fine[i].TTFT-coarse[i].TTFT) > 1e-6 {
			t.Errorf("req %d TTFT: fine %v, coarse %v", i, fine[i].TTFT, coarse[i].TTFT)
		}
		if math.Abs(fine[i].TBT-coarse[i].TBT) > 1e-6 {
			t.Errorf("req %d TBT: fine %v, coarse %v", i, fine[i].TBT, coarse[i].TBT)
		}
	}
}

// TestQueueSpeedFactorSlowsServing pins that a capped instance (SpeedFactor
// 0.5) takes twice the wall time for the same prefill work.
func TestQueueSpeedFactorSlowsServing(t *testing.T) {
	run := func(sf float64) float64 {
		in := queueInstance(DefaultConfig())
		in.SpeedFactor = sf
		in.EnqueueRequest(Request{ID: 1, PromptTokens: 4000, OutputTokens: 0})
		for i := 0; i < 100 && len(in.Queue().completions) == 0; i++ {
			in.Step(time.Second)
		}
		comps := in.DrainCompletions()
		if len(comps) != 1 {
			t.Fatalf("sf=%v: got %d completions", sf, len(comps))
		}
		return comps[0].TTFT
	}
	full, half := run(1), run(0.5)
	if math.Abs(half-2*full) > 1e-9 {
		t.Errorf("TTFT at half speed %v, want 2× full-speed %v", half, full)
	}
}

// TestQueueSpeedFactorZeroStalls is the regression test for the SpeedFactor
// guard: a fully frequency-capped instance (SpeedFactor 0) must make no
// progress at all — previously the guard silently reset it to full speed.
// The wall clock still advances, so queueing delay keeps accumulating.
func TestQueueSpeedFactorZeroStalls(t *testing.T) {
	in := queueInstance(DefaultConfig())
	in.SpeedFactor = 0
	in.EnqueueRequest(Request{ID: 1, PromptTokens: 100, OutputTokens: 5})
	for i := 0; i < 50; i++ {
		in.Step(time.Second)
	}
	if got := in.DrainCompletions(); len(got) != 0 {
		t.Fatalf("stalled instance completed %d requests, want 0", len(got))
	}
	if in.ServedTokens != 0 {
		t.Errorf("stalled instance served %v tokens, want 0", in.ServedTokens)
	}
	if in.Queue().WaitingLen() != 1 {
		t.Errorf("waiting %d, want the stalled request still queued", in.Queue().WaitingLen())
	}
	// Restore speed: the request completes, and its TTFT covers the stall.
	in.SpeedFactor = 1
	for i := 0; i < 100 && len(in.Queue().completions) == 0; i++ {
		in.Step(time.Second)
	}
	comps := in.DrainCompletions()
	if len(comps) != 1 {
		t.Fatalf("got %d completions after un-stalling, want 1", len(comps))
	}
	if comps[0].TTFT < 50 {
		t.Errorf("TTFT %v does not cover the 50s stall", comps[0].TTFT)
	}
}

// TestQueueSpeedFactorMonotoneTTFT is the property the frequency-capping
// model relies on: lowering SpeedFactor never lowers any request's recorded
// TTFT, and SpeedFactor 0 completes nothing at all.
func TestQueueSpeedFactorMonotoneTTFT(t *testing.T) {
	reqs := []Request{
		{ID: 0, PromptTokens: 1500, OutputTokens: 10},
		{ID: 1, PromptTokens: 700, OutputTokens: 25, Arrival: 3 * time.Second},
		{ID: 2, PromptTokens: 2400, OutputTokens: 5, Arrival: 7 * time.Second},
	}
	run := func(sf float64) []Completion {
		in := queueInstance(DefaultConfig())
		in.SpeedFactor = sf
		for _, r := range reqs {
			in.EnqueueRequest(r)
		}
		var comps []Completion
		for i := 0; i < 2000 && len(comps) < len(reqs); i++ {
			in.Step(time.Second)
			comps = append(comps, in.DrainCompletions()...)
		}
		return comps
	}
	if got := run(0); len(got) != 0 {
		t.Fatalf("SpeedFactor 0 completed %d requests, want 0", len(got))
	}
	prev := run(1)
	if len(prev) != len(reqs) {
		t.Fatalf("full speed completed %d of %d", len(prev), len(reqs))
	}
	for _, sf := range []float64{0.8, 0.5, 0.3, 0.1} {
		cur := run(sf)
		if len(cur) != len(reqs) {
			t.Fatalf("sf=%v completed %d of %d", sf, len(cur), len(reqs))
		}
		for i := range cur {
			if cur[i].TTFT < prev[i].TTFT-1e-9 {
				t.Errorf("sf=%v request %d TTFT %v below faster run's %v", sf, i, cur[i].TTFT, prev[i].TTFT)
			}
		}
		prev = cur
	}
}

// TestQueueDecodeRunsPastUnprefillableHead is the decode-starvation
// regression test: with an active decode batch and a head-of-line request
// that cannot prefill (prefill rate zero), startOp must fall through to
// decode — previously it returned false and the running batch starved.
func TestQueueDecodeRunsPastUnprefillableHead(t *testing.T) {
	in := queueInstance(Config{Model: Llama70B, Quant: FP16, TP: 8, MaxBatch: 1, FreqFrac: 1})
	// Size the decode phase to span a few seconds so the batch is observably
	// active between ticks.
	out := int(2.0/DecodeStepTime(in.Spec, in.Config, 1).Seconds()) + 10
	in.EnqueueRequest(Request{ID: 1, PromptTokens: 100, OutputTokens: out})
	// Admit request 1 into the decode batch (MaxBatch 1 keeps request 2 out).
	for i := 0; i < 100 && in.Queue().ActiveLen() == 0; i++ {
		in.Step(100 * time.Millisecond)
	}
	if in.Queue().ActiveLen() != 1 {
		t.Fatal("request 1 never entered the decode batch")
	}
	in.EnqueueRequest(Request{ID: 2, PromptTokens: 100, OutputTokens: 1})
	in.prefillRate = 0 // the waiting head can no longer start
	var comps []Completion
	for i := 0; i < 100 && len(comps) == 0; i++ {
		in.Step(time.Second)
		comps = append(comps, in.DrainCompletions()...)
	}
	if len(comps) != 1 || comps[0].Endpoint != 0 {
		t.Fatalf("active batch starved behind the unprefillable head: %+v", comps)
	}
	if in.Queue().WaitingLen() != 1 {
		t.Errorf("waiting %d, want the unprefillable request still queued", in.Queue().WaitingLen())
	}
}

// TestQueueEDFPrefersTightestDeadline pins the EDF discipline: with equal
// arrivals, the longer prompt has the earlier latest-allowable prefill start
// (deadline − prompt/prefillRate), so EDF admits it first while FIFO keeps
// arrival order.
func TestQueueEDFPrefersTightestDeadline(t *testing.T) {
	short := Request{ID: 1, PromptTokens: 200, OutputTokens: 0}
	long := Request{ID: 2, PromptTokens: 4000, OutputTokens: 0}
	firstDone := func(d Discipline) int {
		in := queueInstance(Config{Model: Llama70B, Quant: FP16, TP: 8, MaxBatch: 1, FreqFrac: 1})
		in.Queue().SetDiscipline(d)
		in.EnqueueRequest(short)
		in.EnqueueRequest(long)
		for i := 0; i < 1000; i++ {
			in.Step(time.Second)
			if comps := in.DrainCompletions(); len(comps) > 0 {
				return comps[0].Endpoint
			}
		}
		t.Fatal("no completion")
		return -1
	}
	// Endpoint doubles as a marker: tag the requests by endpoint ID.
	short.Endpoint, long.Endpoint = 1, 2
	if got := firstDone(FIFO); got != 1 {
		t.Errorf("FIFO served endpoint %d first, want the earlier-queued short prompt (1)", got)
	}
	if got := firstDone(EDF); got != 2 {
		t.Errorf("EDF served endpoint %d first, want the tighter-deadline long prompt (2)", got)
	}
}

// TestQueueSLOViolationFlag pins the violation check: impossible SLO bounds
// flag every completion and count it in SLOViolatedReqs.
func TestQueueSLOViolationFlag(t *testing.T) {
	spec := layout.Spec(layout.A100)
	w := DefaultWorkload()
	in := NewInstance(spec, DefaultConfig(), w, SLOs{TTFT: time.Nanosecond, TBT: time.Nanosecond})
	in.AttachQueue(0)
	in.EnqueueRequest(Request{ID: 1, PromptTokens: 1000, OutputTokens: 5})
	for i := 0; i < 100 && len(in.Queue().completions) == 0; i++ {
		in.Step(time.Second)
	}
	comps := in.DrainCompletions()
	if len(comps) != 1 || !comps[0].Violated {
		t.Fatalf("want one violated completion, got %+v", comps)
	}
	if in.SLOViolatedReqs != 1 {
		t.Errorf("SLOViolatedReqs %v, want 1", in.SLOViolatedReqs)
	}
}

// TestQueueStepDrained pins the drained fast path in replay mode: it applies
// only when the queue is empty, and keeps the wall clock advancing so a
// request arriving later still measures a correct queueing delay.
func TestQueueStepDrained(t *testing.T) {
	in := queueInstance(DefaultConfig())
	if !in.StepDrained(time.Minute) {
		t.Fatal("StepDrained false on an idle queue")
	}
	// The clock advanced while idle: a request that arrived at t=30s and is
	// admitted at t=60s has 30s of queueing delay before prefill starts.
	in.EnqueueRequest(Request{ID: 1, PromptTokens: 1000, OutputTokens: 0, Arrival: 30 * time.Second})
	if in.StepDrained(time.Minute) {
		t.Fatal("StepDrained true with a queued request")
	}
	in.Step(time.Minute)
	comps := in.DrainCompletions()
	if len(comps) != 1 {
		t.Fatalf("got %d completions, want 1", len(comps))
	}
	if got := comps[0].QueueDelay; math.Abs(got-30) > 1e-9 {
		t.Errorf("queue delay %v, want 30s", got)
	}
}

// TestQueueZeroOutputCompletesAtPrefill pins that a prompt-only request
// finishes at prefill end with zero TBT.
func TestQueueZeroOutputCompletesAtPrefill(t *testing.T) {
	in := queueInstance(DefaultConfig())
	in.EnqueueRequest(Request{ID: 1, PromptTokens: 100, OutputTokens: 0})
	in.Step(time.Minute)
	comps := in.DrainCompletions()
	if len(comps) != 1 {
		t.Fatalf("got %d completions, want 1", len(comps))
	}
	if comps[0].TBT != 0 {
		t.Errorf("TBT %v, want 0", comps[0].TBT)
	}
	if !in.Queue().Idle() {
		t.Error("queue not idle after the only request completed")
	}
}
