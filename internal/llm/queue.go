package llm

import (
	"time"

	"github.com/tapas-sim/tapas/internal/units"
)

// Completion is the latency record of one finished request, drained by the
// simulation engine at end of run. Latencies are in seconds: TTFT is first
// token minus arrival, TBT the maximum gap between consecutive output tokens,
// QueueDelay the wait from arrival until prefill started. Violated reports
// whether TTFT or TBT exceeded the endpoint's SLOs.
type Completion struct {
	Endpoint   int
	TTFT       float64
	TBT        float64
	QueueDelay float64
	Violated   bool
}

// opKind identifies the engine operation a RequestQueue is executing.
type opKind uint8

const (
	opNone opKind = iota
	opPrefill
	opDecode
)

// Discipline selects the order startOp admits waiting requests in.
type Discipline uint8

const (
	// FIFO admits the oldest waiting request first (arrival order) — the
	// default, matching EngineSim's iteration-level semantics.
	FIFO Discipline = iota
	// EDF admits the waiting request with the earliest latest-allowable
	// prefill start first: to meet its TTFT deadline (arrival + TTFT SLO),
	// a request's prefill must begin by deadline − prompt/prefillRate, so
	// EDF prioritizes the request with the least slack — earlier arrivals
	// and longer prompts. Ties (equal deadlines) keep arrival order.
	EDF
)

// queuedReq is a request tracked through the queue with its latency marks
// (seconds on the queue's wall clock).
type queuedReq struct {
	req        Request
	tokensLeft int
	firstToken float64
	queueDelay float64
	maxTBT     float64
}

// RequestQueue is the discrete-event continuous-batching state of one
// instance in request-level replay mode: a FIFO of waiting requests, the
// running decode batch, and the in-flight engine operation. It mirrors
// EngineSim's iteration-level semantics — prefill admits the oldest waiting
// request whenever the batch has room, otherwise one decode iteration
// advances every running sequence by one token — but is driven by the tick
// kernel: each tick consumes wall time at the instance's SpeedFactor, and an
// operation that outlives the tick carries its remaining work (and its true
// start time, so TTFT/TBT measure real wall spans across frequency changes)
// into the next one.
//
// All latency bookkeeping is in float64 seconds on an internal wall clock
// that advances by exactly one tick per Step, so results are independent of
// how the fleet is sharded across worker goroutines.
type RequestQueue struct {
	now  float64 // wall clock, seconds since simulation start
	disc Discipline

	waiting []*queuedReq
	active  []*queuedReq

	op         opKind
	opUnitLeft float64 // full-speed seconds of work remaining in the op
	opStart    float64 // wall clock when the op began

	// O(1) backlog bookkeeping (token sums over waiting/active).
	waitingPrompt float64
	waitingOutput float64
	activeOutLeft float64

	completions []Completion
}

// Idle reports whether the queue holds no work at all.
func (q *RequestQueue) Idle() bool {
	return q.op == opNone && len(q.waiting) == 0 && len(q.active) == 0
}

// WaitingLen returns the number of requests not yet prefilled.
func (q *RequestQueue) WaitingLen() int { return len(q.waiting) }

// SetDiscipline selects the scheduling discipline startOp uses to pick the
// next waiting request. Policies choose it per instance when the engine
// attaches the queue; changing it mid-run only affects subsequent prefills.
func (q *RequestQueue) SetDiscipline(d Discipline) { q.disc = d }

// Discipline returns the queue's scheduling discipline.
func (q *RequestQueue) Discipline() Discipline { return q.disc }

// ActiveLen returns the running decode batch size.
func (q *RequestQueue) ActiveLen() int { return len(q.active) }

// AttachQueue switches the instance into request-level replay mode: Step
// executes a continuous-batching queue instead of the fluid token drain. The
// queue's wall clock starts at `at` (the simulation time the instance begins
// serving), so latencies of requests admitted later are measured correctly.
func (in *Instance) AttachQueue(at time.Duration) {
	in.queue = &RequestQueue{now: at.Seconds()}
}

// Queue returns the attached request queue, nil in fluid mode.
func (in *Instance) Queue() *RequestQueue { return in.queue }

// EnqueueRequest admits one request to the instance's queue (request-level
// replay mode only). The router calls it with requests whose arrival time
// precedes the current tick, so queueing delay is always non-negative.
func (in *Instance) EnqueueRequest(req Request) {
	in.enqueuedTokens += float64(req.TotalTokens())
	in.Touch(req.Customer)
	q := in.queue
	q.waiting = append(q.waiting, &queuedReq{req: req})
	q.waitingPrompt += float64(req.PromptTokens)
	q.waitingOutput += float64(req.OutputTokens)
}

// DrainCompletions returns the latency records accumulated since the last
// drain and clears them. Returns nil in fluid mode.
func (in *Instance) DrainCompletions() []Completion {
	if in.queue == nil {
		return nil
	}
	out := in.queue.completions
	in.queue.completions = nil
	return out
}

// stepQueue is Step in request-level replay mode: it advances the queue's
// wall clock by dt, executing engine operations at the current SpeedFactor
// and carrying a partially finished operation across the tick boundary.
func (in *Instance) stepQueue(dt time.Duration) {
	q := in.queue
	in.enqueuedTokens = 0
	in.affinityNow += dt
	in.BusyFrac, in.PrefillShare = 0, 0
	dtSecs := in.tickSecs(dt)
	tickEnd := q.now + dtSecs
	t := q.now
	if in.reloadLeft > 0 {
		if in.reloadLeft >= dt {
			in.reloadLeft -= dt
			q.now = tickEnd
			in.BacklogSecs = in.DemandSeconds()
			return
		}
		t += in.reloadLeft.Seconds()
		in.reloadLeft = 0
	}
	// SpeedFactor clamps to [0,1]: values above 1 cannot serve faster than
	// the configuration's rates, and a fully frequency-capped instance
	// (SpeedFactor 0) makes no progress at all — the tick passes, the wall
	// clock advances, and every queued request keeps waiting. (The engine
	// always sets SpeedFactor before Step; NewInstance seeds it to 1 so
	// directly constructed instances serve at full speed.)
	sf := in.SpeedFactor
	if sf > 1 {
		sf = 1
	} else if sf < 0 {
		sf = 0
	}
	if sf == 0 {
		q.now = tickEnd
		in.BacklogSecs = in.DemandSeconds()
		return
	}
	var busySecs, prefillSecs float64
	for t < tickEnd {
		if q.op == opNone && !q.startOp(in, t) {
			break // drained: no waiting requests, no running batch
		}
		need := q.opUnitLeft / sf
		if rem := tickEnd - t; need > rem {
			// The op outlives the tick: consume the remaining budget and
			// carry the rest (opStart is preserved, so the spans recorded at
			// completion cover the full wall time).
			q.opUnitLeft -= rem * sf
			busySecs += rem
			if q.op == opPrefill {
				prefillSecs += rem
			}
			t = tickEnd
			break
		}
		busySecs += need
		if q.op == opPrefill {
			prefillSecs += need
		}
		t += need
		q.finishOp(in, t)
	}
	q.now = tickEnd
	if busySecs > 0 {
		in.BusyFrac = units.Clamp01(busySecs / dtSecs)
		in.PrefillShare = units.Clamp01(prefillSecs / busySecs)
	}
	in.BacklogSecs = in.DemandSeconds()
}

// startOp picks the next engine operation, mirroring EngineSim: prefill a
// waiting request (discipline order) while the batch has room, otherwise run
// one decode iteration over the whole running batch. An unprefillable head
// (prefill rate zero) falls through to decode, so the running batch never
// starves behind a request that cannot start. Reports false when drained.
func (q *RequestQueue) startOp(in *Instance, t float64) bool {
	if len(q.waiting) > 0 && len(q.active) < in.Config.MaxBatch && in.prefillRate > 0 {
		if idx := q.pickWaiting(in); idx > 0 {
			// Rotate the pick to the front, preserving the relative order of
			// the others; finishOp pops index 0. FIFO picks 0, so the rotate
			// is a no-op there and the historical order is bit-identical.
			r := q.waiting[idx]
			copy(q.waiting[1:idx+1], q.waiting[:idx])
			q.waiting[0] = r
		}
		r := q.waiting[0]
		q.op = opPrefill
		q.opUnitLeft = float64(r.req.PromptTokens) / in.prefillRate
		q.opStart = t
		r.queueDelay = t - r.req.Arrival.Seconds()
		return true
	}
	if len(q.active) > 0 {
		q.op = opDecode
		q.opUnitLeft = DecodeStepTime(in.Spec, in.Config, len(q.active)).Seconds()
		q.opStart = t
		return true
	}
	return false
}

// pickWaiting selects which waiting request the next prefill admits. FIFO is
// index 0; EDF scans for the earliest latest-allowable start — deadline
// (arrival + TTFT SLO) minus the prompt's prefill time — with ties keeping
// the lowest index, so the scan is deterministic. Callers guarantee
// in.prefillRate > 0.
func (q *RequestQueue) pickWaiting(in *Instance) int {
	if q.disc != EDF || len(q.waiting) < 2 {
		return 0
	}
	slo := in.SLOs.TTFT.Seconds()
	best, bestStart := 0, 0.0
	for i, r := range q.waiting {
		start := r.req.Arrival.Seconds() + slo - float64(r.req.PromptTokens)/in.prefillRate
		if i == 0 || start < bestStart {
			best, bestStart = i, start
		}
	}
	return best
}

// finishOp applies the effects of the completed operation at wall time t.
func (q *RequestQueue) finishOp(in *Instance, t float64) {
	switch q.op {
	case opPrefill:
		r := q.waiting[0]
		q.waiting = q.waiting[1:]
		q.waitingPrompt -= float64(r.req.PromptTokens)
		q.waitingOutput -= float64(r.req.OutputTokens)
		in.ServedTokens += float64(r.req.PromptTokens)
		r.firstToken = t
		if r.req.OutputTokens <= 0 {
			q.complete(in, r)
		} else {
			r.tokensLeft = r.req.OutputTokens
			q.active = append(q.active, r)
			q.activeOutLeft += float64(r.req.OutputTokens)
		}
	case opDecode:
		n := float64(len(q.active))
		in.ServedTokens += n
		q.activeOutLeft -= n
		keep := q.active[:0]
		for _, r := range q.active {
			r.tokensLeft--
			if span := t - q.opStart; span > r.maxTBT {
				r.maxTBT = span
			}
			if r.tokensLeft <= 0 {
				q.complete(in, r)
			} else {
				keep = append(keep, r)
			}
		}
		for i := len(keep); i < len(q.active); i++ {
			q.active[i] = nil // release completed requests
		}
		q.active = keep
	}
	q.op = opNone
	q.opUnitLeft = 0
}

// complete records a finished request and folds it into the instance's
// cumulative accounting.
func (q *RequestQueue) complete(in *Instance, r *queuedReq) {
	ttft := r.firstToken - r.req.Arrival.Seconds()
	violated := ttft > in.SLOs.TTFT.Seconds() || r.maxTBT > in.SLOs.TBT.Seconds()
	in.CompletedRequests++
	in.QualityWeight += in.Config.Quality()
	if violated {
		in.SLOViolatedReqs++
	}
	q.completions = append(q.completions, Completion{
		Endpoint:   r.req.Endpoint,
		TTFT:       ttft,
		TBT:        r.maxTBT,
		QueueDelay: r.queueDelay,
		Violated:   violated,
	})
}

// queueDemandSeconds estimates the seconds of work queued in request-level
// replay mode: the in-flight op's remainder, waiting prompts at the prefill
// rate, and all outstanding output tokens at the full-batch decode rate.
func (in *Instance) queueDemandSeconds() float64 {
	q := in.queue
	pr, dr := in.prefillRate, in.decodeRate
	if pr <= 0 || dr <= 0 {
		return 0
	}
	return q.opUnitLeft + q.waitingPrompt/pr + (q.waitingOutput+q.activeOutLeft)/dr
}
