package llm

import (
	"time"

	"github.com/tapas-sim/tapas/internal/units"
)

// Completion is the latency record of one finished request, drained by the
// simulation engine at end of run. Latencies are in seconds: TTFT is first
// token minus arrival, TBT the maximum gap between consecutive output tokens,
// QueueDelay the wait from arrival until prefill started. Violated reports
// whether TTFT or TBT exceeded the endpoint's SLOs.
type Completion struct {
	Endpoint   int
	TTFT       float64
	TBT        float64
	QueueDelay float64
	Violated   bool
}

// opKind identifies the engine operation a RequestQueue is executing.
type opKind uint8

const (
	opNone opKind = iota
	opPrefill
	opDecode
)

// queuedReq is a request tracked through the queue with its latency marks
// (seconds on the queue's wall clock).
type queuedReq struct {
	req        Request
	tokensLeft int
	firstToken float64
	queueDelay float64
	maxTBT     float64
}

// RequestQueue is the discrete-event continuous-batching state of one
// instance in request-level replay mode: a FIFO of waiting requests, the
// running decode batch, and the in-flight engine operation. It mirrors
// EngineSim's iteration-level semantics — prefill admits the oldest waiting
// request whenever the batch has room, otherwise one decode iteration
// advances every running sequence by one token — but is driven by the tick
// kernel: each tick consumes wall time at the instance's SpeedFactor, and an
// operation that outlives the tick carries its remaining work (and its true
// start time, so TTFT/TBT measure real wall spans across frequency changes)
// into the next one.
//
// All latency bookkeeping is in float64 seconds on an internal wall clock
// that advances by exactly one tick per Step, so results are independent of
// how the fleet is sharded across worker goroutines.
type RequestQueue struct {
	now float64 // wall clock, seconds since simulation start

	waiting []*queuedReq
	active  []*queuedReq

	op         opKind
	opUnitLeft float64 // full-speed seconds of work remaining in the op
	opStart    float64 // wall clock when the op began

	// O(1) backlog bookkeeping (token sums over waiting/active).
	waitingPrompt float64
	waitingOutput float64
	activeOutLeft float64

	completions []Completion
}

// Idle reports whether the queue holds no work at all.
func (q *RequestQueue) Idle() bool {
	return q.op == opNone && len(q.waiting) == 0 && len(q.active) == 0
}

// WaitingLen returns the number of requests not yet prefilled.
func (q *RequestQueue) WaitingLen() int { return len(q.waiting) }

// ActiveLen returns the running decode batch size.
func (q *RequestQueue) ActiveLen() int { return len(q.active) }

// AttachQueue switches the instance into request-level replay mode: Step
// executes a continuous-batching queue instead of the fluid token drain. The
// queue's wall clock starts at `at` (the simulation time the instance begins
// serving), so latencies of requests admitted later are measured correctly.
func (in *Instance) AttachQueue(at time.Duration) {
	in.queue = &RequestQueue{now: at.Seconds()}
}

// Queue returns the attached request queue, nil in fluid mode.
func (in *Instance) Queue() *RequestQueue { return in.queue }

// EnqueueRequest admits one request to the instance's queue (request-level
// replay mode only). The router calls it with requests whose arrival time
// precedes the current tick, so queueing delay is always non-negative.
func (in *Instance) EnqueueRequest(req Request) {
	in.enqueuedTokens += float64(req.TotalTokens())
	in.Touch(req.Customer)
	q := in.queue
	q.waiting = append(q.waiting, &queuedReq{req: req})
	q.waitingPrompt += float64(req.PromptTokens)
	q.waitingOutput += float64(req.OutputTokens)
}

// DrainCompletions returns the latency records accumulated since the last
// drain and clears them. Returns nil in fluid mode.
func (in *Instance) DrainCompletions() []Completion {
	if in.queue == nil {
		return nil
	}
	out := in.queue.completions
	in.queue.completions = nil
	return out
}

// stepQueue is Step in request-level replay mode: it advances the queue's
// wall clock by dt, executing engine operations at the current SpeedFactor
// and carrying a partially finished operation across the tick boundary.
func (in *Instance) stepQueue(dt time.Duration) {
	q := in.queue
	in.enqueuedTokens = 0
	in.affinityNow += dt
	in.BusyFrac, in.PrefillShare = 0, 0
	dtSecs := in.tickSecs(dt)
	tickEnd := q.now + dtSecs
	t := q.now
	if in.reloadLeft > 0 {
		if in.reloadLeft >= dt {
			in.reloadLeft -= dt
			q.now = tickEnd
			in.BacklogSecs = in.DemandSeconds()
			return
		}
		t += in.reloadLeft.Seconds()
		in.reloadLeft = 0
	}
	sf := in.SpeedFactor
	if sf <= 0 || sf > 1 {
		sf = 1
	}
	var busySecs, prefillSecs float64
	for t < tickEnd {
		if q.op == opNone && !q.startOp(in, t) {
			break // drained: no waiting requests, no running batch
		}
		need := q.opUnitLeft / sf
		if rem := tickEnd - t; need > rem {
			// The op outlives the tick: consume the remaining budget and
			// carry the rest (opStart is preserved, so the spans recorded at
			// completion cover the full wall time).
			q.opUnitLeft -= rem * sf
			busySecs += rem
			if q.op == opPrefill {
				prefillSecs += rem
			}
			t = tickEnd
			break
		}
		busySecs += need
		if q.op == opPrefill {
			prefillSecs += need
		}
		t += need
		q.finishOp(in, t)
	}
	q.now = tickEnd
	if busySecs > 0 {
		in.BusyFrac = units.Clamp01(busySecs / dtSecs)
		in.PrefillShare = units.Clamp01(prefillSecs / busySecs)
	}
	in.BacklogSecs = in.DemandSeconds()
}

// startOp picks the next engine operation, mirroring EngineSim: prefill the
// oldest waiting request while the batch has room, otherwise run one decode
// iteration over the whole running batch. Reports false when drained.
func (q *RequestQueue) startOp(in *Instance, t float64) bool {
	if len(q.waiting) > 0 && len(q.active) < in.Config.MaxBatch {
		r := q.waiting[0]
		pr := in.prefillRate
		if pr <= 0 {
			return false
		}
		q.op = opPrefill
		q.opUnitLeft = float64(r.req.PromptTokens) / pr
		q.opStart = t
		r.queueDelay = t - r.req.Arrival.Seconds()
		return true
	}
	if len(q.active) > 0 {
		q.op = opDecode
		q.opUnitLeft = DecodeStepTime(in.Spec, in.Config, len(q.active)).Seconds()
		q.opStart = t
		return true
	}
	return false
}

// finishOp applies the effects of the completed operation at wall time t.
func (q *RequestQueue) finishOp(in *Instance, t float64) {
	switch q.op {
	case opPrefill:
		r := q.waiting[0]
		q.waiting = q.waiting[1:]
		q.waitingPrompt -= float64(r.req.PromptTokens)
		q.waitingOutput -= float64(r.req.OutputTokens)
		in.ServedTokens += float64(r.req.PromptTokens)
		r.firstToken = t
		if r.req.OutputTokens <= 0 {
			q.complete(in, r)
		} else {
			r.tokensLeft = r.req.OutputTokens
			q.active = append(q.active, r)
			q.activeOutLeft += float64(r.req.OutputTokens)
		}
	case opDecode:
		n := float64(len(q.active))
		in.ServedTokens += n
		q.activeOutLeft -= n
		keep := q.active[:0]
		for _, r := range q.active {
			r.tokensLeft--
			if span := t - q.opStart; span > r.maxTBT {
				r.maxTBT = span
			}
			if r.tokensLeft <= 0 {
				q.complete(in, r)
			} else {
				keep = append(keep, r)
			}
		}
		for i := len(keep); i < len(q.active); i++ {
			q.active[i] = nil // release completed requests
		}
		q.active = keep
	}
	q.op = opNone
	q.opUnitLeft = 0
}

// complete records a finished request and folds it into the instance's
// cumulative accounting.
func (q *RequestQueue) complete(in *Instance, r *queuedReq) {
	ttft := r.firstToken - r.req.Arrival.Seconds()
	violated := ttft > in.SLOs.TTFT.Seconds() || r.maxTBT > in.SLOs.TBT.Seconds()
	in.CompletedRequests++
	in.QualityWeight += in.Config.Quality()
	if violated {
		in.SLOViolatedReqs++
	}
	q.completions = append(q.completions, Completion{
		Endpoint:   r.req.Endpoint,
		TTFT:       ttft,
		TBT:        r.maxTBT,
		QueueDelay: r.queueDelay,
		Violated:   violated,
	})
}

// queueDemandSeconds estimates the seconds of work queued in request-level
// replay mode: the in-flight op's remainder, waiting prompts at the prefill
// rate, and all outstanding output tokens at the full-batch decode rate.
func (in *Instance) queueDemandSeconds() float64 {
	q := in.queue
	pr, dr := in.prefillRate, in.decodeRate
	if pr <= 0 || dr <= 0 {
		return 0
	}
	return q.opUnitLeft + q.waitingPrompt/pr + (q.waitingOutput+q.activeOutLeft)/dr
}
