package llm

import (
	"testing"

	"github.com/tapas-sim/tapas/internal/layout"
)

func buildTestProfile(t *testing.T) *Profile {
	t.Helper()
	return BuildProfile(layout.Spec(layout.A100), DefaultWorkload())
}

func TestBuildProfileCoversSpace(t *testing.T) {
	p := buildTestProfile(t)
	if len(p.Entries) != len(ConfigSpace(p.Spec)) {
		t.Errorf("profile has %d entries, want %d", len(p.Entries), len(ConfigSpace(p.Spec)))
	}
	// Sorted by goodput descending.
	for i := 1; i < len(p.Entries); i++ {
		if p.Entries[i].Goodput > p.Entries[i-1].Goodput {
			t.Fatal("entries not sorted by goodput descending")
		}
	}
}

func TestProfileEntryLookup(t *testing.T) {
	p := buildTestProfile(t)
	e, ok := p.Entry(DefaultConfig())
	if !ok {
		t.Fatal("default config missing from profile")
	}
	if e.Quality != 1 {
		t.Errorf("default quality = %v, want 1", e.Quality)
	}
	if _, ok := p.Entry(Config{Model: Llama70B, TP: 8, MaxBatch: 63, FreqFrac: 1}); ok {
		t.Error("lookup of nonexistent config must fail")
	}
}

func TestBestRespectsLimits(t *testing.T) {
	p := buildTestProfile(t)
	unconstrained, ok := p.Best(1, 1e9, 0)
	if !ok {
		t.Fatal("unconstrained Best must succeed")
	}
	// A strict per-GPU power limit must produce a config within it and with
	// no more goodput than the unconstrained best.
	limited, ok := p.Best(0.6, 1e9, 0)
	if !ok {
		t.Fatal("limited Best must still find something")
	}
	if limited.PeakGPUPowerFrac > 0.6 {
		t.Errorf("limited pick violates GPU power limit: %v", limited.PeakGPUPowerFrac)
	}
	if limited.Goodput > unconstrained.Goodput {
		t.Error("limited pick cannot beat unconstrained goodput")
	}
	// Quality floor of 1.0 restricts to 70B FP16.
	hq, ok := p.Best(1, 1e9, 1.0)
	if !ok {
		t.Fatal("quality-floor Best must succeed")
	}
	if hq.Config.Model != Llama70B || hq.Config.Quant != FP16 {
		t.Errorf("quality floor 1.0 picked %v", hq.Config)
	}
	// Impossible limits fail.
	if _, ok := p.Best(0.0, 1, 2); ok {
		t.Error("impossible limits must return ok=false")
	}
}

func TestBestPreferringCheapReconfig(t *testing.T) {
	p := buildTestProfile(t)
	cur := DefaultConfig()
	// With a modest power squeeze there is usually a frequency/batch-only
	// variant within tolerance of the best; it must be preferred.
	best, ok := p.Best(0.85, 1e9, 0)
	if !ok {
		t.Fatal("Best failed")
	}
	picked, ok := p.BestPreferringCheapReconfig(cur, 0.85, 1e9, 0)
	if !ok {
		t.Fatal("BestPreferringCheapReconfig failed")
	}
	if ReconfigTime(cur, picked.Config) == 0 {
		if picked.Goodput < best.Goodput*0.93 {
			t.Errorf("cheap pick goodput %v below tolerance of best %v", picked.Goodput, best.Goodput)
		}
	} else if picked.Config != best.Config {
		t.Error("when no cheap config qualifies, must return the best")
	}
	if _, ok := p.BestPreferringCheapReconfig(cur, 0, 1, 2); ok {
		t.Error("impossible limits must return ok=false")
	}
}

func TestParetoFrontier(t *testing.T) {
	p := buildTestProfile(t)
	for _, m := range []ModelSize{Llama70B, Llama13B, Llama7B} {
		frontier := p.ParetoFrontier(m)
		if len(frontier) == 0 {
			t.Fatalf("empty frontier for %v", m)
		}
		// No frontier point may dominate another.
		for i, a := range frontier {
			if a.Config.Model != m {
				t.Fatalf("frontier for %v contains %v", m, a.Config)
			}
			for j, b := range frontier {
				if i == j {
					continue
				}
				if b.Goodput >= a.Goodput && b.PeakGPUPowerFrac <= a.PeakGPUPowerFrac &&
					b.PeakServerPowerW <= a.PeakServerPowerW &&
					(b.Goodput > a.Goodput || b.PeakGPUPowerFrac < a.PeakGPUPowerFrac || b.PeakServerPowerW < a.PeakServerPowerW) {
					t.Fatalf("frontier point %v dominated by %v", a.Config, b.Config)
				}
			}
		}
	}
}

func TestSmallerModelsReachLowerPower(t *testing.T) {
	// Fig. 16: each model's frontier extends to lower power at lower
	// goodput; the 7B frontier must reach lower minimum power than 70B's.
	p := buildTestProfile(t)
	minPower := func(m ModelSize) float64 {
		lo := 1e18
		for _, e := range p.ParetoFrontier(m) {
			if e.PeakServerPowerW < lo {
				lo = e.PeakServerPowerW
			}
		}
		return lo
	}
	if minPower(Llama7B) >= minPower(Llama70B) {
		t.Error("7B frontier should reach lower power than 70B frontier")
	}
	maxGoodput := func(m ModelSize) float64 {
		hi := 0.0
		for _, e := range p.ParetoFrontier(m) {
			if e.Goodput > hi {
				hi = e.Goodput
			}
		}
		return hi
	}
	if maxGoodput(Llama7B) <= maxGoodput(Llama70B) {
		t.Error("7B should reach higher goodput than 70B under the same SLOs")
	}
}

func TestCharacterizeTable1Directions(t *testing.T) {
	// Table 1 direction checks on profile entries.
	spec := layout.Spec(layout.A100)
	w := DefaultWorkload()
	slos := ComputeSLOs(spec, DefaultConfig(), w)
	base := Characterize(spec, DefaultConfig(), w, slos)

	smaller := DefaultConfig()
	smaller.Model = Llama7B
	e := Characterize(spec, smaller, w, slos)
	if !(e.Goodput > base.Goodput && e.AvgServerPowerW < base.AvgServerPowerW && e.Quality < base.Quality) {
		t.Error("model-size row of Table 1 violated (perf↑ power↓ quality↓↓)")
	}

	quant := DefaultConfig()
	quant.Quant = FP8
	e = Characterize(spec, quant, w, slos)
	if !(e.Goodput > base.Goodput && e.AvgServerPowerW < base.AvgServerPowerW && e.Quality < base.Quality) {
		t.Error("quantization row of Table 1 violated")
	}

	tp2 := DefaultConfig()
	tp2.TP = 2
	e = Characterize(spec, tp2, w, slos)
	if !(e.Goodput < base.Goodput && e.PeakGPUPowerFrac > base.PeakGPUPowerFrac && e.PeakServerPowerW < base.PeakServerPowerW) {
		t.Error("parallelism row of Table 1 violated (perf↓ temp↑ power↓)")
	}

	slow := DefaultConfig()
	slow.FreqFrac = 0.5
	e = Characterize(spec, slow, w, slos)
	if !(e.Goodput < base.Goodput && e.PeakGPUPowerFrac < base.PeakGPUPowerFrac && e.Quality == base.Quality) {
		t.Error("frequency row of Table 1 violated (perf↓ temp↓ power↓ quality −)")
	}

	smallBatch := DefaultConfig()
	smallBatch.MaxBatch = 16
	e = Characterize(spec, smallBatch, w, slos)
	if !(e.Goodput < base.Goodput && e.PeakGPUPowerFrac < base.PeakGPUPowerFrac && e.Quality == base.Quality) {
		t.Error("batch row of Table 1 violated")
	}
}
