package llm

import (
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/power"
	"github.com/tapas-sim/tapas/internal/units"
)

// Phase distinguishes the two execution phases of LLM inference (§3.3):
// prefill processes the whole prompt in parallel (compute-bound), decode
// generates output tokens one at a time (memory-bound).
type Phase int

const (
	Prefill Phase = iota
	Decode
)

func (p Phase) String() string {
	if p == Prefill {
		return "prefill"
	}
	return "decode"
}

// Hardware capability constants for the performance model. These are
// deliberately simple published-spec-shaped numbers; the experiments depend
// on relative behaviour across configurations, not on absolute token rates.
const (
	a100TFLOPs     = 312e12 // dense FP16 tensor-core peak per GPU
	h100TFLOPs     = 760e12
	a100MemBW      = 2.0e12 // HBM bytes/s per GPU
	h100MemBW      = 3.35e12
	computeMFU     = 0.45    // achievable fraction of peak FLOPs in prefill
	memMBU         = 0.60    // achievable fraction of peak bandwidth in decode
	kvStepOverhead = 0.00025 // seconds of extra decode step time per batch slot
	// decodeFreqWeight: decode is memory-bound, so frequency moves it far
	// less than prefill (§3.3 "prompt phases are more sensitive to GPU
	// frequency").
	decodeFreqWeight = 0.3
)

func gpuFLOPs(spec layout.GPUSpec) float64 {
	if spec.Model == layout.H100 {
		return h100TFLOPs
	}
	return a100TFLOPs
}

func gpuMemBW(spec layout.GPUSpec) float64 {
	if spec.Model == layout.H100 {
		return h100MemBW
	}
	return a100MemBW
}

// quantComputeBoost is the prefill speedup from FP8 execution.
func quantComputeBoost(q Quant) float64 {
	if q == FP8 {
		return 1.6
	}
	return 1
}

// prefillBatchEff models how batching amortizes kernel launch and scheduling
// overhead during prefill.
func prefillBatchEff(batch int) float64 {
	b := float64(batch)
	if b > 16 {
		b = 16
	}
	return 0.75 + 0.25*b/16
}

// PrefillRate returns prompt tokens/s for a configuration on the given
// hardware: compute-bound, linear in TP, frequency, and FP8 boost.
func PrefillRate(spec layout.GPUSpec, c Config) float64 {
	flops := gpuFLOPs(spec) * float64(c.TP) * computeMFU
	perToken := 2 * c.Model.Params() // FLOPs per token ≈ 2 × params
	return flops / perToken * c.FreqFrac * quantComputeBoost(c.Quant) * prefillBatchEff(c.MaxBatch)
}

// DecodeStepTime returns the wall time of one decode iteration at a given
// running batch size: every step streams the full weights once, plus a KV
// overhead per batch slot. Frequency enters with a small weight only.
func DecodeStepTime(spec layout.GPUSpec, c Config, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	weightBytes := c.Model.Params() * c.Quant.BytesPerParam()
	bw := gpuMemBW(spec) * float64(c.TP) * memMBU
	freqFactor := (1 - decodeFreqWeight) + decodeFreqWeight*c.FreqFrac
	secs := weightBytes/bw/freqFactor + kvStepOverhead*float64(batch)
	return time.Duration(secs * float64(time.Second))
}

// DecodeTokenRate returns aggregate output tokens/s at a running batch size.
func DecodeTokenRate(spec layout.GPUSpec, c Config, batch int) float64 {
	step := DecodeStepTime(spec, c, batch).Seconds()
	return float64(batch) / step
}

// Workload characterizes the token shape of an endpoint's requests.
type Workload struct {
	AvgPromptTokens float64
	AvgOutputTokens float64
}

// DefaultWorkload mirrors a chat-style production mix.
func DefaultWorkload() Workload {
	return Workload{AvgPromptTokens: 1024, AvgOutputTokens: 256}
}

// SLO bounds per the paper: TTFT and TBT within 5× the unloaded execution
// time of the reference (quality-first) configuration.
const SLOFactor = 5.0

// SLOs holds the absolute latency bounds of an endpoint, derived from the
// unloaded latencies of the reference config.
type SLOs struct {
	TTFT time.Duration
	TBT  time.Duration
}

// ComputeSLOs derives the endpoint SLOs from a reference configuration.
func ComputeSLOs(spec layout.GPUSpec, ref Config, w Workload) SLOs {
	unloadedTTFT := w.AvgPromptTokens / PrefillRate(spec, ref)
	unloadedTBT := DecodeStepTime(spec, ref, 1)
	return SLOs{
		TTFT: time.Duration(SLOFactor * unloadedTTFT * float64(time.Second)),
		TBT:  time.Duration(SLOFactor) * unloadedTBT,
	}
}

// maxUtil is the sustained utilization beyond which queueing inflates TTFT
// past its SLO; goodput is evaluated at this operating point.
const maxUtil = 0.8

// Goodput returns sustainable tokens/s (prompt+output) for a configuration
// under the endpoint SLOs: the largest batch whose TBT meets the SLO is
// used, and throughput is taken at maxUtil occupancy (§3.3's definition:
// tokens/s while within TTFT and TBT SLOs).
func Goodput(spec layout.GPUSpec, c Config, w Workload, slos SLOs) float64 {
	batch := maxBatchWithinTBT(spec, c, slos)
	if batch == 0 {
		return 0
	}
	// Unloaded TTFT must itself fit the SLO, otherwise the config cannot
	// serve compliant requests at all.
	if prefTime := w.AvgPromptTokens / PrefillRate(spec, c); prefTime > slos.TTFT.Seconds() {
		return 0
	}
	dPre := w.AvgPromptTokens / PrefillRate(spec, c)
	dDec := w.AvgOutputTokens * DecodeStepTime(spec, c, batch).Seconds() / float64(batch)
	reqPerSec := maxUtil / (dPre + dDec)
	return reqPerSec * (w.AvgPromptTokens + w.AvgOutputTokens)
}

// maxBatchWithinTBT finds the largest batch ≤ c.MaxBatch whose decode step
// time meets the TBT SLO.
func maxBatchWithinTBT(spec layout.GPUSpec, c Config, slos SLOs) int {
	for b := c.MaxBatch; b >= 1; b-- {
		if DecodeStepTime(spec, c, b) <= slos.TBT {
			return b
		}
	}
	return 0
}

// GPU utilization per phase. TP concentration raises per-GPU pressure: the
// same work on fewer GPUs pushes each active GPU harder (§3.3, Fig. 15a).
// Smaller and quantized models have lower computational intensity per token
// and draw less power (Fig. 15c; Table 1).
func phaseUtil(p Phase, c Config) float64 {
	concentration := 1.0
	switch c.TP {
	case 4:
		concentration = 1.12
	case 2:
		concentration = 1.26
	}
	intensity := 1.0
	switch c.Model {
	case Llama13B:
		intensity = 0.92
	case Llama7B:
		intensity = 0.85
	}
	if c.Quant == FP8 {
		intensity *= 0.92
	}
	switch p {
	case Prefill:
		// Batching amortizes scheduling gaps; small batches leave the
		// compute pipeline partially idle (Fig. 15b shows reduced power in
		// both phases at smaller batch).
		base := 0.62 + 0.18*float64(c.MaxBatch)/64
		return units.Clamp01(base * concentration * intensity)
	default:
		base := 0.42 + 0.26*float64(c.MaxBatch)/64
		return units.Clamp01(base * concentration * intensity)
	}
}

// MemIntensity returns the memory-traffic intensity of a phase, which drives
// HBM temperature: small-batch decode fetches weights per token with no
// amortization (Fig. 15b).
func MemIntensity(p Phase, c Config) float64 {
	if p == Prefill {
		return 0.30
	}
	return 1 / (1 + float64(c.MaxBatch)/8)
}

// GPUPowerFrac returns the per-active-GPU power fraction (power/TDP) of a
// phase under a configuration at full instance load.
func GPUPowerFrac(spec layout.GPUSpec, c Config, p Phase) float64 {
	w := power.GPUPower(&spec, phaseUtil(p, c), c.FreqFrac)
	return w / spec.GPUTDPW
}

// ServerPowerW returns total server power for an instance running a phase at
// full load: TP active GPUs plus idle GPUs plus load-dependent components.
func ServerPowerW(spec layout.GPUSpec, c Config, p Phase) float64 {
	active := power.GPUPower(&spec, phaseUtil(p, c), c.FreqFrac) * float64(c.TP)
	idle := spec.GPUIdleW * float64(spec.GPUsPerServer-c.TP)
	loadFrac := phaseUtil(p, c) * float64(c.TP) / float64(spec.GPUsPerServer)
	return power.ServerPower(&spec, active+idle, loadFrac, 0.3+0.7*loadFrac)
}
