package llm

import (
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
)

func TestModelSizeParams(t *testing.T) {
	if Llama7B.Params() != 7e9 || Llama13B.Params() != 13e9 || Llama70B.Params() != 70e9 {
		t.Error("model parameter counts wrong")
	}
	if Llama7B.String() != "7B" || Llama70B.String() != "70B" {
		t.Error("ModelSize String() wrong")
	}
	if ModelSize(9).String() == "" {
		t.Error("unknown ModelSize String() empty")
	}
}

func TestQuantBytes(t *testing.T) {
	if FP16.BytesPerParam() != 2 || FP8.BytesPerParam() != 1 {
		t.Error("bytes per param wrong")
	}
	if FP16.String() != "FP16" || FP8.String() != "FP8" {
		t.Error("Quant String() wrong")
	}
}

func TestConfigFits(t *testing.T) {
	// 70B FP16 = 140 GB weights; fits TP2 (160 GB) only barely, TP8 amply.
	if !(Config{Model: Llama70B, Quant: FP16, TP: 8}).Fits() {
		t.Error("70B FP16 must fit TP8")
	}
	if !(Config{Model: Llama70B, Quant: FP16, TP: 2}).Fits() {
		t.Error("70B FP16 must (barely) fit TP2")
	}
	if !(Config{Model: Llama7B, Quant: FP16, TP: 2}).Fits() {
		t.Error("7B must fit TP2")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := good
	bad.TP = 3
	if bad.Validate() == nil {
		t.Error("TP=3 must be invalid")
	}
	bad = good
	bad.MaxBatch = 0
	if bad.Validate() == nil {
		t.Error("batch 0 must be invalid")
	}
	bad = good
	bad.FreqFrac = 1.5
	if bad.Validate() == nil {
		t.Error("freq 1.5 must be invalid")
	}
}

func TestQualityOrdering(t *testing.T) {
	q70 := Config{Model: Llama70B, Quant: FP16}.Quality()
	q13 := Config{Model: Llama13B, Quant: FP16}.Quality()
	q7 := Config{Model: Llama7B, Quant: FP16}.Quality()
	if !(q70 > q13 && q13 > q7) {
		t.Errorf("quality ordering broken: %v %v %v", q70, q13, q7)
	}
	// Paper: 7B is 30–40% below 70B.
	if drop := 1 - q7/q70; drop < 0.30 || drop > 0.40 {
		t.Errorf("7B quality drop = %.0f%%, want 30–40%%", drop*100)
	}
	// Quantization costs a few percent.
	q70fp8 := Config{Model: Llama70B, Quant: FP8}.Quality()
	if loss := 1 - q70fp8/q70; loss < 0.02 || loss > 0.20 {
		t.Errorf("FP8 quality loss = %.0f%%, want 2–20%%", loss*100)
	}
}

func TestReconfigTime(t *testing.T) {
	base := DefaultConfig()
	freqOnly := base
	freqOnly.FreqFrac = 0.8
	if ReconfigTime(base, freqOnly) != 0 {
		t.Error("frequency change must be instantaneous")
	}
	batchOnly := base
	batchOnly.MaxBatch = 16
	if ReconfigTime(base, batchOnly) != 0 {
		t.Error("batch change must be instantaneous")
	}
	tpChange := base
	tpChange.TP = 4
	if ReconfigTime(base, tpChange) < time.Second {
		t.Error("TP change must require a reload")
	}
	modelChange := base
	modelChange.Model = Llama13B
	if ReconfigTime(base, modelChange) < time.Second {
		t.Error("model change must require a reload")
	}
}

func TestConfigSpace(t *testing.T) {
	spec := layout.Spec(layout.A100)
	space := ConfigSpace(spec)
	if len(space) < 100 {
		t.Fatalf("config space has %d entries, want > 100", len(space))
	}
	seen := map[Config]bool{}
	for _, c := range space {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid config in space: %v", err)
		}
		if seen[c] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c] = true
		if c.FreqFrac < spec.MinFreqGHz/spec.MaxFreqGHz {
			t.Fatalf("config %v below hardware min frequency", c)
		}
	}
	if !seen[DefaultConfig()] {
		t.Error("config space must include the default config")
	}
}
