package llm

import (
	"sort"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/regress"
)

// EngineSim is an iteration-level simulator of a single serving instance
// with continuous batching: prefill admits one waiting request at a time,
// decode steps advance every running sequence by one token. It provides the
// fine-grained execution model for the paper's real-cluster experiment and
// the per-request latency distributions the fluid model approximates.
type EngineSim struct {
	Spec   layout.GPUSpec
	Config Config

	now     time.Duration
	queue   []*tracked
	running []*tracked
	done    []*tracked

	busyPrefill time.Duration
	busyDecode  time.Duration
}

type tracked struct {
	req        Request
	firstToken time.Duration
	finished   time.Duration
	maxTBT     time.Duration
	tokensLeft int
}

// NewEngineSim builds an engine simulator.
func NewEngineSim(spec layout.GPUSpec, c Config) *EngineSim {
	return &EngineSim{Spec: spec, Config: c}
}

// EngineStats summarizes a completed engine run.
type EngineStats struct {
	Completed     int
	ServedTokens  int
	Makespan      time.Duration
	TTFTP50       time.Duration
	TTFTP99       time.Duration
	TBTP99        time.Duration
	PrefillBusy   time.Duration
	DecodeBusy    time.Duration
	SLOAttainment float64 // fraction of requests within both SLOs
}

// Run serves the request trace (sorted by arrival) until all requests finish
// or horizon elapses, and returns latency statistics evaluated against slos.
func (e *EngineSim) Run(requests []Request, horizon time.Duration, slos SLOs) EngineStats {
	reqs := append([]Request(nil), requests...)
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	next := 0
	for e.now < horizon {
		// Admit arrivals.
		for next < len(reqs) && reqs[next].Arrival <= e.now {
			r := reqs[next]
			e.queue = append(e.queue, &tracked{req: r, tokensLeft: r.OutputTokens})
			next++
		}
		switch {
		case len(e.queue) > 0 && len(e.running) < e.Config.MaxBatch:
			// Prefill the oldest waiting request.
			t := e.queue[0]
			e.queue = e.queue[1:]
			dur := time.Duration(float64(t.req.PromptTokens) / PrefillRate(e.Spec, e.Config) * float64(time.Second))
			e.now += dur
			e.busyPrefill += dur
			t.firstToken = e.now
			if t.tokensLeft <= 0 {
				t.finished = e.now
				e.done = append(e.done, t)
			} else {
				e.running = append(e.running, t)
			}
		case len(e.running) > 0:
			// One decode iteration for the whole batch.
			dur := DecodeStepTime(e.Spec, e.Config, len(e.running))
			e.now += dur
			e.busyDecode += dur
			keep := e.running[:0]
			for _, t := range e.running {
				t.tokensLeft--
				if dur > t.maxTBT {
					t.maxTBT = dur
				}
				if t.tokensLeft <= 0 {
					t.finished = e.now
					e.done = append(e.done, t)
				} else {
					keep = append(keep, t)
				}
			}
			e.running = keep
		case next < len(reqs):
			// Idle: jump to the next arrival.
			if reqs[next].Arrival > e.now {
				e.now = reqs[next].Arrival
			}
		default:
			// Nothing left anywhere.
			return e.stats(slos)
		}
	}
	return e.stats(slos)
}

func (e *EngineSim) stats(slos SLOs) EngineStats {
	st := EngineStats{
		Completed:   len(e.done),
		Makespan:    e.now,
		PrefillBusy: e.busyPrefill,
		DecodeBusy:  e.busyDecode,
	}
	if len(e.done) == 0 {
		return st
	}
	ttfts := make([]float64, 0, len(e.done))
	tbts := make([]float64, 0, len(e.done))
	within := 0
	for _, t := range e.done {
		st.ServedTokens += t.req.PromptTokens + t.req.OutputTokens - t.tokensLeft
		ttft := t.firstToken - t.req.Arrival
		ttfts = append(ttfts, ttft.Seconds())
		tbts = append(tbts, t.maxTBT.Seconds())
		if ttft <= slos.TTFT && t.maxTBT <= slos.TBT {
			within++
		}
	}
	st.TTFTP50 = time.Duration(regress.Percentile(ttfts, 50) * float64(time.Second))
	st.TTFTP99 = time.Duration(regress.Percentile(ttfts, 99) * float64(time.Second))
	st.TBTP99 = time.Duration(regress.Percentile(tbts, 99) * float64(time.Second))
	st.SLOAttainment = float64(within) / float64(len(e.done))
	return st
}
