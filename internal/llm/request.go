package llm

import "time"

// Request is one LLM inference request.
type Request struct {
	ID           int64
	Customer     int // customer identity, used for KV-cache affinity routing
	Endpoint     int // SaaS endpoint (model deployment) the request targets
	PromptTokens int
	OutputTokens int
	Arrival      time.Duration // offset from simulation start
}

// TotalTokens returns prompt plus output tokens.
func (r Request) TotalTokens() int { return r.PromptTokens + r.OutputTokens }
