package llm

import (
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
)

var a100 = layout.Spec(layout.A100)

func TestPrefillRateScaling(t *testing.T) {
	base := DefaultConfig()
	r8 := PrefillRate(a100, base)
	tp4 := base
	tp4.TP = 4
	if r4 := PrefillRate(a100, tp4); r4 >= r8 {
		t.Errorf("TP4 prefill %v should be below TP8 %v", r4, r8)
	}
	slow := base
	slow.FreqFrac = 0.5
	if rs := PrefillRate(a100, slow); rs >= r8*0.55 {
		t.Errorf("half frequency prefill %v should be ≈ half of %v (compute-bound)", rs, r8)
	}
	small := base
	small.Model = Llama7B
	if r7 := PrefillRate(a100, small); r7 <= r8*5 {
		t.Errorf("7B prefill %v should be ≈ 10× 70B %v", r7, r8)
	}
	fp8 := base
	fp8.Quant = FP8
	if rq := PrefillRate(a100, fp8); rq <= r8 {
		t.Error("FP8 must speed up prefill")
	}
}

func TestPrefillRatePlausibleMagnitude(t *testing.T) {
	// 70B FP16 TP8 on A100 should land in the thousands of tokens/s.
	r := PrefillRate(a100, DefaultConfig())
	if r < 2000 || r > 20000 {
		t.Errorf("70B TP8 prefill = %.0f tok/s, want O(10³)", r)
	}
}

func TestDecodeStepTime(t *testing.T) {
	c := DefaultConfig()
	t1 := DecodeStepTime(a100, c, 1)
	t64 := DecodeStepTime(a100, c, 64)
	if t64 <= t1 {
		t.Error("larger batches take longer per step")
	}
	// 70B TP8 per-token latency should be tens of milliseconds.
	if t1 < 5*time.Millisecond || t1 > 100*time.Millisecond {
		t.Errorf("TBT@1 = %v, want O(10ms)", t1)
	}
	// But tokens/s must grow with batch (throughput wins).
	if DecodeTokenRate(a100, c, 64) <= DecodeTokenRate(a100, c, 1) {
		t.Error("decode throughput must grow with batch")
	}
	if DecodeStepTime(a100, c, 0) != DecodeStepTime(a100, c, 1) {
		t.Error("batch < 1 must clamp to 1")
	}
}

func TestDecodeFrequencyInsensitivity(t *testing.T) {
	// Decode is memory-bound: halving frequency must hurt decode much less
	// than prefill (§3.3).
	base := DefaultConfig()
	slow := base
	slow.FreqFrac = 0.5
	prefillDrop := 1 - PrefillRate(a100, slow)/PrefillRate(a100, base)
	decodeDrop := 1 - DecodeTokenRate(a100, slow, 16)/DecodeTokenRate(a100, base, 16)
	if decodeDrop >= prefillDrop {
		t.Errorf("decode drop %.2f should be below prefill drop %.2f", decodeDrop, prefillDrop)
	}
}

func TestComputeSLOs(t *testing.T) {
	w := DefaultWorkload()
	slos := ComputeSLOs(a100, DefaultConfig(), w)
	unloadedTTFT := w.AvgPromptTokens / PrefillRate(a100, DefaultConfig())
	if got := slos.TTFT.Seconds(); got < unloadedTTFT*4.9 || got > unloadedTTFT*5.1 {
		t.Errorf("TTFT SLO = %v, want 5× unloaded %v", got, unloadedTTFT)
	}
	if slos.TBT < DecodeStepTime(a100, DefaultConfig(), 1) {
		t.Error("TBT SLO below unloaded TBT")
	}
}

func TestGoodputPositiveForDefault(t *testing.T) {
	w := DefaultWorkload()
	slos := ComputeSLOs(a100, DefaultConfig(), w)
	g := Goodput(a100, DefaultConfig(), w, slos)
	if g <= 0 {
		t.Fatal("default config goodput must be positive")
	}
}

func TestGoodputShrinksWithFrequency(t *testing.T) {
	w := DefaultWorkload()
	slos := ComputeSLOs(a100, DefaultConfig(), w)
	slow := DefaultConfig()
	slow.FreqFrac = 0.5
	if Goodput(a100, slow, w, slos) >= Goodput(a100, DefaultConfig(), w, slos) {
		t.Error("lower frequency must lower goodput")
	}
}

func TestGoodputZeroWhenSLOImpossible(t *testing.T) {
	w := DefaultWorkload()
	// SLOs derived from a 7B reference are impossible for a 70B TP2 slow
	// config: unloaded prefill alone busts TTFT.
	ref := Config{Model: Llama7B, Quant: FP8, TP: 8, MaxBatch: 64, FreqFrac: 1}
	slos := ComputeSLOs(a100, ref, w)
	heavy := Config{Model: Llama70B, Quant: FP16, TP: 2, MaxBatch: 64, FreqFrac: 0.5}
	if g := Goodput(a100, heavy, w, slos); g != 0 {
		t.Errorf("impossible-SLO goodput = %v, want 0", g)
	}
}

func TestPhaseUtilTPConcentration(t *testing.T) {
	// Fig. 15a: fewer GPUs ⇒ hotter per-GPU (higher power fraction).
	base := DefaultConfig()
	tp2 := base
	tp2.TP = 2
	for _, phase := range []Phase{Prefill, Decode} {
		if GPUPowerFrac(a100, tp2, phase) <= GPUPowerFrac(a100, base, phase) {
			t.Errorf("%v: TP2 per-GPU power must exceed TP8", phase)
		}
	}
	// Total server power must still be lower with TP2 (fewer active GPUs).
	if ServerPowerW(a100, tp2, Prefill) >= ServerPowerW(a100, base, Prefill) {
		t.Error("TP2 total server power must be below TP8")
	}
}

func TestBatchEffects(t *testing.T) {
	// Fig. 15b: smaller batch ⇒ lower power/compute temp, but higher decode
	// memory intensity (hotter HBM).
	big := DefaultConfig()
	small := big
	small.MaxBatch = 1
	if GPUPowerFrac(a100, small, Decode) >= GPUPowerFrac(a100, big, Decode) {
		t.Error("batch 1 decode power must be below batch 64")
	}
	if MemIntensity(Decode, small) <= MemIntensity(Decode, big) {
		t.Error("batch 1 decode memory intensity must exceed batch 64")
	}
}

func TestModelSizeEffects(t *testing.T) {
	// Fig. 15c: smaller models draw less power in decode (less weight
	// traffic per step and lighter compute).
	big := DefaultConfig()
	small := big
	small.Model = Llama7B
	if DecodeStepTime(a100, small, 16) >= DecodeStepTime(a100, big, 16) {
		t.Error("7B decode step must be faster than 70B")
	}
}

func TestPhaseString(t *testing.T) {
	if Prefill.String() != "prefill" || Decode.String() != "decode" {
		t.Error("Phase String() wrong")
	}
}
