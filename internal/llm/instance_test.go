package llm

import (
	"math"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
)

func newTestInstance() *Instance {
	spec := layout.Spec(layout.A100)
	w := DefaultWorkload()
	return NewInstance(spec, DefaultConfig(), w, ComputeSLOs(spec, DefaultConfig(), w))
}

func TestInstanceIdleStep(t *testing.T) {
	in := newTestInstance()
	in.Step(time.Minute)
	if in.BusyFrac != 0 || in.ServedTokens != 0 {
		t.Error("idle instance must stay idle")
	}
	idleFrac := in.Spec.GPUIdleW / in.Spec.GPUTDPW
	if math.Abs(in.GPUPowerFrac()-idleFrac) > 1e-9 {
		t.Errorf("idle GPU power frac = %v, want %v", in.GPUPowerFrac(), idleFrac)
	}
}

func TestInstanceServesQueue(t *testing.T) {
	in := newTestInstance()
	in.Enqueue(Request{ID: 1, Customer: 7, PromptTokens: 1024, OutputTokens: 256})
	in.Step(time.Minute)
	if in.ServedTokens <= 0 {
		t.Fatal("instance served nothing")
	}
	if in.QueueTokens() > 1 {
		t.Errorf("one request should drain within a minute, %v tokens left", in.QueueTokens())
	}
	if in.CompletedRequests <= 0.5 {
		t.Errorf("completed = %v, want ≈ 1", in.CompletedRequests)
	}
	if !in.HasAffinity(7) {
		t.Error("served customer must have KV affinity")
	}
	if in.HasAffinity(8) {
		t.Error("unseen customer must not have affinity")
	}
}

func TestInstanceSaturation(t *testing.T) {
	in := newTestInstance()
	// Enqueue far more work than a tick can serve.
	for i := 0; i < 5000; i++ {
		in.EnqueueBulk(1024, 256)
	}
	in.Step(time.Minute)
	if in.BusyFrac < 0.99 {
		t.Errorf("saturated instance busy frac = %v, want ≈ 1", in.BusyFrac)
	}
	if in.BacklogSecs <= 0 {
		t.Error("saturated instance must report backlog")
	}
	if in.GPUPowerFrac() < 0.5 {
		t.Errorf("saturated GPU power frac = %v, want high", in.GPUPowerFrac())
	}
}

func TestInstanceThroughputMatchesGoodputModel(t *testing.T) {
	// A saturated fluid instance should serve tokens at roughly the
	// goodput-model capacity (without the 0.8 utilization margin).
	in := newTestInstance()
	for i := 0; i < 20000; i++ {
		in.EnqueueBulk(1024, 256)
	}
	var served float64
	for tick := 0; tick < 10; tick++ {
		before := in.ServedTokens
		in.Step(time.Minute)
		served += in.ServedTokens - before
	}
	perSec := served / 600
	g := Goodput(in.Spec, in.Config, in.Work, in.SLOs) / maxUtil // remove margin
	ratio := perSec / g
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("fluid throughput %v vs analytic capacity %v (ratio %.2f)", perSec, g, ratio)
	}
}

func TestInstanceReconfigureReload(t *testing.T) {
	in := newTestInstance()
	to := in.Config
	to.Model = Llama13B
	in.Reconfigure(to)
	if !in.Reloading() {
		t.Fatal("model change must trigger reload")
	}
	in.EnqueueBulk(1024, 256)
	in.Step(10 * time.Second)
	if in.ServedTokens != 0 {
		t.Error("reloading instance must not serve")
	}
	in.Step(time.Minute)
	if in.Reloading() {
		t.Error("reload must complete")
	}
	if in.ServedTokens <= 0 {
		t.Error("instance must resume serving after reload; partial tick lost")
	}
}

func TestInstanceFreqChangeNoReload(t *testing.T) {
	in := newTestInstance()
	to := in.Config
	to.FreqFrac = 0.8
	in.Reconfigure(to)
	if in.Reloading() {
		t.Error("frequency change must not reload")
	}
}

func TestInstanceQualityAccounting(t *testing.T) {
	in := newTestInstance()
	in.EnqueueBulk(10240, 2560)
	in.Step(time.Minute)
	if q := in.AvgQuality(); math.Abs(q-1) > 1e-9 {
		t.Errorf("70B FP16 avg quality = %v, want 1", q)
	}
	// Before serving anything, AvgQuality reports the config quality.
	fresh := newTestInstance()
	cfg := fresh.Config
	cfg.Model = Llama7B
	fresh.Reconfigure(cfg)
	if q := fresh.AvgQuality(); q >= 1 {
		t.Errorf("7B config quality = %v, want < 1", q)
	}
}

func TestInstanceMemIntensityTracksPhase(t *testing.T) {
	in := newTestInstance()
	if in.MemIntensityNow() != 0 {
		t.Error("idle instance mem intensity must be 0")
	}
	in.EnqueueBulk(100000, 25000)
	in.Step(time.Minute)
	mi := in.MemIntensityNow()
	if mi <= 0 || mi > 1 {
		t.Errorf("busy mem intensity = %v, want in (0,1]", mi)
	}
}

func TestAffinityExpiryAndCap(t *testing.T) {
	in := newTestInstance()
	in.Touch(1)
	in.Step(affinityTTL + time.Minute)
	if in.HasAffinity(1) {
		t.Error("affinity must expire after TTL")
	}
	// Fill beyond cap; map must not grow unboundedly.
	for c := 0; c < 2*affinityCap; c++ {
		in.Touch(c)
	}
	if len(in.affinity) > affinityCap {
		t.Errorf("affinity map size %d exceeds cap %d", len(in.affinity), affinityCap)
	}
}

func TestDemandSeconds(t *testing.T) {
	in := newTestInstance()
	if in.DemandSeconds() != 0 {
		t.Error("empty instance demand must be 0")
	}
	in.EnqueueBulk(1024, 256)
	if in.DemandSeconds() <= 0 {
		t.Error("queued instance demand must be positive")
	}
}
