package llm

import (
	"math/rand/v2"
	"testing"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
)

func genRequests(n int, interarrival time.Duration, rng *rand.Rand) []Request {
	reqs := make([]Request, n)
	at := time.Duration(0)
	for i := range reqs {
		reqs[i] = Request{
			ID:           int64(i),
			Customer:     rng.IntN(50),
			PromptTokens: 512 + rng.IntN(1024),
			OutputTokens: 64 + rng.IntN(384),
			Arrival:      at,
		}
		at += time.Duration(rng.Float64() * 2 * float64(interarrival))
	}
	return reqs
}

func TestEngineSimCompletesAll(t *testing.T) {
	spec := layout.Spec(layout.A100)
	rng := rand.New(rand.NewPCG(8, 8))
	reqs := genRequests(100, 500*time.Millisecond, rng)
	e := NewEngineSim(spec, DefaultConfig())
	slos := ComputeSLOs(spec, DefaultConfig(), DefaultWorkload())
	st := e.Run(reqs, time.Hour, slos)
	if st.Completed != len(reqs) {
		t.Fatalf("completed %d of %d", st.Completed, len(reqs))
	}
	if st.ServedTokens <= 0 || st.Makespan <= 0 {
		t.Error("stats incomplete")
	}
	if st.TTFTP99 < st.TTFTP50 {
		t.Error("P99 TTFT below P50")
	}
}

func TestEngineSimLightLoadMeetsSLOs(t *testing.T) {
	spec := layout.Spec(layout.A100)
	rng := rand.New(rand.NewPCG(9, 9))
	reqs := genRequests(50, 3*time.Second, rng) // light load
	e := NewEngineSim(spec, DefaultConfig())
	slos := ComputeSLOs(spec, DefaultConfig(), DefaultWorkload())
	st := e.Run(reqs, time.Hour, slos)
	if st.SLOAttainment < 0.95 {
		t.Errorf("light-load SLO attainment = %v, want ≥ 0.95", st.SLOAttainment)
	}
}

func TestEngineSimOverloadViolatesSLOs(t *testing.T) {
	spec := layout.Spec(layout.A100)
	rng := rand.New(rand.NewPCG(10, 10))
	reqs := genRequests(400, 20*time.Millisecond, rng) // heavy overload
	e := NewEngineSim(spec, DefaultConfig())
	slos := ComputeSLOs(spec, DefaultConfig(), DefaultWorkload())
	st := e.Run(reqs, 2*time.Hour, slos)
	if st.SLOAttainment > 0.7 {
		t.Errorf("overload SLO attainment = %v, want well below 1", st.SLOAttainment)
	}
	if st.TTFTP99 <= slos.TTFT {
		t.Error("overload P99 TTFT should bust the SLO")
	}
}

func TestEngineSimPhaseAccounting(t *testing.T) {
	spec := layout.Spec(layout.A100)
	rng := rand.New(rand.NewPCG(11, 11))
	reqs := genRequests(50, time.Second, rng)
	e := NewEngineSim(spec, DefaultConfig())
	slos := ComputeSLOs(spec, DefaultConfig(), DefaultWorkload())
	st := e.Run(reqs, time.Hour, slos)
	if st.PrefillBusy <= 0 || st.DecodeBusy <= 0 {
		t.Error("both phases must accumulate busy time")
	}
	if st.PrefillBusy+st.DecodeBusy > st.Makespan {
		t.Error("busy time cannot exceed makespan")
	}
}

func TestEngineSimHorizonCutoff(t *testing.T) {
	spec := layout.Spec(layout.A100)
	rng := rand.New(rand.NewPCG(12, 12))
	reqs := genRequests(1000, 10*time.Millisecond, rng)
	e := NewEngineSim(spec, DefaultConfig())
	slos := ComputeSLOs(spec, DefaultConfig(), DefaultWorkload())
	st := e.Run(reqs, 5*time.Second, slos)
	if st.Completed >= len(reqs) {
		t.Error("horizon cutoff should leave requests unfinished")
	}
}

func TestEngineSimZeroOutputRequest(t *testing.T) {
	spec := layout.Spec(layout.A100)
	reqs := []Request{{ID: 1, PromptTokens: 100, OutputTokens: 0, Arrival: 0}}
	e := NewEngineSim(spec, DefaultConfig())
	slos := ComputeSLOs(spec, DefaultConfig(), DefaultWorkload())
	st := e.Run(reqs, time.Minute, slos)
	if st.Completed != 1 {
		t.Errorf("prefill-only request must complete, got %d", st.Completed)
	}
}

func TestEngineSimBatchLimit(t *testing.T) {
	spec := layout.Spec(layout.A100)
	c := DefaultConfig()
	c.MaxBatch = 1
	// All arrive at once: with batch 1 they serialize, so makespan grows
	// roughly linearly with request count.
	mk := func(n int) time.Duration {
		var reqs []Request
		for i := 0; i < n; i++ {
			reqs = append(reqs, Request{ID: int64(i), PromptTokens: 256, OutputTokens: 64})
		}
		e := NewEngineSim(spec, c)
		st := e.Run(reqs, time.Hour, ComputeSLOs(spec, DefaultConfig(), DefaultWorkload()))
		return st.Makespan
	}
	if mk(8) < 6*mk(1) {
		t.Error("batch-1 engine should serialize requests")
	}
}
