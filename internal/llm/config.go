package llm

import (
	"fmt"
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
)

// ModelSize identifies a Llama2 variant.
type ModelSize int

const (
	Llama7B ModelSize = iota
	Llama13B
	Llama70B
)

func (m ModelSize) String() string {
	switch m {
	case Llama7B:
		return "7B"
	case Llama13B:
		return "13B"
	case Llama70B:
		return "70B"
	default:
		return fmt.Sprintf("ModelSize(%d)", int(m))
	}
}

// Params returns the parameter count.
func (m ModelSize) Params() float64 {
	switch m {
	case Llama7B:
		return 7e9
	case Llama13B:
		return 13e9
	default:
		return 70e9
	}
}

// Quant is the numeric precision of the deployed model.
type Quant int

const (
	FP16 Quant = iota
	FP8
)

func (q Quant) String() string {
	if q == FP8 {
		return "FP8"
	}
	return "FP16"
}

// BytesPerParam returns the weight footprint per parameter.
func (q Quant) BytesPerParam() float64 {
	if q == FP8 {
		return 1
	}
	return 2
}

// Config is one operating point of an LLM inference instance — the five
// knobs of Table 1.
type Config struct {
	Model    ModelSize
	Quant    Quant
	TP       int     // tensor parallelism: GPUs used, ∈ {2,4,8}
	MaxBatch int     // continuous batching limit, ∈ {1,4,16,64}
	FreqFrac float64 // GPU frequency fraction of max, ∈ (0,1]
}

func (c Config) String() string {
	return fmt.Sprintf("%s/%s/TP%d/B%d/f%.2f", c.Model, c.Quant, c.TP, c.MaxBatch, c.FreqFrac)
}

// DefaultConfig is the quality-first operating point endpoints start from.
func DefaultConfig() Config {
	return Config{Model: Llama70B, Quant: FP16, TP: 8, MaxBatch: 64, FreqFrac: 1.0}
}

// gpuMemBytes is the HBM capacity per A100/H100 GPU (80 GB).
const gpuMemBytes = 80e9

// memHeadroom reserves HBM for KV cache and activations on top of weights.
const memHeadroom = 1.10

// Fits reports whether the model weights (plus KV headroom) fit in the HBM
// of TP GPUs.
func (c Config) Fits() bool {
	need := c.Model.Params() * c.Quant.BytesPerParam() * memHeadroom
	return need <= float64(c.TP)*gpuMemBytes
}

// Validate checks the knob ranges.
func (c Config) Validate() error {
	switch c.TP {
	case 2, 4, 8:
	default:
		return fmt.Errorf("llm: invalid TP %d (want 2, 4 or 8)", c.TP)
	}
	if c.MaxBatch < 1 || c.MaxBatch > 64 {
		return fmt.Errorf("llm: invalid batch %d (want 1–64)", c.MaxBatch)
	}
	if c.FreqFrac <= 0 || c.FreqFrac > 1 {
		return fmt.Errorf("llm: invalid frequency fraction %v", c.FreqFrac)
	}
	if !c.Fits() {
		return fmt.Errorf("llm: %v does not fit in %d GPUs", c, c.TP)
	}
	return nil
}

// Quality returns the relative answer quality of a model/precision pair,
// normalized to 70B FP16 = 1. The paper reports 7B at 30–40% below 70B and
// quantization costing 2–20%.
func (c Config) Quality() float64 {
	var q float64
	switch c.Model {
	case Llama70B:
		q = 1.00
	case Llama13B:
		q = 0.82
	default:
		q = 0.64
	}
	if c.Quant == FP8 {
		q *= 0.96
	}
	return q
}

// ReconfigTime returns the service interruption incurred when switching
// from one config to another. Frequency and batch changes are effectively
// instantaneous; TP, model size or quantization changes require a model
// reload of a few seconds during which the instance serves nothing (§4.3).
func ReconfigTime(from, to Config) time.Duration {
	if from.Model != to.Model || from.Quant != to.Quant || from.TP != to.TP {
		return 20 * time.Second
	}
	return 0
}

// knob grids explored by profiling and the configurator.
var (
	allModels  = []ModelSize{Llama70B, Llama13B, Llama7B}
	allQuants  = []Quant{FP16, FP8}
	allTPs     = []int{8, 4, 2}
	allBatches = []int{64, 16, 4, 1}
	allFreqs   = []float64{1.0, 0.9, 0.8, 0.65, 0.5}
)

// ConfigSpace enumerates every valid configuration for a GPU generation.
func ConfigSpace(spec layout.GPUSpec) []Config {
	minFrac := spec.MinFreqGHz / spec.MaxFreqGHz
	var out []Config
	for _, m := range allModels {
		for _, q := range allQuants {
			for _, tp := range allTPs {
				for _, b := range allBatches {
					for _, f := range allFreqs {
						if f < minFrac {
							continue
						}
						c := Config{Model: m, Quant: q, TP: tp, MaxBatch: b, FreqFrac: f}
						if c.Fits() {
							out = append(out, c)
						}
					}
				}
			}
		}
	}
	return out
}
