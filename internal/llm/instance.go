package llm

import (
	"time"

	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/units"
)

// Instance is the fluid (per-tick) model of one LLM serving instance used by
// the cluster-scale simulator. Token queues are continuous quantities; each
// Step drains them at the rates of the current configuration, splitting time
// between prefill and decode in proportion to demand, as continuous batching
// does.
type Instance struct {
	Spec   layout.GPUSpec
	Config Config
	Work   Workload
	SLOs   SLOs

	pendingPrefill float64 // prompt tokens awaiting prefill
	pendingDecode  float64 // output tokens awaiting generation
	outputRatio    float64 // avg output-per-prompt-token ratio of queue
	reloadLeft     time.Duration

	// SpeedFactor scales serving rates to model hardware frequency capping
	// imposed from outside the instance (thermal throttle, power cap).
	// 1 means full speed. The fluid Step treats a non-positive value as
	// unset full speed; the request-level queue clamps to [0,1], where 0
	// stalls the instance entirely (a fully capped instance makes no
	// progress). NewInstance seeds it to 1.
	SpeedFactor float64

	// affinity holds recently served customers for KV-cache reuse routing.
	affinity    map[int]time.Duration
	affinityNow time.Duration

	// queue, when non-nil, switches the instance into request-level replay
	// mode: Step runs the discrete-event continuous-batching queue instead
	// of the fluid token drain. See AttachQueue.
	queue *RequestQueue

	// Per-tick outputs, refreshed by Step.
	BusyFrac     float64 // fraction of the tick spent serving
	PrefillShare float64 // fraction of busy time in prefill
	BacklogSecs  float64 // unserved demand at tick end, in seconds of work

	// enqueuedTokens accumulates tokens routed to the instance since the
	// last Step; the configurator reads it as the live demand signal.
	enqueuedTokens float64

	// Derived rates of the current configuration, cached because Step,
	// DemandSeconds and GPUPowerFrac run per instance per tick while the
	// configuration changes rarely. Refreshed by refreshRates.
	prefillRate float64 // PrefillRate(Spec, Config)
	decodeRate  float64 // DecodeTokenRate(Spec, Config, Config.MaxBatch)
	prefillFrac float64 // GPUPowerFrac(Spec, Config, Prefill)
	decodeFrac  float64 // GPUPowerFrac(Spec, Config, Decode)
	gpuIdleFrac float64 // Spec.GPUIdleW / Spec.GPUTDPW
	slackFull   float64 // TTFT slack at full speed: SLOs.TTFT - AvgPromptTokens/prefillRate

	// Step is called once per instance per tick with the same dt, so the
	// duration→seconds conversions are memoized on the dt value.
	lastDt     time.Duration
	cachedSecs float64
	cachedSub  float64

	// Cumulative accounting.
	ServedTokens      float64
	CompletedRequests float64
	QualityWeight     float64 // quality-weighted completed requests
	SLOViolatedReqs   float64

	// Cached Profile.Entry goodput lookup for ConfigGoodput: the router asks
	// for the current configuration's goodput every tick, while the
	// configuration (and profile) change rarely.
	gpProfile *Profile
	gpConfig  Config
	gpGoodput float64
	gpOK      bool
}

// ConfigGoodput returns p.Entry(in.Config).Goodput, memoized on (profile,
// config). Profiles are immutable once built, so the cache is sound.
func (in *Instance) ConfigGoodput(p *Profile) (float64, bool) {
	if in.gpProfile != p || in.gpConfig != in.Config {
		e, ok := p.Entry(in.Config)
		in.gpProfile, in.gpConfig, in.gpGoodput, in.gpOK = p, in.Config, e.Goodput, ok
	}
	return in.gpGoodput, in.gpOK
}

// NewInstance builds an instance at the given configuration.
func NewInstance(spec layout.GPUSpec, c Config, w Workload, slos SLOs) *Instance {
	in := &Instance{
		Spec: spec, Config: c, Work: w, SLOs: slos,
		SpeedFactor: 1,
		outputRatio: w.AvgOutputTokens / w.AvgPromptTokens,
		affinity:    make(map[int]time.Duration),
	}
	in.refreshRates()
	return in
}

// refreshRates recomputes the cached configuration-derived rates.
func (in *Instance) refreshRates() {
	in.prefillRate = PrefillRate(in.Spec, in.Config)
	in.decodeRate = DecodeTokenRate(in.Spec, in.Config, in.Config.MaxBatch)
	in.prefillFrac = GPUPowerFrac(in.Spec, in.Config, Prefill)
	in.decodeFrac = GPUPowerFrac(in.Spec, in.Config, Decode)
	in.gpuIdleFrac = in.Spec.GPUIdleW / in.Spec.GPUTDPW
	in.slackFull = in.SLOs.TTFT.Seconds() - in.Work.AvgPromptTokens/in.prefillRate
}

// Enqueue adds a request's tokens to the instance queues.
func (in *Instance) Enqueue(req Request) {
	in.enqueuedTokens += float64(req.TotalTokens())
	in.pendingPrefill += float64(req.PromptTokens)
	// Output tokens become decode work once their prompt is prefilled; the
	// fluid model moves them over proportionally, so track the ratio.
	if req.PromptTokens > 0 {
		// Exponentially smooth the ratio toward the live mix.
		r := float64(req.OutputTokens) / float64(req.PromptTokens)
		in.outputRatio = 0.95*in.outputRatio + 0.05*r
	}
	in.Touch(req.Customer)
}

// EnqueueBulk adds aggregate token demand directly (used when the trace
// provides per-tick totals rather than individual requests).
func (in *Instance) EnqueueBulk(promptTokens, outputTokens float64) {
	in.enqueuedTokens += promptTokens + outputTokens
	in.pendingPrefill += promptTokens
	if promptTokens > 0 {
		in.outputRatio = 0.95*in.outputRatio + 0.05*(outputTokens/promptTokens)
	}
}

// QueueTokens returns the pending work in tokens (prompt + output).
func (in *Instance) QueueTokens() float64 {
	if q := in.queue; q != nil {
		return q.waitingPrompt + q.waitingOutput + q.activeOutLeft
	}
	return in.pendingPrefill + in.pendingDecode
}

// Reloading reports whether the instance is mid-reconfiguration.
func (in *Instance) Reloading() bool { return in.reloadLeft > 0 }

// Reconfigure switches the instance to a new configuration, incurring the
// reload penalty when the change requires one. Queued work is retained.
func (in *Instance) Reconfigure(to Config) {
	in.reloadLeft += ReconfigTime(in.Config, to)
	in.Config = to
	in.refreshRates()
}

// DemandSeconds estimates how many seconds of work currently sit in the
// queues under the present configuration.
func (in *Instance) DemandSeconds() float64 {
	if in.queue != nil {
		return in.queueDemandSeconds()
	}
	pr := in.prefillRate
	dr := in.decodeRate
	if pr <= 0 || dr <= 0 {
		return 0
	}
	future := in.pendingPrefill * in.outputRatio // decode work still to appear
	return in.pendingPrefill/pr + (in.pendingDecode+future)/dr
}

// TickEnqueued returns the tokens routed to the instance since the last
// Step — the demand signal the Instance Configurator sizes against.
func (in *Instance) TickEnqueued() float64 { return in.enqueuedTokens }

// StepDrained advances the instance by dt if and only if it is drained (no
// queued work, no reload in flight), reporting whether it applied — the
// exact state updates Step's drained early-return performs. The tick kernel
// pairs it with precompiled idle-server constants to skip the full physics
// of drained servers; callers must fall back to Step when it returns false.
func (in *Instance) StepDrained(dt time.Duration) bool {
	if q := in.queue; q != nil {
		if !q.Idle() || in.reloadLeft != 0 {
			return false
		}
		q.now += in.tickSecs(dt)
	} else if in.pendingPrefill != 0 || in.pendingDecode != 0 || in.reloadLeft != 0 {
		return false
	}
	in.enqueuedTokens = 0
	in.affinityNow += dt
	in.BusyFrac, in.PrefillShare, in.BacklogSecs = 0, 0, 0
	return true
}

// subSteps is the fluid Step's intra-tick resolution.
const subSteps = 4

// tickSecs converts the tick duration to seconds, memoized on the dt value
// because Step runs per instance per tick with the same dt.
func (in *Instance) tickSecs(dt time.Duration) float64 {
	if dt != in.lastDt {
		in.lastDt = dt
		in.cachedSecs = dt.Seconds()
		in.cachedSub = in.cachedSecs / subSteps
	}
	return in.cachedSecs
}

// Step advances the instance by dt, draining queues and updating telemetry.
// In request-level replay mode (AttachQueue) it instead executes the
// discrete-event continuous-batching queue.
func (in *Instance) Step(dt time.Duration) {
	if in.queue != nil {
		in.stepQueue(dt)
		return
	}
	in.enqueuedTokens = 0
	in.affinityNow += dt
	in.BusyFrac, in.PrefillShare = 0, 0
	if in.pendingPrefill == 0 && in.pendingDecode == 0 && in.reloadLeft == 0 {
		// Drained instance: the sub-step loop would move zero tokens and
		// land on exactly this telemetry, so skip it — drained instances
		// dominate off-peak ticks.
		in.BacklogSecs = 0
		return
	}
	if in.reloadLeft > 0 {
		if in.reloadLeft >= dt {
			in.reloadLeft -= dt
			in.BacklogSecs = in.DemandSeconds()
			return
		}
		dt -= in.reloadLeft
		in.reloadLeft = 0
	}
	secs := in.tickSecs(dt)
	if secs <= 0 {
		return
	}
	sf := in.SpeedFactor
	if sf <= 0 || sf > 1 {
		sf = 1
	}
	pr := in.prefillRate * sf
	dr := in.decodeRate * sf

	// Drain in sub-steps with decode priority, so prompt tokens prefetched
	// early in the tick get their decode work served within the same tick —
	// the fluid analogue of continuous batching keeping the running batch
	// fed while admitting prefills with leftover capacity.
	subBudget := in.cachedSub
	var donePrefill, doneDecode, prefillSecs, decodeSecs float64
	for i := 0; i < subSteps; i++ {
		// An exactly-empty queue contributes +0.0 to every accumulator
		// below, so skipping it (or the whole remaining tick once both are
		// empty) is bit-identical and saves the divisions.
		if in.pendingDecode == 0 && in.pendingPrefill == 0 {
			break
		}
		budget := subBudget
		if in.pendingDecode != 0 {
			tDec := in.pendingDecode / dr
			if tDec > budget {
				tDec = budget
			}
			in.pendingDecode -= tDec * dr
			doneDecode += tDec * dr
			decodeSecs += tDec
			budget -= tDec
		}

		// A zero remaining budget (decode consumed the whole sub-step
		// exactly) or an empty prefill queue makes the block a no-op.
		if budget != 0 && in.pendingPrefill != 0 {
			tPre := in.pendingPrefill / pr
			if tPre > budget {
				tPre = budget
			}
			prompt := tPre * pr
			in.pendingPrefill -= prompt
			in.pendingDecode += prompt * in.outputRatio
			donePrefill += prompt
			prefillSecs += tPre
		}
	}
	busySecs := prefillSecs + decodeSecs
	if busySecs == 0 {
		in.BacklogSecs = 0
		return
	}
	in.BusyFrac = units.Clamp01(busySecs / secs)
	in.PrefillShare = units.Clamp01(prefillSecs / busySecs)
	in.BacklogSecs = in.DemandSeconds()

	in.ServedTokens += donePrefill + doneDecode
	if in.Work.AvgOutputTokens > 0 {
		reqs := doneDecode / in.Work.AvgOutputTokens
		in.CompletedRequests += reqs
		in.QualityWeight += reqs * in.Config.Quality()
		// A request completed while the backlog exceeds the TTFT slack is
		// SLO-violated in the fluid approximation. At full speed pr equals
		// prefillRate bit for bit (x*1 == x), so the precomputed slack
		// applies; capped instances recompute against the scaled rate.
		slack := in.slackFull
		if sf != 1 {
			slack = in.SLOs.TTFT.Seconds() - in.Work.AvgPromptTokens/pr
		}
		if in.BacklogSecs > slack {
			in.SLOViolatedReqs += reqs
		}
	}
}

// GPUPowerFrac returns the current per-active-GPU power fraction given this
// tick's busy fraction and phase mix.
func (in *Instance) GPUPowerFrac() float64 {
	idleFrac := in.gpuIdleFrac
	if in.Reloading() {
		return idleFrac
	}
	busy := in.BusyFrac*in.PrefillShare*in.prefillFrac +
		in.BusyFrac*(1-in.PrefillShare)*in.decodeFrac
	return units.Clamp01(busy + (1-in.BusyFrac)*idleFrac)
}

// MemIntensityNow returns the current blended memory intensity for HBM
// temperature modelling.
func (in *Instance) MemIntensityNow() float64 {
	if in.BusyFrac == 0 {
		return 0
	}
	return in.PrefillShare*MemIntensity(Prefill, in.Config) +
		(1-in.PrefillShare)*MemIntensity(Decode, in.Config)
}

// ActiveGPUs returns how many of the server's GPUs this instance drives.
func (in *Instance) ActiveGPUs() int { return in.Config.TP }

// AvgQuality returns the quality-weighted average over completed requests.
func (in *Instance) AvgQuality() float64 {
	if in.CompletedRequests == 0 {
		return in.Config.Quality()
	}
	return in.QualityWeight / in.CompletedRequests
}

// affinityTTL bounds how long KV-cache reuse remains likely for a customer.
const affinityTTL = 10 * time.Minute

// affinityCap bounds the tracked customer set.
const affinityCap = 512

// Touch records that a customer was served now.
func (in *Instance) Touch(customer int) {
	if len(in.affinity) >= affinityCap {
		for k, seen := range in.affinity {
			if in.affinityNow-seen > affinityTTL {
				delete(in.affinity, k)
			}
		}
		if len(in.affinity) >= affinityCap {
			return // saturated with live customers; skip tracking
		}
	}
	in.affinity[customer] = in.affinityNow
}

// HasAffinity reports whether the customer's KV cache is likely still warm.
func (in *Instance) HasAffinity(customer int) bool {
	seen, ok := in.affinity[customer]
	return ok && in.affinityNow-seen <= affinityTTL
}
