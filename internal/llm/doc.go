// Package llm models LLM inference serving the way the paper uses it: a
// configuration space (model size, quantization, tensor parallelism, batch
// size, GPU frequency) with per-phase (prefill/decode) performance, power and
// temperature profiles (Fig. 15), goodput under TTFT/TBT SLOs (Fig. 16), a
// Pareto frontier for the Instance Configurator, and three execution models —
// a fluid per-tick Instance for cluster-scale binned simulation, a
// continuous-batching RequestQueue that serves individual Requests and
// reports per-request TTFT / time-between-tokens / queueing delay for
// request-level replay, and an iteration-level EngineSim for fine-grained
// single-instance runs.
package llm
