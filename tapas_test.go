package tapas_test

import (
	"os"
	"strings"
	"testing"

	tapas "github.com/tapas-sim/tapas"
)

func TestQuickScenarioEndToEnd(t *testing.T) {
	sc := tapas.QuickScenario()
	base, err := tapas.Run(sc, tapas.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	full, err := tapas.Run(sc, tapas.NewTAPAS())
	if err != nil {
		t.Fatal(err)
	}
	if full.PeakPower() >= base.PeakPower() {
		t.Errorf("TAPAS peak %.0f should beat baseline %.0f", full.PeakPower(), base.PeakPower())
	}
}

func TestNewVariantNames(t *testing.T) {
	if tapas.NewVariant(true, true, true).Name() != "TAPAS" {
		t.Error("all levers must be named TAPAS")
	}
	if tapas.NewVariant(false, false, false).Name() != "Baseline" {
		t.Error("no levers must be named Baseline")
	}
	if tapas.NewVariant(true, false, true).Name() != "Place+Config" {
		t.Error("partial variant name wrong")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := tapas.ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("experiments = %d, want 22", len(ids))
	}
	title, ok := tapas.ExperimentTitle("fig21")
	if !ok || title == "" {
		t.Error("fig21 must have a title")
	}
	if _, ok := tapas.ExperimentTitle("bogus"); ok {
		t.Error("bogus experiment must not resolve")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var sb strings.Builder
	if err := tapas.RunExperiment("bogus", 1, 1, &sb); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var sb strings.Builder
	if err := tapas.RunExperiment("table1", 0.1, 42, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Frequency") {
		t.Errorf("table1 output missing rows:\n%s", sb.String())
	}
}

// TestRecordReplayPublicAPI drives the record/replay surface end to end:
// generate, export, load, replay — and require the replayed run to match the
// generated one exactly.
func TestRecordReplayPublicAPI(t *testing.T) {
	sc := tapas.QuickScenario()
	wl, err := tapas.GenerateWorkload(sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := tapas.ExportTrace(&buf, wl); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.csv"
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := tapas.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := tapas.Run(sc, tapas.NewTAPAS())
	if err != nil {
		t.Fatal(err)
	}
	replay := sc
	replay.Trace = loaded
	rep, err := tapas.Run(replay, tapas.NewTAPAS())
	if err != nil {
		t.Fatal(err)
	}
	if gen.MaxTemp() != rep.MaxTemp() || gen.PeakPower() != rep.PeakPower() ||
		gen.ServiceRate() != rep.ServiceRate() || gen.Ticks != rep.Ticks {
		t.Errorf("replayed run differs from generated run:\ngen: maxT=%v peakW=%v svc=%v\nrep: maxT=%v peakW=%v svc=%v",
			gen.MaxTemp(), gen.PeakPower(), gen.ServiceRate(),
			rep.MaxTemp(), rep.PeakPower(), rep.ServiceRate())
	}
}

func TestFailureScenario(t *testing.T) {
	sc := tapas.QuickScenario()
	sc.Failures = []tapas.FailureEvent{{Kind: tapas.PowerFailure, At: 0, Duration: sc.Duration}}
	res, err := tapas.Run(sc, tapas.NewTAPAS())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks == 0 {
		t.Fatal("no ticks simulated")
	}
}
