module github.com/tapas-sim/tapas

go 1.22
