// Failover: inject a UPS failure (datacenter power capacity drops to 75%,
// §5.4) during a peak-load hour and compare how the Baseline and TAPAS
// absorb it (Table 2). The Baseline caps every server's frequency uniformly,
// hurting opaque IaaS customers; TAPAS steers requests and reconfigures SaaS
// instances (accepting a bounded quality dip) and shields IaaS.
package main

import (
	"fmt"
	"log"

	tapas "github.com/tapas-sim/tapas"
)

func main() {
	run := func(pol tapas.Policy, fail bool) *tapas.Result {
		sc := tapas.RealClusterScenario()
		sc.Workload.DemandScale = 1.15 // peak-load window, as in the paper
		sc.Workload.Occupancy = 0.97
		if fail {
			sc.Failures = []tapas.FailureEvent{{
				Kind: tapas.PowerFailure, At: sc.Duration / 6, Duration: sc.Duration,
			}}
		}
		res, err := tapas.Run(sc, pol)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("UPS failure during a peak-load hour (capacity → 75%):")
	fmt.Printf("%-10s %14s %14s %12s\n", "policy", "IaaS perf", "SaaS perf", "SaaS quality")
	for _, mk := range []func() tapas.Policy{tapas.NewBaseline, tapas.NewTAPAS} {
		normal := run(mk(), false)
		failed := run(mk(), true)
		saasPerf := failed.SaaSServedTokens/normal.SaaSServedTokens - 1
		quality := failed.AvgQuality()/normal.AvgQuality() - 1
		fmt.Printf("%-10s %13.1f%% %13.1f%% %11.1f%%\n",
			failed.Policy, -failed.IaaSPerfLoss()*100, saasPerf*100, quality*100)
	}
	fmt.Println("\npaper Table 2 (power emergency): Baseline −35%/−28% perf at zero quality cost;")
	fmt.Println("TAPAS holds IaaS at 0%, improves SaaS, trades ≤12% quality.")
}
