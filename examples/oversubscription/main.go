// Oversubscription: add racks beyond the provisioned cooling/power envelopes
// and measure how much of server-time spends under thermal or power capping,
// Baseline vs TAPAS (Fig. 21). TAPAS's placement/routing/configuration keep
// the fleet under the envelopes far longer, unlocking extra capacity at the
// same infrastructure cost.
package main

import (
	"fmt"
	"log"
	"time"

	tapas "github.com/tapas-sim/tapas"
)

func main() {
	fmt.Printf("%-9s %9s %13s %12s %10s\n", "policy", "oversub%", "thermalCap%", "powerCap%", "service")
	for _, ratio := range []float64{0, 0.2, 0.4} {
		for _, mk := range []func() tapas.Policy{tapas.NewBaseline, tapas.NewTAPAS} {
			sc := tapas.RealClusterScenario()
			sc.Duration = 2 * time.Hour
			sc.Workload.Duration = sc.Duration
			sc.Oversubscribe = ratio
			res, err := tapas.Run(sc, mk())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %9.0f %13.2f %12.2f %10.3f\n",
				res.Policy, ratio*100, res.ThrottleFrac()*100, res.PowerCapFrac()*100, res.ServiceRate())
		}
	}
	fmt.Println("\npaper Fig. 21: Baseline starts capping beyond 20% oversubscription;")
	fmt.Println("TAPAS supports up to 40% additional capacity with <0.7% capping.")
}
