// Quickstart: run the paper's real-cluster experiment — 80 A100 servers in
// two rows, a 50/50 IaaS/SaaS mix — under the Baseline and under TAPAS, and
// compare peaks (Fig. 18).
package main

import (
	"fmt"
	"log"

	tapas "github.com/tapas-sim/tapas"
)

func main() {
	sc := tapas.RealClusterScenario()

	base, err := tapas.Run(sc, tapas.NewBaseline())
	if err != nil {
		log.Fatal(err)
	}
	full, err := tapas.Run(sc, tapas.NewTAPAS())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one hour, 80 servers, 50/50 IaaS/SaaS:")
	fmt.Printf("%-10s %12s %12s %10s %8s\n", "policy", "maxTemp(°C)", "peakRow(kW)", "SLOviol%", "quality")
	for _, r := range []*tapas.Result{base, full} {
		fmt.Printf("%-10s %12.1f %12.1f %10.2f %8.3f\n",
			r.Policy, r.MaxTemp(), r.PeakPower()/1000, r.SLOViolationRate()*100, r.AvgQuality())
	}
	fmt.Printf("\nTAPAS reduces peak row power by %.1f%% and max temperature by %.1f%%\n",
		(1-full.PeakPower()/base.PeakPower())*100,
		(1-full.MaxTemp()/base.MaxTemp())*100)
	fmt.Println("(paper §5.2: ≈20% peak power reduction on the real cluster)")
}
