// Routing: watch TAPAS's thermal/power-aware request routing (§4.2) steer
// SaaS demand between the two rows of a small cluster as their power and
// temperature conditions diverge. The observer samples, per tick, how much
// SaaS power each row carries under both policies.
package main

import (
	"fmt"
	"log"
	"time"

	tapas "github.com/tapas-sim/tapas"
	"github.com/tapas-sim/tapas/internal/cluster"
	"github.com/tapas-sim/tapas/internal/trace"
)

func main() {
	type sample struct{ row0, row1, maxT float64 }
	runWith := func(pol tapas.Policy) []sample {
		var out []sample
		sc := tapas.RealClusterScenario()
		sc.Duration = 30 * time.Minute
		sc.Workload.Duration = sc.Duration
		sc.Observer = func(st *cluster.State) {
			var s sample
			for _, srv := range st.DC.Servers {
				vmID := st.ServerVM[srv.ID]
				if vmID == -1 || st.VMs[vmID].Spec.Kind != trace.SaaS {
					continue
				}
				if srv.Row == 0 {
					s.row0 += st.ServerPowerW[srv.ID]
				} else {
					s.row1 += st.ServerPowerW[srv.ID]
				}
			}
			for _, tc := range st.GPUTempC {
				if tc > s.maxT {
					s.maxT = tc
				}
			}
			out = append(out, s)
		}
		if _, err := tapas.Run(sc, pol); err != nil {
			log.Fatal(err)
		}
		return out
	}

	for _, mk := range []func() tapas.Policy{tapas.NewBaseline, tapas.NewTAPAS} {
		pol := mk()
		samples := runWith(pol)
		fmt.Printf("%s — SaaS power per row (kW) and max GPU temp:\n", pol.Name())
		fmt.Printf("%6s %10s %10s %10s %10s\n", "minute", "row0-SaaS", "row1-SaaS", "imbalance", "maxT")
		for i := 4; i < len(samples); i += 5 {
			s := samples[i]
			imb := s.row0 - s.row1
			if imb < 0 {
				imb = -imb
			}
			fmt.Printf("%6d %10.1f %10.1f %10.1f %9.1f°\n",
				i+1, s.row0/1000, s.row1/1000, imb/1000, s.maxT)
		}
		fmt.Println()
	}
	fmt.Println("TAPAS's router filters instances at risk of violating row power,")
	fmt.Println("aisle airflow or server temperature limits, then consolidates and")
	fmt.Println("spreads by headroom — flattening the per-row SaaS footprint.")
}
