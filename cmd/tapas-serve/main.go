// Command tapas-serve is the campaign daemon: a long-running HTTP service
// that accepts declarative scenario specs, schedules them onto the parallel
// campaign runner with bounded-queue admission control, streams per-campaign
// progress as JSON lines, and serves every compilation through a shared
// content-addressed compile cache — so repeated what-if campaigns skip
// sim.Compile entirely. Reports are byte-identical to tapas-campaign's
// stdout for the same spec.
//
// Usage:
//
//	tapas-serve -addr :8080
//	curl -X POST --data-binary @examples/scenarios/fig20-ablation.json localhost:8080/campaigns
//	curl localhost:8080/campaigns/c1/events   # JSON-lines progress stream
//	curl localhost:8080/campaigns/c1/report   # rendered report once done
//	curl localhost:8080/cachez                # compile-cache counters
//
// SIGINT/SIGTERM shut the daemon down gracefully: admission stops, queued
// campaigns are canceled, in-flight simulations finish their current runs,
// and open event streams receive their terminal event before the listener
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tapas-sim/tapas/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point: it parses args, serves until the stop
// channel (or a signal) fires, and returns the process exit code. A nil stop
// installs the SIGINT/SIGTERM handler; tests pass their own channel. The
// bound address is printed to stdout ("listening on ...") so callers using
// -addr :0 can discover the port.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("tapas-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "HTTP listen address")
		parallel  = fs.Int("parallel", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 0, "tick-kernel shards per run (0 keeps each spec's; -1 = GOMAXPROCS)")
		queue     = fs.Int("queue", 16, "admission-control queue depth; submissions beyond it get HTTP 429")
		cacheSize = fs.Int("cache-size", 0, "compile-cache entries per level (0 = default)")
		baseDir   = fs.String("base-dir", "", "directory relative trace paths in POSTed specs resolve against (\"\" = working directory)")
		grace     = fs.Duration("grace", 30*time.Second, "graceful-shutdown budget before the daemon exits anyway")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "tapas-serve: unexpected arguments (the daemon takes specs over HTTP, not argv)")
		return 2
	}

	sched := serve.NewScheduler(serve.SchedulerConfig{
		QueueDepth: *queue,
		Parallel:   *parallel,
		Shards:     *shards,
		CacheSize:  *cacheSize,
	})
	srv := &http.Server{Handler: serve.NewServer(sched, *baseDir).Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-serve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	if stop == nil {
		ch := make(chan struct{})
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sigs
			close(ch)
		}()
		stop = ch
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve only returns on listener failure here; shutdown goes through
		// the stop path below.
		fmt.Fprintln(stderr, "tapas-serve:", err)
		return 1
	case <-stop:
	}

	fmt.Fprintln(stderr, "tapas-serve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Scheduler first: cancellation drives every job to a terminal event, so
	// open event streams end and Shutdown below can drain them cleanly.
	code := 0
	if err := sched.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "tapas-serve: scheduler shutdown:", err)
		code = 1
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "tapas-serve: http shutdown:", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "tapas-serve:", err)
		code = 1
	}
	return code
}
