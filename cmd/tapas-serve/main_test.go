package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a strings.Builder safe for the concurrent writer/reader the
// daemon test needs (run writes from its goroutine, the test polls).
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

const smokeSpec = `{
  "name": "smoke",
  "layout": {"preset": "small"},
  "duration": "10m",
  "policies": ["baseline"],
  "report": {"format": "csv"}
}`

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, runs one
// campaign through the HTTP API, and exercises graceful shutdown via the
// test stop channel.
func TestRunServesAndShutsDown(t *testing.T) {
	var stdout, stderr syncBuffer
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() { code <- run([]string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, stop) }()

	// The bound address is announced on stdout once the listener is up.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if out := stdout.String(); strings.HasPrefix(out, "listening on ") {
			base = "http://" + strings.TrimSpace(strings.TrimPrefix(out, "listening on "))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/campaigns", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /campaigns = %d", resp.StatusCode)
	}

	// The events stream ends once the campaign is done; then the report
	// renders as CSV.
	resp, err = http.Get(base + "/campaigns/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), `"type":"done"`) {
		t.Fatalf("event stream missing terminal event:\n%s", events)
	}
	resp, err = http.Get(base + "/campaigns/" + created.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(report), "spec,policy,") {
		t.Fatalf("report = %q", report)
	}

	close(stop)
	select {
	case c := <-code:
		if c != 0 {
			t.Errorf("exit code %d; stderr: %s", c, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stderr.String(), "shutting down") {
		t.Errorf("stderr missing shutdown notice: %q", stderr.String())
	}
}

// TestRunUsageErrors pins the CLI contract.
func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-bogus"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	stderr = syncBuffer{}
	if code := run([]string{"positional"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unexpected arguments") {
		t.Errorf("stderr = %q", stderr.String())
	}
	stderr = syncBuffer{}
	if code := run([]string{"-addr", "256.0.0.1:bogus"}, &stdout, &stderr, nil); code != 1 {
		t.Errorf("bad addr: exit %d, want 1", code)
	}
}
