// Command tapas-trace records, transforms, imports, inspects, and replays
// workload traces — the record/replay pipeline that turns a synthetic (or
// captured) workload into a pinned CSV artifact campaigns can sweep
// policies, climates, and failure schedules over.
//
// Usage:
//
//	tapas-trace -export trace.csv -preset quick -seed 42
//	tapas-trace -export trace.csv -spec examples/scenarios/heatwave-sweep.json
//	tapas-trace -export trace.csv -vms trace.vms.csv -preset small
//	tapas-trace -transform chain.json -in trace.csv -out scaled.csv
//	tapas-trace -transform '[{"op":"demand_scale","factor":2}]' -in trace.csv -out scaled.csv
//	tapas-trace -export trace.csv -preset quick -requests-out trace.requests.csv -requests-scale 0.05
//	tapas-trace -import-azure azure-llm.csv -out trace.csv -servers 80
//	tapas-trace -import-azure azure-llm.csv -out trace.csv -requests-out trace.requests.csv
//	tapas-trace -stats examples/scenarios/pinned-small.trace.csv
//	tapas-trace -replay examples/scenarios/replay-pinned.json
//
// -export materializes the workload a spec or preset would simulate and
// writes the versioned workload CSV (with -vms, also the flat per-VM table
// that spreadsheet tools ingest directly — the CSV pair). -transform applies
// a replay-time transform chain (inline JSON or a chain file; relative
// splice paths resolve against the chain file's directory) to a recorded
// trace and re-exports it, so transformed traces are themselves pinnable
// artifacts that replay byte-identically to applying the same chain in-spec.
// -import-azure ingests an Azure-LLM-inference-style request log
// (timestamp,endpoint,prompt_tokens,output_tokens) into a replayable trace
// via binned demand reconstruction; with -requests-out the source rows are
// also wired straight through as a request-level replay log (workload.requests)
// instead of being binned away. -export -requests-out generates the synthetic
// request stream of the recorded workload (optionally rate-thinned by
// -requests-scale) for the same purpose. -stats summarizes a recorded trace:
// fleet, kind mix, endpoints, demand percentiles. -replay runs a spec whose
// workload.trace pins a recorded file and prints its campaign report to
// stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	tapas "github.com/tapas-sim/tapas"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/scenario"
	"github.com/tapas-sim/tapas/internal/trace"
	"github.com/tapas-sim/tapas/internal/trace/transform"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tapas-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		export   = fs.String("export", "", "record: write the workload CSV to this path")
		vmsOut   = fs.String("vms", "", "with -export: also write the flat per-VM CSV table to this path")
		specPath = fs.String("spec", "", "with -export: record the workload of this scenario spec (single grid point)")
		preset   = fs.String("preset", "", "with -export: record a preset workload: quick | small | large (default quick)")
		seed     = fs.Uint64("seed", 42, "with -export -preset / -import-azure: deterministic workload seed")
		transf   = fs.String("transform", "", "transform: a transform-chain JSON array (inline) or the path of a chain file; applies to -in, re-exports to -out")
		in       = fs.String("in", "", "with -transform: the recorded workload CSV to transform")
		out      = fs.String("out", "", "with -transform / -import-azure: write the resulting workload CSV to this path")
		azure    = fs.String("import-azure", "", "import: ingest an Azure-LLM-inference-style request CSV (timestamp,endpoint,prompt_tokens,output_tokens) into a replayable workload CSV at -out")
		servers  = fs.Int("servers", 80, "with -import-azure: target cluster size the reconstructed workload replays against")
		bin      = fs.Duration("bin", 10*time.Minute, "with -import-azure: demand-reconstruction bin width")
		reqsOut  = fs.String("requests-out", "", "with -export / -import-azure: also write the per-request log CSV (workload.requests replay input) to this path")
		reqScale = fs.Float64("requests-scale", 1, "with -export -requests-out: scale the generated request rate (thin the log so committed artifacts stay small)")
		stats    = fs.String("stats", "", "inspect: summarize a recorded workload CSV")
		replay   = fs.String("replay", "", "replay: run a scenario spec whose workload.trace pins a recorded CSV")
		parallel = fs.Int("parallel", 0, "with -replay: worker pool size (0 selects GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modes := 0
	for _, m := range []string{*export, *transf, *azure, *stats, *replay} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, "tapas-trace: exactly one of -export, -transform, -import-azure, -stats, -replay is required (see -h)")
		return 2
	}

	// A flag outside its mode would be silently ignored; reject the
	// combination instead (same contract as tapas-sim's -spec conflicts).
	var mode string
	var ok map[string]bool
	switch {
	case *export != "":
		mode, ok = "-export", map[string]bool{"export": true, "vms": true, "spec": true, "preset": true, "seed": true, "requests-out": true, "requests-scale": true}
	case *transf != "":
		mode, ok = "-transform", map[string]bool{"transform": true, "in": true, "out": true}
	case *azure != "":
		mode, ok = "-import-azure", map[string]bool{"import-azure": true, "out": true, "servers": true, "bin": true, "seed": true, "requests-out": true}
	case *stats != "":
		mode, ok = "-stats", map[string]bool{"stats": true}
	default:
		mode, ok = "-replay", map[string]bool{"replay": true, "parallel": true}
	}
	conflict := false
	fs.Visit(func(f *flag.Flag) {
		if !ok[f.Name] {
			fmt.Fprintf(stderr, "tapas-trace: -%s does not apply to %s\n", f.Name, mode)
			conflict = true
		}
	})
	if conflict {
		return 2
	}

	switch {
	case *export != "":
		if *specPath != "" && flagWasSet(fs, "seed") {
			// The spec pins its own seeds; a -seed alongside would be
			// silently ignored.
			fmt.Fprintln(stderr, "tapas-trace: -seed conflicts with -spec (set the seed in the spec instead)")
			return 2
		}
		return runExport(*export, *vmsOut, *specPath, *preset, *seed, *reqsOut, *reqScale, stderr)
	case *transf != "":
		return runTransform(*transf, *in, *out, stderr)
	case *azure != "":
		return runImportAzure(*azure, *out, *servers, *bin, *seed, *reqsOut, stderr)
	case *stats != "":
		return runStats(*stats, stdout, stderr)
	default:
		return runReplay(*replay, *parallel, stdout, stderr)
	}
}

func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runExport materializes the workload a spec or preset would simulate and
// archives it as the versioned workload CSV (plus, optionally, the flat
// per-VM table and the per-request log for request-level replay).
func runExport(out, vmsOut, specPath, preset string, seed uint64, reqsOut string, reqScale float64, stderr io.Writer) int {
	if specPath != "" && preset != "" {
		fmt.Fprintln(stderr, "tapas-trace: -spec and -preset are mutually exclusive")
		return 2
	}
	var sc tapas.Scenario
	switch {
	case specPath != "":
		spec, err := scenario.Load(specPath)
		if err != nil {
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		c, err := spec.Campaign(0)
		if err != nil {
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		if len(c.Points) > 1 {
			fmt.Fprintf(stderr, "tapas-trace: spec %q sweeps axes into %d grid points; -export needs a single workload\n", spec.Name, len(c.Points))
			return 2
		}
		sc = c.Points[0].Scenario
		if sc.Trace != nil {
			fmt.Fprintf(stderr, "tapas-trace: spec %q already replays a recorded trace\n", spec.Name)
			return 2
		}
	default:
		switch preset {
		case "", "quick":
			sc = tapas.QuickScenario()
		case "small":
			sc = tapas.RealClusterScenario()
		case "large":
			sc = tapas.LargeScenario()
		default:
			fmt.Fprintf(stderr, "tapas-trace: unknown preset %q (known: quick, small, large)\n", preset)
			return 2
		}
		sc.Workload.Seed = seed
		sc.Layout.Seed = seed
	}

	wl, err := tapas.GenerateWorkload(sc)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	if err := trace.SaveWorkloadCSV(out, wl); err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	fmt.Fprintf(stderr, "recorded %d VMs / %d endpoints over %v to %s\n",
		len(wl.VMs), len(wl.Endpoints), wl.Config.Duration, out)
	if vmsOut != "" {
		f, err := os.Create(vmsOut)
		if err != nil {
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		if err := trace.WriteVMsCSV(f, wl.VMs); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote flat VM table to %s\n", vmsOut)
	}
	if reqsOut != "" {
		if reqScale <= 0 {
			fmt.Fprintf(stderr, "tapas-trace: -requests-scale %v must be positive\n", reqScale)
			return 2
		}
		// One Poisson stream per endpoint (rate scaled by -requests-scale:
		// thinning a Poisson process is the same process at the lower rate),
		// merged into one arrival-sorted log with dense sequential IDs — the
		// canonical requests-CSV form workload.requests replays.
		var reqs []llm.Request
		for _, ep := range wl.Endpoints {
			sep := ep
			sep.PeakRPSPerVM *= reqScale
			reqs = append(reqs, sep.Requests(0, wl.Config.Duration, wl.Config.Seed)...)
		}
		sort.Slice(reqs, func(i, j int) bool {
			if reqs[i].Arrival != reqs[j].Arrival {
				return reqs[i].Arrival < reqs[j].Arrival
			}
			return reqs[i].ID < reqs[j].ID
		})
		for i := range reqs {
			reqs[i].ID = int64(i)
		}
		if err := trace.SaveRequestsCSV(reqsOut, reqs); err != nil {
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d requests (rate scale %g) to %s\n", len(reqs), reqScale, reqsOut)
	}
	return 0
}

// runTransform applies a transform chain to a recorded trace and re-exports
// the result — the CLI twin of the workload.transforms spec field, so a
// transformed trace can be pinned as its own artifact. The chain is either
// inline JSON (starts with "[") or the path of a chain file; relative splice
// paths resolve against the chain file's directory (the working directory
// for inline chains).
func runTransform(chainArg, in, out string, stderr io.Writer) int {
	if in == "" || out == "" {
		fmt.Fprintln(stderr, "tapas-trace: -transform needs both -in (recorded trace) and -out (transformed trace)")
		return 2
	}
	data := []byte(chainArg)
	dir := "."
	if !strings.HasPrefix(strings.TrimSpace(chainArg), "[") {
		b, err := os.ReadFile(chainArg)
		if err != nil {
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		data = b
		dir = filepath.Dir(chainArg)
	}
	chain, err := transform.Parse(data)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	if len(chain) == 0 {
		fmt.Fprintln(stderr, "tapas-trace: transform chain is empty; nothing to apply")
		return 2
	}
	if err := chain.Load(dir); err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	wl, err := tapas.LoadTrace(in)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	twl, err := chain.Apply(wl)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	if err := trace.SaveWorkloadCSV(out, twl); err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	fmt.Fprintf(stderr, "applied %d-step chain: %d VMs / %d endpoints over %v -> %d VMs / %d endpoints over %v, to %s\n",
		len(chain), len(wl.VMs), len(wl.Endpoints), wl.Config.Duration,
		len(twl.VMs), len(twl.Endpoints), twl.Config.Duration, out)
	return 0
}

// runImportAzure ingests an Azure-LLM-inference-style request log and writes
// the reconstructed replayable workload CSV. With -requests-out it also
// passes the source rows straight through as a request-level replay log
// instead of binning them away.
func runImportAzure(in, out string, servers int, bin time.Duration, seed uint64, reqsOut string, stderr io.Writer) int {
	if out == "" {
		fmt.Fprintln(stderr, "tapas-trace: -import-azure needs -out (reconstructed trace path)")
		return 2
	}
	cfg := trace.AzureImportConfig{Servers: servers, Bin: bin, Seed: seed}
	var (
		wl   *trace.Workload
		reqs []llm.Request
		err  error
	)
	if reqsOut != "" {
		wl, reqs, err = trace.LoadAzureLLMCSVRequests(in, cfg)
	} else {
		wl, err = trace.LoadAzureLLMCSV(in, cfg)
	}
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	if err := trace.SaveWorkloadCSV(out, wl); err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	fmt.Fprintf(stderr, "imported %d endpoints / %d SaaS VMs over %v (fleet %d servers) to %s\n",
		len(wl.Endpoints), len(wl.VMs), wl.Config.Duration, wl.Config.Servers, out)
	if reqsOut != "" {
		if err := trace.SaveRequestsCSV(reqsOut, reqs); err != nil {
			fmt.Fprintln(stderr, "tapas-trace:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d requests to %s\n", len(reqs), reqsOut)
	}
	return 0
}

// runStats summarizes a recorded workload: fleet, kind mix, endpoint sizes,
// and the demand percentiles that tell whether a trace is worth replaying.
func runStats(path string, stdout, stderr io.Writer) int {
	wl, err := tapas.LoadTrace(path)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	cfg := wl.Config
	iaas, saas, atStart := 0, 0, 0
	customers := map[int]bool{}
	for _, vm := range wl.VMs {
		if vm.Kind == trace.IaaS {
			iaas++
			customers[vm.Customer] = true
		} else {
			saas++
		}
		if vm.Arrival == 0 {
			atStart++
		}
	}
	fmt.Fprintf(stdout, "trace             %s\n", path)
	fmt.Fprintf(stdout, "recorded fleet    %d servers, %v window, seed %d\n", cfg.Servers, cfg.Duration, cfg.Seed)
	fmt.Fprintf(stdout, "generation        occupancy %.2f, demand scale %.2f, SaaS fraction %.2f\n",
		cfg.Occupancy, cfg.DemandScale, cfg.SaaSFraction)
	fmt.Fprintf(stdout, "VMs               %d total: %d IaaS (%d customers), %d SaaS\n",
		len(wl.VMs), iaas, len(customers), saas)
	fmt.Fprintf(stdout, "arrivals          %d resident at t=0, %d during the window\n",
		atStart, len(wl.VMs)-atStart)
	fmt.Fprintf(stdout, "endpoints         %d", len(wl.Endpoints))
	for i, ep := range wl.Endpoints {
		sep := " (VM counts "
		if i > 0 {
			sep = "/"
		}
		fmt.Fprintf(stdout, "%s%d", sep, ep.NumVMs)
	}
	if len(wl.Endpoints) > 0 {
		fmt.Fprint(stdout, ")")
	}
	fmt.Fprintln(stdout)

	// Demand percentiles, sampled per minute over the recorded window: the
	// aggregate SaaS token demand and the aggregate IaaS load the replay
	// will drive.
	window := cfg.Duration
	if window <= 0 {
		window = 24 * time.Hour
	}
	minutes := int(window / time.Minute)
	if minutes < 1 {
		minutes = 1
	}
	saasTok := make([]float64, 0, minutes)
	iaasLoad := make([]float64, 0, minutes)
	for m := 0; m < minutes; m++ {
		t := time.Duration(m) * time.Minute
		tok := 0.0
		for _, ep := range wl.Endpoints {
			p, o := ep.DemandTokens(t, time.Minute)
			tok += p + o
		}
		saasTok = append(saasTok, tok/1000)
		load := 0.0
		for _, vm := range wl.VMs {
			if vm.Kind == trace.IaaS && vm.Active(t) {
				load += vm.Load.At(t)
			}
		}
		iaasLoad = append(iaasLoad, load)
	}
	fmt.Fprintf(stdout, "SaaS demand       p50 %.0f / p90 %.0f / p99 %.0f ktok/min aggregate\n",
		percentile(saasTok, 50), percentile(saasTok, 90), percentile(saasTok, 99))
	fmt.Fprintf(stdout, "IaaS load         p50 %.1f / p90 %.1f / p99 %.1f server-equivalents\n",
		percentile(iaasLoad, 50), percentile(iaasLoad, 90), percentile(iaasLoad, 99))
	return 0
}

// percentile returns the q-th percentile (nearest-rank) of vals.
func percentile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(q/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// runReplay runs a replay spec — one whose workload.trace pins a recorded
// CSV — and prints its campaign report to stdout.
func runReplay(path string, parallel int, stdout, stderr io.Writer) int {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	if spec.Workload.Trace == "" {
		fmt.Fprintf(stderr, "tapas-trace: spec %q does not set workload.trace; -replay needs a recorded trace (synthetic specs run with tapas-campaign)\n", spec.Name)
		return 2
	}
	c, err := spec.Campaign(0)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	start := time.Now()
	res, err := c.Run(scenario.RunOptions{Parallel: parallel})
	if err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	if _, err := res.WriteTo(stdout); err != nil {
		fmt.Fprintln(stderr, "tapas-trace:", err)
		return 1
	}
	fmt.Fprintf(stderr, "%-24s %3d runs in %v\n", spec.Name, c.Runs(), time.Since(start).Round(time.Millisecond))
	return 0
}
