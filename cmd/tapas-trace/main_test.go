package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunModeErrors(t *testing.T) {
	cases := map[string]struct {
		args     []string
		wantCode int
		wantErr  string
	}{
		"no mode":          {nil, 2, "exactly one of -export, -transform, -import-azure, -stats, -replay"},
		"two modes":        {[]string{"-export", "a.csv", "-stats", "b.csv"}, 2, "exactly one of"},
		"unknown flag":     {[]string{"-bogus"}, 2, "flag provided but not defined"},
		"unknown preset":   {[]string{"-export", "a.csv", "-preset", "galactic"}, 2, `unknown preset "galactic"`},
		"spec plus preset": {[]string{"-export", "a.csv", "-spec", "s.json", "-preset", "quick"}, 2, "mutually exclusive"},
		"seed with spec":   {[]string{"-export", "a.csv", "-spec", "s.json", "-seed", "7"}, 2, "-seed conflicts with -spec"},
		"vms with stats":   {[]string{"-stats", "a.csv", "-vms", "b.csv"}, 2, "-vms does not apply to -stats"},
		"seed with replay": {[]string{"-replay", "a.json", "-seed", "7"}, 2, "-seed does not apply to -replay"},
		"parallel export":  {[]string{"-export", "a.csv", "-parallel", "4"}, 2, "-parallel does not apply to -export"},
		"missing stats":    {[]string{"-stats", "definitely-missing.csv"}, 1, "definitely-missing.csv"},
		"missing replay":   {[]string{"-replay", "definitely-missing.json"}, 1, "definitely-missing.json"},
		"transform no in":  {[]string{"-transform", "[]", "-out", "b.csv"}, 2, "-transform needs both -in"},
		"transform no out": {[]string{"-transform", "[]", "-in", "a.csv"}, 2, "-transform needs both -in"},
		"transform empty":  {[]string{"-transform", "[]", "-in", "a.csv", "-out", "b.csv"}, 2, "chain is empty"},
		"transform preset": {[]string{"-transform", "[]", "-in", "a.csv", "-out", "b.csv", "-preset", "quick"}, 2, "-preset does not apply to -transform"},
		"transform bad op": {[]string{"-transform", `[{"op":"warp"}]`, "-in", "a.csv", "-out", "b.csv"}, 1, `unknown op "warp"`},
		"azure no out":     {[]string{"-import-azure", "a.csv"}, 2, "-import-azure needs -out"},
		"azure missing":    {[]string{"-import-azure", "definitely-missing.csv", "-out", "b.csv"}, 1, "definitely-missing.csv"},
		"azure parallel":   {[]string{"-import-azure", "a.csv", "-out", "b.csv", "-parallel", "2"}, 2, "-parallel does not apply to -import-azure"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.wantErr) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.wantErr)
			}
		})
	}
}

// TestExportStatsReplayPipeline drives the full CLI pipeline: record a quick
// preset workload (with the flat VM table pair), inspect it, then replay it
// through a spec that pins the recorded file.
func TestExportStatsReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.csv")
	vmsPath := filepath.Join(dir, "t.vms.csv")

	var out, errOut strings.Builder
	code := run([]string{"-export", tracePath, "-vms", vmsPath, "-preset", "quick", "-seed", "42"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("export: exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "recorded") || !strings.Contains(errOut.String(), "flat VM table") {
		t.Errorf("export stderr missing summary: %q", errOut.String())
	}
	for _, p := range []string{tracePath, vmsPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("export did not write %s: %v", p, err)
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-stats", tracePath}, &out, &errOut); code != 0 {
		t.Fatalf("stats: exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"recorded fleet    80 servers", "VMs", "endpoints", "SaaS demand", "IaaS load"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}

	replaySpec := `{
	  "name": "replay-smoke",
	  "layout": {"preset": "small"},
	  "duration": "20m",
	  "workload": {"trace": "t.csv"},
	  "policies": ["baseline"],
	  "report": {"format": "csv"}
	}`
	specPath := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(specPath, []byte(replaySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-replay", specPath, "-parallel", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("replay: exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "spec,policy,") {
		t.Errorf("replay report missing CSV header:\n%s", out.String())
	}
}

// TestTransformReexportMatchesInSpecChain is the PR's acceptance criterion
// at the CLI layer: applying a chain with `tapas-trace -transform` and
// replaying the re-exported trace produces a campaign report byte-identical
// to replaying the original trace with the same chain in-spec.
func TestTransformReexportMatchesInSpecChain(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.csv")
	scaled := filepath.Join(dir, "scaled.csv")
	chain := `[{"op": "demand_scale", "factor": 1.5, "seed": 7}, {"op": "jitter", "sigma": "90s", "seed": 3}]`

	var out, errOut strings.Builder
	if code := run([]string{"-export", orig, "-preset", "quick", "-seed", "42"}, &out, &errOut); code != 0 {
		t.Fatalf("export: %s", errOut.String())
	}

	// CLI path: apply the chain, re-export as a standalone artifact.
	errOut.Reset()
	if code := run([]string{"-transform", chain, "-in", orig, "-out", scaled}, &out, &errOut); code != 0 {
		t.Fatalf("transform: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "applied 2-step chain") {
		t.Errorf("transform summary missing: %q", errOut.String())
	}

	reportCfg := `"duration": "20m",
	  "policies": ["baseline", "tapas"],
	  "report": {"format": "csv", "metrics": ["max_temp_c", "peak_power_kw", "energy_mwh",
	             "service_rate", "slo_violation_pct", "placement_rejects"]}`
	preSpec := filepath.Join(dir, "pre.json")
	inSpec := filepath.Join(dir, "in.json")
	if err := os.WriteFile(preSpec, []byte(`{
	  "name": "same", "layout": {"preset": "small"},
	  "workload": {"trace": "scaled.csv"}, `+reportCfg+`}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inSpec, []byte(`{
	  "name": "same", "layout": {"preset": "small"},
	  "workload": {"trace": "orig.csv", "transforms": `+chain+`}, `+reportCfg+`}`), 0o644); err != nil {
		t.Fatal(err)
	}

	replayOut := func(spec string) string {
		var so, se strings.Builder
		if code := run([]string{"-replay", spec, "-parallel", "2"}, &so, &se); code != 0 {
			t.Fatalf("replay %s: %s", spec, se.String())
		}
		return so.String()
	}
	pre, in := replayOut(preSpec), replayOut(inSpec)
	if pre != in {
		t.Errorf("re-exported trace and in-spec chain reports differ:\n--- re-exported ---\n%s--- in-spec ---\n%s", pre, in)
	}
}

// TestImportAzurePipeline drives the committed fixture end to end: import,
// archive, inspect.
func TestImportAzurePipeline(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "azure.trace.csv")
	fixture := filepath.Join("..", "..", "examples", "traces", "azure-llm-sample.csv")

	var out, errOut strings.Builder
	if code := run([]string{"-import-azure", fixture, "-out", outPath, "-servers", "40", "-seed", "5"}, &out, &errOut); code != 0 {
		t.Fatalf("import: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "imported 3 endpoints") {
		t.Errorf("import summary missing endpoint count: %q", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-stats", outPath}, &out, &errOut); code != 0 {
		t.Fatalf("stats on import: %s", errOut.String())
	}
	for _, want := range []string{"recorded fleet    40 servers", "endpoints         3", "SaaS demand"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestReplayRejectsSyntheticSpec(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "synthetic.json")
	spec := `{"name": "synthetic", "layout": {"preset": "small"}, "duration": "5m"}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-replay", specPath}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "does not set workload.trace") {
		t.Errorf("stderr %q does not explain the missing trace", errOut.String())
	}
}

// TestExportFromSpec records the workload of a committed single-point spec
// and rejects sweeping specs, whose grid has no single workload to record.
func TestExportFromSpec(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.json")
	spec := `{"name": "single", "layout": {"preset": "small"}, "duration": "10m"}`
	if err := os.WriteFile(single, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "t.csv")
	var out, errOut strings.Builder
	if code := run([]string{"-export", tracePath, "-spec", single}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}

	sweeping := filepath.Join("..", "..", "examples", "scenarios", "heatwave-sweep.json")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-export", tracePath, "-spec", sweeping}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "sweeps axes") {
		t.Errorf("stderr %q does not explain the sweep rejection", errOut.String())
	}
}
