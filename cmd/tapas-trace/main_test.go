package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunModeErrors(t *testing.T) {
	cases := map[string]struct {
		args     []string
		wantCode int
		wantErr  string
	}{
		"no mode":          {nil, 2, "exactly one of -export, -stats, -replay"},
		"two modes":        {[]string{"-export", "a.csv", "-stats", "b.csv"}, 2, "exactly one of"},
		"unknown flag":     {[]string{"-bogus"}, 2, "flag provided but not defined"},
		"unknown preset":   {[]string{"-export", "a.csv", "-preset", "galactic"}, 2, `unknown preset "galactic"`},
		"spec plus preset": {[]string{"-export", "a.csv", "-spec", "s.json", "-preset", "quick"}, 2, "mutually exclusive"},
		"seed with spec":   {[]string{"-export", "a.csv", "-spec", "s.json", "-seed", "7"}, 2, "-seed conflicts with -spec"},
		"vms with stats":   {[]string{"-stats", "a.csv", "-vms", "b.csv"}, 2, "-vms does not apply to -stats"},
		"seed with replay": {[]string{"-replay", "a.json", "-seed", "7"}, 2, "-seed does not apply to -replay"},
		"parallel export":  {[]string{"-export", "a.csv", "-parallel", "4"}, 2, "-parallel does not apply to -export"},
		"missing stats":    {[]string{"-stats", "definitely-missing.csv"}, 1, "definitely-missing.csv"},
		"missing replay":   {[]string{"-replay", "definitely-missing.json"}, 1, "definitely-missing.json"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.wantErr) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.wantErr)
			}
		})
	}
}

// TestExportStatsReplayPipeline drives the full CLI pipeline: record a quick
// preset workload (with the flat VM table pair), inspect it, then replay it
// through a spec that pins the recorded file.
func TestExportStatsReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.csv")
	vmsPath := filepath.Join(dir, "t.vms.csv")

	var out, errOut strings.Builder
	code := run([]string{"-export", tracePath, "-vms", vmsPath, "-preset", "quick", "-seed", "42"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("export: exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "recorded") || !strings.Contains(errOut.String(), "flat VM table") {
		t.Errorf("export stderr missing summary: %q", errOut.String())
	}
	for _, p := range []string{tracePath, vmsPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("export did not write %s: %v", p, err)
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-stats", tracePath}, &out, &errOut); code != 0 {
		t.Fatalf("stats: exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"recorded fleet    80 servers", "VMs", "endpoints", "SaaS demand", "IaaS load"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}

	replaySpec := `{
	  "name": "replay-smoke",
	  "layout": {"preset": "small"},
	  "duration": "20m",
	  "workload": {"trace": "t.csv"},
	  "policies": ["baseline"],
	  "report": {"format": "csv"}
	}`
	specPath := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(specPath, []byte(replaySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-replay", specPath, "-parallel", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("replay: exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "spec,policy,") {
		t.Errorf("replay report missing CSV header:\n%s", out.String())
	}
}

func TestReplayRejectsSyntheticSpec(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "synthetic.json")
	spec := `{"name": "synthetic", "layout": {"preset": "small"}, "duration": "5m"}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-replay", specPath}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "does not set workload.trace") {
		t.Errorf("stderr %q does not explain the missing trace", errOut.String())
	}
}

// TestExportFromSpec records the workload of a committed single-point spec
// and rejects sweeping specs, whose grid has no single workload to record.
func TestExportFromSpec(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.json")
	spec := `{"name": "single", "layout": {"preset": "small"}, "duration": "10m"}`
	if err := os.WriteFile(single, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "t.csv")
	var out, errOut strings.Builder
	if code := run([]string{"-export", tracePath, "-spec", single}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatal(err)
	}

	sweeping := filepath.Join("..", "..", "examples", "scenarios", "heatwave-sweep.json")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-export", tracePath, "-spec", sweeping}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "sweeps axes") {
		t.Errorf("stderr %q does not explain the sweep rejection", errOut.String())
	}
}
