package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const quickSpec = `{
  "name": "quick",
  "layout": {"preset": "small"},
  "duration": "5m",
  "policies": ["baseline"]
}`

func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunErrors(t *testing.T) {
	axesSpec := filepath.Join("..", "..", "examples", "scenarios", "heatwave-sweep.json")
	cases := map[string]struct {
		args     []string
		wantCode int
		wantErr  string
	}{
		"spec flag conflict": {
			[]string{"-spec", "x.json", "-hours", "2"}, 2, "-hours conflicts with -spec"},
		"spec seed conflict": {
			[]string{"-spec", "x.json", "-seed", "7"}, 2, "-seed conflicts with -spec"},
		"missing spec": {
			[]string{"-spec", "definitely-missing.json"}, 1, "definitely-missing.json"},
		"unknown failure": {
			[]string{"-failure", "earthquake"}, 2, `unknown failure "earthquake"`},
		"unknown policy": {
			[]string{"-policy", "psychic"}, 2, "unknown policy"},
		"unknown flag": {
			[]string{"-bogus"}, 2, "flag provided but not defined"},
		"spec with axes": {
			[]string{"-spec", axesSpec}, 2, "sweeps axes"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.wantErr) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.wantErr)
			}
		})
	}
}

func TestRunFlagScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-policy", "baseline", "-hours", "0.05"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"policy            Baseline", "max GPU temp", "IaaS perf loss"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSpecScenario(t *testing.T) {
	path := writeSpec(t, quickSpec)
	var out, errOut strings.Builder
	code := run([]string{"-spec", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "policy            Baseline") {
		t.Errorf("stdout missing baseline summary:\n%s", out.String())
	}
	// -policy is the one deliberate override on top of -spec.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-spec", path, "-policy", "tapas"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "Baseline") {
		t.Errorf("-policy override did not replace the spec's policies:\n%s", out.String())
	}
}
