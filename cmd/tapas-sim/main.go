// Command tapas-sim runs a single cluster simulation under a chosen policy
// and prints a summary.
//
// Usage:
//
//	tapas-sim -policy tapas -hours 24 -mix 0.5 -oversub 0.2
//	tapas-sim -policy baseline -failure power -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	tapas "github.com/tapas-sim/tapas"
)

func main() {
	var (
		policy  = flag.String("policy", "tapas", "baseline | tapas | any of place,route,config (comma separated)")
		scale   = flag.String("scale", "small", "small (80 servers) | large (~1000 servers)")
		hours   = flag.Float64("hours", 1, "simulated duration in hours")
		mix     = flag.Float64("mix", 0.5, "SaaS fraction of the workload (0–1)")
		oversub = flag.Float64("oversub", 0, "oversubscription ratio (0.4 = +40% racks)")
		failure = flag.String("failure", "", "inject emergency: power | cooling")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
	)
	flag.Parse()

	var sc tapas.Scenario
	if *scale == "large" {
		sc = tapas.LargeScenario()
	} else {
		sc = tapas.RealClusterScenario()
	}
	sc.Duration = time.Duration(*hours * float64(time.Hour))
	sc.Workload.Duration = sc.Duration
	sc.Workload.SaaSFraction = *mix
	sc.Workload.Seed = *seed
	sc.Oversubscribe = *oversub
	switch *failure {
	case "power":
		sc.Failures = []tapas.FailureEvent{{Kind: tapas.PowerFailure, At: sc.Duration / 4, Duration: sc.Duration / 2}}
	case "cooling":
		sc.Failures = []tapas.FailureEvent{{Kind: tapas.CoolingFailure, At: sc.Duration / 4, Duration: sc.Duration / 2}}
	case "":
	default:
		fmt.Fprintf(os.Stderr, "tapas-sim: unknown failure %q\n", *failure)
		os.Exit(2)
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapas-sim:", err)
		os.Exit(2)
	}

	start := time.Now()
	res, err := tapas.Run(sc, pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapas-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("policy            %s\n", res.Policy)
	fmt.Printf("simulated         %v at %v ticks (%d ticks, wall %v)\n",
		sc.Duration, res.Tick, res.Ticks, time.Since(start).Round(time.Millisecond))
	fmt.Printf("max GPU temp      %.1f °C (P99 %.1f)\n", res.MaxTemp(), res.PercentileMaxTemp(99))
	fmt.Printf("peak row power    %.1f kW (P99 %.1f)\n", res.PeakPower()/1000, res.PercentilePeakPower(99)/1000)
	fmt.Printf("thermal capping   %.2f%% of server-time\n", res.ThrottleFrac()*100)
	fmt.Printf("power capping     %.2f%% of server-time\n", res.PowerCapFrac()*100)
	fmt.Printf("SaaS service rate %.3f, SLO violations %.2f%%, quality %.3f\n",
		res.ServiceRate(), res.SLOViolationRate()*100, res.AvgQuality())
	fmt.Printf("IaaS perf loss    %.1f%%\n", res.IaaSPerfLoss()*100)
}

func parsePolicy(s string) (tapas.Policy, error) {
	switch s {
	case "baseline":
		return tapas.NewBaseline(), nil
	case "tapas":
		return tapas.NewTAPAS(), nil
	}
	var place, route, config bool
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "place":
			place = true
		case "route":
			route = true
		case "config":
			config = true
		default:
			return nil, fmt.Errorf("unknown policy component %q", part)
		}
	}
	return tapas.NewVariant(place, route, config), nil
}
