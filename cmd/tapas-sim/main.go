// Command tapas-sim runs a single cluster simulation under a chosen policy
// and prints a summary.
//
// Usage:
//
//	tapas-sim -policy tapas -hours 24 -mix 0.5 -oversub 0.2
//	tapas-sim -policy baseline -failure power -scale small
//	tapas-sim -spec examples/scenarios/rolling-emergencies.json
//
// With -spec, the scenario comes from a declarative spec file (see
// internal/scenario and cmd/tapas-campaign) and every policy listed in the
// spec runs in order; -policy (when given explicitly) overrides the spec's
// policy list. Specs that sweep axes need tapas-campaign.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	tapas "github.com/tapas-sim/tapas"
	"github.com/tapas-sim/tapas/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tapas-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policy   = fs.String("policy", "tapas", "baseline | tapas | any of place,route,config (comma separated)")
		scale    = fs.String("scale", "small", "small (80 servers) | large (~1000 servers)")
		hours    = fs.Float64("hours", 1, "simulated duration in hours")
		mix      = fs.Float64("mix", 0.5, "SaaS fraction of the workload (0–1)")
		oversub  = fs.Float64("oversub", 0, "oversubscription ratio (0.4 = +40% racks)")
		failure  = fs.String("failure", "", "inject emergency: power | cooling")
		seed     = fs.Uint64("seed", 42, "deterministic seed")
		shards   = fs.Int("shards", 0, "tick-kernel shards (0/1 serial, -1 = GOMAXPROCS); output is byte-identical at any value")
		specPath = fs.String("spec", "", "run a declarative scenario spec file instead of the flag-built scenario")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *specPath != "" {
		// The spec fully describes the scenario; a scenario-shaping flag
		// alongside it would be silently ignored, so reject the combination
		// (-policy and -shards are the deliberate overrides: policy selects
		// what runs, shards is runtime-only and never changes the output).
		for _, name := range []string{"scale", "hours", "mix", "oversub", "failure", "seed"} {
			if flagWasSet(fs, name) {
				fmt.Fprintf(stderr, "tapas-sim: -%s conflicts with -spec (edit the spec file instead)\n", name)
				return 2
			}
		}
		return runSpec(*specPath, *policy, flagWasSet(fs, "policy"), *shards, stdout, stderr)
	}

	var sc tapas.Scenario
	if *scale == "large" {
		sc = tapas.LargeScenario()
	} else {
		sc = tapas.RealClusterScenario()
	}
	sc.Duration = time.Duration(*hours * float64(time.Hour))
	sc.Workload.Duration = sc.Duration
	sc.Workload.SaaSFraction = *mix
	sc.Workload.Seed = *seed
	sc.Oversubscribe = *oversub
	sc.Shards = *shards
	switch *failure {
	case "power":
		sc.Failures = []tapas.FailureEvent{{Kind: tapas.PowerFailure, At: sc.Duration / 4, Duration: sc.Duration / 2}}
	case "cooling":
		sc.Failures = []tapas.FailureEvent{{Kind: tapas.CoolingFailure, At: sc.Duration / 4, Duration: sc.Duration / 2}}
	case "":
	default:
		fmt.Fprintf(stderr, "tapas-sim: unknown failure %q\n", *failure)
		return 2
	}

	pol, err := scenario.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-sim:", err)
		return 2
	}

	start := time.Now()
	res, err := tapas.Run(sc, pol.New())
	if err != nil {
		fmt.Fprintln(stderr, "tapas-sim:", err)
		return 1
	}
	printSummary(stdout, sc, res, time.Since(start))
	return 0
}

// runSpec executes a single-point scenario spec under each of its policies,
// compiling the scenario once and sharing it across the runs.
func runSpec(path, policyFlag string, policySet bool, shards int, stdout, stderr io.Writer) int {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-sim:", err)
		return 1
	}
	if len(spec.Axes) > 0 {
		fmt.Fprintf(stderr, "tapas-sim: spec %q sweeps axes; run it with tapas-campaign\n", spec.Name)
		return 2
	}
	if policySet {
		spec.Policies = []string{policyFlag}
	}
	c, err := spec.Campaign(0)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-sim:", err)
		return 1
	}
	sc := c.Points[0].Scenario
	if shards != 0 {
		sc.Shards = shards // runtime-only: output stays byte-identical
	}
	cs, err := tapas.Compile(sc)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-sim:", err)
		return 1
	}
	for i, pol := range c.Policies {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		start := time.Now()
		res, err := cs.Run(pol.New())
		if err != nil {
			fmt.Fprintln(stderr, "tapas-sim:", err)
			return 1
		}
		printSummary(stdout, sc, res, time.Since(start))
	}
	return 0
}

func printSummary(w io.Writer, sc tapas.Scenario, res *tapas.Result, wall time.Duration) {
	fmt.Fprintf(w, "policy            %s\n", res.Policy)
	fmt.Fprintf(w, "simulated         %v at %v ticks (%d ticks, wall %v)\n",
		sc.Duration, res.Tick, res.Ticks, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "max GPU temp      %.1f °C (P99 %.1f)\n", res.MaxTemp(), res.PercentileMaxTemp(99))
	fmt.Fprintf(w, "peak row power    %.1f kW (P99 %.1f)\n", res.PeakPower()/1000, res.PercentilePeakPower(99)/1000)
	fmt.Fprintf(w, "thermal capping   %.2f%% of server-time\n", res.ThrottleFrac()*100)
	fmt.Fprintf(w, "power capping     %.2f%% of server-time\n", res.PowerCapFrac()*100)
	fmt.Fprintf(w, "SaaS service rate %.3f, SLO violations %.2f%%, quality %.3f\n",
		res.ServiceRate(), res.SLOViolationRate()*100, res.AvgQuality())
	fmt.Fprintf(w, "IaaS perf loss    %.1f%%\n", res.IaaSPerfLoss()*100)
}

func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
