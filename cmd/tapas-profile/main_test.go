package main

import (
	"strings"
	"testing"
)

func TestRunErrors(t *testing.T) {
	cases := map[string]struct {
		args     []string
		wantCode int
		wantErr  string
	}{
		"unknown flag": {
			[]string{"-bogus"}, 2, "flag provided but not defined"},
		"unknown scale": {
			[]string{"-scale", "medium"}, 2, `unknown -scale "medium"`},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.wantErr) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.wantErr)
			}
			if out.Len() != 0 {
				t.Errorf("usage errors must not print a report, got %q", out.String())
			}
		})
	}
}

// TestRunSmallProfile pins the report surface on the small datacenter: every
// fitted model line is present, the thermal MAEs parse as sane numbers, and
// each Llama size gets a frontier line.
func TestRunSmallProfile(t *testing.T) {
	cases := map[string]struct {
		args        []string
		wantLines   []string
		wantServers string
	}{
		"defaults": {
			args:        nil,
			wantServers: "80 servers (A100)",
		},
		"explicit small with seed": {
			args:        []string{"-scale", "small", "-seed", "7"},
			wantServers: "80 servers (A100)",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(tc.args, &out, &errOut); code != 0 {
				t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
			}
			got := out.String()
			if !strings.Contains(got, tc.wantServers) {
				t.Errorf("datacenter line missing %q:\n%s", tc.wantServers, got)
			}
			for _, want := range []string{
				"inlet model:",
				"GPU temp model:",
				"airflow model:",
				"power model:",
				"LLM profile:",
				"70B  frontier:",
				"13B  frontier:",
				"7B   frontier:",
			} {
				if !strings.Contains(got, want) {
					t.Errorf("report missing %q:\n%s", want, got)
				}
			}
			if errOut.Len() != 0 {
				t.Errorf("successful run wrote to stderr: %q", errOut.String())
			}
		})
	}
}

// TestRunDeterministicPerSeed pins that the report is a pure function of the
// flags: the same seed renders byte-identical reports.
func TestRunDeterministicPerSeed(t *testing.T) {
	render := func(seed string) string {
		var out, errOut strings.Builder
		if code := run([]string{"-seed", seed}, &out, &errOut); code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
		}
		return out.String()
	}
	if a, b := render("42"), render("42"); a != b {
		t.Error("same seed produced different reports")
	}
}
