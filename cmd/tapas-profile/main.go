// Command tapas-profile runs the offline profiling phase (§4.5) against a
// generated datacenter and prints the fitted models and their accuracy, plus
// the LLM configuration profile and Pareto frontier sizes.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"

	"github.com/tapas-sim/tapas/internal/core"
	"github.com/tapas-sim/tapas/internal/layout"
	"github.com/tapas-sim/tapas/internal/llm"
	"github.com/tapas-sim/tapas/internal/regress"
	"github.com/tapas-sim/tapas/internal/thermal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tapas-profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale = fs.String("scale", "small", "small | large datacenter")
		seed  = fs.Uint64("seed", 42, "layout seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg layout.Config
	switch *scale {
	case "small":
		cfg = layout.SmallConfig()
	case "large":
		cfg = layout.DefaultConfig()
	default:
		fmt.Fprintf(stderr, "tapas-profile: unknown -scale %q (want small or large)\n", *scale)
		return 2
	}
	cfg.Seed = *seed
	dc, err := layout.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-profile:", err)
		return 1
	}
	prof, err := core.BuildProfiles(dc)
	if err != nil {
		fmt.Fprintln(stderr, "tapas-profile:", err)
		return 1
	}

	fmt.Fprintf(stdout, "datacenter %s: %d aisles, %d rows, %d servers (%s)\n",
		cfg.Name, len(dc.Aisles), len(dc.Rows), len(dc.Servers), cfg.GPU)

	// Held-out accuracy of the thermal models.
	rng := rand.New(rand.NewPCG(*seed, 99))
	var inletPred, inletAct, gpuPred, gpuAct []float64
	for i := 0; i < 500; i++ {
		srv := dc.Servers[rng.IntN(len(dc.Servers))]
		o := rng.Float64()*38 - 2
		l := rng.Float64()
		inletPred = append(inletPred, prof.Inlet.Predict(srv.ID, o, l))
		inletAct = append(inletAct, thermal.InletTemp(srv, o, l, 0))
		g := rng.IntN(srv.GPU.GPUsPerServer)
		inlet := 18 + rng.Float64()*14
		frac := rng.Float64()
		gpuPred = append(gpuPred, prof.GPUTemp.Predict(srv.ID, g, inlet, frac))
		gpuAct = append(gpuAct, thermal.GPUTemp(srv, g, inlet, frac))
	}
	fmt.Fprintf(stdout, "inlet model:    piecewise surface per server, MAE %.2f °C\n", regress.MAE(inletPred, inletAct))
	fmt.Fprintf(stdout, "GPU temp model: linear per GPU, MAE %.2f °C\n", regress.MAE(gpuPred, gpuAct))
	fmt.Fprintf(stdout, "airflow model:  %.0f CFM idle → %.0f CFM at full load\n", prof.Airflow.IdleCFM, prof.Airflow.MaxCFM)
	fmt.Fprintf(stdout, "power model:    %.0f W idle → %.0f W at full load\n", prof.Power.Predict(0), prof.Power.Predict(1))

	spec := layout.Spec(cfg.GPU)
	llmProf := llm.BuildProfile(spec, llm.DefaultWorkload())
	fmt.Fprintf(stdout, "\nLLM profile: %d configurations, SLOs TTFT=%v TBT=%v\n",
		len(llmProf.Entries), llmProf.SLOs.TTFT.Round(0), llmProf.SLOs.TBT.Round(0))
	for _, m := range []llm.ModelSize{llm.Llama70B, llm.Llama13B, llm.Llama7B} {
		frontier := llmProf.ParetoFrontier(m)
		best := frontier[0]
		for _, e := range frontier {
			if e.Goodput > best.Goodput {
				best = e
			}
		}
		fmt.Fprintf(stdout, "  %-4s frontier: %2d points, top goodput %6.0f tok/s at %s (quality %.2f)\n",
			m, len(frontier), best.Goodput, best.Config, best.Quality)
	}
	return 0
}
