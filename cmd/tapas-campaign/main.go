// Command tapas-campaign runs declarative scenario campaigns: each spec file
// expands into its sweep grid, every unique scenario compiles once, and all
// runs fan out across a bounded worker pool. Reports go to stdout (in
// argument order), timing to stderr, so stdout is byte-identical for any
// -parallel value.
//
// Campaigns execute through the same scheduler the tapas-serve daemon uses,
// sharing one content-addressed compile cache across all spec files — specs
// whose grids overlap (or back-to-back invocations of the same spec in one
// process) compile each unique scenario once.
//
// Usage:
//
//	tapas-campaign examples/scenarios/fig20-ablation.json
//	tapas-campaign -parallel 4 -scale 0.12 specs/*.json
//	tapas-campaign -format csv examples/scenarios/heatwave-sweep.json
//	tapas-campaign -progress examples/scenarios/heatwave-sweep.json
//	tapas-campaign -validate examples/scenarios/*.json
//	tapas-campaign -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/tapas-sim/tapas/internal/scenario"
	"github.com/tapas-sim/tapas/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tapas-campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for compiles and runs (1 = sequential)")
		shards    = fs.Int("shards", 0, "tick-kernel shards per run (0 keeps the spec's; 1 serial, -1 = GOMAXPROCS); reports are byte-identical at any value")
		scale     = fs.Float64("scale", 0, "override the spec's scale (0 keeps it; 1.0 = paper scale)")
		format    = fs.String("format", "", "override the spec's report format: text | csv | json")
		progress  = fs.Bool("progress", false, "stream per-run progress to stderr while campaigns execute")
		cacheSize = fs.Int("cache-size", 0, "compile-cache entries per level (0 = default); the cache is shared across all spec files")
		validate  = fs.Bool("validate", false, "parse and validate specs without running anything")
		list      = fs.Bool("list", false, "list sweepable axis params and report metrics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "axis params:")
		for _, p := range scenario.AxisParams() {
			fmt.Fprintf(stdout, "  %s\n", p)
		}
		fmt.Fprintln(stdout, "metrics:")
		for _, id := range scenario.MetricIDs() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "tapas-campaign: no spec files (see -h)")
		return 2
	}
	switch *format {
	case "", "text", "csv", "json":
	default:
		fmt.Fprintf(stderr, "tapas-campaign: unknown -format %q\n", *format)
		return 2
	}

	// One scheduler for the whole invocation: its compile cache is shared
	// across spec files, and campaigns run one at a time in argument order so
	// stdout stays deterministic.
	sched := serve.NewScheduler(serve.SchedulerConfig{
		QueueDepth: fs.NArg() + 1,
		Parallel:   *parallel,
		Shards:     *shards,
		CacheSize:  *cacheSize,
	})
	defer sched.Shutdown(context.Background())

	for _, path := range fs.Args() {
		spec, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, "tapas-campaign:", err)
			return 1
		}
		if *format != "" {
			spec.Report.Format = *format
		}
		if *validate {
			c, err := spec.Campaign(*scale)
			if err != nil {
				fmt.Fprintln(stderr, "tapas-campaign:", err)
				return 1
			}
			fmt.Fprintf(stderr, "%s: ok (%d points × %d policies = %d runs)\n",
				path, len(c.Points), len(c.Policies), c.Runs())
			continue
		}
		start := time.Now()
		job, err := sched.Submit(spec, *scale)
		if err != nil {
			fmt.Fprintln(stderr, "tapas-campaign:", err)
			return 1
		}
		if *progress {
			streamProgress(job, stderr)
		}
		if err := job.Wait(context.Background()); err != nil {
			fmt.Fprintln(stderr, "tapas-campaign:", err)
			return 1
		}
		if _, err := stdout.Write(job.Report()); err != nil {
			fmt.Fprintln(stderr, "tapas-campaign:", err)
			return 1
		}
		_, total, compiles := job.Progress()
		fmt.Fprintf(stderr, "%-24s %3d runs (%d compiles) in %v\n",
			strings.TrimSuffix(spec.Name, "\n"), total, compiles,
			time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// streamProgress follows the job's event log, printing progress and terminal
// events to w until the job finishes.
func streamProgress(job *serve.Job, w io.Writer) {
	i := 0
	for {
		evs, changed, terminal := job.EventsSince(i)
		for _, ev := range evs {
			switch ev.Type {
			case "start":
				fmt.Fprintf(w, "%s: %d points × %d policies = %d runs\n",
					ev.Name, ev.Points, ev.Policies, ev.Runs)
			case "progress":
				fmt.Fprintf(w, "  %d/%d runs\n", ev.Done, ev.Total)
			case "done":
				if ev.Error != "" {
					fmt.Fprintf(w, "  %s: %s\n", ev.Status, ev.Error)
				}
			}
		}
		i += len(evs)
		if terminal {
			return
		}
		<-changed
	}
}
