// Command tapas-campaign runs declarative scenario campaigns: each spec file
// expands into its sweep grid, every unique scenario compiles once, and all
// runs fan out across a bounded worker pool. Reports go to stdout (in
// argument order), timing to stderr, so stdout is byte-identical for any
// -parallel value.
//
// Usage:
//
//	tapas-campaign examples/scenarios/fig20-ablation.json
//	tapas-campaign -parallel 4 -scale 0.12 specs/*.json
//	tapas-campaign -format csv examples/scenarios/heatwave-sweep.json
//	tapas-campaign -validate examples/scenarios/*.json
//	tapas-campaign -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/tapas-sim/tapas/internal/scenario"
)

func main() {
	var (
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for compiles and runs (1 = sequential)")
		scale    = flag.Float64("scale", 0, "override the spec's scale (0 keeps it; 1.0 = paper scale)")
		format   = flag.String("format", "", "override the spec's report format: text | csv | json")
		validate = flag.Bool("validate", false, "parse and validate specs without running anything")
		list     = flag.Bool("list", false, "list sweepable axis params and report metrics")
	)
	flag.Parse()

	if *list {
		fmt.Println("axis params:")
		for _, p := range scenario.AxisParams() {
			fmt.Printf("  %s\n", p)
		}
		fmt.Println("metrics:")
		for _, id := range scenario.MetricIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tapas-campaign: no spec files (see -h)")
		os.Exit(2)
	}
	switch *format {
	case "", "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "tapas-campaign: unknown -format %q\n", *format)
		os.Exit(2)
	}

	for _, path := range flag.Args() {
		spec, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapas-campaign:", err)
			os.Exit(1)
		}
		if *format != "" {
			spec.Report.Format = *format
		}
		c, err := spec.Campaign(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapas-campaign:", err)
			os.Exit(1)
		}
		if *validate {
			fmt.Fprintf(os.Stderr, "%s: ok (%d points × %d policies = %d runs)\n",
				path, len(c.Points), len(c.Policies), c.Runs())
			continue
		}
		start := time.Now()
		res, err := c.Run(scenario.RunOptions{Parallel: *parallel})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapas-campaign:", err)
			os.Exit(1)
		}
		if _, err := res.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tapas-campaign:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-24s %3d runs in %v\n",
			strings.TrimSuffix(spec.Name, "\n"), c.Runs(), time.Since(start).Round(time.Millisecond))
	}
}
